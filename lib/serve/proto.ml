(* Frame encoding/decoding lives in [lib/wire] (shared with the client
   runtime); this alias keeps [Serve.Proto] working for existing
   callers. *)
include Wire.Proto
