(** Paging-as-a-service: the [confcall serve] daemon.

    A long-lived JSONL request/response service (see {!Proto}) over a
    TCP or Unix-domain stream socket, built only on the stdlib ([Unix],
    [Thread], [Domain] via {!Exec.Pool}). Connection threads do the
    I/O and the cheap work (parsing, cache lookups, admission);
    solve/simulate execution runs on a fixed {!Exec.Pool} of worker
    domains fed by one {e bounded} queue. Robustness is the design
    center:

    - {b Admission control + backpressure}: the queue holds at most
      [capacity] requests. A request arriving at a full queue is shed
      with [rejected:overload] {e immediately} from the connection
      thread, carrying a [retry_after_ms] hint sized to the queue's
      estimated drain time — overload degrades quality, then
      availability, never latency-to-verdict. Sustained shedding trips
      a {b circuit breaker}: for a short cooldown, admission rejects
      without touching the queue lock at all, and the hint is the
      breaker's remaining cooldown.
    - {b Client hardening} (DESIGN §11): every connection has a
      dedicated writer systhread draining a bounded output buffer
      under a per-chunk write deadline, so a stalled or slow-reading
      client is disconnected instead of pinning a worker or growing
      memory; worker lanes are [Exec.Pool] tasks with queued spares,
      so an injected or real lane death ([serve.lane.crash]) costs a
      respawned domain, never an admitted request's response.
    - {b Graceful degradation}: between 50% and 75% queue occupancy the
      fallback chain of an admitted request is filtered to its anytime
      + always-fast stages ([heuristic] rung); above 75% to the
      always-fast stages only ([fast] rung). Responses carry the rung
      so clients and the load generator can see the ladder work.
    - {b Deadline propagation}: a request's [budget_ms] is armed at
      admission, so queueing time counts against it; what remains at
      execution start becomes the {!Confcall.Runner} budget, which
      turns it into the existing {!Confcall.Cancel} tokens. A request
      whose budget was consumed in the queue still returns the anytime
      best-so-far ([status:"degraded"]) rather than timing out
      silently.
    - {b Result cache}: clean (undegraded) solve results are cached
      under {!Confcall.Signature.canonical_key}-based keys, optionally
      journal-backed so a restarted daemon serves hits for previously
      solved instances ({!Cache}).
    - {b Lifecycle}: SIGTERM/SIGINT (or a [drain] frame) stop the
      accept loop, reject new submissions with [rejected:draining],
      finish every admitted request, flush the cache journal and exit.
      A malformed or oversized frame gets an [error] response and the
      connection lives on; a client disconnect never takes the daemon
      down.

    Metrics: the daemon enables the default {!Obs} registry and exposes
    it over the same port (a [metrics] frame returns the Prometheus
    text exposition). [serve_*] counters/gauges cover requests by
    status, sheds, ladder occupancy, queue depth and cache traffic. *)

type listen = Tcp of int  (** loopback; port 0 picks one *) | Unix_path of string

type config = {
  listen : listen;
  domains : int;  (** worker parallelism, >= 1 (see {!Exec.Pool}) *)
  capacity : int;  (** bounded request queue, >= 1 *)
  max_connections : int;
  cache_path : string option;  (** journal the result cache here *)
  cache_fsync : bool;
  max_frame_bytes : int;  (** oversized frames are answered and dropped *)
  drain_grace_ms : float;  (** drain must finish within this window *)
  quiet : bool;
  cache_max : int;  (** LRU cap on the result cache, >= 1 *)
  write_timeout_ms : float;
      (** per-chunk socket-write deadline; a client that stalls longer
          is disconnected *)
  max_buffer_bytes : int;
      (** per-connection output buffer bound, >= 4096; overflow kills
          the connection (backpressure, not unbounded memory) *)
  request_log : string option;
      (** append-only {!Confcall.Journal} of executed request_ids
          ([request_id TAB status]): the per-daemon exactly-once audit
          trail — a retried or hedged request_id appears at most once *)
  dedup_max : int;
      (** completed idempotency entries kept for replay (LRU), >= 1 *)
}

(** Defaults: domains 1, capacity 64, 256 connections, no cache file,
    4 MiB frames, 10 s grace, not quiet, 65536 cache entries, 5 s write
    timeout, 1 MiB output buffer, no request log, 4096 dedup entries.

    {b Idempotency}: a solve request carrying a [request_id] (see
    {!Wire.Proto.solve_req}) executes at most once per daemon: a
    duplicate frame arriving mid-execution waits for — and shares — the
    single execution's terminal response; one arriving after completion
    is answered from a bounded LRU of recent terminals. Either way the
    duplicate's response carries ["dedup":"hit"]. Rejected submissions
    are {e not} memoized: the client's retry is welcome to try again. *)
val default_config : listen -> config

(** The shedding ladder, from healthy to overloaded. *)
type ladder = Full | Heuristic | Fast

val ladder_to_string : ladder -> string

(** [ladder_of_depth ~capacity depth] — the rung admission assigns at
    the given queue depth: [Full] below 50% occupancy, [Heuristic]
    below 75%, [Fast] at or above. Pure; exported for tests. *)
val ladder_of_depth : capacity:int -> int -> ladder

(** [apply_ladder ladder chain] filters a fallback chain to the stages
    the rung allows ([Heuristic]: anytime + always-fast; [Fast]:
    always-fast only; never empty — falls back to the rung's default
    chain) and reports whether it changed anything. Pure; exported for
    tests. *)
val apply_ladder :
  ladder -> Confcall.Solver.spec list -> Confcall.Solver.spec list * bool

type handle

(** [start cfg] binds, spawns the accept thread and the worker pool,
    and returns. SIGPIPE is set to ignore (socket writes must fail
    with [EPIPE], not kill the process); no other signal handlers are
    installed — that is {!run}'s job.
    @raise Invalid_argument on invalid config fields.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : config -> handle

(** The actually-bound TCP port ([None] for Unix sockets) — for tests
    using port 0. *)
val bound_port : handle -> int option

(** Begin draining: stop accepting, reject new submissions, let the
    workers finish the queue. Idempotent, callable from any thread
    (also what a [drain] frame triggers). *)
val request_drain : handle -> unit

(** [wait ?grace_ms h] blocks until the daemon has drained and the
    worker pool is joined; returns [false] when [grace_ms] elapsed
    with work still in flight (workers are then left to finish on
    their own and the cache journal is not closed). Without a drain
    request this blocks until one arrives. *)
val wait : ?grace_ms:float -> handle -> bool

(** [stop h] = {!request_drain} + {!wait} with the config's grace. *)
val stop : handle -> bool

(** [run cfg] — the CLI entry: {!start}, install SIGTERM/SIGINT
    handlers that trigger a drain, block until drained, flush, and
    return [true] on a clean drain within grace. *)
val run : config -> bool
