(** Open-loop Poisson load generator for the serve daemon.

    Arrivals follow a Poisson process of the requested rate regardless
    of how the daemon responds — the generator never waits for a
    response before sending the next request, which is what makes
    overload visible: a closed-loop client would slow itself down and
    mask the very backpressure bench e27 measures.

    Deterministic given [seed]: the instance pool, the request→instance
    assignment and the inter-arrival gaps are all drawn from
    {!Prob.Rng}. Latencies of course are not.

    Two execution paths, selected by the options:

    - {b Legacy} (single target, [retries = 0], no hedging): solve
      frames spread round-robin over [connections] pipelined raw
      connections; one receiver thread per connection matches responses
      to send timestamps by frame id. Wire behavior is byte-identical
      to the pre-{!Client} loadgen (no [request_id] field). A
      connection that dies mid-run loses only its own in-flight
      requests (reported as [conn_lost]); later sends reroute to the
      surviving connections.
    - {b Resilient} ([retries > 0], hedging on, or multiple targets):
      every request is a {!Client.call} over all endpoints, carrying a
      [request_id] so server-side idempotency makes its retries and
      hedges exactly-once per daemon. Each request ends in a terminal
      outcome; the summary reports how it got there ([retried],
      [failed_over], [hedge_wins]). *)

type target = Tcp of int  (** loopback *) | Unix_path of string

type opts = {
  rate : float;  (** offered load, requests/second *)
  requests : int;
  budget_ms : float option;  (** attached to every solve frame *)
  solver : string option;
  chain : string option;
  m : int;
  c : int;
  d : int;
  instances : int;  (** distinct instances in the generated pool *)
  connections : int;
  seed : int;
  cache : bool;  (** let the daemon use its result cache *)
  timeout_s : float;  (** wait for stragglers after the last send;
                          also the per-call budget (resilient path) *)
  retries : int;  (** per-request retry budget; 0 = resilience off *)
  hedge_after_ms : float option;
      (** fire a second attempt at the next-best endpoint when no
          answer arrived within this delay; first terminal wins *)
}

val default_opts : opts
(** rate 50, 200 requests, no budget, greedy solver, 3×12×2 instances,
    pool of 32, 4 connections, seed 1, cache off (measure solves, not
    the cache), 30 s straggler timeout, no retries, no hedging. *)

type stats = {
  sent : int;
  ok : int;
  degraded : int;
  rejected : int;  (** terminal rejects (legacy path only) *)
  errors : int;
      (** error responses; on the resilient path also calls that
          exhausted their retry or time budget *)
  unanswered : int;  (** sent but no response within [timeout_s] *)
  conn_lost : int;
      (** in flight on a connection that died (legacy path); the
          resilient path retries these instead *)
  retried : int;  (** requests that retried at least once *)
  failed_over : int;  (** requests that moved endpoints *)
  hedge_wins : int;  (** requests whose hedge beat the primary *)
  duration_s : float;  (** first send to last response *)
  throughput : float;  (** terminal responses per second *)
  accepted_ms : float array;
      (** sorted latencies of ok + degraded responses *)
  rejected_ms : float array;  (** sorted latencies of sheds *)
  ladder : (string * int) list;
      (** executed-rung occupancy over accepted responses, plus
          ["cache"] for cache hits (sorted by rung name) *)
}

(** [run target opts] drives one load session and blocks until every
    request reached a terminal outcome or the straggler timeout fires.
    @raise Invalid_argument on nonsensical opts (rate, counts).
    @raise Unix.Unix_error when the daemon cannot be reached (legacy
    path; the resilient path records unreachable endpoints as request
    outcomes instead). *)
val run : target -> opts -> stats

(** [run_multi targets opts] — as {!run} over several replicas; always
    the resilient path when more than one target is given. *)
val run_multi : target list -> opts -> stats

(** [percentile xs p] — nearest-rank percentile ([p] in [0, 100]) of a
    {e sorted} array; [nan] when empty. *)
val percentile : float array -> float -> float
