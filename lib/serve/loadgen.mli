(** Open-loop Poisson load generator for the serve daemon.

    Arrivals follow a Poisson process of the requested rate regardless
    of how the daemon responds — the generator never waits for a
    response before sending the next request, which is what makes
    overload visible: a closed-loop client would slow itself down and
    mask the very backpressure bench e27 measures.

    Deterministic given [seed]: the instance pool, the request→instance
    assignment and the inter-arrival gaps are all drawn from
    {!Prob.Rng}. Latencies of course are not.

    Requests are solve frames spread round-robin over [connections]
    pipelined connections; one receiver thread per connection matches
    responses to send timestamps by frame id. *)

type target = Tcp of int  (** loopback *) | Unix_path of string

type opts = {
  rate : float;  (** offered load, requests/second *)
  requests : int;
  budget_ms : float option;  (** attached to every solve frame *)
  solver : string option;
  chain : string option;
  m : int;
  c : int;
  d : int;
  instances : int;  (** distinct instances in the generated pool *)
  connections : int;
  seed : int;
  cache : bool;  (** let the daemon use its result cache *)
  timeout_s : float;  (** wait for stragglers after the last send *)
}

val default_opts : opts
(** rate 50, 200 requests, no budget, greedy solver, 3×12×2 instances,
    pool of 32, 4 connections, seed 1, cache off (measure solves, not
    the cache), 30 s straggler timeout. *)

type stats = {
  sent : int;
  ok : int;
  degraded : int;
  rejected : int;
  errors : int;
  unanswered : int;  (** sent but no response within [timeout_s] *)
  duration_s : float;  (** first send to last response *)
  throughput : float;  (** terminal responses per second *)
  accepted_ms : float array;
      (** sorted latencies of ok + degraded responses *)
  rejected_ms : float array;  (** sorted latencies of sheds *)
  ladder : (string * int) list;
      (** executed-rung occupancy over accepted responses, plus
          ["cache"] for cache hits (sorted by rung name) *)
}

(** [run target opts] drives one load session and blocks until every
    request is answered or the straggler timeout fires.
    @raise Invalid_argument on nonsensical opts (rate, counts).
    @raise Unix.Unix_error when the daemon cannot be reached. *)
val run : target -> opts -> stats

(** [percentile xs p] — nearest-rank percentile ([p] in [0, 100]) of a
    {e sorted} array; [nan] when empty. *)
val percentile : float array -> float -> float
