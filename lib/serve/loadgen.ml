open Confcall

type target = Tcp of int | Unix_path of string

type opts = {
  rate : float;
  requests : int;
  budget_ms : float option;
  solver : string option;
  chain : string option;
  m : int;
  c : int;
  d : int;
  instances : int;
  connections : int;
  seed : int;
  cache : bool;
  timeout_s : float;
  retries : int;  (** per-request retry budget; 0 = resilience off *)
  hedge_after_ms : float option;  (** tail-latency hedge delay *)
}

let default_opts =
  {
    rate = 50.0;
    requests = 200;
    budget_ms = None;
    solver = Some "greedy";
    chain = None;
    m = 3;
    c = 12;
    d = 2;
    instances = 32;
    connections = 4;
    seed = 1;
    cache = false;
    timeout_s = 30.0;
    retries = 0;
    hedge_after_ms = None;
  }

type stats = {
  sent : int;
  ok : int;
  degraded : int;
  rejected : int;
  errors : int;
  unanswered : int;
  conn_lost : int;
      (** in flight on a connection that died (legacy path); the
          resilient path retries these instead *)
  retried : int;  (** requests that retried at least once *)
  failed_over : int;  (** requests answered after moving endpoints *)
  hedge_wins : int;  (** requests whose hedge beat the primary *)
  duration_s : float;
  throughput : float;
  accepted_ms : float array;
  rejected_ms : float array;
  ladder : (string * int) list;
}

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Int.max 0 (Int.min (n - 1) (rank - 1)) in
    xs.(idx)
  end

let validate o =
  if not (Float.is_finite o.rate) || o.rate <= 0.0 then
    invalid_arg "loadgen: rate must be positive";
  if o.requests < 1 then invalid_arg "loadgen: requests must be >= 1";
  if o.instances < 1 then invalid_arg "loadgen: instances must be >= 1";
  if o.connections < 1 then invalid_arg "loadgen: connections must be >= 1";
  if o.retries < 0 then invalid_arg "loadgen: retries must be >= 0";
  (match o.hedge_after_ms with
   | Some h when not (Float.is_finite h) || h < 0.0 ->
     invalid_arg "loadgen: hedge_after_ms must be >= 0"
   | _ -> ());
  match o.budget_ms with
  | Some b when not (Float.is_finite b) || b <= 0.0 ->
    invalid_arg "loadgen: budget_ms must be positive"
  | _ -> ()

let connect target =
  match target with
  | Tcp port ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Shared between both paths: the workload (instances, arrival gaps)
   and the request fields. Byte-for-byte the same frames either way —
   except the resilient path's [id]/[request_id], which the client
   runtime owns. *)
type workload = {
  pool : string array;
  assignment : int array;
  gaps : float array;
}

let make_workload o =
  let rng = Prob.Rng.create ~seed:o.seed in
  let pool =
    Array.init o.instances (fun _ ->
        Instance.to_string
          (Instance.random_zipf rng ~s:1.1 ~m:o.m ~c:o.c ~d:o.d))
  in
  let assignment =
    Array.init o.requests (fun _ -> Prob.Rng.int rng o.instances)
  in
  let gaps =
    Array.init o.requests (fun i ->
        if i = 0 then 0.0 else Prob.Rng.exponential rng ~rate:o.rate)
  in
  { pool; assignment; gaps }

let solve_fields o w i =
  [
    ("op", Json.Str "solve");
    ("instance", Json.Str w.pool.(w.assignment.(i)));
  ]
  @ (match o.solver with Some s -> [ ("solver", Json.Str s) ] | None -> [])
  @ (match o.chain with Some c -> [ ("chain", Json.Str c) ] | None -> [])
  @ (match o.budget_ms with
     | Some b -> [ ("budget_ms", Json.Num b) ]
     | None -> [])
  @ if o.cache then [] else [ ("cache", Json.Bool false) ]

(* One record per response, filled in by the receiver threads. *)
type reply = { status : string; rung : string option; recv_s : float }

let summarize ~sent ~start_s ~last_s ~conn_lost ~retried ~failed_over
    ~hedge_wins ~counts =
  let ok, degraded, rejected, errors, accepted, shed, ladder = counts in
  let answered_n = ok + degraded + rejected + errors in
  let duration_s = Float.max (last_s -. start_s) 1e-9 in
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  {
    sent;
    ok;
    degraded;
    rejected;
    errors;
    unanswered = sent - answered_n - conn_lost;
    conn_lost;
    retried;
    failed_over;
    hedge_wins;
    duration_s;
    throughput = float_of_int answered_n /. duration_s;
    accepted_ms = sorted accepted;
    rejected_ms = sorted shed;
    ladder =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ladder []);
  }

(* ---------------- legacy path: raw pipelined connections -------------

   The original loadgen: N pipelined connections to one daemon, frame
   [i] on connection [i mod N]. Wire bytes are unchanged from before
   the resilient client existed (no [request_id] field). A connection
   that dies mid-run no longer aborts the whole run: its in-flight
   requests are recorded as [conn_lost], later sends reroute to the
   surviving connections, and the summary reports the split. *)

let run_legacy target o =
  let w = make_workload o in
  let frame i =
    Json.to_string
      (Json.Obj
         (("id", Json.Str (Printf.sprintf "r%d" i)) :: solve_fields o w i))
    ^ "\n"
  in
  let conns = Array.init o.connections (fun _ -> connect target) in
  let dead = Array.make o.connections false in
  let teardown = Atomic.make false in
  let replies : (int, reply) Hashtbl.t = Hashtbl.create o.requests in
  let rmutex = Mutex.create () in
  let answered = Atomic.make 0 in
  let receiver k =
    let fd = conns.(k) in
    let chunk = Bytes.create 65536 in
    let acc = Buffer.create 4096 in
    let handle line =
      match Json.parse line with
      | Error _ -> ()
      | Ok json ->
        let str k = Option.bind (Json.member k json) Json.to_str in
        (match str "id" with
         | Some id when String.length id > 1 && id.[0] = 'r' ->
           (match
              int_of_string_opt (String.sub id 1 (String.length id - 1))
            with
            | Some i ->
              let reply =
                {
                  status = Option.value (str "status") ~default:"error";
                  rung =
                    (match str "cache" with
                     | Some "hit" -> Some "cache"
                     | _ -> str "ladder");
                  recv_s = Obs.now ();
                }
              in
              Mutex.lock rmutex;
              if not (Hashtbl.mem replies i) then begin
                Hashtbl.replace replies i reply;
                Atomic.incr answered
              end;
              Mutex.unlock rmutex
            | None -> ())
         | _ -> ())
    in
    let rec pump () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        for i = 0 to n - 1 do
          let c = Bytes.get chunk i in
          if c = '\n' then begin
            handle (Buffer.contents acc);
            Buffer.clear acc
          end
          else Buffer.add_char acc c
        done;
        pump ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
      | exception Unix.Unix_error _ -> ()
      | exception Sys_error _ -> ()
    in
    pump ();
    (* EOF or error before the run tore the socket down: the daemon
       side died under us. Everything in flight here is lost. *)
    if not (Atomic.get teardown) then dead.(k) <- true
  in
  let receivers = Array.init o.connections (fun k -> Thread.create receiver k) in
  let send_s = Array.make o.requests 0.0 in
  let conn_of = Array.make o.requests (-1) in
  let start_s = Obs.now () in
  let sent = ref 0 in
  (* Open loop: each request goes out at its scheduled arrival time,
     whatever the daemon is doing. Falling behind (blocked writes) is
     made visible by sending immediately once past-due. A dead
     connection only loses its own traffic: the send rotates to the
     next surviving one. *)
  let send i =
    let rec try_from k tried =
      if tried >= o.connections then false
      else if dead.(k) then try_from ((k + 1) mod o.connections) (tried + 1)
      else
        match write_all conns.(k) (frame i) with
        | () ->
          conn_of.(i) <- k;
          true
        | exception (Unix.Unix_error _ | Sys_error _) ->
          dead.(k) <- true;
          try_from ((k + 1) mod o.connections) (tried + 1)
    in
    try_from (i mod o.connections) 0
  in
  (try
     let due = ref start_s in
     let alive = ref true in
     let i = ref 0 in
     while !alive && !i < o.requests do
       due := !due +. w.gaps.(!i);
       let delay = !due -. Obs.now () in
       if delay > 0.0 then Thread.delay delay;
       send_s.(!i) <- Obs.now ();
       if send !i then incr sent else alive := false;
       incr i
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Straggler window: responses owed for everything sent on a
     connection that is still alive. *)
  let outstanding () =
    let n = ref 0 in
    for i = 0 to o.requests - 1 do
      let k = conn_of.(i) in
      if k >= 0 && (not dead.(k)) && not (Hashtbl.mem replies i) then incr n
    done;
    !n
  in
  let deadline = Obs.now () +. o.timeout_s in
  while outstanding () > 0 && Obs.now () < deadline do
    Thread.delay 0.01
  done;
  (* Tear down: a full shutdown unblocks the receivers (read returns
     0) even if the daemon still holds its side open. *)
  Atomic.set teardown true;
  Array.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  Array.iter Thread.join receivers;
  Array.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    conns;
  let last_s = ref start_s in
  let ok = ref 0
  and degraded = ref 0
  and rejected = ref 0
  and errors = ref 0
  and conn_lost = ref 0 in
  let accepted = ref []
  and shed = ref [] in
  let ladder : (string, int) Hashtbl.t = Hashtbl.create 8 in
  for i = 0 to o.requests - 1 do
    match Hashtbl.find_opt replies i with
    | None -> if conn_of.(i) >= 0 && dead.(conn_of.(i)) then incr conn_lost
    | Some r ->
      if r.recv_s > !last_s then last_s := r.recv_s;
      let latency_ms = (r.recv_s -. send_s.(i)) *. 1000.0 in
      (match r.status with
       | "ok" | "degraded" ->
         if r.status = "ok" then incr ok else incr degraded;
         accepted := latency_ms :: !accepted;
         Option.iter
           (fun rung ->
             Hashtbl.replace ladder rung
               (1 + Option.value (Hashtbl.find_opt ladder rung) ~default:0))
           r.rung
       | "rejected" ->
         incr rejected;
         shed := latency_ms :: !shed
       | _ -> incr errors)
  done;
  summarize ~sent:!sent ~start_s ~last_s:!last_s ~conn_lost:!conn_lost
    ~retried:0 ~failed_over:0 ~hedge_wins:0
    ~counts:(!ok, !degraded, !rejected, !errors, !accepted, !shed, ladder)

(* ---------------- resilient path: the client runtime ----------------

   One [Client.t] over all endpoints; each request is a [Client.call]
   carrying [request_id] "q<i>" so server-side dedup makes its retries
   and hedges exactly-once per daemon. Calls run on their own
   systhreads at the scheduled arrival times (bounded by a counting
   semaphore), so one slow or retrying request never stalls the open
   loop. Instead of aborting on a connection loss, every request ends
   in a terminal outcome — and the summary reports how it got there:
   retried, failed over, hedge won. *)

let max_concurrent_calls = 256

let run_resilient targets o =
  let w = make_workload o in
  let endpoints =
    List.map
      (function
        | Tcp p -> Client.Tcp p
        | Unix_path p -> Client.Unix_path p)
      targets
  in
  let cl =
    Client.create
      {
        endpoints;
        retry = { Client.Retry.default with max_retries = o.retries };
        budget_ms = Some (o.timeout_s *. 1000.0);
        hedge_after_ms = o.hedge_after_ms;
        seed = o.seed;
      }
  in
  let rmutex = Mutex.create () in
  let ok = ref 0
  and degraded = ref 0
  and errors = ref 0
  and retried = ref 0
  and failed_over = ref 0
  and hedge_wins = ref 0 in
  let accepted = ref [] in
  let ladder : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let last_s = ref (Obs.now ()) in
  let running = ref 0 in
  let slots = Mutex.create () in
  let slot_free = Condition.create () in
  let call i =
    let outcome =
      Client.call cl
        ~request_id:(Printf.sprintf "q%d" i)
        (solve_fields o w i)
    in
    Mutex.lock rmutex;
    (match outcome with
     | Ok (out : Client.call_outcome) ->
       let r = out.Client.response in
       if r.Wire.Proto.status = "ok" then incr ok else incr degraded;
       accepted := out.Client.elapsed_ms :: !accepted;
       if out.Client.retries > 0 then incr retried;
       if out.Client.failovers > 0 then incr failed_over;
       if out.Client.hedge_won then incr hedge_wins;
       let rung =
         if r.Wire.Proto.cache_hit then Some "cache"
         else
           Option.bind
             (Json.member "ladder" r.Wire.Proto.json)
             Json.to_str
       in
       Option.iter
         (fun rung ->
           Hashtbl.replace ladder rung
             (1 + Option.value (Hashtbl.find_opt ladder rung) ~default:0))
         rung
     | Error (e : Client.call_error) ->
       incr errors;
       if e.Client.err_retries > 0 then incr retried);
    let now = Obs.now () in
    if now > !last_s then last_s := now;
    Mutex.unlock rmutex;
    Mutex.lock slots;
    decr running;
    Condition.signal slot_free;
    Mutex.unlock slots
  in
  let start_s = Obs.now () in
  let threads = ref [] in
  let due = ref start_s in
  for i = 0 to o.requests - 1 do
    due := !due +. w.gaps.(i);
    let delay = !due -. Obs.now () in
    if delay > 0.0 then Thread.delay delay;
    Mutex.lock slots;
    while !running >= max_concurrent_calls do
      Condition.wait slot_free slots
    done;
    incr running;
    Mutex.unlock slots;
    threads := Thread.create call i :: !threads
  done;
  List.iter Thread.join !threads;
  Client.close cl;
  summarize ~sent:o.requests ~start_s ~last_s:!last_s ~conn_lost:0
    ~retried:!retried ~failed_over:!failed_over ~hedge_wins:!hedge_wins
    ~counts:(!ok, !degraded, 0, !errors, !accepted, [], ladder)

(* ---------------- dispatch ---------------- *)

let run_multi targets o =
  validate o;
  if targets = [] then invalid_arg "loadgen: no targets";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Resilience off and a single endpoint: the legacy path, whose wire
     behavior (frames, connection fan-out, no request_id) is
     byte-identical to the pre-client loadgen. *)
  if o.retries = 0 && o.hedge_after_ms = None && List.length targets = 1 then
    run_legacy (List.hd targets) o
  else run_resilient targets o

let run target o = run_multi [ target ] o
