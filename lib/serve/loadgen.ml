open Confcall

type target = Tcp of int | Unix_path of string

type opts = {
  rate : float;
  requests : int;
  budget_ms : float option;
  solver : string option;
  chain : string option;
  m : int;
  c : int;
  d : int;
  instances : int;
  connections : int;
  seed : int;
  cache : bool;
  timeout_s : float;
}

let default_opts =
  {
    rate = 50.0;
    requests = 200;
    budget_ms = None;
    solver = Some "greedy";
    chain = None;
    m = 3;
    c = 12;
    d = 2;
    instances = 32;
    connections = 4;
    seed = 1;
    cache = false;
    timeout_s = 30.0;
  }

type stats = {
  sent : int;
  ok : int;
  degraded : int;
  rejected : int;
  errors : int;
  unanswered : int;
  duration_s : float;
  throughput : float;
  accepted_ms : float array;
  rejected_ms : float array;
  ladder : (string * int) list;
}

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    let idx = Int.max 0 (Int.min (n - 1) (rank - 1)) in
    xs.(idx)
  end

let validate o =
  if not (Float.is_finite o.rate) || o.rate <= 0.0 then
    invalid_arg "loadgen: rate must be positive";
  if o.requests < 1 then invalid_arg "loadgen: requests must be >= 1";
  if o.instances < 1 then invalid_arg "loadgen: instances must be >= 1";
  if o.connections < 1 then invalid_arg "loadgen: connections must be >= 1";
  (match o.budget_ms with
   | Some b when not (Float.is_finite b) || b <= 0.0 ->
     invalid_arg "loadgen: budget_ms must be positive"
   | _ -> ())

let connect target =
  match target with
  | Tcp port ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* One record per response, filled in by the receiver threads. *)
type reply = { status : string; rung : string option; recv_s : float }

let run target o =
  validate o;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let rng = Prob.Rng.create ~seed:o.seed in
  let pool =
    Array.init o.instances (fun _ ->
        Instance.to_string
          (Instance.random_zipf rng ~s:1.1 ~m:o.m ~c:o.c ~d:o.d))
  in
  let assignment = Array.init o.requests (fun _ -> Prob.Rng.int rng o.instances) in
  let gaps =
    Array.init o.requests (fun i ->
        if i = 0 then 0.0 else Prob.Rng.exponential rng ~rate:o.rate)
  in
  let frame i =
    let fields =
      [
        ("id", Json.Str (Printf.sprintf "r%d" i));
        ("op", Json.Str "solve");
        ("instance", Json.Str pool.(assignment.(i)));
      ]
      @ (match o.solver with
         | Some s -> [ ("solver", Json.Str s) ]
         | None -> [])
      @ (match o.chain with
         | Some c -> [ ("chain", Json.Str c) ]
         | None -> [])
      @ (match o.budget_ms with
         | Some b -> [ ("budget_ms", Json.Num b) ]
         | None -> [])
      @ if o.cache then [] else [ ("cache", Json.Bool false) ]
    in
    Json.to_string (Json.Obj fields) ^ "\n"
  in
  let conns = Array.init o.connections (fun _ -> connect target) in
  let replies : (int, reply) Hashtbl.t = Hashtbl.create o.requests in
  let rmutex = Mutex.create () in
  let answered = Atomic.make 0 in
  let receiver fd =
    let chunk = Bytes.create 65536 in
    let acc = Buffer.create 4096 in
    let handle line =
      match Json.parse line with
      | Error _ -> ()
      | Ok json ->
        let str k =
          Option.bind (Json.member k json) Json.to_str
        in
        (match str "id" with
         | Some id
           when String.length id > 1 && id.[0] = 'r' ->
           (match int_of_string_opt (String.sub id 1 (String.length id - 1)) with
            | Some i ->
              let reply =
                {
                  status = Option.value (str "status") ~default:"error";
                  rung =
                    (match str "cache" with
                     | Some "hit" -> Some "cache"
                     | _ -> str "ladder");
                  recv_s = Obs.now ();
                }
              in
              Mutex.lock rmutex;
              if not (Hashtbl.mem replies i) then begin
                Hashtbl.replace replies i reply;
                Atomic.incr answered
              end;
              Mutex.unlock rmutex
            | None -> ())
         | _ -> ())
    in
    let rec pump () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        for i = 0 to n - 1 do
          let c = Bytes.get chunk i in
          if c = '\n' then begin
            handle (Buffer.contents acc);
            Buffer.clear acc
          end
          else Buffer.add_char acc c
        done;
        pump ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
      | exception Unix.Unix_error _ -> ()
      | exception Sys_error _ -> ()
    in
    pump ()
  in
  let receivers = Array.map (fun fd -> Thread.create receiver fd) conns in
  let send_s = Array.make o.requests 0.0 in
  let start_s = Obs.now () in
  let sent = ref 0 in
  (* Open loop: each request goes out at its scheduled arrival time,
     whatever the daemon is doing. Falling behind (blocked writes) is
     made visible by sending immediately once past-due. *)
  (try
     let due = ref start_s in
     for i = 0 to o.requests - 1 do
       due := !due +. gaps.(i);
       let delay = !due -. Obs.now () in
       if delay > 0.0 then Thread.delay delay;
       send_s.(i) <- Obs.now ();
       write_all conns.(i mod o.connections) (frame i);
       incr sent
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  (* Straggler window: responses owed for everything sent. *)
  let deadline = Obs.now () +. o.timeout_s in
  while Atomic.get answered < !sent && Obs.now () < deadline do
    Thread.delay 0.01
  done;
  (* Tear down: a full shutdown unblocks the receivers (read returns
     0) even if the daemon still holds its side open. *)
  Array.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  Array.iter Thread.join receivers;
  Array.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    conns;
  let last_s = ref start_s in
  let ok = ref 0
  and degraded = ref 0
  and rejected = ref 0
  and errors = ref 0 in
  let accepted = ref []
  and shed = ref [] in
  let ladder : (string, int) Hashtbl.t = Hashtbl.create 8 in
  for i = 0 to !sent - 1 do
    match Hashtbl.find_opt replies i with
    | None -> ()
    | Some r ->
      if r.recv_s > !last_s then last_s := r.recv_s;
      let latency_ms = (r.recv_s -. send_s.(i)) *. 1000.0 in
      (match r.status with
       | "ok" | "degraded" ->
         if r.status = "ok" then incr ok else incr degraded;
         accepted := latency_ms :: !accepted;
         Option.iter
           (fun rung ->
             Hashtbl.replace ladder rung
               (1 + Option.value (Hashtbl.find_opt ladder rung) ~default:0))
           r.rung
       | "rejected" ->
         incr rejected;
         shed := latency_ms :: !shed
       | _ -> incr errors)
  done;
  let answered_n = !ok + !degraded + !rejected + !errors in
  let duration_s = Float.max (!last_s -. start_s) 1e-9 in
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  {
    sent = !sent;
    ok = !ok;
    degraded = !degraded;
    rejected = !rejected;
    errors = !errors;
    unanswered = !sent - answered_n;
    duration_s;
    throughput = float_of_int answered_n /. duration_s;
    accepted_ms = sorted !accepted;
    rejected_ms = sorted !shed;
    ladder =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) ladder []);
  }
