(** Solver-result cache for the daemon, keyed on
    {!Confcall.Signature.canonical_key} material.

    In-memory hash table, optionally backed by a crash-safe
    {!Confcall.Journal} ([key TAB payload] lines, torn tails dropped on
    load) so a restarted daemon serves hits for everything the previous
    incarnation solved. Thread-safe: connection threads look up, worker
    domains store.

    Only {e clean} results belong here — the server stores a payload
    only when the solve completed undegraded, so an overload-downgraded
    or deadline-clipped answer can never be replayed to a healthy
    system. *)

type t

(** [create ?path ?fsync ()] — memory-only when [path] is [None];
    otherwise loads (or creates) the journal at [path]. [fsync]
    (default false) makes each store survive power loss.
    @raise Invalid_argument as {!Confcall.Journal.load_or_create}
    (duplicate ids in a corrupted file). *)
val create : ?path:string -> ?fsync:bool -> unit -> t

val find : t -> key:string -> string option
(** Increments the hit/miss counters (also mirrored to [Obs] as
    [serve_cache_hits]/[serve_cache_misses] when metrics are on). *)

val store : t -> key:string -> payload:string -> unit
(** First writer wins; a concurrent duplicate store is a no-op. The
    payload must be journal-safe (no newlines). *)

val entries : t -> int

val hits : t -> int

val misses : t -> int

val close : t -> unit
