(** Solver-result cache for the daemon, keyed on
    {!Confcall.Signature.canonical_key} material.

    In-memory LRU (bounded at [max_entries]; least-recently-used
    entries are evicted, counted in {!evictions}), optionally backed by
    a crash-safe {!Confcall.Journal} so a restarted daemon serves hits
    for everything the previous incarnation solved — loading keeps the
    {e newest} [max_entries] journal records resident; the rest stay on
    disk. Thread-safe: connection threads look up, worker domains
    store.

    Only {e clean} results belong here — the server stores a payload
    only when the solve completed undegraded, so an overload-downgraded
    or deadline-clipped answer can never be replayed to a healthy
    system.

    Failure containment (DESIGN §11): a journal append that fails (disk
    full, torn write, injected fault) costs only that entry's
    persistence — the in-memory entry stands, the error is counted in
    {!store_errors}, and the daemon keeps serving. *)

type t

(** Default [max_entries]: 65536. *)
val default_max_entries : int

(** [create ?path ?fsync ?max_entries ()] — memory-only when [path] is
    [None]; otherwise loads (or creates) the journal at [path]. [fsync]
    (default false) makes each store survive power loss.
    @raise Invalid_argument as {!Confcall.Journal.load_or_create}
    (duplicate ids in a corrupted file), or when [max_entries < 1]. *)
val create : ?path:string -> ?fsync:bool -> ?max_entries:int -> unit -> t

val find : t -> key:string -> string option
(** Marks the entry most-recently-used. Increments the hit/miss
    counters (also mirrored to [Obs] as
    [serve_cache_hits]/[serve_cache_misses] when metrics are on). *)

val store : t -> key:string -> payload:string -> unit
(** First writer wins; a concurrent duplicate store is a no-op. May
    evict the least-recently-used entry ([serve_cache_evictions]).
    Journal failures are absorbed ({!store_errors}). The payload must
    be journal-safe (no newlines). *)

val entries : t -> int

val hits : t -> int

val misses : t -> int

val evictions : t -> int
(** Entries dropped to keep the cache within [max_entries] (including
    any dropped while loading an over-cap journal). *)

val store_errors : t -> int
(** Journal appends that failed and were absorbed. *)

val max_entries : t -> int

val close : t -> unit
