(* The JSONL protocol's JSON lives in [lib/wire] so the client runtime
   ([lib/client]) can share it without depending on the daemon; this
   alias keeps [Serve.Json] working for existing callers. *)
include Wire.Json
