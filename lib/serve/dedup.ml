(* Idempotency table: request_id -> execution state.

   The client retries and hedges freely; this table is what makes that
   safe on the server side. The first frame carrying a given
   [request_id] executes; any frame with the same id that arrives while
   that execution is in flight is parked as a waiter and answered from
   the single execution's terminal response; any frame arriving after
   completion is answered immediately from a bounded LRU of recent
   terminals. Either way the work runs — and is journalled — exactly
   once per daemon.

   Generic in both the waiter handle ['w] (the server stores
   (connection, frame id) pairs; tests store ints) and the completion
   payload ['p] (the server stores rendered response fragments), so the
   table itself stays pure bookkeeping under one internal lock. *)

(* [Done] entries form an intrusive doubly-linked LRU over their
   request-id keys, newest at the front, same construction as
   [Cache]. *)
type 'p node = {
  payload : 'p;
  mutable prev : string option;
  mutable next : string option;
}

type ('w, 'p) entry = In_flight of { mutable waiters : 'w list } | Done of 'p node

type ('w, 'p) t = {
  lock : Mutex.t;
  table : (string, ('w, 'p) entry) Hashtbl.t;
  max_completed : int;
  mutable front : string option;
  mutable back : string option;
  mutable completed : int;
  mutable hits_in_flight : int;
  mutable hits_completed : int;
  mutable evictions : int;
}

type stats = {
  in_flight : int;
  completed : int;
  hits_in_flight : int;
  hits_completed : int;
  evictions : int;
}

let create ~max_completed =
  if max_completed < 1 then invalid_arg "Dedup: max_completed must be >= 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    max_completed;
    front = None;
    back = None;
    completed = 0;
    hits_in_flight = 0;
    hits_completed = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---- intrusive LRU plumbing (keys of Done entries) ---- *)

let done_exn t key =
  match Hashtbl.find_opt t.table key with
  | Some (Done d) -> d
  | _ -> invalid_arg "Dedup: LRU key is not a Done entry"

let unlink t d =
  (match d.prev with
   | Some p -> (done_exn t p).next <- d.next
   | None -> t.front <- d.next);
  (match d.next with
   | Some n -> (done_exn t n).prev <- d.prev
   | None -> t.back <- d.prev);
  d.prev <- None;
  d.next <- None

let push_front t key d =
  d.prev <- None;
  d.next <- t.front;
  (match t.front with
   | Some f -> (done_exn t f).prev <- Some key
   | None -> t.back <- Some key);
  t.front <- Some key

let touch t key d =
  if t.front <> Some key then begin
    unlink t d;
    push_front t key d
  end

let evict_oldest t =
  match t.back with
  | None -> ()
  | Some key ->
    let d = done_exn t key in
    unlink t d;
    Hashtbl.remove t.table key;
    t.completed <- t.completed - 1;
    t.evictions <- t.evictions + 1

(* ---- the three transitions ---- *)

let submit t key waiter =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | None ->
        Hashtbl.replace t.table key (In_flight { waiters = [] });
        `Execute
      | Some (In_flight e) ->
        e.waiters <- waiter :: e.waiters;
        t.hits_in_flight <- t.hits_in_flight + 1;
        `Queued
      | Some (Done d) ->
        touch t key d;
        t.hits_completed <- t.hits_completed + 1;
        `Replay d.payload)

(* Terminal answer produced: memoize it, return the parked waiters for
   the caller to answer (outside the lock). *)
let complete t key payload =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some (In_flight e) ->
        let d = { payload; prev = None; next = None } in
        Hashtbl.replace t.table key (Done d);
        push_front t key d;
        t.completed <- t.completed + 1;
        if t.completed > t.max_completed then evict_oldest t;
        List.rev e.waiters
      | Some (Done _) | None ->
        (* completing twice, or completing something never submitted:
           nothing to memoize that is not already there *)
        [])

(* Execution never happened (admission rejected the owner): drop the
   in-flight entry so a later retry may execute, and hand back any
   waiters that raced in so they hear the rejection too. *)
let abort t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some (In_flight e) ->
        Hashtbl.remove t.table key;
        List.rev e.waiters
      | Some (Done _) | None -> [])

let stats t =
  locked t (fun () ->
      {
        in_flight = Hashtbl.length t.table - t.completed;
        completed = t.completed;
        hits_in_flight = t.hits_in_flight;
        hits_completed = t.hits_completed;
        evictions = t.evictions;
      })
