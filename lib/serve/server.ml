open Confcall

type listen = Tcp of int | Unix_path of string

type config = {
  listen : listen;
  domains : int;
  capacity : int;
  max_connections : int;
  cache_path : string option;
  cache_fsync : bool;
  max_frame_bytes : int;
  drain_grace_ms : float;
  quiet : bool;
  cache_max : int;
  write_timeout_ms : float;
  max_buffer_bytes : int;
  request_log : string option;
      (** append-only journal of executed request_ids (id TAB status):
          the exactly-once audit trail for retried/hedged requests *)
  dedup_max : int;  (** completed idempotency entries kept (LRU) *)
}

let default_config listen =
  {
    listen;
    domains = 1;
    capacity = 64;
    max_connections = 256;
    cache_path = None;
    cache_fsync = false;
    max_frame_bytes = 4 * 1024 * 1024;
    drain_grace_ms = 10_000.0;
    quiet = false;
    cache_max = Cache.default_max_entries;
    write_timeout_ms = 5_000.0;
    max_buffer_bytes = 1024 * 1024;
    request_log = None;
    dedup_max = 4096;
  }

(* ---------------- the shedding ladder ---------------- *)

type ladder = Full | Heuristic | Fast

let ladder_to_string = function
  | Full -> "full"
  | Heuristic -> "heuristic"
  | Fast -> "fast"

let ladder_of_depth ~capacity depth =
  if depth * 2 < capacity then Full
  else if depth * 4 < capacity * 3 then Heuristic
  else Fast

(* Mirrors the runner's always-fast set: stages that run even after a
   deadline has passed, under the grace token. *)
let is_fast = function
  | Solver.Greedy | Solver.Page_all | Solver.Within_order _
  | Solver.Bandwidth_limited _ ->
    true
  | _ -> false

let apply_ladder ladder chain =
  match ladder with
  | Full -> (chain, false)
  | Heuristic ->
    let kept =
      List.filter (fun s -> is_fast s || s = Solver.Local_search) chain
    in
    let kept =
      if kept = [] then Solver.[ Local_search; Greedy ] else kept
    in
    (kept, kept <> chain)
  | Fast ->
    let kept = List.filter is_fast chain in
    let kept = if kept = [] then [ Solver.Greedy ] else kept in
    (kept, kept <> chain)

(* ---------------- JSON emission ----------------

   Pre-rendered string fields, byte-compatible with the CLI's emitter
   (same separators, same %.12g for numbers) — the differential test
   compares daemon strategy/EP fields against `confcall solve --json`
   literally. *)

let jstr s = Json.to_string (Json.Str s)
let jnum x = Json.to_string (Json.Num x)
let jbool b = if b then "true" else "false"
let field (k, v) = jstr k ^ ": " ^ v
let fragment fields = String.concat ", " (List.map field fields)
let compose fields = "{" ^ fragment fields ^ "}"
let jarr items = "[" ^ String.concat ", " items ^ "]"

let jstrategy s =
  jarr
    (Array.to_list
       (Array.map
          (fun g -> jarr (Array.to_list (Array.map string_of_int g)))
          (Strategy.groups s)))

(* ---------------- state ---------------- *)

(* Each connection owns a dedicated writer systhread draining a
   bounded output buffer: solver lanes and connection readers only ever
   append bytes under the mutex (never touching the socket), so a
   stalled or slow client can pin nothing but its own writer — and that
   writer enforces a per-chunk deadline, after which the client is
   declared dead and disconnected. Overflowing the buffer (a client
   reading slower than it asks questions) kills the connection the same
   way: backpressure, not unbounded memory. *)
type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;
  wcond : Condition.t;  (* writer wakeup: bytes queued, or shutdown *)
  wbuf : Buffer.t;
  mutable wclosed : bool;  (* no more appends; writer exits once dry *)
  mutable alive : bool;
  pending : int Atomic.t;  (** admitted jobs not yet answered *)
}

type work =
  | Jsolve of {
      inst : Instance.t;
      objective : Objective.t;
      spec : Solver.spec option;
      chain : Solver.spec list option;
      budget_ms : float option;
      ckey : string option;  (** cache key, when caching applies *)
    }
  | Jsim of {
      build : ?seed:int -> unit -> Cellsim.Sim.config;
      scenario : string;
      seed : int;
      replicas : int;
    }

type job = {
  conn : conn;
  id : string;
  request_id : string option;  (** idempotency key, when the client sent one *)
  work : work;
  admitted_s : float;  (** deadlines are armed here, not at execution *)
  ladder : ladder;
}

type state = {
  cfg : config;
  qmutex : Mutex.t;
  qnonempty : Condition.t;
  queue : job Queue.t;
  stopping : bool Atomic.t;  (** drain begun: reject new submissions *)
  drain_flag : bool Atomic.t;  (** signal-handler-safe drain request *)
  workers_done : bool Atomic.t;
  cache_closed : bool Atomic.t;
  connections : int Atomic.t;
  inflight : int Atomic.t;
  requests : int Atomic.t;
  shed : int Atomic.t;
  cache : Cache.t;
  (* Circuit breaker, one rung below the shedding ladder: when even
     Fast-rung shedding is rejecting at a sustained rate (the queue is
     pinned at capacity), admission stops touching the queue lock at
     all for a cooldown window and rejects instantly with a
     [retry_after_ms] hint — the cheapest possible "come back later". *)
  breaker_until : float Atomic.t;  (* epoch s; 0 = closed *)
  breaker_window_start : float Atomic.t;
  breaker_window_sheds : int Atomic.t;
  exec_ms_ewma : float Atomic.t;  (* retry-after estimator *)
  (* Idempotency: request_id -> execution state. Waiters are
     (connection, frame id) pairs; the memoized payload is the terminal
     (status, rendered-fields-after-status) pair. *)
  dedup : (conn * string, string * string) Dedup.t;
  reqlog : Journal.t option;
  rlmutex : Mutex.t;  (* Journal.t is not thread-safe *)
}

let breaker_window_s = 1.0
let breaker_cooldown_ms = 500.0

(* Sheds per window that trip the breaker: at least one full queue's
   worth, so a brief burst against a small queue does not slam the
   door. *)
let breaker_threshold capacity = max 8 capacity

type handle = {
  st : state;
  accept_thread : Thread.t;
  workers_thread : Thread.t;
  bound : Unix.sockaddr;
}

(* ---------------- socket plumbing ---------------- *)

exception Write_stalled

(* Write with a deadline per [select]: a peer that stops reading makes
   the socket unwritable, [select] times out, and the caller declares
   the client dead — no systhread is ever pinned by a stalled socket.
   The injected [serve.write] fault is a transient (absorbed, chunk
   retried); the delay point models a slow kernel buffer. *)
let write_all_deadline fd s ~timeout_s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      Faultpoint.delay "serve.write.delay";
      match Faultpoint.hit "serve.write" with
      | exception Faultpoint.Injected _ -> go off
      | () -> (
        match Unix.select [] [ fd ] [] timeout_s with
        | _, [], _ -> raise Write_stalled
        | _ -> (
          match Unix.write_substring fd s off (n - off) with
          | w -> go (off + w)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off)
    end
  in
  go 0

(* Best-effort blocking write for pre-connection rejects (no [conn]
   exists yet); still deadline-bounded so an accept-time abuser cannot
   stall the accept loop's helper. *)
let write_all fd s = write_all_deadline fd s ~timeout_s:1.0

(* One line per response, appended atomically w.r.t. other responses on
   the same connection: workers complete out of order, so pipelined
   responses interleave only at line granularity. A dead peer (or a
   full buffer) flips [alive] instead of raising — response loss to a
   vanished or hopelessly slow client is not an error. *)
let conn_send ?(max_buffer = max_int) conn line =
  Mutex.lock conn.wmutex;
  (if conn.alive && not conn.wclosed then begin
     if Buffer.length conn.wbuf + String.length line + 1 > max_buffer then begin
       conn.alive <- false;
       if Obs.on () then Obs.count "serve_write_overflow"
     end
     else begin
       Buffer.add_string conn.wbuf line;
       Buffer.add_char conn.wbuf '\n'
     end;
     Condition.signal conn.wcond
   end);
  Mutex.unlock conn.wmutex

(* The per-connection writer: sleeps until bytes are queued, drains
   them outside the lock under the write deadline. Exits when the
   connection is shut down ([wclosed]) and the buffer is dry, or the
   moment the peer is declared dead. *)
let writer_loop cfg conn =
  let timeout_s = cfg.write_timeout_ms /. 1000.0 in
  let rec loop () =
    Mutex.lock conn.wmutex;
    while Buffer.length conn.wbuf = 0 && conn.alive && not conn.wclosed do
      Condition.wait conn.wcond conn.wmutex
    done;
    if Buffer.length conn.wbuf = 0 || not conn.alive then
      Mutex.unlock conn.wmutex (* done: shutdown drained, or peer dead *)
    else begin
      let chunk = Buffer.contents conn.wbuf in
      Buffer.clear conn.wbuf;
      Mutex.unlock conn.wmutex;
      (match write_all_deadline conn.fd chunk ~timeout_s with
       | () -> ()
       | exception Write_stalled ->
         Mutex.lock conn.wmutex;
         conn.alive <- false;
         Mutex.unlock conn.wmutex;
         if Obs.on () then Obs.count "serve_write_timeouts";
         (* unblock the reader too: the connection is over *)
         (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
       | exception (Unix.Unix_error _ | Sys_error _) ->
         Mutex.lock conn.wmutex;
         conn.alive <- false;
         Mutex.unlock conn.wmutex);
      loop ()
    end
  in
  loop ()

let respond st conn line ~status =
  if Obs.on () then Obs.count ("serve_responses_" ^ status);
  conn_send ~max_buffer:st.cfg.max_buffer_bytes conn line

(* ---------------- idempotency fan-out ---------------- *)

let record_request st rid ~status =
  match st.reqlog with
  | None -> ()
  | Some j ->
    Mutex.lock st.rlmutex;
    (match Journal.record j ~id:rid ~payload:status with
     | () -> ()
     | exception (Invalid_argument _ | Failure _) ->
       (* duplicate id (an entry outlived its dedup memo — possible
          only after LRU eviction) or a broken journal: the daemon
          keeps serving, the log just misses this line *)
       if Obs.on () then Obs.count "serve_reqlog_drops");
    Mutex.unlock st.rlmutex

(* A response rebuilt for a frame that did not execute: same terminal,
   the waiter's own frame id, plus a marker that it was deduplicated. *)
let dedup_line ~id ~status payload =
  "{"
  ^ fragment [ ("id", jstr id); ("status", jstr status) ]
  ^ (if payload = "" then "" else ", " ^ payload)
  ^ ", "
  ^ field ("dedup", jstr "hit")
  ^ "}"

(* Every terminal answer to a request carrying a request_id funnels
   through here: answer the owning connection (byte-identical to the
   pre-idempotency composition), journal the execution, memoize the
   terminal, and answer the waiters parked by retried or hedged
   duplicates of the same request. *)
let terminal st conn ~id ~request_id ~status payload =
  respond st conn ~status
    ("{"
    ^ fragment [ ("id", jstr id); ("status", jstr status) ]
    ^ (if payload = "" then "" else ", " ^ payload)
    ^ "}");
  match request_id with
  | None -> ()
  | Some rid ->
    record_request st rid ~status;
    List.iter
      (fun (wconn, wid) ->
        respond st wconn ~status (dedup_line ~id:wid ~status payload))
      (Dedup.complete st.dedup rid (status, payload))

let terminal_error st conn ~id ~request_id msg =
  match request_id with
  | None ->
    respond st conn ~status:"error" (Proto.error_frame ~id:(Some id) msg)
  | Some _ ->
    terminal st conn ~id ~request_id ~status:"error"
      (fragment [ ("error", jstr msg) ])

(* A rejected submission never executed: drop the in-flight entry so a
   later retry may run, and give any waiters that raced in the same
   rejection (with the backoff hint) rather than an eternal wait. *)
let reject_waiters st ~request_id ?retry_after_ms ~reason () =
  match request_id with
  | None -> ()
  | Some rid ->
    List.iter
      (fun (wconn, wid) ->
        respond st wconn ~status:"rejected"
          (Proto.rejected_frame ~id:wid ?retry_after_ms ~reason ()))
      (Dedup.abort st.dedup rid)

(* ---------------- drain ---------------- *)

let initiate_drain st =
  if not (Atomic.exchange st.stopping true) then begin
    Mutex.lock st.qmutex;
    Condition.broadcast st.qnonempty;
    Mutex.unlock st.qmutex
  end

(* ---------------- admission control ---------------- *)

(* How long a rejected client should back off: roughly the time for the
   current queue to drain through the workers, from the execution-time
   EWMA. Clamped — never 0 (that invites an instant retry storm), never
   more than 10 s. *)
let retry_after_hint st ~depth =
  let ewma = Atomic.get st.exec_ms_ewma in
  let per_job = if ewma > 0.0 then ewma else 10.0 in
  let est = float_of_int (max depth 1) *. per_job
            /. float_of_int st.cfg.domains in
  int_of_float (Float.min 10_000.0 (Float.max 1.0 est))

(* One shed: slide the 1 s window, and trip the breaker when the rate
   within it crosses the threshold. Racy counts under concurrent sheds
   only make the trip a request or two late — the breaker is a relief
   valve, not an invariant. *)
let note_shed st =
  Atomic.incr st.shed;
  if Obs.on () then Obs.count "serve_shed_total";
  let now = Obs.now () in
  if now -. Atomic.get st.breaker_window_start > breaker_window_s then begin
    Atomic.set st.breaker_window_start now;
    Atomic.set st.breaker_window_sheds 1
  end
  else if
    Atomic.fetch_and_add st.breaker_window_sheds 1 + 1
    >= breaker_threshold st.cfg.capacity
    && Atomic.get st.breaker_until < now
  then begin
    Atomic.set st.breaker_until (now +. (breaker_cooldown_ms /. 1000.0));
    Atomic.set st.breaker_window_sheds 0;
    if Obs.on () then Obs.count "serve_breaker_opens"
  end

let breaker_open_ms st =
  let rem = Atomic.get st.breaker_until -. Obs.now () in
  if rem > 0.0 then Some (int_of_float (Float.ceil (rem *. 1000.0)))
  else None

let admit st conn ~id ~request_id work =
  match breaker_open_ms st with
  | Some retry_after_ms ->
    (* Open breaker: reject without taking any lock. *)
    Atomic.incr st.shed;
    if Obs.on () then begin
      Obs.count "serve_shed_total";
      Obs.count "serve_breaker_rejects"
    end;
    respond st conn ~status:"rejected"
      (Proto.rejected_frame ~id ~retry_after_ms ~reason:"overload" ());
    reject_waiters st ~request_id ~retry_after_ms ~reason:"overload" ()
  | None ->
  Mutex.lock st.qmutex;
  if Atomic.get st.stopping then begin
    Mutex.unlock st.qmutex;
    respond st conn ~status:"rejected"
      (Proto.rejected_frame ~id ~reason:"draining" ());
    reject_waiters st ~request_id ~reason:"draining" ()
  end
  else begin
    let depth = Queue.length st.queue in
    if depth >= st.cfg.capacity then begin
      Mutex.unlock st.qmutex;
      note_shed st;
      let retry_after_ms = retry_after_hint st ~depth in
      respond st conn ~status:"rejected"
        (Proto.rejected_frame ~id ~retry_after_ms ~reason:"overload" ());
      reject_waiters st ~request_id ~retry_after_ms ~reason:"overload" ()
    end
    else begin
      let ladder = ladder_of_depth ~capacity:st.cfg.capacity depth in
      Atomic.incr conn.pending;
      Atomic.incr st.inflight;
      Queue.add
        { conn; id; request_id; work; admitted_s = Obs.now (); ladder }
        st.queue;
      Condition.signal st.qnonempty;
      if Obs.on () then begin
        Obs.gauge_set "serve_queue_depth" (depth + 1);
        Obs.count ("serve_ladder_" ^ ladder_to_string ladder)
      end;
      Mutex.unlock st.qmutex
    end
  end

(* ---------------- solve execution (worker side) ---------------- *)

let mode_of_solve ~spec ~chain ~budgeted =
  match chain with
  | Some c -> Printf.sprintf "chain:%s|%s" (Runner.chain_to_string c)
                (if budgeted then "budgeted" else "unbudgeted")
  | None ->
    (match (spec, budgeted) with
     | Some s, false -> "spec:" ^ Solver.spec_to_string s
     | Some s, true ->
       Printf.sprintf "chain:%s|budgeted" (Solver.spec_to_string s)
     | None, true -> "chain:default|budgeted"
     | None, false -> "spec:greedy")

let cache_key ~objective ~mode inst =
  Signature.canonical_key ~objective inst
  ^ "|"
  ^ Digest.to_hex (Digest.string mode)

let hit_response ~id payload =
  "{" ^ fragment [ ("id", jstr id); ("status", jstr "ok") ] ^ ", " ^ payload
  ^ ", " ^ field ("cache", jstr "hit") ^ "}"

let outcome_fields spec (o : Solver.outcome) =
  [
    ("solver", jstr (Solver.spec_to_string spec));
    ("strategy", jstrategy o.Solver.strategy);
    ("expected_paging", jnum o.Solver.expected_paging);
    ("exact", jbool o.Solver.exact);
  ]

(* Feed the retry-after estimator. A plain [Atomic.set] race loses at
   most one sample of a smoothed hint. *)
let note_exec_ms st elapsed_ms =
  let prev = Atomic.get st.exec_ms_ewma in
  Atomic.set st.exec_ms_ewma
    (if prev <= 0.0 then elapsed_ms
     else (0.9 *. prev) +. (0.1 *. elapsed_ms))

let execute_solve st job ~inst ~objective ~spec ~chain ~budget_ms ~ckey =
  let start_s = Obs.now () in
  let queue_ms = (start_s -. job.admitted_s) *. 1000.0 in
  let runner_path = budget_ms <> None || chain <> None in
  let finish ~status ?reason core =
    let elapsed_ms = (Obs.now () -. start_s) *. 1000.0 in
    note_exec_ms st elapsed_ms;
    if Obs.on () then begin
      Obs.observe ~buckets:Obs.latency_ms_buckets "serve_queue_ms" queue_ms;
      Obs.observe ~buckets:Obs.latency_ms_buckets "serve_exec_ms" elapsed_ms
    end;
    (* Only clean answers enter the cache: full ladder, full budget,
       nothing degraded — a clipped result must never be replayed to a
       healthy system. *)
    (match (status, ckey) with
     | "ok", Some key -> Cache.store st.cache ~key ~payload:(fragment core)
     | _ -> ());
    let tail =
      [
        ("ladder", jstr (ladder_to_string job.ladder));
        ("queue_ms", jnum queue_ms);
        ("elapsed_ms", jnum elapsed_ms);
        ("cache", jstr (if ckey = None then "off" else "miss"));
      ]
      @ match reason with
        | Some r -> [ ("degraded_reason", jstr r) ]
        | None -> []
    in
    terminal st job.conn ~id:job.id ~request_id:job.request_id ~status
      (fragment (core @ tail))
  in
  if not runner_path then begin
    (* Direct path: one solver, no deadline — mirrors `confcall solve`.
       Under load the ladder swaps an expensive method for greedy. *)
    let requested = Option.value spec ~default:Solver.Greedy in
    let effective, downgraded =
      if job.ladder = Full || is_fast requested then (requested, false)
      else (Solver.Greedy, true)
    in
    match Solver.solve ~objective effective inst with
    | o ->
      let status = if downgraded then "degraded" else "ok" in
      let reason = if downgraded then Some "overload" else None in
      finish ~status ?reason (outcome_fields effective o)
    | exception Invalid_argument msg ->
      terminal_error st job.conn ~id:job.id ~request_id:job.request_id
        ("inapplicable: " ^ msg)
  end
  else begin
    let base_chain =
      match (chain, spec) with
      | Some c, _ -> c
      | None, Some s -> [ s ]
      | None, None -> Runner.default_chain
    in
    let eff_chain, downgraded = apply_ladder job.ladder base_chain in
    (* The budget was armed at admission: queueing time already counts
       against it. An exhausted budget still runs the chain under a
       ~1 ms token, so the runner's grace window returns the anytime
       best-so-far instead of nothing. *)
    let expired =
      match budget_ms with Some b -> queue_ms >= b | None -> false
    in
    let eff_budget =
      Option.map (fun b -> Float.max (b -. queue_ms) 1.0) budget_ms
    in
    let report =
      (* Worker lanes are domains: each reuses its own flat arena across
         the jobs it serves, so steady-state solving stays off the minor
         heap. *)
      Runner.run ~objective ?budget_ms:eff_budget ~chain:eff_chain
        ~arena:(Flat.domain_arena ()) inst
    in
    match report.Runner.winner with
    | None ->
      let msg =
        match report.Runner.failure with
        | Some e -> Runner.error_to_string e
        | None -> "no result"
      in
      terminal_error st job.conn ~id:job.id ~request_id:job.request_id msg
    | Some (wspec, o) ->
      let clipped =
        expired
        || List.exists
             (fun (s : Runner.stage_report) ->
               match s.Runner.status with
               | Runner.Degraded | Runner.Failed Runner.Timeout -> true
               | _ -> false)
             report.Runner.stages
      in
      let reasons =
        (if clipped then [ "budget" ] else [])
        @ if downgraded then [ "overload" ] else []
      in
      let status = if reasons = [] then "ok" else "degraded" in
      let reason =
        if reasons = [] then None else Some (String.concat "+" reasons)
      in
      finish ~status ?reason
        (outcome_fields wspec o
        @ [ ("chain", jstr (Runner.chain_to_string report.Runner.chain)) ])
  end

let execute_sim st job ~build ~scenario ~seed ~replicas =
  let start_s = Obs.now () in
  let queue_ms = (start_s -. job.admitted_s) *. 1000.0 in
  let per_scheme =
    if replicas <= 1 then
      let r = Cellsim.Sim.run (build ?seed:(Some seed) ()) in
      List.map
        (fun (s : Cellsim.Sim.scheme_metrics) ->
          ( Cellsim.Sim.scheme_to_string s.Cellsim.Sim.scheme,
            s.Cellsim.Sim.calls,
            s.Cellsim.Sim.cells_paged,
            s.Cellsim.Sim.expected_paging ))
        r.Cellsim.Sim.per_scheme
    else
      let s = Cellsim.Replicate.run_summary ~replicas (build ?seed:(Some seed) ()) in
      List.map
        (fun (a : Cellsim.Replicate.scheme_agg) ->
          ( Cellsim.Sim.scheme_to_string a.Cellsim.Replicate.scheme,
            a.Cellsim.Replicate.calls,
            a.Cellsim.Replicate.cells_paged,
            a.Cellsim.Replicate.expected_paging ))
        s.Cellsim.Replicate.per_scheme
  in
  let elapsed_ms = (Obs.now () -. start_s) *. 1000.0 in
  note_exec_ms st elapsed_ms;
  respond st job.conn ~status:"ok"
    (compose
       [
         ("id", jstr job.id);
         ("status", jstr "ok");
         ("scenario", jstr scenario);
         ("seed", jnum (float_of_int seed));
         ("replicas", jnum (float_of_int replicas));
         ( "per_scheme",
           jarr
             (List.map
                (fun (name, calls, cells, ep) ->
                  compose
                    [
                      ("scheme", jstr name);
                      ("calls", string_of_int calls);
                      ("cells_paged", string_of_int cells);
                      ("expected_paging", jnum ep);
                    ])
                per_scheme) );
         ("queue_ms", jnum queue_ms);
         ("elapsed_ms", jnum elapsed_ms);
       ])

(* Exactly one terminal response per admitted job, even when execution
   throws: the catch-all turns a worker bug into an [error] frame
   instead of a dead daemon. *)
let execute st job =
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr job.conn.pending;
      Atomic.decr st.inflight;
      if Obs.on () then Obs.gauge_set "serve_inflight" (Atomic.get st.inflight))
    (fun () ->
      try
        match job.work with
        | Jsolve { inst; objective; spec; chain; budget_ms; ckey } ->
          execute_solve st job ~inst ~objective ~spec ~chain ~budget_ms ~ckey
        | Jsim { build; scenario; seed; replicas } ->
          execute_sim st job ~build ~scenario ~seed ~replicas
      with e ->
        terminal_error st job.conn ~id:job.id ~request_id:job.request_id
          ("internal: " ^ Printexc.to_string e))

(* Runs as an [Exec.Pool] task: one lane per domain (plus queued
   spares, below). Exits only when draining AND the queue is empty —
   every admitted request is answered before the pool unwinds.

   The [serve.lane.crash] seam fires {e between} jobs, before one is
   taken: a lane death never swallows an admitted request's response —
   it costs a domain, which the pool respawns, and the replacement
   picks up a spare lane task. *)
let rec worker_loop st =
  (try Faultpoint.hit "serve.lane.crash"
   with Faultpoint.Injected _ as e -> raise (Exec.Pool.Killed e));
  Mutex.lock st.qmutex;
  while Queue.is_empty st.queue && not (Atomic.get st.stopping) do
    Condition.wait st.qnonempty st.qmutex
  done;
  match Queue.take_opt st.queue with
  | None ->
    Mutex.unlock st.qmutex (* draining and drained: this lane is done *)
  | Some job ->
    if Obs.on () then Obs.gauge_set "serve_queue_depth" (Queue.length st.queue);
    Mutex.unlock st.qmutex;
    execute st job;
    worker_loop st

(* ---------------- request handling (connection side) ---------------- *)

let parse_objective s =
  match String.lowercase_ascii (String.trim s) with
  | "all" | "find-all" -> Ok Objective.Find_all
  | "any" | "find-any" -> Ok Objective.Find_any
  | other ->
    let other =
      match String.length other >= 5 && String.sub other 0 5 = "find-" with
      | true -> String.sub other 5 (String.length other - 5)
      | false -> other
    in
    (match int_of_string_opt other with
     | Some k when k >= 1 -> Ok (Objective.Find_at_least k)
     | _ -> Error "objective must be all|any|<k>")

let handle_solve st conn ~id (sr : Proto.solve_req) =
  let ( let* ) r f =
    match r with
    | Ok v -> f v
    | Error msg ->
      respond st conn ~status:"error" (Proto.error_frame ~id:(Some id) msg)
  in
  let* inst =
    match Instance.of_string sr.Proto.instance with
    | inst -> Ok inst
    | exception Invalid_argument msg -> Error ("instance: " ^ msg)
  in
  let* objective =
    match sr.Proto.objective with
    | None -> Ok Objective.Find_all
    | Some s -> parse_objective s
  in
  let* () =
    Result.map_error (fun e -> "objective: " ^ e)
      (Objective.validate objective ~m:inst.Instance.m)
  in
  let* spec =
    match sr.Proto.solver with
    | None -> Ok None
    | Some s ->
      Result.map
        (fun s -> Some s)
        (Result.map_error (fun e -> "solver: " ^ e) (Solver.spec_of_string s))
  in
  let* chain =
    match sr.Proto.chain with
    | None -> Ok None
    | Some s ->
      Result.map
        (fun c -> Some c)
        (Result.map_error (fun e -> "chain: " ^ e) (Runner.chain_of_string s))
  in
  let ckey =
    if not sr.Proto.cache then None
    else
      let mode =
        mode_of_solve ~spec ~chain ~budgeted:(sr.Proto.budget_ms <> None)
      in
      Some (cache_key ~objective ~mode inst)
  in
  let request_id = sr.Proto.request_id in
  (* Cache hits are answered here, from the connection thread, without
     touching the queue: a warm daemon under overload still serves
     repeats instantly, and a restarted daemon serves its journal. *)
  let proceed () =
    match Option.bind ckey (fun key -> Cache.find st.cache ~key) with
    | Some payload -> (
      match request_id with
      | None -> respond st conn ~status:"ok" (hit_response ~id payload)
      | Some _ ->
        (* same bytes as [hit_response], via the dedup-completing path *)
        terminal st conn ~id ~request_id ~status:"ok"
          (payload ^ ", " ^ field ("cache", jstr "hit")))
    | None ->
      admit st conn ~id ~request_id
        (Jsolve
           {
             inst;
             objective;
             spec;
             chain;
             budget_ms = sr.Proto.budget_ms;
             ckey;
           })
  in
  match request_id with
  | None -> proceed ()
  | Some rid -> (
    (* The idempotency gate: first frame with this request_id executes;
       a duplicate arriving mid-execution parks as a waiter on the
       single execution; a duplicate arriving after completion replays
       the memoized terminal. *)
    match Dedup.submit st.dedup rid (conn, id) with
    | `Execute -> proceed ()
    | `Queued -> if Obs.on () then Obs.count "serve_dedup_inflight_hits"
    | `Replay (status, payload) ->
      if Obs.on () then Obs.count "serve_dedup_replays";
      respond st conn ~status (dedup_line ~id ~status payload))

let health_response st ~id =
  Mutex.lock st.qmutex;
  let depth = Queue.length st.queue in
  Mutex.unlock st.qmutex;
  let ds = Dedup.stats st.dedup in
  compose
    [
      ("id", jstr id);
      ("status", jstr "ok");
      ("draining", jbool (Atomic.get st.stopping));
      ("queue_depth", string_of_int depth);
      ("capacity", string_of_int st.cfg.capacity);
      ("domains", string_of_int st.cfg.domains);
      ("inflight", string_of_int (Atomic.get st.inflight));
      ("connections", string_of_int (Atomic.get st.connections));
      ("cache_entries", string_of_int (Cache.entries st.cache));
      ("cache_hits", string_of_int (Cache.hits st.cache));
      ("cache_misses", string_of_int (Cache.misses st.cache));
      ("cache_evictions", string_of_int (Cache.evictions st.cache));
      ("breaker_open", jbool (breaker_open_ms st <> None));
      ("pool_respawns", string_of_int (Exec.Pool.total_respawns ()));
      ("dedup_in_flight", string_of_int ds.Dedup.in_flight);
      ("dedup_completed", string_of_int ds.Dedup.completed);
      ( "dedup_hits",
        string_of_int (ds.Dedup.hits_in_flight + ds.Dedup.hits_completed) );
      ("request_log", jbool (st.reqlog <> None));
    ]

let handle_frame st conn line =
  match Proto.decode line with
  | Error (id, msg) ->
    if Obs.on () then Obs.count "serve_frame_errors";
    respond st conn ~status:"error" (Proto.error_frame ~id msg)
  | Ok { Proto.id; req } ->
    Atomic.incr st.requests;
    (match req with
     | Proto.Health ->
       respond st conn ~status:"ok" (health_response st ~id)
     | Proto.Metrics ->
       respond st conn ~status:"ok"
         (compose
            [
              ("id", jstr id);
              ("status", jstr "ok");
              ( "prometheus",
                jstr (Obs.Metrics.to_prometheus Obs.Metrics.default) );
            ])
     | Proto.Drain ->
       initiate_drain st;
       respond st conn ~status:"ok"
         (compose
            [ ("id", jstr id); ("status", jstr "ok"); ("draining", "true") ])
     | Proto.Solve sr -> handle_solve st conn ~id sr
     | Proto.Simulate { scenario; seed; replicas } ->
       (match List.assoc_opt scenario Cellsim.Scenario.all with
        | None ->
          respond st conn ~status:"error"
            (Proto.error_frame ~id:(Some id)
               (Printf.sprintf "unknown scenario %S (expected %s)" scenario
                  (String.concat "|" (List.map fst Cellsim.Scenario.all))))
        | Some build ->
          admit st conn ~id ~request_id:None
            (Jsim { build; scenario; seed; replicas })))

(* ---------------- connection lifecycle ---------------- *)

let read_loop st conn =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let skipping = ref false in
  let handle_line line =
    let line =
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
    in
    if line <> "" then
      try handle_frame st conn line
      with e ->
        respond st conn ~status:"error"
          (Proto.error_frame ~id:None
             ("internal: " ^ Printexc.to_string e))
  in
  let feed byte =
    if byte = '\n' then begin
      if !skipping then skipping := false
      else handle_line (Buffer.contents acc);
      Buffer.clear acc
    end
    else if !skipping then ()
    else begin
      Buffer.add_char acc byte;
      (* Oversized frame: answer once, then discard bytes until the
         next newline resynchronises the stream. *)
      if Buffer.length acc > st.cfg.max_frame_bytes then begin
        skipping := true;
        Buffer.clear acc;
        if Obs.on () then Obs.count "serve_frame_errors";
        respond st conn ~status:"error"
          (Proto.error_frame ~id:None
             (Printf.sprintf "frame exceeds %d bytes" st.cfg.max_frame_bytes))
      end
    end
  in
  let rec pump () =
    Faultpoint.delay "serve.read.delay";
    match
      Faultpoint.hit "serve.read";
      Unix.read conn.fd chunk 0 (Bytes.length chunk)
    with
    | 0 -> ()
    | n ->
      for i = 0 to n - 1 do
        feed (Bytes.get chunk i)
      done;
      pump ()
    | exception Faultpoint.Injected _ -> pump () (* transient: retry *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
    | exception Unix.Unix_error _ -> ()
    | exception Sys_error _ -> ()
  in
  pump ()

let conn_main st fd =
  let conn =
    {
      fd;
      wmutex = Mutex.create ();
      wcond = Condition.create ();
      wbuf = Buffer.create 4096;
      wclosed = false;
      alive = true;
      pending = Atomic.make 0;
    }
  in
  let writer = Thread.create (writer_loop st.cfg) conn in
  if Obs.on () then Obs.gauge_set "serve_connections" (Atomic.get st.connections);
  Fun.protect
    ~finally:(fun () ->
      (* EOF with responses still in flight: linger until the workers
         have answered (or a generous bound passes), then let the
         writer drain what they queued before closing the socket. *)
      let deadline = Obs.now () +. 60.0 in
      while Atomic.get conn.pending > 0 && Obs.now () < deadline do
        Thread.delay 0.005
      done;
      Mutex.lock conn.wmutex;
      conn.wclosed <- true;
      Condition.signal conn.wcond;
      Mutex.unlock conn.wmutex;
      Thread.join writer;
      Mutex.lock conn.wmutex;
      conn.alive <- false;
      Mutex.unlock conn.wmutex;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      Atomic.decr st.connections;
      if Obs.on () then
        Obs.gauge_set "serve_connections" (Atomic.get st.connections))
    (fun () -> read_loop st conn)

(* ---------------- accept loop ---------------- *)

let bind_listen cfg =
  match cfg.listen with
  | Tcp port ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
       Unix.listen fd 128
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | Unix_path path ->
    (try
       if (Unix.stat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
     with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind fd (Unix.ADDR_UNIX path);
       Unix.listen fd 128
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

(* Select with a short timeout instead of a blocking accept: the loop
   doubles as the poller that promotes a signal-handler drain request
   (an atomic flag — handlers must not lock) into the real drain. *)
let accept_loop st lfd =
  let rec go () =
    if Atomic.get st.drain_flag then initiate_drain st;
    if not (Atomic.get st.stopping) then begin
      (match Unix.select [ lfd ] [] [] 0.1 with
       | [], _, _ -> ()
       | _ ->
         (match
            Faultpoint.hit "serve.accept";
            Unix.accept ~cloexec:true lfd
          with
          | exception Faultpoint.Injected _ -> () (* transient: retry *)
          | fd, _ ->
            (* A connection the kernel completed just before the drain
               flag was observed raced the drain fairly: closing it here
               would RST a client mid-burst (its unread request bytes
               turn close into a reset). Serve it — admission answers
               every submission with a terminal "draining" reject. *)
            if Atomic.get st.connections >= st.cfg.max_connections then begin
              (try
                 write_all fd
                   (Proto.error_frame ~id:None "too many connections" ^ "\n")
               with Unix.Unix_error _ | Sys_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else begin
              Atomic.incr st.connections;
              ignore (Thread.create (conn_main st) fd)
            end
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
            ())
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  (* Final sweep: connections already completed by the listen backlog
     when the drain landed would be RST by closing [lfd] under them.
     Accept and serve each one — their submissions reject terminally. *)
  let rec sweep () =
    match Unix.select [ lfd ] [] [] 0.0 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept ~cloexec:true lfd with
      | fd, _ ->
        (if Atomic.get st.connections >= st.cfg.max_connections then begin
           (try
              write_all fd
                (Proto.error_frame ~id:None "too many connections" ^ "\n")
            with Unix.Unix_error _ | Sys_error _ -> ());
           try Unix.close fd with Unix.Unix_error _ -> ()
         end
         else begin
           Atomic.incr st.connections;
           ignore (Thread.create (conn_main st) fd)
         end);
        sweep ()
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  sweep ();
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  match st.cfg.listen with
  | Unix_path p -> (try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

(* ---------------- lifecycle ---------------- *)

let validate cfg =
  if cfg.domains < 1 then invalid_arg "serve: domains must be >= 1";
  if cfg.capacity < 1 then invalid_arg "serve: capacity must be >= 1";
  if cfg.max_connections < 1 then
    invalid_arg "serve: max_connections must be >= 1";
  if cfg.max_frame_bytes < 1024 then
    invalid_arg "serve: max_frame_bytes must be >= 1024";
  if not (Float.is_finite cfg.drain_grace_ms) || cfg.drain_grace_ms <= 0.0 then
    invalid_arg "serve: drain_grace_ms must be positive";
  if cfg.cache_max < 1 then invalid_arg "serve: cache_max must be >= 1";
  if
    not (Float.is_finite cfg.write_timeout_ms) || cfg.write_timeout_ms <= 0.0
  then invalid_arg "serve: write_timeout_ms must be positive";
  if cfg.max_buffer_bytes < 4096 then
    invalid_arg "serve: max_buffer_bytes must be >= 4096";
  if cfg.dedup_max < 1 then invalid_arg "serve: dedup_max must be >= 1"

let start cfg =
  validate cfg;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Obs.Metrics.set_enabled Obs.Metrics.default true;
  let cache =
    Cache.create ?path:cfg.cache_path ~fsync:cfg.cache_fsync
      ~max_entries:cfg.cache_max ()
  in
  let lfd = bind_listen cfg in
  let bound = Unix.getsockname lfd in
  let st =
    {
      cfg;
      qmutex = Mutex.create ();
      qnonempty = Condition.create ();
      queue = Queue.create ();
      stopping = Atomic.make false;
      drain_flag = Atomic.make false;
      workers_done = Atomic.make false;
      cache_closed = Atomic.make false;
      connections = Atomic.make 0;
      inflight = Atomic.make 0;
      requests = Atomic.make 0;
      shed = Atomic.make 0;
      cache;
      breaker_until = Atomic.make 0.0;
      breaker_window_start = Atomic.make 0.0;
      breaker_window_sheds = Atomic.make 0;
      exec_ms_ewma = Atomic.make 0.0;
      dedup = Dedup.create ~max_completed:cfg.dedup_max;
      reqlog = Option.map (fun p -> Journal.load_or_create p) cfg.request_log;
      rlmutex = Mutex.create ();
    }
  in
  (* The worker lanes live on an [Exec.Pool]: [map] runs one blocking
     [worker_loop] per domain (the caller-helps scheduler makes the
     mapping context the last lane), and [with_pool] joins the domains
     on the way out — after it returns, [Pool.active_domains] is back
     to baseline. The pool is launched from its own domain, not from
     this systhread: the caller-helps lane computes in whatever domain
     calls [map], and domain 0 hosts every connection thread — a
     CPU-bound solve there would hold the runtime lock for whole
     preemption quanta (~50 ms) and stall even trivial admission
     rejections behind it. *)
  let workers_thread =
    Thread.create
      (fun () ->
        let launcher =
          Domain.spawn (fun () ->
              try
                Exec.Pool.with_pool ~domains:cfg.domains (fun pool ->
                    (* More lane tasks than domains: the surplus sits
                       in the pool queue as {e spares}. A lane that
                       crashes (chaos seam, solver domain death) fails
                       only its task; the respawned domain dequeues a
                       spare and service is restored at full width. At
                       drain, unused spares run once into the
                       stopping-and-empty exit, so the map always
                       completes. [run_all], not [map]: crashed lanes
                       are expected under chaos and must not raise. *)
                    let lanes =
                      cfg.domains + max 16 (4 * cfg.domains)
                    in
                    ignore
                      (Exec.Pool.run_all pool
                         (fun _ -> worker_loop st)
                         (Array.init lanes Fun.id)))
              with _ -> ())
        in
        Domain.join launcher;
        Atomic.set st.workers_done true)
      ()
  in
  let accept_thread = Thread.create (accept_loop st) lfd in
  if not cfg.quiet then
    Printf.eprintf "confcall serve: listening on %s (domains=%d capacity=%d)\n%!"
      (match bound with
       | Unix.ADDR_INET (_, port) -> Printf.sprintf "127.0.0.1:%d" port
       | Unix.ADDR_UNIX p -> p)
      cfg.domains cfg.capacity;
  { st; accept_thread; workers_thread; bound }

let bound_port h =
  match h.bound with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

let request_drain h =
  Atomic.set h.st.drain_flag true;
  initiate_drain h.st

let wait ?grace_ms h =
  Thread.join h.accept_thread;
  let deadline = Option.map (fun g -> Obs.now () +. (g /. 1000.0)) grace_ms in
  let rec poll () =
    if Atomic.get h.st.workers_done then true
    else
      match deadline with
      | Some d when Obs.now () >= d -> false
      | _ ->
        Thread.delay 0.005;
        poll ()
  in
  let clean = poll () in
  if clean then begin
    Thread.join h.workers_thread;
    if not (Atomic.exchange h.st.cache_closed true) then begin
      Cache.close h.st.cache;
      Option.iter Journal.close h.st.reqlog
    end
  end;
  clean

let stop h =
  request_drain h;
  wait ~grace_ms:h.st.cfg.drain_grace_ms h

let run cfg =
  let h = start cfg in
  (* Handlers only flip an atomic; the accept loop notices within its
     100 ms select timeout and performs the drain in thread context. *)
  let on_signal _ = Atomic.set h.st.drain_flag true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let clean = wait ~grace_ms:cfg.drain_grace_ms h in
  if not cfg.quiet then
    Printf.eprintf
      "confcall serve: drained%s (requests=%d shed=%d cache: %d entries, %d \
       hits, %d misses)\n\
       %!"
      (if clean then "" else " INCOMPLETE")
      (Atomic.get h.st.requests) (Atomic.get h.st.shed)
      (Cache.entries h.st.cache) (Cache.hits h.st.cache)
      (Cache.misses h.st.cache);
  clean
