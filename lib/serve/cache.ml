open Confcall

(* Exact LRU over an intrusive doubly-linked list: [find] and [store]
   are O(1), eviction unlinks the tail. The journal stays append-only —
   evicted entries keep their lines, and [Journal.completed] prevents a
   re-stored key from appending a duplicate id (which would refuse to
   load next restart). *)

type node = {
  nkey : string;
  payload : string;
  mutable prev : node option;  (* towards most-recent *)
  mutable next : node option;  (* towards least-recent *)
}

type t = {
  mutex : Mutex.t;
  tbl : (string, node) Hashtbl.t;
  max_entries : int;
  journal : Journal.t option;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used; evicted first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable store_errors : int;
}

let default_max_entries = 65536

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.tbl n.nkey;
    t.evictions <- t.evictions + 1;
    if Obs.on () then Obs.count "serve_cache_evictions"

(* Insert without journaling; evicts to stay within the cap. *)
let insert t ~key ~payload =
  (if not (Hashtbl.mem t.tbl key) then begin
     if Hashtbl.length t.tbl >= t.max_entries then evict_lru t;
     let n = { nkey = key; payload; prev = None; next = None } in
     push_front t n;
     Hashtbl.replace t.tbl key n
   end);
  if Obs.on () then Obs.gauge_set "serve_cache_entries" (Hashtbl.length t.tbl)

let create ?path ?(fsync = false) ?(max_entries = default_max_entries) () =
  if max_entries < 1 then
    invalid_arg "Cache.create: max_entries must be >= 1";
  let journal = Option.map (fun p -> Journal.load_or_create ~fsync p) path in
  let t =
    {
      mutex = Mutex.create ();
      tbl = Hashtbl.create 256;
      max_entries;
      journal;
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
      store_errors = 0;
    }
  in
  (* File order is oldest-first, so inserting in order and evicting as
     the cap is passed leaves exactly the newest [max_entries] resident
     — the journal keeps the rest on disk for the next incarnation. *)
  Option.iter
    (fun j ->
      List.iter
        (fun (key, payload) -> insert t ~key ~payload)
        (Journal.entries j))
    journal;
  t

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t ~key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
    touch t n;
    t.hits <- t.hits + 1;
    if Obs.on () then Obs.count "serve_cache_hits";
    Some n.payload
  | None ->
    t.misses <- t.misses + 1;
    if Obs.on () then Obs.count "serve_cache_misses";
    None

let store t ~key ~payload =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.tbl key) then begin
    insert t ~key ~payload;
    (* The memory entry stands whatever happens to the journal: a full
       disk or an injected fault must not cost the daemon its warm
       cache, only the persistence of this one answer. A key evicted
       and later re-solved is already journalled — appending it again
       would be a duplicate id the next load refuses. *)
    try
      Faultpoint.hit "cache.store";
      Option.iter
        (fun j ->
          if not (Journal.completed j key) then
            Journal.record j ~id:key ~payload)
        t.journal
    with _ ->
      t.store_errors <- t.store_errors + 1;
      if Obs.on () then Obs.count "serve_cache_store_errors"
  end

let entries t = locked t @@ fun () -> Hashtbl.length t.tbl
let hits t = locked t @@ fun () -> t.hits
let misses t = locked t @@ fun () -> t.misses
let evictions t = locked t @@ fun () -> t.evictions
let store_errors t = locked t @@ fun () -> t.store_errors
let max_entries t = t.max_entries

let close t =
  locked t @@ fun () ->
  Option.iter Journal.close t.journal
