open Confcall

type t = {
  mutex : Mutex.t;
  tbl : (string, string) Hashtbl.t;
  journal : Journal.t option;
  mutable hits : int;
  mutable misses : int;
}

let create ?path ?(fsync = false) () =
  let journal = Option.map (fun p -> Journal.load_or_create ~fsync p) path in
  let tbl = Hashtbl.create 256 in
  Option.iter
    (fun j ->
      List.iter (fun (key, payload) -> Hashtbl.replace tbl key payload)
        (Journal.entries j))
    journal;
  { mutex = Mutex.create (); tbl; journal; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t ~key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | Some payload ->
    t.hits <- t.hits + 1;
    if Obs.on () then Obs.count "serve_cache_hits";
    Some payload
  | None ->
    t.misses <- t.misses + 1;
    if Obs.on () then Obs.count "serve_cache_misses";
    None

let store t ~key ~payload =
  locked t @@ fun () ->
  if not (Hashtbl.mem t.tbl key) then begin
    Hashtbl.replace t.tbl key payload;
    Option.iter (fun j -> Journal.record j ~id:key ~payload) t.journal;
    if Obs.on () then Obs.gauge_set "serve_cache_entries" (Hashtbl.length t.tbl)
  end

let entries t = locked t @@ fun () -> Hashtbl.length t.tbl
let hits t = locked t @@ fun () -> t.hits
let misses t = locked t @@ fun () -> t.misses

let close t =
  locked t @@ fun () ->
  Option.iter Journal.close t.journal
