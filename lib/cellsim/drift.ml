type config = {
  window : float;
  min_obs : int;
  min_users : int;
  threshold : float;
  cooldown : float;
}

let default =
  { window = 20.0; min_obs = 4; min_users = 8; threshold = 0.6; cooldown = 30.0 }

let validate cfg =
  if not (Float.is_finite cfg.window && cfg.window > 0.0) then
    Error "window must be positive and finite"
  else if cfg.min_obs < 1 then Error "min_obs must be >= 1"
  else if cfg.min_users < 1 then Error "min_users must be >= 1"
  else if
    not (Float.is_finite cfg.threshold)
    || cfg.threshold <= 0.0 || cfg.threshold > 1.0
  then Error "threshold must be in (0, 1]"
  else if not (Float.is_finite cfg.cooldown && cfg.cooldown >= 0.0) then
    Error "cooldown must be >= 0"
  else Ok ()

type verdict =
  | Cooling of float
  | Insufficient of int
  | Stable of float
  | Drifted of float

type t = {
  cfg : config;
  cells : int;
  obs : (float * int) Queue.t array;  (* per user: (time, cell), oldest first *)
  mutable armed_at : float;  (* cooldown anchor: last trigger or rearm *)
  mutable checks : int;
  mutable evaluated : int;
  mutable triggers : int;
  mutable last_trigger : float option;
  mutable max_mean_tv : float;
}

let create cfg ~users ~cells =
  (match validate cfg with
   | Ok () -> ()
   | Error e -> invalid_arg ("Drift.create: " ^ e));
  if users < 1 then invalid_arg "Drift.create: users must be >= 1";
  if cells < 1 then invalid_arg "Drift.create: cells must be >= 1";
  {
    cfg;
    cells;
    obs = Array.init users (fun _ -> Queue.create ());
    armed_at = neg_infinity;
    checks = 0;
    evaluated = 0;
    triggers = 0;
    last_trigger = None;
    max_mean_tv = 0.0;
  }

(* Cap per-user memory: windows beyond this are no sharper. *)
let max_window_entries = 64

let trim_old t q ~now =
  let cutoff = now -. t.cfg.window in
  let rec go () =
    match Queue.peek_opt q with
    | Some (at, _) when at < cutoff ->
      ignore (Queue.pop q);
      go ()
    | _ -> ()
  in
  go ()

let observe t ~user ~cell ~now =
  let q = t.obs.(user) in
  Queue.push (now, cell) q;
  if Queue.length q > max_window_entries then ignore (Queue.pop q);
  trim_old t q ~now

let tv a b =
  if Array.length a <> Array.length b then
    invalid_arg "Drift.tv: length mismatch";
  let s = ref 0.0 in
  Array.iteri (fun j x -> s := !s +. abs_float (x -. b.(j))) a;
  0.5 *. !s

let check t ~now ~reference =
  t.checks <- t.checks + 1;
  if now < t.armed_at +. t.cfg.cooldown then
    Cooling (t.armed_at +. t.cfg.cooldown -. now)
  else begin
    let eligible = ref 0 and tv_sum = ref 0.0 in
    let emp = Array.make t.cells 0.0 in
    Array.iteri
      (fun u q ->
         trim_old t q ~now;
         let n = Queue.length q in
         if n >= t.cfg.min_obs then begin
           Array.fill emp 0 t.cells 0.0;
           let share = 1.0 /. float_of_int n in
           Queue.iter (fun (_, cell) -> emp.(cell) <- emp.(cell) +. share) q;
           tv_sum := !tv_sum +. tv emp (reference u);
           incr eligible
         end)
      t.obs;
    if !eligible < t.cfg.min_users then Insufficient !eligible
    else begin
      t.evaluated <- t.evaluated + 1;
      let mean = !tv_sum /. float_of_int !eligible in
      if mean > t.max_mean_tv then t.max_mean_tv <- mean;
      if mean > t.cfg.threshold then begin
        t.triggers <- t.triggers + 1;
        t.last_trigger <- Some now;
        t.armed_at <- now;
        Drifted mean
      end
      else Stable mean
    end
  end

let window t ~user ~now =
  let q = t.obs.(user) in
  trim_old t q ~now;
  List.rev (Queue.fold (fun acc (_, cell) -> cell :: acc) [] q)

(* Windows are kept across rearms: when the caller re-estimates from
   the windows, the refreshed reference agrees with them by
   construction, so retained evidence cannot re-trigger spuriously —
   while users the refresh missed keep accusing the snapshot. *)
let rearm t ~now = t.armed_at <- now

type report = {
  checks : int;
  evaluated : int;
  triggers : int;
  last_trigger : float option;
  max_mean_tv : float;
}

let report (t : t) =
  {
    checks = t.checks;
    evaluated = t.evaluated;
    triggers = t.triggers;
    last_trigger = t.last_trigger;
    max_mean_tv = t.max_mean_tv;
  }
