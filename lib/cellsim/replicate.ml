type replica = { seed : int; result : Sim.result }

type scheme_agg = {
  scheme : Sim.scheme;
  calls : int;
  devices_sought : int;
  cells_paged : int;
  expected_paging : float;
  rounds_used : int;
  mean_cells_per_call : float;
  retries : int;
  escalations : int;
  residual_misses : int;
}

type summary = {
  replicas : int;
  total_calls : int;
  skipped_calls : int;
  moves : int;
  updates : int;
  per_scheme : scheme_agg list;
}

let seeds ~base n =
  if n < 1 then invalid_arg "Replicate.seeds: need at least one replica";
  List.init n (fun k -> base + k)

let run ?pool ~replicas config =
  Obs.span "sim.replicate" @@ fun sp ->
  Obs.count_n "sim_replicas" (Stdlib.max 0 replicas);
  let seed_list = seeds ~base:config.Sim.seed replicas in
  let run_one seed =
    Obs.span ~parent:sp (Printf.sprintf "sim.replica%d" seed) @@ fun _sp ->
    { seed; result = Sim.run { config with Sim.seed } }
  in
  match pool with
  | Some p when Exec.Pool.size p > 1 -> Exec.Pool.map_list p run_one seed_list
  | Some _ | None -> List.map run_one seed_list

let reduce replicas =
  match replicas with
  | [] -> invalid_arg "Replicate.reduce: no replicas"
  | _ ->
    (* Sort by seed before folding: float accumulation order is then a
       function of the replica set alone, never of completion order or
       of how the caller assembled the list. *)
    let replicas =
      List.sort (fun a b -> compare a.seed b.seed) replicas
    in
    let first = (List.hd replicas).result in
    let nschemes = List.length first.Sim.per_scheme in
    List.iter
      (fun r ->
        if List.length r.result.Sim.per_scheme <> nschemes then
          invalid_arg "Replicate.reduce: replicas ran different schemes")
      replicas;
    let agg i (sm : Sim.scheme_metrics) =
      let pick r = List.nth r.result.Sim.per_scheme i in
      let sum f = List.fold_left (fun acc r -> acc + f (pick r)) 0 replicas in
      let sumf f =
        List.fold_left (fun acc r -> acc +. f (pick r)) 0.0 replicas
      in
      let calls = sum (fun s -> s.Sim.calls) in
      let cells = sum (fun s -> s.Sim.cells_paged) in
      {
        scheme = sm.Sim.scheme;
        calls;
        devices_sought = sum (fun s -> s.Sim.devices_sought);
        cells_paged = cells;
        expected_paging = sumf (fun s -> s.Sim.expected_paging);
        rounds_used = sum (fun s -> s.Sim.rounds_used);
        mean_cells_per_call =
          (if calls = 0 then 0.0 else float_of_int cells /. float_of_int calls);
        retries = sum (fun s -> s.Sim.robustness.Sim.retries);
        escalations = sum (fun s -> s.Sim.robustness.Sim.escalations);
        residual_misses =
          sum (fun s -> s.Sim.robustness.Sim.residual_misses);
      }
    in
    let sum f = List.fold_left (fun acc r -> acc + f r.result) 0 replicas in
    {
      replicas = List.length replicas;
      total_calls = sum (fun r -> r.Sim.total_calls);
      skipped_calls = sum (fun r -> r.Sim.skipped_calls);
      moves = sum (fun r -> r.Sim.moves);
      updates = sum (fun r -> r.Sim.updates);
      per_scheme = List.mapi agg first.Sim.per_scheme;
    }

let run_summary ?pool ~replicas config =
  reduce (run ?pool ~replicas config)

let pp_summary fmt s =
  let open Format in
  fprintf fmt "replicas: %d  calls: %d (+%d skipped)  moves: %d  updates: %d@,"
    s.replicas s.total_calls s.skipped_calls s.moves s.updates;
  List.iter
    (fun a ->
      fprintf fmt
        "  %-18s calls=%d cells=%d (%.2f/call) EP=%.2f rounds=%d%s@,"
        (Sim.scheme_to_string a.scheme)
        a.calls a.cells_paged a.mean_cells_per_call a.expected_paging
        a.rounds_used
        (if a.retries + a.escalations + a.residual_misses = 0 then ""
         else
           Printf.sprintf "  retries=%d escalations=%d misses=%d" a.retries
             a.escalations a.residual_misses))
    s.per_scheme
