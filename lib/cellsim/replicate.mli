(** Replicated simulation: independent seeded copies of one {!Sim}
    configuration, optionally run in parallel on a domain pool, reduced
    to aggregate metrics deterministically.

    One simulation run is a single draw from the mobility/traffic/fault
    distribution; confidence comes from replication. Replica [k] runs
    the identical config with seed [config.seed + k], so the replica
    set is a pure function of [(config, replicas)] — independent of the
    pool, the domain count, and scheduling. The reduction sorts by seed
    before folding, which makes the aggregate (including its float
    sums) independent of the order replicas completed or were listed
    in; the parallel path is therefore bit-identical to the sequential
    one. *)

type replica = { seed : int; result : Sim.result }

(** Aggregate of one scheme's metrics over all replicas: counters and
    EPs are summed; [mean_cells_per_call] is total cells over total
    calls. *)
type scheme_agg = {
  scheme : Sim.scheme;
  calls : int;
  devices_sought : int;
  cells_paged : int;
  expected_paging : float;
  rounds_used : int;
  mean_cells_per_call : float;
  retries : int;
  escalations : int;
  residual_misses : int;
}

type summary = {
  replicas : int;
  total_calls : int;
  skipped_calls : int;
  moves : int;
  updates : int;
  per_scheme : scheme_agg list;
}

(** The replica seeds for a base seed: [base, base+1, …, base+n-1].
    @raise Invalid_argument when [n < 1]. *)
val seeds : base:int -> int -> int list

(** [run ?pool ~replicas config] — the replica results, in seed order.
    Each replica is an independent [Sim.run]; with a multi-domain pool
    they execute concurrently (simulation state is per-run, so replicas
    share nothing but the immutable config). *)
val run : ?pool:Exec.Pool.t -> replicas:int -> Sim.config -> replica list

(** Order-independent aggregation (sorts by seed internally).
    @raise Invalid_argument on an empty list or replicas whose scheme
    lists disagree. *)
val reduce : replica list -> summary

(** [run_summary ?pool ~replicas config] = [reduce (run … config)]. *)
val run_summary : ?pool:Exec.Pool.t -> replicas:int -> Sim.config -> summary

val pp_summary : Format.formatter -> summary -> unit
