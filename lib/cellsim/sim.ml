module Instance = Confcall.Instance
module Strategy = Confcall.Strategy
module Greedy = Confcall.Greedy
module Order_dp = Confcall.Order_dp

type scheme = Blanket | Selective of int | Selective_diffuse of int

type scheme_metrics = {
  scheme : scheme;
  calls : int;
  devices_sought : int;
  cells_paged : int;
  expected_paging : float;
  rounds_used : int;
  per_call : Prob.Stats.summary;
}

type result = {
  duration : float;
  moves : int;
  updates : int;
  total_calls : int;
  skipped_calls : int;
  per_scheme : scheme_metrics list;
}

type config = {
  hex : Hex.t;
  mobility : Mobility.t;
  areas : Location_area.t;
  users : int;
  traffic : Traffic.t;
  schemes : scheme list;
  reporting : Reporting.policy;
  profile_decay : float;
  profile_smoothing : float;
  mobility_schedule : (float * Mobility.t) list;
  call_duration : float;
  track_ongoing : bool;
  duration : float;
  seed : int;
}

let default_config () =
  let hex = Hex.create ~rows:8 ~cols:8 in
  {
    hex;
    mobility = Mobility.random_walk hex ~stay:0.4;
    areas = Location_area.grid hex ~block_rows:3 ~block_cols:3;
    users = 64;
    traffic = Traffic.create ~rate:0.5 ~group_size:(Traffic.Fixed 3) ~users:64;
    schemes = [ Blanket; Selective 2; Selective 3 ];
    reporting = Reporting.Area;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration = 0.0;
    track_ongoing = true;
    duration = 400.0;
    seed = 2002;
  }

let scheme_to_string = function
  | Blanket -> "blanket"
  | Selective d -> Printf.sprintf "selective-d%d" d
  | Selective_diffuse d -> Printf.sprintf "diffuse-d%d" d

type event_kind = Tick | Call

type scheme_acc = {
  s_scheme : scheme;
  mutable s_calls : int;
  mutable s_devices : int;
  mutable s_cells : int;
  mutable s_expected : float;
  mutable s_rounds : int;
  s_stats : Prob.Stats.Acc.t;
}

(* Ground-truth rounds used by a strategy on one outcome. *)
let rounds_on_outcome strategy ~positions =
  let groups = Strategy.groups strategy in
  let where = Hashtbl.create 32 in
  Array.iteri
    (fun r g -> Array.iter (fun cell -> Hashtbl.replace where cell r) g)
    groups;
  let last =
    Array.fold_left
      (fun acc p -> Stdlib.max acc (Hashtbl.find where p))
      0 positions
  in
  last + 1

(* Diffusion of point masses under the mobility model, memoized: the
   belief about a user last seen in [cell], [steps] ticks ago. Steps are
   capped — the diffusion approaches the stationary distribution anyway
   and the cap bounds memory. *)
let diffusion_cache mobility cells =
  let memo = Hashtbl.create 256 in
  fun ~cell ~steps ->
    let steps = Stdlib.min steps 30 in
    match Hashtbl.find_opt memo (cell, steps) with
    | Some dist -> dist
    | None ->
      let point = Array.make cells 0.0 in
      point.(cell) <- 1.0;
      let dist = Mobility.diffuse mobility point ~steps in
      Hashtbl.add memo (cell, steps) dist;
      dist

let run config =
  if config.users <= 0 then invalid_arg "Sim.run: no users"
  else if Location_area.(config.areas.cells) <> Hex.cells config.hex then
    invalid_arg "Sim.run: area partition does not match the hex field"
  else begin
    (match Reporting.validate config.reporting with
     | Ok () -> ()
     | Error reason -> invalid_arg ("Sim.run: " ^ reason));
    let cells = Hex.cells config.hex in
    let rng = Prob.Rng.create ~seed:config.seed in
    let rng_move = Prob.Rng.split rng in
    let rng_traffic = Prob.Rng.split rng in
    (* Ground truth positions and the system's view. *)
    let position =
      Array.init config.users (fun _ -> Prob.Rng.int rng_move cells)
    in
    let report_state =
      Array.map
        (fun cell -> Reporting.init config.reporting ~cell ~now:0.0)
        position
    in
    let profiles =
      Array.init config.users (fun _ ->
          Profile.create ~cells ~decay:config.profile_decay
            ~smoothing:config.profile_smoothing)
    in
    (* Initial registration: the system learns the starting cells. *)
    Array.iteri (fun u cell -> Profile.observe profiles.(u) cell) position;
    let busy_until = Array.make config.users neg_infinity in
    let diffuse = diffusion_cache config.mobility cells in
    let moves = ref 0
    and updates = ref 0
    and total_calls = ref 0
    and skipped_calls = ref 0 in
    let accs =
      List.map
        (fun scheme ->
          {
            s_scheme = scheme;
            s_calls = 0;
            s_devices = 0;
            s_cells = 0;
            s_expected = 0.0;
            s_rounds = 0;
            s_stats = Prob.Stats.Acc.create ();
          })
        config.schemes
    in
    let engine = Event.create () in
    Event.schedule engine ~at:1.0 Tick;
    Event.schedule engine
      ~at:(Traffic.next_arrival config.traffic rng_traffic)
      Call;

    let observe_exactly u ~now =
      Profile.observe profiles.(u) position.(u);
      Reporting.observe_page report_state.(u) ~cell:position.(u) ~now
    in

    (* Actual motion model in force at a given time. *)
    let mobility_at now =
      List.fold_left
        (fun current (start, model) ->
          if now >= start then model else current)
        config.mobility
        (List.sort (fun (a, _) (b, _) -> compare a b) config.mobility_schedule)
    in
    let handle_tick now =
      let mobility = mobility_at now in
      for u = 0 to config.users - 1 do
        let from_cell = position.(u) in
        let to_cell = Mobility.step mobility rng_move ~cell:from_cell in
        if to_cell <> from_cell then incr moves;
        position.(u) <- to_cell;
        if busy_until.(u) > now && config.track_ongoing then
          (* On a call: the network tracks the terminal continuously. *)
          observe_exactly u ~now
        else begin
          let reported =
            Reporting.on_move config.reporting ~areas:config.areas
              ~hex:config.hex report_state.(u) ~from_cell ~to_cell ~now
          in
          if reported then begin
            incr updates;
            (* The report reveals the exact new cell. *)
            Profile.observe profiles.(u) to_cell
          end
        end
      done;
      Event.schedule_after engine ~delay:1.0 Tick
    in

    let handle_call now =
      let group = Traffic.draw_group config.traffic rng_traffic in
      if Array.exists (fun u -> busy_until.(u) > now) group then
        incr skipped_calls
      else begin
        incr total_calls;
        (* Per-participant uncertainty sets and their union. *)
        let uncertain =
          Array.map
            (fun u ->
              Reporting.uncertainty config.reporting ~areas:config.areas
                ~hex:config.hex report_state.(u) ~now)
            group
        in
        let universe_tbl = Hashtbl.create 64 in
        let universe_rev = ref [] in
        let universe_size = ref 0 in
        Array.iter
          (Array.iter (fun cell ->
               if not (Hashtbl.mem universe_tbl cell) then begin
                 Hashtbl.add universe_tbl cell !universe_size;
                 universe_rev := cell :: !universe_rev;
                 incr universe_size
               end))
          uncertain;
        let universe = Array.of_list (List.rev !universe_rev) in
        let c_local = Array.length universe in
        let positions_local =
          Array.map
            (fun u ->
              match Hashtbl.find_opt universe_tbl position.(u) with
              | Some k -> k
              | None ->
                (* Disk-based policies assume at most one cell per tick;
                   teleporting mobility models break that. *)
                invalid_arg
                  "Sim.run: user outside its uncertainty set (mobility \
                   jumps farther than the reporting policy allows)")
            group
        in
        (* Row construction per estimator. *)
        let counts_row idx =
          let u = group.(idx) in
          let row = Array.make c_local 0.0 in
          let dist = Profile.distribution_over profiles.(u) uncertain.(idx) in
          Array.iteri
            (fun k cell -> row.(Hashtbl.find universe_tbl cell) <- dist.(k))
            uncertain.(idx);
          row
        in
        let diffuse_row idx =
          let u = group.(idx) in
          let st = report_state.(u) in
          let belief =
            diffuse
              ~cell:(Reporting.last_reported_cell st)
              ~steps:(Reporting.ticks_since_report st)
          in
          let row = Array.make c_local 0.0 in
          let mass = ref 0.0 in
          Array.iter
            (fun cell ->
              let p = belief.(cell) in
              row.(Hashtbl.find universe_tbl cell) <- p;
              mass := !mass +. p)
            uncertain.(idx);
          if !mass <= 0.0 then begin
            (* Degenerate: fall back to uniform over the uncertainty set. *)
            let share = 1.0 /. float_of_int (Array.length uncertain.(idx)) in
            Array.iter
              (fun cell -> row.(Hashtbl.find universe_tbl cell) <- share)
              uncertain.(idx)
          end
          else
            Array.iteri (fun k p -> row.(k) <- p /. !mass) (Array.copy row);
          row
        in
        List.iter
          (fun acc ->
            let d, rows =
              match acc.s_scheme with
              | Blanket -> 1, Array.mapi (fun idx _ -> counts_row idx) group
              | Selective d ->
                ( Stdlib.min d c_local,
                  Array.mapi (fun idx _ -> counts_row idx) group )
              | Selective_diffuse d ->
                ( Stdlib.min d c_local,
                  Array.mapi (fun idx _ -> diffuse_row idx) group )
            in
            let inst = Instance.create ~d rows in
            let strategy =
              match acc.s_scheme with
              | Blanket -> Strategy.page_all c_local
              | Selective _ | Selective_diffuse _ ->
                (Greedy.solve inst).Order_dp.strategy
            in
            let cost =
              Strategy.cost_on_outcome strategy ~m:(Array.length group)
                ~positions:positions_local
            in
            acc.s_calls <- acc.s_calls + 1;
            acc.s_devices <- acc.s_devices + Array.length group;
            acc.s_cells <- acc.s_cells + cost;
            acc.s_expected <-
              acc.s_expected +. Strategy.expected_paging inst strategy;
            acc.s_rounds <-
              acc.s_rounds
              + rounds_on_outcome strategy ~positions:positions_local;
            Prob.Stats.Acc.add acc.s_stats (float_of_int cost))
          accs;
        (* The call locates every participant, whatever the scheme. *)
        Array.iter (fun u -> observe_exactly u ~now) group;
        if config.call_duration > 0.0 then begin
          let length =
            Prob.Rng.exponential rng_traffic
              ~rate:(1.0 /. config.call_duration)
          in
          Array.iter (fun u -> busy_until.(u) <- now +. length) group
        end
      end;
      Event.schedule_after engine
        ~delay:(Traffic.next_arrival config.traffic rng_traffic)
        Call
    in

    Event.run_until engine ~stop:config.duration (fun at event ->
        match event with
        | Tick -> handle_tick at
        | Call -> handle_call at);

    {
      duration = config.duration;
      moves = !moves;
      updates = !updates;
      total_calls = !total_calls;
      skipped_calls = !skipped_calls;
      per_scheme =
        List.map
          (fun acc ->
            {
              scheme = acc.s_scheme;
              calls = acc.s_calls;
              devices_sought = acc.s_devices;
              cells_paged = acc.s_cells;
              expected_paging = acc.s_expected;
              rounds_used = acc.s_rounds;
              per_call = Prob.Stats.Acc.summary acc.s_stats;
            })
          accs;
    }
  end

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>duration %.0f, %d moves, %d reports, %d calls (%d skipped)@,"
    r.duration r.moves r.updates r.total_calls r.skipped_calls;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "%-14s cells/call %.2f (expected %.2f) rounds/call %.2f@,"
        (scheme_to_string s.scheme)
        (float_of_int s.cells_paged /. float_of_int (Stdlib.max 1 s.calls))
        (s.expected_paging /. float_of_int (Stdlib.max 1 s.calls))
        (float_of_int s.rounds_used /. float_of_int (Stdlib.max 1 s.calls)))
    r.per_scheme;
  Format.fprintf ppf "@]"
