module Instance = Confcall.Instance
module Strategy = Confcall.Strategy
module Greedy = Confcall.Greedy
module Order_dp = Confcall.Order_dp
module Miss = Confcall.Miss
module Runner = Confcall.Runner
module Solver = Confcall.Solver
module Uncertainty = Confcall.Uncertainty

type scheme =
  | Blanket
  | Selective of int
  | Selective_diffuse of int
  | Selective_aged of int
  | Selective_robust of int

type fault_metrics = {
  retries : int;
  retry_cells : int;
  retry_rounds : int;
  escalations : int;
  escalate_cells : int;
  residual_misses : int;
  pages_lost : int;
  pages_blocked : int;
}

let no_faults_observed =
  {
    retries = 0;
    retry_cells = 0;
    retry_rounds = 0;
    escalations = 0;
    escalate_cells = 0;
    residual_misses = 0;
    pages_lost = 0;
    pages_blocked = 0;
  }

type scheme_metrics = {
  scheme : scheme;
  calls : int;
  devices_sought : int;
  cells_paged : int;
  expected_paging : float;
  rounds_used : int;
  per_call : Prob.Stats.summary;
  robustness : fault_metrics;
}

type drift_metrics = {
  checks : int;
  evaluated : int;
  resolves : int;
  last_resolve : float option;
  max_mean_tv : float;
}

type result = {
  duration : float;
  moves : int;
  updates : int;
  total_calls : int;
  skipped_calls : int;
  reports_lost : int;
  reports_delayed : int;
  outages : int;
  polls : int;
  drift : drift_metrics option;
  per_scheme : scheme_metrics list;
}

type estimator =
  | Live
  | Snapshot of {
      warmup : float;
      drift : Drift.config option;
      budget_ms : float option;
    }

type aging_config = {
  residence : Mobility.residence;
  age_cap : int;
  dwell_cap : int;
  drive_motion : bool;
  reprofile_age : int option;
  confidence : float;
}

let default_aging =
  {
    residence = Mobility.Exponential { mean = 6.0 };
    age_cap = 30;
    dwell_cap = 32;
    drive_motion = false;
    reprofile_age = None;
    confidence = 0.9;
  }

type config = {
  hex : Hex.t;
  mobility : Mobility.t;
  areas : Location_area.t;
  users : int;
  traffic : Traffic.t;
  schemes : scheme list;
  reporting : Reporting.policy;
  profile_decay : float;
  profile_smoothing : float;
  mobility_schedule : (float * Mobility.t) list;
  call_duration : float;
  track_ongoing : bool;
  faults : Faults.t option;
  estimator : estimator;
  aging : aging_config option;
  duration : float;
  seed : int;
}

let default_config () =
  let hex = Hex.create ~rows:8 ~cols:8 in
  {
    hex;
    mobility = Mobility.random_walk hex ~stay:0.4;
    areas = Location_area.grid hex ~block_rows:3 ~block_cols:3;
    users = 64;
    traffic = Traffic.create ~rate:0.5 ~group_size:(Traffic.Fixed 3) ~users:64;
    schemes = [ Blanket; Selective 2; Selective 3 ];
    reporting = Reporting.Area;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration = 0.0;
    track_ongoing = true;
    faults = None;
    estimator = Live;
    aging = None;
    duration = 400.0;
    seed = 2002;
  }

let scheme_to_string = function
  | Blanket -> "blanket"
  | Selective d -> Printf.sprintf "selective-d%d" d
  | Selective_diffuse d -> Printf.sprintf "diffuse-d%d" d
  | Selective_aged d -> Printf.sprintf "aged-d%d" d
  | Selective_robust d -> Printf.sprintf "agedrobust-d%d" d

let validate_config config =
  if config.users <= 0 then invalid_arg "Sim.run: no users"
  else if config.schemes = [] then invalid_arg "Sim.run: no schemes"
  else if Location_area.(config.areas.cells) <> Hex.cells config.hex then
    invalid_arg "Sim.run: area partition does not match the hex field"
  else if
    not
      (Float.is_finite config.profile_decay
      && config.profile_decay > 0.0
      && config.profile_decay <= 1.0)
  then invalid_arg "Sim.run: profile_decay must be in (0, 1]"
  else if
    not (Float.is_finite config.profile_smoothing && config.profile_smoothing > 0.0)
  then invalid_arg "Sim.run: profile_smoothing must be positive"
  else if not (Float.is_finite config.duration && config.duration >= 0.0) then
    invalid_arg "Sim.run: duration must be finite and non-negative"
  else begin
    let rec check_sorted = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if a > b then
          invalid_arg "Sim.run: mobility_schedule must be sorted by start time"
        else check_sorted rest
      | _ -> ()
    in
    check_sorted config.mobility_schedule;
    List.iter
      (fun (start, _) ->
        if not (Float.is_finite start) then
          invalid_arg "Sim.run: mobility_schedule start times must be finite")
      config.mobility_schedule;
    (match Reporting.validate config.reporting with
     | Ok () -> ()
     | Error reason -> invalid_arg ("Sim.run: " ^ reason));
    (match config.estimator with
     | Live -> ()
     | Snapshot { warmup; drift; budget_ms } ->
       if not (Float.is_finite warmup && warmup >= 0.0) then
         invalid_arg "Sim.run: estimator warmup must be finite and >= 0";
       (match drift with
        | None -> ()
        | Some dc ->
          (match Drift.validate dc with
           | Ok () -> ()
           | Error reason -> invalid_arg ("Sim.run: drift: " ^ reason)));
       (match budget_ms with
        | None -> ()
        | Some b ->
          if not (Float.is_finite b && b > 0.0) then
            invalid_arg "Sim.run: estimator budget_ms must be positive"));
    (match config.aging with
     | None ->
       List.iter
         (function
           | Selective_aged _ | Selective_robust _ ->
             invalid_arg
               "Sim.run: aged paging schemes require an aging config"
           | _ -> ())
         config.schemes
     | Some a ->
       (match Mobility.validate_residence a.residence with
        | Ok () -> ()
        | Error reason -> invalid_arg ("Sim.run: aging: " ^ reason));
       if a.age_cap < 0 then
         invalid_arg "Sim.run: aging age_cap must be >= 0";
       if a.dwell_cap < 1 then
         invalid_arg "Sim.run: aging dwell_cap must be >= 1";
       if
         Float.is_nan a.confidence
         || a.confidence <= 0.0 || a.confidence >= 1.0
       then invalid_arg "Sim.run: aging confidence must be in (0, 1)";
       (match a.reprofile_age with
        | Some k when k < 0 ->
          invalid_arg "Sim.run: aging reprofile_age must be >= 0"
        | _ -> ());
       if a.drive_motion && config.mobility_schedule <> [] then
         invalid_arg
           "Sim.run: aging drive_motion is incompatible with a \
            mobility_schedule");
    match config.faults with
    | None -> ()
    | Some f ->
      (match Faults.validate f with
       | Ok () -> ()
       | Error reason -> invalid_arg ("Sim.run: faults: " ^ reason))
  end

type event_kind = Tick | Call | Report_delivery of { user : int; cell : int }

type scheme_acc = {
  s_scheme : scheme;
  mutable s_calls : int;
  mutable s_devices : int;
  mutable s_cells : int;
  mutable s_expected : float;
  mutable s_rounds : int;
  s_stats : Prob.Stats.Acc.t;
  mutable s_retries : int;
  mutable s_retry_cells : int;
  mutable s_retry_rounds : int;
  mutable s_escalations : int;
  mutable s_escalate_cells : int;
  mutable s_residual : int;
  mutable s_pages_lost : int;
  mutable s_pages_blocked : int;
}

(* Ground-truth rounds used by a strategy on one outcome. *)
let rounds_on_outcome strategy ~positions =
  let groups = Strategy.groups strategy in
  let where = Hashtbl.create 32 in
  Array.iteri
    (fun r g -> Array.iter (fun cell -> Hashtbl.replace where cell r) g)
    groups;
  let last =
    Array.fold_left
      (fun acc p -> Stdlib.max acc (Hashtbl.find where p))
      0 positions
  in
  last + 1

(* End-of-run counters (DESIGN §9): derived from the result record, so
   for a fixed seed they are independent of how the run was scheduled —
   that is what makes the domains-1-vs-4 counter-equality contract hold
   for replicated simulations. *)
let obs_record_result (r : result) =
  if Obs.on () then begin
    Obs.count "sim_runs";
    Obs.count_n "sim_calls" r.total_calls;
    Obs.count_n "sim_skipped_calls" r.skipped_calls;
    Obs.count_n "sim_moves" r.moves;
    Obs.count_n "sim_reports" r.updates;
    Obs.count_n "sim_reports_lost" r.reports_lost;
    Obs.count_n "sim_reports_delayed" r.reports_delayed;
    Obs.count_n "sim_outages" r.outages;
    Obs.count_n "sim_polls" r.polls;
    Option.iter (fun d -> Obs.count_n "sim_resolves" d.resolves) r.drift;
    List.iter
      (fun s ->
        Obs.count_n "sim_retries" s.robustness.retries;
        Obs.count_n "sim_escalations" s.robustness.escalations;
        Obs.count_n "sim_residual_misses" s.robustness.residual_misses;
        Obs.count_n "sim_pages_lost" s.robustness.pages_lost;
        Obs.count_n "sim_pages_blocked" s.robustness.pages_blocked)
      r.per_scheme
  end

(* Diffusion of point masses under the mobility model, memoized: the
   belief about a user last seen in [cell], [steps] ticks ago. Steps are
   capped — the diffusion approaches the stationary distribution anyway
   and the cap bounds memory. *)
let diffusion_cache mobility cells =
  let memo = Hashtbl.create 256 in
  fun ~cell ~steps ->
    let steps = Stdlib.min steps 30 in
    match Hashtbl.find_opt memo (cell, steps) with
    | Some dist -> dist
    | None ->
      let point = Array.make cells 0.0 in
      point.(cell) <- 1.0;
      let dist = Mobility.diffuse mobility point ~steps in
      Hashtbl.add memo (cell, steps) dist;
      dist

let run config =
  validate_config config;
  Obs.span "sim.run" @@ fun _sp ->
  begin
    let cells = Hex.cells config.hex in
    let rng = Prob.Rng.create ~seed:config.seed in
    let rng_move = Prob.Rng.split rng in
    let rng_traffic = Prob.Rng.split rng in
    (* A dedicated fault stream: splitting it here (whether or not faults
       are enabled) keeps the mobility and traffic streams identical
       across clean and faulty runs of the same seed. *)
    let rng_faults = Prob.Rng.split rng in
    let faults_on = config.faults <> None in
    let fmodel =
      match config.faults with None -> Faults.none | Some f -> f
    in
    let report_faults =
      faults_on && (fmodel.Faults.report_loss > 0.0 || fmodel.Faults.report_delay > 0.0)
    in
    let outage = Faults.Outage.create ~cells in
    let reports_lost = ref 0 and reports_delayed = ref 0 in
    (* Ground truth positions and the system's view. *)
    let position =
      Array.init config.users (fun _ -> Prob.Rng.int rng_move cells)
    in
    let report_state =
      Array.map
        (fun cell -> Reporting.init config.reporting ~cell ~now:0.0)
        position
    in
    let profiles =
      Array.init config.users (fun _ ->
          Profile.create ~cells ~decay:config.profile_decay
            ~smoothing:config.profile_smoothing)
    in
    (* Initial registration: the system learns the starting cells. *)
    Array.iteri (fun u cell -> Profile.observe profiles.(u) cell) position;
    (* Estimated-matrix path: once taken, the paging planner reads the
       frozen [snapshot] while the live profiles keep learning; the
       drift monitor decides when the snapshot is refreshed. *)
    let snapshot = ref [||] in
    let snapshot_active () = Array.length !snapshot > 0 in
    let take_snapshot () = snapshot := Array.map Profile.copy profiles in
    let est_warmup, dmon, plan_budget_ms =
      match config.estimator with
      | Live -> (infinity, None, None)
      | Snapshot { warmup; drift; budget_ms } ->
        ( warmup,
          Option.map
            (fun dc -> Drift.create dc ~users:config.users ~cells)
            drift,
          budget_ms )
    in
    (* Fresh sightings required before a drift trigger may discard a
       user's history in favor of the window, and how far (in TV
       distance) the window must sit from the live estimate before the
       history is actually discarded. *)
    let min_reestimate_obs = 1 in
    let reestimate_tv = 0.5 in
    let resolves = ref 0 and last_resolve = ref None in
    let maybe_freeze now =
      if (not (snapshot_active ())) && now >= est_warmup then begin
        take_snapshot ();
        Option.iter (fun d -> Drift.rearm d ~now) dmon
      end
    in
    let paging_profile u =
      if snapshot_active () then (!snapshot).(u) else profiles.(u)
    in
    (* Every exact sighting feeds the live profile, and — once the
       snapshot is frozen — the drift monitor's evidence window. *)
    let learn ~now u cell =
      Profile.observe profiles.(u) cell;
      if snapshot_active () then
        Option.iter (fun d -> Drift.observe d ~user:u ~cell ~now) dmon
    in
    let busy_until = Array.make config.users neg_infinity in
    let diffuse = diffusion_cache config.mobility cells in
    (* Residence-time layer: the aging kernel evolves beliefs by profile
       age, and optionally drives the ground-truth motion itself (the
       semi-Markov walk), giving dwell times the configured law instead
       of the geometric one the plain matrix implies. *)
    let aging_cfg = config.aging in
    let kernel =
      Option.map
        (fun a ->
          Mobility.aging_uniform ~dwell_cap:a.dwell_cap config.mobility
            a.residence)
        aging_cfg
    in
    let dwell = Array.make config.users 0 in
    let polls = ref 0 in
    (* Age of the system's knowledge of a user: full ticks since the
       last exact sighting, capped so belief evolution stays bounded. *)
    let profile_age u =
      match aging_cfg with
      | None -> 0
      | Some a ->
        Stdlib.min a.age_cap (Reporting.ticks_since_report report_state.(u))
    in
    let all_cells = Array.init cells (fun i -> i) in
    let paged_mask = Array.make cells false in
    let moves = ref 0
    and updates = ref 0
    and total_calls = ref 0
    and skipped_calls = ref 0 in
    let accs =
      List.map
        (fun scheme ->
          {
            s_scheme = scheme;
            s_calls = 0;
            s_devices = 0;
            s_cells = 0;
            s_expected = 0.0;
            s_rounds = 0;
            s_stats = Prob.Stats.Acc.create ();
            s_retries = 0;
            s_retry_cells = 0;
            s_retry_rounds = 0;
            s_escalations = 0;
            s_escalate_cells = 0;
            s_residual = 0;
            s_pages_lost = 0;
            s_pages_blocked = 0;
          })
        config.schemes
    in
    let engine = Event.create () in
    Event.schedule engine ~at:1.0 Tick;
    Event.schedule engine
      ~at:(Traffic.next_arrival config.traffic rng_traffic)
      Call;

    let observe_exactly u ~now =
      learn ~now u position.(u);
      Reporting.observe_page report_state.(u) ~cell:position.(u) ~now
    in

    (* Actual motion model in force at a given time; the schedule is
       validated sorted, so the last entry not after [now] wins. *)
    let mobility_at now =
      List.fold_left
        (fun current (start, model) ->
          if now >= start then model else current)
        config.mobility config.mobility_schedule
    in
    let handle_tick now =
      maybe_freeze now;
      if faults_on && fmodel.Faults.outage_rate > 0.0 then
        Faults.Outage.step outage fmodel rng_faults;
      let mobility = mobility_at now in
      let drive_semi =
        match aging_cfg, kernel with
        | Some a, Some _ -> a.drive_motion
        | _ -> false
      in
      for u = 0 to config.users - 1 do
        let from_cell = position.(u) in
        let to_cell =
          if drive_semi then begin
            let k = Option.get kernel in
            let cell, dw =
              Mobility.semi_step k rng_move ~cell:from_cell ~dwell:dwell.(u)
            in
            dwell.(u) <- dw;
            cell
          end
          else Mobility.step mobility rng_move ~cell:from_cell
        in
        if to_cell <> from_cell then incr moves;
        position.(u) <- to_cell;
        if busy_until.(u) > now && config.track_ongoing then
          (* On a call: the network tracks the terminal continuously. *)
          observe_exactly u ~now
        else begin
          let snap =
            if report_faults then Some (Reporting.snapshot report_state.(u))
            else None
          in
          let reported =
            Reporting.on_move config.reporting ~areas:config.areas
              ~hex:config.hex report_state.(u) ~from_cell ~to_cell ~now
          in
          if reported then begin
            match snap with
            | None ->
              incr updates;
              (* The report reveals the exact new cell. *)
              learn ~now u to_cell
            | Some snapshot ->
              let moved = to_cell <> from_cell in
              if
                fmodel.Faults.report_loss > 0.0
                && Prob.Rng.unit_float rng_faults < fmodel.Faults.report_loss
              then begin
                (* Lost in transit: the network's view stays stale and
                   the terminal keeps accumulating toward its next
                   report attempt. *)
                Reporting.rollback report_state.(u) ~snapshot ~moved;
                incr reports_lost
              end
              else if fmodel.Faults.report_delay > 0.0 then begin
                (* Delivered late: the anchor stays stale meanwhile, and
                   only the profile estimator learns the (old) cell at
                   delivery time. *)
                Reporting.rollback report_state.(u) ~snapshot ~moved;
                incr reports_delayed;
                let delay =
                  Prob.Rng.exponential rng_faults
                    ~rate:(1.0 /. fmodel.Faults.report_delay)
                in
                Event.schedule_after engine ~delay
                  (Report_delivery { user = u; cell = to_cell })
              end
              else begin
                incr updates;
                learn ~now u to_cell
              end
          end
        end
      done;
      Event.schedule_after engine ~delay:1.0 Tick
    in

    let handle_call now =
      maybe_freeze now;
      (* Drift check rides on call arrivals: the snapshot matters
         exactly when a search is about to use it. A trigger refreshes
         the snapshot (re-estimation) before this call is planned. *)
      (match dmon with
       | Some d when snapshot_active () ->
         (match
            Drift.check d ~now ~reference:(fun u ->
                Profile.distribution (!snapshot).(u))
          with
          | Drift.Drifted _ ->
            (* Re-estimation: a user whose evidence window contradicts
               their live estimate has known-stale counts — rebuild
               their profile from the window, hedged over their
               registered uncertainty set (the system still knows which
               location area they are in). Users whose live estimate
               already explains their window keep it: it concentrates
               as sightings accumulate, so rows sharpen again after the
               initial hedged rebuild. Then freeze the refreshed
               estimates. *)
            Array.iteri
              (fun u profile ->
                 let recent = Drift.window d ~user:u ~now in
                 let n = List.length recent in
                 if n >= min_reestimate_obs then begin
                   let emp = Array.make cells 0.0 in
                   let share = 1.0 /. float_of_int n in
                   List.iter
                     (fun c -> emp.(c) <- emp.(c) +. share)
                     recent;
                   if Drift.tv emp (Profile.distribution profile)
                      > reestimate_tv
                   then
                     let prior =
                       Reporting.uncertainty config.reporting
                         ~areas:config.areas ~hex:config.hex
                         report_state.(u) ~now
                     in
                     Profile.reseed profile ~prior recent
                 end)
              profiles;
            take_snapshot ();
            incr resolves;
            last_resolve := Some now;
            Drift.rearm d ~now
          | Drift.Stable _ | Drift.Insufficient _ | Drift.Cooling _ -> ())
       | _ -> ());
      let group = Traffic.draw_group config.traffic rng_traffic in
      if Array.exists (fun u -> busy_until.(u) > now) group then
        incr skipped_calls
      else begin
        incr total_calls;
        (* Age-triggered re-profiling: participants whose last exact
           sighting is older than the threshold are polled (one paging
           query to their reported area — counted in [polls]) before
           the search is planned, collapsing their uncertainty set and
           refreshing their profile. The semi-Markov analogue of the
           drift monitor's re-estimation, keyed on plain age. *)
        (match aging_cfg with
         | Some { reprofile_age = Some k; _ } ->
           Array.iter
             (fun u ->
               if Reporting.ticks_since_report report_state.(u) > k then begin
                 observe_exactly u ~now;
                 incr polls
               end)
             group
         | _ -> ());
        (* Per-participant uncertainty sets and their union. *)
        let uncertain =
          Array.map
            (fun u ->
              Reporting.uncertainty config.reporting ~areas:config.areas
                ~hex:config.hex report_state.(u) ~now)
            group
        in
        let universe_tbl = Hashtbl.create 64 in
        let universe_rev = ref [] in
        let universe_size = ref 0 in
        Array.iter
          (Array.iter (fun cell ->
               if not (Hashtbl.mem universe_tbl cell) then begin
                 Hashtbl.add universe_tbl cell !universe_size;
                 universe_rev := cell :: !universe_rev;
                 incr universe_size
               end))
          uncertain;
        let universe = Array.of_list (List.rev !universe_rev) in
        let c_local = Array.length universe in
        (* Row construction per estimator. *)
        let counts_row idx =
          let u = group.(idx) in
          let row = Array.make c_local 0.0 in
          let dist =
            Profile.distribution_over (paging_profile u) uncertain.(idx)
          in
          Array.iteri
            (fun k cell -> row.(Hashtbl.find universe_tbl cell) <- dist.(k))
            uncertain.(idx);
          row
        in
        let diffuse_row idx =
          let u = group.(idx) in
          let st = report_state.(u) in
          let belief =
            diffuse
              ~cell:(Reporting.last_reported_cell st)
              ~steps:(Reporting.ticks_since_report st)
          in
          let row = Array.make c_local 0.0 in
          let mass = ref 0.0 in
          Array.iter
            (fun cell ->
              let p = belief.(cell) in
              row.(Hashtbl.find universe_tbl cell) <- p;
              mass := !mass +. p)
            uncertain.(idx);
          if !mass <= 0.0 then begin
            (* Degenerate: fall back to uniform over the uncertainty set. *)
            let share = 1.0 /. float_of_int (Array.length uncertain.(idx)) in
            Array.iter
              (fun cell -> row.(Hashtbl.find universe_tbl cell) <- share)
              uncertain.(idx)
          end
          else
            Array.iteri (fun k p -> row.(k) <- p /. !mass) (Array.copy row);
          row
        in
        (* Age-dependent row: the profile estimate evolved through the
           residence-time kernel for as long as the system has been
           blind to this user. Age 0 falls back to the frozen-snapshot
           path bit for bit (Profile.aged_over delegates). *)
        let aged_row idx =
          let u = group.(idx) in
          let k = Option.get kernel in
          Profile.aged_over (paging_profile u) ~aging:k
            ~age:(profile_age u) uncertain.(idx)
          |> fun dist ->
          let row = Array.make c_local 0.0 in
          Array.iteri
            (fun k cell -> row.(Hashtbl.find universe_tbl cell) <- dist.(k))
            uncertain.(idx);
          row
        in
        (* Staleness-inflated uncertainty ball for the robust re-rank:
           the sampling radius (DKW on the profile's observation count)
           grown by the churn probability — the chance the user left
           their observed cell altogether, from the residence survival
           at the profile's age. Radii never shrink with age. *)
        let staleness_ball () =
          match aging_cfg with
          | None -> assert false (* validated: robust scheme needs aging *)
          | Some a ->
            let base =
              Array.map
                (fun u ->
                  Prob.Estimate.dkw_eps
                    ~n:(Profile.observations (paging_profile u))
                    ~confidence:a.confidence)
                group
            in
            let churn =
              Array.map
                (fun u ->
                  1.0
                  -. Mobility.residence_survival a.residence (profile_age u))
                group
            in
            Uncertainty.inflate (Uncertainty.per_row base) ~by:churn
        in
        let plan acc =
          let d, rows =
            match acc.s_scheme with
            | Blanket -> 1, Array.mapi (fun idx _ -> counts_row idx) group
            | Selective d ->
              ( Stdlib.min d c_local,
                Array.mapi (fun idx _ -> counts_row idx) group )
            | Selective_diffuse d ->
              ( Stdlib.min d c_local,
                Array.mapi (fun idx _ -> diffuse_row idx) group )
            | Selective_aged d | Selective_robust d ->
              ( Stdlib.min d c_local,
                Array.mapi (fun idx _ -> aged_row idx) group )
          in
          let inst = Instance.create ~d rows in
          let strategy =
            match acc.s_scheme with
            | Blanket -> Strategy.page_all c_local
            | Selective_robust _ ->
              (* Re-rank the candidate pool by worst-case EP over the
                 age-inflated per-row ball, like the robust-<eps>
                 solver but with radii from the residence-time model. *)
              let ball = staleness_ball () in
              let best = ref None in
              List.iter
                (fun cand ->
                  match Solver.solve cand inst with
                  | outcome ->
                    let r =
                      Uncertainty.robust_ep ball inst outcome.Solver.strategy
                    in
                    (match !best with
                     | Some (_, r') when r' <= r -> ()
                     | _ -> best := Some (outcome.Solver.strategy, r))
                  | exception Invalid_argument _ -> ())
                Solver.robust_candidates;
              (match !best with
               | Some (s, _) -> s
               | None -> (Greedy.solve inst).Order_dp.strategy)
            | Selective _ | Selective_diffuse _ | Selective_aged _ ->
              (match plan_budget_ms with
               | Some b ->
                 (* Re-solve through the budgeted runtime: a refreshed
                    snapshot re-plans like any other call, under the
                    same per-call deadline. *)
                 (match
                    Runner.solve ~budget_ms:b
                      ~chain:Solver.[ Greedy; Page_all ] inst
                  with
                  | Ok o -> o.Solver.strategy
                  | Error _ -> (Greedy.solve inst).Order_dp.strategy)
               | None -> (Greedy.solve inst).Order_dp.strategy)
          in
          inst, strategy
        in
        if not faults_on then begin
          (* Clean path: identical to the fault-free simulator. *)
          let positions_local =
            Array.map
              (fun u ->
                match Hashtbl.find_opt universe_tbl position.(u) with
                | Some k -> k
                | None ->
                  (* Disk-based policies assume at most one cell per tick;
                     teleporting mobility models break that. *)
                  invalid_arg
                    "Sim.run: user outside its uncertainty set (mobility \
                     jumps farther than the reporting policy allows)")
              group
          in
          List.iter
            (fun acc ->
              let inst, strategy = plan acc in
              let cost =
                Strategy.cost_on_outcome strategy ~m:(Array.length group)
                  ~positions:positions_local
              in
              acc.s_calls <- acc.s_calls + 1;
              acc.s_devices <- acc.s_devices + Array.length group;
              acc.s_cells <- acc.s_cells + cost;
              acc.s_expected <-
                acc.s_expected +. Strategy.expected_paging inst strategy;
              let rounds_used =
                rounds_on_outcome strategy ~positions:positions_local
              in
              acc.s_rounds <- acc.s_rounds + rounds_used;
              if Obs.on () then begin
                Obs.observe ~buckets:Obs.small_count_buckets
                  "sim_rounds_to_find" (float_of_int rounds_used);
                let groups = Strategy.groups strategy in
                for k = 0 to rounds_used - 1 do
                  Obs.observe ~buckets:Obs.small_count_buckets
                    "sim_paged_cells_per_round"
                    (float_of_int (Array.length groups.(k)))
                done
              end;
              Prob.Stats.Acc.add acc.s_stats (float_of_int cost))
            accs
        end
        else begin
          (* Fault-aware path: execute the strategy round by round
             against ground truth, sampling page loss, outage blocking
             and imperfect detection, then apply the retry policy. Every
             scheme replays the same per-call fault stream so their
             numbers stay directly comparable. *)
          let call_frng = Prob.Rng.split rng_faults in
          let positions_true = Array.map (fun u -> position.(u)) group in
          let m_group = Array.length group in
          List.iter
            (fun acc ->
              let frng = Prob.Rng.copy call_frng in
              let inst, strategy = plan acc in
              let groups = Strategy.groups strategy in
              let n_base = Array.length groups in
              let found = Array.make m_group false in
              let n_found = ref 0 in
              let cells_paged = ref 0 in
              let rounds = ref 0 in
              let round_of_local g = Array.map (fun k -> universe.(k)) g in
              let page_cells round_cells =
                incr rounds;
                let paged_before = !cells_paged in
                let effective = ref [] in
                Array.iter
                  (fun cell ->
                    if
                      fmodel.Faults.outage_rate > 0.0
                      && Faults.Outage.down outage cell
                    then
                      (* The MSC knows the base station is down: the page
                         is never transmitted (no cost), but the
                         coverage hole persists. *)
                      acc.s_pages_blocked <- acc.s_pages_blocked + 1
                    else begin
                      incr cells_paged;
                      if
                        fmodel.Faults.page_loss > 0.0
                        && Prob.Rng.unit_float frng < fmodel.Faults.page_loss
                      then acc.s_pages_lost <- acc.s_pages_lost + 1
                      else begin
                        paged_mask.(cell) <- true;
                        effective := cell :: !effective
                      end
                    end)
                  round_cells;
                (if fmodel.Faults.detect_q >= 1.0 then
                   Array.iteri
                     (fun i pos ->
                       if (not found.(i)) && paged_mask.(pos) then begin
                         found.(i) <- true;
                         incr n_found
                       end)
                     positions_true
                 else
                   n_found :=
                     !n_found
                     + Miss.page_round frng ~q:fmodel.Faults.detect_q
                         ~in_group:(fun cell -> paged_mask.(cell))
                         ~positions:positions_true ~found);
                List.iter (fun cell -> paged_mask.(cell) <- false) !effective;
                if Obs.on () then
                  Obs.observe ~buckets:Obs.small_count_buckets
                    "sim_paged_cells_per_round"
                    (float_of_int (!cells_paged - paged_before))
              in
              let r = ref 0 in
              while !n_found < m_group && !r < n_base do
                page_cells (round_of_local groups.(!r));
                incr r
              done;
              let base_cells = !cells_paged and base_rounds = !rounds in
              let repeat_cycles cycles ~backoff =
                if cycles > 0 && !n_found < m_group then begin
                  let sched = Miss.repeat_strategy strategy ~cycles in
                  let i = ref 0 in
                  while !n_found < m_group && !i < Array.length sched do
                    if !i mod n_base = 0 then begin
                      acc.s_retries <- acc.s_retries + 1;
                      rounds := !rounds + backoff
                    end;
                    page_cells (round_of_local sched.(!i));
                    incr i
                  done
                end
              in
              (match fmodel.Faults.retry with
               | Faults.No_retry -> ()
               | Faults.Repeat { cycles; backoff } ->
                 repeat_cycles cycles ~backoff;
                 acc.s_retry_cells <-
                   acc.s_retry_cells + (!cells_paged - base_cells);
                 acc.s_retry_rounds <-
                   acc.s_retry_rounds + (!rounds - base_rounds)
               | Faults.Escalate { after; to_blanket } ->
                 repeat_cycles after ~backoff:0;
                 acc.s_retry_cells <-
                   acc.s_retry_cells + (!cells_paged - base_cells);
                 acc.s_retry_rounds <-
                   acc.s_retry_rounds + (!rounds - base_rounds);
                 if !n_found < m_group then begin
                   acc.s_escalations <- acc.s_escalations + 1;
                   let before = !cells_paged in
                   page_cells (if to_blanket then all_cells else universe);
                   acc.s_escalate_cells <-
                     acc.s_escalate_cells + (!cells_paged - before)
                 end);
              if Obs.on () then
                Obs.observe ~buckets:Obs.small_count_buckets
                  "sim_rounds_to_find" (float_of_int !rounds);
              acc.s_residual <- acc.s_residual + (m_group - !n_found);
              acc.s_calls <- acc.s_calls + 1;
              acc.s_devices <- acc.s_devices + m_group;
              acc.s_cells <- acc.s_cells + !cells_paged;
              acc.s_expected <-
                acc.s_expected +. Strategy.expected_paging inst strategy;
              acc.s_rounds <- acc.s_rounds + !rounds;
              Prob.Stats.Acc.add acc.s_stats (float_of_int !cells_paged))
            accs
        end;
        (* The reference network establishes the call, whatever each
           measured scheme achieved: all schemes observe identical
           histories, keeping their costs directly comparable. *)
        Array.iter (fun u -> observe_exactly u ~now) group;
        if config.call_duration > 0.0 then begin
          let length =
            Prob.Rng.exponential rng_traffic
              ~rate:(1.0 /. config.call_duration)
          in
          Array.iter (fun u -> busy_until.(u) <- now +. length) group
        end
      end;
      Event.schedule_after engine
        ~delay:(Traffic.next_arrival config.traffic rng_traffic)
        Call
    in

    Event.run_until engine ~stop:config.duration (fun at event ->
        match event with
        | Tick -> handle_tick at
        | Call -> handle_call at
        | Report_delivery { user; cell } ->
          (* A delayed report finally arrives: the profile estimator
             learns where the terminal was when it reported. *)
          incr updates;
          learn ~now:at user cell);

    let result = {
      duration = config.duration;
      moves = !moves;
      updates = !updates;
      total_calls = !total_calls;
      skipped_calls = !skipped_calls;
      reports_lost = !reports_lost;
      reports_delayed = !reports_delayed;
      outages = Faults.Outage.failures outage;
      polls = !polls;
      drift =
        Option.map
          (fun d ->
            let r = Drift.report d in
            {
              checks = r.Drift.checks;
              evaluated = r.Drift.evaluated;
              resolves = !resolves;
              last_resolve = !last_resolve;
              max_mean_tv = r.Drift.max_mean_tv;
            })
          dmon;
      per_scheme =
        List.map
          (fun acc ->
            {
              scheme = acc.s_scheme;
              calls = acc.s_calls;
              devices_sought = acc.s_devices;
              cells_paged = acc.s_cells;
              expected_paging = acc.s_expected;
              rounds_used = acc.s_rounds;
              per_call = Prob.Stats.Acc.summary acc.s_stats;
              robustness =
                {
                  retries = acc.s_retries;
                  retry_cells = acc.s_retry_cells;
                  retry_rounds = acc.s_retry_rounds;
                  escalations = acc.s_escalations;
                  escalate_cells = acc.s_escalate_cells;
                  residual_misses = acc.s_residual;
                  pages_lost = acc.s_pages_lost;
                  pages_blocked = acc.s_pages_blocked;
                };
            })
          accs;
    } in
    obs_record_result result;
    result
  end

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "@[<v>duration %.0f, %d moves, %d reports, %d calls (%d skipped)@,"
    r.duration r.moves r.updates r.total_calls r.skipped_calls;
  if r.reports_lost > 0 || r.reports_delayed > 0 || r.outages > 0 then
    Format.fprintf ppf "faults: %d reports lost, %d delayed, %d cell outages@,"
      r.reports_lost r.reports_delayed r.outages;
  if r.polls > 0 then
    Format.fprintf ppf "aging: %d re-profiling polls@," r.polls;
  (match r.drift with
   | Some d ->
     Format.fprintf ppf
       "drift: %d checks (%d evaluated), %d re-solves%s, max mean TV %.3f@,"
       d.checks d.evaluated d.resolves
       (match d.last_resolve with
        | Some at -> Printf.sprintf " (last at t=%.0f)" at
        | None -> "")
       d.max_mean_tv
   | None -> ());
  List.iter
    (fun s ->
      Format.fprintf ppf
        "%-14s cells/call %.2f (expected %.2f) rounds/call %.2f"
        (scheme_to_string s.scheme)
        (float_of_int s.cells_paged /. float_of_int (Stdlib.max 1 s.calls))
        (s.expected_paging /. float_of_int (Stdlib.max 1 s.calls))
        (float_of_int s.rounds_used /. float_of_int (Stdlib.max 1 s.calls));
      if s.robustness <> no_faults_observed then
        Format.fprintf ppf
          " | retries %d esc %d lost %d blocked %d residual %d"
          s.robustness.retries s.robustness.escalations
          s.robustness.pages_lost s.robustness.pages_blocked
          s.robustness.residual_misses;
      Format.fprintf ppf "@,")
    r.per_scheme;
  Format.fprintf ppf "@]"
