(** Location-reporting policies: the other half of the reporting/paging
    tradeoff (§1.1 of the paper, and the classic schemes of Bar-Noy,
    Kessler & Sidi "Mobile users: to update or not to update?").

    A policy decides when a terminal sends a location report and, dually,
    which set of cells the system must consider when paging it:

    - [Area]: report on location-area boundary crossings; uncertainty =
      the reported area (GSM MAP / IS-41);
    - [Movement k]: report after every k cell changes; uncertainty = the
      hex disk of radius (moves since last report) around the last
      reported cell;
    - [Distance k]: report upon reaching hex distance k from the last
      reported cell; uncertainty = the disk of radius k − 1;
    - [Time k]: report every k ticks; uncertainty = the disk of radius
      (ticks since last report), since a terminal moves at most one cell
      per tick.

    The invariant every policy maintains: the terminal's true cell is
    always inside its uncertainty set. *)

type policy = Area | Movement of int | Distance of int | Time of int

(** Per-terminal tracking state. *)
type state

(** [init policy ~cell ~now] — state just after a report from [cell]. *)
val init : policy -> cell:int -> now:float -> state

val last_reported_cell : state -> int

(** [ticks_since_report state] — full ticks elapsed since the system
    last knew the terminal's exact cell; bounds its displacement. *)
val ticks_since_report : state -> int

(** [on_move policy ~areas ~hex state ~from_cell ~to_cell ~now] — called
    for every tick (with [from_cell = to_cell] when the terminal stayed
    put). Returns [true] when the move triggers a report; the state is
    updated either way (and reset on report). *)
val on_move :
  policy ->
  areas:Location_area.t ->
  hex:Hex.t ->
  state ->
  from_cell:int ->
  to_cell:int ->
  now:float ->
  bool

(** [uncertainty policy ~areas ~hex state ~now] — the cells the terminal
    may occupy, given the reports so far. Always contains the true cell. *)
val uncertainty :
  policy -> areas:Location_area.t -> hex:Hex.t -> state -> now:float -> int array

(** [observe_page state ~cell ~now] — a successful page revealed the
    terminal's exact cell; equivalent to a fresh report from there. *)
val observe_page : state -> cell:int -> now:float -> unit

(** [snapshot state] — an immutable copy of the tracking state, taken
    before an {!on_move} whose report might be lost in transit. *)
val snapshot : state -> state

(** [rollback state ~snapshot ~moved] — undo a report the network never
    received: the anchor (last reported cell and time) reverts to
    [snapshot]'s, while this tick's bookkeeping is re-applied (one more
    tick, one more move when [moved]), so the terminal keeps
    accumulating toward its next report exactly as if the trigger had
    not fired. Note that a lost [Area] report breaks the containment
    invariant — the terminal is in a new area the network doesn't know
    about — which is precisely the staleness the fault layer injects;
    the fault-aware paging loop tolerates devices outside their
    uncertainty set. *)
val rollback : state -> snapshot:state -> moved:bool -> unit

(** [validate policy] — parameter sanity ([k ≥ 1]). *)
val validate : policy -> (unit, string) result

val to_string : policy -> string
