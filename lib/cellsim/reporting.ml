type policy = Area | Movement of int | Distance of int | Time of int

type state = {
  mutable last_cell : int;  (* cell of the last report *)
  mutable moves : int;  (* cell changes since the last report *)
  mutable report_time : float;  (* when the last report happened *)
  mutable ticks : int;  (* ticks since the last report *)
}

let validate = function
  | Area -> Ok ()
  | Movement k | Distance k | Time k ->
    if k >= 1 then Ok () else Error "reporting parameter must be >= 1"

let init policy ~cell ~now =
  (match validate policy with
   | Ok () -> ()
   | Error reason -> invalid_arg ("Reporting.init: " ^ reason));
  { last_cell = cell; moves = 0; report_time = now; ticks = 0 }

let last_reported_cell state = state.last_cell
let ticks_since_report state = state.ticks

let reset state ~cell ~now =
  state.last_cell <- cell;
  state.moves <- 0;
  state.report_time <- now;
  state.ticks <- 0

let on_move policy ~areas ~hex state ~from_cell ~to_cell ~now =
  state.ticks <- state.ticks + 1;
  if to_cell <> from_cell then state.moves <- state.moves + 1;
  let report =
    match policy with
    | Area ->
      to_cell <> from_cell
      && Location_area.crossing areas ~from_cell ~to_cell
    | Movement k -> state.moves >= k
    | Distance k -> Hex.distance hex state.last_cell to_cell >= k
    | Time k -> state.ticks >= k
  in
  if report then reset state ~cell:to_cell ~now;
  report

let observe_page state ~cell ~now = reset state ~cell ~now

let snapshot state =
  {
    last_cell = state.last_cell;
    moves = state.moves;
    report_time = state.report_time;
    ticks = state.ticks;
  }

let rollback state ~snapshot ~moved =
  state.last_cell <- snapshot.last_cell;
  state.report_time <- snapshot.report_time;
  state.ticks <- snapshot.ticks + 1;
  state.moves <- (snapshot.moves + if moved then 1 else 0)

let uncertainty policy ~areas ~hex state ~now =
  ignore now;
  match policy with
  | Area ->
    Location_area.cells_of_area areas (Location_area.area_of areas state.last_cell)
  | Movement _ ->
    Array.of_list (Hex.disk hex state.last_cell ~radius:state.moves)
  | Distance k ->
    Array.of_list (Hex.disk hex state.last_cell ~radius:(k - 1))
  | Time _ ->
    Array.of_list (Hex.disk hex state.last_cell ~radius:state.ticks)

let to_string = function
  | Area -> "area"
  | Movement k -> Printf.sprintf "movement-%d" k
  | Distance k -> Printf.sprintf "distance-%d" k
  | Time k -> Printf.sprintf "time-%d" k
