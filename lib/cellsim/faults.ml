type retry =
  | No_retry
  | Repeat of { cycles : int; backoff : int }
  | Escalate of { after : int; to_blanket : bool }

type t = {
  page_loss : float;
  detect_q : float;
  outage_rate : float;
  outage_repair : float;
  report_loss : float;
  report_delay : float;
  retry : retry;
}

let none =
  {
    page_loss = 0.0;
    detect_q = 1.0;
    outage_rate = 0.0;
    outage_repair = 0.0;
    report_loss = 0.0;
    report_delay = 0.0;
    retry = No_retry;
  }

let is_clean t =
  t.page_loss <= 0.0
  && t.detect_q >= 1.0
  && t.outage_rate <= 0.0
  && t.report_loss <= 0.0
  && t.report_delay <= 0.0

let in_unit_co x = Float.is_finite x && x >= 0.0 && x < 1.0
let nonneg x = Float.is_finite x && x >= 0.0

let validate t =
  if not (in_unit_co t.page_loss) then Error "page_loss must be in [0, 1)"
  else if
    not (Float.is_finite t.detect_q && t.detect_q > 0.0 && t.detect_q <= 1.0)
  then Error "detect_q must be in (0, 1]"
  else if not (nonneg t.outage_rate) then Error "outage_rate must be >= 0"
  else if not (nonneg t.outage_repair) then Error "outage_repair must be >= 0"
  else if not (in_unit_co t.report_loss) then
    Error "report_loss must be in [0, 1)"
  else if not (nonneg t.report_delay) then Error "report_delay must be >= 0"
  else
    match t.retry with
    | No_retry -> Ok ()
    | Repeat { cycles; backoff } ->
      if cycles < 1 then Error "Repeat cycles must be >= 1"
      else if backoff < 0 then Error "Repeat backoff must be >= 0"
      else Ok ()
    | Escalate { after; to_blanket = _ } ->
      if after < 0 then Error "Escalate after must be >= 0" else Ok ()

let retry_to_string = function
  | No_retry -> "none"
  | Repeat { cycles; backoff } ->
    if backoff = 0 then Printf.sprintf "repeat:%d" cycles
    else Printf.sprintf "repeat:%d:%d" cycles backoff
  | Escalate { after; to_blanket } ->
    Printf.sprintf "escalate:%d:%s" after
      (if to_blanket then "blanket" else "universe")

let retry_of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "none" ] | [ "no-retry" ] -> Ok No_retry
  | "repeat" :: rest ->
    (match rest with
     | [ c ] | [ c; "0" ] ->
       (match int_of_string_opt c with
        | Some cycles when cycles >= 1 -> Ok (Repeat { cycles; backoff = 0 })
        | _ -> Error "repeat cycles must be an integer >= 1")
     | [ c; b ] ->
       (match int_of_string_opt c, int_of_string_opt b with
        | Some cycles, Some backoff when cycles >= 1 && backoff >= 0 ->
          Ok (Repeat { cycles; backoff })
        | _ -> Error "repeat takes cycles >= 1 and backoff >= 0"
       )
     | _ -> Error "retry must be none | repeat:<cycles>[:<backoff>] | \
                   escalate:<after>[:blanket|universe]")
  | "escalate" :: rest ->
    (match rest with
     | [ a ] | [ a; "blanket" ] ->
       (match int_of_string_opt a with
        | Some after when after >= 0 ->
          Ok (Escalate { after; to_blanket = true })
        | _ -> Error "escalate after must be an integer >= 0")
     | [ a; "universe" ] ->
       (match int_of_string_opt a with
        | Some after when after >= 0 ->
          Ok (Escalate { after; to_blanket = false })
        | _ -> Error "escalate after must be an integer >= 0")
     | _ -> Error "escalate target must be blanket or universe")
  | _ ->
    Error
      "retry must be none | repeat:<cycles>[:<backoff>] | \
       escalate:<after>[:blanket|universe]"

let to_string t =
  Printf.sprintf
    "page-loss %.3g, q %.3g, outage %.3g/%.3g, report-loss %.3g, \
     report-delay %.3g, retry %s"
    t.page_loss t.detect_q t.outage_rate t.outage_repair t.report_loss
    t.report_delay (retry_to_string t.retry)

module Outage = struct
  type state = { up : bool array; mutable failures : int }

  let create ~cells =
    if cells <= 0 then invalid_arg "Faults.Outage.create: no cells"
    else { up = Array.make cells true; failures = 0 }

  let down state cell = not state.up.(cell)
  let failures state = state.failures

  let step state faults rng =
    if faults.outage_rate > 0.0 then begin
      let p_fail = 1.0 -. exp (-.faults.outage_rate) in
      let p_repair =
        if faults.outage_repair <= 0.0 then 1.0
        else 1.0 -. exp (-1.0 /. faults.outage_repair)
      in
      Array.iteri
        (fun cell up ->
          if up then begin
            if Prob.Rng.unit_float rng < p_fail then begin
              state.up.(cell) <- false;
              state.failures <- state.failures + 1
            end
          end
          else if p_repair >= 1.0 || Prob.Rng.unit_float rng < p_repair then
            state.up.(cell) <- true)
        state.up
    end
end
