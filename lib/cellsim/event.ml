type 'a t = { heap : 'a Heap.t; mutable clock : float }

let create () = { heap = Heap.create (); clock = 0.0 }
let now t = t.clock

let schedule t ~at event =
  if at < t.clock then invalid_arg "Event.schedule: scheduling in the past"
  else Heap.push t.heap ~priority:at event

let schedule_after t ~delay event =
  if delay < 0.0 then invalid_arg "Event.schedule_after: negative delay"
  else schedule t ~at:(t.clock +. delay) event

let next t =
  match Heap.pop t.heap with
  | None -> None
  | Some (at, event) ->
    t.clock <- at;
    Some (at, event)

let run_until t ~stop handler =
  let continue = ref true in
  while !continue do
    match Heap.peek t.heap with
    | None -> continue := false
    | Some (at, _) when at > stop -> continue := false
    | Some _ ->
      (match next t with
       | None -> continue := false
       | Some (at, event) -> handler at event)
  done

let pending t = Heap.length t.heap
