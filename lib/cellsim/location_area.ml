type t = {
  cells : int;
  area_of : int array;
  members : int array array;
}

let create ~cells ~area_of =
  if Array.length area_of <> cells then
    invalid_arg "Location_area.create: assignment length mismatch"
  else begin
    let k = Array.fold_left Stdlib.max (-1) area_of + 1 in
    if k <= 0 then invalid_arg "Location_area.create: no areas"
    else if Array.exists (fun a -> a < 0) area_of then
      invalid_arg "Location_area.create: negative area id"
    else begin
      let buckets = Array.make k [] in
      for cell = cells - 1 downto 0 do
        buckets.(area_of.(cell)) <- cell :: buckets.(area_of.(cell))
      done;
      if Array.exists (fun b -> b = []) buckets then
        invalid_arg "Location_area.create: empty area"
      else
        {
          cells;
          area_of = Array.copy area_of;
          members = Array.map Array.of_list buckets;
        }
    end
  end

let grid hex ~block_rows ~block_cols =
  if block_rows <= 0 || block_cols <= 0 then
    invalid_arg "Location_area.grid: bad block size"
  else begin
    let rows = hex.Hex.rows and cols = hex.Hex.cols in
    let blocks_per_row = (cols + block_cols - 1) / block_cols in
    let area_of =
      Array.init (Hex.cells hex) (fun cell ->
          let row, col = Hex.coords hex cell in
          ((row / block_rows) * blocks_per_row) + (col / block_cols))
    in
    ignore rows;
    (* Compact ids (edge effects can skip ids when cols % block_cols <> 0
       — they cannot here, but renumber defensively). *)
    let seen = Hashtbl.create 16 in
    let next = ref 0 in
    let compact =
      Array.map
        (fun a ->
          match Hashtbl.find_opt seen a with
          | Some id -> id
          | None ->
            let id = !next in
            Hashtbl.add seen a id;
            incr next;
            id)
        area_of
    in
    create ~cells:(Hex.cells hex) ~area_of:compact
  end

let single hex =
  create ~cells:(Hex.cells hex) ~area_of:(Array.make (Hex.cells hex) 0)

let per_cell hex =
  create ~cells:(Hex.cells hex)
    ~area_of:(Array.init (Hex.cells hex) (fun j -> j))

let areas t = Array.length t.members
let area_of t cell = t.area_of.(cell)
let cells_of_area t a = Array.copy t.members.(a)
let crossing t ~from_cell ~to_cell = t.area_of.(from_cell) <> t.area_of.(to_cell)
