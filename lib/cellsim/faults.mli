(** Fault injection for the end-to-end simulator.

    The clean simulator assumes every page reaches its cell, every paged
    device answers, every base station is up and every location report
    arrives instantly. §5 of the paper already concedes the second
    assumption (a paged device answers only with some probability — the
    response-collision model that {!Confcall.Miss} analyzes in
    isolation); real deployments break the other three as well. This
    module defines a composable fault model that {!Sim} threads through
    the whole paging loop:

    - {b page loss}: each page transmitted to a cell is independently
      lost with probability [page_loss] — the page costs wireless
      bandwidth but cannot elicit an answer;
    - {b no-response}: a device that receives a page answers only with
      probability [detect_q], the §5 / Search-Theory detection parameter
      [q] (Stone 1975), sampled per page via {!Confcall.Miss.page_round};
    - {b cell outages}: base stations fail with per-tick hazard
      [outage_rate] and are repaired after exponentially distributed
      down-times with mean [outage_repair] ticks. A downed cell cannot be
      paged at all; the scheduler knows it is down and skips it (no page
      cost), but the coverage hole persists until repair;
    - {b report loss / delay}: a location report is lost in transit with
      probability [report_loss] — the network's view of the terminal goes
      stale, so schemes page stale distributions — and surviving reports
      are delivered after an exponential delay with mean [report_delay]
      ticks when that is positive, so profiles learn old data.

    All sampling is driven by a dedicated split of the simulation's
    {!Prob.Rng}, so a faulty run is exactly as deterministic and
    reproducible as a clean one, and enabling faults never perturbs the
    mobility or traffic streams. *)

(** What to do when the delay budget is exhausted and some conferees
    still have not answered. *)
type retry =
  | No_retry  (** unanswered devices stay missing (residual miss) *)
  | Repeat of { cycles : int; backoff : int }
      (** re-run the strategy's rounds up to [cycles] more times (the
          {!Confcall.Miss.repeat_strategy} schedule), waiting [backoff]
          idle rounds before each extra cycle; stops early once everyone
          has answered. [cycles >= 1], [backoff >= 0]. *)
  | Escalate of { after : int; to_blanket : bool }
      (** graceful degradation: [after] repeat cycles (possibly 0), then
          one final blanket round — over the whole field when
          [to_blanket] (this can recover devices whose lost reports put
          them outside the computed uncertainty universe), otherwise over
          the call's uncertainty universe only. *)

type t = {
  page_loss : float;  (** per-page loss probability, in [0, 1) *)
  detect_q : float;  (** per-page response probability, in (0, 1] *)
  outage_rate : float;  (** per-tick cell failure hazard, >= 0 *)
  outage_repair : float;  (** mean down-time in ticks, >= 0 *)
  report_loss : float;  (** per-report loss probability, in [0, 1) *)
  report_delay : float;  (** mean report delivery delay in ticks, >= 0 *)
  retry : retry;
}

(** All channels perfect: zero loss, [detect_q = 1], no outages, no
    delays, [No_retry]. [Sim.run] with [faults = Some none] produces
    results identical to [faults = None]. *)
val none : t

(** [is_clean t] — no fault can ever fire (the retry policy is
    irrelevant because nothing is ever missed). *)
val is_clean : t -> bool

val validate : t -> (unit, string) result
val retry_to_string : retry -> string
val retry_of_string : string -> (retry, string) result
val to_string : t -> string

(** Per-cell outage processes: an independent two-state (up/down) Markov
    chain per cell, sampled at tick boundaries. *)
module Outage : sig
  type state

  (** [create ~cells] — all cells up. *)
  val create : cells:int -> state

  val down : state -> int -> bool

  (** [failures state] — up-to-down transitions observed so far. *)
  val failures : state -> int

  (** [step state faults rng] advances every cell by one tick: an up
      cell fails with probability [1 - exp (-. faults.outage_rate)], a
      down cell is repaired with probability
      [1 - exp (-1 / faults.outage_repair)] (immediately when
      [outage_repair = 0]). Draws nothing when [faults.outage_rate <= 0]
      and no cell is down. *)
  val step : state -> t -> Prob.Rng.t -> unit
end
