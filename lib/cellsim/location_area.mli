(** Location areas: the GSM MAP / IS-41 balance between reporting and
    paging (§1.1). The cell field is partitioned into areas; users
    report when they cross an area boundary, and a call pages the whole
    last-reported area (the baseline our selective strategies improve
    on). *)

type t = private {
  cells : int;
  area_of : int array;  (** cell → area id *)
  members : int array array;  (** area id → its cells *)
}

(** [create ~cells ~area_of] from an explicit assignment.
    @raise Invalid_argument when ids are not 0..k−1 or some area is
    empty. *)
val create : cells:int -> area_of:int array -> t

(** [grid hex ~block_rows ~block_cols] tiles the hex field with
    rectangular areas of the given block size (edge blocks may be
    smaller). *)
val grid : Hex.t -> block_rows:int -> block_cols:int -> t

(** [single hex] — one area covering everything (never report, always
    page all). *)
val single : Hex.t -> t

(** [per_cell hex] — every cell its own area (always report, page one
    cell). *)
val per_cell : Hex.t -> t

val areas : t -> int
val area_of : t -> int -> int
val cells_of_area : t -> int -> int array

(** [crossing t ~from_cell ~to_cell] — does this move trigger a report? *)
val crossing : t -> from_cell:int -> to_cell:int -> bool
