type t = {
  counts : float array;
  decay : float;
  smoothing : float;
  mutable seen : int;
}

let create ~cells ~decay ~smoothing =
  if cells <= 0 then invalid_arg "Profile.create: no cells"
  else if decay <= 0.0 || decay > 1.0 then
    invalid_arg "Profile.create: decay must be in (0, 1]"
  else if smoothing <= 0.0 then
    invalid_arg "Profile.create: smoothing must be positive"
  else { counts = Array.make cells 0.0; decay; smoothing; seen = 0 }

let cells t = Array.length t.counts

let observe t cell =
  if cell < 0 || cell >= cells t then invalid_arg "Profile.observe: bad cell"
  else begin
    if t.decay < 1.0 then
      for j = 0 to cells t - 1 do
        t.counts.(j) <- t.counts.(j) *. t.decay
      done;
    t.counts.(cell) <- t.counts.(cell) +. 1.0;
    t.seen <- t.seen + 1
  end

let observations t = t.seen

let distribution t =
  Prob.Dist.normalize (Array.map (fun x -> x +. t.smoothing) t.counts)

let distribution_over t subset =
  if Array.length subset = 0 then
    invalid_arg "Profile.distribution_over: empty subset"
  else
    Prob.Dist.normalize
      (Array.map (fun j -> t.counts.(j) +. t.smoothing) subset)

let copy t =
  { counts = Array.copy t.counts; decay = t.decay; smoothing = t.smoothing; seen = t.seen }
