type t = {
  counts : float array;
  decay : float;
  smoothing : float;
  mutable seen : int;
}

let create ~cells ~decay ~smoothing =
  if cells <= 0 then invalid_arg "Profile.create: no cells"
  else if decay <= 0.0 || decay > 1.0 then
    invalid_arg "Profile.create: decay must be in (0, 1]"
  else if smoothing <= 0.0 then
    invalid_arg "Profile.create: smoothing must be positive"
  else { counts = Array.make cells 0.0; decay; smoothing; seen = 0 }

let cells t = Array.length t.counts

let observe t cell =
  if cell < 0 || cell >= cells t then invalid_arg "Profile.observe: bad cell"
  else begin
    if t.decay < 1.0 then
      for j = 0 to cells t - 1 do
        t.counts.(j) <- t.counts.(j) *. t.decay
      done;
    t.counts.(cell) <- t.counts.(cell) +. 1.0;
    t.seen <- t.seen + 1
  end

let observations t = t.seen

let distribution t =
  Prob.Dist.normalize (Array.map (fun x -> x +. t.smoothing) t.counts)

let distribution_over t subset =
  if Array.length subset = 0 then
    invalid_arg "Profile.distribution_over: empty subset"
  else
    Prob.Dist.normalize
      (Array.map (fun j -> t.counts.(j) +. t.smoothing) subset)

let reset t =
  Array.fill t.counts 0 (cells t) 0.0;
  t.seen <- 0

let reseed t ?prior obs =
  reset t;
  (match prior with
   | Some subset when Array.length subset > 0 ->
     (* One pseudo-observation spread over the prior support: the
        rebuilt estimate hedges instead of claiming point confidence
        from a handful of sightings. *)
     let w = 1.0 /. float_of_int (Array.length subset) in
     Array.iter
       (fun c ->
          if c < 0 || c >= cells t then invalid_arg "Profile.reseed: bad cell"
          else t.counts.(c) <- t.counts.(c) +. w)
       subset
   | _ -> ());
  List.iter (observe t) obs

let copy t =
  { counts = Array.copy t.counts; decay = t.decay; smoothing = t.smoothing; seen = t.seen }
