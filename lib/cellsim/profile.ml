type t = {
  counts : float array;
  (* stamp.(j): how many decay events counts.(j) has absorbed. Decay is
     lazy — observe only touches the observed cell, and readers catch
     cells up to [decays] on demand — so profiling is O(1) per
     observation instead of O(cells). *)
  stamp : int array;
  decay : float;
  smoothing : float;
  mutable seen : int;
  mutable decays : int;
}

let create ~cells ~decay ~smoothing =
  if cells <= 0 then invalid_arg "Profile.create: no cells"
  else if decay <= 0.0 || decay > 1.0 then
    invalid_arg "Profile.create: decay must be in (0, 1]"
  else if smoothing <= 0.0 then
    invalid_arg "Profile.create: smoothing must be positive"
  else
    {
      counts = Array.make cells 0.0;
      stamp = Array.make cells 0;
      decay;
      smoothing;
      seen = 0;
      decays = 0;
    }

let cells t = Array.length t.counts

(* Catch a cell up with the pending decay events. A lag of one uses a
   single multiply, bitwise identical to the old eager loop; larger
   lags collapse into one power (equal to the eager result up to float
   associativity, ~1 ulp per pending event). *)
let materialize_cell t j =
  let lag = t.decays - t.stamp.(j) in
  if lag > 0 then begin
    (if t.counts.(j) <> 0.0 then
       if lag = 1 then t.counts.(j) <- t.counts.(j) *. t.decay
       else t.counts.(j) <- t.counts.(j) *. (t.decay ** float_of_int lag));
    t.stamp.(j) <- t.decays
  end

let materialize t =
  if t.decay < 1.0 then
    for j = 0 to cells t - 1 do
      materialize_cell t j
    done

let observe t cell =
  if cell < 0 || cell >= cells t then invalid_arg "Profile.observe: bad cell"
  else begin
    if t.decay < 1.0 then begin
      t.decays <- t.decays + 1;
      materialize_cell t cell
    end;
    t.counts.(cell) <- t.counts.(cell) +. 1.0;
    t.seen <- t.seen + 1
  end

let observations t = t.seen

let distribution t =
  materialize t;
  Prob.Dist.normalize (Array.map (fun x -> x +. t.smoothing) t.counts)

let distribution_over t subset =
  if Array.length subset = 0 then
    invalid_arg "Profile.distribution_over: empty subset"
  else begin
    if t.decay < 1.0 then Array.iter (fun j -> materialize_cell t j) subset;
    Prob.Dist.normalize
      (Array.map (fun j -> t.counts.(j) +. t.smoothing) subset)
  end

let reset t =
  Array.fill t.counts 0 (cells t) 0.0;
  Array.fill t.stamp 0 (cells t) 0;
  t.seen <- 0;
  t.decays <- 0

let reseed t ?prior obs =
  reset t;
  (match prior with
   | Some subset when Array.length subset > 0 ->
     (* One pseudo-observation spread over the prior support: the
        rebuilt estimate hedges instead of claiming point confidence
        from a handful of sightings. *)
     let w = 1.0 /. float_of_int (Array.length subset) in
     Array.iter
       (fun c ->
          if c < 0 || c >= cells t then invalid_arg "Profile.reseed: bad cell"
          else t.counts.(c) <- t.counts.(c) +. w)
       subset
   | _ -> ());
  List.iter (observe t) obs

let copy t =
  {
    counts = Array.copy t.counts;
    stamp = Array.copy t.stamp;
    decay = t.decay;
    smoothing = t.smoothing;
    seen = t.seen;
    decays = t.decays;
  }

(* ------------------------------------------------------------------ *)
(* Age-dependent estimates                                             *)
(* ------------------------------------------------------------------ *)

let aged t ~aging ~age =
  if age < 0 then invalid_arg "Profile.aged: age must be >= 0"
  else if age = 0 then
    (* The frozen-snapshot path, bit for bit. *)
    distribution t
  else Mobility.age_dist aging (distribution t) ~steps:age

let aged_over t ~aging ~age subset =
  if age < 0 then invalid_arg "Profile.aged_over: age must be >= 0"
  else if Array.length subset = 0 then
    invalid_arg "Profile.aged_over: empty subset"
  else if age = 0 then distribution_over t subset
  else begin
    let full = Mobility.age_dist aging (distribution t) ~steps:age in
    let restricted = Array.map (fun j -> full.(j)) subset in
    let mass = Array.fold_left ( +. ) 0.0 restricted in
    if mass <= 0.0 then
      (* All evolved mass left the subset: fall back to uniform over
         it, mirroring the diffusion path's zero-mass convention. *)
      Array.make (Array.length subset) (1.0 /. float_of_int (Array.length subset))
    else Prob.Dist.normalize restricted
  end
