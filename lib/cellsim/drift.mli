(** Drift detection for the paging matrix.

    The simulator pages with a {e snapshot} of the per-user location
    profiles (the estimated matrix); the live profiles keep learning
    from reports and successful pages. This monitor watches the gap
    between the two: per user it keeps the recent observation window
    (cells the system actually saw the user in, within a sliding time
    horizon) and compares its empirical distribution against the
    snapshot's row by total-variation distance.

    A verdict is only rendered when enough users have enough {e fresh}
    evidence — under stationary mobility few users produce reports, so
    the monitor stays silent instead of reacting to sampling noise; a
    regime change produces a burst of relocation reports, making many
    users eligible at once with windows far from their snapshot rows.
    The caller re-estimates (refreshes the snapshot) and {!rearm}s on a
    [Drifted] verdict. *)

type config = {
  window : float;  (** sliding time horizon of "recent" observations *)
  min_obs : int;  (** per-user recent observations required for eligibility *)
  min_users : int;  (** eligible users required before any verdict *)
  threshold : float;  (** mean TV distance that triggers [Drifted] *)
  cooldown : float;  (** minimum time between triggers / rearms *)
}

(** window 20, min_obs 4, min_users 8, threshold 0.6, cooldown 30. *)
val default : config

val validate : config -> (unit, string) result

type verdict =
  | Cooling of float
      (** still inside the post-trigger/rearm cooldown; carries the
          remaining cooldown time. Distinct from [Insufficient] so
          callers can tell "monitor muted" from "not enough fresh
          evidence". *)
  | Insufficient of int  (** too few eligible users (the count) *)
  | Stable of float  (** mean TV over eligible users, under threshold *)
  | Drifted of float  (** mean TV over eligible users, over threshold *)

type t

(** [create config ~users ~cells].
    @raise Invalid_argument on an invalid config. *)
val create : config -> users:int -> cells:int -> t

(** [observe t ~user ~cell ~now] — the system saw [user] in [cell]. *)
val observe : t -> user:int -> cell:int -> now:float -> unit

(** [check t ~now ~reference] compares each eligible user's recent
    empirical distribution against [reference user] (the snapshot row,
    a length-[cells] distribution). Counts the check; a [Drifted]
    verdict also records the trigger time. *)
val check : t -> now:float -> reference:(int -> float array) -> verdict

(** [window t ~user ~now] — the cells of [user]'s recent observation
    window (oldest first), after expiring entries older than the
    horizon. The raw material for re-estimating a drifted user. *)
val window : t -> user:int -> now:float -> int list

(** [rearm t ~now] — the snapshot was refreshed: start a cooldown.
    Observation windows are kept — a caller that re-estimates from the
    windows makes the refreshed reference agree with them by
    construction, while evidence the refresh missed keeps counting
    against the snapshot. *)
val rearm : t -> now:float -> unit

(** [tv a b] is the total-variation distance (1/2)·Σ|aⱼ − bⱼ|.
    @raise Invalid_argument on length mismatch. *)
val tv : float array -> float array -> float

type report = {
  checks : int;  (** calls to {!check} *)
  evaluated : int;  (** checks that had enough evidence for a verdict *)
  triggers : int;  (** [Drifted] verdicts *)
  last_trigger : float option;
  max_mean_tv : float;  (** largest mean TV seen by any evaluated check *)
}

val report : t -> report
