(** Per-user location profiles estimated from observations.

    The paging algorithms consume a probability vector per user; real
    systems estimate it from the user's observation history (the paper
    cites [15,16] for such methods). This estimator keeps exponentially
    decayed visit counts of the cells where the system actually saw the
    user — location-area registrations and successful pages — with
    Laplace smoothing so every cell keeps positive mass. *)

type t

(** [create ~cells ~decay ~smoothing] — [decay] ∈ (0, 1] multiplies old
    counts at each observation; [smoothing] > 0 is the per-cell pseudo
    count. *)
val create : cells:int -> decay:float -> smoothing:float -> t

val cells : t -> int

(** [observe t cell] records that the user was seen in [cell]. O(1):
    decay of the other cells is deferred (a pending-exponent stamp per
    cell) and materialized when the estimate is read. *)
val observe : t -> int -> unit

(** [observations t] — number of observations recorded so far. *)
val observations : t -> int

(** [distribution t] — current estimate (positive, sums to 1). *)
val distribution : t -> float array

(** [distribution_over t cells] — the estimate restricted to a cell
    subset and renormalized (e.g. the user's current location area). *)
val distribution_over : t -> int array -> float array

(** [reset t] drops all accumulated counts (back to the smoothed
    uniform). Used when the estimate is known to be invalidated — e.g.
    a drift monitor re-estimates the user from recent evidence only. *)
val reset : t -> unit

(** [reseed t ?prior obs] rebuilds the estimate from scratch: drops all
    counts, spreads one pseudo-observation uniformly over [prior] (the
    cells the user is known to be among, e.g. their registered location
    area), then records each cell of [obs] in order. The prior keeps
    the rebuilt row honest — a couple of sightings shift its mode
    without claiming near-certainty.
    @raise Invalid_argument on an out-of-range cell. *)
val reseed : t -> ?prior:int array -> int list -> unit

val copy : t -> t

(** {1 Age-dependent estimates}

    A profile summarises where the user was when last observed. By page
    time the observation is [age] ticks old, and the estimate should be
    pushed through the mobility model's transient dynamics — the
    semi-Markov {!Mobility.aging} kernel — before the solver sees it. *)

(** [aged t ~aging ~age] — the profile's distribution evolved [age]
    ticks under the aging kernel. [age = 0] is bit-identical to
    {!distribution} (the frozen-snapshot path).
    @raise Invalid_argument when [age < 0] or the kernel's cell count
    differs from the profile's. *)
val aged : t -> aging:Mobility.aging -> age:int -> float array

(** [aged_over t ~aging ~age subset] — the aged estimate restricted to
    a cell subset and renormalized; the age-aware counterpart of
    {!distribution_over}, to which it is bit-identical at [age = 0].
    Falls back to uniform over [subset] when all evolved mass left it.
    @raise Invalid_argument on an empty subset or [age < 0]. *)
val aged_over :
  t -> aging:Mobility.aging -> age:int -> int array -> float array
