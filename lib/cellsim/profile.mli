(** Per-user location profiles estimated from observations.

    The paging algorithms consume a probability vector per user; real
    systems estimate it from the user's observation history (the paper
    cites [15,16] for such methods). This estimator keeps exponentially
    decayed visit counts of the cells where the system actually saw the
    user — location-area registrations and successful pages — with
    Laplace smoothing so every cell keeps positive mass. *)

type t

(** [create ~cells ~decay ~smoothing] — [decay] ∈ (0, 1] multiplies old
    counts at each observation; [smoothing] > 0 is the per-cell pseudo
    count. *)
val create : cells:int -> decay:float -> smoothing:float -> t

val cells : t -> int

(** [observe t cell] records that the user was seen in [cell]. *)
val observe : t -> int -> unit

(** [observations t] — number of observations recorded so far. *)
val observations : t -> int

(** [distribution t] — current estimate (positive, sums to 1). *)
val distribution : t -> float array

(** [distribution_over t cells] — the estimate restricted to a cell
    subset and renormalized (e.g. the user's current location area). *)
val distribution_over : t -> int array -> float array

val copy : t -> t
