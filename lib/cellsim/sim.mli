(** End-to-end simulation: users roam a hex field under a mobility
    model, report their location according to a {!Reporting} policy, and
    Poisson conference-call arrivals trigger searches.

    For each call the system builds a Conference Call instance over the
    union of the participants' uncertainty sets, estimates each row with
    the scheme's location estimator, runs the paging strategy, and
    counts the cells actually paged against ground truth. All schemes
    observe identical mobility, traffic and observation history (every
    scheme locates all participants), so their costs are directly
    comparable within one run.

    Optionally calls have a duration: while a user is on a call the
    system tracks their cell continuously (an ongoing call needs no
    search — §1.1), and busy users cannot join new conferences.

    With [faults = Some f] the run additionally injects the {!Faults}
    model: pages are lost, paged devices answer only with probability
    [q] (§5), cells suffer transient outages, and location reports are
    lost or delayed — after which the configured retry policy re-pages
    and possibly escalates to blanket paging. The fault stream has its
    own split of the seed PRNG, so [faults = None] and
    [faults = Some Faults.none] produce identical results and every
    faulty run is reproducible. *)

type scheme =
  | Blanket  (** page the whole uncertainty set in one round *)
  | Selective of int
      (** weight-order heuristic with delay d, decayed-count profiles *)
  | Selective_diffuse of int
      (** same heuristic, but rows are the mobility model's diffusion of
          the last known cell — "the system knows the motion statistics" *)
  | Selective_aged of int
      (** profile rows evolved through the residence-time aging kernel
          for each user's profile age (ticks since last exact sighting);
          requires [aging]. At age 0 (or [age_cap = 0]) identical to
          [Selective] bit for bit. *)
  | Selective_robust of int
      (** aged rows, planned by re-ranking the solver's candidate pool
          by worst-case EP over a per-user uncertainty ball whose radius
          grows with profile age (DKW sampling radius + residence-model
          churn); requires [aging]. *)

(** Robustness observables accumulated over a run's calls; all zero when
    faults are disabled or never fired. *)
type fault_metrics = {
  retries : int;  (** extra re-page cycles issued *)
  retry_cells : int;  (** cells paged during retry cycles *)
  retry_rounds : int;  (** rounds spent retrying, incl. backoff idling *)
  escalations : int;  (** calls that fell back to a final blanket round *)
  escalate_cells : int;  (** cells paged by escalation rounds *)
  residual_misses : int;  (** devices never found by this scheme's paging *)
  pages_lost : int;  (** pages lost on the wireless channel *)
  pages_blocked : int;  (** pages suppressed because the cell was down *)
}

val no_faults_observed : fault_metrics

type scheme_metrics = {
  scheme : scheme;
  calls : int;
  devices_sought : int;
  cells_paged : int;
      (** ground-truth total, including retry and escalation pages *)
  expected_paging : float;  (** model EP summed over calls (fault-free) *)
  rounds_used : int;  (** ground-truth rounds until all found or given up *)
  per_call : Prob.Stats.summary;  (** cells paged per call *)
  robustness : fault_metrics;
}

(** Observables of the estimated-matrix path: how often the drift
    monitor looked, how often it re-estimated, and the worst gap seen. *)
type drift_metrics = {
  checks : int;  (** drift checks performed (one per call arrival) *)
  evaluated : int;  (** checks with enough fresh evidence for a verdict *)
  resolves : int;  (** drift triggers → snapshot refresh + re-solve *)
  last_resolve : float option;  (** sim time of the latest refresh *)
  max_mean_tv : float;  (** worst mean TV distance over evaluated checks *)
}

type result = {
  duration : float;
  moves : int;
  updates : int;  (** reports received under the configured policy *)
  total_calls : int;
  skipped_calls : int;  (** arrivals dropped because a participant was busy *)
  reports_lost : int;  (** location reports lost in transit *)
  reports_delayed : int;  (** location reports delivered late *)
  outages : int;  (** cell up-to-down transitions over the run *)
  polls : int;
      (** age-triggered re-profiling queries (participants polled before
          planning because their profile exceeded [reprofile_age]) *)
  drift : drift_metrics option;
      (** set iff the run used a [Snapshot] estimator with a monitor *)
  per_scheme : scheme_metrics list;
}

(** Which matrix the paging planner sees. *)
type estimator =
  | Live
      (** page straight from the continuously-updated profiles (the
          historical behaviour of this simulator) *)
  | Snapshot of {
      warmup : float;
          (** sim time at which the paging matrix is frozen from the
              live profiles; before that the planner uses the live ones *)
      drift : Drift.config option;
          (** monitor comparing recent observations against the frozen
              snapshot; a trigger re-estimates (refreshes the snapshot)
              and re-solves. [None] is the stale-matrix baseline: the
              snapshot is never refreshed. *)
      budget_ms : float option;
          (** when set, per-call selective planning goes through
              {!Confcall.Runner.solve} under this time budget instead of
              calling the greedy solver directly *)
    }

(** The residence-time layer: how profile age translates into belief
    evolution, uncertainty growth and (optionally) ground-truth motion. *)
type aging_config = {
  residence : Mobility.residence;
      (** per-cell dwell law (uniform across cells) *)
  age_cap : int;
      (** profile ages are clamped here before belief evolution — the
          aged matrix approaches stationarity anyway and the cap bounds
          work per row; [0] disables evolution (frozen snapshots) *)
  dwell_cap : int;  (** dwell-age truncation of the aging kernel *)
  drive_motion : bool;
      (** when true, ground-truth motion follows the semi-Markov walk
          ({!Mobility.semi_step}) so actual dwell times obey
          [residence]; incompatible with [mobility_schedule]. When
          false, motion stays the plain Markov chain and the kernel
          only ages beliefs. *)
  reprofile_age : int option;
      (** poll call participants whose profile age exceeds this before
          planning (counted in [result.polls]); [None] never polls *)
  confidence : float;
      (** confidence for the DKW component of the staleness radius *)
}

(** Exponential residence of mean 6, age cap 30, dwell cap 32, belief
    aging only (no semi-Markov motion), no re-profiling, confidence
    0.9. *)
val default_aging : aging_config

type config = {
  hex : Hex.t;
  mobility : Mobility.t;
      (** the system's calibrated motion model: drives the diffusion
          estimator, and the actual motion whenever [mobility_schedule]
          has no entry for the current time *)
  areas : Location_area.t;
  users : int;
  traffic : Traffic.t;
  schemes : scheme list;
  reporting : Reporting.policy;
  profile_decay : float;
  profile_smoothing : float;
  mobility_schedule : (float * Mobility.t) list;
      (** piecewise actual mobility: (start_time, model) entries sorted by
          time; before the first entry (and when empty) users follow
          [mobility]. Lets commuter patterns (morning/evening drift)
          diverge from the system's single calibrated model. *)
  call_duration : float;
      (** mean call length (exponential); ≤ 0 for instantaneous calls *)
  track_ongoing : bool;
      (** when true, the network observes the exact cell of every user on
          an ongoing call each tick (§1.1: devices in a call communicate
          with base stations continuously); when false, on-call users are
          as opaque as idle ones — the ablation switch for E17 *)
  faults : Faults.t option;
      (** fault-injection model; [None] is the perfectly reliable
          simulator. Note that with faults enabled a device may fall
          outside the computed uncertainty universe (a lost report made
          the network's view stale); the paging loop then counts it as a
          residual miss instead of raising, and only an
          [Escalate ~to_blanket:true] retry can still recover it. *)
  estimator : estimator;
      (** [Live] pages from the always-fresh profiles; [Snapshot]
          freezes the paging matrix at [warmup] and models a deployed
          estimator that must {e detect} staleness to refresh *)
  aging : aging_config option;
      (** residence-time layer; required by [Selective_aged] and
          [Selective_robust] schemes, [None] is the ageless simulator
          (byte-identical to the previous behaviour) *)
  duration : float;  (** mobility ticks happen at every integer time *)
  seed : int;
}

(** [default_config ()] — an 8×8 field, 3×3 location areas, area
    reporting, 64 users, random-walk mobility, 3-party instantaneous
    conferences, 400 time units, no faults. *)
val default_config : unit -> config

(** [run config] executes the simulation deterministically for the
    config's seed.
    @raise Invalid_argument on inconsistent dimensions, non-positive
    user counts, an empty scheme list, an unsorted mobility schedule,
    out-of-range profile decay/smoothing, or bad reporting/fault
    parameters. *)
val run : config -> result

val scheme_to_string : scheme -> string
val pp_result : Format.formatter -> result -> unit
