(** End-to-end simulation: users roam a hex field under a mobility
    model, report their location according to a {!Reporting} policy, and
    Poisson conference-call arrivals trigger searches.

    For each call the system builds a Conference Call instance over the
    union of the participants' uncertainty sets, estimates each row with
    the scheme's location estimator, runs the paging strategy, and
    counts the cells actually paged against ground truth. All schemes
    observe identical mobility, traffic and observation history (every
    scheme locates all participants), so their costs are directly
    comparable within one run.

    Optionally calls have a duration: while a user is on a call the
    system tracks their cell continuously (an ongoing call needs no
    search — §1.1), and busy users cannot join new conferences. *)

type scheme =
  | Blanket  (** page the whole uncertainty set in one round *)
  | Selective of int
      (** weight-order heuristic with delay d, decayed-count profiles *)
  | Selective_diffuse of int
      (** same heuristic, but rows are the mobility model's diffusion of
          the last known cell — "the system knows the motion statistics" *)

type scheme_metrics = {
  scheme : scheme;
  calls : int;
  devices_sought : int;
  cells_paged : int;  (** ground-truth total *)
  expected_paging : float;  (** model EP summed over calls *)
  rounds_used : int;  (** ground-truth rounds until all found *)
  per_call : Prob.Stats.summary;  (** cells paged per call *)
}

type result = {
  duration : float;
  moves : int;
  updates : int;  (** reports sent under the configured policy *)
  total_calls : int;
  skipped_calls : int;  (** arrivals dropped because a participant was busy *)
  per_scheme : scheme_metrics list;
}

type config = {
  hex : Hex.t;
  mobility : Mobility.t;
      (** the system's calibrated motion model: drives the diffusion
          estimator, and the actual motion whenever [mobility_schedule]
          has no entry for the current time *)
  areas : Location_area.t;
  users : int;
  traffic : Traffic.t;
  schemes : scheme list;
  reporting : Reporting.policy;
  profile_decay : float;
  profile_smoothing : float;
  mobility_schedule : (float * Mobility.t) list;
      (** piecewise actual mobility: (start_time, model) entries sorted by
          time; before the first entry (and when empty) users follow
          [mobility]. Lets commuter patterns (morning/evening drift)
          diverge from the system's single calibrated model. *)
  call_duration : float;
      (** mean call length (exponential); ≤ 0 for instantaneous calls *)
  track_ongoing : bool;
      (** when true, the network observes the exact cell of every user on
          an ongoing call each tick (§1.1: devices in a call communicate
          with base stations continuously); when false, on-call users are
          as opaque as idle ones — the ablation switch for E17 *)
  duration : float;  (** mobility ticks happen at every integer time *)
  seed : int;
}

(** [default_config ()] — an 8×8 field, 3×3 location areas, area
    reporting, 64 users, random-walk mobility, 3-party instantaneous
    conferences, 400 time units. *)
val default_config : unit -> config

(** [run config] executes the simulation deterministically for the
    config's seed.
    @raise Invalid_argument on inconsistent dimensions or bad reporting
    parameters. *)
val run : config -> result

val scheme_to_string : scheme -> string
val pp_result : Format.formatter -> result -> unit
