(** A rectangular field of hexagonal cells (offset coordinates).

    Base stations tile the plane with hexagons in real deployments; the
    mobility models walk this grid. Cells are indexed 0 … rows·cols − 1
    row-major; odd rows are offset ("odd-r" layout). *)

type t = private { rows : int; cols : int }

(** @raise Invalid_argument on non-positive dimensions. *)
val create : rows:int -> cols:int -> t

val cells : t -> int
val index : t -> row:int -> col:int -> int
val coords : t -> int -> int * int
val in_bounds : t -> row:int -> col:int -> bool

(** [neighbors t cell] — the up-to-6 adjacent cells. *)
val neighbors : t -> int -> int list

(** [distance t a b] — hex-grid (cube-coordinate) distance. *)
val distance : t -> int -> int -> int

(** [disk t center ~radius] — all cells within the given hex distance,
    including the center. *)
val disk : t -> int -> radius:int -> int list
