type t = { rows : int; cols : int }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Hex.create: bad dimensions"
  else { rows; cols }

let cells t = t.rows * t.cols

let index t ~row ~col =
  if row < 0 || row >= t.rows || col < 0 || col >= t.cols then
    invalid_arg "Hex.index: out of bounds"
  else (row * t.cols) + col

let coords t cell =
  if cell < 0 || cell >= cells t then invalid_arg "Hex.coords: out of bounds"
  else cell / t.cols, cell mod t.cols

let in_bounds t ~row ~col = row >= 0 && row < t.rows && col >= 0 && col < t.cols

(* Odd-r offset layout: odd rows shift right by half a hex. *)
let neighbor_offsets row =
  if row land 1 = 0 then
    [ -1, -1; -1, 0; 0, -1; 0, 1; 1, -1; 1, 0 ]
  else [ -1, 0; -1, 1; 0, -1; 0, 1; 1, 0; 1, 1 ]

let neighbors t cell =
  let row, col = coords t cell in
  List.filter_map
    (fun (dr, dc) ->
      let r = row + dr and c = col + dc in
      if in_bounds t ~row:r ~col:c then Some (index t ~row:r ~col:c) else None)
    (neighbor_offsets row)

(* Convert odd-r offset to cube coordinates for distance. *)
let to_cube row col =
  let x = col - ((row - (row land 1)) / 2) in
  let z = row in
  let y = -x - z in
  x, y, z

let distance t a b =
  let ra, ca = coords t a and rb, cb = coords t b in
  let xa, ya, za = to_cube ra ca and xb, yb, zb = to_cube rb cb in
  (abs (xa - xb) + abs (ya - yb) + abs (za - zb)) / 2

let disk t center ~radius =
  if radius < 0 then invalid_arg "Hex.disk: negative radius"
  else begin
    let acc = ref [] in
    for cell = cells t - 1 downto 0 do
      if distance t center cell <= radius then acc := cell :: !acc
    done;
    !acc
  end
