(** Canned simulation scenarios.

    Ready-made {!Sim.config}s for recurring evaluation settings, so the
    CLI, benches and downstream users share consistent setups. Every
    scenario is deterministic given its seed. *)

(** [suburb ?seed ()] — the baseline: 8×8 field, 4×4 location areas,
    64 users on an unbiased random walk, 3-party instantaneous calls. *)
val suburb : ?seed:int -> unit -> Sim.config

(** [commuter_day ?seed ()] — a stylized working day on a 12×8 field:
    the first third of the time users drift east (morning commute), the
    middle third they walk randomly (work hours), the last third the
    drift reverses (evening). The system's calibrated model (used by the
    diffusion estimator) remains the unbiased walk, so regime changes
    stress the estimators realistically. *)
val commuter_day : ?seed:int -> unit -> Sim.config

(** [drifting_commuter ?seed ()] — model misspecification end-to-end on
    a 12×8 field: users sit still ("parked") while the system freezes
    an estimated paging matrix at t = 120 ([Sim.Snapshot] estimator);
    at t = 180 everyone commutes east for 25 ticks, then parks again.
    A {!Drift} monitor rides on call arrivals and refreshes the
    snapshot when evidence contradicts it — the relocation burst
    triggers hedged re-estimation and re-solving, and later sightings
    let the refreshed rows sharpen until realized paging cost matches
    the re-solved nominal EP again; selective planning runs through
    the budgeted {!Confcall.Runner} (5 ms/call). Setting the
    estimator's [drift] to [None] turns the same workload into the
    stale-matrix baseline, which stays miscalibrated and expensive
    after the commute. *)
val drifting_commuter : ?seed:int -> unit -> Sim.config

(** [busy_campus ?seed ()] — a dense 6×6 field with per-2×2 location
    areas, high call rate and 5-unit mean call durations: many busy
    lines, much free tracking. *)
val busy_campus : ?seed:int -> unit -> Sim.config

(** [degraded_downtown ?seed ()] — the {!suburb} workload on degraded
    infrastructure: 5% page loss, §5 response probability q = 0.85,
    transient cell outages (hazard 0.002/tick, mean repair 10 ticks),
    10% report loss, mean report delay 2 ticks, and an
    escalate-after-one-repeat retry policy. The robustness baseline for
    comparing schemes' graceful degradation. *)
val degraded_downtown : ?seed:int -> unit -> Sim.config

(** [residence_lab ?seed ~residence ()] — the residence-time
    laboratory: an 8×8 field whose ground truth moves by the
    semi-Markov walk under [residence] (mean dwell 6 ticks, stay
    matched so the exponential law reproduces the plain chain), time-8
    reporting so profile ages genuinely spread over [0, 8), and a
    scheme lineup of blanket, age-blind selective, age-evolved
    selective and the staleness-inflated robust re-rank. *)
val residence_lab :
  ?seed:int -> residence:Mobility.residence -> unit -> Sim.config

(** {!residence_lab} under an exponential dwell law of mean 6. *)
val residence_exp : ?seed:int -> unit -> Sim.config

(** {!residence_lab} under a heavy-tailed Pareto dwell law (tail index
    1.6, infinite variance) matched to the same mean dwell 6. *)
val residence_pareto : ?seed:int -> unit -> Sim.config

val all : (string * (?seed:int -> unit -> Sim.config)) list
