(** Canned simulation scenarios.

    Ready-made {!Sim.config}s for recurring evaluation settings, so the
    CLI, benches and downstream users share consistent setups. Every
    scenario is deterministic given its seed. *)

(** [suburb ?seed ()] — the baseline: 8×8 field, 4×4 location areas,
    64 users on an unbiased random walk, 3-party instantaneous calls. *)
val suburb : ?seed:int -> unit -> Sim.config

(** [commuter_day ?seed ()] — a stylized working day on a 12×8 field:
    the first third of the time users drift east (morning commute), the
    middle third they walk randomly (work hours), the last third the
    drift reverses (evening). The system's calibrated model (used by the
    diffusion estimator) remains the unbiased walk, so regime changes
    stress the estimators realistically. *)
val commuter_day : ?seed:int -> unit -> Sim.config

(** [busy_campus ?seed ()] — a dense 6×6 field with per-2×2 location
    areas, high call rate and 5-unit mean call durations: many busy
    lines, much free tracking. *)
val busy_campus : ?seed:int -> unit -> Sim.config

(** [degraded_downtown ?seed ()] — the {!suburb} workload on degraded
    infrastructure: 5% page loss, §5 response probability q = 0.85,
    transient cell outages (hazard 0.002/tick, mean repair 10 ticks),
    10% report loss, mean report delay 2 ticks, and an
    escalate-after-one-repeat retry policy. The robustness baseline for
    comparing schemes' graceful degradation. *)
val degraded_downtown : ?seed:int -> unit -> Sim.config

val all : (string * (?seed:int -> unit -> Sim.config)) list
