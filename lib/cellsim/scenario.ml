let suburb ?(seed = 2002) () =
  let hex = Hex.create ~rows:8 ~cols:8 in
  let users = 64 in
  {
    Sim.hex;
    mobility = Mobility.random_walk hex ~stay:0.4;
    areas = Location_area.grid hex ~block_rows:4 ~block_cols:4;
    users;
    traffic = Traffic.create ~rate:0.5 ~group_size:(Traffic.Fixed 3) ~users;
    schemes = [ Sim.Blanket; Sim.Selective 3; Sim.Selective_diffuse 3 ];
    reporting = Reporting.Area;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration = 0.0;
    track_ongoing = true;
    faults = None;
    estimator = Sim.Live;
    aging = None;
    duration = 300.0;
    seed;
  }

let commuter_day ?(seed = 2002) () =
  let hex = Hex.create ~rows:8 ~cols:12 in
  let users = 90 in
  let duration = 360.0 in
  let calm = Mobility.random_walk hex ~stay:0.4 in
  let eastbound = Mobility.drift_walk hex ~stay:0.2 ~east_bias:4.0 in
  let westbound =
    (* Mirror the drift by biasing against eastern columns: build the
       westbound matrix by transposing the column preference. *)
    let n = Hex.cells hex in
    let rows =
      Array.init n (fun cell ->
          let mirror c =
            let row, col = Hex.coords hex c in
            Hex.index hex ~row ~col:(11 - col)
          in
          let source = eastbound.Mobility.rows.(mirror cell) in
          let out = Array.make n 0.0 in
          Array.iteri (fun target p -> out.(mirror target) <- p) source;
          out)
    in
    Mobility.create rows
  in
  {
    Sim.hex;
    mobility = calm;
    areas = Location_area.grid hex ~block_rows:4 ~block_cols:4;
    users;
    traffic =
      Traffic.create ~rate:0.7 ~group_size:(Traffic.Uniform_range (2, 4)) ~users;
    schemes = [ Sim.Blanket; Sim.Selective 3; Sim.Selective_diffuse 3 ];
    reporting = Reporting.Area;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule =
      [ 0.0, eastbound; duration /. 3.0, calm; 2.0 *. duration /. 3.0, westbound ];
    call_duration = 0.0;
    track_ongoing = true;
    faults = None;
    estimator = Sim.Live;
    aging = None;
    duration;
    seed;
  }

(* Model misspecification end-to-end: users sit still long enough for
   the system to freeze an estimated paging matrix, then a commute
   relocates everyone. With the drift monitor on, the burst of
   relocation reports triggers re-estimation + re-solving; with it off
   (drift = None) the sim is the stale-matrix baseline. *)
let drifting_commuter ?(seed = 2002) () =
  let hex = Hex.create ~rows:8 ~cols:12 in
  let users = 90 in
  let duration = 360.0 in
  (* Static "at home/office" phase (identity kernel): the estimate can
     converge, and a converged estimate stays exactly right until the
     commute — so any realized-vs-nominal gap is attributable to
     staleness, not to residual motion. *)
  let parked =
    let n = Hex.cells hex in
    Mobility.create
      (Array.init n (fun cell ->
           let row = Array.make n 0.0 in
           row.(cell) <- 1.0;
           row))
  in
  let eastbound = Mobility.drift_walk hex ~stay:0.2 ~east_bias:4.0 in
  {
    Sim.hex;
    mobility = parked;
    areas = Location_area.grid hex ~block_rows:4 ~block_cols:4;
    users;
    traffic =
      Traffic.create ~rate:0.7 ~group_size:(Traffic.Uniform_range (2, 4)) ~users;
    schemes = [ Sim.Blanket; Sim.Selective 3 ];
    reporting = Reporting.Area;
    profile_decay = 0.9;
    (* Tiny smoothing: parked users really are where the counts say,
       so a near-deterministic row keeps the nominal EP honest. *)
    profile_smoothing = 0.001;
    (* The commute is a transition, not a permanent regime: users
       relocate east for 25 ticks, then settle at the new location — so
       a refreshed estimate becomes valid again and realized cost can
       re-converge to the re-solved nominal EP. *)
    mobility_schedule = [ (180.0, eastbound); (205.0, parked) ];
    (* Short calls: while a line is up the network tracks the terminal,
       so every call yields a few exact sightings — the realistic
       evidence rate that lets rebuilt rows sharpen again. *)
    call_duration = 2.0;
    track_ongoing = true;
    faults = None;
    estimator =
      Sim.Snapshot
        {
          warmup = 120.0;
          (* A longer, lower-bar evidence window than {!Drift.default}:
             parked users are sighted only on the occasional call, so
             post-commute corrections must get by on sparse exact
             sightings; the commute's relocation burst clears the bar
             either way. *)
          drift =
            Some
              {
                Drift.window = 40.0;
                min_obs = 2;
                min_users = 6;
                threshold = 0.15;
                cooldown = 20.0;
              };
          budget_ms = Some 5.0;
        };
    aging = None;
    duration;
    seed;
  }

let busy_campus ?(seed = 2002) () =
  let hex = Hex.create ~rows:6 ~cols:6 in
  let users = 48 in
  {
    Sim.hex;
    mobility = Mobility.random_walk hex ~stay:0.5;
    areas = Location_area.grid hex ~block_rows:2 ~block_cols:2;
    users;
    traffic =
      Traffic.create ~rate:1.5 ~group_size:(Traffic.Uniform_range (2, 3)) ~users;
    schemes = [ Sim.Blanket; Sim.Selective 2; Sim.Selective_diffuse 2 ];
    reporting = Reporting.Area;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration = 5.0;
    track_ongoing = true;
    faults = None;
    estimator = Sim.Live;
    aging = None;
    duration = 300.0;
    seed;
  }

let degraded_downtown ?(seed = 2002) () =
  let base = suburb ~seed () in
  {
    base with
    Sim.faults =
      Some
        {
          Faults.page_loss = 0.05;
          detect_q = 0.85;
          outage_rate = 0.002;
          outage_repair = 10.0;
          report_loss = 0.1;
          report_delay = 2.0;
          retry = Faults.Escalate { after = 1; to_blanket = true };
        };
  }

(* Residence-time laboratory: ground truth moves by the semi-Markov
   walk under [residence] (mean dwell 6 ticks), reports arrive only
   every 8 ticks (Time policy), so profiles are genuinely stale at page
   time — ages spread over [0, 8). The scheme lineup compares the
   age-blind selective baseline against age-evolved rows and the
   staleness-inflated robust re-rank, under identical motion. The
   random walk's stay probability is matched to the mean dwell
   (stay = 1 − 1/mean), so under the exponential law the semi-Markov
   walk coincides with the plain chain — isolating the residence-time
   *variance* as the experimental variable. *)
let residence_lab ?(seed = 2002) ~residence () =
  let hex = Hex.create ~rows:8 ~cols:8 in
  let users = 64 in
  let mean_dwell = 6.0 in
  {
    Sim.hex;
    mobility = Mobility.random_walk hex ~stay:(1.0 -. (1.0 /. mean_dwell));
    areas = Location_area.grid hex ~block_rows:4 ~block_cols:4;
    users;
    traffic = Traffic.create ~rate:0.5 ~group_size:(Traffic.Fixed 3) ~users;
    schemes =
      [ Sim.Blanket; Sim.Selective 3; Sim.Selective_aged 3;
        Sim.Selective_robust 3 ];
    reporting = Reporting.Time 8;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration = 0.0;
    track_ongoing = true;
    faults = None;
    estimator = Sim.Live;
    aging = Some { Sim.default_aging with residence; drive_motion = true };
    duration = 300.0;
    seed;
  }

let residence_exp ?seed () =
  residence_lab ?seed ~residence:(Mobility.Exponential { mean = 6.0 }) ()

let residence_pareto ?seed () =
  residence_lab ?seed
    ~residence:(Mobility.pareto_with_mean ~alpha:1.6 ~mean:6.0) ()

let all =
  [
    "suburb", suburb;
    "commuter-day", commuter_day;
    "drifting-commuter", drifting_commuter;
    "busy-campus", busy_campus;
    "degraded-downtown", degraded_downtown;
    "residence-exp", residence_exp;
    "residence-pareto", residence_pareto;
  ]
