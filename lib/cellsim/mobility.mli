(** Mobility models over a cell graph.

    A model is a Markov transition matrix over cells: each simulation
    tick a user jumps according to their current cell's row. The
    stationary distribution doubles as a ground-truth location profile
    for experiments that want the "ideal knowledge" regime. *)

type t = private { n : int; rows : float array array }

(** [create rows] validates a row-stochastic matrix.
    @raise Invalid_argument when some row does not sum to 1. *)
val create : float array array -> t

(** [random_walk hex ~stay] — with probability [stay] remain in place,
    otherwise move to a uniform neighbor. *)
val random_walk : Hex.t -> stay:float -> t

(** [drift_walk hex ~stay ~east_bias] — a random walk with a preference
    for eastward neighbors; models commuter flow. [east_bias] ≥ 1
    multiplies the weight of neighbors with larger column. *)
val drift_walk : Hex.t -> stay:float -> east_bias:float -> t

(** [teleport base ~jump ~target] — with probability [jump] redraw the
    cell from [target] (waypoint behaviour), otherwise follow [base]. *)
val teleport : t -> jump:float -> target:float array -> t

(** [step t rng ~cell] — sample the next cell. *)
val step : t -> Prob.Rng.t -> cell:int -> int

(** [stationary ?iters ?tol t] — stationary distribution by power
    iteration from uniform; [tol] is total-variation convergence. *)
val stationary : ?iters:int -> ?tol:float -> t -> float array

(** [diffuse t dist ~steps] — push a distribution [steps] ticks forward:
    the system's belief about a user last seen [steps] ago. *)
val diffuse : t -> float array -> steps:int -> float array
