(** Mobility models over a cell graph.

    A model is a Markov transition matrix over cells: each simulation
    tick a user jumps according to their current cell's row. The
    stationary distribution doubles as a ground-truth location profile
    for experiments that want the "ideal knowledge" regime.

    The plain matrix implies geometric cell residence times (constant
    hazard). The {!residence} / {!aging} layer below generalises this
    to explicit per-cell dwell laws — exponential or heavy-tailed —
    turning the chain into a semi-Markov process whose transient
    evolution quantifies how fast a location profile goes stale. *)

type t = private { n : int; rows : float array array }

(** [create rows] validates a row-stochastic matrix.
    @raise Invalid_argument naming the offending row index and its
    actual sum when some row does not sum to 1, has the wrong width,
    or contains a negative entry. *)
val create : float array array -> t

(** [random_walk hex ~stay] — with probability [stay] remain in place,
    otherwise move to a uniform neighbor. A cell with no neighbors
    (single-cell field) is absorbing: all mass stays. *)
val random_walk : Hex.t -> stay:float -> t

(** [drift_walk hex ~stay ~east_bias] — a random walk with a preference
    for eastward neighbors; models commuter flow. [east_bias] ≥ 1
    multiplies the weight of neighbors with larger column. Isolated
    cells are absorbing, as in {!random_walk}. *)
val drift_walk : Hex.t -> stay:float -> east_bias:float -> t

(** [teleport base ~jump ~target] — with probability [jump] redraw the
    cell from [target] (waypoint behaviour), otherwise follow [base]. *)
val teleport : t -> jump:float -> target:float array -> t

(** [step t rng ~cell] — sample the next cell. *)
val step : t -> Prob.Rng.t -> cell:int -> int

(** [stationary ?iters ?tol t] — stationary distribution by power
    iteration from uniform; [tol] is total-variation convergence. *)
val stationary : ?iters:int -> ?tol:float -> t -> float array

(** [diffuse t dist ~steps] — push a distribution [steps] ticks forward:
    the system's belief about a user last seen [steps] ago.
    @raise Invalid_argument when [steps < 0]. *)
val diffuse : t -> float array -> steps:int -> float array

(** {1 Residence-time distributions}

    Discrete dwell laws: the number of whole ticks a user spends in a
    cell before jumping. Every law puts its mass on {1, 2, ...} — a
    visit lasts at least one tick. *)

type residence =
  | Exponential of { mean : float }
      (** Geometric dwell with hazard [1/mean] — the memoryless law the
          plain Markov matrix implies. [mean >= 1]. *)
  | Pareto of { alpha : float; scale : float }
      (** Discrete Lomax: survival [(1 + a/scale)^-alpha]. Heavy tail;
          infinite variance for [alpha <= 2], infinite mean for
          [alpha <= 1]. *)
  | Zipf of { s : float; cutoff : int }
      (** [P(T = k) ∝ k^-s] for [k = 1..cutoff]. *)

(** [validate_residence r] checks parameter ranges. *)
val validate_residence : residence -> (unit, string) result

(** [residence_survival r a] — [P(dwell > a ticks)]; [S(0) = 1].
    @raise Invalid_argument on bad parameters or [a < 0]. *)
val residence_survival : residence -> int -> float

(** [residence_hazard r a] — [P(leave at dwell age a | survived to a)],
    clamped to [0, 1]; returns 1 past the support. *)
val residence_hazard : residence -> int -> float

(** [residence_mean r] — expected dwell in ticks; [infinity] when the
    law's mean diverges (Pareto with [alpha <= 1]). *)
val residence_mean : residence -> float

(** [pareto_with_mean ~alpha ~mean] — the Pareto law with tail index
    [alpha] whose mean dwell equals [mean] (scale found by bisection),
    for variance comparisons at a matched mean.
    @raise Invalid_argument when [alpha <= 1] or [mean < 1]. *)
val pareto_with_mean : alpha:float -> mean:float -> residence

(** [residence_of_string s] parses ["exp:<mean>"],
    ["pareto:<alpha>:<scale>"] or ["zipf:<s>:<cutoff>"]. *)
val residence_of_string : string -> (residence, string) result

val residence_to_string : residence -> string

(** {1 Aging kernel}

    A mobility matrix plus per-cell residence laws define a semi-Markov
    walk: leave the current cell with the dwell-age-dependent hazard,
    and on leaving pick the destination from the matrix row conditioned
    on moving. Beliefs evolve on the (cell × dwell-age) product chain,
    with dwell age capped at [dwell_cap] (hazards freeze at the cap, a
    geometric tail approximation). With uniform exponential laws of
    mean [1/(1 - stay)] the per-tick dynamics coincide exactly with the
    base matrix. *)

type aging

(** [aging ?dwell_cap base laws] — one law per cell.
    @raise Invalid_argument on a law-count mismatch, bad law
    parameters, or [dwell_cap < 1] (default 32). *)
val aging : ?dwell_cap:int -> t -> residence array -> aging

(** [aging_uniform ?dwell_cap base law] — the same law in every cell. *)
val aging_uniform : ?dwell_cap:int -> t -> residence -> aging

val aging_base : aging -> t
val aging_dwell_cap : aging -> int
val aging_law : aging -> cell:int -> residence

(** [hazard_at a ~cell ~dwell] — leave probability this tick. *)
val hazard_at : aging -> cell:int -> dwell:int -> float

(** [semi_step a rng ~cell ~dwell] — one ground-truth tick of the
    semi-Markov walk; returns the new cell and dwell age. Consumes an
    identical number of RNG draws regardless of the law, so runs under
    different residence laws share motion randomness shape. *)
val semi_step : aging -> Prob.Rng.t -> cell:int -> dwell:int -> int * int

(** [age_dist a dist ~steps] — transient evolution of a location belief
    whose mass was observed (dwell age 0) [steps] ticks ago; the
    age-dependent analogue of {!diffuse}. [steps = 0] is a copy.
    @raise Invalid_argument when [steps < 0] or on a size mismatch. *)
val age_dist : aging -> float array -> steps:int -> float array
