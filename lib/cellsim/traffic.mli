(** Call-arrival workload: Poisson conference-call arrivals with a
    configurable group-size distribution. *)

type group_size =
  | Fixed of int
  | Uniform_range of int * int  (** inclusive *)
  | Geometric_capped of float * int
      (** success probability, cap; size = 1 + failures before success *)

type t

(** [create ~rate ~group_size ~users] — [rate] is calls per time unit
    across the system; participants are drawn without replacement from
    [users]. *)
val create : rate:float -> group_size:group_size -> users:int -> t

(** [next_arrival t rng] — exponential inter-arrival time. *)
val next_arrival : t -> Prob.Rng.t -> float

(** [draw_group t rng] — distinct participant ids for one conference. *)
val draw_group : t -> Prob.Rng.t -> int array

val rate : t -> float
