type group_size =
  | Fixed of int
  | Uniform_range of int * int
  | Geometric_capped of float * int

type t = { rate : float; group_size : group_size; users : int }

let create ~rate ~group_size ~users =
  if rate <= 0.0 then invalid_arg "Traffic.create: non-positive rate"
  else if users <= 0 then invalid_arg "Traffic.create: no users"
  else begin
    (match group_size with
     | Fixed k ->
       if k < 1 || k > users then invalid_arg "Traffic.create: bad fixed size"
     | Uniform_range (lo, hi) ->
       if lo < 1 || hi < lo || hi > users then
         invalid_arg "Traffic.create: bad size range"
     | Geometric_capped (p, cap) ->
       if p <= 0.0 || p > 1.0 || cap < 1 || cap > users then
         invalid_arg "Traffic.create: bad geometric parameters");
    { rate; group_size; users }
  end

let next_arrival t rng = Prob.Rng.exponential rng ~rate:t.rate

let sample_size t rng =
  match t.group_size with
  | Fixed k -> k
  | Uniform_range (lo, hi) -> Prob.Rng.int_range rng lo hi
  | Geometric_capped (p, cap) ->
    let rec go k =
      if k >= cap then cap
      else if Prob.Rng.unit_float rng < p then k
      else go (k + 1)
    in
    go 1

let draw_group t rng =
  let k = sample_size t rng in
  (* Partial Fisher-Yates over a fresh id array. *)
  let ids = Array.init t.users (fun i -> i) in
  for i = 0 to k - 1 do
    let j = Prob.Rng.int_range rng i (t.users - 1) in
    let tmp = ids.(i) in
    ids.(i) <- ids.(j);
    ids.(j) <- tmp
  done;
  Array.sub ids 0 k

let rate t = t.rate
