type t = { n : int; rows : float array array }

let create rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Mobility.create: empty matrix"
  else begin
    Array.iter
      (fun row ->
        if Array.length row <> n then
          invalid_arg "Mobility.create: matrix must be square"
        else if Array.exists (fun x -> x < 0.0) row then
          invalid_arg "Mobility.create: negative entry"
        else if abs_float (Array.fold_left ( +. ) 0.0 row -. 1.0) > 1e-9 then
          invalid_arg "Mobility.create: row does not sum to 1")
      rows;
    { n; rows = Array.map Array.copy rows }
  end

let random_walk hex ~stay =
  if stay < 0.0 || stay >= 1.0 then
    invalid_arg "Mobility.random_walk: stay must be in [0, 1)"
  else begin
    let n = Hex.cells hex in
    let rows =
      Array.init n (fun cell ->
          let row = Array.make n 0.0 in
          let ns = Hex.neighbors hex cell in
          let share = (1.0 -. stay) /. float_of_int (List.length ns) in
          row.(cell) <- stay;
          List.iter (fun j -> row.(j) <- row.(j) +. share) ns;
          row)
    in
    create rows
  end

let drift_walk hex ~stay ~east_bias =
  if stay < 0.0 || stay >= 1.0 then
    invalid_arg "Mobility.drift_walk: stay must be in [0, 1)"
  else if east_bias < 1.0 then
    invalid_arg "Mobility.drift_walk: east_bias must be >= 1"
  else begin
    let n = Hex.cells hex in
    let rows =
      Array.init n (fun cell ->
          let row = Array.make n 0.0 in
          let _, col = Hex.coords hex cell in
          let ns = Hex.neighbors hex cell in
          let weight j =
            let _, cj = Hex.coords hex j in
            if cj > col then east_bias else 1.0
          in
          let total = List.fold_left (fun acc j -> acc +. weight j) 0.0 ns in
          row.(cell) <- stay;
          List.iter
            (fun j -> row.(j) <- row.(j) +. ((1.0 -. stay) *. weight j /. total))
            ns;
          row)
    in
    create rows
  end

let teleport base ~jump ~target =
  if jump < 0.0 || jump > 1.0 then
    invalid_arg "Mobility.teleport: jump must be in [0, 1]"
  else if Array.length target <> base.n then
    invalid_arg "Mobility.teleport: target dimension mismatch"
  else begin
    let target = Prob.Dist.normalize (Array.copy target) in
    let rows =
      Array.map
        (fun row ->
          Array.mapi
            (fun j x -> ((1.0 -. jump) *. x) +. (jump *. target.(j)))
            row)
        base.rows
    in
    create rows
  end

let step t rng ~cell =
  if cell < 0 || cell >= t.n then invalid_arg "Mobility.step: bad cell"
  else Prob.Dist.sample rng t.rows.(cell)

let stationary ?(iters = 10_000) ?(tol = 1e-12) t =
  let v = ref (Array.make t.n (1.0 /. float_of_int t.n)) in
  let continue = ref true in
  let k = ref 0 in
  while !continue && !k < iters do
    let next = Array.make t.n 0.0 in
    for i = 0 to t.n - 1 do
      let vi = !v.(i) in
      if vi > 0.0 then
        for j = 0 to t.n - 1 do
          next.(j) <- next.(j) +. (vi *. t.rows.(i).(j))
        done
    done;
    if Prob.Dist.total_variation !v next < tol then continue := false;
    v := next;
    incr k
  done;
  !v

let diffuse t dist ~steps =
  if Array.length dist <> t.n then
    invalid_arg "Mobility.diffuse: dimension mismatch"
  else begin
    let v = ref (Array.copy dist) in
    for _ = 1 to steps do
      let next = Array.make t.n 0.0 in
      for i = 0 to t.n - 1 do
        let vi = !v.(i) in
        if vi > 0.0 then
          for j = 0 to t.n - 1 do
            next.(j) <- next.(j) +. (vi *. t.rows.(i).(j))
          done
      done;
      v := next
    done;
    !v
  end
