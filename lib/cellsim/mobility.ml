type t = { n : int; rows : float array array }

let create rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Mobility.create: empty matrix"
  else begin
    Array.iteri
      (fun i row ->
        if Array.length row <> n then
          invalid_arg
            (Printf.sprintf
               "Mobility.create: row %d has %d entries, matrix is %d-square" i
               (Array.length row) n)
        else if Array.exists (fun x -> x < 0.0) row then
          invalid_arg (Printf.sprintf "Mobility.create: negative entry in row %d" i)
        else begin
          let sum = Array.fold_left ( +. ) 0.0 row in
          if abs_float (sum -. 1.0) > 1e-9 then
            invalid_arg
              (Printf.sprintf "Mobility.create: row %d sums to %.12g, not 1" i
                 sum)
        end)
      rows;
    { n; rows = Array.map Array.copy rows }
  end

let random_walk hex ~stay =
  if stay < 0.0 || stay >= 1.0 then
    invalid_arg "Mobility.random_walk: stay must be in [0, 1)"
  else begin
    let n = Hex.cells hex in
    let rows =
      Array.init n (fun cell ->
          let row = Array.make n 0.0 in
          let ns = Hex.neighbors hex cell in
          (match ns with
           | [] ->
             (* Isolated cell (1×1 field): nowhere to leave to, so the
                leaving mass folds back and the cell is absorbing. *)
             row.(cell) <- 1.0
           | _ ->
             let share = (1.0 -. stay) /. float_of_int (List.length ns) in
             row.(cell) <- stay;
             List.iter (fun j -> row.(j) <- row.(j) +. share) ns);
          row)
    in
    create rows
  end

let drift_walk hex ~stay ~east_bias =
  if stay < 0.0 || stay >= 1.0 then
    invalid_arg "Mobility.drift_walk: stay must be in [0, 1)"
  else if east_bias < 1.0 then
    invalid_arg "Mobility.drift_walk: east_bias must be >= 1"
  else begin
    let n = Hex.cells hex in
    let rows =
      Array.init n (fun cell ->
          let row = Array.make n 0.0 in
          let _, col = Hex.coords hex cell in
          let ns = Hex.neighbors hex cell in
          (match ns with
           | [] -> row.(cell) <- 1.0
           | _ ->
             let weight j =
               let _, cj = Hex.coords hex j in
               if cj > col then east_bias else 1.0
             in
             let total = List.fold_left (fun acc j -> acc +. weight j) 0.0 ns in
             row.(cell) <- stay;
             List.iter
               (fun j ->
                 row.(j) <- row.(j) +. ((1.0 -. stay) *. weight j /. total))
               ns);
          row)
    in
    create rows
  end

let teleport base ~jump ~target =
  if jump < 0.0 || jump > 1.0 then
    invalid_arg "Mobility.teleport: jump must be in [0, 1]"
  else if Array.length target <> base.n then
    invalid_arg "Mobility.teleport: target dimension mismatch"
  else begin
    let target = Prob.Dist.normalize (Array.copy target) in
    let rows =
      Array.map
        (fun row ->
          Array.mapi
            (fun j x -> ((1.0 -. jump) *. x) +. (jump *. target.(j)))
            row)
        base.rows
    in
    create rows
  end

let step t rng ~cell =
  if cell < 0 || cell >= t.n then invalid_arg "Mobility.step: bad cell"
  else Prob.Dist.sample rng t.rows.(cell)

let stationary ?(iters = 10_000) ?(tol = 1e-12) t =
  let v = ref (Array.make t.n (1.0 /. float_of_int t.n)) in
  let continue = ref true in
  let k = ref 0 in
  while !continue && !k < iters do
    let next = Array.make t.n 0.0 in
    for i = 0 to t.n - 1 do
      let vi = !v.(i) in
      if vi > 0.0 then
        for j = 0 to t.n - 1 do
          next.(j) <- next.(j) +. (vi *. t.rows.(i).(j))
        done
    done;
    if Prob.Dist.total_variation !v next < tol then continue := false;
    v := next;
    incr k
  done;
  !v

let diffuse t dist ~steps =
  if steps < 0 then
    invalid_arg "Mobility.diffuse: steps must be >= 0"
  else if Array.length dist <> t.n then
    invalid_arg "Mobility.diffuse: dimension mismatch"
  else begin
    let v = ref (Array.copy dist) in
    for _ = 1 to steps do
      let next = Array.make t.n 0.0 in
      for i = 0 to t.n - 1 do
        let vi = !v.(i) in
        if vi > 0.0 then
          for j = 0 to t.n - 1 do
            next.(j) <- next.(j) +. (vi *. t.rows.(i).(j))
          done
      done;
      v := next
    done;
    !v
  end

(* ------------------------------------------------------------------ *)
(* Residence-time distributions (dwell laws)                           *)
(* ------------------------------------------------------------------ *)

type residence =
  | Exponential of { mean : float }
  | Pareto of { alpha : float; scale : float }
  | Zipf of { s : float; cutoff : int }

let validate_residence = function
  | Exponential { mean } ->
    if not (Float.is_finite mean && mean >= 1.0) then
      Error "exponential residence mean must be finite and >= 1 tick"
    else Ok ()
  | Pareto { alpha; scale } ->
    if not (Float.is_finite alpha && alpha > 0.0) then
      Error "pareto residence alpha must be finite and > 0"
    else if not (Float.is_finite scale && scale > 0.0) then
      Error "pareto residence scale must be finite and > 0"
    else Ok ()
  | Zipf { s; cutoff } ->
    if not (Float.is_finite s && s >= 0.0) then
      Error "zipf residence s must be finite and >= 0"
    else if cutoff < 1 then Error "zipf residence cutoff must be >= 1"
    else Ok ()

let check_residence r =
  match validate_residence r with
  | Ok () -> ()
  | Error e -> invalid_arg ("Mobility residence: " ^ e)

(* Survival S(a) = P(dwell > a ticks); dwell is at least one tick, so
   S(0) = 1 for every law. *)
let residence_survival r a =
  check_residence r;
  if a < 0 then invalid_arg "Mobility.residence_survival: age must be >= 0"
  else if a = 0 then 1.0
  else
    match r with
    | Exponential { mean } ->
      (* Geometric dwell with hazard 1/mean: the unique memoryless
         discrete law, i.e. the Markov-chain case. *)
      (1.0 -. (1.0 /. mean)) ** float_of_int a
    | Pareto { alpha; scale } ->
      (* Discrete Lomax tail: polynomial decay, heavy for small alpha. *)
      (1.0 +. (float_of_int a /. scale)) ** -.alpha
    | Zipf { s; cutoff } ->
      if a >= cutoff then 0.0
      else begin
        (* P(T = k) ∝ k^-s over 1..cutoff. *)
        let total = ref 0.0 and tail = ref 0.0 in
        for k = 1 to cutoff do
          let w = float_of_int k ** -.s in
          total := !total +. w;
          if k > a then tail := !tail +. w
        done;
        !tail /. !total
      end

(* Hazard h(a) = P(leave at age a | survived to a) = 1 - S(a+1)/S(a). *)
let residence_hazard r a =
  let sa = residence_survival r a in
  if sa <= 0.0 then 1.0
  else begin
    let h = 1.0 -. (residence_survival r (a + 1) /. sa) in
    Float.min 1.0 (Float.max 0.0 h)
  end

(* Mean dwell = Σ_{a≥0} S(a); diverges (→ infinity) for Pareto with
   alpha <= 1. The sum is truncated once the tail is negligible. *)
let residence_mean r =
  check_residence r;
  match r with
  | Exponential { mean } -> mean
  | Zipf { s; cutoff } ->
    let total = ref 0.0 and weighted = ref 0.0 in
    for k = 1 to cutoff do
      let w = float_of_int k ** -.s in
      total := !total +. w;
      weighted := !weighted +. (float_of_int k *. w)
    done;
    !weighted /. !total
  | Pareto { alpha; _ } ->
    if alpha <= 1.0 then infinity
    else begin
      let sum = ref 0.0 in
      let a = ref 0 in
      let continue = ref true in
      while !continue && !a < 10_000_000 do
        let s = residence_survival r !a in
        sum := !sum +. s;
        if s < 1e-12 then continue := false;
        incr a
      done;
      !sum
    end

(* Bisection on the scale parameter: residence_mean is continuous and
   strictly increasing in the scale, so a heavy-tailed law can be
   matched to an exponential one's mean for like-for-like variance
   comparisons. *)
let pareto_with_mean ~alpha ~mean =
  if not (Float.is_finite alpha && alpha > 1.0) then
    invalid_arg "Mobility.pareto_with_mean: alpha must be > 1 (finite mean)"
  else if not (Float.is_finite mean && mean >= 1.0) then
    invalid_arg "Mobility.pareto_with_mean: mean must be finite and >= 1"
  else begin
    let mean_at scale = residence_mean (Pareto { alpha; scale }) in
    let lo = ref 1e-6 and hi = ref 1.0 in
    while mean_at !hi < mean && !hi < 1e9 do
      hi := !hi *. 2.0
    done;
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if mean_at mid < mean then lo := mid else hi := mid
    done;
    Pareto { alpha; scale = 0.5 *. (!lo +. !hi) }
  end

let residence_to_string = function
  | Exponential { mean } -> Printf.sprintf "exp:%g" mean
  | Pareto { alpha; scale } -> Printf.sprintf "pareto:%g:%g" alpha scale
  | Zipf { s; cutoff } -> Printf.sprintf "zipf:%g:%d" s cutoff

let residence_of_string str =
  let fail () =
    Error
      "residence must be exp:<mean> | pareto:<alpha>:<scale> | \
       zipf:<s>:<cutoff>"
  in
  let checked r =
    match validate_residence r with Ok () -> Ok r | Error e -> Error e
  in
  match String.split_on_char ':' (String.lowercase_ascii (String.trim str)) with
  | [ ("exp" | "exponential"); mean ] ->
    (match float_of_string_opt mean with
     | Some mean -> checked (Exponential { mean })
     | None -> fail ())
  | [ "pareto"; alpha; scale ] ->
    (match float_of_string_opt alpha, float_of_string_opt scale with
     | Some alpha, Some scale -> checked (Pareto { alpha; scale })
     | _ -> fail ())
  | [ "zipf"; s; cutoff ] ->
    (match float_of_string_opt s, int_of_string_opt cutoff with
     | Some s, Some cutoff -> checked (Zipf { s; cutoff })
     | _ -> fail ())
  | _ -> fail ()

(* ------------------------------------------------------------------ *)
(* Dwell-age-expanded aging kernel                                     *)
(* ------------------------------------------------------------------ *)

type aging = {
  base : t;
  dwell_cap : int;
  (* hazard.(c).(a): per-cell leave probability at dwell age a; frozen
     at the cap (a geometric tail approximation beyond it). *)
  haz : float array array;
  (* jump.(c): (target, probability) list, the base matrix's row
     conditioned on leaving; empty iff the cell is absorbing. *)
  jump : (int * float) array array;
  laws : residence array;
}

let aging ?(dwell_cap = 32) base laws =
  if dwell_cap < 1 then invalid_arg "Mobility.aging: dwell_cap must be >= 1";
  if Array.length laws <> base.n then
    invalid_arg
      (Printf.sprintf
         "Mobility.aging: %d residence laws for a %d-cell model"
         (Array.length laws) base.n);
  Array.iter check_residence laws;
  let haz =
    Array.map
      (fun law -> Array.init dwell_cap (fun a -> residence_hazard law a))
      laws
  in
  let jump =
    Array.init base.n (fun c ->
        let row = base.rows.(c) in
        let out = 1.0 -. row.(c) in
        if out <= 0.0 then [||]
        else begin
          let targets = ref [] in
          for j = base.n - 1 downto 0 do
            if j <> c && row.(j) > 0.0 then
              targets := (j, row.(j) /. out) :: !targets
          done;
          Array.of_list !targets
        end)
  in
  { base; dwell_cap; haz; jump; laws }

let aging_uniform ?dwell_cap base law =
  aging ?dwell_cap base (Array.make base.n law)

let aging_base a = a.base
let aging_dwell_cap a = a.dwell_cap
let aging_law a ~cell =
  if cell < 0 || cell >= a.base.n then
    invalid_arg "Mobility.aging_law: bad cell"
  else a.laws.(cell)

let hazard_at a ~cell ~dwell =
  if cell < 0 || cell >= a.base.n then
    invalid_arg "Mobility.hazard_at: bad cell"
  else if dwell < 0 then invalid_arg "Mobility.hazard_at: dwell must be >= 0"
  else a.haz.(cell).(Stdlib.min dwell (a.dwell_cap - 1))

(* One ground-truth tick of the semi-Markov walk: leave with the
   dwell-age hazard (target drawn from the conditional jump row, dwell
   resetting to 0), else stay one tick older. Absorbing cells never
   leave. Every call draws exactly one uniform plus, on a jump, one
   categorical sample — the draw count does not depend on the law, so
   runs under different residence laws stay RNG-comparable. *)
let semi_step a rng ~cell ~dwell =
  let h = hazard_at a ~cell ~dwell in
  (* Both uniforms are drawn unconditionally: exactly two draws per
     tick whatever the law or outcome, so runs that differ only in
     residence law consume motion randomness in lockstep. *)
  let u = Prob.Rng.unit_float rng in
  let v = Prob.Rng.unit_float rng in
  if Array.length a.jump.(cell) = 0 || u >= h then
    (cell, Stdlib.min (dwell + 1) (a.dwell_cap - 1))
  else begin
    (* linear inversion on the conditional jump row *)
    let targets = a.jump.(cell) in
    let n = Array.length targets in
    let rec go i acc =
      if i >= n - 1 then fst targets.(n - 1)
      else begin
        let j, p = targets.(i) in
        let acc = acc +. p in
        if v < acc then j else go (i + 1) acc
      end
    in
    (go 0 0.0, 0)
  end

(* Transient evolution of a location belief under the semi-Markov law:
   the belief is placed at dwell age 0 (mass was just observed there),
   then pushed [steps] ticks through the (cell, dwell-age) chain and
   marginalized back onto cells. [steps = 0] returns a copy. *)
let age_dist a dist ~steps =
  if steps < 0 then invalid_arg "Mobility.age_dist: steps must be >= 0"
  else if Array.length dist <> a.base.n then
    invalid_arg "Mobility.age_dist: dimension mismatch"
  else if steps = 0 then Array.copy dist
  else begin
    let n = a.base.n and cap = a.dwell_cap in
    let b = Array.make_matrix n cap 0.0 in
    let nb = Array.make_matrix n cap 0.0 in
    Array.iteri (fun c mass -> b.(c).(0) <- mass) dist;
    let cur = ref b and nxt = ref nb in
    for _ = 1 to steps do
      let cur_m = !cur and nxt_m = !nxt in
      Array.iter (fun row -> Array.fill row 0 cap 0.0) nxt_m;
      for c = 0 to n - 1 do
        let targets = a.jump.(c) in
        let absorbing = Array.length targets = 0 in
        let hrow = a.haz.(c) in
        let brow = cur_m.(c) in
        for k = 0 to cap - 1 do
          let mass = brow.(k) in
          if mass > 0.0 then begin
            let k' = Stdlib.min (k + 1) (cap - 1) in
            if absorbing then nxt_m.(c).(k') <- nxt_m.(c).(k') +. mass
            else begin
              let h = hrow.(k) in
              let leave = mass *. h in
              nxt_m.(c).(k') <- nxt_m.(c).(k') +. (mass -. leave);
              if leave > 0.0 then
                Array.iter
                  (fun (j, p) -> nxt_m.(j).(0) <- nxt_m.(j).(0) +. (leave *. p))
                  targets
            end
          end
        done
      done;
      let tmp = !cur in
      cur := !nxt;
      nxt := tmp
    done;
    Array.map (fun row -> Array.fold_left ( +. ) 0.0 row) !cur
  end
