(** Binary min-heap keyed by float priority; backbone of the
    discrete-event engine. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push t ~priority payload] inserts in O(log n). *)
val push : 'a t -> priority:float -> 'a -> unit

(** [pop t] removes and returns the minimum-priority entry. *)
val pop : 'a t -> (float * 'a) option

(** [peek t] returns the minimum without removing it. *)
val peek : 'a t -> (float * 'a) option
