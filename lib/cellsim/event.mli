(** A minimal discrete-event engine over {!Heap}. *)

type 'a t

val create : unit -> 'a t
val now : 'a t -> float

(** [schedule t ~at event] enqueues an event; [at] must not precede the
    current time.
    @raise Invalid_argument when scheduling in the past. *)
val schedule : 'a t -> at:float -> 'a -> unit

(** [schedule_after t ~delay event]. *)
val schedule_after : 'a t -> delay:float -> 'a -> unit

(** [next t] advances the clock to the earliest event and returns it. *)
val next : 'a t -> (float * 'a) option

(** [run_until t ~stop handler] pops events in order, passing each to
    [handler], until the queue is empty or the clock passes [stop]. An
    event scheduled beyond [stop] is left in the queue. *)
val run_until : 'a t -> stop:float -> (float -> 'a -> unit) -> unit

val pending : 'a t -> int
