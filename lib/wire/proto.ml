type solve_req = {
  instance : string;
  solver : string option;
  chain : string option;
  budget_ms : float option;
  objective : string option;
  cache : bool;
  request_id : string option;
      (** Client-generated idempotency key: the server deduplicates
          in-flight and recently-completed ids, so a retried or hedged
          solve never executes twice. Distinct from the frame [id],
          which is fresh per attempt. *)
}

type request =
  | Solve of solve_req
  | Simulate of { scenario : string; seed : int; replicas : int }
  | Health
  | Metrics
  | Drain

type frame = { id : string; req : request }

(* ---------------- decoding ---------------- *)

let field_str json k =
  match Json.member k json with
  | None -> Ok None
  | Some v ->
    (match Json.to_str v with
     | Some s -> Ok (Some s)
     | None -> Error (Printf.sprintf "field %S must be a string" k))

let field_num json k =
  match Json.member k json with
  | None -> Ok None
  | Some v ->
    (match Json.to_num v with
     | Some x -> Ok (Some x)
     | None -> Error (Printf.sprintf "field %S must be a number" k))

let field_int json k =
  match Json.member k json with
  | None -> Ok None
  | Some v ->
    (match Json.to_int v with
     | Some x -> Ok (Some x)
     | None -> Error (Printf.sprintf "field %S must be an integer" k))

let field_bool json k =
  match Json.member k json with
  | None -> Ok None
  | Some v ->
    (match Json.to_bool v with
     | Some b -> Ok (Some b)
     | None -> Error (Printf.sprintf "field %S must be a boolean" k))

let ( let* ) = Result.bind

let decode_solve json =
  let* instance = field_str json "instance" in
  let* solver = field_str json "solver" in
  let* chain = field_str json "chain" in
  let* budget_ms = field_num json "budget_ms" in
  let* objective = field_str json "objective" in
  let* cache = field_bool json "cache" in
  let* request_id = field_str json "request_id" in
  let* instance =
    match instance with
    | Some s when s <> "" -> Ok s
    | Some _ | None -> Error "solve requires a non-empty \"instance\" field"
  in
  let* () =
    match budget_ms with
    | Some b when not (Float.is_finite b) || b <= 0.0 ->
      Error "\"budget_ms\" must be positive and finite"
    | Some _ | None -> Ok ()
  in
  let* () =
    match request_id with
    | Some "" -> Error "\"request_id\" must be non-empty"
    | Some r when String.length r > 256 ->
      Error "\"request_id\" longer than 256 bytes"
    | Some _ | None -> Ok ()
  in
  Ok
    (Solve
       {
         instance;
         solver;
         chain;
         budget_ms;
         objective;
         cache = Option.value cache ~default:true;
         request_id;
       })

let decode_simulate json =
  let* scenario = field_str json "scenario" in
  let* seed = field_int json "seed" in
  let* replicas = field_int json "replicas" in
  let* scenario =
    match scenario with
    | Some s when s <> "" -> Ok s
    | Some _ | None -> Error "simulate requires a \"scenario\" field"
  in
  let seed = Option.value seed ~default:1 in
  let replicas = Option.value replicas ~default:1 in
  let* () =
    if replicas < 1 || replicas > 64 then
      Error "\"replicas\" must be in [1, 64]"
    else Ok ()
  in
  Ok (Simulate { scenario; seed; replicas })

let decode line =
  match Json.parse line with
  | Error msg -> Error (None, "parse: " ^ msg)
  | Ok json ->
    let id =
      match Json.member "id" json with
      | Some (Json.Str s) -> Some s
      | Some (Json.Num x) -> Some (Json.to_string (Json.Num x))
      | _ -> None
    in
    let fail msg = Error (id, msg) in
    (match json with
     | Json.Obj _ ->
       (match id with
        | None -> fail "frame requires a string \"id\" field"
        | Some id ->
          if String.length id > 256 then
            fail "\"id\" longer than 256 bytes"
          else begin
            let finish = function
              | Ok req -> Ok { id; req }
              | Error msg -> fail msg
            in
            match Json.member "op" json with
            | Some (Json.Str "solve") -> finish (decode_solve json)
            | Some (Json.Str "simulate") -> finish (decode_simulate json)
            | Some (Json.Str "health") -> Ok { id; req = Health }
            | Some (Json.Str "metrics") -> Ok { id; req = Metrics }
            | Some (Json.Str "drain") -> Ok { id; req = Drain }
            | Some (Json.Str other) ->
              fail
                (Printf.sprintf
                   "unknown op %S (expected solve|simulate|health|metrics|drain)"
                   (if String.length other > 64 then String.sub other 0 64
                    else other))
            | Some _ -> fail "field \"op\" must be a string"
            | None -> fail "frame requires an \"op\" field"
          end)
     | _ -> fail "frame must be a JSON object")

(* ---------------- responses ---------------- *)

let frame ~id ~status fields =
  Json.to_string
    (Json.Obj (("id", Json.Str id) :: ("status", Json.Str status) :: fields))

let ok_frame ~id fields = frame ~id ~status:"ok" fields

let rejected_frame ~id ?retry_after_ms ~reason () =
  let fields =
    ("reason", Json.Str reason)
    ::
    (match retry_after_ms with
     | Some ms -> [ ("retry_after_ms", Json.Num (float_of_int ms)) ]
     | None -> [])
  in
  frame ~id ~status:"rejected" fields

let error_frame ~id msg =
  let fields = [ ("status", Json.Str "error"); ("error", Json.Str msg) ] in
  let fields =
    match id with
    | Some id -> ("id", Json.Str id) :: fields
    | None -> fields
  in
  Json.to_string (Json.Obj fields)

(* ---------------- response decoding (client side) ----------------

   Forward compatibility is a hard contract here: a newer daemon may
   add fields to any frame, and an older client must keep working.
   Decoding therefore only ever *looks up* the fields it knows — it
   never enumerates, and it never fails on a field it does not
   recognise. Unknown [status] values survive as-is; the caller decides
   how conservative to be about them. *)

type response = {
  rid : string option;  (** echoed frame id, when the server had one *)
  status : string;  (** ok | degraded | rejected | error | future values *)
  reason : string option;  (** rejected: overload | draining | ... *)
  retry_after_ms : int option;  (** server backoff hint, milliseconds *)
  error : string option;  (** error frames: human-readable cause *)
  cache_hit : bool;  (** answered from the server's result cache *)
  dedup_hit : bool;  (** answered from the idempotency dedup table *)
  json : Json.t;  (** the whole frame, for fields not modelled here *)
}

let decode_response line =
  match Json.parse line with
  | Error msg -> Error ("parse: " ^ msg)
  | Ok (Json.Obj _ as json) ->
    let str k = Option.bind (Json.member k json) Json.to_str in
    let rid =
      match Json.member "id" json with
      | Some (Json.Str s) -> Some s
      | Some (Json.Num x) -> Some (Json.to_string (Json.Num x))
      | _ -> None
    in
    (match str "status" with
     | None -> Error "response frame has no \"status\" field"
     | Some status ->
       Ok
         {
           rid;
           status;
           reason = str "reason";
           retry_after_ms =
             Option.bind (Json.member "retry_after_ms" json) Json.to_int;
           error = str "error";
           cache_hit = str "cache" = Some "hit";
           dedup_hit = str "dedup" = Some "hit";
           json;
         })
  | Ok _ -> Error "response frame must be a JSON object"
