type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printer ---------------- *)

(* Identical escaping and number formatting to the CLI's Json module:
   the differential tests compare daemon output against CLI output byte
   for byte. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_num x =
  if Float.is_finite x then Printf.sprintf "%.12g" x
  else Printf.sprintf "\"%s\"" (escape (Printf.sprintf "%h" x))

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> Buffer.add_string buf (fmt_num x)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf "\": ";
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---------------- parser ---------------- *)

exception Fail of string

let parse ?(max_depth = 64) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  (* UTF-8 encode one scalar value; lone surrogates become U+FFFD so the
     parser stays total on adversarial input. *)
  let add_scalar buf u =
    let u = if u >= 0xD800 && u <= 0xDFFF then 0xFFFD else u in
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "truncated escape"
         else
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
             advance ();
             let u = hex4 () in
             (* Combine a valid surrogate pair; anything else falls
                through [add_scalar]'s U+FFFD replacement. *)
             if
               u >= 0xD800 && u <= 0xDBFF
               && !pos + 2 <= n
               && s.[!pos] = '\\'
               && !pos + 1 < n
               && s.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 add_scalar buf
                   (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
               else begin
                 add_scalar buf u;
                 add_scalar buf lo
               end
             end
             else add_scalar buf u
           | _ -> fail "unknown escape");
        go ()
      | c ->
        (* Lenient: raw control bytes and non-UTF8 bytes pass through —
           totality over strictness at the network boundary. *)
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
       digits ()
     | _ -> ());
    let x = float_of_string (String.sub s start (!pos - start)) in
    if not (Float.is_finite x) then fail "number overflows a float";
    Num x
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          items := parse_value (depth + 1) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg
  (* Belt and braces: the parser is meant to be total by construction,
     but a bug here must surface as a parse error, not kill a
     connection loop. *)
  | exception e -> Error ("parser exception: " ^ Printexc.to_string e)

(* ---------------- accessors ---------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_num = function Num x -> Some x | _ -> None

let to_int = function
  | Num x when Float.is_integer x && Float.abs x <= 1e15 ->
    Some (int_of_float x)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
