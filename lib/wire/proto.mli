(** The serve wire protocol: JSONL frames over a stream socket.

    One request per line, one response line per request. Requests carry
    a client-chosen [id] echoed on the response, so clients may
    pipeline freely — responses complete (and are written) out of
    order under load.

    Request frames:
    {v
    {"id":"r1","op":"solve","instance":"2 4 2\n...","solver":"greedy"}
    {"id":"r2","op":"solve","instance":"...","budget_ms":50,
     "chain":"default","objective":"all","cache":true}
    {"id":"r3","op":"simulate","scenario":"suburb","seed":7,"replicas":2}
    {"id":"r4","op":"health"}   {"id":"r5","op":"metrics"}
    {"id":"r6","op":"drain"}
    v}

    Every response carries ["id"] and ["status"]: ["ok"], ["degraded"]
    (a valid but quality-reduced answer: the deadline fired and the
    anytime best-so-far came back, or overload downgraded the fallback
    chain), ["rejected"] (admission control refused — ["reason"] is
    ["overload"] or ["draining"]) or ["error"] (malformed frame,
    invalid instance — the connection itself stays up). *)

type solve_req = {
  instance : string;  (** {!Confcall.Instance.of_string} text format *)
  solver : string option;  (** solver spec; default greedy *)
  chain : string option;  (** fallback chain; triggers the runner path *)
  budget_ms : float option;
      (** per-request deadline, armed at {e admission} — queueing time
          counts against it *)
  objective : string option;  (** "all" | "any" | k; default all *)
  cache : bool;  (** consult/populate the result cache (default true) *)
  request_id : string option;
      (** Client-generated idempotency key: the server deduplicates
          in-flight and recently-completed ids, so a retried or hedged
          solve never executes twice. Distinct from the frame [id],
          which is fresh per attempt. *)
}

type request =
  | Solve of solve_req
  | Simulate of { scenario : string; seed : int; replicas : int }
  | Health
  | Metrics
  | Drain

type frame = { id : string; req : request }

(** [decode line] — total: any byte string yields a frame or a message
    for an ["error"] response. When the line parses far enough to carry
    an id, the error message is paired with it so the client can match
    the failure to its request. *)
val decode : string -> (frame, string option * string) result

(** {2 Response builders} — return one line, without the newline. *)

val error_frame : id:string option -> string -> string

(** [retry_after_ms]: backpressure hint — how long the client should
    wait before retrying (overload estimate, or the circuit breaker's
    remaining cooldown). *)
val rejected_frame :
  id:string -> ?retry_after_ms:int -> reason:string -> unit -> string

val ok_frame : id:string -> (string * Json.t) list -> string
(** [ok_frame ~id fields] — [{"id":.., "status":"ok", fields...}]. *)

val frame : id:string -> status:string -> (string * Json.t) list -> string

(** {2 Response decoding (client side)}

    Forward compatibility is a hard contract: a newer daemon may add
    fields to any frame and an older client must keep working, so
    decoding only ever looks up the fields it knows and never fails on
    one it does not recognise. *)

type response = {
  rid : string option;  (** echoed frame id, when the server had one *)
  status : string;  (** ok | degraded | rejected | error | future values *)
  reason : string option;  (** rejected: overload | draining | ... *)
  retry_after_ms : int option;  (** server backoff hint, milliseconds *)
  error : string option;  (** error frames: human-readable cause *)
  cache_hit : bool;  (** answered from the server's result cache *)
  dedup_hit : bool;  (** answered from the idempotency dedup table *)
  json : Json.t;  (** the whole frame, for fields not modelled here *)
}

(** [decode_response line] — requires a JSON object with a ["status"]
    field; everything else is optional and unknown fields are
    ignored. *)
val decode_response : string -> (response, string) result
