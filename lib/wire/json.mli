(** Minimal JSON for the serve wire protocol.

    Hand-rolled on purpose: frames are small objects of numbers,
    strings, booleans and nested arrays, and the container must not
    grow dependencies. The printer emits exactly the format the CLI's
    [--json] emitter uses ([", "]/[": "] separators, numbers as
    [%.12g]), so a daemon response and a CLI solve print strategies and
    expected paging {e byte-identically} — the differential tests lean
    on that.

    The parser is total: any byte string returns [Ok] or [Error],
    never an exception — it sits directly behind the network boundary
    and is fuzzed as such. It is lenient where strictness buys nothing
    (raw control bytes inside strings are accepted; lone surrogates
    decode to U+FFFD) and strict where the protocol cares (numbers must
    be finite, nesting is depth-capped). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** [parse ?max_depth s] parses one JSON value spanning the whole
    string (trailing whitespace allowed). Default depth cap: 64. *)
val parse : ?max_depth:int -> string -> (t, string) result

val to_string : t -> string

(** {2 Accessors} — shape-tolerant lookups for protocol fields. *)

val member : string -> t -> t option
(** [member k (Obj ...)]; [None] on other shapes or absent keys. *)

val to_str : t -> string option
val to_num : t -> float option
val to_int : t -> int option
(** Numbers without a fractional part only. *)

val to_bool : t -> bool option
