type distribution = {
  support : float array;
  probabilities : float array;
  mean : float;
  variance : float;
  stddev : float;
}

let make_distribution support probabilities =
  let mean = ref 0.0 and second = ref 0.0 in
  Array.iteri
    (fun i p ->
      mean := !mean +. (p *. support.(i));
      second := !second +. (p *. support.(i) *. support.(i)))
    probabilities;
  let variance = Stdlib.max 0.0 (!second -. (!mean *. !mean)) in
  { support; probabilities; mean = !mean; variance; stddev = sqrt variance }

let stop_probabilities ?objective inst strategy =
  let f = Strategy.success_by_round ?objective inst strategy in
  let rounds = Array.length f in
  (* P[stop at round r] = F_r - F_{r-1}; the last round absorbs any
     remaining mass (the search always ends there, found or not). *)
  Array.init rounds (fun r ->
      if r = rounds - 1 then 1.0 -. (if r = 0 then 0.0 else f.(r - 1))
      else if r = 0 then f.(0)
      else f.(r) -. f.(r - 1))

let cost_distribution ?objective inst strategy =
  (match Strategy.validate ~c:inst.Instance.c strategy with
   | Ok () -> ()
   | Error reason -> invalid_arg ("Analysis.cost_distribution: " ^ reason));
  let sizes = Strategy.sizes strategy in
  let cumulative = Array.make (Array.length sizes) 0.0 in
  let acc = ref 0 in
  Array.iteri
    (fun r s ->
      acc := !acc + s;
      cumulative.(r) <- float_of_int !acc)
    sizes;
  make_distribution cumulative (stop_probabilities ?objective inst strategy)

let rounds_distribution ?objective inst strategy =
  (match Strategy.validate ~c:inst.Instance.c strategy with
   | Ok () -> ()
   | Error reason -> invalid_arg ("Analysis.rounds_distribution: " ^ reason));
  let rounds = Strategy.length strategy in
  let support = Array.init rounds (fun r -> float_of_int (r + 1)) in
  make_distribution support (stop_probabilities ?objective inst strategy)

let quantile dist q =
  if q < 0.0 || q > 1.0 then invalid_arg "Analysis.quantile: q out of range"
  else begin
    let n = Array.length dist.support in
    let rec go i acc =
      if i >= n - 1 then dist.support.(n - 1)
      else begin
        let acc = acc +. dist.probabilities.(i) in
        if acc >= q -. 1e-12 then dist.support.(i) else go (i + 1) acc
      end
    in
    go 0 0.0
  end

let delay_paging_frontier ?objective inst ~max_d =
  if max_d < 1 || max_d > inst.Instance.c then
    invalid_arg "Analysis.delay_paging_frontier: bad max_d"
  else
    Array.init max_d (fun i ->
        let d = i + 1 in
        let sub = Instance.with_d inst d in
        let r = Greedy.solve ?objective sub in
        let rounds = Strategy.expected_rounds ?objective sub r.Order_dp.strategy in
        rounds, r.Order_dp.expected_paging)

let pp_distribution ppf dist =
  Format.fprintf ppf "@[<v>mean %.4f sd %.4f@," dist.mean dist.stddev;
  Array.iteri
    (fun i p ->
      Format.fprintf ppf "P[cost = %.0f] = %.4f@," dist.support.(i) p)
    dist.probabilities;
  Format.fprintf ppf "@]"
