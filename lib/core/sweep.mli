(** Sharded parameter sweeps: many independent work items, one
    crash-safe {!Journal}, optionally fanned out across a domain pool —
    with the merged journal {e byte-identical} to the one the
    sequential sweep writes.

    The sequential contract (one {!Journal.run} per item, in item
    order) is the baseline everything else must reproduce. The sharded
    run gets there by construction:

    + items already journalled are excluded up front, exactly as
      {!Journal.run} would skip them;
    + the remaining items are split into {e contiguous} blocks, one per
      domain, preserving item order inside each block;
    + each domain appends its results to its own shard journal
      ([<path>.shard<k>]) — flushed per line, so a crash loses at most
      one item per domain;
    + after all domains finish, shards are merged into the main journal
      {e in shard order} — block 0's entries, then block 1's, … — which
      concatenates the contiguous blocks back into the original item
      order. The merged file is therefore the same byte sequence the
      sequential sweep appends, and a later [--resume] cannot tell the
      difference;
    + shard files are deleted only after the merge completes. If the
      process dies before that, the next run finds them, reloads their
      entries as a payload cache ({!Journal.read_back}), and re-emits
      the cached items without recomputing — crash recovery composes
      with sharding.

    Items must be independent (no item may depend on another's output)
    and their ids deterministic, as for {!Journal} generally. The
    callback of each item runs on an arbitrary domain. *)

(** One work item: a stable journal id and the computation producing
    its payload (validated as in {!Journal.record}). *)
type item = { id : string; compute : unit -> string }

(** How an item's payload in {!outcome} came to be:
    [`Ran] — computed by this run;
    [`Replayed] — already in the main journal from an earlier run;
    [`Recovered] — found in a leftover shard journal of a crashed run
    (computed there, merged here). The sequential path never produces
    [`Recovered]. *)
type status = [ `Ran | `Replayed | `Recovered ]

type outcome = { id : string; payload : string; status : status }

(** [run ?pool ~journal items] completes every item, journalling each
    exactly once, and returns the outcomes in item order. Without
    [?pool] (or with a one-domain pool) this is precisely the
    historical sequential loop — no shard files are created or looked
    for. Duplicate ids among [items] resolve as with {!Journal.run}:
    the first occurrence computes, later ones replay its payload.
    @raise Invalid_argument on invalid ids/payloads, as
    {!Journal.record}. *)
val run :
  ?pool:Exec.Pool.t -> journal:Journal.t -> item list -> outcome list

(** The shard-journal path for shard [k] of a main journal at [path] —
    exposed for tests that stage or inspect crash leftovers. *)
val shard_path : string -> int -> string
