(** Allocation-free solver hot path on flat unboxed float arrays.

    An arena pre-sizes every scratch buffer the Fig. 1 order DP, the
    coarse metro-scale DP and the local search need, and reuses them
    across solves: after a [prepare_*] call the [run_*] entry points
    allocate zero minor-heap words ([Gc.minor_words] delta = 0), which
    the GC-regression tests and bench e30 gate. All float state lives in
    [floatarray]s and scalar results travel through arena slots because
    ocamlopt boxes floats that cross non-inlined function boundaries.

    Every computation is an op-for-op mirror of the legacy list path
    ([Order_dp], [Strategy], [Local_search]), so results are
    bit-identical; the legacy implementations stay alive as the
    differential oracle (test_flat). DESIGN §13 documents the arena
    layout, the prefix-product invariants and the delta-EP correctness
    argument. *)

type t

(** [create ()] is an empty arena; buffers grow on first [prepare_*]. *)
val create : unit -> t

(** [domain_arena ()] is this domain's private arena (domain-local
    storage): safe under the Runner's raced mode, serve lanes and sweep
    shards, where each domain reuses its own scratch. *)
val domain_arena : unit -> t

(** [prepare ?objective a inst] binds the arena to [inst] (rejecting
    [m = 0] / [c = 0] with a named error), computes the non-increasing
    cell-weight order of §4.2.2 and the full prefix success table — the
    O(m·c) part, cached while the same instance, objective and order
    stay bound (physical equality on the instance). *)
val prepare : ?objective:Objective.t -> t -> Instance.t -> unit

(** [prepare_order a inst ~order] is {!prepare} for a caller-supplied
    cell order (the §5 "any predefined sequence" remark). Raises the
    same [Invalid_argument] errors as [Order_dp.solve] on a bad order. *)
val prepare_order :
  ?objective:Objective.t -> t -> Instance.t -> order:int array -> unit

(** [prepare_coarse ?block a inst] prepares the weight order plus the
    block-boundary success table for {!run_coarse} (default block 16).
    The boundary entries are bit-identical to the corresponding full
    table entries: skipped success evaluations never touch the
    per-device compensated mass chains. *)
val prepare_coarse :
  ?objective:Objective.t -> ?block:int -> t -> Instance.t -> unit

(** {1 Allocation-free cores}

    Each requires the matching [prepare_*]; results are read back with
    the accessors below. Zero minor-heap words per call. *)

(** The Fig. 1 DP over the prepared order; [max_group] is the §5
    bandwidth bound. Mirrors [Order_dp.solve] bit for bit. *)
val run_order_dp : ?cancel:Cancel.t -> ?max_group:int -> t -> unit

(** The §4.2.2 greedy heuristic: the DP over the weight order. Requires
    {!prepare} (not {!prepare_order}). *)
val run_greedy : ?cancel:Cancel.t -> t -> unit

(** The coarse DP over block boundaries, mirror of
    [Order_dp.solve_coarse]; requires {!prepare_coarse}. Per-solve cost
    is O(d·(c/block)²) — the metro-scale path. *)
val run_coarse : ?cancel:Cancel.t -> t -> unit

(** The one-round page-everything strategy; EP = c exactly. *)
val run_page_all : t -> unit

(** Steepest-descent hill climb seeded from the greedy cut — an
    op-for-op mirror of [Local_search.hill_climb] including its
    apply/evaluate/revert float drift, hence bit-identical. *)
val run_hill_climb : ?cancel:Cancel.t -> t -> unit

(** The delta-screened climb: candidates are scored via the incremental
    EP delta in O(affected rounds · m) each instead of a full
    re-evaluation; the accepted move is committed and resynced. Same
    move set and gain threshold as {!run_hill_climb}; scores agree only
    to rounding, so the climbed strategy may differ in ulp-tie cases —
    use {!run_hill_climb} where bit-identity with legacy matters. *)
val run_hill_climb_fast : ?cancel:Cancel.t -> t -> unit

(** {1 Result accessors} *)

(** Expected paging of the last [run_*]. *)
val ep : t -> float

(** Number of groups of the last [run_*]. *)
val rounds : t -> int

(** Size of group [r] (cells, also on the coarse path). *)
val size_at : t -> int -> int

(** Move evaluations of the last hill climb. *)
val iterations : t -> int

(** Copy of the currently prepared cell order. *)
val current_order : t -> int array

(** {1 Allocating conveniences}

    One-call wrappers: prepare, run, and box the result in the legacy
    record types (strategies are rebuilt exactly as the legacy solvers
    build them, preserving bit-identity end to end). *)

val greedy :
  ?objective:Objective.t -> ?cancel:Cancel.t -> t -> Instance.t ->
  Order_dp.result

val order_dp :
  ?objective:Objective.t -> ?max_group:int -> ?cancel:Cancel.t ->
  t -> Instance.t -> order:int array -> Order_dp.result

val bandwidth :
  ?objective:Objective.t -> ?cancel:Cancel.t -> t -> Instance.t -> b:int ->
  Order_dp.result

val coarse :
  ?objective:Objective.t -> ?block:int -> ?cancel:Cancel.t ->
  t -> Instance.t -> Order_dp.result

val hill_climb :
  ?objective:Objective.t -> ?cancel:Cancel.t -> t -> Instance.t ->
  Local_search.result

val hill_climb_fast :
  ?objective:Objective.t -> ?cancel:Cancel.t -> t -> Instance.t ->
  Local_search.result

(** {1 Incremental EP internals}

    Exposed for the delta-vs-full property tests: load an arbitrary
    strategy, predict or apply moves through the incremental delta, and
    compare {!Ls.ep} (maintained) against {!Ls.ep_full} (full mirror
    re-evaluation). *)
module Ls : sig
  (** Load a strategy as LS state and build the prefix/success
      invariants. Validates like [Local_search.state_of_strategy]. *)
  val load : ?objective:Objective.t -> t -> Instance.t -> Strategy.t -> unit

  (** Rebuild the invariants from the masses (full resync). *)
  val sync : t -> unit

  (** The incrementally maintained EP. *)
  val ep : t -> float

  (** Full re-evaluation (mirror of [Local_search.ep]); does not touch
      the maintained value. *)
  val ep_full : t -> float

  val rounds : t -> int
  val round_of : t -> int -> int
  val count : t -> int -> int

  (** Predicted EP after the move, via the delta; state unchanged. *)
  val predict_relocate : t -> cell:int -> target:int -> float

  val predict_swap : t -> p:int -> q:int -> float

  (** Commit the move, updating masses, prefixes, per-round successes
      and the maintained EP incrementally (no resync). *)
  val apply_relocate : t -> cell:int -> target:int -> unit

  val apply_swap : t -> p:int -> q:int -> unit
end
