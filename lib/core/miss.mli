(** Imperfect detection (§5): paging a cell containing a device finds it
    only with some probability (response-collision model), so cells may
    need re-paging. This is the classical Search Theory setting [Stone
    1975] that §5 and the Awduche et al. reference point to.

    For a single device with unit look cost the optimal search is the
    greedy index rule: the k-th look at cell j detects the device with
    unconditional probability p(j)·q(j)·(1−q(j))^(k−1), these marginals
    are order-independent, and E[looks] = Σ_t (1 − D_t) is minimized by
    scheduling looks in non-increasing marginal order. For conferences
    (m ≥ 2) we evaluate round-based re-paging schedules by Monte Carlo. *)

(** [optimal_look_sequence ~horizon p q] is the first [horizon] looks of
    the greedy index rule; entry [t] is the cell looked at at time [t].
    @raise Invalid_argument on mismatched arrays or q ∉ (0, 1]. *)
val optimal_look_sequence :
  horizon:int -> float array -> float array -> int array

(** [detection_curve p q looks] gives D_t = P[device found within the
    first t looks] for t = 0 … length of [looks]. *)
val detection_curve : float array -> float array -> int array -> float array

(** [expected_looks ~horizon p q] is
    (Σ_{t<horizon} (1 − D_t), D_horizon): the expected number of looks
    spent within the horizon and the success probability. *)
val expected_looks : horizon:int -> float array -> float array -> float * float

(** Round-based schedules for m ≥ 1 devices: a sequence of cell sets,
    repetitions allowed. *)
type schedule = int array array

(** [repeat_strategy strategy ~cycles] repeats a perfect-detection
    strategy's rounds [cycles] times — the natural re-paging heuristic. *)
val repeat_strategy : Strategy.t -> cycles:int -> schedule

(** [page_round rng ~q ~in_group ~positions ~found] performs one round of
    imperfect detection: every not-yet-found device [i] whose position
    satisfies [in_group positions.(i)] answers with probability [q]
    (marking [found.(i)]); returns the number newly found. One [rng] draw
    per candidate device, in index order. This is the round-level
    detection sample shared by {!simulate} and the end-to-end simulator's
    fault layer.
    @raise Invalid_argument when [q] is outside (0, 1]. *)
val page_round :
  Prob.Rng.t ->
  q:float ->
  in_group:(int -> bool) ->
  positions:int array ->
  found:bool array ->
  int

(** [simulate ?objective inst ~q ~schedule rng ~trials] runs the
    schedule under per-page detection probability [q]; returns
    (cost summary over all trials, success ratio). Trials that exhaust
    the schedule contribute their full cost. *)
val simulate :
  ?objective:Objective.t ->
  Instance.t ->
  q:float ->
  schedule:schedule ->
  Prob.Rng.t ->
  trials:int ->
  Prob.Stats.summary * float

(** [single_device_exact inst ~q ~schedule] — exact expected cells paged
    and success probability for m = 1 (no sampling), by tracking the
    per-cell posterior mass left undetected.
    @raise Invalid_argument when [inst.m <> 1]. *)
val single_device_exact :
  Instance.t -> q:float -> schedule:schedule -> float * float
