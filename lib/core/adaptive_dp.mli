(** Exact optimal {e adaptive} strategies within a fixed cell order.

    §5 leaves the analysis of adaptive strategies open. For strategies
    that page cells in a fixed order (e.g. the §4 weight order) and only
    adapt the {e cut points} based on which devices have been found, the
    optimum is computable exactly: the observable state is (cells paged
    so far, set of still-missing devices, rounds left), giving a dynamic
    program over c·2^m·d states with O(c·2^m) transitions each.

    This gives a certified reference point between the oblivious optimum
    and the unrestricted adaptive optimum, and an exact evaluator for
    the E6 experiment. *)

type result = {
  expected_paging : float;
  policy : Adaptive.policy;  (** realizes the optimum; feed to {!Adaptive} *)
}

(** [solve ?objective ?cancel ?order inst] — optimal adaptive-within-order
    expected paging. [order] defaults to the weight order. [cancel] is
    polled on every memoization miss (the exponential part of the work).
    @raise Invalid_argument when the estimated DP work [c²·4^m·d]
    exceeds 5·10⁸, or [order] is not a permutation.
    @raise Cancel.Cancelled when the token fires mid-DP. *)
val solve :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  ?order:int array ->
  Instance.t ->
  result

(** [value ?objective ?cancel ?order inst] — just the optimal
    expectation. *)
val value :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  ?order:int array ->
  Instance.t ->
  float

(** [unrestricted ?objective inst] — the true optimal adaptive strategy,
    with {e no} order restriction: each round may page {e any} subset of
    the remaining cells, chosen from the full observable state. The DP
    ranges over (remaining-cell set, missing-device set, rounds left)
    with sub-subset enumeration, so it is 3^c-flavoured — tiny instances
    only (the guard allows roughly c ≤ 12 for m = 2). This is the
    strongest solver in the repository and the reference point for
    quantifying both the order restriction and obliviousness.
    @raise Invalid_argument when the state space is too large.
    @raise Cancel.Cancelled when the token fires mid-DP. *)
val unrestricted :
  ?objective:Objective.t -> ?cancel:Cancel.t -> Instance.t -> float
