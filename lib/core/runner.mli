(** Deadline-budgeted anytime solver runtime.

    The exact methods are exponential (Theorem 3.8 makes that
    unavoidable) and the §4 heuristic is the only always-fast path, yet
    a paging controller serving live calls must return the best strategy
    it can find {e within a time budget}, every time. The runner wraps
    {!Solver.solve} with:

    - a budget on the wall clock ({!Cancel.now}: monotonized wall time),
      enforced through the cooperative cancellation tokens threaded into
      every solver hot loop;
    - a declarative {e fallback chain} — an ordered list of
      {!Solver.spec}s, tried best-first; a stage that times out or does
      not apply falls through to the next, and the report records why;
    - a structured error taxonomy replacing the stringly
      [Invalid_argument] escapes of the raw solvers at this boundary.

    Guarantees, for any valid instance and any budget:
    + {!run} terminates within budget plus a small grace window (the
      terminal [Page_all] stage is O(m·c) and runs unconditionally);
    + the winner is a valid strategy for the instance ({!Strategy}
      partition invariants);
    + winner EP ≤ the [Page_all] baseline EP = c (Lemma 2.1 gives
      EP ≤ c for every strategy, and [Page_all] always completes). *)

(** Why a stage (or a whole run) failed. *)
type error =
  | Timeout  (** budget fired mid-search, or stage skipped: budget gone *)
  | Inapplicable of string
      (** the method does not apply to this instance (e.g. B&B with
          d ≠ 2, guarded exact search on a huge instance) *)
  | Invalid_input of string  (** the instance/objective failed validation *)
  | Internal of string  (** unexpected exception — a bug, not user error *)

type stage_status =
  | Completed  (** ran to its normal end within budget *)
  | Degraded
      (** anytime stage: the deadline fired mid-search and it returned
          its best-so-far result (still a valid strategy) *)
  | Failed of error

type stage_report = {
  spec : Solver.spec;
  status : stage_status;
  elapsed_ms : float;
  expected_paging : float option;  (** when the stage produced a result *)
  robust_ep : float option;
      (** worst-case EP of the stage's strategy over the uncertainty
          ball — set only in uncertainty-aware runs *)
  raced : bool;
      (** the stage ran concurrently with the rest of the chain on a
          domain pool ([?pool] with more than one domain) *)
}

(** Winner quality against the certified machinery: the Lemma 3.1/3.4
    lower bound and the e/(e−1) guarantee of Theorem 4.8 (proved for the
    greedy heuristic under [Find_all]; reported as the reference line for
    every winner). *)
type quality = {
  expected_paging : float;
  lower_bound : float;
  ratio_to_lower_bound : float;
  guarantee : float;  (** e/(e−1) ≈ 1.582 *)
  within_guarantee : bool;  (** ratio ≤ e/(e−1) + 1e-9 *)
}

(** Certification attached to the winner of an uncertainty-aware run. *)
type robust_report = {
  uncertainty : Uncertainty.t;
  winner_robust_ep : float;  (** exact worst-case EP over the ball *)
  winner_bounds : Uncertainty.bounds;  (** interval-certified EP range *)
}

type run_report = {
  chain : Solver.spec list;  (** as actually executed (baseline appended) *)
  objective : Objective.t;
  budget_ms : float option;
  winner : (Solver.spec * Solver.outcome) option;
  stages : stage_report list;
      (** in execution order; the winner is the last stage in normal
          runs, and the stage with the least [robust_ep] in
          uncertainty-aware runs *)
  total_ms : float;
  quality : quality option;
  robust : robust_report option;  (** set iff run with [?uncertainty] *)
  failure : error option;  (** set iff [winner = None] *)
}

(** [Best_exact → Branch_and_bound → Local_search → Greedy → Page_all]. *)
val default_chain : Solver.spec list

(** Chains by name ("default", "fast", "heuristic", "exact") or as
    comma-separated solver specs ("bnb,local-search,page-all"); specs as
    in {!Solver.spec_of_string}. *)
val chain_of_string : string -> (Solver.spec list, string) result

val chain_to_string : Solver.spec list -> string

(** [run ?objective ?budget_ms ?grace_ms ?clock ?ensure_baseline ?chain
    inst] executes the chain best-first and returns the full report.

    Budget semantics: all stages share one deadline, [budget_ms] from
    the start of the run. A stage started before the deadline runs with
    a cancellation token on it; once the deadline has passed, remaining
    expensive stages are skipped (recorded as [Failed Timeout]) and only
    the always-fast ones ([Greedy], [Page_all], [Within_order],
    [Bandwidth_limited]) still run, under a [grace_ms] token (default
    100 ms). Without a budget no token is armed and the exact methods
    keep their size guards; with a budget the guards are lifted — the
    deadline, not the guard, bounds the work.

    [ensure_baseline] (default true) appends [Page_all] when absent so
    the chain cannot end empty-handed. [clock] (default {!Cancel.now})
    is exposed for tests. Never raises: all solver escapes are folded
    into the taxonomy above.

    With [?uncertainty], the run switches from first-success to
    {e re-ranking}: every stage still within budget runs, each
    completed stage's strategy is scored by its worst-case EP over the
    ball ({!Uncertainty.robust_ep}, recorded in
    [stage_report.robust_ep]), and the winner is the stage with the
    least worst-case EP (ties to the earlier chain entry). The report's
    [robust] field carries the winner's certification. Budget semantics
    are unchanged — overdue expensive stages are still skipped, so the
    run degrades to re-ranking whatever candidates fit the budget.

    With [?pool] of more than one domain, the chain's stages {e race}:
    all of them start concurrently on the pool, and in first-success
    mode the winner is the minimum-chain-index success — the same stage
    the sequential loop chooses, since a success at index i makes every
    later stage a definitive loser regardless of what the earlier ones
    do. Losers are cancelled through their [Cancel] tokens the moment a
    better-or-equal stage completes, and unwind within one poll
    interval (anytime stages return best-so-far as [Degraded]). In
    re-ranking mode all stages run to their own end — every candidate's
    score is needed. Stage reports carry [raced = true]; the report is
    otherwise unchanged in shape, and with the default (or any
    one-domain) pool the sequential code path runs bit-identically.
    Wall-clock under a budget is still bounded by budget + grace: every
    raced token also watches the shared deadline. [clock], when
    overridden together with [?pool], is called from several domains
    and must be thread-safe (the default {!Cancel.now} is).

    [?arena] routes every stage with a flat mirror through the
    allocation-free {!Flat} hot path (see {!Solver.solve}); raced
    stages substitute their own domain's arena ({!Flat.domain_arena}),
    so the supplied arena is only touched from the calling domain.
    Results stay bit-identical either way. *)
val run :
  ?objective:Objective.t ->
  ?budget_ms:float ->
  ?grace_ms:float ->
  ?clock:(unit -> float) ->
  ?ensure_baseline:bool ->
  ?chain:Solver.spec list ->
  ?uncertainty:Uncertainty.t ->
  ?pool:Exec.Pool.t ->
  ?arena:Flat.t ->
  Instance.t ->
  run_report

(** [solve ...] is {!run} reduced to its outcome: the winning strategy,
    or the run's failure. *)
val solve :
  ?objective:Objective.t ->
  ?budget_ms:float ->
  ?grace_ms:float ->
  ?clock:(unit -> float) ->
  ?chain:Solver.spec list ->
  ?uncertainty:Uncertainty.t ->
  ?pool:Exec.Pool.t ->
  ?arena:Flat.t ->
  Instance.t ->
  (Solver.outcome, error) result

val error_to_string : error -> string
val stage_status_to_string : stage_status -> string

(** One line per stage plus winner and quality; for the CLI and logs. *)
val pp_report : Format.formatter -> run_report -> unit
