exception Cancelled

type t = {
  probe : unit -> bool;
  every : int;
  mutable countdown : int;
  mutable fired : bool;
}

(* Atomic, not a plain ref: tokens now tick on several domains at once
   (raced runner stages), and the monotone high-water mark must not be
   torn or rolled back by a concurrent writer. *)
let last_now = Atomic.make 0.0

let now () =
  let t = Unix.gettimeofday () in
  let rec bump () =
    let seen = Atomic.get last_now in
    if t <= seen then seen
    else if Atomic.compare_and_set last_now seen t then t
    else bump ()
  in
  bump ()

let never = { probe = (fun () -> false); every = max_int; countdown = max_int; fired = false }

let of_probe ?(every = 256) probe =
  if every < 1 then invalid_arg "Cancel.of_probe: every must be >= 1"
  else { probe; every; countdown = every; fired = false }

let deadline ?every ?(clock = now) t = of_probe ?every (fun () -> clock () >= t)

let budget_ms ?every ?(clock = now) ms =
  deadline ?every ~clock (clock () +. (ms /. 1000.0))

let poll t =
  if t.fired then true
  else begin
    t.countdown <- t.countdown - 1;
    if t.countdown <= 0 then begin
      t.countdown <- t.every;
      if t.probe () then t.fired <- true
    end;
    t.fired
  end

let check t = if poll t then raise Cancelled
let cancelled t = t.fired
