module I = Numeric.Interval

type t = {
  eps : float;
  row_eps : float array option;
  tv : float;
}

let check_eps ~what e =
  if Float.is_nan e || e < 0.0 || e > 1.0 then
    invalid_arg
      (Printf.sprintf "Uncertainty: %s must be in [0, 1], got %g" what e)

let check_tv tv =
  if Float.is_nan tv || tv < 0.0 then
    invalid_arg (Printf.sprintf "Uncertainty: tv must be >= 0, got %g" tv)

let uniform ?(tv = infinity) eps =
  check_eps ~what:"eps" eps;
  check_tv tv;
  { eps; row_eps = None; tv }

let per_row ?(tv = infinity) eps =
  if Array.length eps = 0 then invalid_arg "Uncertainty.per_row: empty array";
  Array.iteri
    (fun i e -> check_eps ~what:(Printf.sprintf "row_eps.(%d)" i) e)
    eps;
  check_tv tv;
  { eps = 0.0; row_eps = Some (Array.copy eps); tv }

let eps_for t i = match t.row_eps with Some a -> a.(i) | None -> t.eps

let inflate t ~by =
  if Array.length by = 0 then invalid_arg "Uncertainty.inflate: empty array";
  Array.iteri
    (fun i g ->
      if Float.is_nan g || g < 0.0 then
        invalid_arg
          (Printf.sprintf
             "Uncertainty.inflate: by.(%d) must be >= 0, got %g" i g))
    by;
  (match t.row_eps with
   | Some a when Array.length a <> Array.length by ->
     invalid_arg
       (Printf.sprintf "Uncertainty.inflate: %d growths for %d rows"
          (Array.length by) (Array.length a))
   | _ -> ());
  let row_eps =
    Array.mapi (fun i g -> Float.min 1.0 (eps_for t i +. g)) by
  in
  { eps = 0.0; row_eps = Some row_eps; tv = t.tv }

let validate t ~m =
  match t.row_eps with
  | Some a when Array.length a <> m ->
    Error
      (Printf.sprintf "row_eps has %d entries for %d devices"
         (Array.length a) m)
  | _ -> Ok ()

type bounds = { lo : float; hi : float }

(* group_of.(j) = index of the round that pages cell j *)
let group_of inst strat =
  let g = Array.make inst.Instance.c (-1) in
  Array.iteri
    (fun r cells -> Array.iter (fun j -> g.(j) <- r) cells)
    (Strategy.groups strat);
  g

let check ?(objective = Objective.Find_all) u inst strat =
  (match validate u ~m:inst.Instance.m with
   | Ok () -> ()
   | Error e -> invalid_arg ("Uncertainty: " ^ e));
  (match Strategy.validate ~c:inst.Instance.c strat with
   | Ok () -> ()
   | Error e -> invalid_arg ("Uncertainty: " ^ e));
  if Strategy.length strat > inst.Instance.d then
    invalid_arg
      (Printf.sprintf "Uncertainty: strategy has %d rounds, delay allows %d"
         (Strategy.length strat) inst.Instance.d);
  match Objective.validate objective ~m:inst.Instance.m with
  | Ok () -> ()
  | Error e -> invalid_arg ("Uncertainty: " ^ e)

(* min of two intervals: the min of reals drawn from each *)
let imin a b =
  I.make (Float.min (I.lo a) (I.lo b)) (Float.min (I.hi a) (I.hi b))

let imin3 a b c = imin a (imin b c)

(* Per-device, per-round mass intervals under the perturbation ball:
   [m(i,r) − δ⁻(i,r), m(i,r) + δ⁺(i,r)] with
     δ⁻(i,r) = min(Σ_{j∈prefix} min(ε,p_j), Σ_{j∉prefix} min(ε,1−p_j), tv)
     δ⁺(i,r) = min(Σ_{j∉prefix} min(ε,p_j), Σ_{j∈prefix} min(ε,1−p_j), tv)
   — all sums interval-evaluated so the enclosure also absorbs float
   round-off. Returns rounds × devices. *)
let mass_intervals u inst strat =
  let m = inst.Instance.m and t_len = Strategy.length strat in
  let g = group_of inst strat in
  let tv_i = I.exact u.tv in
  let out = Array.make_matrix t_len m I.zero in
  for i = 0 to m - 1 do
    let p = inst.Instance.p.(i) in
    let eps = eps_for u i in
    (* per-round bucket sums of: row mass, give capacity min(ε,p),
       absorb capacity min(ε,1−p) *)
    let mass_b = Array.make t_len I.zero in
    let give_b = Array.make t_len I.zero in
    let abs_b = Array.make t_len I.zero in
    Array.iteri
      (fun j pj ->
         let r = g.(j) in
         mass_b.(r) <- I.add mass_b.(r) (I.exact pj);
         give_b.(r) <- I.add give_b.(r) (I.exact (Float.min eps pj));
         abs_b.(r) <- I.add abs_b.(r) (I.exact (Float.min eps (1.0 -. pj))))
      p;
    (* prefix/suffix accumulation across rounds *)
    let total_give = I.sum give_b and total_abs = I.sum abs_b in
    let pre_mass = ref I.zero and pre_give = ref I.zero and pre_abs = ref I.zero in
    for r = 0 to t_len - 1 do
      pre_mass := I.add !pre_mass mass_b.(r);
      pre_give := I.add !pre_give give_b.(r);
      pre_abs := I.add !pre_abs abs_b.(r);
      let suf_give = I.sub total_give !pre_give
      and suf_abs = I.sub total_abs !pre_abs in
      let d_minus = imin3 !pre_give suf_abs tv_i in
      let d_plus = imin3 suf_give !pre_abs tv_i in
      let lo = Float.max 0.0 (I.lo (I.sub !pre_mass d_minus))
      and hi = Float.min 1.0 (I.hi (I.add !pre_mass d_plus)) in
      out.(r).(i) <- I.make lo hi
    done
  done;
  out

let clamp01 = I.clamp ~lo:0.0 ~hi:1.0

let success_interval objective row =
  match objective with
  | Objective.Find_all -> clamp01 (I.product_nonneg row)
  | Objective.Find_any ->
    let misses = Array.map (fun p -> clamp01 (I.sub I.one p)) row in
    clamp01 (I.sub I.one (I.product_nonneg misses))
  | Objective.Find_at_least k ->
    let m = Array.length row in
    if k <= 0 then I.one
    else if k > m then I.zero
    else begin
      (* interval Poisson-binomial DP, mirroring Objective.tail_at_least *)
      let dp = Array.make (m + 1) I.zero in
      dp.(0) <- I.one;
      Array.iteri
        (fun i p ->
           let q = clamp01 (I.sub I.one p) in
           for j = i + 1 downto 1 do
             dp.(j) <- clamp01 (I.add (I.mul dp.(j) q) (I.mul dp.(j - 1) p))
           done;
           dp.(0) <- clamp01 (I.mul dp.(0) q))
        row;
      clamp01 (I.sum (Array.sub dp k (m - k + 1)))
    end

let ep_bounds ?(objective = Objective.Find_all) u inst strat =
  check ~objective u inst strat;
  let t_len = Strategy.length strat in
  let sizes = Strategy.sizes strat in
  let masses = mass_intervals u inst strat in
  (* EP = c − Σ_{r=0}^{t−2} |S_{r+2}|·F_r  (0-based r, F_r = success by
     round r+1); success is monotone in each mass so interval rows give
     sound F_r intervals. *)
  let terms =
    Array.init (Int.max 0 (t_len - 1)) (fun r ->
        I.scale
          (float_of_int sizes.(r + 1))
          (success_interval objective masses.(r)))
  in
  let ep = I.sub (I.of_int inst.Instance.c) (I.sum terms) in
  (* EP always pays the first group and never more than c cells. *)
  {
    lo = Float.max (float_of_int sizes.(0)) (I.lo ep);
    hi = Float.min (float_of_int inst.Instance.c) (I.hi ep);
  }

(* Canonical extremal row: move mass from the earliest-paged cells to
   the latest-paged ones (worst case) or the reverse (best case). Give
   capacity min(ε,p_j) per source, absorb capacity min(ε,1−p_j) per
   destination, total movement ≤ tv. Processing sources in ascending
   group order and destinations in descending order makes every
   prefix-mass reduction δ⁻(i,r) (resp. increase δ⁺) tight
   simultaneously — see the .mli soundness note. *)
let perturb_row ~worst g eps tv p =
  let c = Array.length p in
  let q = Array.copy p in
  if eps > 0.0 && tv > 0.0 then begin
    let order = Array.init c (fun j -> j) in
    (* ascending group order; ties by cell index keep this deterministic *)
    Array.sort
      (fun a b ->
         match compare g.(a) g.(b) with 0 -> compare a b | n -> n)
      order;
    let give_order = if worst then order else (let r = Array.copy order in
                                               let n = Array.length r in
                                               Array.init n (fun i -> r.(n - 1 - i)))
    in
    let n = Array.length order in
    let absorb_order =
      if worst then Array.init n (fun i -> order.(n - 1 - i)) else order
    in
    let give_rem = Array.map (fun pj -> Float.min eps pj) p in
    let abs_rem = Array.map (fun pj -> Float.min eps (1.0 -. pj)) p in
    let budget = ref tv in
    let gi = ref 0 and ai = ref 0 in
    let continue_ = ref true in
    while !continue_ && !budget > 0.0 && !gi < c && !ai < c do
      let gj = give_order.(!gi) and aj = absorb_order.(!ai) in
      if give_rem.(gj) <= 0.0 then incr gi
      else if abs_rem.(aj) <= 0.0 then incr ai
      else if (worst && g.(gj) >= g.(aj)) || ((not worst) && g.(gj) <= g.(aj))
      then
        (* moving within one round's group (or past it) no longer
           changes any prefix mass in the helpful direction *)
        continue_ := false
      else begin
        let amount =
          Float.min (Float.min give_rem.(gj) abs_rem.(aj)) !budget
        in
        q.(gj) <- q.(gj) -. amount;
        q.(aj) <- q.(aj) +. amount;
        give_rem.(gj) <- give_rem.(gj) -. amount;
        abs_rem.(aj) <- abs_rem.(aj) -. amount;
        if Float.is_finite !budget then budget := !budget -. amount
      end
    done
  end;
  q

let extremal_instance ~worst u inst strat =
  check u inst strat;
  let g = group_of inst strat in
  let rows =
    Array.mapi
      (fun i row -> perturb_row ~worst g (eps_for u i) u.tv row)
      inst.Instance.p
  in
  Instance.create ~d:inst.Instance.d rows

let worst_case_instance u inst strat = extremal_instance ~worst:true u inst strat
let best_case_instance u inst strat = extremal_instance ~worst:false u inst strat

let robust_ep ?(objective = Objective.Find_all) u inst strat =
  check ~objective u inst strat;
  Strategy.expected_paging ~objective (worst_case_instance u inst strat) strat

let optimistic_ep ?(objective = Objective.Find_all) u inst strat =
  check ~objective u inst strat;
  Strategy.expected_paging ~objective (best_case_instance u inst strat) strat

let to_string t =
  let eps_s =
    match t.row_eps with
    | None -> Printf.sprintf "eps=%g" t.eps
    | Some a ->
      let mn = Array.fold_left Float.min infinity a
      and mx = Array.fold_left Float.max neg_infinity a in
      Printf.sprintf "eps=per-row[%g,%g]" mn mx
  in
  if Float.is_finite t.tv then Printf.sprintf "%s tv=%g" eps_s t.tv
  else eps_s

let pp ppf t = Format.pp_print_string ppf (to_string t)
