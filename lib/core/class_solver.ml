type result = {
  strategy : Strategy.t;
  expected_paging : float;
  classes : int;
  candidates : int;
}

let classes ?(eps = 0.0) inst =
  let m = inst.Instance.m and c = inst.Instance.c in
  let same a b =
    let rec go i =
      if i >= m then true
      else if
        abs_float (inst.Instance.p.(i).(a) -. inst.Instance.p.(i).(b)) > eps
      then false
      else go (i + 1)
    in
    go 0
  in
  (* Group cells left to right; representatives keep first-seen order so
     the constructed strategies are deterministic. *)
  let groups : (int * int list ref) list ref = ref [] in
  for j = 0 to c - 1 do
    match List.find_opt (fun (rep, _) -> same rep j) !groups with
    | Some (_, members) -> members := j :: !members
    | None -> groups := !groups @ [ j, ref [ j ] ]
  done;
  Array.of_list
    (List.map (fun (_, members) -> Array.of_list (List.rev !members)) !groups)

let solve ?(objective = Objective.Find_all) ?cancel ?eps
    ?(max_candidates = 5_000_000) inst =
  let m = inst.Instance.m and c = inst.Instance.c in
  let d = Stdlib.min inst.Instance.d c in
  let cls = classes ?eps inst in
  let t = Array.length cls in
  (* Candidate count: prod_t C(n_t + d - 1, d - 1). *)
  let compositions n =
    (* number of ways to write n as d ordered non-negative parts *)
    let num = ref 1.0 in
    for i = 1 to d - 1 do
      num := !num *. float_of_int (n + i) /. float_of_int i
    done;
    !num
  in
  let total_candidates =
    Array.fold_left (fun acc g -> acc *. compositions (Array.length g)) 1.0 cls
  in
  if total_candidates > float_of_int max_candidates then
    invalid_arg "Class_solver.solve: too many compositions"
  else begin
    (* counts.(t).(r): cells of class t paged in round r. Class masses
       per device are shared by all members. *)
    let class_mass =
      Array.map
        (fun g -> Array.init m (fun i -> inst.Instance.p.(i).(g.(0))))
        cls
    in
    let counts = Array.make_matrix t d 0 in
    let best = ref infinity in
    let best_counts = ref [||] in
    let evaluated = ref 0 in
    let prefix = Array.make m 0.0 in
    let evaluate () =
      Option.iter Cancel.check cancel;
      incr evaluated;
      Array.fill prefix 0 m 0.0;
      let ep = ref (float_of_int c) in
      for r = 0 to d - 2 do
        for i = 0 to m - 1 do
          let acc = ref 0.0 in
          for k = 0 to t - 1 do
            acc := !acc +. (float_of_int counts.(k).(r) *. class_mass.(k).(i))
          done;
          prefix.(i) <- prefix.(i) +. !acc
        done;
        let f = Objective.success objective prefix in
        let next_size = ref 0 in
        for k = 0 to t - 1 do
          next_size := !next_size + counts.(k).(r + 1)
        done;
        ep := !ep -. (float_of_int !next_size *. f)
      done;
      if !ep < !best then begin
        best := !ep;
        best_counts := Array.map Array.copy counts
      end
    in
    (* Enumerate compositions class by class, round by round. *)
    let rec fill_class k =
      if k >= t then evaluate ()
      else begin
        let n = Array.length cls.(k) in
        let rec fill_round r remaining =
          if r = d - 1 then begin
            counts.(k).(r) <- remaining;
            fill_class (k + 1);
            counts.(k).(r) <- 0
          end
          else
            for x = 0 to remaining do
              counts.(k).(r) <- x;
              fill_round (r + 1) (remaining - x);
              counts.(k).(r) <- 0
            done
        in
        fill_round 0 n
      end
    in
    fill_class 0;
    (* Materialize the winning counts as a strategy; empty rounds are
       dropped (they do not change expected paging). *)
    let buckets = Array.make d [] in
    Array.iteri
      (fun k group ->
        let pos = ref 0 in
        Array.iteri
          (fun r cnt ->
            for _ = 1 to cnt do
              buckets.(r) <- group.(!pos) :: buckets.(r);
              incr pos
            done)
          !best_counts.(k))
      cls;
    let groups =
      Array.of_list
        (List.filter_map
           (fun b -> if b = [] then None else Some (Array.of_list b))
           (Array.to_list buckets))
    in
    let strategy = Strategy.create groups in
    {
      strategy;
      expected_paging = !best;
      classes = t;
      candidates = !evaluated;
    }
  end

let approximate ?(objective = Objective.Find_all) ?max_candidates inst ~grid =
  if grid < 1 then invalid_arg "Class_solver.approximate: grid must be >= 1"
  else begin
    (* Snap each probability to the nearest multiple of 1/grid, keep rows
       normalized; equal snapped columns collapse into classes. *)
    let snap x = Float.round (x *. float_of_int grid) /. float_of_int grid in
    let snapped =
      Array.map
        (fun row ->
          let r = Array.map snap row in
          let total = Array.fold_left ( +. ) 0.0 r in
          if total <= 0.0 then Array.copy row
          else Array.map (fun x -> x /. total) r)
        inst.Instance.p
    in
    let surrogate = Instance.create ~d:inst.Instance.d snapped in
    let r = solve ~objective ?max_candidates surrogate in
    (* Report the strategy's true quality on the original instance. *)
    {
      r with
      expected_paging =
        Strategy.expected_paging ~objective inst r.strategy;
    }
  end
