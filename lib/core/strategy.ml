module Q = Numeric.Rational

type t = { groups : int array array }

let create groups =
  if Array.length groups = 0 then invalid_arg "Strategy.create: no groups"
  else begin
    let seen = Hashtbl.create 16 in
    let groups =
      Array.map
        (fun g ->
          if Array.length g = 0 then
            invalid_arg "Strategy.create: empty group"
          else begin
            Array.iter
              (fun j ->
                if j < 0 then invalid_arg "Strategy.create: negative cell"
                else if Hashtbl.mem seen j then
                  invalid_arg "Strategy.create: duplicate cell"
                else Hashtbl.add seen j ())
              g;
            let g = Array.copy g in
            Array.sort compare g;
            g
          end)
        groups
    in
    { groups }
  end

let validate ~c t =
  let count = Array.fold_left (fun acc g -> acc + Array.length g) 0 t.groups in
  if count <> c then Error "strategy does not cover exactly c cells"
  else begin
    let covered = Array.make c false in
    let bad = ref None in
    Array.iter
      (Array.iter (fun j ->
           if j >= c then bad := Some "cell index out of range"
           else covered.(j) <- true))
      t.groups;
    match !bad with
    | Some reason -> Error reason
    | None ->
      if Array.for_all (fun b -> b) covered then Ok ()
      else Error "strategy misses some cell"
  end

let of_sizes ~order ~sizes =
  let c = Array.length order in
  let total = Array.fold_left ( + ) 0 sizes in
  if total <> c then invalid_arg "Strategy.of_sizes: sizes do not sum to c"
  else if Array.exists (fun s -> s <= 0) sizes then
    invalid_arg "Strategy.of_sizes: non-positive group size"
  else begin
    let pos = ref 0 in
    let groups =
      Array.map
        (fun s ->
          let g = Array.sub order !pos s in
          pos := !pos + s;
          g)
        sizes
    in
    create groups
  end

let page_all c =
  if c <= 0 then invalid_arg "Strategy.page_all: non-positive c"
  else create [| Array.init c (fun j -> j) |]

let singletons order = create (Array.map (fun j -> [| j |]) order)
let length t = Array.length t.groups
let groups t = Array.map Array.copy t.groups
let sizes t = Array.map Array.length t.groups

let check inst t =
  match validate ~c:inst.Instance.c t with
  | Error reason -> invalid_arg ("Strategy: " ^ reason)
  | Ok () ->
    if Array.length t.groups > inst.Instance.d then
      invalid_arg "Strategy: more rounds than the delay constraint allows"

let prefix_masses inst t =
  let m = inst.Instance.m in
  let rounds = Array.length t.groups in
  (* Neumaier-compensated per-device accumulation: the Lemma 2.1 masses
     are running sums over up to c cells. *)
  let acc = Array.make m 0.0 in
  let comp = Array.make m 0.0 in
  Array.init rounds (fun r ->
      Array.iter
        (fun j ->
          for i = 0 to m - 1 do
            let sum, cmp =
              Numeric.Kahan.step (acc.(i), comp.(i)) inst.Instance.p.(i).(j)
            in
            acc.(i) <- sum;
            comp.(i) <- cmp
          done)
        t.groups.(r);
      Array.init m (fun i -> Numeric.Kahan.value (acc.(i), comp.(i))))

let success_by_round ?(objective = Objective.Find_all) inst t =
  Array.map (Objective.success objective) (prefix_masses inst t)

let expected_paging_unchecked ?(objective = Objective.Find_all) inst t =
  let f = success_by_round ~objective inst t in
  let rounds = Array.length t.groups in
  (* Lemma 2.1: EP = c − Σ_r |S_{r+1}|·F_r, compensated — the subtracted
     terms can span many orders of magnitude when some F_r ≈ 0. *)
  let ep = ref (Numeric.Kahan.step Numeric.Kahan.zero (float_of_int inst.Instance.c)) in
  for r = 0 to rounds - 2 do
    ep :=
      Numeric.Kahan.step !ep
        (-.(float_of_int (Array.length t.groups.(r + 1)) *. f.(r)))
  done;
  Numeric.Kahan.value !ep

let expected_paging ?objective inst t =
  check inst t;
  expected_paging_unchecked ?objective inst t

let expected_cost ?(objective = Objective.Find_all) inst ~cell_cost t =
  check inst t;
  if Array.length cell_cost <> inst.Instance.c then
    invalid_arg "Strategy.expected_cost: cell_cost length mismatch"
  else begin
    let group_cost g =
      Array.fold_left (fun acc j -> acc +. cell_cost.(j)) 0.0 g
    in
    let f = success_by_round ~objective inst t in
    let rounds = Array.length t.groups in
    let total = Array.fold_left ( +. ) 0.0 cell_cost in
    let e = ref total in
    for r = 0 to rounds - 2 do
      e := !e -. (group_cost t.groups.(r + 1) *. f.(r))
    done;
    !e
  end

let expected_rounds ?(objective = Objective.Find_all) inst t =
  check inst t;
  let f = success_by_round ~objective inst t in
  let rounds = Array.length t.groups in
  (* E[rounds] = Σ_{r=0}^{rounds-1} P[search lasts > r rounds]. *)
  let e = ref 1.0 in
  for r = 0 to rounds - 2 do
    e := !e +. (1.0 -. f.(r))
  done;
  !e

let cost_on_outcome ?(objective = Objective.Find_all) t ~m ~positions =
  let rounds = Array.length t.groups in
  let find_round =
    let tbl = Hashtbl.create 64 in
    Array.iteri
      (fun r g -> Array.iter (fun j -> Hashtbl.replace tbl j r) g)
      t.groups;
    fun j ->
      match Hashtbl.find_opt tbl j with
      | Some r -> r
      | None -> invalid_arg "Strategy.cost_on_outcome: position not covered"
  in
  let device_rounds = Array.map find_round positions in
  (* The search stops at the first round r such that at least the required
     number of devices lie within rounds 0..r. *)
  let rec stop_round r found =
    let found =
      found
      + Array.fold_left
          (fun acc dr -> if dr = r then acc + 1 else acc)
          0 device_rounds
    in
    if Objective.found_enough objective ~m ~found then r
    else if r + 1 >= rounds then rounds - 1
    else stop_round (r + 1) found
  in
  let stop = stop_round 0 0 in
  let cost = ref 0 in
  for r = 0 to stop do
    cost := !cost + Array.length t.groups.(r)
  done;
  !cost

let monte_carlo_ep ?(objective = Objective.Find_all) inst t rng ~trials =
  check inst t;
  let m = inst.Instance.m in
  let tables =
    Array.init m (fun i -> Prob.Sampling.create inst.Instance.p.(i))
  in
  let acc = Prob.Stats.Acc.create () in
  let positions = Array.make m 0 in
  for _ = 1 to trials do
    for i = 0 to m - 1 do
      positions.(i) <- Prob.Sampling.draw tables.(i) rng
    done;
    let cost = cost_on_outcome ~objective t ~m ~positions in
    Prob.Stats.Acc.add acc (float_of_int cost)
  done;
  Prob.Stats.Acc.summary acc

let expected_paging_exact ?(objective = Objective.Find_all) inst t =
  let m = inst.Instance.Exact.m in
  let c = inst.Instance.Exact.c in
  let rounds = Array.length t.groups in
  let acc = Array.make m Q.zero in
  let ep = ref (Q.of_int c) in
  for r = 0 to rounds - 1 do
    Array.iter
      (fun j ->
        for i = 0 to m - 1 do
          acc.(i) <- Q.add acc.(i) inst.Instance.Exact.p.(i).(j)
        done)
      t.groups.(r);
    if r <= rounds - 2 then begin
      let f = Objective.success_exact objective (Array.copy acc) in
      let size = Q.of_int (Array.length t.groups.(r + 1)) in
      ep := Q.sub !ep (Q.mul size f)
    end
  done;
  !ep

let equal a b =
  Array.length a.groups = Array.length b.groups
  && Array.for_all2 (fun x y -> x = y) a.groups b.groups

let to_string t =
  let group g =
    "{"
    ^ String.concat " " (Array.to_list (Array.map string_of_int g))
    ^ "}"
  in
  String.concat "|" (Array.to_list (Array.map group t.groups))

let pp ppf t = Format.pp_print_string ppf (to_string t)
