type t = { size : int; a : float array array; b : float array array }

let create a b =
  let n = Array.length a in
  if n = 0 then invalid_arg "Qap.create: empty matrix"
  else if Array.length b <> n then invalid_arg "Qap.create: size mismatch"
  else begin
    let square m =
      Array.for_all (fun row -> Array.length row = n) m
    in
    if not (square a && square b) then
      invalid_arg "Qap.create: matrices must be square"
    else { size = n; a = Array.map Array.copy a; b = Array.map Array.copy b }
  end

let check_perm t perm =
  if Array.length perm <> t.size then
    invalid_arg "Qap: permutation length mismatch"
  else begin
    let seen = Array.make t.size false in
    Array.iter
      (fun v ->
        if v < 0 || v >= t.size || seen.(v) then
          invalid_arg "Qap: not a permutation"
        else seen.(v) <- true)
      perm
  end

let objective t perm =
  check_perm t perm;
  let total = ref 0.0 in
  for x = 0 to t.size - 1 do
    for y = 0 to t.size - 1 do
      total := !total +. (t.a.(x).(y) *. t.b.(perm.(x)).(perm.(y)))
    done
  done;
  !total

let identity_permutation t = Array.init t.size (fun i -> i)

(* Objective change from swapping the slots of cells x and y; O(n). *)
let swap_delta t perm x y =
  let n = t.size in
  let px = perm.(x) and py = perm.(y) in
  let delta = ref 0.0 in
  for z = 0 to n - 1 do
    if z <> x && z <> y then begin
      let pz = perm.(z) in
      delta :=
        !delta
        +. (t.a.(x).(z) *. (t.b.(py).(pz) -. t.b.(px).(pz)))
        +. (t.a.(y).(z) *. (t.b.(px).(pz) -. t.b.(py).(pz)))
        +. (t.a.(z).(x) *. (t.b.(pz).(py) -. t.b.(pz).(px)))
        +. (t.a.(z).(y) *. (t.b.(pz).(px) -. t.b.(pz).(py)))
    end
  done;
  delta :=
    !delta
    +. (t.a.(x).(x) *. (t.b.(py).(py) -. t.b.(px).(px)))
    +. (t.a.(y).(y) *. (t.b.(px).(px) -. t.b.(py).(py)))
    +. (t.a.(x).(y) *. (t.b.(py).(px) -. t.b.(px).(py)))
    +. (t.a.(y).(x) *. (t.b.(px).(py) -. t.b.(py).(px)));
  !delta

let local_search t ~start =
  check_perm t start;
  let perm = Array.copy start in
  let current = ref (objective t perm) in
  let evaluations = ref 0 in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_delta = ref 1e-12 and best_pair = ref None in
    for x = 0 to t.size - 1 do
      for y = x + 1 to t.size - 1 do
        incr evaluations;
        let delta = swap_delta t perm x y in
        if delta > !best_delta then begin
          best_delta := delta;
          best_pair := Some (x, y)
        end
      done
    done;
    match !best_pair with
    | Some (x, y) ->
      let tmp = perm.(x) in
      perm.(x) <- perm.(y);
      perm.(y) <- tmp;
      current := !current +. !best_delta;
      improved := true
    | None -> ()
  done;
  (* Recompute to shed accumulated float error. *)
  perm, objective t perm, !evaluations

let anneal t rng ~steps ~t0 ~cooling =
  if steps < 0 || t0 <= 0.0 || cooling <= 0.0 || cooling >= 1.0 then
    invalid_arg "Qap.anneal: bad parameters";
  let perm = identity_permutation t in
  let current = ref (objective t perm) in
  let best = ref !current in
  let best_perm = ref (Array.copy perm) in
  let temperature = ref t0 in
  for _ = 1 to steps do
    let x = Prob.Rng.int rng t.size and y = Prob.Rng.int rng t.size in
    if x <> y then begin
      let delta = swap_delta t perm x y in
      if
        delta >= 0.0
        || Prob.Rng.unit_float rng < exp (delta /. !temperature)
      then begin
        let tmp = perm.(x) in
        perm.(x) <- perm.(y);
        perm.(y) <- tmp;
        current := !current +. delta;
        if !current > !best then begin
          best := !current;
          best_perm := Array.copy perm
        end
      end
    end;
    temperature := !temperature *. cooling
  done;
  let final, value, _ = local_search t ~start:!best_perm in
  final, value

let exhaustive t =
  if t.size > 9 then invalid_arg "Qap.exhaustive: size too large (max 9)"
  else begin
    let best = ref neg_infinity and best_perm = ref (identity_permutation t) in
    let perm = identity_permutation t in
    let rec go k =
      if k = t.size then begin
        let v = objective t perm in
        if v > !best then begin
          best := v;
          best_perm := Array.copy perm
        end
      end
      else
        for i = k to t.size - 1 do
          let tmp = perm.(k) in
          perm.(k) <- perm.(i);
          perm.(i) <- tmp;
          go (k + 1);
          let tmp = perm.(k) in
          perm.(k) <- perm.(i);
          perm.(i) <- tmp
        done
    in
    go 0;
    !best_perm, !best
  end

(* ---------- Conference Call (m = 2) encoding ---------- *)

let round_of_slots ~sizes =
  let d = Array.length sizes in
  let c = Array.fold_left ( + ) 0 sizes in
  let round = Array.make c 0 in
  let pos = ref 0 in
  for r = 0 to d - 1 do
    for _ = 1 to sizes.(r) do
      round.(!pos) <- r;
      incr pos
    done
  done;
  round

let of_conference inst ~sizes =
  if inst.Instance.m <> 2 then
    invalid_arg "Qap.of_conference: requires exactly two devices"
  else begin
    let c = inst.Instance.c in
    if Array.fold_left ( + ) 0 sizes <> c then
      invalid_arg "Qap.of_conference: sizes must sum to c"
    else if Array.exists (fun s -> s <= 0) sizes then
      invalid_arg "Qap.of_conference: sizes must be positive"
    else begin
      let round = round_of_slots ~sizes in
      (* b_r: cells paged within the first r+1 rounds. *)
      let cumulative = Array.make (Array.length sizes) 0 in
      let acc = ref 0 in
      Array.iteri
        (fun r s ->
          acc := !acc + s;
          cumulative.(r) <- !acc)
        sizes;
      let a =
        Array.init c (fun x ->
            Array.init c (fun y ->
                inst.Instance.p.(0).(x) *. inst.Instance.p.(1).(y)))
      in
      let b =
        Array.init c (fun u ->
            Array.init c (fun v ->
                let r = Stdlib.max round.(u) round.(v) in
                float_of_int (c - cumulative.(r))))
      in
      create a b
    end
  end

let ep_of_objective inst value = float_of_int inst.Instance.c -. value

let strategy_of_permutation ~sizes perm =
  let round = round_of_slots ~sizes in
  let d = Array.length sizes in
  let buckets = Array.make d [] in
  Array.iteri
    (fun cell slot -> buckets.(round.(slot)) <- cell :: buckets.(round.(slot)))
    perm;
  Strategy.create (Array.map (fun l -> Array.of_list (List.rev l)) buckets)

let size_vectors ~c ~d =
  (* All compositions of c into d positive parts. *)
  let out = ref [] in
  let rec go parts remaining slots =
    if slots = 1 then out := Array.of_list (List.rev (remaining :: parts)) :: !out
    else
      for v = 1 to remaining - slots + 1 do
        go (v :: parts) (remaining - v) (slots - 1)
      done
  in
  go [] c d;
  List.rev !out

let solve_conference_m2 ?rng inst =
  if inst.Instance.m <> 2 then
    invalid_arg "Qap.solve_conference_m2: requires exactly two devices"
  else begin
    let c = inst.Instance.c in
    let d = Stdlib.min inst.Instance.d c in
    let rng =
      match rng with
      | Some rng -> rng
      | None -> Prob.Rng.create ~seed:51
    in
    let best_ep = ref infinity and best_strategy = ref None in
    List.iter
      (fun sizes ->
        let qap = of_conference inst ~sizes in
        let steps = Stdlib.max 200 (20 * c) in
        let perm, value =
          anneal qap rng ~steps ~t0:(0.1 *. float_of_int c)
            ~cooling:(1.0 -. (2.0 /. float_of_int steps))
        in
        let ep = ep_of_objective inst value in
        if ep < !best_ep then begin
          best_ep := ep;
          best_strategy := Some (strategy_of_permutation ~sizes perm)
        end)
      (size_vectors ~c ~d);
    match !best_strategy with
    | Some strategy -> strategy, !best_ep
    | None -> invalid_arg "Qap.solve_conference_m2: no size vectors"
  end
