(** Crash-safe append-only work journal for long sweeps.

    A sweep (bench run, CLI parameter scan) records one line per
    completed work item: [id TAB payload NEWLINE]. Restarting with the
    same journal skips every id already present, so killing a sweep
    mid-run and re-running it produces a byte-identical journal — the
    replayed items append exactly the lines the killed run would have
    written.

    Crash safety is by construction: lines are flushed after each
    append, and a partial trailing line (the process died mid-write) is
    truncated away on load, so that item is simply re-done. Ids and
    payloads must not contain tabs or newlines; ids must be unique per
    item and deterministic across runs (e.g. ["e23/c60/seed7"]).

    Integrity (DESIGN §11): every appended line carries a CRC-32 suffix
    ([... TAB "crc:" hex8]) computed over [id TAB payload]; loading
    verifies it and {e skips} complete-but-corrupt mid-file lines
    (counted in {!corrupt_lines}) instead of trusting flipped bits —
    the torn-tail truncation only ever protected the last line. Lines
    without the suffix are legacy journals and load unverified. A
    failed append seals its torn prefix with a newline so the garbage
    becomes one checksum-rejected line rather than corrupting the next
    record; only when even the seal cannot be written does the journal
    go read-only ({!broken}). *)

type t

(** [load_or_create ?fsync path] opens the journal, recovering completed
    entries and truncating any partial trailing line. Creates the file
    (and nothing else — parent directories must exist) when absent.
    With [~fsync:true] (default false) every {!record} additionally
    [fsync]s the descriptor after its flush, so a committed line
    survives power-loss-style crashes, not just process death — the
    durability the serve-side result cache wants. Torn-tail recovery is
    identical in both modes.
    @raise Invalid_argument with a ["Journal: duplicate id"] message
    when the same id appears on two complete lines — two runs both
    claimed the record, and silently keeping either copy would hide
    the conflict. The partial trailing line is dropped {e before} this
    check, so a half-written retry of an existing id loads fine. A
    complete line without a tab separator is not an error — the whole
    line is then the id with an empty payload. *)
val load_or_create : ?fsync:bool -> string -> t

(** [read_back path] — the completed entries of a journal file, oldest
    first, without opening it for append or truncating its torn tail
    (the torn tail is simply ignored). [[]] when the file is absent.
    This is how a sharded sweep recovers work from the per-shard
    journals of a crashed run before merging (see {!Sweep}).
    @raise Invalid_argument on a duplicate id, as {!load_or_create}. *)
val read_back : string -> (string * string) list

val path : t -> string

(** [completed t id] — was this item finished by a previous (or this)
    run? *)
val completed : t -> string -> bool

(** [record t ~id ~payload] appends one completed item (with its CRC-32
    suffix) and flushes.
    @raise Invalid_argument on tabs/newlines in [id] or newlines in
    [payload], or when [id] was already recorded.
    @raise Failure when the journal is {!broken}. Any other exception
    means this append failed (the entry is {e not} recorded) — except a
    failure out of the final fsync, after which the entry stands but
    its durability was not confirmed. *)
val record : t -> id:string -> payload:string -> unit

(** Complete lines whose checksum did not verify at load — skipped, not
    loaded. Zero on a healthy or legacy journal. *)
val corrupt_lines : t -> int

(** True once an append failure could not even be sealed with a
    newline: further {!record} calls fail fast rather than risk gluing
    onto torn bytes. *)
val broken : t -> bool

(** Entries in file order, oldest first. *)
val entries : t -> (string * string) list

val count : t -> int

(** [run t ~id f] — skip-or-do in one step: if [id] is already
    journalled return its recorded payload, otherwise run [f ()],
    record the returned payload, and pass it on. [`Replayed] vs [`Ran]
    tells the caller whether work actually happened. *)
val run : t -> id:string -> (unit -> string) -> [ `Replayed | `Ran ] * string

val close : t -> unit
