let order inst = Instance.weight_order inst
let solve ?objective ?cancel inst =
  Order_dp.solve ?objective ?cancel inst ~order:(order inst)
let approximation_factor = Numeric.Convex.e_over_e_minus_1
let approximation_factor_m2d2 = 4.0 /. 3.0
let ratio_lower_bound = 320.0 /. 317.0
