type result = {
  strategy : Strategy.t;
  sizes : int array;
  expected_paging : float;
}

let check_order ~c order =
  if Array.length order <> c then
    invalid_arg "Order_dp: order must list every cell exactly once"
  else begin
    let seen = Array.make c false in
    Array.iter
      (fun j ->
        if j < 0 || j >= c || seen.(j) then
          invalid_arg "Order_dp: order is not a permutation of the cells"
        else seen.(j) <- true)
      order
  end

let prefix_success_table ?(objective = Objective.Find_all) inst ~order =
  let c = inst.Instance.c and m = inst.Instance.m in
  check_order ~c order;
  (* Per-device prefix masses are long running sums over cells; keep a
     Neumaier compensation term per device so c in the hundreds of
     thousands does not drift the masses (and with them every DP
     decision) away from the exact-rational values. *)
  let acc = Array.make m 0.0 in
  let comp = Array.make m 0.0 in
  let masses = Array.make m 0.0 in
  let table = Array.make (c + 1) 0.0 in
  table.(0) <- Objective.success objective masses;
  for j = 1 to c do
    let cell = order.(j - 1) in
    for i = 0 to m - 1 do
      let sum, cmp =
        Numeric.Kahan.step (acc.(i), comp.(i)) inst.Instance.p.(i).(cell)
      in
      acc.(i) <- sum;
      comp.(i) <- cmp;
      masses.(i) <- Numeric.Kahan.value (sum, cmp)
    done;
    table.(j) <- Objective.success objective masses
  done;
  table

let solve_with_prefix_success ~c ~d ?max_group ?cell_cost
    ?(cancel = Cancel.never) ~prefix_success ~order () =
  check_order ~c order;
  let b =
    match max_group with
    | None -> c
    | Some b when b >= 1 -> b
    | Some _ -> invalid_arg "Order_dp: max_group must be >= 1"
  in
  if c > b * d then invalid_arg "Order_dp: bandwidth constraint infeasible"
  else begin
    let f = Array.init (c + 1) prefix_success in
    (* cum.(j): total paging cost of the first j cells of the order
       (unit costs unless [cell_cost] is given — the weighted model). *)
    let cum = Array.make (c + 1) 0.0 in
    let cost_at =
      match cell_cost with
      | None -> fun _ -> 1.0
      | Some g -> g
    in
    for j = 1 to c do
      cum.(j) <- cum.(j - 1) +. cost_at (j - 1)
    done;
    let block_cost lo hi = cum.(hi) -. cum.(lo) in
    (* e.(l).(k): optimal expected paging cost of an l-round strategy over
       the last k cells of the order, conditioned on the search reaching
       them. x.(l).(k) records the minimizing first-group size. *)
    let e = Array.make_matrix (d + 1) (c + 1) infinity in
    let x = Array.make_matrix (d + 1) (c + 1) 0 in
    for k = 1 to Stdlib.min c b do
      e.(1).(k) <- block_cost (c - k) c;
      x.(1).(k) <- k
    done;
    for l = 2 to d do
      for k = l to c do
        Cancel.check cancel;
        (* First group of size v: v >= 1, leave >= l-1 cells for the rest,
           respect the cap on this group, and keep the rest schedulable. *)
        let v_lo = Stdlib.max 1 (k - (b * (l - 1))) in
        let v_hi = Stdlib.min b (k - l + 1) in
        let tail_start = c - k in
        let denom = 1.0 -. f.(tail_start) in
        for v = v_lo to v_hi do
          let cont =
            if denom <= 0.0 then 0.0
            else (1.0 -. f.(tail_start + v)) /. denom
          in
          let cost =
            block_cost tail_start (tail_start + v)
            +. (cont *. e.(l - 1).(k - v))
          in
          if cost < e.(l).(k) then begin
            e.(l).(k) <- cost;
            x.(l).(k) <- v
          end
        done
      done
    done;
    (* A longer strategy never pages more in expectation (the remark after
       Lemma 2.1), but with few cells we may be forced below d rounds. *)
    let rounds = Stdlib.min d c in
    if e.(rounds).(c) = infinity then
      invalid_arg "Order_dp: no feasible strategy"
    else begin
      let sizes = Array.make rounds 0 in
      let k = ref c in
      for l = rounds downto 1 do
        let v = x.(l).(!k) in
        sizes.(rounds - l) <- v;
        k := !k - v
      done;
      let strategy = Strategy.of_sizes ~order ~sizes in
      { strategy; sizes; expected_paging = e.(rounds).(c) }
    end
  end

let solve ?objective ?max_group ?cell_cost ?cancel inst ~order =
  let c = inst.Instance.c and d = inst.Instance.d in
  let table = prefix_success_table ?objective inst ~order in
  let cell_cost =
    Option.map
      (fun costs ->
        if Array.length costs <> c then
          invalid_arg "Order_dp.solve: cell_cost length mismatch"
        else fun pos -> costs.(order.(pos)))
      cell_cost
  in
  solve_with_prefix_success ~c ~d ?max_group ?cell_cost ?cancel
    ~prefix_success:(fun j -> table.(j))
    ~order ()

let solve_coarse ?objective ?(block = 16) inst ~order =
  let c = inst.Instance.c and d = inst.Instance.d in
  if block < 1 then invalid_arg "Order_dp.solve_coarse: block must be >= 1"
  else begin
    let table = prefix_success_table ?objective inst ~order in
    (* Treat [block] consecutive order cells as one unit whose paging
       cost is its cell count; cut points land on block boundaries only.
       The DP shrinks from O(d c^2) to O(d (c/block)^2); the answer is a
       feasible strategy whose EP the caller can compare to the full DP. *)
    let blocks = (c + block - 1) / block in
    let boundary u = Stdlib.min c (u * block) in
    let d' = Stdlib.min d blocks in
    let result =
      solve_with_prefix_success ~c:blocks ~d:d'
        ~cell_cost:(fun u -> float_of_int (boundary (u + 1) - boundary u))
        ~prefix_success:(fun u -> table.(boundary u))
        ~order:(Array.init blocks (fun u -> u))
        ()
    in
    (* Expand block-level group sizes back to cells. *)
    let sizes =
      let pos = ref 0 in
      Array.map
        (fun units ->
          let lo = boundary !pos and hi = boundary (!pos + units) in
          pos := !pos + units;
          hi - lo)
        result.sizes
    in
    let strategy = Strategy.of_sizes ~order ~sizes in
    { strategy; sizes; expected_paging = result.expected_paging }
  end
