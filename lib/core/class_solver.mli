(** Exact solver for instances with few distinct cell types.

    §5 sketches an approximation scheme for the subclass where the
    probabilities fall into a constant number of groups; this module
    implements the underlying idea exactly. Two cells are equivalent
    when every device gives them the same probability; expected paging
    depends only on {e how many} cells of each class are paged per
    round, so it suffices to enumerate per-class count compositions —
    Π_t C(n_t + d − 1, d − 1) candidates instead of d^c.

    Exact for any instance; practical whenever the number of classes is
    small (uniform instances, the §4.3 instance, reduction outputs). *)

type result = {
  strategy : Strategy.t;
  expected_paging : float;
  classes : int;  (** number of distinct cell types found *)
  candidates : int;  (** compositions evaluated *)
}

(** [classes ?eps inst] groups cells by probability column (tolerance
    [eps] per entry, default exact equality); returns representative ->
    members. *)
val classes : ?eps:float -> Instance.t -> int array array

(** [solve ?objective ?cancel ?eps ?max_candidates inst] — exact
    optimum. [cancel] is polled once per candidate evaluated, so the
    enumeration unwinds within one poll interval of the token firing.
    @raise Invalid_argument when the composition count exceeds
    [max_candidates] (default 5,000,000).
    @raise Cancel.Cancelled when the token fires mid-enumeration. *)
val solve :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  ?eps:float ->
  ?max_candidates:int ->
  Instance.t ->
  result

(** [approximate ?objective ?max_candidates inst ~grid] — the §5
    approximation-scheme idea made concrete: snap every probability to a
    grid of [grid] equal intervals (then renormalize rows), solve the
    snapped instance {e exactly} with the class machinery, and return
    the resulting strategy evaluated on the {e original} instance. With
    coarse grids many cells collapse into few classes, making the exact
    search cheap; finer grids trade running time for fidelity. The
    returned [expected_paging] is the true EP of the strategy on the
    original instance (not the snapped surrogate).
    @raise Invalid_argument when [grid < 1] or the snapped instance
    still has too many classes. *)
val approximate :
  ?objective:Objective.t ->
  ?max_candidates:int ->
  Instance.t ->
  grid:int ->
  result
