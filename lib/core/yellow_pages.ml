let objective = Objective.Find_any

let natural_heuristic inst = Greedy.solve ~objective inst

let best_single_device inst =
  let m = inst.Instance.m in
  let candidate i =
    (* Order cells by this device's own distribution, cut with the
       find-any DP on the full instance. *)
    let row = inst.Instance.p.(i) in
    let order = Array.init inst.Instance.c (fun j -> j) in
    let cmp a b =
      if row.(a) <> row.(b) then compare row.(b) row.(a) else compare a b
    in
    Array.sort cmp order;
    Order_dp.solve ~objective inst ~order
  in
  let rec pick i best =
    if i >= m then best
    else begin
      let r = candidate i in
      let best =
        if r.Order_dp.expected_paging < best.Order_dp.expected_paging then r
        else best
      in
      pick (i + 1) best
    end
  in
  pick 1 (candidate 0)

let solve inst =
  let a = natural_heuristic inst and b = best_single_device inst in
  if a.Order_dp.expected_paging <= b.Order_dp.expected_paging then a else b

let exhaustive inst = Optimal.exhaustive ~objective inst

let adversarial_instance ~blocks ~d =
  if blocks < 1 then invalid_arg "Yellow_pages.adversarial_instance"
  else begin
    (* k "solo" cells hold device 0 almost surely; blocks·k "shared"
       cells split the remaining devices' mass so that each shared cell
       is slightly heavier than each solo cell, yet covering shared cells
       buys find-any success only at rate 1 − e^{-t}. Covering the k solo
       cells buys success ≈ 1 at a third of the heuristic's cost. *)
    let k = 3 in
    let g = blocks in
    let n = g * k in
    let c = k + n in
    (* Device 0 dumps noticeable mass on the shared cells (inflating
       their weight) while the shared devices leave only a sliver on the
       solo cells, so the weight order pages every shared cell first. *)
    let eps_shared_of_solo = 1e-9 in
    let eps_solo_of_shared = 1e-4 in
    (* Cells 0..n-1 are shared; cells n..c-1 are solo. *)
    let device0 =
      Array.init c (fun j ->
          if j < n then eps_solo_of_shared
          else (1.0 -. (float_of_int n *. eps_solo_of_shared)) /. float_of_int k)
    in
    let shared_device _ =
      Array.init c (fun j ->
          if j < n then
            (1.0 -. (float_of_int k *. eps_shared_of_solo)) /. float_of_int n
          else eps_shared_of_solo)
    in
    let rows = Array.init (g + 1) (fun i -> if i = 0 then device0 else shared_device i) in
    Instance.create ~d rows
  end
