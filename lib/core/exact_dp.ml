module Q = Numeric.Rational

type result = {
  strategy : Strategy.t;
  sizes : int array;
  expected_paging : Q.t;
}

let solve ?(objective = Objective.Find_all) ?(cancel = Cancel.never) inst
    ~order =
  let c = inst.Instance.Exact.c in
  let d = Stdlib.min inst.Instance.Exact.d c in
  let m = inst.Instance.Exact.m in
  if Array.length order <> c then
    invalid_arg "Exact_dp.solve: order length mismatch";
  let seen = Array.make c false in
  Array.iter
    (fun j ->
      if j < 0 || j >= c || seen.(j) then
        invalid_arg "Exact_dp.solve: order is not a permutation"
      else seen.(j) <- true)
    order;
  (* Prefix success probabilities, exactly. *)
  let f = Array.make (c + 1) Q.zero in
  let acc = Array.make m Q.zero in
  f.(0) <- Objective.success_exact objective (Array.make m Q.zero);
  for j = 1 to c do
    let cell = order.(j - 1) in
    for i = 0 to m - 1 do
      acc.(i) <- Q.add acc.(i) inst.Instance.Exact.p.(i).(cell)
    done;
    f.(j) <- Objective.success_exact objective (Array.copy acc)
  done;
  (* e.(l).(k): optimal expected cells paged over the last k cells with
     l rounds, conditioned on reaching them (None = unreachable). *)
  let e = Array.make_matrix (d + 1) (c + 1) None in
  let x = Array.make_matrix (d + 1) (c + 1) 0 in
  for k = 1 to c do
    e.(1).(k) <- Some (Q.of_int k);
    x.(1).(k) <- k
  done;
  for l = 2 to d do
    for k = l to c do
      Cancel.check cancel;
      let tail_start = c - k in
      let denom = Q.sub Q.one f.(tail_start) in
      for v = 1 to k - l + 1 do
        match e.(l - 1).(k - v) with
        | None -> ()
        | Some tail ->
          let cont =
            if Q.sign denom <= 0 then Q.zero
            else Q.div (Q.sub Q.one f.(tail_start + v)) denom
          in
          let cost = Q.add (Q.of_int v) (Q.mul cont tail) in
          (match e.(l).(k) with
           | Some best when Q.compare best cost <= 0 -> ()
           | _ ->
             e.(l).(k) <- Some cost;
             x.(l).(k) <- v)
      done
    done
  done;
  match e.(d).(c) with
  | None -> invalid_arg "Exact_dp.solve: no feasible strategy"
  | Some expected_paging ->
    let sizes = Array.make d 0 in
    let k = ref c in
    for l = d downto 1 do
      let v = x.(l).(!k) in
      sizes.(d - l) <- v;
      k := !k - v
    done;
    let strategy = Strategy.of_sizes ~order ~sizes in
    { strategy; sizes; expected_paging }

let greedy ?objective ?cancel inst =
  solve ?objective ?cancel inst ~order:(Instance.Exact.weight_order inst)
