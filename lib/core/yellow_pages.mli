(** The Yellow Pages problem (§5): find {e any one} of the m devices.

    Dual to the Conference Call problem. The paper reports (as work in
    progress) an m-approximation based on a heuristic {e different} from
    the cell-weight one, and that the cell-weight heuristic of §4 does
    {e not} offer a constant factor for this objective. *)

(** [natural_heuristic inst] — the §4 heuristic run with the find-any
    objective: weight order + DP. No constant-factor guarantee. *)
val natural_heuristic : Instance.t -> Order_dp.result

(** [best_single_device inst] — for each device [i], order cells by
    p(i,·) and cut with the find-any DP; return the best of the m
    results. This is the m-approximation candidate: the chosen strategy
    is within the single-device optimum for its device, and OPT cannot
    beat every single-device optimum by more than a factor m. *)
val best_single_device : Instance.t -> Order_dp.result

(** [solve inst] = better of {!natural_heuristic} and
    {!best_single_device}. *)
val solve : Instance.t -> Order_dp.result

(** [exhaustive inst] — ground truth via {!Optimal.exhaustive} with the
    find-any objective (small c only). *)
val exhaustive : Instance.t -> Optimal.result

(** [adversarial_instance ~blocks ~d] builds the family showing the
    natural heuristic is not constant-factor for find-any: one "private"
    cell holds device 1 with high probability (high find-any success,
    moderate weight), while [blocks] "shared" cells each hold several of
    the other devices with slightly larger total weight but much smaller
    find-any success. The weight order pages all shared cells first. *)
val adversarial_instance : blocks:int -> d:int -> Instance.t
