(** The NP-hardness machinery of §3, as executable constructions.

    The paper's chain is
    Partition → Quasipartition1 → Conference Call (m = 2, d = 2)
    with a generalized chain through Multipartition/Quasipartition2 for
    any fixed m ≥ 2, d ≥ 2. Implementing the reductions lets the test
    suite and experiment E9 confirm the claimed equivalences on concrete
    instances: a Quasipartition1 instance is positive iff the reduced
    Conference Call instance admits a strategy whose expected paging
    equals the closed-form bound LB of Lemma 3.2 — verified in exact
    rational arithmetic against exhaustive search. *)

module Q := Numeric.Rational

(** {1 Brute-force decision procedures (ground truth)} *)

(** [partition_brute sizes] finds [P] with |P| = g/2 and
    Σ_P = (Σ sizes)/2, if any (g = length, must be even). *)
val partition_brute : int array -> int list option

(** [quasipartition1_brute sizes] finds [I] with |I| = 2c/3 and
    Σ_I = (Σ sizes)/2, if any (c = length, divisible by 3). *)
val quasipartition1_brute : Q.t array -> int list option

(** {1 Lemma 3.2: Quasipartition1 → Conference Call} *)

(** [qp1_to_conference sizes] builds the exact instance with
    p(j) = (1 − 3/(2c) + s(j)/S)/(c − 1/2) and
    q(j) = (1 − s(j)/S)/(c − 1).
    @raise Invalid_argument unless c is divisible by 3, sizes are
    non-negative with positive sum, and every s(j) < S. *)
val qp1_to_conference : Q.t array -> Instance.Exact.t

(** [qp1_lower_bound ~c] = LB = c − f(1/2, 2c/3)/((c−1/2)(c−1)),
    exactly. *)
val qp1_lower_bound : c:int -> Q.t

(** [qp1_answer_via_conference sizes] decides Quasipartition1 by solving
    the reduced Conference Call instance exactly (exhaustive search over
    two-round strategies) and comparing with LB — the forward direction
    of Lemma 3.2 made concrete. Small c only. *)
val qp1_answer_via_conference : Q.t array -> bool

(** {1 Lemma 3.7 (symmetric case): Partition → Quasipartition1} *)

(** [partition_to_qp1 sizes] maps a Partition instance (positive integer
    sizes, even count) to a Quasipartition1 instance: real sizes get a
    2^p summand forcing cardinality g/2, zero-size padding fixes the
    2c/3 cardinality, and two sentinel sizes of 1/3 pin the partition
    sums; everything rescaled to total 1. *)
val partition_to_qp1 : int array -> Q.t array

(** [partition_answer_via_chain sizes] decides Partition through the full
    chain Partition → QP1 → Conference Call → exhaustive + LB test. *)
val partition_answer_via_chain : int array -> bool

(** {1 §3.2: parameters of the Multipartition problem} *)

type multipartition_params = {
  alphas : Q.t array;  (** α₁ … α_{d−1}, exact (they are rational) *)
  rs : Q.t array;  (** group-size fractions r_j = (b_j − b_{j−1})/c *)
  xs : Q.t array;  (** probability-mass fractions x_j of Lemma 3.4 *)
  modulus : Numeric.Bigint.t;  (** M = lcm of the r_j denominators *)
}

(** [multipartition_params ~m ~d] computes the exact parameters that
    §3.2 derives from the Lemma 3.4 recurrence.
    @raise Invalid_argument unless m ≥ 2 and d ≥ 2. *)
val multipartition_params : m:int -> d:int -> multipartition_params

(** {1 Lemma 3.7, general case: Partition → Quasipartition2(m, d)} *)

(** The parameters the Quasipartition2 family is indexed by: the
    modulus M and the fractions (r_u, x_u), (r_v, x_v) of the two groups
    the reduction plays against each other. *)
type qp2_params = {
  qp_modulus : Numeric.Bigint.t;
  qp_ru : Q.t;
  qp_rv : Q.t;
  qp_xu : Q.t;
  qp_xv : Q.t;
}

(** [qp2_params ~m ~d] derives the parameters from
    {!multipartition_params} by the paper's (u, v) selection: sort the
    x's non-increasingly, take the two final positions, let u be the one
    with the smaller group fraction r. *)
val qp2_params : m:int -> d:int -> qp2_params

(** [qp1_params] — M = 3, r = (1/3, 2/3), x = (1/2, 1/2): the values for
    which the paper notes Quasipartition2 {e becomes} Quasipartition1.
    (These come from the Lemma 3.1/3.2 reduction; note they differ from
    the Lemma 3.4-derived [qp2_params ~m:2 ~d:2].) *)
val qp1_params : qp2_params

(** A Quasipartition2 instance: does a subset of exactly [cardinality]
    sizes sum to [target_fraction] of the total? *)
type qp2_instance = {
  q_sizes : Q.t array;
  q_cardinality : int;
  q_target_fraction : Q.t;  (** x_v / (x_u + x_v) *)
}

(** [partition_to_qp2 ~params sizes] executes the Lemma 3.7 construction:
    real sizes get a 2^p summand, zero padding fixes cardinalities, two
    sentinel sizes pin the partition sums, everything rescaled to total
    1. With {!qp1_params} this matches {!partition_to_qp1}.
    @raise Invalid_argument on empty/odd/non-positive input. *)
val partition_to_qp2 : params:qp2_params -> int array -> qp2_instance

(** [quasipartition2_brute inst] decides the instance by multiset-aware
    search (identical sizes — the paddings — are treated as one group,
    so the zero padding does not blow up the search). *)
val quasipartition2_brute : qp2_instance -> bool
