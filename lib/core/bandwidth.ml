let feasible ~c ~d ~b = b >= 1 && c <= b * d

let solve ?objective ?cancel inst ~b =
  Order_dp.solve ?objective ?cancel ~max_group:b inst
    ~order:(Instance.weight_order inst)

let exhaustive ?objective inst ~b =
  Optimal.exhaustive ?objective ~max_group:b inst

let sweep inst ~bs =
  Array.map
    (fun b ->
      if feasible ~c:inst.Instance.c ~d:inst.Instance.d ~b then
        (solve inst ~b).Order_dp.expected_paging
      else nan)
    bs
