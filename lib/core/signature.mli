(** The Signature problem (§5): find any [k] of the [m] devices —
    "finding k managers out of m to sign a document". [k = m] is the
    Conference Call problem and [k = 1] the Yellow Pages problem. *)

(** [solve inst ~k] — the cell-weight heuristic with the find-k
    objective (the prefix success probability is a Poisson–binomial
    tail).
    @raise Invalid_argument unless 1 ≤ k ≤ m. *)
val solve : Instance.t -> k:int -> Order_dp.result

(** [exhaustive inst ~k] — ground truth for small c. *)
val exhaustive : Instance.t -> k:int -> Optimal.result

(** [sweep inst] — heuristic expected paging for every k = 1..m;
    the interpolation curve of experiment E13. *)
val sweep : Instance.t -> float array

(** [canonical_key ?quantum ~objective inst] — a stable hex digest
    identifying the {e problem} an instance poses, for result caches:
    two instances that differ only by device (row) order, or by float
    noise below the [quantum] grid (default [1e-9]), share a key. The
    key covers [m], [c], [d], the objective, the quantum and the
    row-sorted quantized matrix. Instances within one quantum of each
    other intentionally collide — a cache keyed on this may return the
    strategy of a sub-quantum neighbour.
    @raise Invalid_argument when [quantum] is not positive and finite. *)
val canonical_key : ?quantum:float -> objective:Objective.t -> Instance.t -> string
