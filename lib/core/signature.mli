(** The Signature problem (§5): find any [k] of the [m] devices —
    "finding k managers out of m to sign a document". [k = m] is the
    Conference Call problem and [k = 1] the Yellow Pages problem. *)

(** [solve inst ~k] — the cell-weight heuristic with the find-k
    objective (the prefix success probability is a Poisson–binomial
    tail).
    @raise Invalid_argument unless 1 ≤ k ≤ m. *)
val solve : Instance.t -> k:int -> Order_dp.result

(** [exhaustive inst ~k] — ground truth for small c. *)
val exhaustive : Instance.t -> k:int -> Optimal.result

(** [sweep inst] — heuristic expected paging for every k = 1..m;
    the interpolation curve of experiment E13. *)
val sweep : Instance.t -> float array
