(** Search objectives: when does paging stop?

    The paper's Conference Call problem stops when {e all} devices are
    found. §5 names two generalizations: the Yellow Pages problem (stop at
    the first device) and the Signature problem (stop after any [k] of the
    [m] devices). All solvers in this library are parameterized by the
    objective, since the DP of Lemma 4.7 only needs the probability that
    the stopping condition holds within a prefix of cells. *)

type t =
  | Find_all  (** Conference Call: every device must be found *)
  | Find_any  (** Yellow Pages: any single device suffices *)
  | Find_at_least of int  (** Signature: any [k] devices, 1 ≤ k ≤ m *)

(** [validate t ~m] checks the objective against the device count. *)
val validate : t -> m:int -> (unit, string) result

(** [success t probs] is the probability that the stopping condition holds
    when device [i] independently lies inside the searched prefix with
    probability [probs.(i)]. [Find_all] is the product, [Find_any] is
    1 − Π(1 − pᵢ), and [Find_at_least k] is the Poisson–binomial upper
    tail computed by dynamic programming. *)
val success : t -> float array -> float

(** [success_into t ~src ~off ~n ~dp ~dst ~di] is {!success} on the flat
    hot path: the [n] prefix masses are read from [src] starting at
    [off] and the result is written into [dst.(di)]. Bit-identical to
    [success] (same fold order, same compensated tail) and
    allocation-free — results travel through a [floatarray] slot
    because ocamlopt boxes float returns across function boundaries.
    [dp] is scratch of length at least [n + 1], used only by
    [Find_at_least]. *)
val success_into :
  t ->
  src:floatarray ->
  off:int ->
  n:int ->
  dp:floatarray ->
  dst:floatarray ->
  di:int ->
  unit

(** Exact-rational version of {!success}. *)
val success_exact : t -> Numeric.Rational.t array -> Numeric.Rational.t

(** [found_enough t ~m ~found] decides the stopping condition on a
    concrete outcome with [found] devices already located. *)
val found_enough : t -> m:int -> found:int -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
