(** The Quadratic Assignment Problem, and the paper's §5.1 connection.

    QAP (Koopmans–Beckermann): given two c×c matrices A and B, find a
    permutation π maximizing Σ_{x,y} A(x,y)·B(π(x),π(y)).

    §5.1 notes that a QAP solver solves the Conference Call problem for
    two devices (polynomially for constant d). The construction this
    module implements: fix group sizes s₁…s_d and let slot u belong to
    round r(u). For m = 2,

    EP = c − Σ_r |S_{r+1}|·P₁(L_r)·P₂(L_r)
       = c − Σ_{x,y} p₁(x)·p₂(y)·(c − b_{max(r(π(x)), r(π(y)))})

    where b_r is the cumulative size of the first r groups — so with
    A(x,y) = p₁(x)·p₂(y) and B(u,v) = c − b_{max(r(u), r(v))}, maximizing
    the QAP objective minimizes expected paging. Sweeping all O(c^{d−1})
    size vectors covers the whole strategy space. *)

type t = private { size : int; a : float array array; b : float array array }

(** [create a b] validates two square same-size matrices. *)
val create : float array array -> float array array -> t

(** [objective t perm] = Σ_{x,y} A(x,y)·B(perm(x), perm(y)).
    @raise Invalid_argument when [perm] is not a permutation. *)
val objective : t -> int array -> float

(** [identity_permutation t] *)
val identity_permutation : t -> int array

(** [local_search t ~start] — steepest-ascent 2-swaps until a local
    maximum; returns (permutation, objective, evaluations). *)
val local_search : t -> start:int array -> int array * float * int

(** [anneal t rng ~steps ~t0 ~cooling] — simulated annealing over swaps,
    finishing with local search. *)
val anneal :
  t -> Prob.Rng.t -> steps:int -> t0:float -> cooling:float -> int array * float

(** [exhaustive t] — exact maximum over all permutations (size ≤ 9). *)
val exhaustive : t -> int array * float

(** {1 Conference Call (m = 2) through QAP} *)

(** [of_conference inst ~sizes] builds the QAP encoding above.
    @raise Invalid_argument unless [inst.m = 2] and sizes are positive
    summing to c. *)
val of_conference : Instance.t -> sizes:int array -> t

(** [ep_of_objective inst value] = c − value: converts a QAP objective
    value back to expected paging. *)
val ep_of_objective : Instance.t -> float -> float

(** [strategy_of_permutation ~sizes perm] — slot assignment → strategy
    (cell [x] goes to the round owning slot [perm.(x)]). *)
val strategy_of_permutation : sizes:int array -> int array -> Strategy.t

(** [solve_conference_m2 ?rng inst] — full §5.1 pipeline: for every size
    vector (d ≤ 3 keeps this polynomial and fast), build the QAP, run
    annealing + local search, return the best strategy found and its
    expected paging. Heuristic (local search is not exact), but
    unconstrained by any cell order.
    @raise Invalid_argument unless [inst.m = 2]. *)
val solve_conference_m2 : ?rng:Prob.Rng.t -> Instance.t -> Strategy.t * float
