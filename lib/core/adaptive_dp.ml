type result = {
  expected_paging : float;
  policy : Adaptive.policy;
}

let popcount mask =
  let rec go mask acc = if mask = 0 then acc else go (mask lsr 1) (acc + (mask land 1)) in
  go mask 0

let solve ?(objective = Objective.Find_all) ?(cancel = Cancel.never) ?order
    inst =
  let c = inst.Instance.c and m = inst.Instance.m and d = inst.Instance.d in
  (* Work estimate: states (c·2^m·d) times transitions (c·2^m). *)
  let work =
    (float_of_int c ** 2.0) *. (4.0 ** float_of_int m) *. float_of_int d
  in
  if work > 5e8 then invalid_arg "Adaptive_dp.solve: state space too large"
  else begin
    let order =
      match order with
      | Some o -> o
      | None -> Instance.weight_order inst
    in
    if Array.length order <> c then
      invalid_arg "Adaptive_dp.solve: order length mismatch";
    (* prefix_mass i pos: P[device i within the first pos cells]. Flat
       unboxed rows of width c+1 (same addition chain as the old
       [Array.make_matrix] version — values are bit-identical). *)
    let pm = Float.Array.make (m * (c + 1)) 0.0 in
    for i = 0 to m - 1 do
      let row = i * (c + 1) in
      for pos = 1 to c do
        Float.Array.set pm (row + pos)
          (Float.Array.get pm (row + pos - 1)
          +. inst.Instance.p.(i).(order.(pos - 1)))
      done
    done;
    let prefix_mass i pos = Float.Array.get pm ((i * (c + 1)) + pos) in
    let devices_of_mask mask =
      let rec go i acc =
        if i >= m then List.rev acc
        else go (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
      in
      go 0 []
    in
    let memo : (int * int * int, float * int) Hashtbl.t = Hashtbl.create 1024 in
    (* value pos mask l: expected cells paged from here on, given the
       still-missing devices [mask] are each conditioned on lying past
       position [pos], with [l] rounds left. Also returns the optimal
       first-block size. *)
    let rec value pos mask l =
      let found = m - popcount mask in
      if Objective.found_enough objective ~m ~found then 0.0, 0
      else if pos >= c then 0.0, 0
      else if l <= 1 then float_of_int (c - pos), c - pos
      else begin
        match Hashtbl.find_opt memo (pos, mask, l) with
        | Some v -> v
        | None ->
          (* Poll only on memo misses: hits are cheap, and the policy
             closure replays memoized states after the deadline. *)
          Cancel.check cancel;
          let missing = devices_of_mask mask in
          let best = ref infinity and best_x = ref (c - pos) in
          for x = 1 to c - pos do
            (* Per-device probability of appearing in the next block. *)
            let qs =
              List.map
                (fun i ->
                  let denom = 1.0 -. prefix_mass i pos in
                  if denom <= 1e-15 then 1.0
                  else (prefix_mass i (pos + x) -. prefix_mass i pos) /. denom)
                missing
            in
            let qs = Array.of_list qs in
            let missing_arr = Array.of_list missing in
            let k = Array.length missing_arr in
            (* Sum over the 2^k outcomes of which missing devices the
               block reveals. *)
            let expected_tail = ref 0.0 in
            for outcome = 0 to (1 lsl k) - 1 do
              let prob = ref 1.0 in
              let next_mask = ref mask in
              for idx = 0 to k - 1 do
                if outcome land (1 lsl idx) <> 0 then begin
                  prob := !prob *. qs.(idx);
                  next_mask := !next_mask land lnot (1 lsl missing_arr.(idx))
                end
                else prob := !prob *. (1.0 -. qs.(idx))
              done;
              if !prob > 0.0 then begin
                let tail, _ = value (pos + x) !next_mask (l - 1) in
                expected_tail := !expected_tail +. (!prob *. tail)
              end
            done;
            let cost = float_of_int x +. !expected_tail in
            if cost < !best then begin
              best := cost;
              best_x := x
            end
          done;
          Hashtbl.add memo (pos, mask, l) (!best, !best_x);
          !best, !best_x
      end
    in
    let full_mask = (1 lsl m) - 1 in
    let expected_paging, _ = value 0 full_mask d in
    (* Positions of cells within the order, for the policy. *)
    let pos_of_cell = Array.make c 0 in
    Array.iteri (fun idx cell -> pos_of_cell.(cell) <- idx) order;
    let policy ~rounds_left ~remaining ~missing =
      let pos = c - Array.length remaining in
      let mask =
        Array.fold_left (fun acc i -> acc lor (1 lsl i)) 0 missing
      in
      let _, x = value pos mask rounds_left in
      let x = Stdlib.max 1 (Stdlib.min x (Array.length remaining)) in
      let block = Array.sub order pos x in
      (* Defensive: the caller's remaining set must match the order
         suffix for the DP to apply. *)
      Array.iter
        (fun cell ->
          if pos_of_cell.(cell) < pos then
            invalid_arg "Adaptive_dp.policy: remaining cells diverge from order")
        block;
      block
    in
    { expected_paging; policy }
  end

let value ?objective ?cancel ?order inst =
  (solve ?objective ?cancel ?order inst).expected_paging

let unrestricted ?(objective = Objective.Find_all) ?(cancel = Cancel.never)
    inst =
  let c = inst.Instance.c and m = inst.Instance.m and d = inst.Instance.d in
  (* 3^c (set, subset) pairs x 2^m masks x d rounds x 2^m outcomes. *)
  let work =
    (3.0 ** float_of_int c) *. (4.0 ** float_of_int m) *. float_of_int d
  in
  if work > 2e8 then invalid_arg "Adaptive_dp.unrestricted: instance too large"
  else begin
    let full_cells = (1 lsl c) - 1 in
    let full_devices = (1 lsl m) - 1 in
    (* mass.(i).(set): P[device i within the cell set]. Memoized lazily
       per device via bit-DP: mass(set) = mass(set minus lowest bit) +
       p(lowest bit). *)
    let mass =
      Array.init m (fun i ->
          let table = Array.make (full_cells + 1) 0.0 in
          for set = 1 to full_cells do
            let low = set land -set in
            let bit =
              let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
              log2 low 0
            in
            table.(set) <- table.(set lxor low) +. inst.Instance.p.(i).(bit)
          done;
          table)
    in
    let memo : (int * int * int, float) Hashtbl.t = Hashtbl.create 4096 in
    let rec value remaining missing l =
      let found = m - popcount missing in
      if Objective.found_enough objective ~m ~found then 0.0
      else if remaining = 0 then 0.0
      else if l <= 1 then float_of_int (popcount remaining)
      else begin
        match Hashtbl.find_opt memo (remaining, missing, l) with
        | Some v -> v
        | None ->
          Cancel.check cancel;
          let missing_list =
            let rec go i acc =
              if i >= m then List.rev acc
              else
                go (i + 1)
                  (if missing land (1 lsl i) <> 0 then i :: acc else acc)
            in
            go 0 []
          in
          let missing_arr = Array.of_list missing_list in
          let k = Array.length missing_arr in
          let best = ref infinity in
          (* Enumerate non-empty subsets s of the remaining cells. *)
          let s = ref remaining in
          let continue = ref true in
          while !continue do
            if !s <> 0 then begin
              let cost_here = float_of_int (popcount !s) in
              if cost_here < !best then begin
                (* Conditional detection probability per missing device. *)
                let qs =
                  Array.map
                    (fun i ->
                      let denom = mass.(i).(remaining) in
                      if denom <= 1e-15 then 1.0
                      else mass.(i).(!s) /. denom)
                    missing_arr
                in
                let expected_tail = ref 0.0 in
                for outcome = 0 to (1 lsl k) - 1 do
                  let prob = ref 1.0 in
                  let next_missing = ref missing in
                  for idx = 0 to k - 1 do
                    if outcome land (1 lsl idx) <> 0 then begin
                      prob := !prob *. qs.(idx);
                      next_missing :=
                        !next_missing land lnot (1 lsl missing_arr.(idx))
                    end
                    else prob := !prob *. (1.0 -. qs.(idx))
                  done;
                  if !prob > 0.0 then
                    expected_tail :=
                      !expected_tail
                      +. (!prob
                         *. value (remaining lxor !s) !next_missing (l - 1))
                done;
                let total = cost_here +. !expected_tail in
                if total < !best then best := total
              end
            end;
            (* Next subset of [remaining] in decreasing submask order. *)
            if !s = 0 then continue := false
            else s := (!s - 1) land remaining
          done;
          Hashtbl.add memo (remaining, missing, l) !best;
          !best
      end
    in
    value full_cells full_devices (Stdlib.min d c)
  end
