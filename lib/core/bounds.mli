(** Lower bounds on the optimal expected paging.

    These make the approximation-ratio experiments meaningful at sizes
    where exact solving is impossible: LB ≤ OPT ≤ greedy, so
    greedy/LB ≥ greedy/OPT certifies the observed ratio. *)

(** [amgm_dp inst ~objective] is the convexity bound behind Lemma 4.6:
    for any strategy with prefix sizes b_r, the stop probability after
    b_r cells is at most g(W(b_r)) where W(b) is the total weight of the
    b heaviest cells and g caps the objective's success — (x/m)^m for
    find-all (AM–GM, as in the paper), min(1,x) for find-any, min(1,x/k)
    for find-k (Markov). A DP then minimizes
    c − Σ (b_{r+1} − b_r)·g(W(b_r)) over all prefix-size vectors,
    yielding a valid lower bound in O(d·c²). *)
val amgm_dp : ?objective:Objective.t -> Instance.t -> float

(** [occupied_cells inst] — a strategy for find-all must page every
    occupied cell, so EP ≥ Σ_j P[some device in cell j]. Only valid for
    [Find_all]. *)
val occupied_cells : Instance.t -> float

(** [lower_bound ?objective inst] is the best applicable combination. *)
val lower_bound : ?objective:Objective.t -> Instance.t -> float

(** [page_all_upper inst] = c: the d = 1 strategy is always feasible. *)
val page_all_upper : Instance.t -> float
