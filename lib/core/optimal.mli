(** Exact solvers, used as ground truth for the approximation-ratio
    experiments. The problem is NP-hard for every fixed m ≥ 2, d ≥ 2
    (Theorem 3.8), so these are exponential in general: exhaustive
    enumeration of ordered partitions for small c, and a pruned search
    specialized to d = 2 for moderate c. *)

type result = { strategy : Strategy.t; expected_paging : float }

(** [exhaustive ?objective ?max_group inst] enumerates every strategy of
    length at most [inst.d] (all dⁿ round assignments, skipping those
    with an empty round among the used ones) and returns a minimizer.
    Cost O(d^c · m · c); intended for c ≤ ~12.
    @raise Invalid_argument when [c > 16] (guard against runaway cost). *)
val exhaustive :
  ?objective:Objective.t -> ?max_group:int -> Instance.t -> result

(** Exact-rational exhaustive search on an exact instance: returns the
    minimizer and its expected paging as a rational. *)
val exhaustive_exact :
  ?objective:Objective.t ->
  Instance.Exact.t ->
  Strategy.t * Numeric.Rational.t

(** [branch_and_bound_d2 ?objective inst] computes an optimal two-round
    strategy by depth-first search over first-round subsets with an
    admissible pruning bound (success is monotone in the per-device
    prefix masses for every objective); practical to c ≈ 24.
    @raise Invalid_argument when [inst.d <> 2]. *)
val branch_and_bound_d2 : ?objective:Objective.t -> Instance.t -> result

(** [best ?objective inst] picks the cheapest applicable exact method
    (exhaustive for small c, branch-and-bound when d = 2); [None] when
    the instance is too large for exact solving. *)
val best : ?objective:Objective.t -> Instance.t -> result option
