(** Exact solvers, used as ground truth for the approximation-ratio
    experiments. The problem is NP-hard for every fixed m ≥ 2, d ≥ 2
    (Theorem 3.8), so these are exponential in general: exhaustive
    enumeration of ordered partitions for small c, and a pruned search
    specialized to d = 2 for moderate c.

    Every search accepts a {!Cancel.t} token polled in its hot loop, so
    a deadline-driven caller (the {!Runner}) can abandon it mid-search;
    a cancelled search raises {!Cancel.Cancelled}. *)

type result = { strategy : Strategy.t; expected_paging : float }

(** [exhaustive ?objective ?max_group ?cancel ?guard inst] enumerates
    every strategy of length at most [inst.d] (all dⁿ round assignments,
    skipping those with an empty round among the used ones) and returns
    a minimizer. Cost O(d^c · m · c); intended for c ≤ ~12.
    [guard] (default [true]) bounds the instance size; pass
    [~guard:false] only together with a real [cancel] token, letting the
    deadline bound the cost instead.
    @raise Invalid_argument when guarded and [c > 16] or d^c is huge.
    @raise Cancel.Cancelled when the token fires mid-enumeration. *)
val exhaustive :
  ?objective:Objective.t ->
  ?max_group:int ->
  ?cancel:Cancel.t ->
  ?guard:bool ->
  Instance.t ->
  result

(** Exact-rational exhaustive search on an exact instance: returns the
    minimizer and its expected paging as a rational. *)
val exhaustive_exact :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  Instance.Exact.t ->
  Strategy.t * Numeric.Rational.t

(** [branch_and_bound_d2 ?objective ?cancel inst] computes an optimal
    two-round strategy by depth-first search over first-round subsets
    with an admissible pruning bound (success is monotone in the
    per-device prefix masses for every objective); practical to c ≈ 24.
    @raise Invalid_argument when [inst.d <> 2].
    @raise Cancel.Cancelled when the token fires mid-search. *)
val branch_and_bound_d2 :
  ?objective:Objective.t -> ?cancel:Cancel.t -> Instance.t -> result

(** [best ?objective ?cancel ?unguarded inst] picks the cheapest
    applicable exact method (exhaustive for small c, branch-and-bound
    when d = 2); [None] when the instance is too large for exact solving.
    With [~unguarded:true] (runner-only: pair it with a deadline token)
    no instance is "too large" — the search runs until the token fires. *)
val best :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  ?unguarded:bool ->
  Instance.t ->
  result option
