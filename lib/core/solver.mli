(** Uniform front-end over all strategy constructors; used by the CLI,
    the simulator and the benchmark harness. *)

type spec =
  | Greedy  (** the §4 heuristic (Theorem 4.8) *)
  | Page_all  (** the d = 1 / GSM-IS-41 baseline: one round, all cells *)
  | Within_order of int array  (** Lemma 4.7 DP on a fixed cell order *)
  | Bandwidth_limited of int  (** greedy with a per-round cap (§5) *)
  | Exhaustive  (** exact, small c only *)
  | Branch_and_bound  (** exact, d = 2, find-all *)
  | Best_exact  (** cheapest applicable exact method *)
  | Local_search  (** hill-climbing from the greedy solution *)
  | Class_based  (** exact when cells fall into few types *)
  | Robust of { eps : float; tv : float }
      (** re-ranks the fast candidate pool ([Local_search], [Greedy],
          [Page_all]) by worst-case EP over the {!Uncertainty} ball
          ([eps] per entry, [tv] total-variation per row); returns the
          candidate with the best certified bound. The outcome's
          [expected_paging] is still the nominal EP of the chosen
          strategy. Parse as ["robust"], ["robust-<eps>"], or
          ["robust-<eps>:<tv>"]. *)

type outcome = {
  strategy : Strategy.t;
  expected_paging : float;
  exact : bool;  (** whether the strategy is provably optimal *)
}

(** [solve ?objective ?cancel ?unguarded ?arena spec inst] runs the
    chosen method. [cancel] is threaded into the method's hot loop (see
    {!Cancel}); [~unguarded:true] lifts the instance-size guards of the
    exact methods — only meaningful together with a deadline token, as
    the {!Runner} does.

    [arena] routes [Greedy], [Page_all], [Within_order],
    [Bandwidth_limited], [Local_search] (and the [Robust] re-rank over
    them) through the allocation-free {!Flat} hot path, reusing the
    arena's scratch across solves. Results are bit-identical to the
    legacy list path (test_flat pins this); solvers without a flat
    mirror ignore the arena.
    @raise Invalid_argument when the method does not apply (e.g.
    [Best_exact] on a huge instance, [Branch_and_bound] with d ≠ 2).
    @raise Cancel.Cancelled when the token fires before a non-anytime
    method finishes ([Local_search] instead returns best-so-far). *)
val solve :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  ?unguarded:bool ->
  ?arena:Flat.t ->
  spec ->
  Instance.t ->
  outcome

val spec_of_string : string -> (spec, string) result
val spec_to_string : spec -> string

(** All parameterless specs, for CLI listings and comparison sweeps. *)
val basic_specs : spec list

(** The candidate pool a {!Robust} solve re-ranks by worst-case EP. *)
val robust_candidates : spec list
