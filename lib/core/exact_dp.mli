(** The Lemma 4.7 dynamic program in exact rational arithmetic.

    Float ties can silently change which cut the DP picks (the §4.3
    instance is decided by ties); this variant removes the doubt for
    reduction instances and other rational inputs. O(d·c²) rational
    operations — intended for small c. *)

type result = {
  strategy : Strategy.t;
  sizes : int array;
  expected_paging : Numeric.Rational.t;
}

(** [solve ?objective ?cancel inst ~order] — optimal cut of [order] into
    at most [inst.d] groups, exactly. Objectives as in {!Order_dp}.
    Rational arithmetic on adversarial inputs can blow up in digit count,
    so the (l, k) loop polls [cancel].
    @raise Invalid_argument when [order] is not a permutation.
    @raise Cancel.Cancelled when the token fires mid-DP. *)
val solve :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  Instance.Exact.t ->
  order:int array ->
  result

(** [greedy ?objective ?cancel inst] — the §4 heuristic end-to-end in
    exact arithmetic: weight order (exact comparisons, ties by index) +
    exact DP. *)
val greedy :
  ?objective:Objective.t -> ?cancel:Cancel.t -> Instance.Exact.t -> result
