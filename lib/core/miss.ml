let check_pq p q =
  if Array.length p <> Array.length q then
    invalid_arg "Miss: p and q must have the same length"
  else if Array.exists (fun x -> x <= 0.0 || x > 1.0) q then
    invalid_arg "Miss: detection probabilities must be in (0, 1]"

(* Greedy index rule via a priority list: the next look goes to the cell
   with the largest remaining marginal p(j)·q(j)·(1-q(j))^(looks so far). *)
let optimal_look_sequence ~horizon p q =
  check_pq p q;
  if horizon < 0 then invalid_arg "Miss: negative horizon"
  else begin
    let c = Array.length p in
    let marginal = Array.init c (fun j -> p.(j) *. q.(j)) in
    let seq = Array.make horizon 0 in
    for t = 0 to horizon - 1 do
      let best = ref 0 in
      for j = 1 to c - 1 do
        if marginal.(j) > marginal.(!best) then best := j
      done;
      seq.(t) <- !best;
      marginal.(!best) <- marginal.(!best) *. (1.0 -. q.(!best))
    done;
    seq
  end

let detection_curve p q looks =
  check_pq p q;
  let c = Array.length p in
  let undetected = Array.copy p in
  let curve = Array.make (Array.length looks + 1) 0.0 in
  let detected = ref 0.0 in
  Array.iteri
    (fun t j ->
      if j < 0 || j >= c then invalid_arg "Miss.detection_curve: bad cell"
      else begin
        detected := !detected +. (undetected.(j) *. q.(j));
        undetected.(j) <- undetected.(j) *. (1.0 -. q.(j));
        curve.(t + 1) <- !detected
      end)
    looks;
  curve

let expected_looks ~horizon p q =
  let seq = optimal_look_sequence ~horizon p q in
  let curve = detection_curve p q seq in
  let e = ref 0.0 in
  for t = 0 to horizon - 1 do
    e := !e +. (1.0 -. curve.(t))
  done;
  !e, curve.(horizon)

type schedule = int array array

let repeat_strategy strategy ~cycles =
  if cycles < 1 then invalid_arg "Miss.repeat_strategy: cycles must be >= 1"
  else begin
    let groups = Strategy.groups strategy in
    Array.concat (List.init cycles (fun _ -> groups))
  end

let page_round rng ~q ~in_group ~positions ~found =
  if q <= 0.0 || q > 1.0 then invalid_arg "Miss.page_round: q out of range"
  else begin
    let newly = ref 0 in
    Array.iteri
      (fun i pos ->
        if
          (not found.(i))
          && in_group pos
          && Prob.Rng.unit_float rng < q
        then begin
          found.(i) <- true;
          incr newly
        end)
      positions;
    !newly
  end

let simulate ?(objective = Objective.Find_all) inst ~q ~schedule rng ~trials =
  if q <= 0.0 || q > 1.0 then invalid_arg "Miss.simulate: q out of range"
  else begin
    let m = inst.Instance.m and c = inst.Instance.c in
    let tables =
      Array.init m (fun i -> Prob.Sampling.create inst.Instance.p.(i))
    in
    let acc = Prob.Stats.Acc.create () in
    let successes = ref 0 in
    let positions = Array.make m 0 in
    let found = Array.make m false in
    let in_group = Array.make c false in
    for _ = 1 to trials do
      for i = 0 to m - 1 do
        positions.(i) <- Prob.Sampling.draw tables.(i) rng;
        found.(i) <- false
      done;
      let cost = ref 0 and n_found = ref 0 and done_ = ref false in
      Array.iter
        (fun group ->
          if not !done_ then begin
            Array.fill in_group 0 c false;
            Array.iter (fun j -> in_group.(j) <- true) group;
            cost := !cost + Array.length group;
            n_found :=
              !n_found
              + page_round rng ~q
                  ~in_group:(fun j -> in_group.(j))
                  ~positions ~found;
            if Objective.found_enough objective ~m ~found:!n_found then
              done_ := true
          end)
        schedule;
      if !done_ then incr successes;
      Prob.Stats.Acc.add acc (float_of_int !cost)
    done;
    Prob.Stats.Acc.summary acc, float_of_int !successes /. float_of_int trials
  end

let single_device_exact inst ~q ~schedule =
  if inst.Instance.m <> 1 then
    invalid_arg "Miss.single_device_exact: requires m = 1"
  else if q <= 0.0 || q > 1.0 then
    invalid_arg "Miss.single_device_exact: q out of range"
  else begin
    (* Track the mass still undetected per cell; the search survives a
       round with probability (remaining mass after that round's
       detections) / 1, and the expected cost telescopes like Lemma 2.1:
       E[cost] = Σ_rounds |group_r| · P[not found before round r]. *)
    let undetected = Array.copy inst.Instance.p.(0) in
    let total = ref 1.0 in
    let cost = ref 0.0 in
    Array.iter
      (fun group ->
        cost := !cost +. (float_of_int (Array.length group) *. !total);
        Array.iter
          (fun j ->
            total := !total -. (undetected.(j) *. q);
            undetected.(j) <- undetected.(j) *. (1.0 -. q))
          group)
      schedule;
    !cost, 1.0 -. !total
  end
