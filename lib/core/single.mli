(** Optimal paging for a single device (m = 1).

    This case is solvable in polynomial time [Goodman–Krishnan–Sugla;
    Madhavapeddy et al.; Rose–Yates]: sort the cells by non-increasing
    probability and cut the sequence with the DP of Lemma 4.7. The paper
    uses it as the easy baseline that the Conference Call problem
    generalizes (§1.3). *)

(** [solve inst] for an instance with [inst.m = 1].
    @raise Invalid_argument when [inst.m <> 1]. *)
val solve : Instance.t -> Order_dp.result

(** [solve_distribution ~d p] builds a one-device instance from the
    distribution [p] and solves it. *)
val solve_distribution : d:int -> float array -> Order_dp.result

(** [uniform_ep ~c ~d] is the optimal expected paging for a uniform
    single device in closed form: with near-equal group sizes
    c = q·d + r, EP = c − Σ_{i=1}^{d−1} size_{i+1}·(b_i/c).
    For d = 2 and even c this is the paper's 3c/4 example (§1.1). *)
val uniform_ep : c:int -> d:int -> float

(** [uniform_sizes ~c ~d] are optimal group sizes for the uniform case. *)
val uniform_sizes : c:int -> d:int -> int array
