(* Allocation-free solver hot path on flat unboxed float arrays.

   One arena holds every scratch buffer the order-DP (Fig. 1 / Lemma
   4.7), the coarse metro-scale DP and the local search need, pre-sized
   at [prepare] time and reused across solves. After a [prepare_*] call
   the [run_*] entry points allocate zero minor-heap words: all float
   state lives in [floatarray]s, all float math is hand-inlined (ocamlopt
   boxes floats crossing non-inlined function boundaries), and scalar
   results travel through the [out] slots instead of return values.

   Every computation here is an op-for-op mirror of the legacy list
   path ([Order_dp], [Strategy], [Local_search]): the same Neumaier
   compensation sequence for prefix masses, the same fold order inside
   [Objective.success_into], the same DP scan and tie-breaks, and — for
   the hill climb — the same apply/evaluate/revert move protocol whose
   floating-point drift feeds later evaluations. Results are therefore
   bit-identical to the legacy implementations, which stay alive as the
   differential oracle (test_flat pins this across instances, solver
   specs and domains).

   The delta-EP machinery ([Ls], [run_hill_climb_fast]) additionally
   maintains per-round survivor prefixes incrementally so a local-search
   move is evaluated in O(affected rounds · m) instead of a full
   O(rounds · m) re-evaluation per candidate; DESIGN §13 carries the
   correctness argument. *)

module FA = Float.Array

type t = {
  (* ---- binding ---- *)
  mutable bound_inst : Instance.t option;
  mutable pmat : float array array;  (* = inst.p, cached to skip the option *)
  mutable objective : Objective.t;
  mutable m : int;
  mutable c : int;
  mutable d : int;
  (* ---- prepared order ---- *)
  mutable order : int array;  (* exact length c *)
  mutable order_is_weight : bool;
  mutable weights : FA.t;  (* cell weights, valid iff weights_ok *)
  mutable weights_ok : bool;
  (* ---- full-resolution prefix success table ---- *)
  mutable table : FA.t;  (* length c+1, valid iff table_ok *)
  mutable cum : FA.t;  (* length c+1: cumulative unit cost *)
  mutable table_ok : bool;
  (* ---- coarse (metro) boundary table ---- *)
  mutable coarse_block : int;
  mutable nblocks : int;
  mutable ftab_c : FA.t;  (* nblocks+1 boundary success values *)
  mutable cum_c : FA.t;  (* nblocks+1 cumulative cell cost *)
  mutable coarse_ok : bool;
  (* ---- per-device scratch ---- *)
  mutable acc : FA.t;  (* m: Neumaier running sums *)
  mutable comp : FA.t;  (* m: Neumaier compensations *)
  mutable masses : FA.t;  (* m: materialized prefix masses *)
  mutable dp : FA.t;  (* m+1: Poisson-binomial scratch *)
  (* ---- DP matrices, flattened rows of width c+1 (or nblocks+1) ---- *)
  mutable e : FA.t;
  mutable x : int array;
  (* ---- results ---- *)
  mutable sizes : int array;  (* capacity d; first [nsizes] entries valid *)
  mutable nsizes : int;
  mutable iters : int;
  (* Climb-loop flag: a [ref] would heap-allocate (it stays live across
     the Out_of_budget handler, which defeats ref unboxing). *)
  mutable improved : bool;
  out : FA.t;
  (* slots: 0 = result/current EP; 1 = success scratch; 2 = full-eval EP;
     3 = delta success scratch; 4 = delta-predicted EP *)
  (* ---- local-search state ---- *)
  mutable ls_rounds : int;
  mutable ls_round_of : int array;  (* capacity c *)
  mutable ls_counts : int array;  (* capacity d *)
  mutable ls_masses : FA.t;  (* m x rounds, device-major [i*rounds + r] *)
  mutable ls_prefix : FA.t;  (* rounds-1 x m, round-major [r*m + i]; only
                                columns 0..rounds-2 are maintained — the
                                EP formula never reads the last round *)
  mutable ls_f : FA.t;  (* per-round success of the prefix, 0..rounds-2 *)
  mutable ls_scratch : FA.t;  (* m *)
  mutable ls_cells : int array;  (* capacity c: seeding scratch *)
}

exception Out_of_budget

let create () =
  {
    bound_inst = None;
    pmat = [||];
    objective = Objective.Find_all;
    m = 0;
    c = 0;
    d = 0;
    order = [||];
    order_is_weight = false;
    weights = FA.create 0;
    weights_ok = false;
    table = FA.create 0;
    cum = FA.create 0;
    table_ok = false;
    coarse_block = 0;
    nblocks = 0;
    ftab_c = FA.create 0;
    cum_c = FA.create 0;
    coarse_ok = false;
    acc = FA.create 0;
    comp = FA.create 0;
    masses = FA.create 0;
    dp = FA.create 0;
    e = FA.create 0;
    x = [||];
    sizes = [||];
    nsizes = 0;
    iters = 0;
    improved = false;
    out = FA.make 8 0.0;
    ls_rounds = 0;
    ls_round_of = [||];
    ls_counts = [||];
    ls_masses = FA.create 0;
    ls_prefix = FA.create 0;
    ls_f = FA.create 0;
    ls_scratch = FA.create 0;
    ls_cells = [||];
  }

let dls_key = Domain.DLS.new_key (fun () -> create ())
let domain_arena () = Domain.DLS.get dls_key

let fa_cap fa n = if FA.length fa >= n then fa else FA.create n
let ia_cap a n = if Array.length a >= n then a else Array.make n 0

(* Bind the arena to an instance + objective, resizing buffers and
   invalidating whatever the change makes stale. Buffer growth happens
   only here — the run_* cores never allocate. *)
let bind a ~objective inst =
  let rebound =
    match a.bound_inst with Some b -> not (b == inst) | None -> true
  in
  if rebound then begin
    let m = inst.Instance.m and c = inst.Instance.c and d = inst.Instance.d in
    if m <= 0 then invalid_arg "Flat.prepare: no devices (m = 0)";
    if c <= 0 then invalid_arg "Flat.prepare: no cells (c = 0)";
    a.bound_inst <- Some inst;
    a.pmat <- inst.Instance.p;
    a.m <- m;
    a.c <- c;
    a.d <- d;
    (* [order] stays exact-length (Strategy.of_sizes reads its length);
       everything else only needs capacity. *)
    if Array.length a.order <> c then a.order <- Array.make c 0;
    a.weights <- fa_cap a.weights c;
    a.table <- fa_cap a.table (c + 1);
    a.cum <- fa_cap a.cum (c + 1);
    a.acc <- fa_cap a.acc m;
    a.comp <- fa_cap a.comp m;
    a.masses <- fa_cap a.masses m;
    a.dp <- fa_cap a.dp (m + 1);
    a.e <- fa_cap a.e ((d + 1) * (c + 1));
    a.x <- ia_cap a.x ((d + 1) * (c + 1));
    a.sizes <- ia_cap a.sizes (Stdlib.max 1 d);
    a.ls_round_of <- ia_cap a.ls_round_of c;
    a.ls_counts <- ia_cap a.ls_counts (Stdlib.max 1 d);
    a.ls_masses <- fa_cap a.ls_masses (m * Stdlib.max 1 d);
    a.ls_prefix <- fa_cap a.ls_prefix (m * Stdlib.max 1 d);
    a.ls_f <- fa_cap a.ls_f (Stdlib.max 1 d);
    a.ls_scratch <- fa_cap a.ls_scratch m;
    a.ls_cells <- ia_cap a.ls_cells c;
    a.weights_ok <- false;
    a.order_is_weight <- false;
    a.table_ok <- false;
    a.coarse_ok <- false
  end;
  if a.objective <> objective then begin
    a.objective <- objective;
    a.table_ok <- false;
    a.coarse_ok <- false
  end

(* Cell weights, accumulated row-major for cache locality. Per cell the
   additions happen in device order 0..m-1 — the same sequence as the
   legacy column-walking [Instance.cell_weight] — so each weight is
   bit-identical. *)
let compute_weights a =
  let m = a.m and c = a.c in
  for j = 0 to c - 1 do
    FA.set a.weights j 0.0
  done;
  for i = 0 to m - 1 do
    let row = a.pmat.(i) in
    for j = 0 to c - 1 do
      FA.set a.weights j (FA.get a.weights j +. row.(j))
    done
  done;
  a.weights_ok <- true

let compute_weight_order a =
  if not a.weights_ok then compute_weights a;
  let c = a.c in
  for j = 0 to c - 1 do
    a.order.(j) <- j
  done;
  (* Same comparator as [Instance.weight_order_of] over the same
     (deterministically recomputed) weights: identical permutation. *)
  let w = a.weights in
  let cmp p q =
    let wp = FA.get w p and wq = FA.get w q in
    if wp <> wq then compare wq wp else compare p q
  in
  Array.sort cmp a.order;
  a.order_is_weight <- true;
  a.table_ok <- false;
  a.coarse_ok <- false

(* Full-resolution prefix success table: mirror of
   [Order_dp.prefix_success_table] — one continuous Neumaier chain per
   device over the order, success evaluated after every cell. *)
let compute_table a =
  let m = a.m and c = a.c in
  for i = 0 to m - 1 do
    FA.set a.acc i 0.0;
    FA.set a.comp i 0.0;
    FA.set a.masses i 0.0
  done;
  Objective.success_into a.objective ~src:a.masses ~off:0 ~n:m ~dp:a.dp
    ~dst:a.table ~di:0;
  for j = 1 to c do
    let cell = a.order.(j - 1) in
    for i = 0 to m - 1 do
      let sum = FA.get a.acc i and cmp = FA.get a.comp i in
      let p = a.pmat.(i).(cell) in
      let s = sum +. p in
      let cmp =
        if abs_float sum >= abs_float p then cmp +. (sum -. s +. p)
        else cmp +. (p -. s +. sum)
      in
      FA.set a.acc i s;
      FA.set a.comp i cmp;
      FA.set a.masses i (s +. cmp)
    done;
    Objective.success_into a.objective ~src:a.masses ~off:0 ~n:m ~dp:a.dp
      ~dst:a.table ~di:j
  done;
  (* Unit cumulative cost, as the legacy DP computes it. *)
  FA.set a.cum 0 0.0;
  for j = 1 to c do
    FA.set a.cum j (FA.get a.cum (j - 1) +. 1.0)
  done;
  a.table_ok <- true

(* Coarse boundary table: the same Neumaier chain, with the success
   fold evaluated only at block boundaries. Skipped evaluations never
   touch the per-device chain, so each boundary entry is bit-identical
   to the corresponding full-table entry — this is what makes the
   O(m·c) pass a once-per-instance cost instead of a per-solve one. *)
let compute_coarse a ~block =
  let m = a.m and c = a.c in
  let nblocks = (c + block - 1) / block in
  a.coarse_block <- block;
  a.nblocks <- nblocks;
  a.ftab_c <- fa_cap a.ftab_c (nblocks + 1);
  a.cum_c <- fa_cap a.cum_c (nblocks + 1);
  a.e <- fa_cap a.e ((a.d + 1) * (Stdlib.max (a.c + 1) (nblocks + 1)));
  a.x <- ia_cap a.x ((a.d + 1) * (Stdlib.max (a.c + 1) (nblocks + 1)));
  let boundary u = Stdlib.min c (u * block) in
  for i = 0 to m - 1 do
    FA.set a.acc i 0.0;
    FA.set a.comp i 0.0;
    FA.set a.masses i 0.0
  done;
  Objective.success_into a.objective ~src:a.masses ~off:0 ~n:m ~dp:a.dp
    ~dst:a.ftab_c ~di:0;
  let u = ref 1 in
  for j = 1 to c do
    let cell = a.order.(j - 1) in
    for i = 0 to m - 1 do
      let sum = FA.get a.acc i and cmp = FA.get a.comp i in
      let p = a.pmat.(i).(cell) in
      let s = sum +. p in
      let cmp =
        if abs_float sum >= abs_float p then cmp +. (sum -. s +. p)
        else cmp +. (p -. s +. sum)
      in
      FA.set a.acc i s;
      FA.set a.comp i cmp
    done;
    if !u <= nblocks && j = boundary !u then begin
      for i = 0 to m - 1 do
        FA.set a.masses i (FA.get a.acc i +. FA.get a.comp i)
      done;
      Objective.success_into a.objective ~src:a.masses ~off:0 ~n:m ~dp:a.dp
        ~dst:a.ftab_c ~di:!u;
      incr u
    end
  done;
  FA.set a.cum_c 0 0.0;
  for v = 1 to nblocks do
    FA.set a.cum_c v
      (FA.get a.cum_c (v - 1) +. float_of_int (boundary v - boundary (v - 1)))
  done;
  a.coarse_ok <- true

let prepare ?(objective = Objective.Find_all) a inst =
  bind a ~objective inst;
  if not a.order_is_weight then compute_weight_order a;
  if not a.table_ok then compute_table a

let prepare_coarse ?(objective = Objective.Find_all) ?(block = 16) a inst =
  if block < 1 then invalid_arg "Order_dp.solve_coarse: block must be >= 1";
  bind a ~objective inst;
  if not a.order_is_weight then compute_weight_order a;
  if not (a.coarse_ok && a.coarse_block = block) then compute_coarse a ~block

let prepare_order ?(objective = Objective.Find_all) a inst ~order =
  bind a ~objective inst;
  let c = a.c in
  (* Mirror Order_dp.check_order, including its error strings. *)
  if Array.length order <> c then
    invalid_arg "Order_dp: order must list every cell exactly once";
  let same =
    (not a.order_is_weight)
    &&
    let rec eq j = j >= c || (a.order.(j) = order.(j) && eq (j + 1)) in
    eq 0
  in
  if not (same && a.table_ok) then begin
    let seen = Array.make c false in
    Array.iter
      (fun j ->
        if j < 0 || j >= c || seen.(j) then
          invalid_arg "Order_dp: order is not a permutation of the cells"
        else seen.(j) <- true)
      order;
    Array.blit order 0 a.order 0 c;
    a.order_is_weight <- false;
    a.table_ok <- false;
    a.coarse_ok <- false;
    compute_table a
  end

(* ------------------------------------------------------------------ *)
(* The Fig. 1 DP, mirrored from [Order_dp.solve_with_prefix_success]
   onto the arena's flat matrices. [n] is the number of DP positions
   (cells, or blocks on the coarse path), [dd] the round budget, [b]
   the per-group cap, [ftab]/[cumtab] the prefix-success and
   cumulative-cost tables. Writes group sizes (in positions) into
   [a.sizes], the optimum into [a.out.(0)]. *)

let run_dp_core a ~n ~dd ~b ~ftab ~cumtab ~cancel =
  if b < 1 then invalid_arg "Order_dp: max_group must be >= 1";
  if n > b * dd then invalid_arg "Order_dp: bandwidth constraint infeasible";
  let width = n + 1 in
  let e = a.e and x = a.x in
  for idx = 0 to ((dd + 1) * width) - 1 do
    FA.set e idx infinity;
    x.(idx) <- 0
  done;
  for k = 1 to Stdlib.min n b do
    FA.set e (width + k) (FA.get cumtab n -. FA.get cumtab (n - k));
    x.(width + k) <- k
  done;
  for l = 2 to dd do
    for k = l to n do
      Cancel.check cancel;
      let v_lo = Stdlib.max 1 (k - (b * (l - 1))) in
      let v_hi = Stdlib.min b (k - l + 1) in
      let tail_start = n - k in
      let denom = 1.0 -. FA.get ftab tail_start in
      let row = l * width and prev = (l - 1) * width in
      for v = v_lo to v_hi do
        let cont =
          if denom <= 0.0 then 0.0
          else (1.0 -. FA.get ftab (tail_start + v)) /. denom
        in
        let cost =
          FA.get cumtab (tail_start + v)
          -. FA.get cumtab tail_start
          +. (cont *. FA.get e (prev + (k - v)))
        in
        if cost < FA.get e (row + k) then begin
          FA.set e (row + k) cost;
          x.(row + k) <- v
        end
      done
    done
  done;
  let rounds = Stdlib.min dd n in
  if FA.get e ((rounds * width) + n) = infinity then
    invalid_arg "Order_dp: no feasible strategy";
  let k = ref n in
  for l = rounds downto 1 do
    let v = x.((l * width) + !k) in
    a.sizes.(rounds - l) <- v;
    k := !k - v
  done;
  a.nsizes <- rounds;
  FA.set a.out 0 (FA.get e ((rounds * width) + n))

(* Internal cores take [cancel] as a required argument: an optional
   ~cancel:Cancel.never at a call site allocates [Some never] (the token
   is a mutable record, so the option cell cannot be statically
   allocated), which would break the zero-allocation guarantee. *)
let order_dp_core a cancel b =
  if not a.table_ok then invalid_arg "Flat.run_order_dp: arena not prepared";
  run_dp_core a ~n:a.c ~dd:a.d ~b ~ftab:a.table ~cumtab:a.cum ~cancel

let run_order_dp ?(cancel = Cancel.never) ?max_group a =
  order_dp_core a cancel (match max_group with None -> a.c | Some b -> b)

let greedy_core a cancel =
  if not a.order_is_weight then
    invalid_arg "Flat.run_greedy: arena not prepared with the weight order";
  order_dp_core a cancel a.c

let run_greedy ?(cancel = Cancel.never) a = greedy_core a cancel

let run_coarse ?(cancel = Cancel.never) a =
  if not a.coarse_ok then invalid_arg "Flat.run_coarse: arena not prepared";
  let nblocks = a.nblocks in
  let dd = Stdlib.min a.d nblocks in
  run_dp_core a ~n:nblocks ~dd ~b:nblocks ~ftab:a.ftab_c ~cumtab:a.cum_c
    ~cancel;
  (* Expand block-level sizes back to cells, in place (positions are
     consumed left to right, so each slot is read before overwrite). *)
  let block = a.coarse_block and c = a.c in
  let pos = ref 0 in
  for l = 0 to a.nsizes - 1 do
    let units = a.sizes.(l) in
    let lo = Stdlib.min c (!pos * block)
    and hi = Stdlib.min c ((!pos + units) * block) in
    pos := !pos + units;
    a.sizes.(l) <- hi - lo
  done

let run_page_all a =
  (match a.bound_inst with
  | None -> invalid_arg "Flat.run_page_all: arena not prepared"
  | Some _ -> ());
  a.sizes.(0) <- a.c;
  a.nsizes <- 1;
  (* Lemma 2.1 with one round: EP = c exactly (the legacy Kahan chain
     adds nothing to the initial term). *)
  FA.set a.out 0 (float_of_int a.c)

(* ------------------------------------------------------------------ *)
(* Local search. State mirrors [Local_search.state]; [ls_masses] is
   device-major like the legacy m x rounds matrix. *)

let sort_int_range arr lo len =
  for i = lo + 1 to lo + len - 1 do
    let v = arr.(i) in
    let j = ref (i - 1) in
    while !j >= lo && arr.(!j) > v do
      arr.(!j + 1) <- arr.(!j);
      decr j
    done;
    arr.(!j + 1) <- v
  done

(* Build LS state from the DP result in [a.sizes] over [a.order]:
   chunks sorted ascending (as Strategy.create sorts groups), masses
   accumulated group-by-group in ascending cell order — the exact
   addition sequence of [Local_search.state_of_strategy]. *)
let seed_ls a =
  let rounds = a.nsizes and m = a.m and c = a.c in
  a.ls_rounds <- rounds;
  Array.blit a.order 0 a.ls_cells 0 c;
  let ofs = ref 0 in
  for r = 0 to rounds - 1 do
    sort_int_range a.ls_cells !ofs a.sizes.(r);
    ofs := !ofs + a.sizes.(r)
  done;
  for idx = 0 to (m * rounds) - 1 do
    FA.set a.ls_masses idx 0.0
  done;
  let ofs = ref 0 in
  for r = 0 to rounds - 1 do
    a.ls_counts.(r) <- a.sizes.(r);
    for t = !ofs to !ofs + a.sizes.(r) - 1 do
      let cell = a.ls_cells.(t) in
      a.ls_round_of.(cell) <- r;
      for i = 0 to m - 1 do
        let idx = (i * rounds) + r in
        FA.set a.ls_masses idx (FA.get a.ls_masses idx +. a.pmat.(i).(cell))
      done
    done;
    ofs := !ofs + a.sizes.(r)
  done

(* Full EP of the LS state, mirror of [Local_search.ep]: per-round
   plain (uncompensated) prefix accumulation, result into out.(di). *)
let ls_ep_into a ~di =
  let m = a.m and rounds = a.ls_rounds in
  for i = 0 to m - 1 do
    FA.set a.ls_scratch i 0.0
  done;
  let total = ref (float_of_int a.c) in
  for r = 0 to rounds - 2 do
    for i = 0 to m - 1 do
      FA.set a.ls_scratch i
        (FA.get a.ls_scratch i +. FA.get a.ls_masses ((i * rounds) + r))
    done;
    Objective.success_into a.objective ~src:a.ls_scratch ~off:0 ~n:m ~dp:a.dp
      ~dst:a.out ~di:1;
    total := !total -. (float_of_int a.ls_counts.(r + 1) *. FA.get a.out 1)
  done;
  FA.set a.out di !total

(* Mirror of [Local_search.relocate], including the drift its ±p mass
   updates leave behind (later evaluations read the drifted values — the
   legacy scan does the same, so the climbs stay bit-identical). *)
let ls_relocate a cell target =
  let src = a.ls_round_of.(cell) in
  a.ls_round_of.(cell) <- target;
  a.ls_counts.(src) <- a.ls_counts.(src) - 1;
  a.ls_counts.(target) <- a.ls_counts.(target) + 1;
  let rounds = a.ls_rounds in
  for i = 0 to a.m - 1 do
    let p = a.pmat.(i).(cell) in
    FA.set a.ls_masses ((i * rounds) + src)
      (FA.get a.ls_masses ((i * rounds) + src) -. p);
    FA.set a.ls_masses ((i * rounds) + target)
      (FA.get a.ls_masses ((i * rounds) + target) +. p)
  done

let run_hill_climb ?(cancel = Cancel.never) a =
  (* Seed from the greedy cut, uncancelled — exactly as
     [Local_search.hill_climb] seeds via [Greedy.solve]. *)
  greedy_core a Cancel.never;
  seed_ls a;
  a.iters <- 0;
  ls_ep_into a ~di:0;
  (* out.(0) carries the current EP and out.(5) the best gain of the
     scan round: float refs would box (they stay live across the
     exception handler, which defeats ref unboxing). *)
  let c = a.c in
  a.improved <- true;
  (try
     while a.improved do
       a.improved <- false;
       FA.set a.out 5 1e-12;
       let best_kind = ref 0 and best_u = ref 0 and best_v = ref 0 in
       for cell = 0 to c - 1 do
         let src = a.ls_round_of.(cell) in
         if a.ls_counts.(src) > 1 then
           for target = 0 to a.ls_rounds - 1 do
             if target <> src then begin
               if Cancel.poll cancel then raise Out_of_budget;
               a.iters <- a.iters + 1;
               ls_relocate a cell target;
               ls_ep_into a ~di:2;
               ls_relocate a cell src;
               if FA.get a.out 0 -. FA.get a.out 2 > FA.get a.out 5 then begin
                 FA.set a.out 5 (FA.get a.out 0 -. FA.get a.out 2);
                 best_kind := 1;
                 best_u := cell;
                 best_v := target
               end
             end
           done
       done;
       for p = 0 to c - 1 do
         for q = p + 1 to c - 1 do
           if a.ls_round_of.(p) <> a.ls_round_of.(q) then begin
             if Cancel.poll cancel then raise Out_of_budget;
             a.iters <- a.iters + 1;
             let rp = a.ls_round_of.(p) and rq = a.ls_round_of.(q) in
             ls_relocate a p rq;
             ls_relocate a q rp;
             ls_ep_into a ~di:2;
             ls_relocate a q rq;
             ls_relocate a p rp;
             if FA.get a.out 0 -. FA.get a.out 2 > FA.get a.out 5 then begin
               FA.set a.out 5 (FA.get a.out 0 -. FA.get a.out 2);
               best_kind := 2;
               best_u := p;
               best_v := q
             end
           end
         done
       done;
       if !best_kind = 1 then begin
         ls_relocate a !best_u !best_v;
         ls_ep_into a ~di:0;
         a.improved <- true
       end
       else if !best_kind = 2 then begin
         let ru = a.ls_round_of.(!best_u) and rv = a.ls_round_of.(!best_v) in
         ls_relocate a !best_u rv;
         ls_relocate a !best_v ru;
         ls_ep_into a ~di:0;
         a.improved <- true
       end
     done
   with Out_of_budget -> ());
  a.nsizes <- a.ls_rounds;
  for r = 0 to a.ls_rounds - 1 do
    a.sizes.(r) <- a.ls_counts.(r)
  done

(* ------------------------------------------------------------------ *)
(* Incremental (delta) EP. Invariants, rebuilt by [ls_sync] and
   maintained by the apply functions:
     ls_prefix.(r*m + i) = Σ_{r' <= r} ls_masses.(i*rounds + r'),
                           for r = 0..rounds-2
     ls_f.(r)            = success(objective, ls_prefix column r)
     out.(0)             = c − Σ_{r=0..rounds-2} counts.(r+1)·ls_f.(r)
   A relocate src→tgt perturbs prefix columns r ∈ [min, max) by ±p and
   the count factors at r = src−1 and r = tgt−1; a swap perturbs only
   the columns in between by (p_b − p_a). Everything outside the
   affected window keeps its bits, so the delta touches O(window · m)
   floats instead of O(rounds · m). *)

let ls_sync a =
  let m = a.m and rounds = a.ls_rounds in
  for i = 0 to m - 1 do
    let run = ref 0.0 in
    for r = 0 to rounds - 2 do
      run := !run +. FA.get a.ls_masses ((i * rounds) + r);
      FA.set a.ls_prefix ((r * m) + i) !run
    done
  done;
  for r = 0 to rounds - 2 do
    Objective.success_into a.objective ~src:a.ls_prefix ~off:(r * m) ~n:m
      ~dp:a.dp ~dst:a.ls_f ~di:r
  done;
  let total = ref (float_of_int a.c) in
  for r = 0 to rounds - 2 do
    total := !total -. (float_of_int a.ls_counts.(r + 1) *. FA.get a.ls_f r)
  done;
  FA.set a.out 0 !total

(* Relocate delta. With [apply] the move is committed (state, prefixes,
   per-round successes, maintained EP); without it only out.(4) is
   written. Touches rounds [min−1, max) only. *)
let ls_delta_relocate a cell target ~apply =
  let src = a.ls_round_of.(cell) in
  if src = target then FA.set a.out 4 (FA.get a.out 0)
  else begin
    let m = a.m and rounds = a.ls_rounds in
    let lo = Stdlib.min src target and hi = Stdlib.max src target in
    let new_ep = ref (FA.get a.out 0) in
    for r = Stdlib.max 0 (lo - 1) to Stdlib.min (rounds - 2) (hi - 1) do
      let cnt_old = a.ls_counts.(r + 1) in
      let cnt_new =
        cnt_old
        + (if r + 1 = target then 1 else 0)
        - if r + 1 = src then 1 else 0
      in
      let f_old = FA.get a.ls_f r in
      let f_new =
        if r < lo then f_old
        else begin
          for i = 0 to m - 1 do
            let p = a.pmat.(i).(cell) in
            let dlt = if src < target then -.p else p in
            FA.set a.ls_scratch i (FA.get a.ls_prefix ((r * m) + i) +. dlt)
          done;
          Objective.success_into a.objective ~src:a.ls_scratch ~off:0 ~n:m
            ~dp:a.dp ~dst:a.out ~di:3;
          FA.get a.out 3
        end
      in
      new_ep :=
        !new_ep
        +. (float_of_int cnt_old *. f_old)
        -. (float_of_int cnt_new *. f_new);
      if apply && r >= lo then FA.set a.ls_f r f_new
    done;
    if apply then begin
      ls_relocate a cell target;
      for r = lo to hi - 1 do
        for i = 0 to m - 1 do
          let p = a.pmat.(i).(cell) in
          let dlt = if src < target then -.p else p in
          FA.set a.ls_prefix ((r * m) + i)
            (FA.get a.ls_prefix ((r * m) + i) +. dlt)
        done
      done;
      FA.set a.out 0 !new_ep
    end
    else FA.set a.out 4 !new_ep
  end

(* Swap delta: counts are preserved, so only the prefix columns strictly
   between the two rounds move, each by (p_other − p_this). *)
let ls_delta_swap a ca cb ~apply =
  let ra = a.ls_round_of.(ca) and rb = a.ls_round_of.(cb) in
  if ra = rb then FA.set a.out 4 (FA.get a.out 0)
  else begin
    let m = a.m in
    let lo = Stdlib.min ra rb and hi = Stdlib.max ra rb in
    let new_ep = ref (FA.get a.out 0) in
    for r = lo to hi - 1 do
      let cnt = float_of_int a.ls_counts.(r + 1) in
      let f_old = FA.get a.ls_f r in
      for i = 0 to m - 1 do
        let dlt =
          if ra < rb then a.pmat.(i).(cb) -. a.pmat.(i).(ca)
          else a.pmat.(i).(ca) -. a.pmat.(i).(cb)
        in
        FA.set a.ls_scratch i (FA.get a.ls_prefix ((r * m) + i) +. dlt)
      done;
      Objective.success_into a.objective ~src:a.ls_scratch ~off:0 ~n:m
        ~dp:a.dp ~dst:a.out ~di:3;
      let f_new = FA.get a.out 3 in
      new_ep := !new_ep +. (cnt *. f_old) -. (cnt *. f_new);
      if apply then FA.set a.ls_f r f_new
    done;
    if apply then begin
      ls_relocate a ca rb;
      ls_relocate a cb ra;
      for r = lo to hi - 1 do
        for i = 0 to m - 1 do
          let dlt =
            if ra < rb then a.pmat.(i).(cb) -. a.pmat.(i).(ca)
            else a.pmat.(i).(ca) -. a.pmat.(i).(cb)
          in
          FA.set a.ls_prefix ((r * m) + i)
            (FA.get a.ls_prefix ((r * m) + i) +. dlt)
        done
      done;
      FA.set a.out 0 !new_ep
    end
    else FA.set a.out 4 !new_ep
  end

(* Delta-screened steepest descent: candidate moves are scored through
   the incremental delta in O(window · m) each; the accepted move is
   committed and the invariants fully resynced (one O(rounds · m) pass
   per accepted move — accepted moves are rare next to candidates).
   Same move set, guards and 1e-12 gain threshold as the mirror climb;
   only the (last-ulp) arithmetic of the scores differs. *)
let run_hill_climb_fast ?(cancel = Cancel.never) a =
  greedy_core a Cancel.never;
  seed_ls a;
  ls_sync a;
  a.iters <- 0;
  let c = a.c in
  a.improved <- true;
  (try
     while a.improved do
       a.improved <- false;
       (* out.(5) holds the best gain (a float ref would box: it stays
          live across the exception handler). out.(0) is the maintained
          current EP; out.(4) the delta-predicted EP of the candidate. *)
       FA.set a.out 5 1e-12;
       let best_kind = ref 0 and best_u = ref 0 and best_v = ref 0 in
       for cell = 0 to c - 1 do
         let src = a.ls_round_of.(cell) in
         if a.ls_counts.(src) > 1 then
           for target = 0 to a.ls_rounds - 1 do
             if target <> src then begin
               if Cancel.poll cancel then raise Out_of_budget;
               a.iters <- a.iters + 1;
               ls_delta_relocate a cell target ~apply:false;
               if FA.get a.out 0 -. FA.get a.out 4 > FA.get a.out 5 then begin
                 FA.set a.out 5 (FA.get a.out 0 -. FA.get a.out 4);
                 best_kind := 1;
                 best_u := cell;
                 best_v := target
               end
             end
           done
       done;
       for p = 0 to c - 1 do
         for q = p + 1 to c - 1 do
           if a.ls_round_of.(p) <> a.ls_round_of.(q) then begin
             if Cancel.poll cancel then raise Out_of_budget;
             a.iters <- a.iters + 1;
             ls_delta_swap a p q ~apply:false;
             if FA.get a.out 0 -. FA.get a.out 4 > FA.get a.out 5 then begin
               FA.set a.out 5 (FA.get a.out 0 -. FA.get a.out 4);
               best_kind := 2;
               best_u := p;
               best_v := q
             end
           end
         done
       done;
       if !best_kind = 1 then begin
         ls_delta_relocate a !best_u !best_v ~apply:true;
         ls_sync a;
         a.improved <- true
       end
       else if !best_kind = 2 then begin
         ls_delta_swap a !best_u !best_v ~apply:true;
         ls_sync a;
         a.improved <- true
       end
     done
   with Out_of_budget -> ());
  a.nsizes <- a.ls_rounds;
  for r = 0 to a.ls_rounds - 1 do
    a.sizes.(r) <- a.ls_counts.(r)
  done

(* ------------------------------------------------------------------ *)
(* Result accessors and allocating conveniences. *)

let ep a = FA.get a.out 0
let rounds a = a.nsizes
let size_at a r = a.sizes.(r)
let iterations a = a.iters
let current_order a = Array.copy a.order

let dp_result a =
  let sizes = Array.sub a.sizes 0 a.nsizes in
  let strategy = Strategy.of_sizes ~order:a.order ~sizes in
  { Order_dp.strategy; sizes; expected_paging = FA.get a.out 0 }

let ls_strategy a =
  let r = a.ls_rounds in
  let groups = Array.init r (fun j -> Array.make a.ls_counts.(j) 0) in
  let fill = Array.make r 0 in
  for cell = 0 to a.c - 1 do
    let rr = a.ls_round_of.(cell) in
    groups.(rr).(fill.(rr)) <- cell;
    fill.(rr) <- fill.(rr) + 1
  done;
  Strategy.create groups

let greedy ?objective ?cancel a inst =
  prepare ?objective a inst;
  run_greedy ?cancel a;
  dp_result a

let order_dp ?objective ?max_group ?cancel a inst ~order =
  prepare_order ?objective a inst ~order;
  run_order_dp ?cancel ?max_group a;
  dp_result a

let bandwidth ?objective ?cancel a inst ~b =
  prepare ?objective a inst;
  run_order_dp ?cancel ~max_group:b a;
  dp_result a

let coarse ?objective ?block ?cancel a inst =
  prepare_coarse ?objective ?block a inst;
  run_coarse ?cancel a;
  dp_result a

let hill_climb ?objective ?cancel a inst =
  prepare ?objective a inst;
  run_hill_climb ?cancel a;
  {
    Local_search.strategy = ls_strategy a;
    expected_paging = FA.get a.out 0;
    iterations = a.iters;
  }

let hill_climb_fast ?objective ?cancel a inst =
  prepare ?objective a inst;
  run_hill_climb_fast ?cancel a;
  {
    Local_search.strategy = ls_strategy a;
    expected_paging = FA.get a.out 0;
    iterations = a.iters;
  }

module Ls = struct
  let load ?objective a inst strategy =
    (match Strategy.validate ~c:inst.Instance.c strategy with
    | Ok () -> ()
    | Error reason -> invalid_arg ("Local_search: " ^ reason));
    bind a ~objective:(Option.value objective ~default:Objective.Find_all)
      inst;
    let groups = Strategy.groups strategy in
    let rounds = Array.length groups in
    if rounds > a.d then
      invalid_arg "Flat.Ls.load: more rounds than the delay constraint";
    a.ls_rounds <- rounds;
    let m = a.m in
    for idx = 0 to (m * rounds) - 1 do
      FA.set a.ls_masses idx 0.0
    done;
    Array.iteri
      (fun r group ->
        a.ls_counts.(r) <- Array.length group;
        Array.iter
          (fun cell ->
            a.ls_round_of.(cell) <- r;
            for i = 0 to m - 1 do
              let idx = (i * rounds) + r in
              FA.set a.ls_masses idx
                (FA.get a.ls_masses idx +. a.pmat.(i).(cell))
            done)
          group)
      groups;
    ls_sync a

  let sync = ls_sync
  let ep a = FA.get a.out 0

  let ep_full a =
    ls_ep_into a ~di:2;
    FA.get a.out 2

  let rounds a = a.ls_rounds
  let round_of a cell = a.ls_round_of.(cell)
  let count a r = a.ls_counts.(r)

  let predict_relocate a ~cell ~target =
    ls_delta_relocate a cell target ~apply:false;
    FA.get a.out 4

  let predict_swap a ~p ~q =
    ls_delta_swap a p q ~apply:false;
    FA.get a.out 4

  let apply_relocate a ~cell ~target = ls_delta_relocate a cell target ~apply:true
  let apply_swap a ~p ~q = ls_delta_swap a p q ~apply:true
end
