(** Local-search solvers over the full strategy space.

    The greedy heuristic is confined to cell-weight order; local search
    explores arbitrary ordered partitions and can escape the order
    restriction — on the §4.3 instance it recovers the true optimum
    317/49 that the heuristic misses. Useful as a stronger (unproven)
    solver at sizes where exact search is impossible, and as an
    independent check on the exact solvers at small sizes.

    Moves considered: relocate one cell to another (possibly new empty →
    no, groups stay non-empty) round, and swap two cells between rounds.
    All randomness comes from the supplied generator. *)

type result = {
  strategy : Strategy.t;
  expected_paging : float;
  iterations : int;  (** total move evaluations *)
}

(** [hill_climb ?objective ?seed_strategy ?cancel inst] — steepest-descent
    from the greedy solution (or [seed_strategy]) until no improving move
    exists. Deterministic. Unlike the exact searches, local search is
    anytime: when [cancel] fires mid-climb it returns its best-so-far
    strategy instead of raising — the working state is valid at every
    step, so there is always something to return. *)
val hill_climb :
  ?objective:Objective.t ->
  ?seed_strategy:Strategy.t ->
  ?cancel:Cancel.t ->
  Instance.t ->
  result

(** [anneal ?objective ?cancel inst rng ~steps ~t0 ~cooling] — simulated
    annealing: random relocate/swap moves accepted when improving or
    with probability exp(−Δ/T), T decaying geometrically from [t0] by
    [cooling] per step; returns the best strategy seen. Ends with a
    hill-climb polish. Anytime under [cancel], like {!hill_climb}.
    @raise Invalid_argument when parameters are out of range. *)
val anneal :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  Instance.t ->
  Prob.Rng.t ->
  steps:int ->
  t0:float ->
  cooling:float ->
  result

(** [solve ?objective ?cancel inst rng] — annealing with sensible
    defaults scaled to instance size, then hill-climbing; never worse
    than the greedy heuristic (it starts there). *)
val solve :
  ?objective:Objective.t -> ?cancel:Cancel.t -> Instance.t -> Prob.Rng.t -> result
