type policy =
  rounds_left:int -> remaining:int array -> missing:int array -> int array

let greedy_policy ?objective inst =
  let memo = Hashtbl.create 64 in
  fun ~rounds_left ~remaining ~missing ->
    let key = (rounds_left, Array.to_list remaining, Array.to_list missing) in
    match Hashtbl.find_opt memo key with
    | Some group -> group
    | None ->
      let group =
        if rounds_left <= 1 then Array.copy remaining
        else begin
          let sub =
            Instance.restrict inst ~d:rounds_left ~cells:remaining
              ~devices:missing
          in
          let result = Greedy.solve ?objective sub in
          let first = (Strategy.groups result.Order_dp.strategy).(0) in
          (* Map sub-instance cell indices back to original ids. *)
          Array.map (fun j -> remaining.(j)) first
        end
      in
      Hashtbl.add memo key group;
      group

let oblivious_policy strategy =
  let groups = Strategy.groups strategy in
  let rounds = Array.length groups in
  let total = Array.fold_left (fun acc g -> acc + Array.length g) 0 groups in
  let prefix = Array.make (rounds + 1) 0 in
  for r = 0 to rounds - 1 do
    prefix.(r + 1) <- prefix.(r) + Array.length groups.(r)
  done;
  fun ~rounds_left ~remaining ~missing ->
    ignore rounds_left;
    ignore missing;
    (* Infer the current round from how many cells have been paged. *)
    let paged = total - Array.length remaining in
    let rec find r =
      if r >= rounds then Array.copy remaining
      else if prefix.(r) = paged then groups.(r)
      else find (r + 1)
    in
    find 0

(* Run the policy on one concrete outcome; returns cells paged. *)
let run_outcome ~objective ~m ~d ~c policy positions =
  let rec go ~rounds_left ~remaining ~missing ~found ~cost =
    if Objective.found_enough objective ~m ~found then cost
    else if rounds_left = 0 then cost
    else begin
      let group = policy ~rounds_left ~remaining ~missing in
      let in_group = Array.make c false in
      Array.iter (fun j -> in_group.(j) <- true) group;
      let newly_found =
        Array.fold_left
          (fun acc i -> if in_group.(positions.(i)) then acc + 1 else acc)
          0 missing
      in
      let missing =
        Array.of_list
          (List.filter
             (fun i -> not in_group.(positions.(i)))
             (Array.to_list missing))
      in
      let remaining =
        Array.of_list
          (List.filter (fun j -> not in_group.(j)) (Array.to_list remaining))
      in
      go ~rounds_left:(rounds_left - 1) ~remaining ~missing
        ~found:(found + newly_found)
        ~cost:(cost + Array.length group)
    end
  in
  let remaining = Array.init c (fun j -> j) in
  let missing = Array.init m (fun i -> i) in
  go ~rounds_left:d ~remaining ~missing ~found:0 ~cost:0

let evaluate_exact ?(objective = Objective.Find_all) inst policy =
  let m = inst.Instance.m and c = inst.Instance.c and d = inst.Instance.d in
  let outcomes = float_of_int c ** float_of_int m in
  if outcomes > 2e6 then
    invalid_arg "Adaptive.evaluate_exact: c^m too large"
  else begin
    let positions = Array.make m 0 in
    let total = ref 0.0 in
    let rec enumerate i prob =
      if i = m then begin
        let cost = run_outcome ~objective ~m ~d ~c policy positions in
        total := !total +. (prob *. float_of_int cost)
      end
      else
        for j = 0 to c - 1 do
          positions.(i) <- j;
          enumerate (i + 1) (prob *. inst.Instance.p.(i).(j))
        done
    in
    enumerate 0 1.0;
    !total
  end

let evaluate_monte_carlo ?(objective = Objective.Find_all) inst policy rng
    ~trials =
  let m = inst.Instance.m and c = inst.Instance.c and d = inst.Instance.d in
  let tables =
    Array.init m (fun i -> Prob.Sampling.create inst.Instance.p.(i))
  in
  let acc = Prob.Stats.Acc.create () in
  let positions = Array.make m 0 in
  for _ = 1 to trials do
    for i = 0 to m - 1 do
      positions.(i) <- Prob.Sampling.draw tables.(i) rng
    done;
    let cost = run_outcome ~objective ~m ~d ~c policy positions in
    Prob.Stats.Acc.add acc (float_of_int cost)
  done;
  Prob.Stats.Acc.summary acc

let greedy_adaptive_ep ?objective inst =
  evaluate_exact ?objective inst (greedy_policy ?objective inst)
