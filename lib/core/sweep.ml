type item = { id : string; compute : unit -> string }
type status = [ `Ran | `Replayed | `Recovered ]
type outcome = { id : string; payload : string; status : status }

let shard_path path k = Printf.sprintf "%s.shard%d" path k

(* Leftover shard journals of a crashed run, whatever domain count it
   used — matched by name, not by the current pool size. *)
let shard_leftovers path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".shard" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
    Array.to_list files
    |> List.filter (fun f ->
           String.length f > plen && String.sub f 0 plen = prefix)
    |> List.sort compare
    |> List.map (Filename.concat dir)

let sequential ~journal items =
  List.map
    (fun { id; compute } ->
      let how, payload = Journal.run journal ~id compute in
      { id; payload; status = (how :> status) })
    items

let sharded ~parent ~pool ~journal items =
  let domains = Exec.Pool.size pool in
  (* Recover payloads from shard files a crashed run left behind, then
     clear them: this run re-emits those items through its own shards,
     in its own partition, so the stale files must not survive it. *)
  let cache = Hashtbl.create 64 in
  let leftovers = shard_leftovers (Journal.path journal) in
  List.iter
    (fun p ->
      List.iter
        (fun (id, payload) -> Hashtbl.replace cache id payload)
        (Journal.read_back p);
      Sys.remove p)
    leftovers;
  (* Pending = not in the main journal, first occurrence of each id, in
     item order. Contiguous blocks of this list are what the shards
     append, so merging the shards in order reconstructs it. *)
  let seen = Hashtbl.create 64 in
  let pending =
    List.filter
      (fun ({ id; _ } : item) ->
        if Journal.completed journal id || Hashtbl.mem seen id then false
        else begin
          Hashtbl.add seen id ();
          true
        end)
      items
  in
  let pending = Array.of_list pending in
  let n = Array.length pending in
  let block k =
    (* Balanced contiguous partition: block k is [k*n/d, (k+1)*n/d). *)
    Array.sub pending (k * n / domains)
      (((k + 1) * n / domains) - (k * n / domains))
  in
  let shard k =
    Obs.span ~parent (Printf.sprintf "sweep.shard%d" k) @@ fun _sp ->
    let path = shard_path (Journal.path journal) k in
    let j = Journal.load_or_create path in
    Fun.protect
      ~finally:(fun () -> Journal.close j)
      (fun () ->
        Array.iter
          (fun { id; compute } ->
            let payload =
              match Hashtbl.find_opt cache id with
              | Some p -> p
              | None -> compute ()
            in
            Journal.record j ~id ~payload)
          (block k));
    path
  in
  let shard_files =
    Exec.Pool.map pool shard (Array.init domains Fun.id)
  in
  (* Merge in shard order = original pending order; delete shards only
     afterwards, so a crash mid-merge leaves them as next run's cache
     (ids already merged are skipped as completed). *)
  Array.iter
    (fun path ->
      List.iter
        (fun (id, payload) ->
          if not (Journal.completed journal id) then
            Journal.record journal ~id ~payload)
        (Journal.read_back path))
    shard_files;
  Array.iter Sys.remove shard_files;
  (* Outcomes in item order, payloads from the merged journal. *)
  let merged = Hashtbl.create 64 in
  List.iter
    (fun (id, payload) -> Hashtbl.replace merged id payload)
    (Journal.entries journal);
  let emitted = Hashtbl.create 64 in
  List.map
    (fun ({ id; _ } : item) ->
      let payload =
        match Hashtbl.find_opt merged id with
        | Some p -> p
        | None -> invalid_arg ("Sweep: item vanished from journal: " ^ id)
      in
      let status =
        if Hashtbl.mem seen id && not (Hashtbl.mem emitted id) then
          if Hashtbl.mem cache id then `Recovered else `Ran
        else `Replayed
      in
      Hashtbl.replace emitted id ();
      { id; payload; status })
    items

let run ?pool ~journal items =
  Obs.span "sweep.run" @@ fun sp ->
  let outcomes =
    match pool with
    | Some p when Exec.Pool.size p > 1 ->
      sharded ~parent:sp ~pool:p ~journal items
    | Some _ | None -> sequential ~journal items
  in
  (* Outcome counters are deterministic across domain counts: the merged
     journal is byte-identical to the sequential append order, so every
     item's status is scheduling-independent (given the same leftover
     shard files on disk). *)
  if Obs.on () then
    List.iter
      (fun o ->
        Obs.count
          (match o.status with
           | `Ran -> "sweep_items_ran"
           | `Replayed -> "sweep_items_replayed"
           | `Recovered -> "sweep_items_recovered"))
      outcomes;
  outcomes
