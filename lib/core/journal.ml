type t = {
  path : string;
  oc : out_channel;
  fsync : bool;  (* fdatasync-level durability on every append *)
  tbl : (string, string) Hashtbl.t;
  mutable order : string list;  (* reverse file order *)
  corrupt : int;  (* checksum-failed lines skipped at load *)
  mutable broken : bool;  (* an append failed and could not be sealed *)
}

(* ---------------- CRC-32 (IEEE 802.3, reflected) ----------------
   The stdlib has no checksum; the classic 256-entry table fits in a
   dozen lines and OCaml's 63-bit ints hold the 32-bit arithmetic
   natively. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1)
                else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let split_line line =
  match String.index_opt line '\t' with
  | Some i ->
    ( String.sub line 0 i,
      String.sub line (i + 1) (String.length line - i - 1) )
  | None -> (line, "")

(* A checksummed line is [body TAB "crc:" hex8] with the crc taken over
   [body] (itself [id TAB payload]); the field sits after the LAST tab
   because payloads may contain tabs. Lines without the suffix are
   legacy (pre-checksum journals) and load as before. The one
   ambiguity — a legacy payload that happens to end in a crc-shaped
   field — resolves by arithmetic: the hex either matches the body's
   crc (and stripping it is correct by construction of the writer) or
   the line is counted corrupt; both beat trusting unverifiable
   bytes. *)
let crc_field_len = 12 (* "crc:" + 8 hex *)

let is_hex8 s =
  String.length s = 8
  && String.for_all
       (fun ch -> (ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
       s

let parse_line line =
  let n = String.length line in
  match String.rindex_opt line '\t' with
  | Some tb
    when n - tb - 1 = crc_field_len
         && String.sub line (tb + 1) 4 = "crc:"
         && is_hex8 (String.sub line (tb + 5) 8) ->
    let body = String.sub line 0 tb in
    let expect = int_of_string ("0x" ^ String.sub line (tb + 5) 8) in
    if crc32 body = expect then Some (split_line body) else None
  | _ -> Some (split_line line)

(* Read back completed entries; return them plus the byte offset of the
   first partial (un-terminated) trailing line, if any, and the count
   of complete-but-corrupt (checksum-failed) lines skipped. *)
let read_existing path =
  if not (Sys.file_exists path) then ([], 0, 0, 0)
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let buf = really_input_string ic len in
    close_in ic;
    let entries = ref [] in
    let pos = ref 0 in
    let good = ref 0 in
    let corrupt = ref 0 in
    while !pos < len do
      match String.index_from_opt buf !pos '\n' with
      | Some nl ->
        let line = String.sub buf !pos (nl - !pos) in
        (if line <> "" then
           match parse_line line with
           | Some entry -> entries := entry :: !entries
           | None -> incr corrupt);
        pos := nl + 1;
        good := !pos
      | None ->
        (* trailing bytes without a newline: a write the previous run
           did not finish — drop them, the item will be re-done *)
        pos := len
    done;
    (List.rev !entries, !good, len, !corrupt)
  end

let read_back path =
  let entries, _, _, _ = read_existing path in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem seen id then
        invalid_arg
          (Printf.sprintf "Journal: duplicate id %S in %s" id path);
      Hashtbl.add seen id ())
    entries;
  entries

let load_or_create ?(fsync = false) path =
  let entries, good, len, corrupt = read_existing path in
  (* Physically truncate the partial trailing line before appending
     anything new — seeking alone would leave the garbage tail in place
     whenever the replacement record is shorter. *)
  if good < len then Unix.truncate path good;
  if corrupt > 0 && Obs.on () then
    Obs.count_n "journal_corrupt_lines" corrupt;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  let tbl = Hashtbl.create 64 in
  let order =
    List.fold_left
      (fun acc (id, payload) ->
         (* A doubly-appended id means two runs both thought they owned
            the record — silently keeping either copy hides the
            conflict. Refuse to load. (Torn trailing lines were already
            dropped above, so a half-written retry of an existing id
            does not trip this.) *)
         if Hashtbl.mem tbl id then begin
           close_out_noerr oc;
           invalid_arg
             (Printf.sprintf "Journal: duplicate id %S in %s" id path)
         end;
         Hashtbl.replace tbl id payload;
         id :: acc)
      [] entries
  in
  { path; oc; fsync; tbl; order; corrupt; broken = false }

let path t = t.path
let completed t id = Hashtbl.mem t.tbl id
let count t = Hashtbl.length t.tbl
let corrupt_lines t = t.corrupt
let broken t = t.broken

let entries t =
  List.rev_map (fun id -> (id, Hashtbl.find t.tbl id)) t.order

let check_field ~what s ~allow_tab =
  String.iter
    (fun ch ->
       if ch = '\n' || ch = '\r' || ((not allow_tab) && ch = '\t') then
         invalid_arg
           (Printf.sprintf "Journal: %s contains a forbidden character" what))
    s

(* A failed append may have left a torn prefix at EOF; writing the
   terminating newline seals it into a complete line that fails its
   checksum on the next load (counted corrupt, skipped) instead of
   gluing onto — and corrupting — the next record. Only when even the
   seal cannot be written does the journal go read-only. *)
let seal t =
  try
    output_char t.oc '\n';
    flush t.oc
  with _ -> t.broken <- true

let record t ~id ~payload =
  if id = "" then invalid_arg "Journal: empty id";
  check_field ~what:"id" id ~allow_tab:false;
  check_field ~what:"payload" payload ~allow_tab:true;
  if completed t id then
    invalid_arg (Printf.sprintf "Journal: duplicate id %S" id);
  if t.broken then
    failwith
      (Printf.sprintf
         "Journal %s: an earlier append failed and could not be sealed; \
          journal is read-only"
         t.path);
  let body = id ^ "\t" ^ payload in
  let line = Printf.sprintf "%s\tcrc:%08x\n" body (crc32 body) in
  (try
     Faultpoint.hit "journal.append";
     (match Faultpoint.short "journal.append.short" with
      | Some frac ->
        (* Torn write: some prefix — never the whole line — reaches the
           file, then the append "fails" (ENOSPC, crash). *)
        let keep =
          max 0
            (min
               (String.length line - 1)
               (int_of_float (frac *. float_of_int (String.length line))))
        in
        output_string t.oc (String.sub line 0 keep);
        flush t.oc;
        raise (Faultpoint.Injected "journal.append.short")
      | None -> ());
     output_string t.oc line;
     flush t.oc
   with e ->
     seal t;
     raise e);
  (* The line is fully in the file from here on: record it in memory
     before the fsync so the two views cannot diverge (a duplicate
     append after a failed-but-written fsync would poison the next
     load). *)
  Hashtbl.replace t.tbl id payload;
  t.order <- id :: t.order;
  if t.fsync then begin
    (* [flush] handed the line to the kernel; [fsync] makes it survive
       a power cut. Torn-tail recovery in [load_or_create] is unchanged
       either way — fsync only narrows the window to the write itself.
       A failing fsync raises (durability was NOT confirmed) but the
       entry stands: the bytes are complete in the file. *)
    Faultpoint.hit "journal.fsync";
    Unix.fsync (Unix.descr_of_out_channel t.oc)
  end

let run t ~id f =
  match Hashtbl.find_opt t.tbl id with
  | Some payload -> (`Replayed, payload)
  | None ->
    let payload = f () in
    record t ~id ~payload;
    (`Ran, payload)

let close t = close_out t.oc
