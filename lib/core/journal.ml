type t = {
  path : string;
  oc : out_channel;
  fsync : bool;  (* fdatasync-level durability on every append *)
  tbl : (string, string) Hashtbl.t;
  mutable order : string list;  (* reverse file order *)
}

let split_line line =
  match String.index_opt line '\t' with
  | Some i ->
    ( String.sub line 0 i,
      String.sub line (i + 1) (String.length line - i - 1) )
  | None -> (line, "")

(* Read back completed entries; return them plus the byte offset of the
   first partial (un-terminated) trailing line, if any. *)
let read_existing path =
  if not (Sys.file_exists path) then ([], 0, 0)
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let buf = really_input_string ic len in
    close_in ic;
    let entries = ref [] in
    let pos = ref 0 in
    let good = ref 0 in
    while !pos < len do
      match String.index_from_opt buf !pos '\n' with
      | Some nl ->
        let line = String.sub buf !pos (nl - !pos) in
        if line <> "" then entries := split_line line :: !entries;
        pos := nl + 1;
        good := !pos
      | None ->
        (* trailing bytes without a newline: a write the previous run
           did not finish — drop them, the item will be re-done *)
        pos := len
    done;
    (List.rev !entries, !good, len)
  end

let read_back path =
  let entries, _, _ = read_existing path in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (id, _) ->
      if Hashtbl.mem seen id then
        invalid_arg
          (Printf.sprintf "Journal: duplicate id %S in %s" id path);
      Hashtbl.add seen id ())
    entries;
  entries

let load_or_create ?(fsync = false) path =
  let entries, good, len = read_existing path in
  (* Physically truncate the partial trailing line before appending
     anything new — seeking alone would leave the garbage tail in place
     whenever the replacement record is shorter. *)
  if good < len then Unix.truncate path good;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      path
  in
  let tbl = Hashtbl.create 64 in
  let order =
    List.fold_left
      (fun acc (id, payload) ->
         (* A doubly-appended id means two runs both thought they owned
            the record — silently keeping either copy hides the
            conflict. Refuse to load. (Torn trailing lines were already
            dropped above, so a half-written retry of an existing id
            does not trip this.) *)
         if Hashtbl.mem tbl id then begin
           close_out_noerr oc;
           invalid_arg
             (Printf.sprintf "Journal: duplicate id %S in %s" id path)
         end;
         Hashtbl.replace tbl id payload;
         id :: acc)
      [] entries
  in
  { path; oc; fsync; tbl; order }

let path t = t.path
let completed t id = Hashtbl.mem t.tbl id
let count t = Hashtbl.length t.tbl

let entries t =
  List.rev_map (fun id -> (id, Hashtbl.find t.tbl id)) t.order

let check_field ~what s ~allow_tab =
  String.iter
    (fun ch ->
       if ch = '\n' || ch = '\r' || ((not allow_tab) && ch = '\t') then
         invalid_arg
           (Printf.sprintf "Journal: %s contains a forbidden character" what))
    s

let record t ~id ~payload =
  if id = "" then invalid_arg "Journal: empty id";
  check_field ~what:"id" id ~allow_tab:false;
  check_field ~what:"payload" payload ~allow_tab:true;
  if completed t id then
    invalid_arg (Printf.sprintf "Journal: duplicate id %S" id);
  output_string t.oc id;
  output_char t.oc '\t';
  output_string t.oc payload;
  output_char t.oc '\n';
  flush t.oc;
  (* [flush] hands the line to the kernel; [fsync] makes it survive a
     power cut. Torn-tail recovery in [load_or_create] is unchanged
     either way — fsync only narrows the window to the write itself. *)
  if t.fsync then Unix.fsync (Unix.descr_of_out_channel t.oc);
  Hashtbl.replace t.tbl id payload;
  t.order <- id :: t.order

let run t ~id f =
  match Hashtbl.find_opt t.tbl id with
  | Some payload -> (`Replayed, payload)
  | None ->
    let payload = f () in
    record t ~id ~payload;
    (`Ran, payload)

let close t = close_out t.oc
