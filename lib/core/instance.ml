type t = { m : int; c : int; d : int; p : float array array }

let row_sum row = Array.fold_left ( +. ) 0.0 row

(* First offending entry of a row, with its kind — so the error can name
   device and cell instead of a generic "bad probability". *)
let bad_entry row =
  let n = Array.length row in
  let rec go j =
    if j >= n then None
    else
      let x = row.(j) in
      if Float.is_nan x then Some (j, "NaN")
      else if x = Float.infinity then Some (j, "+infinity")
      else if x = Float.neg_infinity then Some (j, "-infinity")
      else if x < 0.0 then Some (j, Printf.sprintf "negative value %g" x)
      else go (j + 1)
  in
  go 0

let validate ?(row_sum_tol = 1e-6) ~d p =
  let m = Array.length p in
  if Float.is_nan row_sum_tol || row_sum_tol < 0.0 then
    Error (Printf.sprintf "row_sum_tol must be >= 0, got %g" row_sum_tol)
  else if m = 0 then Error "no devices"
  else begin
    let c = Array.length p.(0) in
    if c = 0 then Error "no cells"
    else if d < 1 || d > c then Error "delay d must satisfy 1 <= d <= c"
    else begin
      let rec check i =
        if i >= m then Ok ()
        else if Array.length p.(i) <> c then
          Error
            (Printf.sprintf "device %d: row has %d cells, expected %d" i
               (Array.length p.(i)) c)
        else
          match bad_entry p.(i) with
          | Some (j, kind) ->
            Error
              (Printf.sprintf "device %d, cell %d: probability is %s" i j kind)
          | None ->
            let s = row_sum p.(i) in
            (* A row of finite entries can still overflow: the sum must be
               checked for finiteness on its own (NaN also fails the
               tolerance test silently — NaN comparisons are all false). *)
            if not (Float.is_finite s) then
              Error
                (Printf.sprintf "device %d: row sum is not finite (%s)" i
                   (if Float.is_nan s then "NaN" else "infinite"))
            else if s <= 0.0 then
              Error (Printf.sprintf "device %d: row has no mass" i)
            else if abs_float (s -. 1.0) > row_sum_tol then
              Error
                (Printf.sprintf
                   "device %d: row sums to %.9g, not 1 (residual %.3g, tolerance %.3g)"
                   i s (s -. 1.0) row_sum_tol)
            else check (i + 1)
      in
      check 0
    end
  end

let create ?row_sum_tol ~d p =
  match validate ?row_sum_tol ~d p with
  | Error reason -> invalid_arg ("Instance.create: " ^ reason)
  | Ok () ->
    let m = Array.length p in
    let c = Array.length p.(0) in
    (* Rows are kept verbatim (copied): renormalizing here would disturb
       exact ties between cell weights, which the §4.3 lower-bound
       instance relies on. *)
    let p = Array.map Array.copy p in
    { m; c; d; p }

let create_exn = create

let with_d t d =
  if d < 1 || d > t.c then invalid_arg "Instance.with_d: d out of range"
  else { t with d }

let cell_weight t j =
  let s = ref 0.0 in
  for i = 0 to t.m - 1 do
    s := !s +. t.p.(i).(j)
  done;
  !s

let weight_order_of ~c weight =
  let order = Array.init c (fun j -> j) in
  let cmp a b =
    let wa = weight a and wb = weight b in
    if wa <> wb then compare wb wa else compare a b
  in
  Array.sort cmp order;
  order

let weight_order t = weight_order_of ~c:t.c (cell_weight t)
let device_row t i = Array.copy t.p.(i)

let restrict t ~d ~cells ~devices =
  if Array.length cells = 0 || Array.length devices = 0 then
    invalid_arg "Instance.restrict: empty restriction"
  else begin
    let rows =
      Array.map
        (fun i ->
          let row = Array.map (fun j -> t.p.(i).(j)) cells in
          let s = row_sum row in
          if s <= 0.0 then
            invalid_arg "Instance.restrict: device has no mass on kept cells"
          else Array.map (fun x -> x /. s) row)
        devices
    in
    create ~d rows
  end

let block_diagonal ~d parts =
  if parts = [] then invalid_arg "Instance.block_diagonal: no parts"
  else begin
    let widths =
      List.map
        (fun rows ->
          if Array.length rows = 0 then
            invalid_arg "Instance.block_diagonal: empty part"
          else Array.length rows.(0))
        parts
    in
    let total_c = List.fold_left ( + ) 0 widths in
    let rows = ref [] in
    let offset = ref 0 in
    List.iter2
      (fun part width ->
        Array.iter
          (fun row ->
            if Array.length row <> width then
              invalid_arg "Instance.block_diagonal: ragged part"
            else begin
              let full = Array.make total_c 0.0 in
              Array.blit row 0 full !offset width;
              rows := full :: !rows
            end)
          part;
        offset := !offset + width)
      parts widths;
    create ~d (Array.of_list (List.rev !rows))
  end

let random rng ~m ~c ~d ~gen =
  let p = Array.init m (fun _ -> gen rng c) in
  create ~d p

let random_uniform_simplex rng ~m ~c ~d =
  random rng ~m ~c ~d ~gen:(fun rng c -> Prob.Dist.uniform_simplex rng c)

let random_zipf rng ~s ~m ~c ~d =
  let gen rng c = Prob.Dist.shuffled rng (Prob.Dist.zipf ~s c) in
  random rng ~m ~c ~d ~gen

let all_uniform ~m ~c ~d =
  create ~d (Array.init m (fun _ -> Prob.Dist.uniform c))

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%d %d %d\n" t.m t.c t.d);
  Array.iter
    (fun row ->
      Array.iteri
        (fun j x ->
          if j > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%.17g" x))
        row;
      Buffer.add_char buf '\n')
    t.p;
  Buffer.contents buf

let of_string s =
  let tokens =
    String.split_on_char '\n' s
    |> List.filter (fun line ->
           let line = String.trim line in
           line <> "" && line.[0] <> '#')
    |> List.concat_map (fun line ->
           String.split_on_char ' ' line
           |> List.filter (fun tok -> String.trim tok <> ""))
  in
  match tokens with
  | m :: c :: d :: rest ->
    let parse_int name s =
      match int_of_string_opt s with
      | Some v -> v
      | None -> invalid_arg ("Instance.of_string: bad " ^ name)
    in
    let m = parse_int "m" m and c = parse_int "c" c and d = parse_int "d" d in
    (* Name the degenerate axis: a zero-device (or zero-cell) header
       must be rejected here, at the parse boundary — downstream solver
       preconditions (the flat hot path included) assume m >= 1 and
       c >= 1 and would fail far from the cause. *)
    if m <= 0 then
      invalid_arg
        (Printf.sprintf "Instance.of_string: no devices (m = %d, need m >= 1)"
           m)
    else if c <= 0 then
      invalid_arg
        (Printf.sprintf "Instance.of_string: no cells (c = %d, need c >= 1)" c)
    else begin
      let values = Array.of_list rest in
      if Array.length values <> m * c then
        invalid_arg "Instance.of_string: wrong number of probabilities"
      else begin
        let p =
          Array.init m (fun i ->
              Array.init c (fun j ->
                  match float_of_string_opt values.((i * c) + j) with
                  | Some v -> v
                  | None -> invalid_arg "Instance.of_string: bad probability"))
        in
        create ~d p
      end
    end
  | _ -> invalid_arg "Instance.of_string: missing header"

let pp ppf t =
  Format.fprintf ppf "instance m=%d c=%d d=%d" t.m t.c t.d

module Exact = struct
  module Q = Numeric.Rational

  let float_create = create

  type t = { m : int; c : int; d : int; p : Q.t array array }

  let create ~d p =
    let m = Array.length p in
    if m = 0 then invalid_arg "Instance.Exact.create: no devices"
    else begin
      let c = Array.length p.(0) in
      if c = 0 then invalid_arg "Instance.Exact.create: no cells"
      else if d < 1 || d > c then invalid_arg "Instance.Exact.create: bad d"
      else begin
        Array.iter
          (fun row ->
            if Array.length row <> c then
              invalid_arg "Instance.Exact.create: ragged matrix"
            else if Array.exists (fun x -> Q.sign x < 0) row then
              invalid_arg "Instance.Exact.create: negative probability"
            else if not (Q.equal (Q.sum (Array.to_list row)) Q.one) then
              invalid_arg "Instance.Exact.create: row does not sum to 1")
          p;
        { m; c; d; p }
      end
    end

  let to_float t = float_create ~d:t.d (Array.map (Array.map Q.to_float) t.p)

  let cell_weight t j =
    let s = ref Q.zero in
    for i = 0 to t.m - 1 do
      s := Q.add !s t.p.(i).(j)
    done;
    !s

  let weight_order t =
    let order = Array.init t.c (fun j -> j) in
    let cmp a b =
      let qa = cell_weight t a and qb = cell_weight t b in
      let c = Q.compare qb qa in
      if c <> 0 then c else compare a b
    in
    Array.sort cmp order;
    order
end
