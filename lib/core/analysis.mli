(** Distributional analysis of paging strategies.

    The paper optimizes the {e expectation} of cells paged; this module
    exposes the full distribution, which is discrete and closed-form:
    the search stops after round r with probability F_r − F_{r−1}
    (Lemma 2.1's telescoping), paying the cumulative group size b_r.
    Useful for tail-aware comparisons — two strategies with equal EP can
    have very different worst-percentile behaviour — and for the
    delay/paging Pareto view. *)

type distribution = {
  support : float array;  (** cumulative cells paged per stop round *)
  probabilities : float array;  (** P[stop at round r]; sums to 1 *)
  mean : float;
  variance : float;
  stddev : float;
}

(** [cost_distribution ?objective inst strategy] — exact distribution of
    the number of cells paged.
    @raise Invalid_argument when the strategy is invalid for the
    instance. *)
val cost_distribution :
  ?objective:Objective.t -> Instance.t -> Strategy.t -> distribution

(** [rounds_distribution ?objective inst strategy] — exact distribution
    of the stopping round (1-based). *)
val rounds_distribution :
  ?objective:Objective.t -> Instance.t -> Strategy.t -> distribution

(** [quantile dist q] — smallest support point with cumulative
    probability ≥ q, q ∈ [0, 1]. *)
val quantile : distribution -> float -> float

(** [delay_paging_frontier ?objective inst ~max_d] — the (E[rounds], EP)
    curve traced by the greedy heuristic as the delay budget grows from
    1 to [max_d]: the tradeoff a system designer actually navigates. *)
val delay_paging_frontier :
  ?objective:Objective.t -> Instance.t -> max_d:int -> (float * float) array

val pp_distribution : Format.formatter -> distribution -> unit
