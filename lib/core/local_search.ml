type result = {
  strategy : Strategy.t;
  expected_paging : float;
  iterations : int;
}

(* Mutable working state: cell -> round assignment, per-round cell
   counts, and per-device per-round probability masses. Rounds stay
   non-empty throughout (fixed strategy length; by the remark after
   Lemma 2.1 using all available rounds is never worse). *)
type state = {
  inst : Instance.t;
  objective : Objective.t;
  rounds : int;
  round_of : int array;
  counts : int array;
  masses : float array array;  (* m x rounds *)
}

let ep state =
  let m = state.inst.Instance.m in
  let prefix = Array.make m 0.0 in
  let total = ref (float_of_int state.inst.Instance.c) in
  for r = 0 to state.rounds - 2 do
    for i = 0 to m - 1 do
      prefix.(i) <- prefix.(i) +. state.masses.(i).(r)
    done;
    let f = Objective.success state.objective prefix in
    total := !total -. (float_of_int state.counts.(r + 1) *. f)
  done;
  !total

let relocate state cell target =
  let src = state.round_of.(cell) in
  state.round_of.(cell) <- target;
  state.counts.(src) <- state.counts.(src) - 1;
  state.counts.(target) <- state.counts.(target) + 1;
  for i = 0 to state.inst.Instance.m - 1 do
    let p = state.inst.Instance.p.(i).(cell) in
    state.masses.(i).(src) <- state.masses.(i).(src) -. p;
    state.masses.(i).(target) <- state.masses.(i).(target) +. p
  done

let state_of_strategy ?(objective = Objective.Find_all) inst strategy =
  (match Strategy.validate ~c:inst.Instance.c strategy with
   | Ok () -> ()
   | Error reason -> invalid_arg ("Local_search: " ^ reason));
  let groups = Strategy.groups strategy in
  let rounds = Array.length groups in
  let round_of = Array.make inst.Instance.c 0 in
  let counts = Array.make rounds 0 in
  let masses = Array.make_matrix inst.Instance.m rounds 0.0 in
  Array.iteri
    (fun r group ->
      counts.(r) <- Array.length group;
      Array.iter
        (fun cell ->
          round_of.(cell) <- r;
          for i = 0 to inst.Instance.m - 1 do
            masses.(i).(r) <- masses.(i).(r) +. inst.Instance.p.(i).(cell)
          done)
        group)
    groups;
  { inst; objective; rounds; round_of; counts; masses }

let strategy_of_state state =
  let buckets = Array.make state.rounds [] in
  for cell = state.inst.Instance.c - 1 downto 0 do
    let r = state.round_of.(cell) in
    buckets.(r) <- cell :: buckets.(r)
  done;
  Strategy.create (Array.map Array.of_list buckets)

(* Evaluate a relocate without committing: apply, measure, revert. *)
let try_relocate state cell target =
  let src = state.round_of.(cell) in
  relocate state cell target;
  let v = ep state in
  relocate state cell src;
  v

let try_swap state cell_a cell_b =
  let ra = state.round_of.(cell_a) and rb = state.round_of.(cell_b) in
  relocate state cell_a rb;
  relocate state cell_b ra;
  let v = ep state in
  relocate state cell_b rb;
  relocate state cell_a ra;
  v

exception Out_of_budget

let hill_climb_state ?(cancel = Cancel.never) state =
  let c = state.inst.Instance.c in
  let iterations = ref 0 in
  let current = ref (ep state) in
  let improved = ref true in
  (* On cancellation the scan stops where it stands: the working state is
     a valid strategy at every point, so best-so-far is always returnable
     (the anytime contract the Runner relies on). *)
  (try
     while !improved do
       improved := false;
       (* Best improving relocate. *)
       let best_gain = ref 1e-12 in
       let best_move = ref None in
       for cell = 0 to c - 1 do
         let src = state.round_of.(cell) in
         if state.counts.(src) > 1 then
           for target = 0 to state.rounds - 1 do
             if target <> src then begin
               if Cancel.poll cancel then raise Out_of_budget;
               incr iterations;
               let v = try_relocate state cell target in
               if !current -. v > !best_gain then begin
                 best_gain := !current -. v;
                 best_move := Some (`Relocate (cell, target))
               end
             end
           done
       done;
       (* Best improving swap. *)
       for a = 0 to c - 1 do
         for b = a + 1 to c - 1 do
           if state.round_of.(a) <> state.round_of.(b) then begin
             if Cancel.poll cancel then raise Out_of_budget;
             incr iterations;
             let v = try_swap state a b in
             if !current -. v > !best_gain then begin
               best_gain := !current -. v;
               best_move := Some (`Swap (a, b))
             end
           end
         done
       done;
       match !best_move with
       | Some (`Relocate (cell, target)) ->
         relocate state cell target;
         current := ep state;
         improved := true
       | Some (`Swap (a, b)) ->
         let ra = state.round_of.(a) and rb = state.round_of.(b) in
         relocate state a rb;
         relocate state b ra;
         current := ep state;
         improved := true
       | None -> ()
     done
   with Out_of_budget -> ());
  !current, !iterations

let hill_climb ?(objective = Objective.Find_all) ?seed_strategy ?cancel inst =
  let seed =
    match seed_strategy with
    | Some s -> s
    | None -> (Greedy.solve ~objective inst).Order_dp.strategy
  in
  let state = state_of_strategy ~objective inst seed in
  let expected_paging, iterations = hill_climb_state ?cancel state in
  { strategy = strategy_of_state state; expected_paging; iterations }

let anneal ?(objective = Objective.Find_all) ?(cancel = Cancel.never) inst rng
    ~steps ~t0 ~cooling =
  if steps < 0 then invalid_arg "Local_search.anneal: negative steps"
  else if t0 <= 0.0 then invalid_arg "Local_search.anneal: t0 must be positive"
  else if cooling <= 0.0 || cooling >= 1.0 then
    invalid_arg "Local_search.anneal: cooling must be in (0, 1)"
  else begin
    let seed = (Greedy.solve ~objective inst).Order_dp.strategy in
    let state = state_of_strategy ~objective inst seed in
    let c = inst.Instance.c in
    let current = ref (ep state) in
    let best = ref !current in
    let best_assignment = ref (Array.copy state.round_of) in
    let temperature = ref t0 in
    let iterations = ref 0 in
    if state.rounds > 1 then begin
      try
        for _ = 1 to steps do
          if Cancel.poll cancel then raise Out_of_budget;
          incr iterations;
        let use_swap = Prob.Rng.bool rng in
        let candidate =
          if use_swap then begin
            let a = Prob.Rng.int rng c and b = Prob.Rng.int rng c in
            if a <> b && state.round_of.(a) <> state.round_of.(b) then
              Some (`Swap (a, b), try_swap state a b)
            else None
          end
          else begin
            let cell = Prob.Rng.int rng c in
            let target = Prob.Rng.int rng state.rounds in
            let src = state.round_of.(cell) in
            if target <> src && state.counts.(src) > 1 then
              Some (`Relocate (cell, target), try_relocate state cell target)
            else None
          end
        in
        (match candidate with
         | None -> ()
         | Some (move, v) ->
           let delta = v -. !current in
           let accept =
             delta <= 0.0
             || Prob.Rng.unit_float rng < exp (-.delta /. !temperature)
           in
           if accept then begin
             (match move with
              | `Relocate (cell, target) -> relocate state cell target
              | `Swap (a, b) ->
                let ra = state.round_of.(a) and rb = state.round_of.(b) in
                relocate state a rb;
                relocate state b ra);
             current := v;
             if v < !best then begin
               best := v;
               best_assignment := Array.copy state.round_of
             end
           end);
          temperature := !temperature *. cooling
        done
      with Out_of_budget -> ()
    end;
    (* Restore the best visited assignment, then polish greedily. *)
    Array.iteri
      (fun cell r -> if state.round_of.(cell) <> r then relocate state cell r)
      !best_assignment;
    let polished, extra = hill_climb_state ~cancel state in
    {
      strategy = strategy_of_state state;
      expected_paging = polished;
      iterations = !iterations + extra;
    }
  end

let solve ?(objective = Objective.Find_all) ?cancel inst rng =
  let c = inst.Instance.c in
  let steps = Stdlib.max 500 (50 * c) in
  anneal ~objective ?cancel inst rng ~steps ~t0:(0.05 *. float_of_int c)
    ~cooling:(1.0 -. (2.0 /. float_of_int steps))
