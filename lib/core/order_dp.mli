(** The dynamic program of Lemma 4.7 / Fig. 1, generalized.

    Given a fixed cell ordering, this DP finds the strategy minimizing
    expected paging among all strategies that page cells in that order —
    in O(d·c²) time after an O(m·c) pass computing prefix success
    probabilities. The paper instantiates it with the non-increasing
    cell-weight order to obtain the e/(e−1)-approximation (§4.2.2); with
    m = 1 it is the optimal single-device algorithm of [11,16,17]; the §5
    remark that it works "for any predefined sequence" and for the
    bandwidth-limited model is exposed through [order] and [max_group]. *)

type result = {
  strategy : Strategy.t;
  sizes : int array;  (** g₁ … g_d, the chosen group sizes *)
  expected_paging : float;  (** E(d, c) *)
}

(** [solve ?objective ?max_group ?cell_cost inst ~order] cuts [order]
    (a permutation of the instance's cells) into at most [inst.d]
    groups.

    [max_group] bounds every group size (the §5 bandwidth model); the
    problem is infeasible when [c > max_group · d].

    [cell_cost] generalizes the objective from expected {e cells} paged
    to expected paging {e cost}: entry [j] is the cost of paging cell
    [j] (default: 1 everywhere). Models cells with unequal load or
    radio footprint.

    [cancel] is polled once per DP cell (the quadratic part): the DP is
    polynomial, but at metropolitan c it still outlives tight budgets.

    @raise Invalid_argument when [order] is not a permutation of the
    cells, [cell_cost] has the wrong length, or the bandwidth constraint
    is infeasible.
    @raise Cancel.Cancelled when the token fires mid-DP. *)
val solve :
  ?objective:Objective.t ->
  ?max_group:int ->
  ?cell_cost:float array ->
  ?cancel:Cancel.t ->
  Instance.t ->
  order:int array ->
  result

(** [solve_coarse ?objective ?block inst ~order] restricts cut points to
    multiples of [block] cells (default 16), shrinking the DP from
    O(d·c²) to O(d·(c/block)²). The reported expectation is exact for
    the returned strategy (Lemma 2.1 only reads prefix success at cut
    points), but the strategy is only optimal within the coarse family —
    a practical solver for location areas with tens of thousands of
    cells. *)
val solve_coarse :
  ?objective:Objective.t ->
  ?block:int ->
  Instance.t ->
  order:int array ->
  result

(** [solve_with_prefix_success ~c ~d ?max_group ?cell_cost
    ~prefix_success ~order] is the raw DP: [prefix_success j] must be
    the probability that the search objective is met within the first
    [j] cells of [order] (non-decreasing, [prefix_success 0 = 0]);
    [cell_cost pos] is the cost of the cell at order position [pos].
    Exposed for custom objectives and for the tests that cross-check the
    recurrence. *)
val solve_with_prefix_success :
  c:int ->
  d:int ->
  ?max_group:int ->
  ?cell_cost:(int -> float) ->
  ?cancel:Cancel.t ->
  prefix_success:(int -> float) ->
  order:int array ->
  unit ->
  result

(** [prefix_success_table ?objective inst ~order] is the F[·] table of
    Fig. 1 lines 07–14: entry [j] is the success probability of the
    length-[j] prefix. Length c+1. *)
val prefix_success_table :
  ?objective:Objective.t -> Instance.t -> order:int array -> float array
