(** The paper's e/(e−1)-approximation heuristic (§4, Fig. 1).

    Cells are sequenced by non-increasing expected number of devices
    Σᵢ p(i,j); dynamic programming (Lemma 4.7) then finds the optimal cut
    of this sequence into at most d groups. Theorem 4.8: the result pages
    at most e/(e−1) ≈ 1.582 times the optimal expectation, in
    O(c(m + dc)) time and O(m + dc) space. The ratio cannot be better
    than 320/317 (§4.3). For m = 2 = d the bound improves to 4/3 (§4.1). *)

(** [solve ?objective ?cancel inst] runs the heuristic. Note the
    approximation guarantee of Theorem 4.8 is proved for [Find_all];
    other objectives reuse the same machinery heuristically (§5). *)
val solve :
  ?objective:Objective.t -> ?cancel:Cancel.t -> Instance.t -> Order_dp.result

(** [order inst] is the heuristic's cell sequence (exposed for tests and
    for the adaptive solver). *)
val order : Instance.t -> int array

(** [approximation_factor] = e/(e−1). *)
val approximation_factor : float

(** [approximation_factor_m2d2] = 4/3 (Lemma 4.3). *)
val approximation_factor_m2d2 : float

(** [ratio_lower_bound] = 320/317 (§4.3). *)
val ratio_lower_bound : float
