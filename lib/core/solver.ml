type spec =
  | Greedy
  | Page_all
  | Within_order of int array
  | Bandwidth_limited of int
  | Exhaustive
  | Branch_and_bound
  | Best_exact
  | Local_search
  | Class_based
  | Robust of { eps : float; tv : float }

type outcome = {
  strategy : Strategy.t;
  expected_paging : float;
  exact : bool;
}

let of_order_dp exact (r : Order_dp.result) =
  {
    strategy = r.Order_dp.strategy;
    expected_paging = r.Order_dp.expected_paging;
    exact;
  }

let of_optimal (r : Optimal.result) =
  {
    strategy = r.Optimal.strategy;
    expected_paging = r.Optimal.expected_paging;
    exact = true;
  }

let spec_to_string = function
  | Greedy -> "greedy"
  | Page_all -> "page-all"
  | Within_order _ -> "within-order"
  | Bandwidth_limited b -> Printf.sprintf "bandwidth-%d" b
  | Exhaustive -> "exhaustive"
  | Branch_and_bound -> "bnb"
  | Best_exact -> "exact"
  | Local_search -> "local-search"
  | Class_based -> "class"
  | Robust { eps; tv } ->
    if Float.is_finite tv then Printf.sprintf "robust-%g:%g" eps tv
    else Printf.sprintf "robust-%g" eps

(* Candidate pool for the robust re-ranking: the fast end of the
   default chain. Each candidate is scored by its worst-case EP over
   the perturbation ball; ties go to the earlier (stronger) method. *)
let robust_candidates = [ Local_search; Greedy; Page_all ]

let rec solve ?objective ?cancel ?unguarded ?arena spec inst =
  (* Dispatch counter (DESIGN §9): one counter per solver spec, so the
     registry shows which algorithms actually ran — including the
     recursive candidates a [Robust] re-rank fans out to. *)
  if Obs.on () then
    Obs.count ("solver_solve_" ^ Obs.sanitize (spec_to_string spec));
  match spec with
  | Greedy ->
    let exact = inst.Instance.m = 1 || inst.Instance.d = 1 in
    (match arena with
     | Some a -> of_order_dp exact (Flat.greedy ?objective ?cancel a inst)
     | None -> of_order_dp exact (Greedy.solve ?objective ?cancel inst))
  | Page_all ->
    let strategy = Strategy.page_all inst.Instance.c in
    let expected_paging =
      match arena with
      (* One round never stops early: EP = c, bit-identical to the
         Lemma 2.1 evaluation (whose sum has no terms to subtract). *)
      | Some _ -> float_of_int inst.Instance.c
      | None -> Strategy.expected_paging ?objective inst strategy
    in
    { strategy; expected_paging; exact = inst.Instance.d = 1 }
  | Within_order order ->
    (match arena with
     | Some a ->
       of_order_dp false (Flat.order_dp ?objective ?cancel a inst ~order)
     | None -> of_order_dp false (Order_dp.solve ?objective ?cancel inst ~order))
  | Bandwidth_limited b ->
    (match arena with
     | Some a -> of_order_dp false (Flat.bandwidth ?objective ?cancel a inst ~b)
     | None -> of_order_dp false (Bandwidth.solve ?objective ?cancel inst ~b))
  | Exhaustive ->
    let guard = not (Option.value unguarded ~default:false) in
    of_optimal (Optimal.exhaustive ?objective ?cancel ~guard inst)
  | Branch_and_bound ->
    of_optimal (Optimal.branch_and_bound_d2 ?objective ?cancel inst)
  | Best_exact ->
    (match Optimal.best ?objective ?cancel ?unguarded inst with
     | Some r -> of_optimal r
     | None -> invalid_arg "Solver: instance too large for exact solving")
  | Local_search ->
    let r =
      match arena with
      | Some a -> Flat.hill_climb ?objective ?cancel a inst
      | None -> Local_search.hill_climb ?objective ?cancel inst
    in
    {
      strategy = r.Local_search.strategy;
      expected_paging = r.Local_search.expected_paging;
      exact = false;
    }
  | Class_based ->
    let r = Class_solver.solve ?objective ?cancel inst in
    {
      strategy = r.Class_solver.strategy;
      expected_paging = r.Class_solver.expected_paging;
      exact = true;
    }
  | Robust { eps; tv } ->
    let u = Uncertainty.uniform ~tv eps in
    let best = ref None in
    List.iter
      (fun cand ->
         Option.iter Cancel.check cancel;
         match solve ?objective ?cancel ?unguarded ?arena cand inst with
         | outcome ->
           let r = Uncertainty.robust_ep ?objective u inst outcome.strategy in
           (match !best with
            | Some (_, r') when r' <= r -> ()
            | _ -> best := Some (outcome, r))
         | exception Invalid_argument _ -> ())
      robust_candidates;
    (match !best with
     | Some (outcome, _) -> { outcome with exact = false }
     | None -> invalid_arg "Solver: no robust candidate applies")

let spec_of_string s =
  match String.lowercase_ascii s with
  | "greedy" -> Ok Greedy
  | "page-all" | "pageall" -> Ok Page_all
  | "exhaustive" -> Ok Exhaustive
  | "bnb" | "branch-and-bound" -> Ok Branch_and_bound
  | "exact" | "best-exact" -> Ok Best_exact
  | "local-search" | "local" -> Ok Local_search
  | "class" | "class-based" -> Ok Class_based
  | "robust" -> Ok (Robust { eps = 0.05; tv = infinity })
  | s when String.length s > 7 && String.sub s 0 7 = "robust-" ->
    let body = String.sub s 7 (String.length s - 7) in
    let eps_s, tv_s =
      match String.index_opt body ':' with
      | Some i ->
        ( String.sub body 0 i,
          Some (String.sub body (i + 1) (String.length body - i - 1)) )
      | None -> (body, None)
    in
    let parse what s =
      match float_of_string_opt s with
      | Some x when Float.is_nan x || x < 0.0 ->
        Error (Printf.sprintf "robust: %s must be >= 0" what)
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "robust: bad %s %S" what s)
    in
    (match (parse "eps" eps_s, Option.map (parse "tv") tv_s) with
     | Ok eps, None when eps <= 1.0 -> Ok (Robust { eps; tv = infinity })
     | Ok eps, Some (Ok tv) when eps <= 1.0 -> Ok (Robust { eps; tv })
     | Ok _, Some (Error e) -> Error e
     | Ok _, _ -> Error "robust-<eps>[:<tv>] needs eps in [0, 1]"
     | Error e, _ -> Error e)
  | s when String.length s > 10 && String.sub s 0 10 = "bandwidth-" ->
    (match int_of_string_opt (String.sub s 10 (String.length s - 10)) with
     | Some b when b >= 1 -> Ok (Bandwidth_limited b)
     | _ -> Error "bandwidth-<b> needs a positive integer")
  | other -> Error (Printf.sprintf "unknown solver %S" other)

let basic_specs =
  [ Greedy; Page_all; Exhaustive; Branch_and_bound; Best_exact; Local_search ]
