let solve inst =
  if inst.Instance.m <> 1 then
    invalid_arg "Single.solve: instance must have exactly one device"
  else Order_dp.solve inst ~order:(Instance.weight_order inst)

let solve_distribution ~d p = solve (Instance.create ~d [| p |])

let uniform_sizes ~c ~d =
  if c <= 0 || d <= 0 || d > c then invalid_arg "Single.uniform_sizes"
  else begin
    (* Near-equal sizes minimize Σ sᵣ², which is the only term EP depends
       on for a uniform device: EP = c − (c² − Σ sᵣ²)/(2c). *)
    let q = c / d and r = c mod d in
    Array.init d (fun i -> if i < r then q + 1 else q)
  end

let uniform_ep ~c ~d =
  let sizes = uniform_sizes ~c ~d in
  let sum_sq =
    Array.fold_left (fun acc s -> acc +. (float_of_int s ** 2.0)) 0.0 sizes
  in
  let cf = float_of_int c in
  cf -. (((cf *. cf) -. sum_sq) /. (2.0 *. cf))
