(** Bandwidth-limited paging (§5): at most [b] cells per round.

    The paper observes its machinery carries over: Lemma 4.6 still gives
    existence of an approximate strategy in the weight-order family, and
    the Lemma 4.7 DP only needs its group-size range restricted. *)

(** [feasible ~c ~d ~b] — a strategy exists iff c ≤ b·d. *)
val feasible : c:int -> d:int -> b:int -> bool

(** [solve ?objective ?cancel inst ~b] — the heuristic under the cap;
    [cancel] is threaded into the underlying DP (see {!Cancel}).
    @raise Invalid_argument when infeasible. *)
val solve :
  ?objective:Objective.t ->
  ?cancel:Cancel.t ->
  Instance.t ->
  b:int ->
  Order_dp.result

(** [exhaustive inst ~b] — ground truth for small c. *)
val exhaustive : ?objective:Objective.t -> Instance.t -> b:int -> Optimal.result

(** [sweep inst ~bs] — heuristic expected paging per cap, [nan] where
    infeasible. *)
val sweep : Instance.t -> bs:int array -> float array
