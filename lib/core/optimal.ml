module Q = Numeric.Rational

type result = { strategy : Strategy.t; expected_paging : float }

let strategy_of_labels ~c ~d labels =
  let buckets = Array.make d [] in
  for j = c - 1 downto 0 do
    buckets.(labels.(j)) <- j :: buckets.(labels.(j))
  done;
  let groups =
    Array.of_list
      (List.filter_map
         (fun g -> if g = [] then None else Some (Array.of_list g))
         (Array.to_list buckets))
  in
  Strategy.create groups

let enumerate_strategies ~c ~d ~max_group visit =
  (* Assign each cell a round label < d. Unused labels collapse, so every
     strategy of length <= d appears (some more than once; harmless). *)
  let labels = Array.make c 0 in
  let counts = Array.make d 0 in
  let rec go j =
    if j = c then visit labels
    else
      for l = 0 to d - 1 do
        if counts.(l) < max_group then begin
          labels.(j) <- l;
          counts.(l) <- counts.(l) + 1;
          go (j + 1);
          counts.(l) <- counts.(l) - 1
        end
      done
  in
  go 0

let guard_size ~c ~d =
  if c > 16 then invalid_arg "Optimal.exhaustive: c too large (max 16)"
  else if float_of_int d ** float_of_int c > 8e6 then
    invalid_arg "Optimal.exhaustive: d^c too large"

let exhaustive ?objective ?max_group ?(cancel = Cancel.never) ?(guard = true)
    inst =
  let c = inst.Instance.c and d = inst.Instance.d in
  (* The size guard protects direct callers from runaway cost; a caller
     holding a cancellation token has its own bound, so it may disable
     the guard and let the deadline cut the enumeration short. *)
  if guard then guard_size ~c ~d;
  let max_group = Option.value max_group ~default:c in
  let best = ref None in
  enumerate_strategies ~c ~d ~max_group (fun labels ->
      Cancel.check cancel;
      let strategy = strategy_of_labels ~c ~d labels in
      let ep = Strategy.expected_paging_unchecked ?objective inst strategy in
      match !best with
      | Some (_, best_ep) when best_ep <= ep -> ()
      | _ -> best := Some (strategy, ep));
  match !best with
  | Some (strategy, expected_paging) -> { strategy; expected_paging }
  | None -> invalid_arg "Optimal.exhaustive: no feasible strategy"

let exhaustive_exact ?objective ?(cancel = Cancel.never) inst =
  let c = inst.Instance.Exact.c and d = inst.Instance.Exact.d in
  guard_size ~c ~d;
  let best = ref None in
  enumerate_strategies ~c ~d ~max_group:c (fun labels ->
      Cancel.check cancel;
      let strategy = strategy_of_labels ~c ~d labels in
      let ep = Strategy.expected_paging_exact ?objective inst strategy in
      match !best with
      | Some (_, best_ep) when Q.compare best_ep ep <= 0 -> ()
      | _ -> best := Some (strategy, ep));
  match !best with
  | Some pair -> pair
  | None -> invalid_arg "Optimal.exhaustive_exact: no feasible strategy"

let branch_and_bound_d2 ?(objective = Objective.Find_all)
    ?(cancel = Cancel.never) inst =
  if inst.Instance.d <> 2 then
    invalid_arg "Optimal.branch_and_bound_d2: requires d = 2"
  else begin
    let c = inst.Instance.c and m = inst.Instance.m in
    let order = Instance.weight_order inst in
    (* Maximize gain(S1) = (c - |S1|) * success(P(S1)); EP = c - gain.
       The pruning bound relies only on success being monotone in the
       per-device masses, which holds for every objective. *)
    let rem_mass = Array.make_matrix m (c + 1) 0.0 in
    for i = 0 to m - 1 do
      for t = c - 1 downto 0 do
        rem_mass.(i).(t) <-
          rem_mass.(i).(t + 1) +. inst.Instance.p.(i).(order.(t))
      done
    done;
    let best_gain = ref neg_infinity in
    let best_set = ref [] in
    let masses = Array.make m 0.0 in
    let chosen = ref [] in
    let rec go t size =
      Cancel.check cancel;
      let gain_here =
        if size >= 1 && size <= c - 1 then
          float_of_int (c - size) *. Objective.success objective masses
        else neg_infinity
      in
      if gain_here > !best_gain then begin
        best_gain := gain_here;
        best_set := !chosen
      end;
      if t < c then begin
        (* Optimistic bound: smallest future size, largest future masses. *)
        let optimistic_size = Stdlib.max 1 size in
        if c - optimistic_size > 0 then begin
          let optimistic_masses =
            Array.mapi
              (fun i mass -> Stdlib.min 1.0 (mass +. rem_mass.(i).(t)))
              masses
          in
          let ub =
            ref
              (float_of_int (c - optimistic_size)
              *. Objective.success objective optimistic_masses)
          in
          if !ub > !best_gain then begin
            let cell = order.(t) in
            (* Include cell [t] in S1. *)
            for i = 0 to m - 1 do
              masses.(i) <- masses.(i) +. inst.Instance.p.(i).(cell)
            done;
            chosen := cell :: !chosen;
            go (t + 1) (size + 1);
            chosen := List.tl !chosen;
            for i = 0 to m - 1 do
              masses.(i) <- masses.(i) -. inst.Instance.p.(i).(cell)
            done;
            (* Exclude cell [t]. *)
            go (t + 1) size
          end
        end
      end
    in
    go 0 0;
    let s1 = Array.of_list !best_set in
    let in_s1 = Array.make c false in
    Array.iter (fun j -> in_s1.(j) <- true) s1;
    let s2 =
      Array.of_list
        (List.filter (fun j -> not in_s1.(j)) (List.init c (fun j -> j)))
    in
    let strategy = Strategy.create [| s1; s2 |] in
    {
      strategy;
      expected_paging = Strategy.expected_paging ~objective inst strategy;
    }
  end

let best ?objective ?cancel ?(unguarded = false) inst =
  let c = inst.Instance.c and d = inst.Instance.d in
  let combos = float_of_int d ** float_of_int c in
  if c <= 16 && combos <= 8e6 then Some (exhaustive ?objective ?cancel inst)
  else if d = 2 && (c <= 26 || unguarded) then
    Some (branch_and_bound_d2 ?objective ?cancel inst)
  else if unguarded then
    Some (exhaustive ?objective ?cancel ~guard:false inst)
  else None
