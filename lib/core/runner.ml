type error =
  | Timeout
  | Inapplicable of string
  | Invalid_input of string
  | Internal of string

type stage_status = Completed | Degraded | Failed of error

type stage_report = {
  spec : Solver.spec;
  status : stage_status;
  elapsed_ms : float;
  expected_paging : float option;
  robust_ep : float option;  (* worst-case EP, in uncertainty runs *)
  raced : bool;  (* stage ran concurrently with the rest of the chain *)
}

type quality = {
  expected_paging : float;
  lower_bound : float;
  ratio_to_lower_bound : float;
  guarantee : float;
  within_guarantee : bool;
}

type robust_report = {
  uncertainty : Uncertainty.t;
  winner_robust_ep : float;
  winner_bounds : Uncertainty.bounds;
}

type run_report = {
  chain : Solver.spec list;
  objective : Objective.t;
  budget_ms : float option;
  winner : (Solver.spec * Solver.outcome) option;
  stages : stage_report list;
  total_ms : float;
  quality : quality option;
  robust : robust_report option;
  failure : error option;
}

let default_chain =
  Solver.
    [ Best_exact; Branch_and_bound; Local_search; Greedy; Page_all ]

let chain_to_string chain =
  String.concat "," (List.map Solver.spec_to_string chain)

let chain_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "default" | "best-exact-chain" -> Ok default_chain
  | "fast" -> Ok Solver.[ Greedy; Page_all ]
  | "heuristic" -> Ok Solver.[ Local_search; Greedy; Page_all ]
  | "exact" -> Ok Solver.[ Best_exact; Branch_and_bound; Exhaustive ]
  | "" -> Error "empty fallback chain"
  | _ ->
    let parts = String.split_on_char ',' s |> List.map String.trim in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | "" :: _ -> Error "empty solver name in chain"
      | p :: rest ->
        (match Solver.spec_of_string p with
         | Ok spec -> go (spec :: acc) rest
         | Error e -> Error e)
    in
    go [] parts

(* Stages cheap enough to run after the deadline, inside the grace
   window: polynomial, small constants. Everything else is skipped once
   the budget is gone. *)
let always_fast = function
  | Solver.Greedy | Solver.Page_all | Solver.Within_order _
  | Solver.Bandwidth_limited _ ->
    true
  | Solver.Exhaustive | Solver.Branch_and_bound | Solver.Best_exact
  | Solver.Local_search | Solver.Class_based | Solver.Robust _ ->
    false

let error_to_string = function
  | Timeout -> "timeout"
  | Inapplicable msg -> Printf.sprintf "inapplicable: %s" msg
  | Invalid_input msg -> Printf.sprintf "invalid input: %s" msg
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let stage_status_to_string = function
  | Completed -> "ok"
  | Degraded -> "ok (degraded: budget hit, best-so-far)"
  | Failed e -> error_to_string e

(* Observability (DESIGN §9): one counter per stage outcome, a latency
   histogram per stage, and a winner counter keyed by solver spec. The
   [*_ms] histograms are timing-dependent and exempt from the
   cross-domain counter-equality contract; the outcome counters are not
   — in re-ranking mode the raced and sequential paths execute the same
   stage set with the same statuses. *)
let obs_status_counter = function
  | Completed -> "runner_stage_completed"
  | Degraded -> "runner_stage_degraded"
  | Failed Timeout -> "runner_stage_timeout"
  | Failed (Inapplicable _) -> "runner_stage_inapplicable"
  | Failed (Invalid_input _) -> "runner_stage_invalid_input"
  | Failed (Internal _) -> "runner_stage_internal"

let obs_record_stage (s : stage_report) =
  if Obs.on () then begin
    Obs.count (obs_status_counter s.status);
    Obs.observe ~buckets:Obs.latency_ms_buckets "runner_stage_ms" s.elapsed_ms
  end

let quality_of ?objective inst (outcome : Solver.outcome) =
  let lower_bound = Bounds.lower_bound ?objective inst in
  let ep = outcome.Solver.expected_paging in
  let ratio = if lower_bound > 0.0 then ep /. lower_bound else Float.nan in
  let guarantee = Greedy.approximation_factor in
  {
    expected_paging = ep;
    lower_bound;
    ratio_to_lower_bound = ratio;
    guarantee;
    within_guarantee = (ratio <= guarantee +. 1e-9);
  }

let run ?(objective = Objective.Find_all) ?budget_ms ?(grace_ms = 100.0)
    ?(clock = Cancel.now) ?(ensure_baseline = true) ?(chain = default_chain)
    ?uncertainty ?pool ?arena inst =
  Obs.span "runner.run" @@ fun run_sp ->
  Obs.count "runner_runs";
  let chain =
    if ensure_baseline && not (List.mem Solver.Page_all chain) then
      chain @ [ Solver.Page_all ]
    else chain
  in
  let start = clock () in
  let deadline = Option.map (fun b -> start +. (b /. 1000.0)) budget_ms in
  let unguarded = Option.is_some deadline in
  let finish ~stages ~winner ~failure =
    let quality =
      Option.map (fun (_, o) -> quality_of ~objective inst o) winner
    in
    let robust =
      match (uncertainty, winner) with
      | Some u, Some (_, o) ->
        (try
           let strat = o.Solver.strategy in
           Some
             {
               uncertainty = u;
               winner_robust_ep =
                 Uncertainty.robust_ep ~objective u inst strat;
               winner_bounds = Uncertainty.ep_bounds ~objective u inst strat;
             }
         with Invalid_argument _ -> None)
      | _ -> None
    in
    let total_ms = (clock () -. start) *. 1000.0 in
    if Obs.on () then begin
      (match winner with
       | Some (spec, _) ->
         Obs.count
           ("runner_winner_" ^ Obs.sanitize (Solver.spec_to_string spec))
       | None -> Obs.count "runner_no_winner");
      (match quality with
       | Some q when Float.is_finite q.ratio_to_lower_bound ->
         Obs.observe ~buckets:Obs.excess_buckets "runner_ep_excess"
           (Float.max 0.0 (q.ratio_to_lower_bound -. 1.0))
       | Some _ | None -> ());
      match budget_ms with
      | Some b ->
        Obs.observe ~buckets:Obs.latency_ms_buckets "runner_budget_slack_ms"
          (b -. total_ms)
      | None -> ()
    end;
    {
      chain;
      objective;
      budget_ms;
      winner;
      stages = List.rev stages;
      total_ms;
      quality;
      robust;
      failure;
    }
  in
  let input_error =
    match Objective.validate objective ~m:inst.Instance.m with
    | Error msg -> Some msg
    | Ok () ->
      (match uncertainty with
       | None -> None
       | Some u ->
         (match Uncertainty.validate u ~m:inst.Instance.m with
          | Error msg -> Some ("uncertainty: " ^ msg)
          | Ok () -> None))
  in
  match input_error with
  | Some msg ->
    finish ~stages:[] ~winner:None ~failure:(Some (Invalid_input msg))
  | None ->
    (* Worst-case EP of a completed stage's strategy — the re-ranking
       key in uncertainty mode. [infinity] keeps an unscorable stage as
       a last-resort candidate so the run can still produce a winner. *)
    let robust_score (outcome : Solver.outcome) =
      match uncertainty with
      | None -> None
      | Some u ->
        (try
           Some (Uncertainty.robust_ep ~objective u inst
                   outcome.Solver.strategy)
         with Invalid_argument _ -> Some infinity)
    in
    let rec go best stages = function
      | [] ->
        (match best with
         | Some (spec, outcome, _) ->
           finish ~stages ~winner:(Some (spec, outcome)) ~failure:None
         | None ->
           let failure =
             if
               List.exists
                 (fun s -> s.status = Failed Timeout)
                 stages
             then Timeout
             else Internal "fallback chain exhausted without a result"
           in
           finish ~stages ~winner:None ~failure:(Some failure))
      | spec :: rest ->
        let t0 = clock () in
        let overdue =
          match deadline with Some d -> t0 >= d | None -> false
        in
        if overdue && not (always_fast spec) then
          let stage =
            { spec; status = Failed Timeout; elapsed_ms = 0.0;
              expected_paging = None; robust_ep = None; raced = false }
          in
          (obs_record_stage stage;
           go best (stage :: stages) rest)
        else begin
          (* Fresh token per stage: a token fired during one stage must
             not instantly cancel the next. Overdue fast stages get the
             grace window; [Page_all] is O(m·c) and runs untokened. *)
          let cancel =
            match (spec, deadline) with
            | Solver.Page_all, _ | _, None -> Cancel.never
            | _, Some d ->
              let d = if overdue then clock () +. (grace_ms /. 1000.0) else d in
              Cancel.deadline ~clock d
          in
          let result =
            Obs.span ~parent:run_sp ("stage:" ^ Solver.spec_to_string spec)
            @@ fun _sp ->
            match Solver.solve ~objective ~cancel ~unguarded ?arena spec inst with
            | outcome ->
              if Cancel.cancelled cancel then Ok (Degraded, outcome)
              else Ok (Completed, outcome)
            | exception Cancel.Cancelled -> Error Timeout
            | exception Invalid_argument msg -> Error (Inapplicable msg)
            | exception exn -> Error (Internal (Printexc.to_string exn))
          in
          let elapsed_ms = (clock () -. t0) *. 1000.0 in
          match result with
          | Ok (status, outcome) ->
            let rscore = robust_score outcome in
            let stage =
              { spec; status; elapsed_ms;
                expected_paging = Some outcome.Solver.expected_paging;
                robust_ep = rscore; raced = false }
            in
            obs_record_stage stage;
            (match uncertainty with
             | None ->
               finish ~stages:(stage :: stages)
                 ~winner:(Some (spec, outcome)) ~failure:None
             | Some _ ->
               (* Re-ranking mode: keep going and remember the stage
                  with the best certified worst case (first wins ties —
                  earlier chain entries are the stronger methods). *)
               let r = Option.value rscore ~default:infinity in
               let best' =
                 match best with
                 | Some (_, _, r') when r' <= r -> best
                 | _ -> Some (spec, outcome, r)
               in
               go best' (stage :: stages) rest)
          | Error err ->
            let stage =
              { spec; status = Failed err; elapsed_ms;
                expected_paging = None; robust_ep = None; raced = false }
            in
            obs_record_stage stage;
            go best (stage :: stages) rest
        end
    in
    (* Raced execution: all stages of the chain run concurrently on the
       pool; in first-success mode the winner is the minimum-chain-index
       success — exactly the stage the sequential loop would have chosen
       — so a success at index i makes every j > i a definitive loser,
       and we flip their lose flags the moment i completes. Stages
       before i keep running: one of them may still succeed and take the
       win. In re-ranking (uncertainty) mode every candidate's score is
       needed, so nothing is cancelled early. Each task polls its flag
       through its own [Cancel] token; losers unwind within one poll
       interval. *)
    let run_raced pool =
      let chain_arr = Array.of_list chain in
      let n = Array.length chain_arr in
      let lose = Array.init n (fun _ -> Atomic.make false) in
      let on_success i =
        if Option.is_none uncertainty then
          for j = i + 1 to n - 1 do
            Atomic.set lose.(j) true
          done
      in
      let run_one i =
        let spec = chain_arr.(i) in
        let t0 = clock () in
        let overdue =
          match deadline with Some d -> t0 >= d | None -> false
        in
        if overdue && not (always_fast spec) then begin
          let stage =
            { spec; status = Failed Timeout; elapsed_ms = 0.0;
              expected_paging = None; robust_ep = None; raced = true }
          in
          obs_record_stage stage;
          (stage, None)
        end
        else begin
          let lose_probe () = Atomic.get lose.(i) in
          let cancel =
            (* Same per-stage token policy as the sequential loop, with
               the lose flag OR-ed into the probe. [Page_all] stays
               untokened: it is the O(m·c) baseline whose completion the
               budget+grace guarantee leans on. *)
            match (spec, deadline) with
            | Solver.Page_all, _ -> Cancel.never
            | _, None -> Cancel.of_probe lose_probe
            | _, Some d ->
              let d =
                if overdue then clock () +. (grace_ms /. 1000.0) else d
              in
              Cancel.of_probe (fun () -> lose_probe () || clock () >= d)
          in
          let result =
            Obs.span ~parent:run_sp ("stage:" ^ Solver.spec_to_string spec)
            @@ fun _sp ->
            (* Raced stages run on pool domains: each uses its domain's
               private arena so concurrent stages never share scratch. *)
            let arena =
              match arena with
              | Some _ -> Some (Flat.domain_arena ())
              | None -> None
            in
            match Solver.solve ~objective ~cancel ~unguarded ?arena spec inst with
            | outcome ->
              on_success i;
              if Cancel.cancelled cancel then Ok (Degraded, outcome)
              else Ok (Completed, outcome)
            | exception Cancel.Cancelled -> Error Timeout
            | exception Invalid_argument msg -> Error (Inapplicable msg)
            | exception exn -> Error (Internal (Printexc.to_string exn))
          in
          let elapsed_ms = (clock () -. t0) *. 1000.0 in
          match result with
          | Ok (status, outcome) ->
            let rscore = robust_score outcome in
            let stage =
              { spec; status; elapsed_ms;
                expected_paging = Some outcome.Solver.expected_paging;
                robust_ep = rscore; raced = true }
            in
            obs_record_stage stage;
            (stage, Some (outcome, rscore))
          | Error err ->
            let stage =
              { spec; status = Failed err; elapsed_ms;
                expected_paging = None; robust_ep = None; raced = true }
            in
            obs_record_stage stage;
            (stage, None)
        end
      in
      (* [run_all], not [map]: a stage crashing its domain (chaos seam,
         stack overflow in a solver) must fail only that stage. The
         watchdog guard mirrors the sequential loop's budget + grace
         promise for tasks that stop cooperating: its cancel fires the
         stage's lose flag, and a stage that still will not unwind gets
         its worker lane recycled underneath it on completion. *)
      let guard i =
        match deadline with
        | None -> None
        | Some d ->
          Some
            Exec.Pool.
              { deadline_s = d; grace_s = grace_ms /. 1000.0;
                cancel = (fun () -> Atomic.set lose.(i) true) }
      in
      let results =
        Exec.Pool.run_all pool ~guard run_one (Array.init n Fun.id)
        |> Array.mapi (fun i -> function
          | Ok r -> r
          | Error e ->
            (* The stage never published: its domain died mid-flight.
               Surface it through the ordinary taxonomy. *)
            let stage =
              { spec = chain_arr.(i);
                status = Failed (Internal (Printexc.to_string e));
                elapsed_ms = 0.0; expected_paging = None;
                robust_ep = None; raced = true }
            in
            obs_record_stage stage;
            (stage, None))
      in
      let stages_rev =
        Array.fold_left (fun acc (s, _) -> s :: acc) [] results
      in
      let winner =
        match uncertainty with
        | None ->
          (* First (minimum-index) success, as the sequential chain. *)
          let rec first i =
            if i >= n then None
            else
              match results.(i) with
              | _, Some (outcome, _) -> Some (chain_arr.(i), outcome)
              | _, None -> first (i + 1)
          in
          first 0
        | Some _ ->
          (* Re-rank by worst-case EP; ties to the earlier chain entry
             (the iteration order makes [<=] keep the incumbent). *)
          let best = ref None in
          Array.iteri
            (fun i (_, r) ->
              match r with
              | None -> ()
              | Some (outcome, rscore) ->
                let r = Option.value rscore ~default:infinity in
                (match !best with
                 | Some (_, _, r') when r' <= r -> ()
                 | _ -> best := Some (chain_arr.(i), outcome, r)))
            results;
          Option.map (fun (spec, outcome, _) -> (spec, outcome)) !best
      in
      match winner with
      | Some w -> finish ~stages:stages_rev ~winner:(Some w) ~failure:None
      | None ->
        let failure =
          if
            List.exists (fun s -> s.status = Failed Timeout) stages_rev
          then Timeout
          else Internal "fallback chain exhausted without a result"
        in
        finish ~stages:stages_rev ~winner:None ~failure:(Some failure)
    in
    (match pool with
     | Some p when Exec.Pool.size p > 1 -> run_raced p
     | Some _ | None -> go None [] chain)

let solve ?objective ?budget_ms ?grace_ms ?clock ?chain ?uncertainty ?pool
    ?arena inst =
  let report =
    run ?objective ?budget_ms ?grace_ms ?clock ?chain ?uncertainty ?pool ?arena
      inst
  in
  match (report.winner, report.failure) with
  | Some (_, outcome), _ -> Ok outcome
  | None, Some err -> Error err
  | None, None -> Error (Internal "runner produced neither winner nor failure")

let pp_report fmt r =
  let open Format in
  fprintf fmt "chain: %s@," (chain_to_string r.chain);
  fprintf fmt "objective: %s@," (Objective.to_string r.objective);
  (match r.budget_ms with
   | Some b -> fprintf fmt "budget: %.1f ms@," b
   | None -> fprintf fmt "budget: none@,");
  List.iter
    (fun s ->
       fprintf fmt "  %-14s %8.2f ms  %s%s%s%s@,"
         (Solver.spec_to_string s.spec)
         s.elapsed_ms
         (stage_status_to_string s.status)
         (match s.expected_paging with
          | Some ep -> sprintf "  EP=%.6f" ep
          | None -> "")
         (match s.robust_ep with
          | Some rep -> sprintf "  worst-EP=%.6f" rep
          | None -> "")
         (if s.raced then "  [raced]" else ""))
    r.stages;
  (match r.winner with
   | Some (spec, outcome) ->
     fprintf fmt "winner: %s (EP=%.6f%s)@,"
       (Solver.spec_to_string spec)
       outcome.Solver.expected_paging
       (if outcome.Solver.exact then ", exact" else "")
   | None -> fprintf fmt "winner: none@,");
  (match r.quality with
   | Some q ->
     fprintf fmt
       "quality: EP=%.6f  LB=%.6f  ratio=%.4f  e/(e-1)=%.4f  %s@,"
       q.expected_paging q.lower_bound q.ratio_to_lower_bound q.guarantee
       (if q.within_guarantee then "within guarantee"
        else "above guarantee line")
   | None -> ());
  (match r.robust with
   | Some rr ->
     fprintf fmt "robust (%s): worst-case EP=%.6f  certified EP in [%.6f, %.6f]@,"
       (Uncertainty.to_string rr.uncertainty)
       rr.winner_robust_ep rr.winner_bounds.Uncertainty.lo
       rr.winner_bounds.Uncertainty.hi
   | None -> ());
  (match r.failure with
   | Some e -> fprintf fmt "failure: %s@," (error_to_string e)
   | None -> ());
  fprintf fmt "total: %.2f ms" r.total_ms
