(** Conference Call problem instances.

    An instance has [m] mobile devices, [c] cells and a delay constraint
    [d] (1 ≤ d ≤ c). Device [i] resides in cell [j] with probability
    [p i j], independently of the other devices; each row sums to 1
    (§1.2 of the paper). The paper assumes strictly positive entries, but
    its own §4.3 lower-bound instance uses zeros, so this implementation
    only requires non-negative rows with positive total mass. *)

type t = private {
  m : int;  (** number of mobile devices, ≥ 1 *)
  c : int;  (** number of cells, ≥ 1 *)
  d : int;  (** maximum number of paging rounds, 1 ≤ d ≤ c *)
  p : float array array;  (** [p.(i).(j)]: device [i] in cell [j] *)
}

(** [create ?row_sum_tol ~d p] validates and builds an instance (rows
    are copied verbatim, not renormalized — renormalizing would disturb
    exact cell-weight ties). [row_sum_tol] (default [1e-6]) is the
    allowed |Σⱼ p(i,j) − 1| residual; estimated matrices built from
    observation counts carry float round-off in their row sums and may
    need a looser tolerance at the uncertainty boundary.
    @raise Invalid_argument on dimension errors, negative entries, or
    rows not summing to 1 within the tolerance. *)
val create : ?row_sum_tol:float -> d:int -> float array array -> t

(** [create_exn] is [create]; kept as an explicit alias for call sites
    that want the raising behaviour to be visible. *)
val create_exn : ?row_sum_tol:float -> d:int -> float array array -> t

(** [validate ?row_sum_tol ~d p] is [Ok ()] or [Error reason] without
    building; the row-sum error names the row, its residual and the
    tolerance in force. *)
val validate :
  ?row_sum_tol:float -> d:int -> float array array -> (unit, string) result

(** [with_d t d] is [t] with a different delay constraint.
    @raise Invalid_argument when [d] is not in [1, c]. *)
val with_d : t -> int -> t

(** [cell_weight t j] is the expected number of devices in cell [j]:
    Σᵢ p(i,j) — the quantity the §4 heuristic sorts by. *)
val cell_weight : t -> int -> float

(** [weight_order t] is a permutation of cells by non-increasing
    {!cell_weight}, breaking ties by cell index (ascending). *)
val weight_order : t -> int array

(** [device_row t i] is a copy of device [i]'s distribution. *)
val device_row : t -> int -> float array

(** [restrict t ~cells ~devices] is the conditional sub-instance on the
    given cells (renormalizing each kept device's row) with delay [d];
    used by the adaptive solver.
    @raise Invalid_argument when a kept device has no mass on [cells] or
    the lists are empty. *)
val restrict : t -> d:int -> cells:int array -> devices:int array -> t

(** [block_diagonal ~d parts] combines per-device distributions over
    disjoint cell blocks into one joint instance: device [i] of part [k]
    has its given distribution over that part's cells and probability 0
    elsewhere. This is how a conference spanning several location areas
    becomes a single Conference Call instance (each callee is confined
    to their own last-reported area).
    @raise Invalid_argument on empty input or invalid rows. *)
val block_diagonal : d:int -> float array array list -> t

(** Generators. All draw from the supplied RNG only. *)

(** [random rng ~m ~c ~d ~gen] with independent rows from [gen]
    (e.g. [Prob.Dist.uniform_simplex rng]). *)
val random :
  Prob.Rng.t -> m:int -> c:int -> d:int -> gen:(Prob.Rng.t -> int -> float array) -> t

val random_uniform_simplex : Prob.Rng.t -> m:int -> c:int -> d:int -> t

(** Rows are independently shuffled Zipf distributions — users with
    different "home" cells. *)
val random_zipf : Prob.Rng.t -> s:float -> m:int -> c:int -> d:int -> t

(** All devices share one uniform row. *)
val all_uniform : m:int -> c:int -> d:int -> t

(** Serialization: a line-oriented text format
    ["m c d"] followed by m rows of c probabilities. *)

val to_string : t -> string

(** @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** Exact-arithmetic instances, used to verify the paper's rational
    identities (§3 reductions, the 317/49 instance of §4.3). *)
module Exact : sig
  type float_instance := t

  type t = private {
    m : int;
    c : int;
    d : int;
    p : Numeric.Rational.t array array;
  }

  (** @raise Invalid_argument on invalid rows (must be positive, sum 1). *)
  val create : d:int -> Numeric.Rational.t array array -> t

  val to_float : t -> float_instance
  val cell_weight : t -> int -> Numeric.Rational.t
  val weight_order : t -> int array
end
