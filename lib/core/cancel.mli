(** Cooperative cancellation for the solver hot loops.

    The exact methods (exhaustive enumeration, branch and bound, the
    adaptive DPs) are exponential; a production paging controller must be
    able to abandon them mid-search and fall back to the always-fast §4
    heuristic. A {!t} is a token the solver loops poll via {!check};
    when the token fires, {!Cancelled} unwinds the search. Polling cost
    is amortized: the underlying probe (typically a clock read) runs only
    every [every] checks, so a check is a couple of integer ops on the
    fast path.

    Tokens are single-use and not thread-safe — create one per run. *)

type t

(** Raised by {!check} once the token has fired. *)
exception Cancelled

(** A token that never fires (the default for direct solver calls). *)
val never : t

(** [of_probe ?every probe] fires once [probe ()] returns [true]; the
    probe runs every [every] checks (default 256).
    @raise Invalid_argument when [every < 1]. *)
val of_probe : ?every:int -> (unit -> bool) -> t

(** [deadline ?every ?clock t] fires when [clock ()] passes the absolute
    time [t] (seconds on [clock]'s scale; default {!now}). *)
val deadline : ?every:int -> ?clock:(unit -> float) -> float -> t

(** [budget_ms ?every ?clock ms] is [deadline (clock () +. ms /. 1000.)]. *)
val budget_ms : ?every:int -> ?clock:(unit -> float) -> float -> t

(** [check t] raises {!Cancelled} when the token has fired (and keeps
    raising on every later call); otherwise returns. Solvers call this
    inside their innermost practical loop. *)
val check : t -> unit

(** [poll t] is the non-raising form of {!check}: probes (amortized) and
    returns whether the token has fired. For anytime solvers that stop
    gracefully with their best-so-far instead of unwinding. *)
val poll : t -> bool

(** [cancelled t] is [true] once the token has fired, without probing. *)
val cancelled : t -> bool

(** The default budget clock, in seconds: wall time clamped to never run
    backwards (a poor man's monotonic clock — the container has no
    [mtime], and a backwards NTP step must not extend a deadline). *)
val now : unit -> float
