(** Oblivious paging strategies.

    A strategy is an ordered partition [S₁, …, S_t] of the cells: round
    [r] pages every cell of [Sᵣ], and the search stops at the first round
    whose cumulative prefix satisfies the objective (for the Conference
    Call problem: contains all devices). *)

type t = private { groups : int array array }

(** [create groups] validates that the groups are non-empty, disjoint and
    sorted internally; cell indices may cover any ground set.
    @raise Invalid_argument on empty/overlapping groups. *)
val create : int array array -> t

(** [validate ~c t] additionally checks that the groups partition
    [{0, …, c−1}]. *)
val validate : c:int -> t -> (unit, string) result

(** [of_sizes ~order ~sizes] cuts the cell sequence [order] into
    consecutive groups of the given sizes.
    @raise Invalid_argument when sizes are non-positive or do not sum to
    the length of [order]. *)
val of_sizes : order:int array -> sizes:int array -> t

(** [page_all c] is the single-round strategy paging every cell. *)
val page_all : int -> t

(** [singletons order] pages one cell per round, following [order]. *)
val singletons : int array -> t

val length : t -> int
val groups : t -> int array array
val sizes : t -> int array

(** [prefix_masses inst t] is the per-round, per-device cumulative mass:
    row [r] (0-based) gives, for each device, P[device ∈ S₁ ∪ … ∪ S_{r+1}]. *)
val prefix_masses : Instance.t -> t -> float array array

(** [success_by_round ?objective inst t] is F_r = P[stop by round r+1]
    for r = 0 … t−1 (Lemma 2.1's Pr[F_r]). Default objective: [Find_all]. *)
val success_by_round : ?objective:Objective.t -> Instance.t -> t -> float array

(** [expected_paging ?objective inst t] is the expected number of cells
    paged until the objective is met (Lemma 2.1):
    EP = c − Σ_{r=1}^{t−1} |S_{r+1}|·F_r.
    @raise Invalid_argument when the strategy does not partition the
    instance's cells or is longer than [inst.d]. *)
val expected_paging : ?objective:Objective.t -> Instance.t -> t -> float

(** [expected_cost ?objective inst ~cell_cost t] generalizes
    {!expected_paging} to per-cell paging costs:
    E[cost] = cost([c]) − Σ_{r} cost(S_{r+1})·F_r. With unit costs this
    is exactly {!expected_paging}.
    @raise Invalid_argument on length mismatch or invalid strategy. *)
val expected_cost :
  ?objective:Objective.t -> Instance.t -> cell_cost:float array -> t -> float

(** [expected_paging_unchecked] skips the partition check (hot path for
    exhaustive search). *)
val expected_paging_unchecked :
  ?objective:Objective.t -> Instance.t -> t -> float

(** [expected_rounds ?objective inst t] is the expected number of rounds
    until the search stops. *)
val expected_rounds : ?objective:Objective.t -> Instance.t -> t -> float

(** [cost_on_outcome ?objective t ~m ~positions] is the number of cells
    actually paged when device [i] sits in cell [positions.(i)] — the
    deterministic cost of one ground-truth outcome. Used by Monte Carlo
    validation and the end-to-end simulator.
    @raise Invalid_argument if some position never appears in [t]. *)
val cost_on_outcome :
  ?objective:Objective.t -> t -> m:int -> positions:int array -> int

(** [monte_carlo_ep ?objective inst t rng ~trials] estimates EP by
    sampling outcomes; returns the sample summary. *)
val monte_carlo_ep :
  ?objective:Objective.t ->
  Instance.t ->
  t ->
  Prob.Rng.t ->
  trials:int ->
  Prob.Stats.summary

(** Exact-rational expected paging on an exact instance. *)
val expected_paging_exact :
  ?objective:Objective.t -> Instance.Exact.t -> t -> Numeric.Rational.t

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
