(** Adaptive paging strategies (§5).

    An adaptive strategy chooses each round's cells after seeing which
    devices earlier rounds found. The paper proposes the natural
    extension of its heuristic: each round, recompute conditional
    location probabilities for the still-missing devices and re-run the
    Fig. 1 algorithm on the remaining cells and rounds, paging its first
    group. Analyzing this policy's ratio is stated as an open problem;
    here we evaluate it numerically.

    Since the only feedback is which devices appeared in the paged cells,
    the reachable states are (remaining cells, missing devices, rounds
    left), and the policy's exact expected cost follows by enumerating
    all joint device positions. *)

type policy =
  rounds_left:int -> remaining:int array -> missing:int array -> int array
(** A policy maps the observable state to the set of cells (a subset of
    [remaining]) to page next. It must page all remaining cells when
    [rounds_left = 1] so the delay constraint is honored. *)

(** [greedy_policy ?objective inst] re-plans with {!Greedy} on the
    conditional sub-instance each round (decisions memoized per state). *)
val greedy_policy : ?objective:Objective.t -> Instance.t -> policy

(** [oblivious_policy strategy] replays a fixed strategy, ignoring
    feedback — the bridge for oblivious-vs-adaptive comparisons. *)
val oblivious_policy : Strategy.t -> policy

(** [evaluate_exact ?objective inst policy] is the exact expected number
    of cells paged, by enumeration over all cᵐ joint positions.
    @raise Invalid_argument when cᵐ > 2,000,000. *)
val evaluate_exact : ?objective:Objective.t -> Instance.t -> policy -> float

(** [evaluate_monte_carlo ?objective inst policy rng ~trials] estimates
    the same expectation by sampling. *)
val evaluate_monte_carlo :
  ?objective:Objective.t ->
  Instance.t ->
  policy ->
  Prob.Rng.t ->
  trials:int ->
  Prob.Stats.summary

(** [greedy_adaptive_ep ?objective inst] = [evaluate_exact] of
    [greedy_policy]. *)
val greedy_adaptive_ep : ?objective:Objective.t -> Instance.t -> float
