(** Matrix misspecification: certified EP bounds and worst-case EP.

    The whole stack assumes the location matrix [p(i,j)] is exact, but a
    deployed pager only ever has an estimate. This module models the
    estimation error as a perturbation ball around the nominal instance
    and certifies expected paging over the ball:

    - each entry may move by at most [eps] (an L∞ ball, per row or
      uniform), entries stay in [0, 1];
    - each row may shift at most [tv] total-variation mass
      ((1/2)·Σⱼ|qᵢⱼ − pᵢⱼ| ≤ tv), rows stay normalized.

    {2 Why the bounds are sound — and the worst case exact}

    Lemma 2.1 writes EP = c − Σ_{r≥2} |S_r|·F_{r−1} where F_r is the
    objective's success probability on the per-device prefix masses
    m(i,r) = Σ_{j ∈ S₁∪…∪S_r} q(i,j). Every objective we support
    ([Find_all], [Find_any], [Find_at_least]) is non-decreasing in each
    prefix mass, so EP is non-increasing in each m(i,r), and devices are
    independent, so the adversary optimizes each row separately.

    For one row, EP depends on q only through its prefix masses, and
    ∂EP/∂q(i,j) depends only on the group index of cell j and is
    monotone in it. Hence a single canonical perturbation — move mass
    out of the earliest groups (at most [min eps p(i,j)] per cell) into
    the latest groups (at most [min eps (1−p(i,j))] per cell), spending
    at most [tv] — simultaneously achieves, for {e every} round r, the
    maximum prefix-mass reduction

    {[ δ⁻(i,r) = min (Σ_{j ∈ prefix r} min eps p(i,j))
                     (Σ_{j ∉ prefix r} min eps (1−p(i,j)))
                     tv ]}

    (any transfer that lowers prefix r pairs a source inside it with a
    destination outside it, so the three terms are separately binding;
    the greedy order makes them all tight at once). The mirror
    construction maximizes every mass. Consequently:

    - {!robust_ep} / {!optimistic_ep} are {e exact} extremes over the
      ball (up to float evaluation error) for every instance size — no
      vertex enumeration needed;
    - {!ep_bounds} evaluates Lemma 2.1 over the per-round mass interval
      [\[m(i,r) − δ⁻(i,r), m(i,r) + δ⁺(i,r)\]] with directed-rounding
      interval arithmetic ({!Numeric.Interval}), so the returned bounds
      also dominate float round-off in the evaluation itself.

    Validated against exact {!Numeric.Rational} arithmetic in
    [test/test_uncertainty.ml]. *)

type t = private {
  eps : float;  (** uniform per-entry L∞ radius, used when [row_eps] is [None] *)
  row_eps : float array option;  (** per-device L∞ radius *)
  tv : float;  (** per-row total-variation budget; [infinity] = unconstrained *)
}

(** [uniform ?tv eps] — same ε for every row. [tv] defaults to
    [infinity] (the L∞ ball alone constrains the adversary).
    @raise Invalid_argument unless [0 ≤ eps ≤ 1] and [tv ≥ 0]. *)
val uniform : ?tv:float -> float -> t

(** [per_row ?tv eps] — device [i] has radius [eps.(i)] (e.g. from
    {!Prob.Estimate.dkw_eps} on per-device sample counts).
    @raise Invalid_argument on an empty array or out-of-range radius. *)
val per_row : ?tv:float -> float array -> t

(** [eps_for t i] is the radius for device [i]'s row. *)
val eps_for : t -> int -> float

(** [inflate t ~by] grows device [i]'s L∞ radius by [by.(i)] ≥ 0,
    capping at the trivial radius 1 and preserving the TV budget — the
    staleness hook: radii widen with profile age (e.g. by
    {!Prob.Estimate.staleness_eps} churn) and can never shrink, so
    worst-case EP over the inflated ball dominates the original.
    A uniform [t] becomes per-row; [by] must then have one entry per
    device row.
    @raise Invalid_argument on an empty or negative [by], or a length
    mismatch with an existing [row_eps]. *)
val inflate : t -> by:float array -> t

(** [validate t ~m] checks [row_eps] (when present) has length [m]. *)
val validate : t -> m:int -> (unit, string) result

type bounds = { lo : float; hi : float }

(** [ep_bounds ?objective t inst strat] encloses the expected paging of
    [strat] against {e every} matrix in the ball around [inst]
    (including [inst] itself, so the nominal EP always lies inside).
    @raise Invalid_argument when the strategy does not partition the
    instance's cells, is longer than [inst.d], or [t] fails
    {!validate}. *)
val ep_bounds : ?objective:Objective.t -> t -> Instance.t -> Strategy.t -> bounds

(** [worst_case_instance t inst strat] is the canonical adversarial
    matrix: every row simultaneously minimizes all of [strat]'s prefix
    masses over the ball. Its EP is the exact worst case. *)
val worst_case_instance : t -> Instance.t -> Strategy.t -> Instance.t

(** [best_case_instance t inst strat] is the mirror construction
    (every prefix mass maximized). *)
val best_case_instance : t -> Instance.t -> Strategy.t -> Instance.t

(** [robust_ep ?objective t inst strat] is the worst-case expected
    paging over the ball — [expected_paging] of
    {!worst_case_instance}. Monotone non-decreasing in [eps] and [tv];
    always within {!ep_bounds} up to float evaluation error. *)
val robust_ep : ?objective:Objective.t -> t -> Instance.t -> Strategy.t -> float

(** [optimistic_ep ?objective t inst strat] is the best-case EP over
    the ball ([expected_paging] of {!best_case_instance}). *)
val optimistic_ep :
  ?objective:Objective.t -> t -> Instance.t -> Strategy.t -> float

val to_string : t -> string
val pp : Format.formatter -> t -> unit
