module Q = Numeric.Rational

type t = Find_all | Find_any | Find_at_least of int

let validate t ~m =
  match t with
  | Find_all | Find_any -> Ok ()
  | Find_at_least k ->
    if k >= 1 && k <= m then Ok ()
    else Error "Find_at_least k requires 1 <= k <= m"

(* P[#devices in prefix >= k] for independent indicators, by the standard
   Poisson-binomial DP over devices. *)
let tail_at_least k probs =
  let m = Array.length probs in
  if k <= 0 then 1.0
  else if k > m then 0.0
  else begin
    let dp = Array.make (m + 1) 0.0 in
    dp.(0) <- 1.0;
    Array.iteri
      (fun i p ->
        for j = i + 1 downto 1 do
          dp.(j) <- (dp.(j) *. (1.0 -. p)) +. (dp.(j - 1) *. p)
        done;
        dp.(0) <- dp.(0) *. (1.0 -. p))
      probs;
    (* The tail can mix magnitudes badly (many tiny dp cells below a few
       dominant ones); compensated summation keeps the result faithful
       to the exact-rational path. *)
    let s = ref Numeric.Kahan.zero in
    for j = k to m do
      s := Numeric.Kahan.step !s dp.(j)
    done;
    Numeric.Kahan.value !s
  end

let success t probs =
  match t with
  | Find_all -> Array.fold_left ( *. ) 1.0 probs
  | Find_any ->
    1.0 -. Array.fold_left (fun acc p -> acc *. (1.0 -. p)) 1.0 probs
  | Find_at_least k -> tail_at_least k probs

(* Flat-path mirror of [success]: reads [n] prefix masses from [src]
   starting at [off], writes the success probability into [dst.(di)].
   Every fold below replays [success] op for op (same accumulation
   order, same compensated tail sum), so the stored value is
   bit-identical to the list-path result. Results travel through the
   destination slot rather than a return value because ocamlopt boxes
   floats crossing non-inlined function boundaries — this function is
   called from per-round inner loops that must not allocate.
   [dp] is scratch of length >= n + 1, used only by [Find_at_least]. *)
let success_into t ~src ~off ~n ~dp ~dst ~di =
  match t with
  | Find_all ->
    let s = ref 1.0 in
    for i = 0 to n - 1 do
      s := !s *. Float.Array.get src (off + i)
    done;
    Float.Array.set dst di !s
  | Find_any ->
    let s = ref 1.0 in
    for i = 0 to n - 1 do
      s := !s *. (1.0 -. Float.Array.get src (off + i))
    done;
    Float.Array.set dst di (1.0 -. !s)
  | Find_at_least k ->
    if k <= 0 then Float.Array.set dst di 1.0
    else if k > n then Float.Array.set dst di 0.0
    else begin
      for j = 1 to n do
        Float.Array.set dp j 0.0
      done;
      Float.Array.set dp 0 1.0;
      for i = 0 to n - 1 do
        let p = Float.Array.get src (off + i) in
        for j = i + 1 downto 1 do
          Float.Array.set dp j
            ((Float.Array.get dp j *. (1.0 -. p))
            +. (Float.Array.get dp (j - 1) *. p))
        done;
        Float.Array.set dp 0 (Float.Array.get dp 0 *. (1.0 -. p))
      done;
      (* Neumaier tail sum, mirroring [tail_at_least]. *)
      let sum = ref 0.0 and comp = ref 0.0 in
      for j = k to n do
        let x = Float.Array.get dp j in
        let s = !sum +. x in
        if abs_float !sum >= abs_float x then
          comp := !comp +. (!sum -. s +. x)
        else comp := !comp +. (x -. s +. !sum);
        sum := s
      done;
      Float.Array.set dst di (!sum +. !comp)
    end

let tail_at_least_exact k probs =
  let m = Array.length probs in
  if k <= 0 then Q.one
  else if k > m then Q.zero
  else begin
    let dp = Array.make (m + 1) Q.zero in
    dp.(0) <- Q.one;
    Array.iteri
      (fun i p ->
        let not_p = Q.sub Q.one p in
        for j = i + 1 downto 1 do
          dp.(j) <- Q.add (Q.mul dp.(j) not_p) (Q.mul dp.(j - 1) p)
        done;
        dp.(0) <- Q.mul dp.(0) not_p)
      probs;
    let s = ref Q.zero in
    for j = k to m do
      s := Q.add !s dp.(j)
    done;
    !s
  end

let success_exact t probs =
  match t with
  | Find_all -> Array.fold_left Q.mul Q.one probs
  | Find_any ->
    Q.sub Q.one
      (Array.fold_left (fun acc p -> Q.mul acc (Q.sub Q.one p)) Q.one probs)
  | Find_at_least k -> tail_at_least_exact k probs

let found_enough t ~m ~found =
  match t with
  | Find_all -> found >= m
  | Find_any -> found >= 1
  | Find_at_least k -> found >= k

let to_string = function
  | Find_all -> "find-all"
  | Find_any -> "find-any"
  | Find_at_least k -> Printf.sprintf "find-%d" k

let pp ppf t = Format.pp_print_string ppf (to_string t)
