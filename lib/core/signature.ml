let check inst ~k =
  match Objective.validate (Objective.Find_at_least k) ~m:inst.Instance.m with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Signature: " ^ reason)

let solve inst ~k =
  check inst ~k;
  Greedy.solve ~objective:(Objective.Find_at_least k) inst

let exhaustive inst ~k =
  check inst ~k;
  Optimal.exhaustive ~objective:(Objective.Find_at_least k) inst

let sweep inst =
  Array.init inst.Instance.m (fun i ->
      (solve inst ~k:(i + 1)).Order_dp.expected_paging)
