let check inst ~k =
  match Objective.validate (Objective.Find_at_least k) ~m:inst.Instance.m with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Signature: " ^ reason)

let solve inst ~k =
  check inst ~k;
  Greedy.solve ~objective:(Objective.Find_at_least k) inst

let exhaustive inst ~k =
  check inst ~k;
  Optimal.exhaustive ~objective:(Objective.Find_at_least k) inst

let sweep inst =
  Array.init inst.Instance.m (fun i ->
      (solve inst ~k:(i + 1)).Order_dp.expected_paging)

(* ---------------- canonical instance keys ----------------

   The serve-side result cache needs one stable key per problem, not
   per byte representation. Two instances that differ only in device
   order are the same problem — every objective here ([Find_all],
   [Find_any], [Find_at_least]) is symmetric under device permutation
   and a strategy is a partition of cells only — so rows are sorted
   into a canonical order. Entries are quantized to a [quantum] grid
   first so that float noise below the grid (re-serialized matrices,
   re-estimated profiles) maps to the same key; instances closer than
   the grid intentionally collide, which trades sub-quantum EP
   differences for cache hits and is documented at the API. *)

let canonical_key ?(quantum = 1e-9) ~objective inst =
  if not (Float.is_finite quantum) || quantum <= 0.0 then
    invalid_arg "Signature.canonical_key: quantum must be positive and finite";
  let { Instance.m; c; d; p } = inst in
  let buf = Buffer.create (m * c * 8) in
  let rows =
    Array.map
      (fun row ->
        Buffer.clear buf;
        Array.iter
          (fun x ->
            (* Probabilities are in [0, 1]: the quantized value fits an
               int for any sane quantum (guarded below for tiny ones). *)
            let q = Float.round (x /. quantum) in
            if Float.abs q > 1e15 then
              Buffer.add_string buf (Printf.sprintf "%.17g;" x)
            else
              Buffer.add_string buf
                (Printf.sprintf "%Ld;" (Int64.of_float q)))
          row;
        Buffer.contents buf)
      p
  in
  Array.sort String.compare rows;
  let material =
    Printf.sprintf "v1|m=%d|c=%d|d=%d|obj=%s|q=%.3g|%s" m c d
      (Objective.to_string objective)
      quantum
      (String.concat "|" (Array.to_list rows))
  in
  Digest.to_hex (Digest.string material)
