let success_cap objective ~m x =
  match objective with
  | Objective.Find_all ->
    Stdlib.min 1.0 ((x /. float_of_int m) ** float_of_int m)
  | Objective.Find_any -> Stdlib.min 1.0 x
  | Objective.Find_at_least k -> Stdlib.min 1.0 (x /. float_of_int k)

let amgm_dp ?(objective = Objective.Find_all) inst =
  let c = inst.Instance.c and d = inst.Instance.d and m = inst.Instance.m in
  (* W(b): total weight of the b heaviest cells; any b-cell prefix of any
     strategy has success probability at most g(b) = cap(W(b)). *)
  let order = Instance.weight_order inst in
  let w = Array.make (c + 1) 0.0 in
  for b = 1 to c do
    w.(b) <- w.(b - 1) +. Instance.cell_weight inst order.(b - 1)
  done;
  let g = Array.init (c + 1) (fun b -> success_cap objective ~m w.(b)) in
  (* EP of any t-round strategy with prefix sizes b_1 < … < b_t = c is at
     least c - Σ_{r=1}^{t-1} (b_{r+1} - b_r)·g(b_r). Maximize the saving:
     s.(l).(b) = best saving when the current prefix is b and l rounds
     remain; the next group [b, b') contributes (b' - b)·g(b). *)
  let t = Stdlib.min d c in
  let s = Array.make_matrix (t + 1) (c + 1) neg_infinity in
  for b = 0 to c - 1 do
    s.(1).(b) <- float_of_int (c - b) *. g.(b)
  done;
  for l = 2 to t do
    for b = 0 to c - l do
      let acc = ref neg_infinity in
      for b' = b + 1 to c - l + 1 do
        let v = (float_of_int (b' - b) *. g.(b)) +. s.(l - 1).(b') in
        if v > !acc then acc := v
      done;
      s.(l).(b) <- !acc
    done
  done;
  float_of_int c -. Stdlib.max 0.0 s.(t).(0)

let occupied_cells inst =
  let c = inst.Instance.c and m = inst.Instance.m in
  let s = ref 0.0 in
  for j = 0 to c - 1 do
    let none = ref 1.0 in
    for i = 0 to m - 1 do
      none := !none *. (1.0 -. inst.Instance.p.(i).(j))
    done;
    s := !s +. (1.0 -. !none)
  done;
  !s

let lower_bound ?(objective = Objective.Find_all) inst =
  let base = amgm_dp ~objective inst in
  match objective with
  | Objective.Find_all -> Stdlib.max base (occupied_cells inst)
  | Objective.Find_any | Objective.Find_at_least _ -> Stdlib.max base 1.0

let page_all_upper inst = float_of_int inst.Instance.c
