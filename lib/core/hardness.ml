module Q = Numeric.Rational
module B = Numeric.Bigint

(* Search for a subset of the given cardinality summing to the target.
   Plain DFS with remaining-count pruning; instances here are small. *)
let subset_with_sum ~cardinality ~target ~add ~zero ~equal ~compare_le sizes =
  let n = Array.length sizes in
  let rec go i chosen picked acc =
    if picked = cardinality then if equal acc target then Some chosen else None
    else if i >= n then None
    else if n - i < cardinality - picked then None
    else if not (compare_le acc target) then None
    else begin
      match go (i + 1) (i :: chosen) (picked + 1) (add acc sizes.(i)) with
      | Some result -> Some result
      | None -> go (i + 1) chosen picked acc
    end
  in
  Option.map List.rev (go 0 [] 0 zero)

let partition_brute sizes =
  let g = Array.length sizes in
  if g = 0 || g mod 2 <> 0 then None
  else begin
    let total = Array.fold_left ( + ) 0 sizes in
    if total mod 2 <> 0 then None
    else
      subset_with_sum ~cardinality:(g / 2) ~target:(total / 2) ~add:( + )
        ~zero:0 ~equal:( = )
        ~compare_le:(fun a b -> a <= b)
        sizes
  end

let quasipartition1_brute sizes =
  let c = Array.length sizes in
  if c = 0 || c mod 3 <> 0 then None
  else begin
    let total = Q.sum (Array.to_list sizes) in
    let target = Q.div total (Q.of_int 2) in
    subset_with_sum
      ~cardinality:(2 * c / 3)
      ~target ~add:Q.add ~zero:Q.zero ~equal:Q.equal
      ~compare_le:(fun a b -> Q.compare a b <= 0)
      sizes
  end

let qp1_to_conference sizes =
  let c = Array.length sizes in
  if c = 0 || c mod 3 <> 0 then
    invalid_arg "Hardness.qp1_to_conference: c must be divisible by 3"
  else if Array.exists (fun s -> Q.sign s < 0) sizes then
    invalid_arg "Hardness.qp1_to_conference: negative size"
  else begin
    let total = Q.sum (Array.to_list sizes) in
    if Q.sign total <= 0 then
      invalid_arg "Hardness.qp1_to_conference: total size must be positive"
    else if Array.exists (fun s -> Q.compare s total >= 0) sizes then
      invalid_arg "Hardness.qp1_to_conference: some size equals the total"
    else begin
      let twoc = 2 * c in
      let pred_c = c - 1 in
      let p_denom = Q.(sub (of_int c) (of_ints 1 2)) in
      let q_denom = Q.of_int pred_c in
      let p =
        Array.map
          (fun s ->
            let frac = Q.div s total in
            Q.(div (add (sub one (of_ints 3 twoc)) frac) p_denom))
          sizes
      in
      let q =
        Array.map
          (fun s ->
            let frac = Q.div s total in
            Q.(div (sub one frac) q_denom))
          sizes
      in
      Instance.Exact.create ~d:2 [| p; q |]
    end
  end

let qp1_lower_bound ~c = Numeric.Lemma_bounds.lb_lemma32 ~c

let qp1_answer_via_conference sizes =
  let c = Array.length sizes in
  let total = Q.sum (Array.to_list sizes) in
  if Q.sign total <= 0 then
    (* All-zero sizes: any 2c/3-subset sums to 0 = S/2. *)
    c > 0 && c mod 3 = 0
  else if Array.exists (fun s -> Q.compare s total >= 0) sizes then false
  else begin
    let inst = qp1_to_conference sizes in
    let _, ep = Optimal.exhaustive_exact inst in
    Q.equal ep (qp1_lower_bound ~c)
  end

let partition_to_qp1 sizes =
  let g = Array.length sizes in
  if g = 0 || g mod 2 <> 0 then
    invalid_arg "Hardness.partition_to_qp1: even positive count required"
  else if Array.exists (fun s -> s <= 0) sizes then
    invalid_arg "Hardness.partition_to_qp1: sizes must be positive"
  else begin
    (* Lemma 3.7 with M = 3, r_u = 1/3, r_v = 2/3, x_u = x_v = 1/2.
       h is even and large enough that both padding counts are >= 0. *)
    let h =
      let quotient = (g + 1) / 2 in
      2 * Stdlib.max 1 quotient
    in
    let u_pad = h - 1 - (g / 2) in
    let v_pad = (2 * h) - 1 - (g / 2) in
    if u_pad < 0 || v_pad < 0 then
      invalid_arg "Hardness.partition_to_qp1: internal padding error"
    else begin
      let total = Array.fold_left ( + ) 0 sizes in
      (* 2^p exceeds the sum of the raw sizes, forcing any half-sum subset
         of the augmented sizes to use exactly g/2 of them. *)
      let p =
        let rec bits v acc = if v = 0 then acc else bits (v / 2) (acc + 1) in
        bits total 0
      in
      let big = B.pow B.two p in
      let augmented =
        Array.map (fun s -> Q.of_bigint (B.add (B.of_int s) big)) sizes
      in
      let sentinel = Q.of_ints 1 3 in
      (* Scale the augmented sizes to total 1 − 2·(1/3) = 1/3. *)
      let augmented_total = Q.sum (Array.to_list augmented) in
      let scale = Q.div (Q.of_ints 1 3) augmented_total in
      let scaled = Array.map (fun s -> Q.mul s scale) augmented in
      let zeros = Array.make (u_pad + v_pad) Q.zero in
      Array.concat [ scaled; zeros; [| sentinel; sentinel |] ]
    end
  end

let partition_answer_via_chain sizes =
  qp1_answer_via_conference (partition_to_qp1 sizes)

type multipartition_params = {
  alphas : Q.t array;
  rs : Q.t array;
  xs : Q.t array;
  modulus : B.t;
}

let multipartition_params ~m ~d =
  if m < 2 || d < 2 then
    invalid_arg "Hardness.multipartition_params: m >= 2 and d >= 2 required"
  else begin
    let mq = Q.of_int m in
    let succ_m = Q.of_int (m + 1) in
    let alphas = Array.make (d - 1) Q.zero in
    for k = 0 to d - 2 do
      alphas.(k) <-
        (if k = 0 then Q.div mq succ_m
         else Q.div mq (Q.sub succ_m (Q.pow alphas.(k - 1) m)))
    done;
    (* b fractions: b_d/c = 1, b_{k-1}/c = α_{k-1} · b_k/c. *)
    let b = Array.make (d + 1) Q.zero in
    b.(d) <- Q.one;
    for k = d downto 2 do
      b.(k - 1) <- Q.mul alphas.(k - 2) b.(k)
    done;
    let rs = Array.init d (fun j -> Q.sub b.(j + 1) b.(j)) in
    let xs = Array.make d Q.zero in
    let half = Q.of_ints 1 2 in
    for j = 1 to d - 1 do
      xs.(j - 1) <- Q.mul half (Q.sub b.(j) b.(j - 1))
    done;
    let partial = Q.sum (Array.to_list (Array.sub xs 0 (d - 1))) in
    xs.(d - 1) <- Q.sub Q.one partial;
    let lcm a bb = B.div (B.mul a bb) (B.gcd a bb) in
    let modulus =
      Array.fold_left (fun acc r -> lcm acc (Q.den r)) B.one rs
    in
    { alphas; rs; xs; modulus }
  end

type qp2_params = {
  qp_modulus : B.t;
  qp_ru : Q.t;
  qp_rv : Q.t;
  qp_xu : Q.t;
  qp_xv : Q.t;
}

type qp2_instance = {
  q_sizes : Q.t array;
  q_cardinality : int;
  q_target_fraction : Q.t;
}

(* The (u, v) selection of Lemma 3.7: sort the x's non-increasingly; of
   the two final positions, u has the smaller group fraction r (ties go
   to the last position). *)
let qp2_params ~m ~d =
  let p = multipartition_params ~m ~d in
  let dd = Array.length p.rs in
  let order = Array.init dd (fun j -> j) in
  Array.sort (fun a b -> Q.compare p.xs.(b) p.xs.(a)) order;
  let a = order.(dd - 2) and b = order.(dd - 1) in
  let u, v =
    if Q.compare p.rs.(a) p.rs.(b) < 0 then a, b
    else if Q.compare p.rs.(a) p.rs.(b) > 0 then b, a
    else b, a
  in
  {
    qp_modulus = p.modulus;
    qp_ru = p.rs.(u);
    qp_rv = p.rs.(v);
    qp_xu = p.xs.(u);
    qp_xv = p.xs.(v);
  }

let qp1_params =
  {
    qp_modulus = B.of_int 3;
    qp_ru = Q.of_ints 1 3;
    qp_rv = Q.of_ints 2 3;
    qp_xu = Q.of_ints 1 2;
    qp_xv = Q.of_ints 1 2;
  }

let partition_to_qp2 ~params sizes =
  let g = Array.length sizes in
  if g = 0 || g mod 2 <> 0 then
    invalid_arg "Hardness.partition_to_qp2: even positive count required"
  else if Array.exists (fun s -> s <= 0) sizes then
    invalid_arg "Hardness.partition_to_qp2: sizes must be positive"
  else begin
    let ru = params.qp_ru and rv = params.qp_rv in
    let xu = params.qp_xu and xv = params.qp_xv in
    let modulus = Q.of_bigint params.qp_modulus in
    let m_ru = B.to_int_exn (Q.num (Q.mul modulus ru)) in
    let m_rv = B.to_int_exn (Q.num (Q.mul modulus rv)) in
    (* h even and large enough that both padding counts are >= 0:
       h = 2 * ceil(g / (2 * M * ru)). *)
    let h =
      let denom = 2 * m_ru in
      2 * Stdlib.max 1 ((g + denom - 1) / denom)
    in
    let u_pad = (m_ru * h) - 1 - (g / 2) in
    let v_pad = (m_rv * h) - 1 - (g / 2) in
    if u_pad < 0 || v_pad < 0 then
      invalid_arg "Hardness.partition_to_qp2: internal padding error"
    else begin
      let total = Array.fold_left ( + ) 0 sizes in
      let big =
        let rec bits v acc = if v = 0 then acc else bits (v / 2) (acc + 1) in
        B.pow B.two (bits total 0)
      in
      let augmented =
        Array.map (fun s -> Q.of_bigint (B.add (B.of_int s) big)) sizes
      in
      (* Sentinels: the larger of (xu, xv) drives the big sentinel
         (big - small/3)/(xu + xv); the small side gets (2/3)small. For
         xu = xv both are 1/3 and the construction matches QP1. *)
      let sum_x = Q.add xu xv in
      let small = Q.min xu xv and large = Q.max xu xv in
      let sentinel_big =
        Q.div (Q.sub large (Q.mul (Q.of_ints 1 3) small)) sum_x
      in
      let sentinel_small = Q.div (Q.mul (Q.of_ints 2 3) small) sum_x in
      let reals_total = Q.sub Q.one (Q.add sentinel_big sentinel_small) in
      let augmented_total = Q.sum (Array.to_list augmented) in
      let scale = Q.div reals_total augmented_total in
      let scaled = Array.map (fun s -> Q.mul s scale) augmented in
      let zeros = Array.make (u_pad + v_pad) Q.zero in
      {
        q_sizes =
          Array.concat [ scaled; zeros; [| sentinel_big; sentinel_small |] ];
        q_cardinality = m_rv * h;
        q_target_fraction = Q.div xv sum_x;
      }
    end
  end

let quasipartition2_brute inst =
  let total = Q.sum (Array.to_list inst.q_sizes) in
  let target = Q.mul inst.q_target_fraction total in
  (* Group identical sizes so interchangeable paddings do not explode the
     search: choose how many members of each group to take. *)
  let groups : (Q.t * int) list =
    Array.fold_left
      (fun acc s ->
        match List.partition (fun (v, _) -> Q.equal v s) acc with
        | [ (v, n) ], rest -> (v, n + 1) :: rest
        | _ -> (s, 1) :: acc)
      [] inst.q_sizes
  in
  let groups = Array.of_list groups in
  let n_groups = Array.length groups in
  (* DFS over per-group counts with cardinality and sum pruning. *)
  let rec go idx picked acc =
    if Q.compare acc target > 0 then false
    else if picked > inst.q_cardinality then false
    else if idx >= n_groups then
      picked = inst.q_cardinality && Q.equal acc target
    else begin
      let value, mult = groups.(idx) in
      let rec try_count k =
        if k > mult then false
        else
          go (idx + 1) (picked + k) (Q.add acc (Q.mul (Q.of_int k) value))
          || try_count (k + 1)
      in
      try_count 0
    end
  in
  go 0 0 Q.zero
