(* A fixed-size pool of worker domains around one mutex-protected work
   queue. Tasks are closures; results flow back through per-[map] state
   published with atomics (the decrement of [remaining] is the release
   fence for the plain writes into the result slots, per the OCaml 5
   memory model's atomic happens-before).

   The caller of [map] is itself one of the pool's compute lanes: it
   drains the queue alongside the workers before blocking, so a pool of
   [domains] applies exactly [domains] domains and [domains = 1] spawns
   nothing at all — that degenerate case is the repository's historical
   sequential path, bit for bit. *)

let max_domains = 256
let env_var = "CONFCALL_DOMAINS"

(* Workers spawned and not yet joined, across every live pool: the test
   suites assert this returns to zero, catching leaked domains. *)
let active = Atomic.make 0

let active_domains () = Atomic.get active

let default_domains () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_domains
      | Some _ | None -> 1)

type t = {
  id : int;
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable joined : bool;
  mutable workers : unit Domain.t list;
}

let next_id = Atomic.make 0

(* Stack of pool ids whose tasks the current domain is executing —
   detects a task of pool [p] re-entering [map p], which would deadlock
   a single-domain queue. *)
let executing : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.nonempty t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* stopped and drained: queued work is always finished before a
           worker exits, so [join] during a straggling [map] cannot
           strand tasks. *)
        Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        if Obs.on () then begin
          Obs.count "pool_tasks_worker";
          Obs.gauge_add "pool_queue_depth" (-1)
        end;
        task ();
        loop ()
  in
  loop ()

let create ~domains () =
  if domains < 1 || domains > max_domains then
    invalid_arg
      (Printf.sprintf "Pool.create: domains must be in [1, %d], got %d"
         max_domains domains);
  let t =
    {
      id = Atomic.fetch_and_add next_id 1;
      size = domains;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      joined = false;
      workers = [];
    }
  in
  (* Spawn accounting must stay exact even when a spawn fails halfway
     (the runtime's domain limit, resource exhaustion): [active] is
     incremented only after the spawn succeeded, and a partial failure
     stops and joins the workers already running before re-raising —
     otherwise [active_domains] would stay elevated forever and the
     leak tests downstream would blame an innocent caller. *)
  (try
     for _ = 2 to domains do
       let d = Domain.spawn (fun () -> worker_loop t) in
       Atomic.incr active;
       t.workers <- d :: t.workers
     done
   with e ->
     Mutex.lock t.mutex;
     t.stopped <- true;
     t.joined <- true;
     Condition.broadcast t.nonempty;
     Mutex.unlock t.mutex;
     List.iter
       (fun d ->
         Domain.join d;
         Atomic.decr active)
       t.workers;
     t.workers <- [];
     if Obs.on () then Obs.gauge_set "pool_active_domains" (Atomic.get active);
     raise e);
  if Obs.on () then Obs.gauge_set "pool_active_domains" (Atomic.get active);
  t

let size t = t.size

let run_guarded t body =
  let stack = Domain.DLS.get executing in
  stack := t.id :: !stack;
  Fun.protect
    ~finally:(fun () ->
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> ())
    body

let map t f input =
  if t.joined then invalid_arg "Pool.map: pool already joined";
  if List.mem t.id !(Domain.DLS.get executing) then
    invalid_arg "Pool.map: nested map on the same pool from one of its tasks";
  let n = Array.length input in
  if n = 0 then [||]
  else if t.size = 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let remaining = Atomic.make n in
    let all_done = Condition.create () in
    let run_task i () =
      let r =
        run_guarded t (fun () -> try Ok (f input.(i)) with e -> Error e)
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* Last task out signals under the mutex, so the caller's
           check-then-wait below cannot miss the wakeup. *)
        Mutex.lock t.mutex;
        Condition.broadcast all_done;
        Mutex.unlock t.mutex
      end
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (run_task i) t.queue
    done;
    Condition.broadcast t.nonempty;
    if Obs.on () then Obs.gauge_add "pool_queue_depth" n;
    (* Caller helps: execute queued tasks (this map's or a concurrent
       one's) until the queue is dry, then wait for stragglers running
       on workers. *)
    let rec help () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          if Obs.on () then begin
            Obs.count "pool_tasks_caller";
            Obs.gauge_add "pool_queue_depth" (-1)
          end;
          task ();
          Mutex.lock t.mutex;
          help ()
      | None -> ()
    in
    help ();
    while Atomic.get remaining > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    (* Surface the lowest-indexed failure so the raised exception is as
       deterministic as the results. *)
    Array.iter
      (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
      results;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false)
      results
  end

let map_list t f xs =
  Array.to_list (map t f (Array.of_list xs))

let join t =
  Mutex.lock t.mutex;
  if t.joined then Mutex.unlock t.mutex
  else begin
    t.joined <- true;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    List.iter
      (fun d ->
        Domain.join d;
        Atomic.decr active)
      t.workers;
    t.workers <- [];
    if Obs.on () then Obs.gauge_set "pool_active_domains" (Atomic.get active)
  end

let with_pool ~domains f =
  let t = create ~domains () in
  Fun.protect ~finally:(fun () -> join t) (fun () -> f t)
