(* A fixed-size pool of worker domains around one mutex-protected work
   queue. Tasks are closures; results flow back through per-[map] state
   published with atomics (the decrement of [remaining] is the release
   fence for the plain writes into the result slots, per the OCaml 5
   memory model's atomic happens-before).

   The caller of [map] is itself one of the pool's compute lanes: it
   drains the queue alongside the workers before blocking, so a pool of
   [domains] applies exactly [domains] domains and [domains = 1] spawns
   nothing at all — that degenerate case is the repository's historical
   sequential path, bit for bit.

   Self-healing (DESIGN §11): a queued task is a {run; fail} pair, so a
   crash that escapes the task harness — an injected domain death, a
   [Stack_overflow] in result publication, an [Out_of_memory] — fails
   {e only that task} (the map above it sees an [Error] slot, never a
   hang) while the worker respawns a fresh domain in its place. A
   watchdog systhread escalates tasks that overstay their guard
   deadline: fire the cooperative cancel, then poison the lane so the
   domain is recycled the moment the stuck task finally completes. *)

let max_domains = 256
let env_var = "CONFCALL_DOMAINS"

(* Workers spawned and not yet joined, across every live pool: the test
   suites assert this returns to zero, catching leaked domains. *)
let active = Atomic.make 0

let active_domains () = Atomic.get active

(* Lifetime totals across all pools, for the chaos bench and soaks:
   respawned worker domains and watchdog-flagged stuck tasks. *)
let all_respawns = Atomic.make 0
let all_stuck = Atomic.make 0

let total_respawns () = Atomic.get all_respawns
let total_stuck () = Atomic.get all_stuck

let default_domains () =
  match Sys.getenv_opt env_var with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_domains
      | Some _ | None -> 1)

exception Killed of exn

type guard = {
  deadline_s : float;
  grace_s : float;
  cancel : unit -> unit;
}

type task = {
  run : unit -> unit;  (* publishes its own result, normally *)
  fail : exn -> unit;  (* publish failure when [run] never got to *)
  guard : guard option;
}

(* One per worker slot (never for the caller lane): the respawn chain
   reuses the slot, and the watchdog poisons it to force a recycle. *)
type lane = {
  index : int;
  poisoned : bool Atomic.t;
}

(* A guarded task currently executing somewhere, as seen by the
   watchdog. [flagged] is owned by the watchdog thread. *)
type ctx = {
  g : guard;
  mutable flagged : bool;
  on_lane : lane option;  (* None: running on the caller's domain *)
}

type t = {
  id : int;
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable stopped : bool;
  mutable joined : bool;
  mutable workers : unit Domain.t list;
  lanes : lane array;  (* size - 1 worker slots *)
  respawns : int Atomic.t;
  stuck : int Atomic.t;
  (* watchdog: lazily started by the first guarded [run_all] *)
  wd_mutex : Mutex.t;
  mutable wd_running : ctx list;
  mutable wd_thread : Thread.t option;
  mutable wd_stop : bool;
}

let next_id = Atomic.make 0

(* Stack of pool ids whose tasks the current domain is executing —
   detects a task of pool [p] re-entering [map p], which would deadlock
   a single-domain queue. *)
let executing : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* The worker lane the current domain services, for watchdog poisoning;
   [None] on caller domains. *)
let my_lane : lane option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let respawns t = Atomic.get t.respawns
let stuck_tasks t = Atomic.get t.stuck

(* ---------------- watchdog ---------------- *)

let wd_register t ctx =
  Mutex.lock t.wd_mutex;
  t.wd_running <- ctx :: t.wd_running;
  Mutex.unlock t.wd_mutex

let wd_unregister t ctx =
  Mutex.lock t.wd_mutex;
  t.wd_running <- List.filter (fun c -> c != ctx) t.wd_running;
  Mutex.unlock t.wd_mutex

(* Escalation ladder, per scan: a task past deadline + grace gets its
   cooperative cancel fired (once) and is counted stuck; past a second
   grace window it clearly is not cooperating, so its lane is poisoned —
   the worker respawns a fresh domain as soon as the task lets go. *)
let wd_scan t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.wd_mutex;
  let running = t.wd_running in
  List.iter
    (fun ctx ->
      if (not ctx.flagged) && now > ctx.g.deadline_s +. ctx.g.grace_s then begin
        ctx.flagged <- true;
        Atomic.incr t.stuck;
        Atomic.incr all_stuck;
        if Obs.on () then Obs.count "pool_stuck_tasks";
        (try ctx.g.cancel () with _ -> ())
      end
      else if
        ctx.flagged && now > ctx.g.deadline_s +. (2.0 *. ctx.g.grace_s)
      then
        match ctx.on_lane with
        | Some lane ->
          if not (Atomic.exchange lane.poisoned true) then
            if Obs.on () then Obs.count "pool_lane_poisoned"
        | None -> ())
    running;
  Mutex.unlock t.wd_mutex

let wd_loop t =
  let rec go () =
    Mutex.lock t.wd_mutex;
    let stop = t.wd_stop in
    Mutex.unlock t.wd_mutex;
    if not stop then begin
      wd_scan t;
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

(* Only guarded work needs a watchdog; unguarded pools (the common
   case, and every [domains = 1] pool) never start the thread. *)
let ensure_watchdog t =
  Mutex.lock t.wd_mutex;
  if t.wd_thread = None && not t.wd_stop then
    t.wd_thread <- Some (Thread.create wd_loop t);
  Mutex.unlock t.wd_mutex

let stop_watchdog t =
  Mutex.lock t.wd_mutex;
  t.wd_stop <- true;
  let th = t.wd_thread in
  t.wd_thread <- None;
  Mutex.unlock t.wd_mutex;
  Option.iter Thread.join th

(* ---------------- workers, crashes, respawn ---------------- *)

(* Run one dequeued task on a worker (or the caller's help loop),
   turning anything that escapes the task's own harness into a
   contained crash: the task is failed — the map above sees an [Error]
   slot instead of hanging forever on [remaining] — and the caller
   decides whether the executing domain must be recycled. Returns
   [true] when the execution crashed. *)
let run_task_contained task =
  match
    Faultpoint.hit "pool.task.crash";
    Faultpoint.delay "pool.task.delay";
    task.run ()
  with
  | () -> false
  | exception Killed e ->
    (try task.fail e with _ -> ());
    true
  | exception e ->
    (try task.fail e with _ -> ());
    true

let rec worker_loop t lane =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.nonempty t.mutex
    done;
    match Queue.take_opt t.queue with
    | None ->
        (* stopped and drained: queued work is always finished before a
           worker exits, so [join] during a straggling [map] cannot
           strand tasks. *)
        Mutex.unlock t.mutex
    | Some task ->
        Mutex.unlock t.mutex;
        if Obs.on () then begin
          Obs.count "pool_tasks_worker";
          Obs.gauge_add "pool_queue_depth" (-1)
        end;
        let crashed = run_task_contained task in
        if crashed || Atomic.get lane.poisoned then respawn t lane
        else loop ()
  in
  loop ()

(* The executing domain is done for — crashed out of a task, or
   poisoned by the watchdog. Hand the lane to a freshly spawned domain
   and let this one exit; the replacement's first act is to join its
   predecessor, keeping [active] accounting exact across any number of
   deaths. After [join] has begun (or if the spawn itself fails) the
   domain recovers in place instead: correctness never depends on the
   respawn succeeding. *)
and respawn t lane =
  Atomic.set lane.poisoned false;
  let self = Domain.self () in
  Mutex.lock t.mutex;
  if t.joined then begin
    Mutex.unlock t.mutex;
    worker_loop t lane
  end
  else begin
    match
      Domain.spawn (fun () ->
          (* join the predecessor (it exits right after this spawn
             returns) and drop it from the books before serving. *)
          (Mutex.lock t.mutex;
           let pred =
             List.find_opt (fun d -> Domain.get_id d = self) t.workers
           in
           t.workers <- List.filter (fun d -> Domain.get_id d <> self) t.workers;
           Mutex.unlock t.mutex;
           match pred with
           | Some d ->
             Domain.join d;
             Atomic.decr active
           | None -> ());
          Domain.DLS.set my_lane (ref (Some lane));
          worker_loop t lane)
    with
    | d ->
      Atomic.incr active;
      t.workers <- d :: t.workers;
      Atomic.incr t.respawns;
      Atomic.incr all_respawns;
      Mutex.unlock t.mutex;
      if Obs.on () then begin
        Obs.count "pool_respawns";
        Obs.gauge_set "pool_active_domains" (Atomic.get active)
      end
    | exception _ ->
      (* Could not spawn a replacement (domain limit, resources):
         recover in place — a slightly stale stack beats a lost lane. *)
      Mutex.unlock t.mutex;
      worker_loop t lane
  end

let create ~domains () =
  if domains < 1 || domains > max_domains then
    invalid_arg
      (Printf.sprintf "Pool.create: domains must be in [1, %d], got %d"
         max_domains domains);
  let t =
    {
      id = Atomic.fetch_and_add next_id 1;
      size = domains;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      joined = false;
      workers = [];
      lanes =
        Array.init (max 0 (domains - 1)) (fun index ->
            { index; poisoned = Atomic.make false });
      respawns = Atomic.make 0;
      stuck = Atomic.make 0;
      wd_mutex = Mutex.create ();
      wd_running = [];
      wd_thread = None;
      wd_stop = false;
    }
  in
  (* Spawn accounting must stay exact even when a spawn fails halfway
     (the runtime's domain limit, resource exhaustion): [active] is
     incremented only after the spawn succeeded, and a partial failure
     stops and joins the workers already running before re-raising —
     otherwise [active_domains] would stay elevated forever and the
     leak tests downstream would blame an innocent caller. *)
  (try
     for k = 2 to domains do
       let lane = t.lanes.(k - 2) in
       let d =
         Domain.spawn (fun () ->
             Domain.DLS.set my_lane (ref (Some lane));
             worker_loop t lane)
       in
       Atomic.incr active;
       t.workers <- d :: t.workers
     done
   with e ->
     Mutex.lock t.mutex;
     t.stopped <- true;
     t.joined <- true;
     Condition.broadcast t.nonempty;
     Mutex.unlock t.mutex;
     List.iter
       (fun d ->
         Domain.join d;
         Atomic.decr active)
       t.workers;
     t.workers <- [];
     if Obs.on () then Obs.gauge_set "pool_active_domains" (Atomic.get active);
     raise e);
  if Obs.on () then Obs.gauge_set "pool_active_domains" (Atomic.get active);
  t

let size t = t.size

let run_guarded t body =
  let stack = Domain.DLS.get executing in
  stack := t.id :: !stack;
  Fun.protect
    ~finally:(fun () ->
      match !stack with
      | _ :: rest -> stack := rest
      | [] -> ())
    body

(* Core scheduler: every element becomes a {run; fail} task whose
   result lands in its input-index slot as a [result]; the caller helps
   drain the queue, then waits. Guarded elements are registered with
   the watchdog for the time they actually execute. *)
let run_all_parallel t ?(guard = fun _ -> None) f input =
  let n = Array.length input in
  let results = Array.make n None in
  let remaining = Atomic.make n in
  let all_done = Condition.create () in
  let any_guard = ref false in
  let publish i r =
    results.(i) <- Some r;
    if Atomic.fetch_and_add remaining (-1) = 1 then begin
      (* Last task out signals under the mutex, so the caller's
         check-then-wait below cannot miss the wakeup. *)
      Mutex.lock t.mutex;
      Condition.broadcast all_done;
      Mutex.unlock t.mutex
    end
  in
  let make_task i =
    let g = guard input.(i) in
    if g <> None then any_guard := true;
    let run () =
      let exec () =
        run_guarded t (fun () ->
            try Ok (f input.(i)) with
            | Killed _ as k -> raise k
            | e -> Error e)
      in
      let r =
        match g with
        | None -> exec ()
        | Some g ->
          let ctx =
            { g; flagged = false; on_lane = !(Domain.DLS.get my_lane) }
          in
          wd_register t ctx;
          Fun.protect ~finally:(fun () -> wd_unregister t ctx) exec
      in
      publish i r
    in
    { run; fail = (fun e -> publish i (Error e)); guard = g }
  in
  let tasks = Array.init n make_task in
  if !any_guard then ensure_watchdog t;
  Mutex.lock t.mutex;
  Array.iter (fun task -> Queue.add task t.queue) tasks;
  Condition.broadcast t.nonempty;
  if Obs.on () then Obs.gauge_add "pool_queue_depth" n;
  (* Caller helps: execute queued tasks (this run's or a concurrent
     one's) until the queue is dry, then wait for stragglers running
     on workers. A crash on the caller's domain is contained the same
     way as on a worker — the task is failed — but there is nothing to
     respawn: the caller simply keeps helping. *)
  let rec help () =
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        if Obs.on () then begin
          Obs.count "pool_tasks_caller";
          Obs.gauge_add "pool_queue_depth" (-1)
        end;
        ignore (run_task_contained task : bool);
        Mutex.lock t.mutex;
        help ()
    | None -> ()
  in
  help ();
  while Atomic.get remaining > 0 do
    Condition.wait all_done t.mutex
  done;
  Mutex.unlock t.mutex;
  Array.map
    (function
      | Some r -> r
      | None -> assert false)
    results

let run_all t ?guard f input =
  if t.joined then invalid_arg "Pool.run_all: pool already joined";
  if List.mem t.id !(Domain.DLS.get executing) then
    invalid_arg
      "Pool.run_all: nested map on the same pool from one of its tasks";
  if Array.length input = 0 then [||]
  else if t.size = 1 then
    (* Sequential: no domains, no watchdog; crashes are still contained
       per element so a chaos run on one core keeps the run_all
       contract (an [Error] slot, not an exception). *)
    Array.map
      (fun x ->
        match run_guarded t (fun () -> f x) with
        | v -> Ok v
        | exception Killed e -> Error e
        | exception e -> Error e)
      input
  else run_all_parallel t ?guard f input

let map t f input =
  if t.joined then invalid_arg "Pool.map: pool already joined";
  if List.mem t.id !(Domain.DLS.get executing) then
    invalid_arg "Pool.map: nested map on the same pool from one of its tasks";
  let n = Array.length input in
  if n = 0 then [||]
  else if t.size = 1 then begin
    (* The historical sequential path, bit for bit, with one addition
       invisible to clean runs: a [Killed] crash (only ever raised by
       chaos seams) fails that element but lets the rest run, so a
       single-domain chaos soak degrades instead of aborting. Any other
       exception propagates immediately, exactly as before. *)
    let killed = ref None in
    let out =
      Array.map
        (fun x ->
          match f x with
          | v -> Some v
          | exception Killed e ->
            if !killed = None then killed := Some e;
            None)
        input
    in
    match !killed with
    | Some e -> raise e
    | None -> Array.map Option.get out
  end
  else begin
    let results = run_all_parallel t f input in
    (* Surface the lowest-indexed failure so the raised exception is as
       deterministic as the results. *)
    Array.iter
      (function Error e -> raise e | Ok _ -> ())
      results;
    Array.map
      (function Ok v -> v | Error _ -> assert false)
      results
  end

let map_list t f xs =
  Array.to_list (map t f (Array.of_list xs))

let join t =
  Mutex.lock t.mutex;
  if t.joined then Mutex.unlock t.mutex
  else begin
    t.joined <- true;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    (* Snapshot under the mutex: respawns check [joined] under the same
       mutex before adding a worker, so this list is complete. *)
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    List.iter
      (fun d ->
        Domain.join d;
        Atomic.decr active)
      ws;
    stop_watchdog t;
    if Obs.on () then Obs.gauge_set "pool_active_domains" (Atomic.get active)
  end

let with_pool ~domains f =
  let t = create ~domains () in
  Fun.protect ~finally:(fun () -> join t) (fun () -> f t)
