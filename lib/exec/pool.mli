(** Fixed-size domain pool with a work queue, deterministic result
    ordering, and self-healing workers.

    OCaml 5 gives the repository native parallelism (one [Domain] per
    core), and every hot path above it — fallback-chain stage racing,
    multi-instance sweeps, Monte-Carlo simulation replicas — is
    embarrassingly parallel candidate evaluation. This module is the
    single execution substrate they share: a pool of [size - 1] worker
    domains pulling closures off a mutex/condition work queue, plus the
    calling domain, which {e participates} in draining the queue instead
    of blocking (so a pool of size [n] applies [n] domains of compute,
    and nested waiting cannot idle a core).

    Determinism is the design constraint, not an afterthought:

    - {!map} writes each result into the slot of its input index, so
      output order equals input order no matter which domain finished
      first or in what order;
    - a pool of size 1 spawns {e no} domains and runs the plain
      sequential [Array.map] — bit-identical to the code path that
      existed before this module, which is what the differential test
      suite pins;
    - tasks receive no shared mutable state from the pool; anything the
      caller shares across tasks must be its own synchronized state
      (the {!Confcall.Cancel} hookup below uses [Atomic]).

    Self-healing (DESIGN §11): a crash that escapes a task's own
    harness — an injected domain death via {!Killed}, a
    [Stack_overflow] in result publication — fails {e only that task};
    the map above it observes a failure slot instead of hanging, and
    the worker domain is respawned in place with {!active_domains}
    accounting kept exact. Guarded runs ({!run_all} with [~guard]) are
    additionally watched by a stuck-task watchdog systhread that fires
    the task's cooperative cancel once it overstays
    [deadline + grace], and poisons the worker's lane (forcing a
    domain recycle on completion) after a second grace window.

    Cancellation hookup: the pool never kills a running task — that
    would tear whatever state the task was mutating. Instead a caller
    racing tasks gives each one a {!Confcall.Cancel} token whose probe
    reads an [Atomic.t] flag; when a better task completes, the caller's
    completion callback sets the losers' flags and their solver loops
    unwind cooperatively within one poll interval. See
    [Confcall.Runner.run ?pool] for the canonical use.

    Stdlib only: [Domain], [Mutex], [Condition], [Atomic], [Thread].
    No task may itself call {!map} on the same pool (the queue is one
    level deep); create a second pool, or restructure, for nested
    parallelism. *)

type t

(** A task raising [Killed e] declares its executing domain dead: the
    task is failed with [e] (an [Error e] slot in {!run_all}, the
    re-raised exception in {!map}) {e without} publishing a result, and
    the worker domain running it is torn down and respawned. Raised by
    the chaos seams ([Faultpoint]); never on a clean run. *)
exception Killed of exn

(** Watchdog contract for one guarded task: past [deadline_s + grace_s]
    (absolute epoch seconds, same clock as [Unix.gettimeofday]) the
    watchdog calls [cancel] (must be safe from another thread —
    typically it sets an [Atomic] flag a [Cancel] probe reads) and
    counts the task stuck; past [deadline_s + 2 * grace_s] it poisons
    the executing worker's lane so the domain is recycled the moment
    the task completes. *)
type guard = {
  deadline_s : float;
  grace_s : float;
  cancel : unit -> unit;
}

(** [create ~domains ()] builds a pool that applies [domains] domains of
    compute: [domains - 1] spawned workers plus the caller inside
    {!map}. [domains = 1] spawns nothing and makes {!map} purely
    sequential.
    @raise Invalid_argument when [domains < 1] or [domains > 256]. *)
val create : domains:int -> unit -> t

(** Parallelism degree the pool was created with (including the
    caller). *)
val size : t -> int

(** [map pool f input] applies [f] to every element and returns the
    results in input order. Tasks run on the workers and on the calling
    domain; if any task raises, the remaining tasks still run to
    completion (or unwind via their own cancellation), and then the
    exception of the {e lowest-indexed} failing task is re-raised — so
    the surfaced error is also independent of scheduling.
    @raise Invalid_argument when called on a joined pool, or from
    inside a task of the same pool. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [run_all pool ?guard f input] is {!map} that never raises from a
    task: every element's outcome lands in its input-index slot as a
    [result], so one crashed or cancelled element cannot mask its
    siblings' answers. [guard] attaches a watchdog {!guard} to the
    elements it returns [Some] for. With [pool] of size 1 the elements
    run sequentially on the caller (no watchdog — there is no other
    thread to get stuck behind).
    @raise Invalid_argument when called on a joined pool, or from
    inside a task of the same pool. *)
val run_all :
  t -> ?guard:('a -> guard option) -> ('a -> 'b) -> 'a array ->
  ('b, exn) result array

(** [map_list pool f xs] is {!map} over a list, preserving order. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [join pool] stops the workers and joins their domains (including
    any respawned replacements), and stops the watchdog. Idempotent.
    Every pool must be joined — a dropped pool leaks OS threads — and
    the soak suite asserts {!active_domains} returns to zero. *)
val join : t -> unit

(** [with_pool ~domains f] is [f (create ~domains ())] with a guaranteed
    {!join}, whatever [f] does. *)
val with_pool : domains:int -> (t -> 'a) -> 'a

(** Number of worker domains spawned and not yet joined, across all
    pools — the leak detector for tests. *)
val active_domains : unit -> int

(** Worker domains this pool has respawned after a crash or a poisoned
    lane. *)
val respawns : t -> int

(** Tasks of this pool the watchdog has flagged as stuck (ran past
    their guard's [deadline_s + grace_s]). *)
val stuck_tasks : t -> int

(** Lifetime totals across every pool in the process — the chaos bench
    and soak gates read these. *)
val total_respawns : unit -> int

val total_stuck : unit -> int

(** ["CONFCALL_DOMAINS"] — the environment knob behind
    {!default_domains}. *)
val env_var : string

(** Upper bound {!create} accepts for [domains] (256) — exported so
    front ends can validate at their own boundary with a matching
    message. *)
val max_domains : int

(** The parallelism degree CLI tools and tests use when no [--domains]
    flag is given: [CONFCALL_DOMAINS] when set to a positive integer
    (clamped to 256), else 1 — the sequential code path, so existing
    behaviour is opt-out by default. *)
val default_domains : unit -> int
