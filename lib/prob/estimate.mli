(** Location-matrix estimation from observation counts.

    Turns per-device detection counts (how often device [i] was found in
    cell [j]) into a probability row plus a confidence radius, so the
    uncertainty widths fed to the robust solver come from sample sizes
    rather than magic numbers. *)

(** [row_mle ?alpha counts] is the Laplace-smoothed maximum-likelihood
    row: [(counts.(j) + alpha) / (Σ counts + c·alpha)]. [alpha]
    defaults to 1.0 (add-one smoothing); [alpha = 0.] is the plain MLE
    and then requires a positive total count.
    @raise Invalid_argument on an empty row, negative counts, negative
    [alpha], or an all-zero row with [alpha = 0.]. *)
val row_mle : ?alpha:float -> int array -> float array

(** [dkw_eps ~n ~confidence] is a Dvoretzky–Kiefer–Wolfowitz-style
    per-entry radius for a row estimated from [n] i.i.d. observations:
    [sqrt (ln (2 / (1 − confidence)) / (2n))], capped at 1. With
    probability ≥ [confidence] every empirical cell frequency is within
    this radius of the truth. [n = 0] gives radius 1 (no information).
    @raise Invalid_argument unless [n ≥ 0] and [0 < confidence < 1]. *)
val dkw_eps : n:int -> confidence:float -> float

(** [staleness_eps ~n ~confidence ~churn] widens {!dkw_eps} for profile
    age: [churn] ∈ [0, 1] is the probability the device has moved since
    it was last observed (1 − residence-time survival at the profile's
    age), an upper bound on how far any per-cell probability can have
    drifted between observation and page time. The result is
    [min 1 (dkw_eps + churn)] — monotone non-decreasing in [churn], so
    the radius never shrinks as a profile ages.
    @raise Invalid_argument when [churn ∉ [0, 1]] (plus {!dkw_eps}'s
    conditions). *)
val staleness_eps : n:int -> confidence:float -> churn:float -> float

(** One estimated row: the smoothed distribution, the raw sample count
    it rests on, and its {!dkw_eps} radius. *)
type row = { dist : float array; n : int; eps : float }

(** [estimate_rows ?alpha ~confidence counts] applies {!row_mle} and
    {!dkw_eps} to every device's count row. *)
val estimate_rows :
  ?alpha:float -> confidence:float -> int array array -> row array
