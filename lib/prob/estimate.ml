let row_mle ?(alpha = 1.0) counts =
  let c = Array.length counts in
  if c = 0 then invalid_arg "Estimate.row_mle: empty row";
  if Float.is_nan alpha || alpha < 0.0 then
    invalid_arg "Estimate.row_mle: alpha must be >= 0";
  let total =
    Array.fold_left
      (fun acc k ->
         if k < 0 then invalid_arg "Estimate.row_mle: negative count";
         acc + k)
      0 counts
  in
  let denom = float_of_int total +. (float_of_int c *. alpha) in
  if denom <= 0.0 then
    invalid_arg "Estimate.row_mle: all-zero counts with alpha = 0";
  Array.map (fun k -> (float_of_int k +. alpha) /. denom) counts

let dkw_eps ~n ~confidence =
  if n < 0 then invalid_arg "Estimate.dkw_eps: n must be >= 0";
  if
    Float.is_nan confidence || confidence <= 0.0 || confidence >= 1.0
  then invalid_arg "Estimate.dkw_eps: confidence must be in (0, 1)";
  if n = 0 then 1.0
  else
    Float.min 1.0
      (sqrt (log (2.0 /. (1.0 -. confidence)) /. (2.0 *. float_of_int n)))

let staleness_eps ~n ~confidence ~churn =
  if Float.is_nan churn || churn < 0.0 || churn > 1.0 then
    invalid_arg "Estimate.staleness_eps: churn must be in [0, 1]";
  (* DKW bounds the estimate against the truth at observation time;
     churn bounds how far any cell probability has drifted since (the
     probability the device has left its observed cell at all). Their
     sum is a per-entry radius valid at page time, capped at the
     trivial radius 1. *)
  Float.min 1.0 (dkw_eps ~n ~confidence +. churn)

type row = { dist : float array; n : int; eps : float }

let estimate_rows ?alpha ~confidence counts =
  Array.map
    (fun row ->
       let n = Array.fold_left ( + ) 0 row in
       {
         dist = row_mle ?alpha row;
         n;
         eps = dkw_eps ~n ~confidence;
       })
    counts
