(** Probability vectors over cells and common workload distributions.

    All generators return strictly positive vectors summing to 1, matching
    the Conference Call problem's requirement that every p(i,j) > 0. *)

(** [normalize v] scales a non-negative vector to sum to 1.
    @raise Invalid_argument when the sum is not positive. *)
val normalize : float array -> float array

(** [is_distribution ?eps v] checks positivity and unit sum. *)
val is_distribution : ?eps:float -> float array -> bool

(** [uniform c] is the uniform distribution over [c] cells. *)
val uniform : int -> float array

(** [zipf ~s c] has mass ∝ 1/rank^s; [s = 0] is uniform, larger [s] more
    skewed. Models a user concentrated near a few home cells. *)
val zipf : s:float -> int -> float array

(** [geometric ~ratio c] has mass ∝ ratio^rank, 0 < ratio ≤ 1. *)
val geometric : ratio:float -> int -> float array

(** [point_mass ~eps c j] puts mass 1 − (c−1)·eps on cell [j] and [eps]
    elsewhere — "the system almost knows the location". *)
val point_mass : eps:float -> int -> int -> float array

(** [dirichlet rng ~alpha c] samples from a symmetric Dirichlet; small
    [alpha] gives spiky vectors, large [alpha] near-uniform ones. *)
val dirichlet : Rng.t -> alpha:float -> int -> float array

(** [uniform_simplex rng c] samples uniformly from the open simplex
    (Dirichlet with alpha = 1). *)
val uniform_simplex : Rng.t -> int -> float array

(** [shuffled rng v] permutes the entries of [v] randomly (fresh array). *)
val shuffled : Rng.t -> float array -> float array

(** [perturb rng ~eps v] multiplies each entry by a factor in
    [[1−eps, 1+eps]] and renormalizes; used for tie-breaking studies. *)
val perturb : Rng.t -> eps:float -> float array -> float array

(** [clamp_positive ?floor v] lifts zero entries to a tiny positive floor
    and renormalizes, enforcing the model's positivity assumption. *)
val clamp_positive : ?floor:float -> float array -> float array

(** [sample rng v] draws a category index by linear inversion. *)
val sample : Rng.t -> float array -> int

(** [entropy v] is the Shannon entropy in bits. *)
val entropy : float array -> float

(** [total_variation a b] is (1/2)·Σ|aᵢ−bᵢ|.
    @raise Invalid_argument on length mismatch. *)
val total_variation : float array -> float array -> float
