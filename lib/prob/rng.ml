(* xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) land max_int in
  create ~seed

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound"
  else begin
    (* Rejection sampling on the high 62 bits to avoid modulo bias. *)
    let rec go () =
      let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
      let v = r mod bound in
      if r - v > max_int - bound + 1 then go () else v
    in
    go ()
  end

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: empty range"
  else lo + int t (hi - lo + 1)

let unit_float t =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. 0x1.0p-53

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array"
  else a.(int t (Array.length a))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: non-positive rate"
  else -.log (1.0 -. unit_float t) /. rate

let normal t =
  let rec nonzero () =
    let u = unit_float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let rec gamma t ~shape =
  if shape <= 0.0 then invalid_arg "Rng.gamma: non-positive shape"
  else if shape < 1.0 then begin
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let g = gamma t ~shape:(shape +. 1.0) in
    let u =
      let rec nonzero () =
        let u = unit_float t in
        if u > 0.0 then u else nonzero ()
      in
      nonzero ()
    in
    g *. (u ** (1.0 /. shape))
  end
  else begin
    (* Marsaglia–Tsang squeeze. *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec go () =
      let x = normal t in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then go ()
      else begin
        let v3 = v *. v *. v in
        let u = unit_float t in
        if u < 1.0 -. (0.0331 *. x *. x *. x *. x) then d *. v3
        else if u > 0.0 && log u < (0.5 *. x *. x) +. (d *. (1.0 -. v3 +. log v3))
        then d *. v3
        else go ()
      end
    in
    go ()
  end

let poisson t ~mean =
  if mean < 0.0 then invalid_arg "Rng.poisson: negative mean"
  else if mean = 0.0 then 0
  else if mean > 500.0 then begin
    let x = (normal t *. sqrt mean) +. mean in
    Stdlib.max 0 (int_of_float (Float.round x))
  end
  else begin
    (* Inversion by sequential search. *)
    let l = exp (-.mean) in
    let rec go k p =
      let p = p *. unit_float t in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.0
  end
