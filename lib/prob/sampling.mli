(** O(1) categorical sampling by the alias method (Vose).

    The end-to-end simulator draws device locations from the same
    probability vectors many thousands of times per run; the alias table
    amortizes the setup cost. *)

type t

(** [create weights] builds an alias table from non-negative weights.
    @raise Invalid_argument when empty or all-zero. *)
val create : float array -> t

(** [size t] is the number of categories. *)
val size : t -> int

(** [draw t rng] samples a category index in O(1). *)
val draw : t -> Rng.t -> int

(** [probability t i] is the normalized probability of category [i]
    (reconstructed from the table; accurate to float rounding). *)
val probability : t -> int -> float
