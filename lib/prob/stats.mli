(** Descriptive statistics and online accumulators for experiment output. *)

type summary = {
  n : int;
  mean : float;
  variance : float;  (** unbiased sample variance; 0 for n < 2 *)
  stddev : float;
  min : float;
  max : float;
}

(** Online mean/variance accumulator (Welford). *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val summary : t -> summary
end

(** [summarize xs] computes a {!summary} of a non-empty array.
    @raise Invalid_argument on empty input. *)
val summarize : float array -> summary

val mean : float array -> float

(** [quantile xs q] is the [q]-quantile (linear interpolation on a sorted
    copy), q ∈ [0, 1]. *)
val quantile : float array -> float -> float

val median : float array -> float

(** [ci95_halfwidth s] is the normal-approximation 95% confidence-interval
    half width, 1.96·stddev/√n. *)
val ci95_halfwidth : summary -> float

(** [histogram ~bins ~lo ~hi xs] counts samples per equal-width bin;
    out-of-range samples clamp to the edge bins. *)
val histogram : bins:int -> lo:float -> hi:float -> float array -> int array

val pp_summary : Format.formatter -> summary -> unit
