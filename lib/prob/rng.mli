(** Deterministic, splittable pseudo-random number generator.

    xoshiro256** seeded through SplitMix64. Every experiment in the
    repository takes an explicit seed so that all reported numbers are
    reproducible run to run. *)

type t

(** [create ~seed] builds a generator from a 63-bit seed. *)
val create : seed:int -> t

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** [copy t] duplicates the current state. *)
val copy : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)
val int : t -> int -> int

(** [int_range t lo hi] is uniform in [[lo, hi]] inclusive. *)
val int_range : t -> int -> int -> int

(** [unit_float t] is uniform in [[0, 1)] with 53 bits of precision. *)
val unit_float : t -> float

(** [float t bound] is uniform in [[0, bound)]. *)
val float : t -> float -> float

val bool : t -> bool

(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit

(** [choose t a] picks a uniform element.
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a

(** [exponential t ~rate] samples Exp(rate). *)
val exponential : t -> rate:float -> float

(** [normal t] samples a standard normal (Box–Muller, one value per call). *)
val normal : t -> float

(** [gamma t ~shape] samples Gamma(shape, 1) for shape > 0
    (Marsaglia–Tsang, with the boost trick for shape < 1). *)
val gamma : t -> shape:float -> float

(** [poisson t ~mean] samples a Poisson count (inversion for small means,
    normal approximation above 500). *)
val poisson : t -> mean:float -> int
