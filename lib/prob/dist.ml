let normalize v =
  let s = Array.fold_left ( +. ) 0.0 v in
  if s <= 0.0 then invalid_arg "Dist.normalize: non-positive total mass"
  else Array.map (fun x -> x /. s) v

let is_distribution ?(eps = 1e-9) v =
  Array.length v > 0
  && Array.for_all (fun x -> x > 0.0) v
  && abs_float (Array.fold_left ( +. ) 0.0 v -. 1.0) <= eps

let uniform c =
  if c <= 0 then invalid_arg "Dist.uniform: non-positive size"
  else Array.make c (1.0 /. float_of_int c)

let zipf ~s c =
  if c <= 0 then invalid_arg "Dist.zipf: non-positive size"
  else normalize (Array.init c (fun j -> (float_of_int (j + 1)) ** -.s))

let geometric ~ratio c =
  if c <= 0 then invalid_arg "Dist.geometric: non-positive size"
  else if ratio <= 0.0 || ratio > 1.0 then
    invalid_arg "Dist.geometric: ratio must be in (0, 1]"
  else normalize (Array.init c (fun j -> ratio ** float_of_int j))

let point_mass ~eps c j =
  if c <= 0 || j < 0 || j >= c then invalid_arg "Dist.point_mass: bad index"
  else if eps <= 0.0 || eps *. float_of_int (c - 1) >= 1.0 then
    invalid_arg "Dist.point_mass: eps out of range"
  else begin
    let v = Array.make c eps in
    v.(j) <- 1.0 -. (eps *. float_of_int (c - 1));
    v
  end

let dirichlet rng ~alpha c =
  if c <= 0 then invalid_arg "Dist.dirichlet: non-positive size"
  else begin
    let v = Array.init c (fun _ -> Rng.gamma rng ~shape:alpha) in
    (* Gamma can underflow to 0 for tiny alpha; lift before normalizing. *)
    let v = Array.map (fun x -> Stdlib.max x 1e-300) v in
    normalize v
  end

let uniform_simplex rng c = dirichlet rng ~alpha:1.0 c

let shuffled rng v =
  let w = Array.copy v in
  Rng.shuffle rng w;
  w

let perturb rng ~eps v =
  if eps < 0.0 || eps >= 1.0 then invalid_arg "Dist.perturb: eps out of range"
  else begin
    let w =
      Array.map (fun x -> x *. (1.0 +. (eps *. ((2.0 *. Rng.unit_float rng) -. 1.0)))) v
    in
    normalize w
  end

let clamp_positive ?(floor = 1e-12) v =
  normalize (Array.map (fun x -> Stdlib.max x floor) v)

let sample rng v =
  let u = Rng.unit_float rng in
  let n = Array.length v in
  let rec go j acc =
    if j >= n - 1 then n - 1
    else begin
      let acc = acc +. v.(j) in
      if u < acc then j else go (j + 1) acc
    end
  in
  go 0 0.0

let entropy v =
  Array.fold_left
    (fun acc p -> if p > 0.0 then acc -. (p *. (log p /. log 2.0)) else acc)
    0.0 v

let total_variation a b =
  if Array.length a <> Array.length b then
    invalid_arg "Dist.total_variation: length mismatch"
  else begin
    let s = ref 0.0 in
    Array.iteri (fun i x -> s := !s +. abs_float (x -. b.(i))) a;
    0.5 *. !s
  end
