(* Vose's alias method. Each slot i holds a biased coin [prob.(i)] and an
   alias target; a draw picks a slot uniformly and flips its coin. *)

type t = { prob : float array; alias : int array; p : float array }

let create weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sampling.create: empty weights"
  else begin
    let total = Array.fold_left ( +. ) 0.0 weights in
    if total <= 0.0 then invalid_arg "Sampling.create: zero total weight"
    else begin
      let scaled =
        Array.map (fun w -> w *. float_of_int n /. total) weights
      in
      let prob = Array.make n 0.0 in
      let alias = Array.make n 0 in
      let small = Queue.create () and large = Queue.create () in
      Array.iteri
        (fun i s -> if s < 1.0 then Queue.add i small else Queue.add i large)
        scaled;
      while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
        let s = Queue.pop small and l = Queue.pop large in
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
        if scaled.(l) < 1.0 then Queue.add l small else Queue.add l large
      done;
      Queue.iter (fun i -> prob.(i) <- 1.0) small;
      Queue.iter (fun i -> prob.(i) <- 1.0) large;
      { prob; alias; p = Array.map (fun w -> w /. total) weights }
    end
  end

let size t = Array.length t.prob

let draw t rng =
  let n = Array.length t.prob in
  let i = Rng.int rng n in
  if Rng.unit_float rng < t.prob.(i) then i else t.alias.(i)

let probability t i = t.p.(i)
