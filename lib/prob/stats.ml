type summary = {
  n : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

  let summary t =
    let variance = variance t in
    {
      n = t.n;
      mean = t.mean;
      variance;
      stddev = sqrt variance;
      min = t.lo;
      max = t.hi;
    }
end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty array"
  else begin
    let acc = Acc.create () in
    Array.iter (Acc.add acc) xs;
    Acc.summary acc
  end

let mean xs = (summarize xs).mean

let quantile xs q =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty array"
  else if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q out of range"
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let n = Array.length s in
    let pos = q *. float_of_int (n - 1) in
    let i = int_of_float (Float.floor pos) in
    let frac = pos -. float_of_int i in
    if i + 1 >= n then s.(n - 1)
    else ((1.0 -. frac) *. s.(i)) +. (frac *. s.(i + 1))
  end

let median xs = quantile xs 0.5

let ci95_halfwidth s =
  if s.n = 0 then 0.0 else 1.96 *. s.stddev /. sqrt (float_of_int s.n)

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: non-positive bins"
  else if hi <= lo then invalid_arg "Stats.histogram: empty range"
  else begin
    let counts = Array.make bins 0 in
    let width = (hi -. lo) /. float_of_int bins in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = Stdlib.max 0 (Stdlib.min (bins - 1) b) in
        counts.(b) <- counts.(b) + 1)
      xs;
    counts
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" s.n s.mean
    s.stddev s.min s.max
