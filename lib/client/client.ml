(* Resilient client runtime for the JSONL protocol.

   One [t] holds N endpoints. Each endpoint gets at most one pipelined
   connection, opened lazily and reopened on the next call after a
   failure; a dedicated reader systhread demultiplexes response lines
   back to waiting callers by frame id. On top of that sit the three
   resilience mechanisms this module exists for:

   - deadline-aware retries: capped exponential backoff with
     decorrelated jitter ([Retry]), honoring the daemon's
     [retry_after_ms] hints, treating rejected:overload,
     rejected:draining and any connection failure as retryable, and
     never sleeping past the caller's end-to-end budget — budget
     exhaustion surfaces the best-so-far error instead of hanging;

   - failover: endpoints are ranked by [Health] score before every
     attempt, so a dead or draining replica slides to the back of the
     rotation and a connection-type failure retries on the next-best
     endpoint immediately (no backoff — the replacement is not the one
     that failed);

   - hedging: optionally, when no answer has arrived after
     [hedge_after_ms], the same request (same [request_id], fresh frame
     id) is fired at the next-best endpoint and the first terminal
     answer wins. The loser is cancelled client-side — its frame id is
     forgotten, its eventual response discarded — and the server-side
     idempotency table makes the duplicate submission harmless.

   Thread-safe: any number of threads may [call] concurrently. *)

module Json = Wire.Json
module Proto = Wire.Proto
module Retry = Retry
module Health = Health

type endpoint = Tcp of int | Unix_path of string

let endpoint_to_string = function
  | Tcp p -> Printf.sprintf "tcp:%d" p
  | Unix_path p -> "unix:" ^ p

(* "8080" and "tcp:8080" are loopback TCP; "unix:/p" and any other
   string are Unix-socket paths. *)
let endpoint_of_string s =
  let s = String.trim s in
  let prefixed p =
    let k = String.length p in
    if String.length s > k && String.sub s 0 k = p then
      Some (String.sub s k (String.length s - k))
    else None
  in
  match prefixed "tcp:" with
  | Some rest -> (
    match int_of_string_opt rest with
    | Some p when p >= 0 && p <= 65535 -> Ok (Tcp p)
    | _ -> Error (Printf.sprintf "endpoint %S: bad tcp port" s))
  | None -> (
    match prefixed "unix:" with
    | Some rest ->
      if rest = "" then Error "endpoint \"unix:\" has no path"
      else Ok (Unix_path rest)
    | None -> (
      match int_of_string_opt s with
      | Some p when p >= 0 && p <= 65535 -> Ok (Tcp p)
      | Some _ -> Error (Printf.sprintf "endpoint %S: port out of range" s)
      | None -> if s = "" then Error "empty endpoint" else Ok (Unix_path s)))

let endpoints_of_string s =
  let parts =
    List.filter (fun x -> String.trim x <> "") (String.split_on_char ',' s)
  in
  if parts = [] then Error "no endpoints given"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: tl -> (
        match endpoint_of_string p with
        | Ok e -> go (e :: acc) tl
        | Error _ as e -> e)
    in
    go [] parts

(* ---------------- configuration ---------------- *)

type config = {
  endpoints : endpoint list;
  retry : Retry.policy;
  budget_ms : float option;  (** end-to-end budget per [call] *)
  hedge_after_ms : float option;
  seed : int;  (** jitter PRNG seed (reproducible tests) *)
}

let default_config endpoints =
  {
    endpoints;
    retry = Retry.default;
    budget_ms = Some 30_000.0;
    hedge_after_ms = None;
    seed = 1;
  }

(* ---------------- connections ---------------- *)

type answer = Line of string | Lost of string

(* One per call attempt round; tag 0 is the primary send, tag 1 the
   hedge. Reader threads append, the calling thread polls. *)
type waiter = { wmutex : Mutex.t; mutable arrived : (int * answer) list }

type conn = {
  fd : Unix.file_descr;
  tmutex : Mutex.t;  (* guards [waiting] and [closed] *)
  wrmutex : Mutex.t;  (* serializes writes to [fd] *)
  waiting : (string, waiter * int) Hashtbl.t;
  mutable closed : bool;
}

type ep = {
  endpoint : endpoint;
  emutex : Mutex.t;  (* guards [conn] and [health] *)
  mutable conn : conn option;
  health : Health.t;
}

type t = {
  cfg : config;
  eps : ep array;
  ids : int Atomic.t;
  prng : int64 Atomic.t;
  rr : int Atomic.t;  (* near-tie rotation between healthy replicas *)
}

let now = Obs.now

(* splitmix64, same construction as the faultpoint seam: lock-free
   jitter draws from any calling thread. *)
let rec prng_next t =
  let cur = Atomic.get t.prng in
  let nxt = Int64.add cur 0x9E3779B97F4A7C15L in
  if Atomic.compare_and_set t.prng cur nxt then begin
    let z = nxt in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11)
    *. (1.0 /. 9007199254740992.0)
  end
  else prng_next t

let validate cfg =
  if cfg.endpoints = [] then invalid_arg "Client: endpoints must be non-empty";
  Retry.validate cfg.retry;
  (match cfg.budget_ms with
   | Some b when not (Float.is_finite b) || b <= 0.0 ->
     invalid_arg "Client: budget_ms must be positive and finite"
   | _ -> ());
  match cfg.hedge_after_ms with
  | Some h when not (Float.is_finite h) || h < 0.0 ->
    invalid_arg "Client: hedge_after_ms must be non-negative and finite"
  | _ -> ()

let create cfg =
  validate cfg;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    cfg;
    eps =
      Array.of_list
        (List.map
           (fun endpoint ->
             {
               endpoint;
               emutex = Mutex.create ();
               conn = None;
               health = Health.create ();
             })
           cfg.endpoints);
    ids = Atomic.make 0;
    prng = Atomic.make (Int64.of_int ((cfg.seed * 2) + 1));
    rr = Atomic.make 0;
  }

let push w tag ans =
  Mutex.lock w.wmutex;
  w.arrived <- (tag, ans) :: w.arrived;
  Mutex.unlock w.wmutex

(* Fail every registered waiter and shut the socket down. The reader
   systhread is the fd's only closer: everyone else just [shutdown]s,
   which pops the reader out of its blocking read — no fd-reuse race. *)
let conn_kill c reason =
  Mutex.lock c.tmutex;
  if c.closed then Mutex.unlock c.tmutex
  else begin
    c.closed <- true;
    let ws = Hashtbl.fold (fun _ wt acc -> wt :: acc) c.waiting [] in
    Hashtbl.reset c.waiting;
    Mutex.unlock c.tmutex;
    (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    List.iter (fun (w, tag) -> push w tag (Lost reason)) ws
  end

let route c line =
  match Json.parse line with
  | Error _ ->
    if Obs.on () then Obs.count "client_bad_frames"
  | Ok json ->
    let id =
      match Json.member "id" json with
      | Some (Json.Str s) -> Some s
      | Some (Json.Num x) -> Some (Json.to_string (Json.Num x))
      | _ -> None
    in
    (match id with
     | None -> if Obs.on () then Obs.count "client_bad_frames"
     | Some id ->
       Mutex.lock c.tmutex;
       let hit = Hashtbl.find_opt c.waiting id in
       if hit <> None then Hashtbl.remove c.waiting id;
       Mutex.unlock c.tmutex;
       (match hit with
        | Some (w, tag) -> push w tag (Line line)
        | None ->
          (* a cancelled hedge loser or an abandoned attempt: expected *)
          if Obs.on () then Obs.count "client_orphan_responses"))

let reader c =
  let chunk = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let rec pump () =
    match Unix.read c.fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      for i = 0 to n - 1 do
        let ch = Bytes.get chunk i in
        if ch = '\n' then begin
          route c (Buffer.contents acc);
          Buffer.clear acc
        end
        else Buffer.add_char acc ch
      done;
      pump ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
    | exception Unix.Unix_error _ -> ()
    | exception Sys_error _ -> ()
  in
  pump ();
  conn_kill c "connection closed by server";
  try Unix.close c.fd with Unix.Unix_error _ -> ()

let connect_endpoint = function
  | Tcp port ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  | Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd

(* Lazy (re)connect: a previous failure leaves [conn] dead and the next
   caller replaces it. Loopback/Unix connects resolve immediately
   (established or refused), so holding the endpoint lock is fine. *)
let ensure_conn ep =
  Mutex.lock ep.emutex;
  match ep.conn with
  | Some c when not c.closed ->
    Mutex.unlock ep.emutex;
    Ok c
  | _ -> (
    match connect_endpoint ep.endpoint with
    | fd ->
      let c =
        {
          fd;
          tmutex = Mutex.create ();
          wrmutex = Mutex.create ();
          waiting = Hashtbl.create 16;
          closed = false;
        }
      in
      ignore (Thread.create reader c);
      ep.conn <- Some c;
      if Obs.on () then Obs.count "client_connects";
      Mutex.unlock ep.emutex;
      Ok c
    | exception Unix.Unix_error (e, _, _) ->
      Mutex.unlock ep.emutex;
      Error
        (Printf.sprintf "connect %s: %s"
           (endpoint_to_string ep.endpoint)
           (Unix.error_message e)))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let note_fail ep =
  Mutex.lock ep.emutex;
  Health.note_fail ep.health ~now_s:(now ());
  Mutex.unlock ep.emutex

let note_draining ep =
  Mutex.lock ep.emutex;
  Health.note_draining ep.health ~now_s:(now ());
  Mutex.unlock ep.emutex

let note_ok ep ~latency_ms =
  Mutex.lock ep.emutex;
  Health.note_ok ep.health ~latency_ms;
  Mutex.unlock ep.emutex

(* Send one frame on one endpoint. All failure modes surface as a
   [Lost] answer to the waiter (possibly via [conn_kill] failing every
   pending call on that connection); the caller only ever polls. *)
let issue t ep w tag ~issued ~fields ~request_id =
  let id = "c" ^ string_of_int (Atomic.fetch_and_add t.ids 1) in
  let all = ("id", Json.Str id) :: fields in
  let all =
    match request_id with
    | Some r -> all @ [ ("request_id", Json.Str r) ]
    | None -> all
  in
  let line = Json.to_string (Json.Obj all) ^ "\n" in
  match ensure_conn ep with
  | Error msg ->
    note_fail ep;
    push w tag (Lost msg)
  | Ok c ->
    let registered =
      Mutex.lock c.tmutex;
      let ok = not c.closed in
      if ok then Hashtbl.replace c.waiting id (w, tag);
      Mutex.unlock c.tmutex;
      ok
    in
    if not registered then begin
      note_fail ep;
      push w tag (Lost "connection closed")
    end
    else begin
      issued := (c, id) :: !issued;
      Mutex.lock c.wrmutex;
      (match write_all c.fd line with
       | () -> Mutex.unlock c.wrmutex
       | exception (Unix.Unix_error _ | Sys_error _) ->
         Mutex.unlock c.wrmutex;
         note_fail ep;
         (* fails every pending waiter on this conn, ours included *)
         conn_kill c "write failed")
    end

(* Endpoints ordered best-first. Two replicas whose scores are within
   a small band are considered equally healthy and alternated, so a
   multi-endpoint client spreads load instead of pinning the replica
   that happened to answer its first call fastest. *)
let ranked t =
  let nw = now () in
  let arr =
    Array.map
      (fun ep ->
        Mutex.lock ep.emutex;
        let s = Health.score ep.health ~now_s:nw in
        Mutex.unlock ep.emutex;
        (s, ep))
      t.eps
  in
  Array.stable_sort (fun (a, _) (b, _) -> Float.compare a b) arr;
  (if Array.length arr >= 2 then
     let s0, e0 = arr.(0) and s1, e1 = arr.(1) in
     if Float.abs (s0 -. s1) <= 25.0 && Atomic.fetch_and_add t.rr 1 land 1 = 1
     then begin
       arr.(0) <- (s1, e1);
       arr.(1) <- (s0, e0)
     end);
  Array.map snd arr

(* ---------------- the call state machine ---------------- *)

type call_outcome = {
  response : Proto.response;
  raw : string;  (** the winning response line, verbatim *)
  endpoint : endpoint;  (** who answered *)
  attempts : int;  (** frames sent, hedges included *)
  retries : int;
  failovers : int;  (** attempts that moved to a different endpoint *)
  hedges : int;
  hedge_won : bool;
  elapsed_ms : float;
}

type failure_kind = Budget_exhausted | Retries_exhausted | Fatal

type call_error = {
  kind : failure_kind;
  message : string;  (** best-so-far: the last concrete failure seen *)
  err_attempts : int;
  err_retries : int;
  err_failovers : int;
  err_hedges : int;
  err_elapsed_ms : float;
}

let failure_kind_to_string = function
  | Budget_exhausted -> "budget_exhausted"
  | Retries_exhausted -> "retries_exhausted"
  | Fatal -> "fatal"

let poll_interval_s = 0.001

(* [fields] is the request frame minus [id] (fresh per attempt, owned
   here) and minus [request_id] (passed separately so hedges and
   retries share it). *)
let call t ?request_id fields =
  let start_s = now () in
  let deadline =
    Option.map (fun b -> start_s +. (b /. 1000.0)) t.cfg.budget_ms
  in
  let policy = t.cfg.retry in
  let issued = ref [] in
  let attempts = ref 0
  and retries = ref 0
  and failovers = ref 0
  and hedges = ref 0 in
  let last_err = ref "no attempt made" in
  let prev_delay = ref policy.Retry.base_ms in
  let last_primary = ref None in
  let cleanup () =
    List.iter
      (fun (c, id) ->
        Mutex.lock c.tmutex;
        Hashtbl.remove c.waiting id;
        Mutex.unlock c.tmutex)
      !issued
  in
  let fail kind message =
    cleanup ();
    Error
      {
        kind;
        message;
        err_attempts = !attempts;
        err_retries = !retries;
        err_failovers = !failovers;
        err_hedges = !hedges;
        err_elapsed_ms = (now () -. start_s) *. 1000.0;
      }
  in
  let succeed ep tag response raw =
    cleanup ();
    let elapsed_ms = (now () -. start_s) *. 1000.0 in
    note_ok ep ~latency_ms:elapsed_ms;
    if tag = 1 && Obs.on () then Obs.count "client_hedges_won";
    Ok
      {
        response;
        raw;
        endpoint = ep.endpoint;
        attempts = !attempts;
        retries = !retries;
        failovers = !failovers;
        hedges = !hedges;
        hedge_won = tag = 1;
        elapsed_ms;
      }
  in
  let rec attempt round =
    let order = ranked t in
    let primary = order.(0) in
    (match !last_primary with
     | Some e when e <> primary.endpoint ->
       incr failovers;
       if Obs.on () then Obs.count "client_failovers"
     | _ -> ());
    last_primary := Some primary.endpoint;
    let w = { wmutex = Mutex.create (); arrived = [] } in
    let tag_eps = [| primary; primary |] in
    incr attempts;
    issue t primary w 0 ~issued ~fields ~request_id;
    let hedge_at =
      Option.map (fun h -> now () +. (h /. 1000.0)) t.cfg.hedge_after_ms
    in
    let hedged = ref false in
    let outstanding = ref 1 in
    let resolved = [| false; false |] in
    (* Attempt-local failure summary: the smallest server hint seen
       (earliest moment anyone promised to be ready) and whether any
       loss was connection-shaped (fast failover, no backoff). *)
    let hint = ref None in
    let conn_failure = ref false in
    let wait_result =
      let rec wait () =
        let nw = now () in
        if (match deadline with Some d -> nw >= d | None -> false) then
          `Deadline
        else begin
          Mutex.lock w.wmutex;
          let got = List.rev w.arrived in
          w.arrived <- [];
          Mutex.unlock w.wmutex;
          let decide = ref `Pending in
          List.iter
            (fun (tag, ans) ->
              if not resolved.(tag) && !decide = `Pending then begin
                resolved.(tag) <- true;
                decr outstanding;
                match ans with
                | Lost msg ->
                  last_err :=
                    Printf.sprintf "%s: %s"
                      (endpoint_to_string tag_eps.(tag).endpoint)
                      msg;
                  conn_failure := true;
                  note_fail tag_eps.(tag)
                | Line raw -> (
                  match Proto.decode_response raw with
                  | Error msg ->
                    last_err := "undecodable response: " ^ msg;
                    decide := `Fatal !last_err
                  | Ok r -> (
                    match Retry.classify r with
                    | Retry.Success -> decide := `Win (tag, r, raw)
                    | Retry.Fatal msg ->
                      last_err := msg;
                      decide := `Fatal msg
                    | Retry.Retryable { hint_ms; draining } ->
                      last_err :=
                        Printf.sprintf "%s: rejected (%s)"
                          (endpoint_to_string tag_eps.(tag).endpoint)
                          (Option.value r.Proto.reason ~default:"?");
                      (match hint_ms with
                       | Some h ->
                         hint :=
                           Some
                             (match !hint with
                              | Some prev -> Float.min prev h
                              | None -> h)
                       | None -> ());
                      if draining then note_draining tag_eps.(tag)
                      else note_fail tag_eps.(tag)))
              end)
            got;
          match !decide with
          | (`Win _ | `Fatal _) as d -> d
          | `Pending ->
            if !outstanding = 0 then `Failed
            else begin
              (match hedge_at with
               | Some h when (not !hedged) && nw >= h ->
                 hedged := true;
                 let secondary =
                   let found = ref None in
                   Array.iter
                     (fun (ep : ep) ->
                       if !found = None && ep.endpoint <> primary.endpoint
                       then found := Some ep)
                     order;
                   (* single endpoint: hedge on it anyway — in-flight
                      dedup on the server makes it safe, and it still
                      covers a response lost in transit *)
                   Option.value !found ~default:primary
                 in
                 tag_eps.(1) <- secondary;
                 incr outstanding;
                 incr attempts;
                 incr hedges;
                 if Obs.on () then Obs.count "client_hedges";
                 issue t secondary w 1 ~issued ~fields ~request_id
               | _ -> ());
              Thread.delay poll_interval_s;
              wait ()
            end
        end
      in
      wait ()
    in
    match wait_result with
    | `Win (tag, r, raw) -> succeed tag_eps.(tag) tag r raw
    | `Fatal msg -> fail Fatal msg
    | `Deadline ->
      fail Budget_exhausted
        (if !attempts = 0 then "budget exhausted before any attempt"
         else
           Printf.sprintf "budget exhausted awaiting a response (last: %s)"
             !last_err)
    | `Failed ->
      if round >= policy.Retry.max_retries then
        fail Retries_exhausted !last_err
      else begin
        incr retries;
        if Obs.on () then Obs.count "client_retries";
        (* Connection failure with a different healthy endpoint up
           next: fail over immediately, the backoff curve is for the
           endpoint that failed, not its replacement. Overload and
           draining rejects always back off (hint-dominated). *)
        let next = (ranked t).(0) in
        let fast = !conn_failure && !hint = None
                   && next.endpoint <> primary.endpoint in
        if not fast then begin
          let d =
            Retry.next_delay_ms policy ~u:(prng_next t)
              ~prev_ms:!prev_delay ~hint_ms:!hint
          in
          prev_delay := d;
          match deadline with
          | Some dl when now () +. (d /. 1000.0) >= dl ->
            (* sleeping would blow the budget: surface best-so-far *)
            fail Budget_exhausted
              (Printf.sprintf "budget exhausted before retry %d (last: %s)"
                 (round + 1) !last_err)
          | _ ->
            if Obs.on () then
              Obs.observe ~buckets:Obs.latency_ms_buckets "client_backoff_ms"
                d;
            Thread.delay (d /. 1000.0);
            attempt (round + 1)
        end
        else attempt (round + 1)
      end
  in
  attempt 0

(* ---------------- convenience ---------------- *)

let close t =
  Array.iter
    (fun ep ->
      Mutex.lock ep.emutex;
      let c = ep.conn in
      ep.conn <- None;
      Mutex.unlock ep.emutex;
      Option.iter (fun c -> conn_kill c "client closed") c)
    t.eps
