(* The retry state machine's pure core: delay computation and response
   classification. Everything timing- and socket-related lives in
   [Client]; this module is deterministic given the caller's uniform
   draw, which is what the unit tests pin. *)

type policy = {
  max_retries : int;  (** retry attempts beyond the first try *)
  base_ms : float;  (** first backoff, and the jitter floor *)
  cap_ms : float;  (** computed delays never exceed this *)
}

let default = { max_retries = 3; base_ms = 10.0; cap_ms = 2_000.0 }

let validate p =
  if p.max_retries < 0 then invalid_arg "Retry: max_retries must be >= 0";
  if not (Float.is_finite p.base_ms) || p.base_ms <= 0.0 then
    invalid_arg "Retry: base_ms must be positive and finite";
  if not (Float.is_finite p.cap_ms) || p.cap_ms < p.base_ms then
    invalid_arg "Retry: cap_ms must be >= base_ms"

(* Decorrelated jitter: sleep_{n+1} = min(cap, U(base, 3 * sleep_n)),
   seeded at sleep_0 = base, with [u] the caller's uniform draw in
   [0, 1). A server [retry_after_ms] hint acts as a floor that
   dominates the computed curve — the daemon's estimate of its own
   queue drain beats any client-side guess — while the jitter on top
   keeps a burst of synchronized rejects from returning as a
   synchronized retry storm. *)
let next_delay_ms p ~u ~prev_ms ~hint_ms =
  let u = Float.max 0.0 (Float.min 1.0 u) in
  let prev = Float.max p.base_ms (Float.min p.cap_ms prev_ms) in
  let hi = Float.min p.cap_ms (3.0 *. prev) in
  let lo = Float.min p.base_ms hi in
  let computed = lo +. (u *. (hi -. lo)) in
  match hint_ms with
  | Some h when Float.is_finite h && h > 0.0 -> Float.max h computed
  | _ -> computed

(* What a terminal response frame means for the retry loop. Connection
   losses never reach this function — they are retryable by
   construction and classified at the socket layer. Unknown future
   statuses are treated as fatal: blindly retrying semantics we do not
   understand is how duplicate side effects happen. *)
type verdict =
  | Success
  | Retryable of { hint_ms : float option; draining : bool }
  | Fatal of string

let classify (r : Wire.Proto.response) =
  match r.Wire.Proto.status with
  | "ok" | "degraded" -> Success
  | "rejected" ->
    Retryable
      {
        hint_ms = Option.map float_of_int r.Wire.Proto.retry_after_ms;
        draining = r.Wire.Proto.reason = Some "draining";
      }
  | "error" ->
    Fatal
      (match r.Wire.Proto.error with
       | Some e -> e
       | None -> "server error")
  | other -> Fatal (Printf.sprintf "unexpected response status %S" other)
