(* Per-endpoint health for failover ordering. Not thread-safe on its
   own: [Client] guards each endpoint's health with that endpoint's
   lock. Scores only order endpoints relative to each other — the
   absolute numbers carry no meaning.

   The shape: an EWMA failure rate dominates, a decaying penalty keeps
   a just-failed endpoint out of the rotation for a few seconds without
   blacklisting it forever (a restarted replica must win traffic back),
   a draining endpoint sits out a short cooldown, and the latency EWMA
   breaks ties between two healthy replicas. *)

type t = {
  mutable fail_ewma : float;  (* 0 = always succeeds, 1 = always fails *)
  mutable latency_ewma_ms : float;
  mutable last_fail_s : float;
  mutable draining_until_s : float;
}

let fail_penalty_window_s = 5.0
let draining_cooldown_s = 2.0
let alpha = 0.2

let create () =
  {
    fail_ewma = 0.0;
    latency_ewma_ms = 0.0;
    last_fail_s = Float.neg_infinity;
    draining_until_s = Float.neg_infinity;
  }

let note_ok t ~latency_ms =
  t.fail_ewma <- (1.0 -. alpha) *. t.fail_ewma;
  t.latency_ewma_ms <-
    (if t.latency_ewma_ms <= 0.0 then latency_ms
     else ((1.0 -. alpha) *. t.latency_ewma_ms) +. (alpha *. latency_ms))

let note_fail t ~now_s =
  t.fail_ewma <- ((1.0 -. alpha) *. t.fail_ewma) +. alpha;
  t.last_fail_s <- now_s

(* A draining reject is the daemon promising to go away: stop offering
   it traffic for a cooldown, then probe again (it may have been
   restarted in place). *)
let note_draining t ~now_s =
  t.draining_until_s <- now_s +. draining_cooldown_s;
  t.last_fail_s <- now_s

let score t ~now_s =
  let recent =
    let dt = now_s -. t.last_fail_s in
    if dt < fail_penalty_window_s then
      2_000.0 *. (1.0 -. (dt /. fail_penalty_window_s))
    else 0.0
  in
  let draining = if now_s < t.draining_until_s then 10_000.0 else 0.0 in
  (t.fail_ewma *. 1_000.0) +. recent +. draining +. t.latency_ewma_ms
