(** One-dimensional minimization and convexity checks.

    Small numeric toolkit backing the analytic lemmas of the paper
    (Lemma 3.1, Lemma 3.4) and the branch-and-bound solver. *)

(** [golden_section_min f lo hi ~tol] minimizes a unimodal [f] on
    [[lo, hi]]; returns [(argmin, min)]. *)
val golden_section_min :
  (float -> float) -> float -> float -> tol:float -> float * float

(** [int_argmin f lo hi] scans the integer range (inclusive) and returns
    [(argmin, min)], preferring the smallest argmin on ties.
    @raise Invalid_argument when [lo > hi]. *)
val int_argmin : (int -> float) -> int -> int -> int * float

(** [ternary_int_min f lo hi] minimizes a unimodal integer function by
    ternary search; O(log(hi-lo)) evaluations. *)
val ternary_int_min : (int -> float) -> int -> int -> int * float

(** [is_convex_samples ?eps ys] checks that second differences of equally
    spaced samples are ≥ -eps. *)
val is_convex_samples : ?eps:float -> float array -> bool

(** [is_nonincreasing ?eps ys] checks that samples never increase by more
    than [eps]. *)
val is_nonincreasing : ?eps:float -> float array -> bool

(** [amgm_upper xs] is [((Σxs)/n)^n], the arithmetic–geometric-mean upper
    bound on [Π xs] used throughout §4 of the paper.
    @raise Invalid_argument on the empty list. *)
val amgm_upper : float list -> float

(** e/(e-1) ≈ 1.5819767…, the approximation factor of Theorem 4.8. *)
val e_over_e_minus_1 : float
