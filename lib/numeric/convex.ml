let golden_ratio = (sqrt 5.0 -. 1.0) /. 2.0

let golden_section_min f lo hi ~tol =
  let rec go a b fa_x fa_fx fb_x fb_fx =
    (* Invariant: fa_x < fb_x are interior probes of [a, b]. *)
    if b -. a < tol then begin
      let m = (a +. b) /. 2.0 in
      m, f m
    end
    else if fa_fx < fb_fx then begin
      let b = fb_x in
      let x = b -. (golden_ratio *. (b -. a)) in
      go a b x (f x) fa_x fa_fx
    end
    else begin
      let a = fa_x in
      let x = a +. (golden_ratio *. (b -. a)) in
      go a b fb_x fb_fx x (f x)
    end
  in
  if hi <= lo then lo, f lo
  else begin
    let x1 = hi -. (golden_ratio *. (hi -. lo)) in
    let x2 = lo +. (golden_ratio *. (hi -. lo)) in
    go lo hi x1 (f x1) x2 (f x2)
  end

let int_argmin f lo hi =
  if lo > hi then invalid_arg "Convex.int_argmin: empty range"
  else begin
    let best = ref lo and best_v = ref (f lo) in
    for x = lo + 1 to hi do
      let v = f x in
      if v < !best_v then begin
        best := x;
        best_v := v
      end
    done;
    !best, !best_v
  end

let ternary_int_min f lo hi =
  let rec go lo hi =
    if hi - lo <= 3 then int_argmin f lo hi
    else begin
      let m1 = lo + ((hi - lo) / 3) in
      let m2 = hi - ((hi - lo) / 3) in
      if f m1 <= f m2 then go lo m2 else go m1 hi
    end
  in
  if lo > hi then invalid_arg "Convex.ternary_int_min: empty range"
  else go lo hi

let is_convex_samples ?(eps = 1e-9) ys =
  let n = Array.length ys in
  let rec go i =
    if i + 2 >= n then true
    else if ys.(i + 2) -. (2.0 *. ys.(i + 1)) +. ys.(i) < -.eps then false
    else go (i + 1)
  in
  go 0

let is_nonincreasing ?(eps = 1e-9) ys =
  let n = Array.length ys in
  let rec go i =
    if i + 1 >= n then true
    else if ys.(i + 1) > ys.(i) +. eps then false
    else go (i + 1)
  in
  go 0

let amgm_upper xs =
  match xs with
  | [] -> invalid_arg "Convex.amgm_upper: empty list"
  | _ ->
    let n = float_of_int (List.length xs) in
    let s = List.fold_left ( +. ) 0.0 xs in
    (s /. n) ** n

let e_over_e_minus_1 = exp 1.0 /. (exp 1.0 -. 1.0)
