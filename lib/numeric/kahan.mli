(** Compensated (Neumaier) floating-point summation.

    The EP formula of Lemma 2.1 and the prefix-mass accumulations of the
    §4 DP add many small probabilities; plain left-to-right addition loses
    up to O(n·ε) relative accuracy on adversarial inputs (tiny masses next
    to masses near 1, denormals around 1e-308). Neumaier's variant of
    Kahan summation keeps a running compensation term and is exact to one
    ulp of the true sum for all practical inputs, at ~2x the cost of a
    bare add — negligible against the surrounding DP work. *)

type t

(** A fresh accumulator holding 0. *)
val create : unit -> t

(** [add acc x] folds [x] into the running sum. *)
val add : t -> float -> unit

(** [total acc] is the compensated value of everything added so far. *)
val total : t -> float

(** [reset acc] returns the accumulator to 0 without reallocating. *)
val reset : t -> unit

(** One-shot compensated sum of an array. *)
val sum_array : float array -> float

(** Functional single-step form for fold-style call sites:
    [step (s, c) x] is the updated (sum, compensation) pair, and
    [value (s, c)] its total. [zero] is the empty pair. *)
val zero : float * float

val step : float * float -> float -> float * float
val value : float * float -> float
