type t = { lo : float; hi : float }

(* Outward rounding: one ulp past the computed endpoint. Round-to-nearest
   keeps the exact result within one ulp of the float result, so this is
   a sound (and cheap) substitute for switching the FPU rounding mode.
   Infinities stay put — they are already outermost. *)
let down x = if Float.is_finite x then Float.pred x else x
let up x = if Float.is_finite x then Float.succ x else x

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then
    invalid_arg "Interval.make: NaN endpoint"
  else if lo > hi then invalid_arg "Interval.make: lo > hi"
  else { lo; hi }

let exact x =
  if Float.is_nan x then invalid_arg "Interval.exact: NaN" else { lo = x; hi = x }

let of_int n = exact (float_of_int n)
let zero = { lo = 0.0; hi = 0.0 }
let one = { lo = 1.0; hi = 1.0 }
let lo t = t.lo
let hi t = t.hi
let width t = t.hi -. t.lo
let contains t x = t.lo <= x && x <= t.hi
let neg t = { lo = -.t.hi; hi = -.t.lo }
let add a b = { lo = down (a.lo +. b.lo); hi = up (a.hi +. b.hi) }
let sub a b = { lo = down (a.lo -. b.hi); hi = up (a.hi -. b.lo) }

let mul a b =
  let p1 = a.lo *. b.lo
  and p2 = a.lo *. b.hi
  and p3 = a.hi *. b.lo
  and p4 = a.hi *. b.hi in
  {
    lo = down (Float.min (Float.min p1 p2) (Float.min p3 p4));
    hi = up (Float.max (Float.max p1 p2) (Float.max p3 p4));
  }

let scale k t = mul (exact k) t

let clamp ~lo ~hi t =
  let l = Float.max lo t.lo and h = Float.min hi t.hi in
  if l > h then invalid_arg "Interval.clamp: empty intersection"
  else { lo = l; hi = h }

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let sum ts =
  let l = ref 0.0 and h = ref 0.0 in
  Array.iter
    (fun t ->
      l := down (!l +. t.lo);
      h := up (!h +. t.hi))
    ts;
  { lo = !l; hi = !h }

let product_nonneg ts =
  Array.iter
    (fun t ->
      if t.lo < 0.0 then invalid_arg "Interval.product_nonneg: negative operand")
    ts;
  let l = ref 1.0 and h = ref 1.0 in
  Array.iter
    (fun t ->
      l := down (!l *. t.lo);
      h := up (!h *. t.hi))
    ts;
  { lo = Float.max 0.0 !l; hi = !h }

let to_string t = Printf.sprintf "[%.17g, %.17g]" t.lo t.hi
let pp ppf t = Format.pp_print_string ppf (to_string t)
