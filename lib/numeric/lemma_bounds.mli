(** Closed-form quantities from the analytic lemmas of Bar-Noy & Malewicz.

    All formulas reference the journal version (J. Algorithms 51 (2004)):
    - Lemma 3.1: the bivariate function [f] whose unique maximizer
      (x = 1/2, y = 2c/3) drives the m = 2, d = 2 NP-hardness reduction;
    - Lemma 3.4: the α_k / b_k recurrences giving the optimal group sizes
      for "flat" instances with m devices and d rounds;
    - Lemma 3.2: the lower bound LB on expected paging of the reduced
      instance. *)

(** [f_lemma31 ~c x y = (c - y) · ((1 - 3/(2c))·y + x) · (y - x)].
    Domain of interest: 0 ≤ x ≤ 1, 0 ≤ y ≤ c. *)
val f_lemma31 : c:int -> float -> float -> float

(** Exact rational version of {!f_lemma31}. *)
val f_lemma31_exact : c:int -> Rational.t -> Rational.t -> Rational.t

(** The claimed unique maximum value f(1/2, 2c/3) = 4c³/27 − 2c²/9 + c/12. *)
val f_lemma31_max : c:int -> Rational.t

(** [lb_lemma32 ~c] is the reduction's target expected paging
    LB = c − f(1/2, 2c/3) / ((c − 1/2)(c − 1)). *)
val lb_lemma32 : c:int -> Rational.t

(** [alphas ~m ~d] is [[α_1; …; α_{d-1}]] with α_1 = m/(m+1) and
    α_k = m/(m+1−α_{k-1}^m); strictly increasing and < 1 (Lemma 3.4).
    @raise Invalid_argument unless m ≥ 2 and d ≥ 2. *)
val alphas : m:int -> d:int -> float list

(** [bs ~m ~d ~c] is [[b_0; b_1; …; b_d]] with b_d = c and
    b_{k-1} = α_{k-1} · b_k: the prefix sizes at which the Lemma 3.4
    function is extremal. *)
val bs : m:int -> d:int -> c:int -> float array

(** [optimal_group_fractions ~m ~d] is the d-vector of fractions
    (b_j − b_{j-1})/c — the r_j of §3.2, independent of c. *)
val optimal_group_fractions : m:int -> d:int -> float array

(** [lemma34_bound ~m ~d ~c] is the lower-bound value
    c − (2c−1)²/(4(c−1)c^{m+1}) · Σ_{r=1}^{d−1} (b_{r+1} − b_r)·b_r^m. *)
val lemma34_bound : m:int -> d:int -> c:int -> float

(** [xs_lemma34 ~m ~d] is the d-vector of probability-mass fractions x_j:
    x_j = b_j/(2c) − b_{j-1}/(2c) for j < d and x_d = 1 − Σ_{j<d} x_j
    (per-group masses at the extremum; independent of c). *)
val xs_lemma34 : m:int -> d:int -> float array
