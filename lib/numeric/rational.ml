module B = Bigint

type t = { num : B.t; den : B.t }
(* Invariants: den > 0, gcd(|num|, den) = 1, zero is 0/1. *)

let normalize num den =
  if B.is_zero den then raise Division_by_zero
  else if B.is_zero num then { num = B.zero; den = B.one }
  else begin
    let num, den = if B.sign den < 0 then B.neg num, B.neg den else num, den in
    let g = B.gcd num den in
    { num = B.div num g; den = B.div den g }
  end

let make num den = normalize num den
let zero = { num = B.zero; den = B.one }
let one = { num = B.one; den = B.one }
let of_ints a b = make (B.of_int a) (B.of_int b)
let of_int a = { num = B.of_int a; den = B.one }
let of_bigint a = { num = a; den = B.one }
let num x = x.num
let den x = x.den
let sign x = B.sign x.num
let is_zero x = B.is_zero x.num

let compare x y =
  (* x.num/x.den ? y.num/y.den  <=>  x.num*y.den ? y.num*x.den
     (denominators positive). *)
  B.compare (B.mul x.num y.den) (B.mul y.num x.den)

let equal x y = compare x y = 0
let neg x = { x with num = B.neg x.num }
let abs x = { x with num = B.abs x.num }
let inv x = normalize x.den x.num

let add x y =
  normalize
    (B.add (B.mul x.num y.den) (B.mul y.num x.den))
    (B.mul x.den y.den)

let sub x y = add x (neg y)
let mul x y = normalize (B.mul x.num y.num) (B.mul x.den y.den)
let div x y = mul x (inv y)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let pow x k =
  if k >= 0 then { num = B.pow x.num k; den = B.pow x.den k }
  else inv { num = B.pow x.num (-k); den = B.pow x.den (-k) }

let to_float x =
  (* Scale so that both parts stay within float precision when huge. *)
  let bn = B.bit_length x.num and bd = B.bit_length x.den in
  if bn < 500 && bd < 500 then B.to_float x.num /. B.to_float x.den
  else begin
    let shift = Stdlib.max 0 (Stdlib.min bn bd - 100) in
    let scale = B.pow B.two shift in
    B.to_float (B.div x.num scale) /. B.to_float (B.div x.den scale)
  end

let to_string x =
  if B.equal x.den B.one then B.to_string x.num
  else B.to_string x.num ^ "/" ^ B.to_string x.den

let of_string s =
  match String.index_opt s '/' with
  | Some i ->
    let a = B.of_string (String.sub s 0 i) in
    let b = B.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
    make a b
  | None ->
    (match String.index_opt s '.' with
     | None -> of_bigint (B.of_string s)
     | Some i ->
       let int_part = String.sub s 0 i in
       let frac = String.sub s (i + 1) (String.length s - i - 1) in
       if frac = "" then invalid_arg "Rational.of_string: empty fraction"
       else begin
         let negative = String.length int_part > 0 && int_part.[0] = '-' in
         let whole =
           if int_part = "" || int_part = "-" || int_part = "+" then B.zero
           else B.of_string int_part
         in
         let scale = B.pow (B.of_int 10) (String.length frac) in
         let fnum = B.of_string frac in
         let fnum = if negative then B.neg fnum else fnum in
         add (of_bigint whole) (make fnum scale)
       end)

let sum xs = List.fold_left add zero xs
let product xs = List.fold_left mul one xs
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let pp ppf x = Format.pp_print_string ppf (to_string x)
