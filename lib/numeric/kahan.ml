type t = { mutable sum : float; mutable comp : float }

let create () = { sum = 0.0; comp = 0.0 }

(* Neumaier: compensate with the rounding error of each addition, taking
   the error term from whichever operand lost its low bits. *)
let add acc x =
  let s = acc.sum +. x in
  if abs_float acc.sum >= abs_float x then
    acc.comp <- acc.comp +. (acc.sum -. s +. x)
  else acc.comp <- acc.comp +. (x -. s +. acc.sum);
  acc.sum <- s

let total acc = acc.sum +. acc.comp

let reset acc =
  acc.sum <- 0.0;
  acc.comp <- 0.0

let sum_array xs =
  let acc = create () in
  Array.iter (fun x -> add acc x) xs;
  total acc

let zero = 0.0, 0.0

let step (sum, comp) x =
  let s = sum +. x in
  let comp =
    if abs_float sum >= abs_float x then comp +. (sum -. s +. x)
    else comp +. (x -. s +. sum)
  in
  s, comp

let value (sum, comp) = sum +. comp
