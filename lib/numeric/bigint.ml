(* Sign-magnitude big integers over base-2^30 limbs (little-endian arrays,
   no leading zero limbs). A 63-bit native int holds the product of two
   limbs plus a carry, so schoolbook multiplication needs no splitting. *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: sign ∈ {-1, 0, 1}; sign = 0 iff mag = [||];
   mag has no trailing (most-significant) zero limb. *)

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = Array.length mag in
  let rec top i = if i > 0 && mag.(i - 1) = 0 then top (i - 1) else i in
  let k = top n in
  if k = 0 then zero
  else if k = n then { sign; mag }
  else { sign; mag = Array.sub mag 0 k }

(* Limbs of a non-negative native int, least significant first. *)
let limbs_of_nonneg n =
  let buf = ref [] and v = ref n in
  while !v <> 0 do
    buf := (!v land base_mask) :: !buf;
    v := !v lsr base_bits
  done;
  Array.of_list (List.rev !buf)

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = limbs_of_nonneg n }
  else if n > min_int then { sign = -1; mag = limbs_of_nonneg (-n) }
  else begin
    (* abs min_int overflows; build |min_int| = 2^62 directly. *)
    let mag = Array.make 3 0 in
    mag.(2) <- 1 lsl (62 - (2 * base_bits));
    { sign = -1; mag }
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign x = x.sign
let is_zero x = x.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then compare_mag x.mag y.mag
  else compare_mag y.mag x.mag

let equal x y = compare x y = 0

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let l = Stdlib.max la lb in
  let r = Array.make (l + 1) 0 in
  let carry = ref 0 in
  for i = 0 to l - 1 do
    let ai = if i < la then a.(i) else 0 in
    let bi = if i < lb then b.(i) else 0 in
    let s = ai + bi + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  r.(l) <- !carry;
  r

(* Precondition: a >= b as magnitudes. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let s = a.(i) - bi - !borrow in
    if s < 0 then begin
      r.(i) <- s + base;
      borrow := 1
    end
    else begin
      r.(i) <- s;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else begin
    let c = compare_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then normalize x.sign (sub_mag x.mag y.mag)
    else normalize y.sign (sub_mag y.mag x.mag)
  end

let sub x y = add x (neg y)

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else begin
    let a = x.mag and b = y.mag in
    let la = Array.length a and lb = Array.length b in
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (a.(i) * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      (* Propagate the final carry (may itself exceed one limb). *)
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    normalize (x.sign * y.sign) r
  end

let bit_length x =
  let n = Array.length x.mag in
  if n = 0 then 0
  else begin
    let top = x.mag.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + width top 0
  end

(* Shift a magnitude left by [k] bits. *)
let shl_mag a k =
  let limb = k / base_bits and bit = k mod base_bits in
  let la = Array.length a in
  let r = Array.make (la + limb + 1) 0 in
  for i = 0 to la - 1 do
    let v = a.(i) lsl bit in
    r.(i + limb) <- r.(i + limb) lor (v land base_mask);
    r.(i + limb + 1) <- r.(i + limb + 1) lor (v lsr base_bits)
  done;
  r

(* Test bit [k] of magnitude [a]. *)
let test_bit a k =
  let limb = k / base_bits and bit = k mod base_bits in
  if limb >= Array.length a then false else (a.(limb) lsr bit) land 1 = 1

(* Binary long division on magnitudes: returns (quotient, remainder). *)
let divmod_mag a b =
  if compare_mag a b < 0 then [||], a
  else begin
    let na = ((Array.length a - 1) * base_bits) + base_bits in
    let q = Array.make (Array.length a) 0 in
    let r = ref [||] in
    (* Process bits of [a] from most significant to least. *)
    for i = na - 1 downto 0 do
      (* r := (r << 1) | bit_i(a) *)
      let r2 = shl_mag !r 1 in
      if test_bit a i then r2.(0) <- r2.(0) lor 1;
      let r2 = (normalize 1 r2).mag in
      if compare_mag r2 b >= 0 then begin
        r := sub_mag r2 b;
        r := (normalize 1 !r).mag;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
      else r := r2
    done;
    q, !r
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then zero, zero
  else begin
    let qm, rm = divmod_mag x.mag y.mag in
    let q = normalize (x.sign * y.sign) qm in
    let r = normalize x.sign rm in
    q, r
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let rec gcd_aux a b = if is_zero b then a else gcd_aux b (rem a b)
let gcd a b = gcd_aux (abs a) (abs b)

let pow x k =
  if k < 0 then invalid_arg "Bigint.pow: negative exponent"
  else begin
    let rec go acc b k =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then mul acc b else acc in
        go acc (mul b b) (k lsr 1)
      end
    in
    go one x k
  end

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_int x =
  match x.sign with
  | 0 -> Some 0
  | s ->
    if bit_length x > 62 then None
    else begin
      let v = ref 0 in
      for i = Array.length x.mag - 1 downto 0 do
        v := (!v lsl base_bits) lor x.mag.(i)
      done;
      Some (s * !v)
    end

let to_int_exn x =
  match to_int x with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: does not fit in int"

let to_float x =
  let f = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    f := (!f *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  float_of_int x.sign *. !f

(* Small-divisor helpers for decimal conversion. *)
let divmod_small x d =
  assert (d > 0 && d < base);
  let n = Array.length x.mag in
  let q = Array.make n 0 in
  let r = ref 0 in
  for i = n - 1 downto 0 do
    let cur = (!r lsl base_bits) lor x.mag.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  normalize x.sign q, !r

let mul_small x d =
  assert (d >= 0 && d < base);
  if d = 0 || x.sign = 0 then zero
  else begin
    let n = Array.length x.mag in
    let r = Array.make (n + 2) 0 in
    let carry = ref 0 in
    for i = 0 to n - 1 do
      let s = (x.mag.(i) * d) + !carry in
      r.(i) <- s land base_mask;
      carry := s lsr base_bits
    done;
    let k = ref n in
    while !carry <> 0 do
      r.(!k) <- !carry land base_mask;
      carry := !carry lsr base_bits;
      incr k
    done;
    normalize x.sign r
  end

let add_small x d = add x (of_int d)

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go v =
      if is_zero v then ()
      else begin
        let q, r = divmod_small v 1_000_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%09d" r)
        end
      end
    in
    go (abs x);
    (if x.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string"
  else begin
    let negative, start =
      match s.[0] with
      | '-' -> true, 1
      | '+' -> false, 1
      | _ -> false, 0
    in
    if start >= n then invalid_arg "Bigint.of_string: no digits"
    else begin
      let acc = ref zero in
      for i = start to n - 1 do
        let c = s.[i] in
        if c < '0' || c > '9' then
          invalid_arg "Bigint.of_string: invalid character"
        else acc := add_small (mul_small !acc 10) (Char.code c - Char.code '0')
      done;
      if negative then neg !acc else !acc
    end
  end

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg

let pp ppf x = Format.pp_print_string ppf (to_string x)
