(** Arbitrary-precision signed integers.

    Sign-magnitude representation over base-2^30 limbs. Designed for the
    exact-arithmetic needs of the conference-call reproduction (verifying
    rational identities such as 317/49 and the NP-hardness reduction
    formulas), not for cryptographic-scale performance: multiplication is
    schoolbook and division is binary long division. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** [of_int n] is the big integer equal to [n]. *)
val of_int : int -> t

(** [to_int x] is [Some n] when [x] fits in a native [int]. *)
val to_int : t -> int option

(** [to_int_exn x] is [x] as a native int.
    @raise Failure when [x] does not fit. *)
val to_int_exn : t -> int

(** [of_string s] parses an optionally-signed decimal numeral.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** [to_string x] is the decimal representation of [x]. *)
val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is [(q, r)] with [a = q*b + r], [q] truncated toward zero
    and [r] carrying the sign of [a] (C-style semantics).
    @raise Division_by_zero when [b] is zero. *)
val divmod : t -> t -> t * t

val div : t -> t -> t
val rem : t -> t -> t

(** [gcd a b] is the non-negative greatest common divisor. *)
val gcd : t -> t -> t

(** [pow x k] is [x] raised to the non-negative power [k].
    @raise Invalid_argument when [k < 0]. *)
val pow : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t

(** [to_float x] is the nearest-ish float (computed limb-wise; exact for
    values below 2^53). *)
val to_float : t -> float

(** [bit_length x] is the position of the highest set bit of [|x|]
    (0 for zero). *)
val bit_length : t -> int

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t

val pp : Format.formatter -> t -> unit
