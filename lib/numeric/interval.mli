(** Directed-rounding interval arithmetic.

    Sound enclosures for the uncertainty layer: every operation returns
    an interval guaranteed to contain the exact real result of applying
    the operation to any reals drawn from the operand intervals. OCaml
    cannot portably switch the FPU rounding mode, so outward rounding is
    done by widening each computed endpoint one ulp with [Float.pred] /
    [Float.succ] — IEEE-754 round-to-nearest puts the exact result
    strictly within one ulp of the computed endpoint, so the widened
    interval is a correct (if occasionally one-ulp pessimistic)
    enclosure. Used to bound Lemma 2.1 expected paging under matrix
    misspecification ({!Confcall.Uncertainty}); validated against exact
    {!Rational} arithmetic in the test suite. *)

type t = private { lo : float; hi : float }

(** [make lo hi] — endpoints are taken as exact (not widened).
    @raise Invalid_argument when [lo > hi] or an endpoint is NaN. *)
val make : float -> float -> t

(** [exact x] is the degenerate interval [\[x, x\]].
    @raise Invalid_argument on NaN. *)
val exact : float -> t

val of_int : int -> t
val zero : t
val one : t

val lo : t -> float
val hi : t -> float
val width : t -> float

(** [contains t x] — is [x] inside the closed interval? *)
val contains : t -> float -> bool

val neg : t -> t

(** Outward-rounded arithmetic. *)

val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t

(** [scale k t] is [mul (exact k) t]. *)
val scale : float -> t -> t

(** [clamp ~lo ~hi t] intersects [t] with [\[lo, hi\]] — sound whenever
    the true value is known a priori to lie in [\[lo, hi\]] (e.g. a
    probability in [0, 1]).
    @raise Invalid_argument when the intersection is empty. *)
val clamp : lo:float -> hi:float -> t -> t

(** [hull a b] is the smallest interval containing both. *)
val hull : t -> t -> t

(** Outward-rounded sum of an array of intervals. *)
val sum : t array -> t

(** Outward-rounded product; operands must be non-negative intervals
    (all our probability work is), which keeps endpoint selection
    monotone: lo = prod of los, hi = prod of his.
    @raise Invalid_argument when some operand has [lo < 0]. *)
val product_nonneg : t array -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
