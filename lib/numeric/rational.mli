(** Exact rational arithmetic over {!Bigint}.

    Values are kept normalized: the denominator is strictly positive and
    coprime with the numerator; zero is [0/1]. Used to evaluate expected
    paging exactly (e.g., the 317/49 vs 320/49 lower-bound instance of
    §4.3) and to verify the NP-hardness reduction identities of §3. *)

type t

val zero : t
val one : t

(** [make num den] is the normalized fraction [num/den].
    @raise Division_by_zero when [den] is zero. *)
val make : Bigint.t -> Bigint.t -> t

(** [of_ints num den] is [make (of_int num) (of_int den)]. *)
val of_ints : int -> int -> t

val of_int : int -> t
val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool

val neg : t -> t
val abs : t -> t
val inv : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** @raise Division_by_zero when dividing by zero. *)
val div : t -> t -> t

val min : t -> t -> t
val max : t -> t -> t

(** [pow x k] for any integer [k]; [pow zero k] with [k < 0] raises
    [Division_by_zero]. *)
val pow : t -> int -> t

val to_float : t -> float

(** [to_string x] is ["num/den"], or just ["num"] when [den = 1]. *)
val to_string : t -> string

(** [of_string s] parses ["a"], ["a/b"], or a decimal like ["0.25"].
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

(** Exact sum and product of a list. *)
val sum : t list -> t

val product : t list -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t

val pp : Format.formatter -> t -> unit
