module Q = Rational

let f_lemma31 ~c x y =
  let c = float_of_int c in
  (c -. y) *. (((1.0 -. (3.0 /. (2.0 *. c))) *. y) +. x) *. (y -. x)

let f_lemma31_exact ~c x y =
  let cq = Q.of_int c in
  let twoc = 2 * c in
  let coef = Q.(sub one (of_ints 3 twoc)) in
  Q.(mul (mul (sub cq y) (add (mul coef y) x)) (sub y x))

let f_lemma31_max ~c =
  (* f(1/2, 2c/3) = 4c³/27 − 2c²/9 + c/12. *)
  let cq = Q.of_int c in
  Q.(
    add
      (sub (mul (of_ints 4 27) (pow cq 3)) (mul (of_ints 2 9) (pow cq 2)))
      (mul (of_ints 1 12) cq))

let lb_lemma32 ~c =
  let pred_c = c - 1 in
  let denom = Q.(mul (sub (of_int c) (of_ints 1 2)) (of_int pred_c)) in
  Q.(sub (of_int c) (div (f_lemma31_max ~c) denom))

let check_md m d =
  if m < 2 || d < 2 then
    invalid_arg "Lemma_bounds: requires m >= 2 and d >= 2"

let alphas ~m ~d =
  check_md m d;
  let mf = float_of_int m in
  let rec go k prev acc =
    if k > d - 1 then List.rev acc
    else begin
      let a =
        if k = 1 then mf /. (mf +. 1.0)
        else mf /. (mf +. 1.0 -. (prev ** mf))
      in
      go (k + 1) a (a :: acc)
    end
  in
  go 1 nan []

let bs ~m ~d ~c =
  let a = Array.of_list (alphas ~m ~d) in
  let b = Array.make (d + 1) 0.0 in
  b.(d) <- float_of_int c;
  for k = d downto 2 do
    b.(k - 1) <- a.(k - 2) *. b.(k)
  done;
  b.(0) <- 0.0;
  b

let optimal_group_fractions ~m ~d =
  let b = bs ~m ~d ~c:1 in
  Array.init d (fun j -> b.(j + 1) -. b.(j))

let lemma34_bound ~m ~d ~c =
  let b = bs ~m ~d ~c in
  let cf = float_of_int c in
  let coef =
    ((2.0 *. cf) -. 1.0) ** 2.0
    /. (4.0 *. (cf -. 1.0) *. (cf ** float_of_int (m + 1)))
  in
  let s = ref 0.0 in
  for r = 1 to d - 1 do
    s := !s +. ((b.(r + 1) -. b.(r)) *. (b.(r) ** float_of_int m))
  done;
  cf -. (coef *. !s)

let xs_lemma34 ~m ~d =
  let b = bs ~m ~d ~c:1 in
  let xs = Array.make d 0.0 in
  for j = 1 to d - 1 do
    xs.(j - 1) <- (b.(j) -. b.(j - 1)) /. 2.0
  done;
  let partial = Array.fold_left ( +. ) 0.0 (Array.sub xs 0 (d - 1)) in
  xs.(d - 1) <- 1.0 -. partial;
  xs
