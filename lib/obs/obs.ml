(* Observability: metrics registry + span tracer.  Stdlib + Unix only.

   Design constraints (see DESIGN.md §9):
   - disabled (the default) must be a near-zero-cost no-op: one atomic
     load and a branch per instrumentation site, no allocation, no
     locking, so the sequential solver path is bit-identical to an
     uninstrumented build;
   - enabled must be safe to call from any domain: counters, gauges and
     histogram cells are Atomic cells, the name->metric table is
     mutex-protected, and span completion pushes under a mutex;
   - counters and histogram *bucket counts* recorded outside pool_* /
     *_ms must not depend on how work was scheduled, so cross-domain
     equality can be asserted (bench e26, test_obs). *)

(* Monotonised wall clock, same idiom as Cancel.now: a CAS high-water
   mark keeps the reading non-decreasing across domains even if the
   system clock is stepped backwards. *)
let mono_high = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec bump () =
    let prev = Atomic.get mono_high in
    if t <= prev then prev
    else if Atomic.compare_and_set mono_high prev t then t
    else bump ()
  in
  bump ()

let sanitize name =
  let ok c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = ':'
  in
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    if not (ok (Bytes.get b i)) then Bytes.set b i '_'
  done;
  let s = Bytes.unsafe_to_string b in
  if s = "" then "_"
  else if s.[0] >= '0' && s.[0] <= '9' then "_" ^ s
  else s

let latency_ms_buckets =
  [| 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.;
     2500.; 5000.; 10000. |]

let small_count_buckets = [| 1.; 2.; 3.; 4.; 6.; 8.; 12.; 16.; 24.; 32.; 64. |]
let excess_buckets = [| 0.; 0.001; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1. |]

(* Shortest representation that round-trips: %.12g covers every bucket
   bound and sum in practice, %.17g is the exact fallback. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Atomic float accumulator: CAS loop over the boxed float. *)
let atomic_fadd cell v =
  let rec go () =
    let prev = Atomic.get cell in
    if not (Atomic.compare_and_set cell prev (prev +. v)) then go ()
  in
  go ()

module Metrics = struct
  type histogram = {
    bounds : float array;  (* strictly increasing upper bounds *)
    cells : int Atomic.t array;  (* length bounds + 1; last = overflow *)
    h_count : int Atomic.t;
    h_sum : float Atomic.t;
  }

  type metric =
    | Counter of int Atomic.t
    | Gauge of int Atomic.t
    | Histogram of histogram

  type t = {
    on : bool Atomic.t;
    lock : Mutex.t;
    table : (string, metric) Hashtbl.t;
  }

  let create () =
    { on = Atomic.make false; lock = Mutex.create (); table = Hashtbl.create 64 }

  let default = create ()
  let set_enabled t b = Atomic.set t.on b
  let enabled t = Atomic.get t.on

  let reset t =
    Mutex.protect t.lock (fun () -> Hashtbl.reset t.table)

  let kind_name = function
    | Counter _ -> "counter"
    | Gauge _ -> "gauge"
    | Histogram _ -> "histogram"

  (* Look up [name], creating it with [make] under the registry lock if
     absent.  A name can only ever hold one metric kind. *)
  let find_or_add t name ~make ~match_ =
    let name = sanitize name in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table name with
        | Some m -> (
            match match_ m with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "Obs.Metrics: %s already registered as a %s"
                     name (kind_name m)))
        | None ->
            let m = make () in
            Hashtbl.add t.table name m;
            match match_ m with
            | Some v -> v
            | None -> assert false)

  let counter_cell t name =
    find_or_add t name
      ~make:(fun () -> Counter (Atomic.make 0))
      ~match_:(function Counter c -> Some c | _ -> None)

  let gauge_cell t name =
    find_or_add t name
      ~make:(fun () -> Gauge (Atomic.make 0))
      ~match_:(function Gauge g -> Some g | _ -> None)

  let histogram_of t ?(buckets = latency_ms_buckets) name =
    let check_bounds bounds =
      if Array.length bounds = 0 then
        invalid_arg "Obs.Metrics: histogram needs at least one bucket bound";
      for i = 1 to Array.length bounds - 1 do
        if not (bounds.(i) > bounds.(i - 1)) then
          invalid_arg "Obs.Metrics: histogram bounds must be strictly increasing"
      done
    in
    find_or_add t name
      ~make:(fun () ->
        check_bounds buckets;
        Histogram
          {
            bounds = Array.copy buckets;
            cells = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
            h_count = Atomic.make 0;
            h_sum = Atomic.make 0.;
          })
      ~match_:(function
        | Histogram h ->
            if h.bounds <> buckets && buckets != latency_ms_buckets then
              (* Re-registration with explicitly different bounds is a
                 programming error; omitting ~buckets on later calls is
                 allowed and keeps the first registration's bounds. *)
              None
            else Some h
        | _ -> None)

  let incr t name = if enabled t then Atomic.incr (counter_cell t name)

  let add t name n =
    if enabled t then
      let c = counter_cell t name in
      ignore (Atomic.fetch_and_add c n)

  let gauge_set t name v = if enabled t then Atomic.set (gauge_cell t name) v

  let gauge_add t name v =
    if enabled t then ignore (Atomic.fetch_and_add (gauge_cell t name) v)

  let bucket_index bounds v =
    (* First bound >= v; Array.length bounds = overflow. *)
    let n = Array.length bounds in
    let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe t ?buckets name v =
    if enabled t then begin
      let h = histogram_of t ?buckets name in
      Atomic.incr h.cells.(bucket_index h.bounds v);
      Atomic.incr h.h_count;
      atomic_fadd h.h_sum v
    end

  (* Snapshots -------------------------------------------------------- *)

  let sorted_bindings t =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let counter_value t name =
    let name = sanitize name in
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table name with
        | Some (Counter c) -> Atomic.get c
        | _ -> 0)

  let counters t =
    List.filter_map
      (function n, Counter c -> Some (n, Atomic.get c) | _ -> None)
      (sorted_bindings t)

  let gauges t =
    List.filter_map
      (function n, Gauge g -> Some (n, Atomic.get g) | _ -> None)
      (sorted_bindings t)

  let histogram_buckets t =
    List.filter_map
      (function
        | n, Histogram h -> Some (n, Array.map Atomic.get h.cells)
        | _ -> None)
      (sorted_bindings t)

  (* Exposition ------------------------------------------------------- *)

  let to_json t =
    let bindings = sorted_bindings t in
    let buf = Buffer.create 1024 in
    let int_section kind pick =
      let first = ref true in
      Buffer.add_string buf (Printf.sprintf "\"%s\":{" kind);
      List.iter
        (fun (n, m) ->
          match pick m with
          | Some v ->
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape n) v)
          | None -> ())
        bindings;
      Buffer.add_char buf '}'
    in
    Buffer.add_char buf '{';
    int_section "counters" (function Counter c -> Some (Atomic.get c) | _ -> None);
    Buffer.add_char buf ',';
    int_section "gauges" (function Gauge g -> Some (Atomic.get g) | _ -> None);
    Buffer.add_string buf ",\"histograms\":{";
    let first = ref true in
    List.iter
      (fun (n, m) ->
        match m with
        | Histogram h ->
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf (Printf.sprintf "\"%s\":{" (json_escape n));
            Buffer.add_string buf
              (Printf.sprintf "\"count\":%d,\"sum\":%s,\"buckets\":["
                 (Atomic.get h.h_count)
                 (float_repr (Atomic.get h.h_sum)));
            let cum = ref 0 in
            Array.iteri
              (fun i cell ->
                cum := !cum + Atomic.get cell;
                if i > 0 then Buffer.add_char buf ',';
                let le =
                  if i < Array.length h.bounds then float_repr h.bounds.(i)
                  else "\"+Inf\""
                in
                Buffer.add_string buf
                  (Printf.sprintf "{\"le\":%s,\"count\":%d}" le !cum))
              h.cells;
            Buffer.add_string buf "]}"
        | _ -> ())
      bindings;
    Buffer.add_string buf "}}";
    Buffer.contents buf

  let to_prometheus t =
    let bindings = sorted_bindings t in
    let buf = Buffer.create 1024 in
    List.iter
      (fun (n, m) ->
        match m with
        | Counter c ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Atomic.get c))
        | Gauge g ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Atomic.get g))
        | Histogram h ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
            let cum = ref 0 in
            Array.iteri
              (fun i cell ->
                cum := !cum + Atomic.get cell;
                let le =
                  if i < Array.length h.bounds then float_repr h.bounds.(i)
                  else "+Inf"
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cum))
              h.cells;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum %s\n" n (float_repr (Atomic.get h.h_sum)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count %d\n" n (Atomic.get h.h_count)))
      bindings;
    Buffer.contents buf
end

module Trace = struct
  type span = {
    id : int;
    parent : int;
    name : string;
    start_s : float;
    stop_s : float;
    domain : int;
  }

  type t = {
    on : bool Atomic.t;
    lock : Mutex.t;
    mutable completed : span list;  (* most recently finished first *)
    next_id : int Atomic.t;
  }

  let create () =
    {
      on = Atomic.make false;
      lock = Mutex.create ();
      completed = [];
      next_id = Atomic.make 1;
    }

  let default = create ()
  let set_enabled t b = Atomic.set t.on b
  let enabled t = Atomic.get t.on

  let reset t =
    Mutex.protect t.lock (fun () -> t.completed <- []);
    Atomic.set t.next_id 1

  let no_parent = -1

  let with_span t ?(parent = no_parent) name f =
    if not (Atomic.get t.on) then f no_parent
    else begin
      let id = Atomic.fetch_and_add t.next_id 1 in
      let start_s = now () in
      let finish () =
        let span =
          {
            id;
            parent;
            name;
            start_s;
            stop_s = now ();
            domain = (Domain.self () :> int);
          }
        in
        Mutex.protect t.lock (fun () -> t.completed <- span :: t.completed)
      in
      Fun.protect ~finally:finish (fun () -> f id)
    end

  let spans t =
    Mutex.protect t.lock (fun () -> t.completed)
    |> List.sort (fun a b ->
           match Float.compare a.start_s b.start_s with
           | 0 -> Int.compare a.id b.id
           | c -> c)

  let to_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"spans\":[";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buf ',';
        let parent = if s.parent < 0 then "null" else string_of_int s.parent in
        Buffer.add_string buf
          (Printf.sprintf
             "{\"id\":%d,\"parent\":%s,\"name\":\"%s\",\"start_s\":%s,\"dur_ms\":%s,\"domain\":%d}"
             s.id parent (json_escape s.name) (float_repr s.start_s)
             (float_repr ((s.stop_s -. s.start_s) *. 1000.))
             s.domain))
      (spans t);
    Buffer.add_string buf "]}";
    Buffer.contents buf
end

let on () = Metrics.enabled Metrics.default
let count name = Metrics.incr Metrics.default name
let count_n name n = Metrics.add Metrics.default name n
let gauge_set name v = Metrics.gauge_set Metrics.default name v
let gauge_add name v = Metrics.gauge_add Metrics.default name v
let observe ?buckets name v = Metrics.observe Metrics.default ?buckets name v
let span ?parent name f = Trace.with_span Trace.default ?parent name f
