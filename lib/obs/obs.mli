(** Observability: a domain-safe metrics registry and span tracer.

    Both sides are disabled by default and every instrumentation call
    checks a single [Atomic.t bool] first, so the instrumented hot paths
    pay one atomic load and a branch when observability is off — the
    sequential solver path stays bit-identical to the uninstrumented
    build.

    Metric names are sanitised to the Prometheus alphabet
    ([A-Za-z0-9_:]; leading digits prefixed with ['_']), so dynamic name
    fragments such as solver specs ("bandwidth-80", "robust-0.05:0.1")
    are safe to splice into a name.

    Determinism contract (locked by bench e26 and test_obs): with
    metrics enabled, all counters and histogram bucket counts outside
    the [pool_*] namespace and the [*_ms] latency histograms are
    identical across [CONFCALL_DOMAINS=1] and [=4] for re-ranked runner
    chains, sweeps and simulations.  Scheduler counters ([pool_*]) and
    wall-clock histograms ([*_ms]) are inherently timing-dependent and
    exempt. *)

(** [now ()] is a monotonised wall clock (seconds): successive calls,
    across domains, never go backwards even if the system clock is
    stepped. *)
val now : unit -> float

module Metrics : sig
  type t
  (** A registry: a mutex-protected map from metric name to metric.
      Registration is lazy — the first operation on a name creates the
      metric; operations on a disabled registry neither create nor
      mutate anything. *)

  val create : unit -> t

  val default : t
  (** Shared registry used by the [Obs.count]/[Obs.observe]/... shortcuts
      and by all built-in instrumentation. *)

  val set_enabled : t -> bool -> unit
  val enabled : t -> bool

  val reset : t -> unit
  (** Drop every registered metric (names and values). *)

  (** {2 Operations} — no-ops when the registry is disabled.  Reusing a
      name with a different metric kind (or different histogram buckets)
      raises [Invalid_argument]. *)

  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val gauge_set : t -> string -> int -> unit
  val gauge_add : t -> string -> int -> unit

  val observe : t -> ?buckets:float array -> string -> float -> unit
  (** [observe t ~buckets name v] records [v] in the first bucket whose
      upper bound is [>= v] (values above the last bound go to the
      implicit [+Inf] overflow bucket).  [buckets] must be strictly
      increasing; it is fixed at first registration. *)

  (** {2 Snapshots} — for tests and bench equality checks. *)

  val counter_value : t -> string -> int
  (** 0 if the counter was never registered. *)

  val counters : t -> (string * int) list
  (** Sorted by name. *)

  val gauges : t -> (string * int) list
  (** Sorted by name. *)

  val histogram_buckets : t -> (string * int array) list
  (** Sorted by name; per-histogram non-cumulative bucket counts, the
      overflow bucket last. *)

  (** {2 Exposition} *)

  val to_json : t -> string
  (** [{"counters":{...},"gauges":{...},"histograms":{name:{"count":n,
      "sum":s,"buckets":[{"le":b,"count":c},...,{"le":"+Inf",...}]}}}]
      with cumulative bucket counts and names sorted. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition format (counters, gauges, and
      [_bucket]/[_sum]/[_count] histogram series with cumulative [le]
      labels). *)
end

module Trace : sig
  type t
  (** A span buffer: completed spans are pushed under a mutex; ids come
      from an atomic counter so spans started on worker domains nest
      correctly via explicit parent ids. *)

  type span = {
    id : int;
    parent : int;  (** [< 0] means no parent. *)
    name : string;
    start_s : float;  (** [Obs.now] at entry. *)
    stop_s : float;
    domain : int;  (** Domain id the span completed on. *)
  }

  val create : unit -> t
  val default : t
  val set_enabled : t -> bool -> unit
  val enabled : t -> bool
  val reset : t -> unit

  val no_parent : int
  (** The id to pass for a root span; also what [with_span] hands to its
      callback when the tracer is disabled. *)

  val with_span : t -> ?parent:int -> string -> (int -> 'a) -> 'a
  (** [with_span t ~parent name f] runs [f id] and records the span even
      if [f] raises.  When disabled, calls [f no_parent] directly. *)

  val spans : t -> span list
  (** Completed spans sorted by (start time, id). *)

  val to_json : t -> string
  (** [{"spans":[{"id":..,"parent":..|null,"name":..,"start_s":..,
      "dur_ms":..,"domain":..},...]}] sorted by start time. *)
end

(** {1 Shortcuts on the default registry and tracer} *)

val on : unit -> bool
(** True when the default metrics registry is enabled. *)

val count : string -> unit
val count_n : string -> int -> unit
val gauge_set : string -> int -> unit
val gauge_add : string -> int -> unit
val observe : ?buckets:float array -> string -> float -> unit

val span : ?parent:int -> string -> (int -> 'a) -> 'a
(** [Trace.with_span Trace.default]. *)

(** {1 Shared bucket layouts} *)

val latency_ms_buckets : float array
(** 0.1 .. 10_000 ms, roughly log-spaced — for [*_ms] histograms. *)

val small_count_buckets : float array
(** 1 .. 64 — for rounds-to-find and cells-per-round histograms. *)

val excess_buckets : float array
(** 0 .. 1 — for relative EP excess over the lower bound. *)

val sanitize : string -> string
(** Map a raw string onto the Prometheus name alphabet. *)
