(** Fault-injection seam for the execution runtime.

    The simulator has injected {e model} faults (page loss, imperfect
    detection, cell outages) since PR 1; this module injects {e runtime}
    faults — a worker domain dying mid-task, a journal write tearing, a
    stalled client socket — so the self-healing machinery in
    [Exec.Pool], [Journal] and [lib/serve] can be exercised
    deterministically in tests, soaks and benches instead of waiting
    for production to produce the failure.

    Design constraints, in order:

    + {b Off means off.} Every probe starts with a single [Atomic.t
      bool] load and a branch; a disabled seam performs no allocation,
      no hashing, no RNG draw. The differential suite pins that the
      solver and serve outputs with the seam compiled in but disabled
      are byte-identical to the clean build.
    + {b Domain-safe.} Arming happens once, before the workload
      (configuration tables become read-only); the per-draw PRNG state
      is a lock-free atomic splitmix64, so any domain or systhread may
      probe any point concurrently.
    + {b Deterministic per seed.} The PRNG is seeded explicitly
      ([CONFCALL_CHAOS_SEED] or [?seed]); a chaos failure in CI
      reproduces with the same seed. (Across domains the interleaving
      still varies — determinism here means the draw {e sequence}, not
      the schedule.)
    + {b Stdlib only.} [Atomic], [Hashtbl], [Unix.sleepf]; nothing the
      container does not already have.

    {2 Points and spec grammar}

    Each named point has one failure semantic, applied by the site that
    probes it (see {!catalogue}): [hit] points raise {!Injected},
    [delay] points sleep, [short] points truncate a write. A spec is a
    comma-separated list of [point=prob] or [point=prob@param] entries;
    [prob] in [0, 1], [param] a point-specific number (milliseconds for
    delay points, a fraction of the write for short points). The
    wildcard entry [*=prob] arms every catalogued point at once with
    its default parameter. Examples:

    {v
    CONFCALL_CHAOS='pool.task.crash=0.05'
    CONFCALL_CHAOS='journal.append.short=0.1@0.3,journal.fsync=0.2'
    confcall serve --chaos '*=0.02' --chaos-seed 7
    v} *)

(** Raised at a [hit]-style point when its probability fires; the
    payload is the point name. Sites either let it escape (simulated
    crash) or absorb it (simulated transient error). *)
exception Injected of string

val env_var : string
(** ["CONFCALL_CHAOS"] — spec read by {!arm_from_env}. *)

val seed_env_var : string
(** ["CONFCALL_CHAOS_SEED"] — integer seed for {!arm_from_env}
    (default 1). *)

val catalogue : (string * string) list
(** Every valid point name with a one-line description of what firing
    means at its site. Specs naming an uncatalogued point are
    rejected. *)

val parse : string -> ((string * float * float) list, string) result
(** [parse spec] — the normalized (point, probability, param) list,
    wildcards expanded, without arming anything. Exposed for tests and
    for front ends that want to validate [--chaos] at the CLI
    boundary. *)

val configure : ?seed:int -> string -> (unit, string) result
(** [configure ?seed spec] parses and arms. A second call replaces the
    previous configuration. [seed] defaults to 1. An empty spec
    ([""]) is valid and arms nothing (the seam stays disabled). *)

val configure_exn : ?seed:int -> string -> unit
(** @raise Invalid_argument on a malformed spec. *)

val arm_from_env : unit -> unit
(** Arm from [CONFCALL_CHAOS]/[CONFCALL_CHAOS_SEED] when set; no-op —
    and no spec validation — when the variable is absent or empty.
    @raise Invalid_argument on a malformed spec (fail loud at startup,
    not silently clean). *)

val disable : unit -> unit
(** Back to the clean path: every probe is one atomic load + branch
    again. The fired counters survive until the next {!configure}. *)

val on : unit -> bool
(** True when a configuration with at least one armed point is
    active. *)

(** {2 Probes} — each is a no-op (one load, one branch) when off. *)

val hit : string -> unit
(** [hit p] raises [Injected p] when point [p] is armed and its draw
    fires; returns otherwise.
    @raise Invalid_argument when [p] is not in {!catalogue} {e and}
    the seam is on — mistyped sites must not silently never fire. *)

val delay : string -> unit
(** [delay p] sleeps the point's param (milliseconds) when it fires. *)

val short : string -> float option
(** [short p] is [Some frac] (the fraction of the write to keep,
    in [0, 1]) when the point fires — the site truncates its write and
    raises — and [None] otherwise. *)

(** {2 Accounting} — for tests, soaks and the chaos bench. *)

val fired : string -> int
(** Times this point has fired since the last {!configure}. *)

val total_fired : unit -> int

val fired_all : unit -> (string * int) list
(** Nonzero points, sorted by name. *)
