exception Injected of string

let env_var = "CONFCALL_CHAOS"
let seed_env_var = "CONFCALL_CHAOS_SEED"

(* One semantic per point; the probing site picks the matching probe
   function ([hit] / [delay] / [short]). Params: milliseconds for delay
   points, write fraction for short points, ignored elsewhere. *)
let catalogue =
  [
    ( "pool.task.crash",
      "worker/caller dies between dequeuing a task and running it \
       (domain death; the task is failed and the domain respawned)" );
    ( "pool.task.delay",
      "task start delayed by param ms (straggler; watchdog fodder)" );
    ( "serve.lane.crash",
      "a serve worker lane dies between jobs (domain death; a spare \
       lane takes over)" );
    ( "journal.append",
      "journal append fails before any byte is written" );
    ( "journal.append.short",
      "journal append writes only a param fraction of the line, then \
       fails (torn line / disk full)" );
    ("journal.fsync", "journal fsync fails after a complete write");
    ("serve.accept", "transient accept failure (absorbed, loop continues)");
    ("serve.read", "transient connection-read failure (absorbed, retried)");
    ("serve.read.delay", "connection read delayed by param ms");
    ( "serve.write",
      "transient connection-write failure (absorbed by the writer, \
       retried)" );
    ("serve.write.delay", "writer delayed by param ms before a chunk");
    ( "cache.store",
      "result-cache store fails (absorbed; the answer is still served)" );
  ]

let default_param point =
  let n = String.length point in
  let has_suffix suf =
    let k = String.length suf in
    n >= k && String.sub point (n - k) k = suf
  in
  if has_suffix ".delay" then 2.0 (* ms *)
  else if has_suffix ".short" then 0.5 (* fraction of the write kept *)
  else 0.0

(* ---------------- state ---------------- *)

type point = { prob : float; param : float; count : int Atomic.t }

(* Written only by [configure]/[disable] (single-threaded setup), read
   by any domain afterwards: the table itself is immutable once
   [enabled] is set, and the counters are atomics. *)
let table : (string, point) Hashtbl.t = Hashtbl.create 16
let enabled = Atomic.make false
let on () = Atomic.get enabled

(* splitmix64 behind a CAS loop: lock-free, any domain may draw. The
   uniform is the mixed state's top 53 bits. *)
let prng = Atomic.make 0L

let rec next_state () =
  let cur = Atomic.get prng in
  let nxt = Int64.add cur 0x9E3779B97F4A7C15L in
  if Atomic.compare_and_set prng cur nxt then nxt else next_state ()

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform () =
  let bits = Int64.shift_right_logical (mix (next_state ())) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* ---------------- spec parsing ---------------- *)

let parse spec =
  let spec = String.trim spec in
  if spec = "" then Ok []
  else begin
    let entries = String.split_on_char ',' spec in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | raw :: rest -> (
        let raw = String.trim raw in
        match String.index_opt raw '=' with
        | None ->
          Error
            (Printf.sprintf "chaos: entry %S is not point=prob[@param]" raw)
        | Some eq -> (
          let name = String.trim (String.sub raw 0 eq) in
          let rhs = String.sub raw (eq + 1) (String.length raw - eq - 1) in
          let prob_s, param_s =
            match String.index_opt rhs '@' with
            | None -> (String.trim rhs, None)
            | Some at ->
              ( String.trim (String.sub rhs 0 at),
                Some
                  (String.trim
                     (String.sub rhs (at + 1) (String.length rhs - at - 1)))
              )
          in
          match float_of_string_opt prob_s with
          | None ->
            Error (Printf.sprintf "chaos: %s: bad probability %S" name prob_s)
          | Some prob when not (Float.is_finite prob) || prob < 0.0 || prob > 1.0
            ->
            Error
              (Printf.sprintf "chaos: %s: probability must be in [0, 1]" name)
          | Some prob -> (
            let param name =
              match param_s with
              | None -> Ok (default_param name)
              | Some s -> (
                match float_of_string_opt s with
                | Some p when Float.is_finite p && p >= 0.0 -> Ok p
                | Some _ | None ->
                  Error
                    (Printf.sprintf
                       "chaos: %s: param must be a non-negative number, got %S"
                       name s))
            in
            if name = "*" then begin
              let rec expand acc = function
                | [] -> go acc rest
                | (p, _) :: tl -> (
                  match param p with
                  | Ok prm -> expand ((p, prob, prm) :: acc) tl
                  | Error e -> Error e)
              in
              expand acc catalogue
            end
            else if not (List.mem_assoc name catalogue) then
              Error
                (Printf.sprintf "chaos: unknown point %S (known: %s)" name
                   (String.concat " " (List.map fst catalogue)))
            else
              match param name with
              | Ok prm -> go ((name, prob, prm) :: acc) rest
              | Error e -> Error e)))
    in
    go [] entries
  end

(* Only drop the enabled flag: the fired counters stay readable (the
   chaos soak and the CLI's exit summary report them after disarming)
   until the next [configure] replaces the table. *)
let disable () = Atomic.set enabled false

let configure ?(seed = 1) spec =
  match parse spec with
  | Error _ as e -> e
  | Ok entries ->
    Atomic.set enabled false;
    Hashtbl.reset table;
    Atomic.set prng (mix (Int64.of_int ((seed * 2) + 1)));
    List.iter
      (fun (name, prob, param) ->
        if prob > 0.0 then
          Hashtbl.replace table name { prob; param; count = Atomic.make 0 })
      entries;
    if Hashtbl.length table > 0 then Atomic.set enabled true;
    Ok ()

let configure_exn ?seed spec =
  match configure ?seed spec with
  | Ok () -> ()
  | Error msg -> invalid_arg msg

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None -> ()
  | Some spec when String.trim spec = "" -> ()
  | Some spec ->
    let seed =
      match Option.bind (Sys.getenv_opt seed_env_var) int_of_string_opt with
      | Some s -> s
      | None -> 1
    in
    configure_exn ~seed spec

(* ---------------- probes ---------------- *)

let draw name =
  if not (Atomic.get enabled) then None
  else
    match Hashtbl.find_opt table name with
    | None ->
      if not (List.mem_assoc name catalogue) then
        invalid_arg (Printf.sprintf "Faultpoint: unknown point %S" name);
      None
    | Some p ->
      if uniform () < p.prob then begin
        Atomic.incr p.count;
        Some p
      end
      else None

let hit name =
  if Atomic.get enabled then
    match draw name with
    | Some _ -> raise (Injected name)
    | None -> ()

let delay name =
  if Atomic.get enabled then
    match draw name with
    | Some p -> if p.param > 0.0 then Unix.sleepf (p.param /. 1000.0)
    | None -> ()

let short name =
  if not (Atomic.get enabled) then None
  else
    match draw name with
    | Some p -> Some (Float.max 0.0 (Float.min 1.0 p.param))
    | None -> None

(* ---------------- accounting ---------------- *)

let fired name =
  match Hashtbl.find_opt table name with
  | Some p -> Atomic.get p.count
  | None -> 0

let fired_all () =
  Hashtbl.fold
    (fun name p acc ->
      let n = Atomic.get p.count in
      if n > 0 then (name, n) :: acc else acc)
    table []
  |> List.sort compare

let total_fired () =
  Hashtbl.fold (fun _ p acc -> acc + Atomic.get p.count) table 0
