(* Experiment harness: regenerates every quantitative claim in Bar-Noy &
   Malewicz (PODC'02 / J. Algorithms 2004). The paper is a theory paper
   with no empirical tables, so each worked example, bound, and analytic
   curve becomes an experiment (E1..E21; see DESIGN.md section 3 and
   EXPERIMENTS.md for the mapping). Each experiment prints its table and
   a shape check; Bechamel micro-benchmarks (E11) measure the solvers.

   Run everything:        dune exec bench/main.exe
   Run one experiment:    dune exec bench/main.exe -- e3 e9
   Skip micro-benchmarks: dune exec bench/main.exe -- --no-bechamel *)

module Q = Numeric.Rational
module Instance = Confcall.Instance
module Strategy = Confcall.Strategy
module Objective = Confcall.Objective
module Order_dp = Confcall.Order_dp
module Greedy = Confcall.Greedy
module Single = Confcall.Single
module Optimal = Confcall.Optimal
module Bounds = Confcall.Bounds
module Adaptive = Confcall.Adaptive
module Yellow_pages = Confcall.Yellow_pages
module Signature = Confcall.Signature
module Bandwidth = Confcall.Bandwidth
module Miss = Confcall.Miss
module Hardness = Confcall.Hardness

(* id, pass, detail, machine-readable metrics (values are JSON
   fragments; see [json_out]). *)
let results : (string * bool * string * (string * string) list) list ref =
  ref []

let record ~id ~pass ?(metrics = []) detail =
  results := (id, pass, detail, metrics) :: !results;
  Printf.printf "shape check [%s]: %s %s\n\n" id
    (if pass then "PASS" else "FAIL")
    detail

(* --json-out DIR: after the run, one BENCH_<id>.json per experiment
   with the shape-check verdict and any metrics the experiment
   recorded. Values in [metrics] are already JSON fragments. *)
let json_out : string option ref = ref None

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = Printf.sprintf "\"%s\"" (json_escape s)
let json_num x =
  if Float.is_finite x then Printf.sprintf "%.12g" x
  else json_str (Printf.sprintf "%h" x)

let json_out_result dir (id, pass, detail, metrics) =
  let path = Filename.concat dir (Printf.sprintf "BENCH_%s.json" id) in
  let fields =
    [
      "id", json_str id;
      "pass", (if pass then "true" else "false");
      "detail", json_str detail;
    ]
    @ metrics
  in
  let body =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (json_str k) v) fields)
    ^ "}\n"
  in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc body)

let header ~id ~title ~claim =
  Printf.printf "=== %s: %s ===\n" (String.uppercase_ascii id) title;
  Printf.printf "paper: %s\n\n" claim

(* ------------------------------------------------------------------ *)
(* E1: uniform single device, d = 2 -> EP = 3c/4 (Section 1.1)         *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header ~id:"e1" ~title:"uniform single device, two rounds"
    ~claim:
      "for a uniform device and d = 2, the best strategy pages half the \
       cells then the rest: EP = 3c/4 (a c/4 saving over blanket paging)";
  Printf.printf "%8s %12s %12s %12s %10s\n" "c" "DP" "3c/4" "blanket" "saving";
  let ok = ref true in
  List.iter
    (fun c ->
      let inst = Instance.all_uniform ~m:1 ~c ~d:2 in
      let dp = (Single.solve inst).Order_dp.expected_paging in
      let closed = 3.0 *. float_of_int c /. 4.0 in
      if abs_float (dp -. closed) > 1e-9 then ok := false;
      Printf.printf "%8d %12.2f %12.2f %12d %10.2f\n" c dp closed c
        (float_of_int c -. dp))
    [ 4; 8; 16; 64; 256; 512 ];
  record ~id:"e1" ~pass:!ok "DP equals the 3c/4 closed form exactly"

(* ------------------------------------------------------------------ *)
(* E2: approximation ratio vs exhaustive optimum (Theorem 4.8, L. 4.3) *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header ~id:"e2" ~title:"heuristic vs exact optimum on random instances"
    ~claim:
      "greedy EP <= e/(e-1) ~ 1.5820 x OPT always (Theorem 4.8); <= 4/3 \
       when m = d = 2 (Lemma 4.3); ratio can reach 320/317 ~ 1.0095";
  Printf.printf "%6s %4s %4s %8s %10s %10s %10s %10s\n" "m" "d" "c" "trials"
    "mean" "max" "bound" "greedy=opt";
  let ok = ref true in
  let worst = ref 1.0 in
  List.iter
    (fun (m, d, c) ->
      let rng = Prob.Rng.create ~seed:(1000 + (m * 100) + (d * 10) + c) in
      let trials = 40 in
      let acc = Prob.Stats.Acc.create () in
      let max_ratio = ref 1.0 and ties = ref 0 in
      for t = 1 to trials do
        let inst =
          if t mod 2 = 0 then Instance.random_uniform_simplex rng ~m ~c ~d
          else Instance.random_zipf rng ~s:1.0 ~m ~c ~d
        in
        let g = (Greedy.solve inst).Order_dp.expected_paging in
        let o = (Optimal.exhaustive inst).Optimal.expected_paging in
        let ratio = g /. o in
        Prob.Stats.Acc.add acc ratio;
        if ratio > !max_ratio then max_ratio := ratio;
        if ratio < 1.0 -. 1e-9 then ok := false;
        if abs_float (ratio -. 1.0) < 1e-12 then incr ties
      done;
      let bound =
        if m = 2 && d = 2 then 4.0 /. 3.0 else Greedy.approximation_factor
      in
      if !max_ratio > bound +. 1e-9 then ok := false;
      if !max_ratio > !worst then worst := !max_ratio;
      Printf.printf "%6d %4d %4d %8d %10.4f %10.4f %10.4f %7d/%d\n" m d c
        trials (Prob.Stats.Acc.mean acc) !max_ratio bound !ties trials)
    [ 2, 2, 8; 2, 3, 8; 3, 2, 7; 3, 3, 7; 4, 2, 6; 2, 2, 10 ];
  record ~id:"e2" ~pass:!ok
    (Printf.sprintf
       "all ratios within proven bounds; worst observed %.4f (bound %.4f)"
       !worst Greedy.approximation_factor)

(* ------------------------------------------------------------------ *)
(* E3: the 320/317 lower-bound instance (Section 4.3)                  *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header ~id:"e3" ~title:"the Section 4.3 performance-gap instance"
    ~claim:
      "m = 2, c = 8, d = 2, p(1,1) = 2/7, p(2,1) = p(1,7) = p(1,8) = 0, \
       rest 1/7: OPT pages cells 2..6 first (EP = 317/49), the heuristic \
       pages 1..5 (EP = 320/49); ratio exactly 320/317";
  let s = Q.of_ints 1 7 and z = Q.zero in
  let exact =
    Instance.Exact.create ~d:2
      [|
        [| Q.of_ints 2 7; s; s; s; s; s; z; z |];
        [| z; s; s; s; s; s; s; s |];
      |]
  in
  let opt_strategy, opt_ep = Optimal.exhaustive_exact exact in
  let float_inst = Instance.Exact.to_float exact in
  let heur = Greedy.solve float_inst in
  let heur_ep = Strategy.expected_paging_exact exact heur.Order_dp.strategy in
  let ratio = Q.div heur_ep opt_ep in
  Printf.printf "%-22s %-22s %s\n" "quantity" "strategy" "exact EP";
  Printf.printf "%-22s %-22s %s = %.6f\n" "optimal"
    (Strategy.to_string opt_strategy)
    (Q.to_string opt_ep) (Q.to_float opt_ep);
  Printf.printf "%-22s %-22s %s = %.6f\n" "heuristic"
    (Strategy.to_string heur.Order_dp.strategy)
    (Q.to_string heur_ep) (Q.to_float heur_ep);
  Printf.printf "%-22s %-22s %s = %.6f\n" "ratio" "-" (Q.to_string ratio)
    (Q.to_float ratio);
  let pass =
    Q.equal opt_ep (Q.of_ints 317 49)
    && Q.equal heur_ep (Q.of_ints 320 49)
    && Q.equal ratio (Q.of_ints 320 317)
  in
  record ~id:"e3" ~pass "exact rational match: 317/49, 320/49, 320/317"

(* ------------------------------------------------------------------ *)
(* E4: expected paging vs delay budget                                 *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header ~id:"e4" ~title:"delay/paging tradeoff"
    ~claim:
      "the whole point of d-round paging: EP decreases in d (remark after \
       Lemma 2.1), steeply at first (d = 1 is blanket paging)";
  let c = 64 in
  let rng = Prob.Rng.create ~seed:4242 in
  let ms = [ 1; 2; 4 ] in
  let bases =
    List.map (fun m -> m, Instance.random_zipf rng ~s:1.1 ~m ~c ~d:1) ms
  in
  let uniform_base = Instance.all_uniform ~m:1 ~c ~d:1 in
  Printf.printf "%4s" "d";
  List.iter (fun m -> Printf.printf "%12s" (Printf.sprintf "zipf m=%d" m)) ms;
  Printf.printf "%12s\n" "uniform m=1";
  let ds = [ 1; 2; 3; 4; 5; 6; 8; 10; 12 ] in
  let columns = Array.make (List.length ms + 1) [] in
  List.iter
    (fun d ->
      Printf.printf "%4d" d;
      List.iteri
        (fun i (_, base) ->
          let ep =
            (Greedy.solve (Instance.with_d base d)).Order_dp.expected_paging
          in
          columns.(i) <- ep :: columns.(i);
          Printf.printf "%12.2f" ep)
        bases;
      let ep =
        (Greedy.solve (Instance.with_d uniform_base d)).Order_dp.expected_paging
      in
      columns.(List.length ms) <- ep :: columns.(List.length ms);
      Printf.printf "%12.2f\n" ep)
    ds;
  let ok =
    Array.for_all
      (fun col ->
        Numeric.Convex.is_nonincreasing ~eps:1e-9
          (Array.of_list (List.rev col)))
      columns
  in
  record ~id:"e4" ~pass:ok "every curve is non-increasing in d"

(* ------------------------------------------------------------------ *)
(* E5: cost of conference size                                         *)
(* ------------------------------------------------------------------ *)

let e5 () =
  header ~id:"e5" ~title:"expected paging vs number of conferees"
    ~claim:
      "conference calls are intrinsically harder as m grows: the search \
       stops only when all m devices are inside the paged prefix, so EP \
       climbs toward blanket cost";
  let c = 64 and d = 3 in
  let rng = Prob.Rng.create ~seed:5252 in
  let all_rows =
    Array.init 10 (fun _ -> Prob.Dist.shuffled rng (Prob.Dist.zipf ~s:1.1 c))
  in
  Printf.printf "%4s %12s %12s %12s %13s\n" "m" "greedy" "lower-bound"
    "blanket" "% of blanket";
  let eps = ref [] in
  for m = 1 to 10 do
    let inst = Instance.create ~d (Array.sub all_rows 0 m) in
    let ep = (Greedy.solve inst).Order_dp.expected_paging in
    let lb = Bounds.lower_bound inst in
    eps := ep :: !eps;
    Printf.printf "%4d %12.2f %12.2f %12d %12.1f%%\n" m ep lb c
      (100.0 *. ep /. float_of_int c)
  done;
  let arr = Array.of_list (List.rev !eps) in
  let ok = ref true in
  Array.iteri
    (fun i ep -> if i > 0 && ep < arr.(i - 1) -. 1e-6 then ok := false)
    arr;
  record ~id:"e5" ~pass:!ok
    "EP non-decreasing in m on nested device sets, always below blanket"

(* ------------------------------------------------------------------ *)
(* E6: adaptive vs oblivious (Section 5)                               *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header ~id:"e6" ~title:"adaptive re-planning vs oblivious strategies"
    ~claim:
      "Section 5 proposes re-running the heuristic each round on \
       conditional probabilities; adaptive strategies may achieve lower \
       expected paging (the analysis is left open)";
  let rng = Prob.Rng.create ~seed:6262 in
  let trials = 25 in
  let m = 2 and c = 7 and d = 3 in
  let acc_obl = Prob.Stats.Acc.create () in
  let acc_ada = Prob.Stats.Acc.create () in
  let acc_opt = Prob.Stats.Acc.create () in
  let ok = ref true in
  let adaptive_beats_optimal = ref 0 in
  for _ = 1 to trials do
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let obl = (Greedy.solve inst).Order_dp.expected_paging in
    let ada = Adaptive.greedy_adaptive_ep inst in
    let opt = (Optimal.exhaustive inst).Optimal.expected_paging in
    if ada > obl +. 1e-9 then ok := false;
    if ada < opt -. 1e-9 then incr adaptive_beats_optimal;
    Prob.Stats.Acc.add acc_obl obl;
    Prob.Stats.Acc.add acc_ada ada;
    Prob.Stats.Acc.add acc_opt opt
  done;
  Printf.printf "random instances (m=%d, c=%d, d=%d, %d trials):\n" m c d
    trials;
  Printf.printf "%-28s %10.4f\n" "mean EP, greedy oblivious"
    (Prob.Stats.Acc.mean acc_obl);
  Printf.printf "%-28s %10.4f\n" "mean EP, greedy adaptive"
    (Prob.Stats.Acc.mean acc_ada);
  Printf.printf "%-28s %10.4f\n" "mean EP, optimal oblivious"
    (Prob.Stats.Acc.mean acc_opt);
  Printf.printf
    "adaptive beats the OPTIMAL oblivious strategy on %d/%d instances\n"
    !adaptive_beats_optimal trials;
  record ~id:"e6" ~pass:!ok
    "adaptive greedy never exceeds oblivious greedy (exact evaluation)"

(* ------------------------------------------------------------------ *)
(* E7: Yellow Pages (Section 5)                                        *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header ~id:"e7" ~title:"Yellow Pages: find any one device"
    ~claim:
      "the paper's heuristic is NOT constant-factor for find-any; a \
       best-single-device policy is the m-approximation candidate";
  let rng = Prob.Rng.create ~seed:7272 in
  let trials = 30 in
  let m = 3 and c = 8 and d = 2 in
  let acc_nat = Prob.Stats.Acc.create () in
  let acc_single = Prob.Stats.Acc.create () in
  for _ = 1 to trials do
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let opt = (Yellow_pages.exhaustive inst).Optimal.expected_paging in
    Prob.Stats.Acc.add acc_nat
      ((Yellow_pages.natural_heuristic inst).Order_dp.expected_paging /. opt);
    Prob.Stats.Acc.add acc_single
      ((Yellow_pages.best_single_device inst).Order_dp.expected_paging /. opt)
  done;
  Printf.printf
    "random instances (m=%d, c=%d, d=%d, %d trials), ratio to exact OPT:\n" m
    c d trials;
  Printf.printf "  natural (cell-weight) heuristic : mean %.4f\n"
    (Prob.Stats.Acc.mean acc_nat);
  Printf.printf "  best-single-device heuristic    : mean %.4f\n\n"
    (Prob.Stats.Acc.mean acc_single);
  Printf.printf "adversarial family (d = 2): natural/single ratio by size\n";
  Printf.printf "%8s %6s %10s %10s %8s\n" "blocks" "c" "natural" "single"
    "ratio";
  let ratios =
    List.map
      (fun blocks ->
        let adv = Yellow_pages.adversarial_instance ~blocks ~d:2 in
        let nat =
          (Yellow_pages.natural_heuristic adv).Order_dp.expected_paging
        in
        let single =
          (Yellow_pages.best_single_device adv).Order_dp.expected_paging
        in
        Printf.printf "%8d %6d %10.3f %10.3f %8.3f\n" blocks adv.Instance.c
          nat single (nat /. single);
        nat /. single)
      [ 2; 4; 8; 16; 32 ]
  in
  let increasing =
    let rec go = function
      | a :: (b :: _ as rest) -> a < b +. 1e-9 && go rest
      | _ -> true
    in
    go ratios
  in
  let last = List.nth ratios (List.length ratios - 1) in
  record ~id:"e7"
    ~pass:(increasing && last > 2.0)
    (Printf.sprintf
       "natural-heuristic ratio grows with instance size (up to %.2f)" last)

(* ------------------------------------------------------------------ *)
(* E8: bandwidth-limited paging (Section 5)                            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header ~id:"e8" ~title:"bandwidth-limited paging: at most b cells/round"
    ~claim:
      "Section 5: the machinery extends to a per-round cap b (feasible \
       iff c <= b*d); tighter caps cost more expected paging";
  let c = 60 and d = 10 and m = 2 in
  let rng = Prob.Rng.create ~seed:8282 in
  let inst = Instance.random_zipf rng ~s:1.1 ~m ~c ~d in
  let bs = [| 4; 6; 8; 10; 15; 20; 30; 60 |] in
  let eps = Bandwidth.sweep inst ~bs in
  Printf.printf "%6s %12s %10s\n" "b" "EP" "feasible";
  Array.iteri
    (fun i b ->
      if Float.is_nan eps.(i) then Printf.printf "%6d %12s %10s\n" b "-" "no"
      else Printf.printf "%6d %12.3f %10s\n" b eps.(i) "yes")
    bs;
  let feasible =
    Array.to_list eps |> List.filter (fun x -> not (Float.is_nan x))
  in
  let ok =
    Bandwidth.feasible ~c ~d ~b:6
    && (not (Bandwidth.feasible ~c ~d ~b:4))
    && Numeric.Convex.is_nonincreasing ~eps:1e-9 (Array.of_list feasible)
  in
  record ~id:"e8" ~pass:ok
    "b < c/d infeasible; EP non-increasing as the cap loosens"

(* ------------------------------------------------------------------ *)
(* E9: NP-hardness reduction (Section 3)                               *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header ~id:"e9" ~title:"the Lemma 3.2 reduction, executed"
    ~claim:
      "Quasipartition1 is positive iff the reduced Conference Call \
       instance (m = 2, d = 2) reaches expected paging exactly LB = c - \
       f(1/2, 2c/3)/((c-1/2)(c-1)) — verified in exact rationals";
  Printf.printf "LB targets: ";
  List.iter
    (fun c ->
      let lb = Hardness.qp1_lower_bound ~c in
      Printf.printf "c=%d: %s (%.4f)  " c (Q.to_string lb) (Q.to_float lb))
    [ 6; 9; 12 ];
  print_newline ();
  let rng = Prob.Rng.create ~seed:9292 in
  let trials = 40 in
  let agree = ref 0 and positive = ref 0 in
  for _ = 1 to trials do
    let sizes = Array.init 6 (fun _ -> Q.of_int (Prob.Rng.int rng 7)) in
    let total = Q.sum (Array.to_list sizes) in
    let sizes =
      if
        Q.sign total <= 0
        || Array.exists (fun s -> Q.compare s total >= 0) sizes
      then Array.map Q.of_int [| 1; 1; 1; 1; 1; 1 |]
      else sizes
    in
    let brute = Hardness.quasipartition1_brute sizes <> None in
    let via = Hardness.qp1_answer_via_conference sizes in
    if brute then incr positive;
    if brute = via then incr agree
  done;
  Printf.printf
    "random Quasipartition1 instances (c = 6): %d/%d positive, oracle \
     agreement %d/%d\n"
    !positive trials !agree trials;
  let chain_pos = Hardness.partition_answer_via_chain [| 1; 2; 3; 4 |] in
  let chain_neg = Hardness.partition_answer_via_chain [| 1; 1; 1; 100 |] in
  Printf.printf
    "full chain Partition -> QP1 -> CC oracle: {1,2,3,4} -> %b, \
     {1,1,1,100} -> %b\n"
    chain_pos chain_neg;
  record ~id:"e9"
    ~pass:(!agree = trials && chain_pos && not chain_neg)
    "reduction decisions agree with brute force on every instance"

(* ------------------------------------------------------------------ *)
(* E10: end-to-end system simulation                                   *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header ~id:"e10" ~title:"end-to-end cellular simulation"
    ~claim:
      "selective multi-round paging driven by estimated location profiles \
       pages fewer cells than the deployed blanket scheme, trading delay \
       for wireless-link usage (the Section 1 motivation)";
  let hex = Cellsim.Hex.create ~rows:8 ~cols:8 in
  let users = 80 in
  let config =
    {
      Cellsim.Sim.hex;
      mobility = Cellsim.Mobility.random_walk hex ~stay:0.4;
      areas = Cellsim.Location_area.grid hex ~block_rows:4 ~block_cols:4;
      users;
      traffic =
        Cellsim.Traffic.create ~rate:0.6
          ~group_size:(Cellsim.Traffic.Uniform_range (2, 4))
          ~users;
      schemes =
        [
          Cellsim.Sim.Blanket;
          Cellsim.Sim.Selective 2;
          Cellsim.Sim.Selective 3;
          Cellsim.Sim.Selective 5;
        ];
      reporting = Cellsim.Reporting.Area;
      mobility_schedule = [];
      call_duration = 0.0;
      track_ongoing = true;
      faults = None;
      estimator = Cellsim.Sim.Live;
      aging = None;
      profile_decay = 0.9;
      profile_smoothing = 0.05;
      duration = 300.0;
      seed = 10102;
    }
  in
  let r = Cellsim.Sim.run config in
  Printf.printf "%d users, %d calls, %d boundary reports\n\n"
    config.Cellsim.Sim.users r.Cellsim.Sim.total_calls r.Cellsim.Sim.updates;
  Printf.printf "%-14s %12s %14s %12s\n" "scheme" "cells/call" "expected/call"
    "rounds/call";
  List.iter
    (fun s ->
      let calls = float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls) in
      Printf.printf "%-14s %12.2f %14.2f %12.2f\n"
        (Cellsim.Sim.scheme_to_string s.Cellsim.Sim.scheme)
        (float_of_int s.Cellsim.Sim.cells_paged /. calls)
        (s.Cellsim.Sim.expected_paging /. calls)
        (float_of_int s.Cellsim.Sim.rounds_used /. calls))
    r.Cellsim.Sim.per_scheme;
  let cells scheme =
    (List.find
       (fun s -> s.Cellsim.Sim.scheme = scheme)
       r.Cellsim.Sim.per_scheme)
      .Cellsim.Sim.cells_paged
  in
  let ok =
    cells (Cellsim.Sim.Selective 2) < cells Cellsim.Sim.Blanket
    && cells (Cellsim.Sim.Selective 3) < cells (Cellsim.Sim.Selective 2)
  in
  record ~id:"e10" ~pass:ok
    "selective < blanket in ground-truth cells paged; deeper d pages less"

(* ------------------------------------------------------------------ *)
(* E12: optimal group sizes on flat instances (Lemma 3.4)              *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header ~id:"e12" ~title:"group sizes on uniform instances vs Lemma 3.4"
    ~claim:
      "for flat (uniform) instances the optimal prefix sizes follow the \
       alpha/b recurrence: b_{k-1} = alpha_{k-1} b_k with alpha_1 = \
       m/(m+1), alpha_k = m/(m+1-alpha_{k-1}^m)";
  let c = 120 in
  Printf.printf "%4s %4s %-24s %-24s\n" "m" "d" "DP sizes" "Lemma 3.4 sizes";
  let ok = ref true in
  List.iter
    (fun (m, d) ->
      let inst = Instance.all_uniform ~m ~c ~d in
      let dp_sizes = (Greedy.solve inst).Order_dp.sizes in
      let fractions = Numeric.Lemma_bounds.optimal_group_fractions ~m ~d in
      let predicted = Array.map (fun f -> f *. float_of_int c) fractions in
      let show_i a =
        String.concat " " (Array.to_list (Array.map string_of_int a))
      in
      let show_f a =
        String.concat " "
          (Array.to_list (Array.map (fun x -> Printf.sprintf "%.1f" x) a))
      in
      Printf.printf "%4d %4d %-24s %-24s\n" m d (show_i dp_sizes)
        (show_f predicted);
      Array.iteri
        (fun j s ->
          if abs_float (float_of_int s -. predicted.(j)) > 2.0 then ok := false)
        dp_sizes)
    [ 2, 2; 2, 3; 2, 4; 3, 2; 3, 3; 4, 3 ];
  record ~id:"e12" ~pass:!ok
    "DP group sizes match the alpha/b recurrence within +/- 2 cells"

(* ------------------------------------------------------------------ *)
(* E13: Signature problem sweep (Section 5)                            *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header ~id:"e13" ~title:"Signature problem: find k of m"
    ~claim:
      "the Signature problem interpolates Yellow Pages (k = 1) and the \
       Conference Call (k = m); cost grows with k";
  let m = 6 and c = 48 and d = 4 in
  let rng = Prob.Rng.create ~seed:13131 in
  let inst = Instance.random_zipf rng ~s:1.0 ~m ~c ~d in
  let sweep = Signature.sweep inst in
  Printf.printf "%4s %12s\n" "k" "EP";
  Array.iteri (fun i ep -> Printf.printf "%4d %12.3f\n" (i + 1) ep) sweep;
  let yp =
    (Greedy.solve ~objective:Objective.Find_any inst).Order_dp.expected_paging
  in
  let cc = (Greedy.solve inst).Order_dp.expected_paging in
  let monotone = ref true in
  for i = 0 to m - 2 do
    if sweep.(i) > sweep.(i + 1) +. 1e-9 then monotone := false
  done;
  let ok =
    !monotone
    && abs_float (sweep.(0) -. yp) < 1e-9
    && abs_float (sweep.(m - 1) -. cc) < 1e-9
  in
  record ~id:"e13" ~pass:ok
    "monotone in k; endpoints equal Yellow Pages and Conference Call"

(* ------------------------------------------------------------------ *)
(* E14: imperfect detection (Section 5)                                *)
(* ------------------------------------------------------------------ *)

let e14 () =
  header ~id:"e14" ~title:"imperfect detection and re-paging"
    ~claim:
      "Section 5: when a page misses a present device (response \
       collisions), expected cost rises and cells must be re-paged; the \
       classical greedy index rule handles m = 1";
  let c = 16 and d = 4 in
  let rng = Prob.Rng.create ~seed:14141 in
  let inst = Instance.random_zipf rng ~s:1.2 ~m:1 ~c ~d in
  let strategy = (Greedy.solve inst).Order_dp.strategy in
  let schedule = Miss.repeat_strategy strategy ~cycles:6 in
  Printf.printf "single device, greedy schedule repeated 6x:\n";
  Printf.printf "%6s %14s %12s\n" "q" "E[cells paged]" "P[found]";
  let costs = ref [] in
  List.iter
    (fun q ->
      let ep, success = Miss.single_device_exact inst ~q ~schedule in
      costs := ep :: !costs;
      Printf.printf "%6.2f %14.3f %12.6f\n" q ep success)
    [ 1.0; 0.9; 0.7; 0.5; 0.3 ];
  let increasing =
    let rec go = function
      | a :: (b :: _ as rest) -> a <= b +. 1e-9 && go rest
      | _ -> true
    in
    go (List.rev !costs)
  in
  let inst2 = Instance.random_zipf rng ~s:1.0 ~m:2 ~c:12 ~d:3 in
  let s2 = (Greedy.solve inst2).Order_dp.strategy in
  let sched2 = Miss.repeat_strategy s2 ~cycles:5 in
  let summary, success =
    Miss.simulate inst2 ~q:0.8 ~schedule:sched2 rng ~trials:20_000
  in
  Printf.printf
    "\nconference m=2, q=0.8, 5 cycles: E[cells] = %.2f (perfect-detection \
     EP %.2f), P[all found] = %.4f\n"
    summary.Prob.Stats.mean
    (Greedy.solve inst2).Order_dp.expected_paging
    success;
  record ~id:"e14"
    ~pass:(increasing && success > 0.95)
    "cost increases as detection degrades; re-paging recovers success"

(* ------------------------------------------------------------------ *)
(* E11: solver runtime (Theorem 4.8: O(c(m + dc)))                     *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let greedy_test ~m ~c ~d =
    let rng = Prob.Rng.create ~seed:(m + c + d) in
    let inst = Instance.random_zipf rng ~s:1.0 ~m ~c ~d in
    Test.make
      ~name:(Printf.sprintf "greedy m=%d c=%d d=%d" m c d)
      (Staged.stage (fun () -> ignore (Greedy.solve inst)))
  in
  let single_test ~c =
    let rng = Prob.Rng.create ~seed:c in
    let inst = Instance.random_zipf rng ~s:1.0 ~m:1 ~c ~d:5 in
    Test.make
      ~name:(Printf.sprintf "single-device c=%d" c)
      (Staged.stage (fun () -> ignore (Single.solve inst)))
  in
  let lb_test ~c =
    let rng = Prob.Rng.create ~seed:(2 * c) in
    let inst = Instance.random_zipf rng ~s:1.0 ~m:3 ~c ~d:4 in
    Test.make
      ~name:(Printf.sprintf "lower-bound c=%d" c)
      (Staged.stage (fun () -> ignore (Bounds.lower_bound inst)))
  in
  let exhaustive_test () =
    let rng = Prob.Rng.create ~seed:99 in
    let inst = Instance.random_uniform_simplex rng ~m:2 ~c:8 ~d:2 in
    Test.make ~name:"exhaustive m=2 c=8 d=2"
      (Staged.stage (fun () -> ignore (Optimal.exhaustive inst)))
  in
  Test.make_grouped ~name:"solvers"
    [
      greedy_test ~m:2 ~c:64 ~d:3;
      greedy_test ~m:2 ~c:256 ~d:3;
      greedy_test ~m:2 ~c:1024 ~d:3;
      greedy_test ~m:8 ~c:256 ~d:3;
      greedy_test ~m:2 ~c:256 ~d:8;
      single_test ~c:256;
      lb_test ~c:256;
      exhaustive_test ();
    ]

let e11 () =
  header ~id:"e11" ~title:"solver runtime micro-benchmarks (Bechamel)"
    ~claim:
      "Theorem 4.8: the heuristic runs in O(c(m + dc)) time — quadratic \
       in c for fixed d, linear in m and d";
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.4) ~kde:None () in
  let raw =
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (bechamel_tests ())
  in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) res [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Printf.printf "%-34s %16s\n" "benchmark" "time/run";
  let times = Hashtbl.create 8 in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] ->
        Hashtbl.replace times name ns;
        let pretty =
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        Printf.printf "%-34s %16s\n" name pretty
      | _ -> Printf.printf "%-34s %16s\n" name "(no estimate)")
    entries;
  let t c =
    Hashtbl.find_opt times (Printf.sprintf "solvers/greedy m=2 c=%d d=3" c)
  in
  let pass, detail =
    match t 64, t 256, t 1024 with
    | Some t64, Some t256, Some t1024 ->
      let g1 = t256 /. t64 and g2 = t1024 /. t256 in
      (* 4x the cells should cost ~16x for the quadratic DP; accept a
         broad band to stay robust on loaded machines. *)
      ( g1 > 4.0 && g2 > 4.0 && t1024 < 1e9,
        Printf.sprintf
          "c-scaling factors: 64->256: %.1fx, 256->1024: %.1fx (quadratic \
           DP predicts ~16x)"
          g1 g2 )
    | _ -> false, "missing estimates"
  in
  record ~id:"e11" ~pass detail

(* ------------------------------------------------------------------ *)
(* E15: the reporting/paging tradeoff (Section 1.1 background)         *)
(* ------------------------------------------------------------------ *)

let sim_config ?(users = 64) ?(rate = 0.5) ?(track_ongoing = true) ~schemes
    ~reporting ~call_duration ~seed () =
  let hex = Cellsim.Hex.create ~rows:8 ~cols:8 in
  {
    Cellsim.Sim.hex;
    mobility = Cellsim.Mobility.random_walk hex ~stay:0.4;
    areas = Cellsim.Location_area.grid hex ~block_rows:4 ~block_cols:4;
    users;
    traffic =
      Cellsim.Traffic.create ~rate ~group_size:(Cellsim.Traffic.Fixed 3) ~users;
    schemes;
    reporting;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration;
    track_ongoing;
    faults = None;
    estimator = Cellsim.Sim.Live;
    aging = None;
    duration = 300.0;
    seed;
  }

let e15 () =
  header ~id:"e15"
    ~title:"reporting vs paging: the location-management tradeoff"
    ~claim:
      "Section 1.1: terminals that report more often are cheaper to page \
       and vice versa; location-area, movement-, distance- and time-based \
       policies trace out the tradeoff frontier";
  Printf.printf "%-14s %10s %14s %14s\n" "policy" "reports" "blanket/call"
    "selective/call";
  List.iter
    (fun reporting ->
      let r =
        Cellsim.Sim.run
          (sim_config
             ~schemes:[ Cellsim.Sim.Blanket; Cellsim.Sim.Selective 3 ]
             ~reporting ~call_duration:0.0 ~seed:15151 ())
      in
      let per_call s =
        float_of_int s.Cellsim.Sim.cells_paged
        /. float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls)
      in
      match r.Cellsim.Sim.per_scheme with
      | [ blanket; selective ] ->
        Printf.printf "%-14s %10d %14.2f %14.2f\n"
          (Cellsim.Reporting.to_string reporting)
          r.Cellsim.Sim.updates (per_call blanket) (per_call selective)
      | _ -> ())
    [
      Cellsim.Reporting.Area;
      Cellsim.Reporting.Movement 1;
      Cellsim.Reporting.Movement 3;
      Cellsim.Reporting.Movement 6;
      Cellsim.Reporting.Distance 2;
      Cellsim.Reporting.Distance 4;
      Cellsim.Reporting.Time 2;
      Cellsim.Reporting.Time 6;
    ];
  (* Shape: among movement policies, more reports <=> fewer cells paged. *)
  let find k =
    let r =
      Cellsim.Sim.run
        (sim_config
           ~schemes:[ Cellsim.Sim.Blanket ]
           ~reporting:(Cellsim.Reporting.Movement k) ~call_duration:0.0
           ~seed:15151 ())
    in
    let b = List.hd r.Cellsim.Sim.per_scheme in
    ( r.Cellsim.Sim.updates,
      float_of_int b.Cellsim.Sim.cells_paged
      /. float_of_int (Stdlib.max 1 b.Cellsim.Sim.calls) )
  in
  let u1, p1 = find 1 and u6, p6 = find 6 in
  record ~id:"e15"
    ~pass:(u1 > u6 && p1 < p6)
    (Printf.sprintf
       "movement-1: %d reports / %.1f cells-per-call vs movement-6: %d / %.1f"
       u1 p1 u6 p6)

(* ------------------------------------------------------------------ *)
(* E16: location-estimator ablation (counts vs mobility diffusion)     *)
(* ------------------------------------------------------------------ *)

let e16 () =
  header ~id:"e16" ~title:"location-estimator ablation"
    ~claim:
      "the paging algorithms consume a probability vector whose quality \
       the paper abstracts away ([15,16]); diffusing the last known cell \
       through the known mobility model beats decayed visit counts when \
       reports are sparse";
  Printf.printf "%-14s %16s %16s %16s\n" "policy" "counts (true)"
    "diffuse (true)" "diffuse gain";
  let ok = ref true in
  List.iter
    (fun reporting ->
      let r =
        Cellsim.Sim.run
          (sim_config
             ~schemes:
               [ Cellsim.Sim.Selective 3; Cellsim.Sim.Selective_diffuse 3 ]
             ~reporting ~call_duration:0.0 ~seed:16161 ())
      in
      match r.Cellsim.Sim.per_scheme with
      | [ counts; diffuse ] ->
        let per_call s =
          float_of_int s.Cellsim.Sim.cells_paged
          /. float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls)
        in
        let pc = per_call counts and pd = per_call diffuse in
        Printf.printf "%-14s %16.2f %16.2f %15.1f%%\n"
          (Cellsim.Reporting.to_string reporting)
          pc pd
          (100.0 *. (pc -. pd) /. pc);
        (* Under the sparsest policy, diffusion must win clearly. *)
        if reporting = Cellsim.Reporting.Time 6 && pd >= pc then ok := false
      | _ -> ok := false)
    [
      Cellsim.Reporting.Area;
      Cellsim.Reporting.Distance 3;
      Cellsim.Reporting.Time 6;
    ];
  record ~id:"e16" ~pass:!ok
    "mobility-model diffusion pages fewer ground-truth cells when reports \
     are sparse"

(* ------------------------------------------------------------------ *)
(* E17: ongoing calls as a location source (Section 1.1)               *)
(* ------------------------------------------------------------------ *)

let e17 () =
  header ~id:"e17" ~title:"ongoing calls as a free location source"
    ~claim:
      "Section 1.1: a device on an ongoing call communicates with base \
       stations continuously, so the system knows its cell and needs no \
       search; ablation: the same busy-line workload with and without \
       that continuous tracking";
  Printf.printf "%10s %10s %10s %10s %14s %16s\n" "mean len" "tracking"
    "calls" "skipped" "EP/call" "cells/call";
  let measure ~call_duration ~track_ongoing =
    let r =
      Cellsim.Sim.run
        (sim_config ~users:16 ~rate:1.2 ~track_ongoing
           ~schemes:[ Cellsim.Sim.Selective 3 ]
           ~reporting:Cellsim.Reporting.Area ~call_duration ~seed:17171 ())
    in
    let s = List.hd r.Cellsim.Sim.per_scheme in
    let calls = Stdlib.max 1 s.Cellsim.Sim.calls in
    let ep = s.Cellsim.Sim.expected_paging /. float_of_int calls in
    Printf.printf "%10.1f %10s %10d %10d %14.2f %16.2f\n" call_duration
      (if track_ongoing then "on" else "off")
      s.Cellsim.Sim.calls r.Cellsim.Sim.skipped_calls ep
      (float_of_int s.Cellsim.Sim.cells_paged /. float_of_int calls);
    ep, r.Cellsim.Sim.skipped_calls
  in
  let _ = measure ~call_duration:0.0 ~track_ongoing:true in
  let on4, skipped4 = measure ~call_duration:4.0 ~track_ongoing:true in
  let off4, _ = measure ~call_duration:4.0 ~track_ongoing:false in
  let on10, _ = measure ~call_duration:10.0 ~track_ongoing:true in
  let off10, _ = measure ~call_duration:10.0 ~track_ongoing:false in
  record ~id:"e17"
    ~pass:(skipped4 > 0 && on4 < off4 && on10 < off10)
    (Printf.sprintf
       "tracking ongoing calls lowers EP/call (%.2f -> %.2f at length 4, \
        %.2f -> %.2f at length 10)"
       off4 on4 off10 on10)

(* ------------------------------------------------------------------ *)
(* E18: solver shootout (design-choice ablation)                       *)
(* ------------------------------------------------------------------ *)

module Local_search = Confcall.Local_search
module Adaptive_dp = Confcall.Adaptive_dp
module Class_solver = Confcall.Class_solver
module Qap = Confcall.Qap

let e18 () =
  header ~id:"e18" ~title:"solver shootout: every algorithm on one batch"
    ~claim:
      "ablation of the repository's solver design choices: the greedy \
       order restriction (vs local search and the Section 5.1 QAP route), \
       obliviousness (vs the exact adaptive-within-order DP), and the \
       certified lower bound's tightness";
  let rng = Prob.Rng.create ~seed:18181 in
  let trials = 20 in
  let m = 2 and c = 8 and d = 3 in
  let sums = Hashtbl.create 8 in
  let add name v =
    Hashtbl.replace sums name
      (v +. try Hashtbl.find sums name with Not_found -> 0.0)
  in
  let wins = Hashtbl.create 8 in
  let win name =
    Hashtbl.replace wins name
      (1 + try Hashtbl.find wins name with Not_found -> 0)
  in
  for _ = 1 to trials do
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let opt = (Optimal.exhaustive inst).Optimal.expected_paging in
    let entries =
      [
        "greedy", (Greedy.solve inst).Order_dp.expected_paging;
        "local-search",
        (Local_search.hill_climb inst).Local_search.expected_paging;
        "qap (Sec 5.1)", snd (Qap.solve_conference_m2 ~rng inst);
        "adaptive-dp (within order)", Adaptive_dp.value inst;
        "adaptive OPT (unrestricted)", Adaptive_dp.unrestricted inst;
        "lower-bound", Bounds.lower_bound inst;
        "page-all", float_of_int c;
      ]
    in
    add "optimal (exhaustive)" opt;
    win "optimal (exhaustive)";
    List.iter
      (fun (name, v) ->
        add name v;
        if abs_float (v -. opt) < 1e-9 then win name)
      entries
  done;
  Printf.printf "mean EP over %d random instances (m=%d, c=%d, d=%d):\n"
    trials m c d;
  let rows =
    Hashtbl.fold (fun k v acc -> (v /. float_of_int trials, k) :: acc) sums []
  in
  List.iter
    (fun (mean, name) ->
      let w = try Hashtbl.find wins name with Not_found -> 0 in
      Printf.printf "  %-22s %8.4f   (= OPT on %d/%d)\n" name mean w trials)
    (List.sort compare rows);
  let mean name = Hashtbl.find sums name /. float_of_int trials in
  let pass =
    mean "lower-bound" <= mean "optimal (exhaustive)" +. 1e-9
    && mean "adaptive OPT (unrestricted)"
       <= mean "adaptive-dp (within order)" +. 1e-9
    && mean "adaptive-dp (within order)" <= mean "optimal (exhaustive)" +. 1e-9
    && mean "local-search" <= mean "greedy" +. 1e-9
    && mean "greedy" <= mean "page-all"
  in
  record ~id:"e18" ~pass
    "LB <= adaptive-DP <= OPT <= local-search <= greedy <= page-all (means)"

(* ------------------------------------------------------------------ *)
(* E19: coarse DP scaling (huge location areas)                        *)
(* ------------------------------------------------------------------ *)

let e19 () =
  header ~id:"e19" ~title:"coarse-cut DP at metropolitan scale"
    ~claim:
      "the O(d c^2) DP is quadratic in c (Theorem 4.8); restricting cut \
       points to block boundaries makes 100k-cell areas tractable with a \
       tiny quality loss (cuts only matter to the resolution of the \
       probability profile)";
  let rng = Prob.Rng.create ~seed:19191 in
  let m = 2 and d = 4 in
  Printf.printf "%8s %8s %12s %12s %10s %12s\n" "c" "block" "EP(coarse)"
    "EP(full)" "loss" "time(s)";
  let ok = ref true in
  List.iter
    (fun (c, blocks) ->
      let inst = Instance.random_zipf rng ~s:1.05 ~m ~c ~d in
      let order = Confcall.Instance.weight_order inst in
      let full =
        if c <= 4096 then
          Some (Order_dp.solve inst ~order).Order_dp.expected_paging
        else None
      in
      List.iter
        (fun block ->
          let t0 = Sys.time () in
          let coarse = Order_dp.solve_coarse ~block inst ~order in
          let elapsed = Sys.time () -. t0 in
          let loss =
            match full with
            | Some f ->
              if coarse.Order_dp.expected_paging < f -. 1e-9 then ok := false;
              Printf.sprintf "%.3f%%"
                (100.0 *. (coarse.Order_dp.expected_paging -. f) /. f)
            | None -> "-"
          in
          Printf.printf "%8d %8d %12.1f %12s %10s %12.3f\n" c block
            coarse.Order_dp.expected_paging
            (match full with Some f -> Printf.sprintf "%.1f" f | None -> "-")
            loss elapsed;
          if elapsed > 10.0 then ok := false)
        blocks)
    [ 1024, [ 8; 32 ]; 4096, [ 32 ]; 32768, [ 128 ]; 131072, [ 512 ] ];
  record ~id:"e19" ~pass:!ok
    "coarse DP never beats the full DP, runs in seconds at 131k cells"

(* ------------------------------------------------------------------ *)
(* E20: beyond the expectation — cost distributions and the frontier   *)
(* ------------------------------------------------------------------ *)

module Analysis = Confcall.Analysis

let e20 () =
  header ~id:"e20" ~title:"cost distributions and the delay/paging frontier"
    ~claim:
      "the paper optimizes the expectation of cells paged; the full \
       distribution is closed-form (stop after round r w.p. F_r - \
       F_{r-1}), exposing tails and the (E[rounds], EP) frontier a \
       designer actually navigates";
  let rng = Prob.Rng.create ~seed:20202 in
  let inst = Instance.random_zipf rng ~s:1.1 ~m:2 ~c:32 ~d:4 in
  let strategy = (Greedy.solve inst).Order_dp.strategy in
  let dist = Analysis.cost_distribution inst strategy in
  Printf.printf "greedy strategy on zipf m=2 c=32 d=4:\n";
  Printf.printf "  mean %.2f, sd %.2f, p50 %.0f, p90 %.0f, p99 %.0f\n"
    dist.Analysis.mean dist.Analysis.stddev
    (Analysis.quantile dist 0.5)
    (Analysis.quantile dist 0.9)
    (Analysis.quantile dist 0.99);
  Array.iteri
    (fun r p ->
      Printf.printf "  round %d: paged %3.0f cells with prob %.4f\n" (r + 1)
        dist.Analysis.support.(r) p)
    dist.Analysis.probabilities;
  print_newline ();
  Printf.printf "delay/paging frontier (greedy, d = 1..8):\n";
  Printf.printf "%6s %12s %12s\n" "d" "E[rounds]" "EP";
  let frontier = Analysis.delay_paging_frontier inst ~max_d:8 in
  Array.iteri
    (fun i (rounds, ep) -> Printf.printf "%6d %12.3f %12.2f\n" (i + 1) rounds ep)
    frontier;
  let mean_matches =
    abs_float (dist.Analysis.mean -. Strategy.expected_paging inst strategy)
    < 1e-9
  in
  let ep_monotone =
    let ok = ref true in
    for i = 0 to Array.length frontier - 2 do
      if snd frontier.(i + 1) > snd frontier.(i) +. 1e-9 then ok := false
    done;
    !ok
  in
  let rounds_monotone =
    let ok = ref true in
    for i = 0 to Array.length frontier - 2 do
      if fst frontier.(i + 1) < fst frontier.(i) -. 1e-9 then ok := false
    done;
    !ok
  in
  record ~id:"e20"
    ~pass:(mean_matches && ep_monotone && rounds_monotone)
    "distribution mean = Lemma 2.1 EP; frontier monotone both ways"

(* ------------------------------------------------------------------ *)
(* E21: canned scenarios, incl. a commuter day with regime changes     *)
(* ------------------------------------------------------------------ *)

let e21 () =
  header ~id:"e21" ~title:"scenario sweep: suburb, commuter day, busy campus"
    ~claim:
      "the selective schemes keep their advantage across qualitatively \
       different regimes: a calm suburb, a commuter day whose mobility \
       diverges from the system's calibrated model (morning/evening \
       drift), and a busy campus where ongoing calls supply tracking";
  let ok = ref true in
  List.iter
    (fun (name, build) ->
      let r = Cellsim.Sim.run (build ?seed:(Some 21212) ()) in
      Printf.printf "%s: %d calls, %d reports, %d skipped\n" name
        r.Cellsim.Sim.total_calls r.Cellsim.Sim.updates
        r.Cellsim.Sim.skipped_calls;
      let per_call s =
        float_of_int s.Cellsim.Sim.cells_paged
        /. float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls)
      in
      List.iter
        (fun s ->
          Printf.printf "  %-14s %8.2f cells/call\n"
            (Cellsim.Sim.scheme_to_string s.Cellsim.Sim.scheme)
            (per_call s))
        r.Cellsim.Sim.per_scheme;
      (* The clean-infrastructure claim: only check scenarios without a
         fault model (degraded-downtown's blanket escalation deliberately
         erases the gap — that regime is e22's subject). *)
      (if (build ?seed:(Some 21212) ()).Cellsim.Sim.faults = None then
         match r.Cellsim.Sim.per_scheme with
         | blanket :: selective :: _ ->
           if per_call selective >= per_call blanket then ok := false
         | _ -> ok := false);
      print_newline ())
    Cellsim.Scenario.all;
  record ~id:"e21" ~pass:!ok
    "selective paging beats blanket in every fault-free scenario, including \
     under model-mismatched commuter mobility"

(* ------------------------------------------------------------------ *)
(* E22: graceful degradation under imperfect detection (Section 5)     *)
(* ------------------------------------------------------------------ *)

let e22 () =
  header ~id:"e22" ~title:"degradation curve: response probability q falls"
    ~claim:
      "Section 5 drops the perfect-detection assumption: a paged device \
       answers only with probability q. Re-paging with escalation to \
       blanket keeps calls completing, at a paging cost that grows as q \
       falls; at q = 1 the fault layer is inert and reproduces the clean \
       simulator exactly";
  let faults_for q =
    Some
      {
        Cellsim.Faults.none with
        Cellsim.Faults.detect_q = q;
        retry = Cellsim.Faults.Escalate { after = 1; to_blanket = true };
      }
  in
  let run faults =
    Cellsim.Sim.run
      {
        (sim_config
           ~schemes:
             [ Cellsim.Sim.Blanket; Cellsim.Sim.Selective 3;
               Cellsim.Sim.Selective_diffuse 3 ]
           ~reporting:Cellsim.Reporting.Area ~call_duration:0.0 ~seed:22222 ())
        with
        Cellsim.Sim.faults;
      }
  in
  let per_call s =
    float_of_int s.Cellsim.Sim.cells_paged
    /. float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls)
  in
  let clean = run None in
  let qs = [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5 ] in
  Printf.printf "%6s  %-14s %12s %8s %8s %10s\n" "q" "scheme" "cells/call"
    "retries" "escal." "residual";
  let results_by_q =
    List.map
      (fun q ->
        let r = run (faults_for q) in
        List.iter
          (fun s ->
            let f = s.Cellsim.Sim.robustness in
            Printf.printf "%6.2f  %-14s %12.2f %8d %8d %10d\n" q
              (Cellsim.Sim.scheme_to_string s.Cellsim.Sim.scheme)
              (per_call s) f.Cellsim.Sim.retries f.Cellsim.Sim.escalations
              f.Cellsim.Sim.residual_misses)
          r.Cellsim.Sim.per_scheme;
        print_newline ();
        q, r)
      qs
  in
  let at q = List.assoc q results_by_q in
  (* q = 1 with a retry policy wired in must equal the clean run. *)
  let inert = at 1.0 = clean in
  (* Determinism of the faulty path, including all robustness counters. *)
  let repeatable = at 0.8 = run (faults_for 0.8) in
  (* Monotone cost: q = 0.5 pages strictly more than q = 1 per call, and
     retries actually fire once q < 1. *)
  let costlier =
    List.for_all2
      (fun s1 s05 -> per_call s05 > per_call s1)
      (at 1.0).Cellsim.Sim.per_scheme (at 0.5).Cellsim.Sim.per_scheme
  in
  let retried =
    List.for_all
      (fun s -> s.Cellsim.Sim.robustness.Cellsim.Sim.retries > 0)
      (at 0.9).Cellsim.Sim.per_scheme
  in
  record ~id:"e22" ~pass:(inert && repeatable && costlier && retried)
    (Printf.sprintf
       "q=1 inert: %b; q=0.8 repeatable: %b; q=0.5 costlier than q=1: %b; \
        retries fire for q<1: %b"
       inert repeatable costlier retried)

(* ------------------------------------------------------------------ *)
(* E23: deadline-budgeted runner and the resumable sweep journal        *)
(* ------------------------------------------------------------------ *)

let e23 () =
  header ~id:"e23" ~title:"deadline runner: fallback chain and resumable journal"
    ~claim:
      "exact solving is exponential (Theorem 3.8), so a budgeted runtime \
       must fall back to the e/(e-1) heuristic of Theorem 4.8 within its \
       deadline; a checkpointed sweep resumes without recomputing";
  let module Runner = Confcall.Runner in
  let module Journal = Confcall.Journal in
  let module Cancel = Confcall.Cancel in
  let module Solver = Confcall.Solver in
  (* Part 1: c = 60 is far beyond any exact method. Under a 50 ms budget
     the exact stage must time out and a heuristic must win in time. *)
  let rng = Prob.Rng.create ~seed:23 in
  let inst = Instance.random_uniform_simplex rng ~m:3 ~c:60 ~d:4 in
  let t0 = Cancel.now () in
  let report = Runner.run ~budget_ms:50.0 inst in
  let wall_ms = (Cancel.now () -. t0) *. 1000.0 in
  List.iter
    (fun (s : Runner.stage_report) ->
      Printf.printf "  %-14s %8.2f ms  %s\n"
        (Solver.spec_to_string s.Runner.spec)
        s.Runner.elapsed_ms
        (Runner.stage_status_to_string s.Runner.status))
    report.Runner.stages;
  let exact_timed_out =
    List.exists
      (fun (s : Runner.stage_report) ->
        s.Runner.spec = Solver.Best_exact
        && s.Runner.status = Runner.Failed Runner.Timeout)
      report.Runner.stages
  in
  let within_grace = wall_ms <= 50.0 +. 150.0 in
  let heuristic_won =
    match report.Runner.winner with
    | Some ((Solver.Greedy | Solver.Local_search), _) -> true
    | _ -> false
  in
  Printf.printf "wall: %.2f ms (budget 50 + grace)\n" wall_ms;
  (* Part 2: the same six-item sweep run three times over one journal:
     fresh (all ran), resumed (all skipped), and fresh-file control — the
     resumed journal must be byte-identical to the control. *)
  let sweep path seeds =
    let journal = Journal.load_or_create path in
    let ran = ref 0 and skipped = ref 0 in
    List.iter
      (fun seed ->
        let id = Printf.sprintf "e23/c16/seed%d" seed in
        let status, _ =
          Journal.run journal ~id (fun () ->
              let rng = Prob.Rng.create ~seed in
              let inst = Instance.random_uniform_simplex rng ~m:2 ~c:16 ~d:3 in
              let r = Runner.run inst in
              match r.Runner.winner with
              | Some (spec, o) ->
                Printf.sprintf "%s %.9f" (Solver.spec_to_string spec)
                  o.Solver.expected_paging
              | None -> "failed")
        in
        match status with `Ran -> incr ran | `Replayed -> incr skipped)
      seeds;
    Journal.close journal;
    (!ran, !skipped)
  in
  let read_file path = In_channel.with_open_bin path In_channel.input_all in
  let path = Filename.temp_file "confcall_e23" ".journal" in
  let control = Filename.temp_file "confcall_e23_control" ".journal" in
  (* interrupted run: only the first three items complete *)
  let r1 = sweep path [ 1; 2; 3 ] in
  (* resumed run over all six: three skips, three fresh *)
  let r2 = sweep path [ 1; 2; 3; 4; 5; 6 ] in
  (* third run: everything already journalled *)
  let r3 = sweep path [ 1; 2; 3; 4; 5; 6 ] in
  let rc = sweep control [ 1; 2; 3; 4; 5; 6 ] in
  let identical = read_file path = read_file control in
  Sys.remove path;
  Sys.remove control;
  Printf.printf
    "sweep: interrupted %d/%d, resumed %d/%d, replay %d/%d, control %d/%d, \
     byte-identical: %b\n"
    (fst r1) (snd r1) (fst r2) (snd r2) (fst r3) (snd r3) (fst rc) (snd rc)
    identical;
  record ~id:"e23"
    ~pass:
      (exact_timed_out && within_grace && heuristic_won
      && r1 = (3, 0)
      && r2 = (3, 3)
      && r3 = (0, 6)
      && rc = (6, 0)
      && identical)
    (Printf.sprintf
       "exact timed out: %b; finished in budget+grace: %b; heuristic won: \
        %b; resume skipped completed work and journal is byte-identical: %b"
       exact_timed_out within_grace heuristic_won identical)

(* ------------------------------------------------------------------ *)
(* E24: uncertainty ball — certified EP bounds, worst case, drift      *)
(* ------------------------------------------------------------------ *)

let e24 () =
  header ~id:"e24" ~title:"uncertainty ball: certified EP bounds, drift recovery"
    ~claim:
      "Lemma 2.1 extends to perturbed matrices: per-round prefix-mass \
       intervals certify EP over an L-inf ball around the estimate, a \
       canonical transport attains the worst case, and the simulator's \
       drift-triggered re-solve returns realized paging cost to the \
       re-solved nominal EP while a stale matrix stays miscalibrated";
  let module Solver = Confcall.Solver in
  (* Part 1: eps sweep on one instance and its greedy strategy. *)
  let rng = Prob.Rng.create ~seed:424 in
  let inst = Instance.random_uniform_simplex rng ~m:3 ~c:24 ~d:3 in
  let outcome = Solver.solve Solver.Greedy inst in
  let strat = outcome.Solver.strategy in
  let nominal = outcome.Solver.expected_paging in
  let epss = [ 0.0; 0.005; 0.01; 0.02; 0.05; 0.1 ] in
  Printf.printf "instance: m=3 c=24 d=3 (simplex, seed 424); greedy EP %.6f\n"
    nominal;
  Printf.printf "%8s %12s %12s %12s %12s\n" "eps" "lo" "nominal" "hi"
    "worst-case";
  let rows =
    List.map
      (fun eps ->
        let u = Confcall.Uncertainty.uniform eps in
        let b = Confcall.Uncertainty.ep_bounds u inst strat in
        let worst = Confcall.Uncertainty.robust_ep u inst strat in
        Printf.printf "%8.3f %12.6f %12.6f %12.6f %12.6f\n" eps
          b.Confcall.Uncertainty.lo nominal b.Confcall.Uncertainty.hi worst;
        (eps, b.Confcall.Uncertainty.lo, b.Confcall.Uncertainty.hi, worst))
      epss
  in
  let bracket =
    List.for_all
      (fun (_, lo, hi, worst) ->
        lo <= nominal +. 1e-9
        && nominal <= hi +. 1e-9
        && nominal <= worst +. 1e-9
        && worst <= hi +. 1e-9)
      rows
  in
  let rec pairwise ok = function
    | (_, lo1, hi1, w1) :: ((_, lo2, hi2, w2) :: _ as rest) ->
      pairwise
        (ok && lo2 <= lo1 +. 1e-9 && hi1 <= hi2 +. 1e-9 && w1 <= w2 +. 1e-9)
        rest
    | _ -> ok
  in
  let monotone = pairwise true rows in
  (* Part 2: drifting-commuter — realized cost vs the (re-)solved
     nominal EP over the recovered phase t in (280, 360], by
     differencing two cumulative runs (same seed => shared prefix). *)
  let cfg = Cellsim.Scenario.drifting_commuter () in
  let stale_cfg =
    {
      cfg with
      Cellsim.Sim.estimator =
        (match cfg.Cellsim.Sim.estimator with
         | Cellsim.Sim.Snapshot s -> Cellsim.Sim.Snapshot { s with drift = None }
         | e -> e);
    }
  in
  let recovered c =
    let run_to d = Cellsim.Sim.run { c with Cellsim.Sim.duration = d } in
    let a = run_to 280.0 and b = run_to 360.0 in
    let pick (r : Cellsim.Sim.result) =
      List.find
        (fun (s : Cellsim.Sim.scheme_metrics) ->
          match s.Cellsim.Sim.scheme with
          | Cellsim.Sim.Selective _ -> true
          | _ -> false)
        r.Cellsim.Sim.per_scheme
    in
    let sa = pick a and sb = pick b in
    let calls = sb.Cellsim.Sim.calls - sa.Cellsim.Sim.calls in
    let realized =
      float_of_int (sb.Cellsim.Sim.cells_paged - sa.Cellsim.Sim.cells_paged)
      /. float_of_int calls
    in
    let nominal =
      (sb.Cellsim.Sim.expected_paging -. sa.Cellsim.Sim.expected_paging)
      /. float_of_int calls
    in
    (realized, nominal, b.Cellsim.Sim.drift)
  in
  let drift_realized, drift_nominal, drift_metrics = recovered cfg in
  let stale_realized, stale_nominal, _ = recovered stale_cfg in
  let resolves =
    match drift_metrics with
    | Some d -> d.Cellsim.Sim.resolves
    | None -> 0
  in
  Printf.printf
    "\nrecovered phase (t in (280, 360], selective-d3, cells/call):\n";
  Printf.printf "  %-10s realized %7.2f  nominal %7.2f  (%d re-solves)\n"
    "drift-on" drift_realized drift_nominal resolves;
  Printf.printf "  %-10s realized %7.2f  nominal %7.2f\n" "stale"
    stale_realized stale_nominal;
  let recovered_ok = drift_realized <= 1.10 *. drift_nominal in
  let stale_degrades =
    stale_realized > 1.10 *. stale_nominal
    && stale_realized > 2.0 *. drift_realized
  in
  record ~id:"e24"
    ~pass:(bracket && monotone && resolves >= 1 && recovered_ok && stale_degrades)
    ~metrics:
      [
        "nominal_ep", json_num nominal;
        ( "eps_sweep",
          "["
          ^ String.concat ", "
              (List.map
                 (fun (eps, lo, hi, worst) ->
                   Printf.sprintf
                     "{\"eps\": %s, \"lo\": %s, \"hi\": %s, \"worst\": %s}"
                     (json_num eps) (json_num lo) (json_num hi)
                     (json_num worst))
                 rows)
          ^ "]" );
        "drift_realized", json_num drift_realized;
        "drift_nominal", json_num drift_nominal;
        "stale_realized", json_num stale_realized;
        "stale_nominal", json_num stale_nominal;
        "resolves", string_of_int resolves;
      ]
    (Printf.sprintf
       "bounds bracket nominal and worst case: %b; widen monotonically: %b; \
        drift re-solved %d times and realized/nominal = %.2f (<= 1.10); \
        stale realized/nominal = %.2f and %.1fx the drift-on realized cost"
       bracket monotone resolves
       (drift_realized /. drift_nominal)
       (stale_realized /. stale_nominal)
       (stale_realized /. drift_realized))

(* ------------------------------------------------------------------ *)
(* E25: multicore runtime — speedup curves, parallel ≡ sequential      *)
(* ------------------------------------------------------------------ *)

let e25 () =
  header ~id:"e25" ~title:"domain-pool runtime: speedup and determinism"
    ~claim:
      "chain re-ranking, parameter sweeps and simulation replication are \
       embarrassingly parallel candidate evaluation (the O(c(m+dc)) DP of \
       Fig. 1 per candidate); a domain pool accelerates all three without \
       changing a single result bit";
  let module Runner = Confcall.Runner in
  let module Journal = Confcall.Journal in
  let module Sweep = Confcall.Sweep in
  let module Solver = Confcall.Solver in
  let module Uncertainty = Confcall.Uncertainty in
  let degrees = [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.0)
  in
  let with_degree domains f =
    if domains > 1 then Exec.Pool.with_pool ~domains (fun p -> f (Some p))
    else f None
  in
  (* Leg 1 — chain racing. Uncertainty re-ranking runs *every* stage
     (all candidates are scored), so the sequential cost is the sum of
     the stage times and the raced cost their max. *)
  let rng = Prob.Rng.create ~seed:2501 in
  let race_inst = Instance.random_uniform_simplex rng ~m:4 ~c:220 ~d:4 in
  let race_chain = Solver.[ Local_search; Greedy; Bandwidth_limited 80 ] in
  let u = Uncertainty.uniform 0.01 in
  let race domains =
    with_degree domains (fun pool ->
        Runner.run ~chain:race_chain ~uncertainty:u ?pool race_inst)
  in
  (* Leg 2 — sharded sweep: independent greedy solves journalled through
     [Sweep.run]; the merged journal must be byte-identical per degree. *)
  let sweep_items =
    List.init 12 (fun k ->
        let seed = 100 + k in
        {
          Sweep.id = Printf.sprintf "e25/c1600/seed%d" seed;
          compute =
            (fun () ->
              let rng = Prob.Rng.create ~seed in
              let inst =
                Instance.random_uniform_simplex rng ~m:3 ~c:1600 ~d:4
              in
              let o = Solver.solve Solver.Greedy inst in
              Printf.sprintf "%.9f" o.Solver.expected_paging);
        })
  in
  let read_file path = In_channel.with_open_bin path In_channel.input_all in
  let sweep domains =
    let path = Filename.temp_file "confcall_e25" ".journal" in
    Sys.remove path;
    let journal = Journal.load_or_create path in
    let outcomes =
      Fun.protect
        ~finally:(fun () -> Journal.close journal)
        (fun () ->
          with_degree domains (fun pool -> Sweep.run ?pool ~journal sweep_items))
    in
    let bytes = read_file path in
    Sys.remove path;
    (outcomes, bytes)
  in
  (* Leg 3 — simulation replicas: four independent seeded runs reduced
     deterministically. *)
  let sim_cfg =
    { (Cellsim.Sim.default_config ()) with Cellsim.Sim.duration = 150.0 }
  in
  let sim domains =
    with_degree domains (fun pool ->
        Cellsim.Replicate.run_summary ?pool ~replicas:4 sim_cfg)
  in
  let time_leg f = List.map (fun d -> (d, wall (fun () -> f d))) degrees in
  let race_runs = time_leg race in
  let sweep_runs = time_leg sweep in
  let sim_runs = time_leg sim in
  let walls runs = List.map (fun (d, (_, w)) -> (d, w)) runs in
  let speedup runs d =
    let w1 = List.assoc 1 (walls runs) and wd = List.assoc d (walls runs) in
    w1 /. wd
  in
  let print_leg name runs =
    List.iter
      (fun (d, (_, w)) ->
        Printf.printf "  %-7s domains=%d  %10.2f ms  speedup %.2fx\n" name d w
          (speedup runs d))
      runs
  in
  Printf.printf "cores available: %d%s\n" cores
    (if cores < 4 then "  (speedup gate waived below 4 cores)" else "");
  print_leg "race" race_runs;
  print_leg "sweep" sweep_runs;
  print_leg "sim" sim_runs;
  (* Determinism across degrees, against the degree-1 baseline. *)
  let base sel runs = sel (fst (snd (List.hd runs))) in
  let all_equal sel runs =
    let b = base sel runs in
    List.for_all (fun (_, (r, _)) -> sel r = b) runs
  in
  let winner_key (r : Runner.run_report) =
    match r.Runner.winner with
    | Some (spec, o) ->
      Some
        ( Solver.spec_to_string spec,
          o.Solver.expected_paging,
          Strategy.to_string o.Solver.strategy )
    | None -> None
  in
  let race_eq = all_equal winner_key race_runs in
  let sweep_eq =
    all_equal snd sweep_runs
    && all_equal
         (fun (outcomes, _) ->
           List.map (fun o -> (o.Sweep.id, o.Sweep.payload)) outcomes)
         sweep_runs
  in
  let sim_eq = all_equal Fun.id sim_runs in
  let sweep_s4 = speedup sweep_runs 4 in
  let speedup_ok = cores < 4 || sweep_s4 >= 2.0 in
  Printf.printf
    "parallel == sequential: race %b, sweep (journal bytes) %b, sim %b\n"
    race_eq sweep_eq sim_eq;
  let leg_json runs =
    "["
    ^ String.concat ", "
        (List.map
           (fun (d, (_, w)) ->
             Printf.sprintf
               "{\"domains\": %d, \"wall_ms\": %s, \"speedup\": %s}" d
               (json_num w)
               (json_num (speedup runs d)))
           runs)
    ^ "]"
  in
  record ~id:"e25"
    ~pass:(race_eq && sweep_eq && sim_eq && speedup_ok)
    ~metrics:
      [
        "cores", string_of_int cores;
        "race", leg_json race_runs;
        "sweep", leg_json sweep_runs;
        "sim", leg_json sim_runs;
        "race_equal", (if race_eq then "true" else "false");
        "sweep_equal", (if sweep_eq then "true" else "false");
        "sim_equal", (if sim_eq then "true" else "false");
        "sweep_speedup_4", json_num sweep_s4;
      ]
    (Printf.sprintf
       "results identical across 1/2/4 domains: race %b, sweep %b, sim %b; \
        sweep speedup at 4 domains %.2fx on %d cores%s"
       race_eq sweep_eq sim_eq sweep_s4 cores
       (if cores < 4 then " (gate waived: fewer than 4 cores)" else ""))

(* ------------------------------------------------------------------ *)
(* E26: observability — overhead and cross-domain counter equality     *)
(* ------------------------------------------------------------------ *)

let e26 () =
  header ~id:"e26" ~title:"observability: overhead and counter determinism"
    ~claim:
      "the metrics registry and span tracer instrument the e25 legs at \
       <= 5% wall-clock overhead, and every counter and histogram outside \
       the scheduler (pool_*) and wall-clock (*_ms) namespaces is \
       identical across 1 and 4 domains";
  let module Runner = Confcall.Runner in
  let module Journal = Confcall.Journal in
  let module Sweep = Confcall.Sweep in
  let module Solver = Confcall.Solver in
  let module Uncertainty = Confcall.Uncertainty in
  let registry = Obs.Metrics.default in
  let tracer = Obs.Trace.default in
  let with_degree domains f =
    if domains > 1 then Exec.Pool.with_pool ~domains (fun p -> f (Some p))
    else f None
  in
  (* The e25 legs, scaled down: an uncertainty re-ranked chain (every
     stage runs to completion, in sequential and raced mode alike, so
     the executed stage set is degree-independent), a journalled greedy
     sweep, and reduced simulation replicas. *)
  let rng = Prob.Rng.create ~seed:2601 in
  let race_inst = Instance.random_uniform_simplex rng ~m:4 ~c:160 ~d:4 in
  let race_chain = Solver.[ Local_search; Greedy; Bandwidth_limited 80 ] in
  let u = Uncertainty.uniform 0.01 in
  let race domains =
    with_degree domains (fun pool ->
        ignore (Runner.run ~chain:race_chain ~uncertainty:u ?pool race_inst))
  in
  let sweep_items =
    List.init 8 (fun k ->
        let seed = 2600 + k in
        {
          Sweep.id = Printf.sprintf "e26/c1000/seed%d" seed;
          compute =
            (fun () ->
              let rng = Prob.Rng.create ~seed in
              let inst =
                Instance.random_uniform_simplex rng ~m:3 ~c:1000 ~d:4
              in
              let o = Solver.solve Solver.Greedy inst in
              Printf.sprintf "%.9f" o.Solver.expected_paging);
        })
  in
  let sweep domains =
    let path = Filename.temp_file "confcall_e26" ".journal" in
    Sys.remove path;
    let journal = Journal.load_or_create path in
    Fun.protect
      ~finally:(fun () -> Journal.close journal)
      (fun () ->
        with_degree domains (fun pool ->
            ignore (Sweep.run ?pool ~journal sweep_items)));
    Sys.remove path
  in
  let sim_cfg =
    { (Cellsim.Sim.default_config ()) with Cellsim.Sim.duration = 80.0 }
  in
  let sim domains =
    with_degree domains (fun pool ->
        ignore (Cellsim.Replicate.run_summary ?pool ~replicas:3 sim_cfg))
  in
  let legs = [ ("race", race); ("sweep", sweep); ("sim", sim) ] in
  let set_obs enabled =
    Obs.Metrics.set_enabled registry enabled;
    Obs.Trace.set_enabled tracer enabled
  in
  let obs_reset () =
    Obs.Metrics.reset registry;
    Obs.Trace.reset tracer
  in
  (* Overhead: min-of-3 alternating disabled/enabled runs of each leg at
     degree 1 (the sequential path, whose bit-identity the no-op
     contract protects). The gate allows 5% plus a small absolute slack
     so sub-100ms legs are not judged on scheduler jitter. *)
  let wall f =
    let t0 = Unix.gettimeofday () in
    f 1;
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let overhead (name, f) =
    f 1 (* warmup *);
    let dis = ref infinity and en = ref infinity in
    for _ = 1 to 3 do
      set_obs false;
      dis := Float.min !dis (wall f);
      set_obs true;
      en := Float.min !en (wall f);
      obs_reset ()
    done;
    set_obs false;
    obs_reset ();
    (name, !dis, !en)
  in
  let oh = List.map overhead legs in
  let overhead_ok =
    List.for_all (fun (_, dis, en) -> en <= (dis *. 1.05) +. 5.0) oh
  in
  List.iter
    (fun (name, dis, en) ->
      Printf.printf "  %-6s disabled %8.2f ms  enabled %8.2f ms  ratio %.3f\n"
        name dis en (en /. dis))
    oh;
  (* Counter equality: run all legs with metrics on at degree 1 and at
     degree 4 and compare everything deterministic — counters and
     histogram bucket counts outside pool_* (scheduler decisions) and
     *_ms (wall clock). Bucket counts, not float sums: summation order
     is scheduling-dependent, bucket membership of each observation is
     not. *)
  let keep name =
    not (String.length name >= 5 && String.sub name 0 5 = "pool_")
  in
  let is_ms name =
    let n = String.length name in
    n >= 3 && String.sub name (n - 3) 3 = "_ms"
  in
  let deterministic_snapshot () =
    ( List.filter (fun (n, _) -> keep n) (Obs.Metrics.counters registry),
      Obs.Metrics.histogram_buckets registry
      |> List.filter (fun (n, _) -> keep n && not (is_ms n))
      |> List.map (fun (n, cells) -> (n, Array.to_list cells)) )
  in
  let run_all domains =
    obs_reset ();
    Obs.Metrics.set_enabled registry true;
    List.iter (fun (_, f) -> f domains) legs;
    Obs.Metrics.set_enabled registry false;
    let snap = deterministic_snapshot () in
    obs_reset ();
    snap
  in
  let snap1 = run_all 1 in
  let snap4 = run_all 4 in
  let counters_equal = snap1 = snap4 in
  let n_counters = List.length (fst snap1)
  and n_hists = List.length (snd snap1) in
  Printf.printf
    "  deterministic set: %d counters, %d histograms — equal across 1/4 \
     domains: %b\n"
    n_counters n_hists counters_equal;
  record ~id:"e26"
    ~pass:(overhead_ok && counters_equal && n_counters > 0 && n_hists > 0)
    ~metrics:
      ([
         "counters_equal", (if counters_equal then "true" else "false");
         "overhead_ok", (if overhead_ok then "true" else "false");
         "deterministic_counters", string_of_int n_counters;
         "deterministic_histograms", string_of_int n_hists;
       ]
      @ List.concat_map
          (fun (name, dis, en) ->
            [
              "overhead_" ^ name, json_num (en /. dis);
              "wall_disabled_" ^ name ^ "_ms", json_num dis;
              "wall_enabled_" ^ name ^ "_ms", json_num en;
            ])
          oh)
    (Printf.sprintf
       "instrumentation overhead %s (gate: <= 5%% + 5 ms slack per leg); %d \
        counters + %d histogram bucket sets identical across 1/4 domains: %b"
       (String.concat ", "
          (List.map
             (fun (name, dis, en) ->
               Printf.sprintf "%s %.3fx" name (en /. dis))
             oh))
       n_counters n_hists counters_equal)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* E27: paging-as-a-service — the daemon under 0.5x/1x/2x offered load *)
(* ------------------------------------------------------------------ *)

let e27 () =
  header ~id:"e27" ~title:"service overload: admission, shedding, degradation"
    ~claim:
      "the serve daemon under open-loop Poisson load at 0.5x/1x/2x of its \
       calibrated capacity answers every request with a terminal status, \
       sheds in well under 10 ms, and keeps accepted p99 latency within \
       the declared budget plus grace";
  let module Runner = Confcall.Runner in
  let module Instance = Confcall.Instance in
  let domains = 2 in
  let capacity = 16 in
  let budget_ms = 20.0 in
  (* Calibrate the daemon's nominal service rate from the budgeted
     runner itself: mean wall time per request on the loadgen's own
     instance diet, times the worker-lane count. *)
  let rng = Prob.Rng.create ~seed:2701 in
  let probes = 12 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to probes do
    let inst = Instance.random_zipf rng ~s:1.1 ~m:3 ~c:12 ~d:2 in
    ignore (Runner.run ~budget_ms ~chain:Runner.default_chain inst)
  done;
  let mean_s =
    Float.max ((Unix.gettimeofday () -. t0) /. float_of_int probes) 1e-4
  in
  let nominal = float_of_int domains /. mean_s in
  Printf.printf
    "calibration: %.2f ms/request under a %.0f ms budget -> nominal %.0f \
     req/s on %d lanes\n\n"
    (mean_s *. 1000.0) budget_ms nominal domains;
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Tcp 0)) with
      domains;
      capacity;
      drain_grace_ms = 60_000.0;
      quiet = true;
    }
  in
  let h = Serve.Server.start cfg in
  let port =
    match Serve.Server.bound_port h with
    | Some p -> p
    | None -> failwith "e27: no bound port"
  in
  let legs = [ 0.5; 1.0; 2.0 ] in
  Printf.printf "%6s %8s %6s %5s %5s %5s %4s %6s %9s %9s %9s %9s\n" "load"
    "rate/s" "sent" "ok" "degr" "shed" "err" "unansw" "p50ms" "p99ms"
    "p999ms" "shed p99";
  let results =
    List.map
      (fun mult ->
        let rate = nominal *. mult in
        let requests =
          int_of_float (Float.min 400.0 (Float.max 60.0 (rate *. 2.0)))
        in
        let o =
          {
            Serve.Loadgen.default_opts with
            rate;
            requests;
            budget_ms = Some budget_ms;
            solver = None;
            chain = Some "default";
            instances = 32;
            connections = 4;
            seed = 2702;
            timeout_s = 120.0;
          }
        in
        let s = Serve.Loadgen.run (Serve.Loadgen.Tcp port) o in
        let p q = Serve.Loadgen.percentile s.Serve.Loadgen.accepted_ms q in
        let shed_p99 =
          Serve.Loadgen.percentile s.Serve.Loadgen.rejected_ms 99.0
        in
        Printf.printf
          "%5.1fx %8.0f %6d %5d %5d %5d %4d %6d %9.2f %9.2f %9.2f %9.2f\n"
          mult rate s.Serve.Loadgen.sent s.Serve.Loadgen.ok
          s.Serve.Loadgen.degraded s.Serve.Loadgen.rejected
          s.Serve.Loadgen.errors s.Serve.Loadgen.unanswered (p 50.0) (p 99.0)
          (p 99.9) shed_p99;
        (mult, s, p 50.0, p 99.0, p 99.9, shed_p99))
      legs
  in
  (* Controlled shed-latency probe. The open-loop legs above measure
     rejection RTT through a saturated client and kernel, which mostly
     measures scheduler noise; the property the design claims is that
     shedding happens at admission, never behind the queue. So: fill
     both lanes and the whole queue with slow budgeted solves on one
     connection, then time rejections on a second, otherwise idle
     connection while the queue is pinned full. *)
  let write_all fd s =
    let n = String.length s in
    let rec go off =
      if off < n then go (off + Unix.write_substring fd s off (n - off))
    in
    go 0
  in
  let read_response fd buf =
    let chunk = Bytes.create 4096 in
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
      | None ->
        if Unix.gettimeofday () >= deadline then None
        else begin
          (match Unix.select [ fd ] [] [] 0.1 with
           | [], _, _ -> ()
           | _ -> (
             match Unix.read fd chunk 0 4096 with
             | 0 -> Buffer.add_char buf '\n' (* EOF: fail via empty line *)
             | r -> Buffer.add_subbytes buf chunk 0 r));
          go ()
        end
    in
    go ()
  in
  let connect () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    fd
  in
  let slow_inst =
    Instance.to_string (Instance.random_zipf rng ~s:1.1 ~m:3 ~c:18 ~d:3)
  in
  (* The fillers run [exhaustive], which burns its whole budget on a
     c = 18 instance, so the first [domains] jobs pin the lanes for
     250 ms; the rest sit in the queue (where the ladder will later
     downgrade them — irrelevant, they never start while the lanes are
     held). The queue is therefore pinned at capacity for the whole
     probe window. *)
  let filler = connect () and prober = connect () in
  let fill_n = domains + capacity + 4 in
  for i = 1 to fill_n do
    write_all filler
      (Printf.sprintf
         "{\"id\": \"fill%d\", \"op\": \"solve\", \"instance\": %s, \
          \"chain\": \"exhaustive\", \"budget_ms\": 250, \"cache\": false}\n"
         i (json_str slow_inst))
  done;
  (* let the filler connection's thread admit the batch and the lanes
     dequeue their first jobs, then top the queue back up to capacity —
     otherwise depth sits at capacity - lanes and probes are admitted *)
  Unix.sleepf 0.05;
  for i = 1 to domains + 2 do
    write_all filler
      (Printf.sprintf
         "{\"id\": \"top%d\", \"op\": \"solve\", \"instance\": %s, \
          \"chain\": \"exhaustive\", \"budget_ms\": 250, \"cache\": false}\n"
         i (json_str slow_inst))
  done;
  Unix.sleepf 0.02;
  let probe_buf = Buffer.create 1024 in
  let probe_rtts = ref [] and probe_rejected = ref 0 in
  for i = 1 to 10 do
    let t = Unix.gettimeofday () in
    write_all prober
      (Printf.sprintf
         "{\"id\": \"probe%d\", \"op\": \"solve\", \"instance\": %s, \
          \"chain\": \"default\", \"budget_ms\": 20, \"cache\": false}\n"
         i (json_str slow_inst));
    match read_response prober probe_buf with
    | None -> ()
    | Some line ->
      probe_rtts := ((Unix.gettimeofday () -. t) *. 1000.0) :: !probe_rtts;
      let contains needle =
        let nh = String.length line and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub line i nn = needle || go (i + 1))
        in
        go 0
      in
      if contains "\"rejected\"" then incr probe_rejected
  done;
  (try Unix.close prober with Unix.Unix_error _ -> ());
  (try Unix.close filler with Unix.Unix_error _ -> ());
  let probe_answered = List.length !probe_rtts in
  let probe_max_ms = List.fold_left Float.max 0.0 !probe_rtts in
  Printf.printf
    "\nshed probe at pinned-full queue: %d/10 answered, %d rejected, max \
     RTT %.3f ms\n"
    probe_answered !probe_rejected probe_max_ms;
  let drained = Serve.Server.stop h in
  print_newline ();
  (* Gates. Every request terminal at every load; a clean run (no error
     frames) at 0.5x; with the queue pinned full, probes are shed and
     every rejection lands in < 10 ms; accepted p99 stays within budget
     + runner grace + scheduling/queueing slack. Queue wait is bounded
     by the admission cap: capacity x mean service / lanes fits inside
     the slack. *)
  let slack_ms = 400.0 in
  let all_terminal =
    List.for_all (fun (_, s, _, _, _, _) -> s.Serve.Loadgen.unanswered = 0)
      results
  in
  let clean_at_half =
    List.for_all
      (fun (mult, s, _, _, _, _) ->
        mult > 0.5 || s.Serve.Loadgen.errors = 0)
      results
  in
  let shed_fast =
    probe_answered = 10 && !probe_rejected >= 8 && probe_max_ms < 10.0
  in
  let p99_bounded =
    List.for_all
      (fun (_, s, _, p99, _, _) ->
        Array.length s.Serve.Loadgen.accepted_ms = 0
        || p99 <= budget_ms +. 100.0 +. slack_ms)
      results
  in
  let leg_json (mult, s, p50, p99, p999, shed_p99) =
    let ladder =
      "{"
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s: %d" (json_str k) v)
             s.Serve.Loadgen.ladder)
      ^ "}"
    in
    "{"
    ^ String.concat ", "
        [
          Printf.sprintf "\"load\": %s" (json_num mult);
          Printf.sprintf "\"sent\": %d" s.Serve.Loadgen.sent;
          Printf.sprintf "\"ok\": %d" s.Serve.Loadgen.ok;
          Printf.sprintf "\"degraded\": %d" s.Serve.Loadgen.degraded;
          Printf.sprintf "\"rejected\": %d" s.Serve.Loadgen.rejected;
          Printf.sprintf "\"errors\": %d" s.Serve.Loadgen.errors;
          Printf.sprintf "\"unanswered\": %d" s.Serve.Loadgen.unanswered;
          Printf.sprintf "\"throughput\": %s"
            (json_num s.Serve.Loadgen.throughput);
          Printf.sprintf "\"p50_ms\": %s" (json_num p50);
          Printf.sprintf "\"p99_ms\": %s" (json_num p99);
          Printf.sprintf "\"p999_ms\": %s" (json_num p999);
          Printf.sprintf "\"shed_p99_ms\": %s" (json_num shed_p99);
          Printf.sprintf "\"ladder\": %s" ladder;
        ]
    ^ "}"
  in
  record ~id:"e27"
    ~pass:(all_terminal && clean_at_half && shed_fast && p99_bounded && drained)
    ~metrics:
      [
        "nominal_rate", json_num nominal;
        "budget_ms", json_num budget_ms;
        "domains", string_of_int domains;
        "capacity", string_of_int capacity;
        "drained", (if drained then "true" else "false");
        "shed_probe_answered", string_of_int probe_answered;
        "shed_probe_rejected", string_of_int !probe_rejected;
        "shed_probe_max_ms", json_num probe_max_ms;
        ( "loads",
          "[" ^ String.concat ", " (List.map leg_json results) ^ "]" );
      ]
    (Printf.sprintf
       "all terminal: %b; clean at 0.5x: %b; pinned-queue shed < 10 ms: %b \
        (%d/10 rejected, max %.2f ms); accepted p99 <= budget + grace + \
        %.0f ms: %b; drained: %b"
       all_terminal clean_at_half shed_fast !probe_rejected probe_max_ms
       slack_ms p99_bounded drained)

let e28 () =
  header ~id:"e28" ~title:"self-healing: recovery cost under injected faults"
    ~claim:
      "with worker-lane deaths, journal write/fsync faults and cache-store \
       faults injected, the serve daemon still answers every request with a \
       terminal status, respawns every crashed domain, drains clean, and \
       keeps accepted p99 within a bounded multiple of its own fault-free \
       baseline";
  let module Runner = Confcall.Runner in
  let module Instance = Confcall.Instance in
  let domains = 2 in
  let capacity = 16 in
  let budget_ms = 20.0 in
  (* Same calibration recipe as e27: nominal rate from the budgeted
     runner on the loadgen's instance diet. *)
  let rng = Prob.Rng.create ~seed:2801 in
  let probes = 12 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to probes do
    let inst = Instance.random_zipf rng ~s:1.1 ~m:3 ~c:12 ~d:2 in
    ignore (Runner.run ~budget_ms ~chain:Runner.default_chain inst)
  done;
  let mean_s =
    Float.max ((Unix.gettimeofday () -. t0) /. float_of_int probes) 1e-4
  in
  let nominal = float_of_int domains /. mean_s in
  let rate = nominal in
  let requests =
    int_of_float (Float.min 400.0 (Float.max 80.0 (rate *. 2.0)))
  in
  Printf.printf
    "calibration: %.2f ms/request -> nominal %.0f req/s; both legs at 1.0x \
     (%d requests)\n\n"
    (mean_s *. 1000.0) nominal requests;
  (* One daemon per leg so the fault leg's respawn/chaos accounting is
     isolated; both see an identical fresh cache journal setup. *)
  let run_leg ~label ~chaos =
    (match chaos with
     | Some spec -> Faultpoint.configure_exn ~seed:1 spec
     | None -> Faultpoint.disable ());
    let cache_path = Filename.temp_file "confcall_e28" ".cache" in
    Sys.remove cache_path;
    let cfg =
      {
        (Serve.Server.default_config (Serve.Server.Tcp 0)) with
        domains;
        capacity;
        cache_path = Some cache_path;
        cache_fsync = true;
        drain_grace_ms = 60_000.0;
        quiet = true;
      }
    in
    let respawns0 = Exec.Pool.total_respawns () in
    let h = Serve.Server.start cfg in
    let port =
      match Serve.Server.bound_port h with
      | Some p -> p
      | None -> failwith "e28: no bound port"
    in
    let o =
      {
        Serve.Loadgen.default_opts with
        rate;
        requests;
        budget_ms = Some budget_ms;
        solver = None;
        chain = Some "default";
        instances = 32;
        connections = 4;
        seed = 2802;
        timeout_s = 120.0;
      }
    in
    let s = Serve.Loadgen.run (Serve.Loadgen.Tcp port) o in
    let drained = Serve.Server.stop h in
    let respawns = Exec.Pool.total_respawns () - respawns0 in
    let fired = Faultpoint.fired_all () in
    Faultpoint.disable ();
    (try Sys.remove cache_path with Sys_error _ -> ());
    let p q = Serve.Loadgen.percentile s.Serve.Loadgen.accepted_ms q in
    Printf.printf
      "%-9s sent %4d  ok %4d  degr %3d  shed %3d  err %3d  unansw %3d  \
       p50 %8.2f ms  p99 %8.2f ms  respawns %d%s\n"
      label s.Serve.Loadgen.sent s.Serve.Loadgen.ok
      s.Serve.Loadgen.degraded s.Serve.Loadgen.rejected
      s.Serve.Loadgen.errors s.Serve.Loadgen.unanswered (p 50.0) (p 99.0)
      respawns
      (match fired with
       | [] -> ""
       | l ->
         "  fired "
         ^ String.concat " "
             (List.map (fun (pt, n) -> Printf.sprintf "%s=%d" pt n) l));
    (s, drained, p 99.0, respawns, fired)
  in
  let base_s, base_drained, p99_base, _, _ =
    run_leg ~label:"baseline" ~chaos:None
  in
  (* Lane deaths dominate the spec; journal/cache faults ride along.
     Probabilities sized so expected crashes stay well inside the
     serve layer's spare-lane budget. *)
  let spec =
    "serve.lane.crash=0.03,journal.fsync=0.1,journal.append.short=0.05,\
     cache.store=0.05,pool.task.delay=0.02@5"
  in
  let fault_s, fault_drained, p99_fault, respawns, fired =
    run_leg ~label:"faulted" ~chaos:(Some spec)
  in
  print_newline ();
  (* Gates. Terminal responses and a clean drain on both legs; every
     fired lane crash was healed by a respawn; accepted p99 under fault
     within max(5x, +200 ms) of the leg-local fault-free baseline (the
     floor absorbs sub-millisecond baselines where a multiple is
     noise). *)
  let all_terminal =
    base_s.Serve.Loadgen.unanswered = 0
    && fault_s.Serve.Loadgen.unanswered = 0
  in
  let lane_crashes =
    match List.assoc_opt "serve.lane.crash" fired with
    | Some n -> n
    | None -> 0
  in
  let healed = lane_crashes = 0 || respawns >= 1 in
  let p99_gate = Float.max (5.0 *. p99_base) (p99_base +. 200.0) in
  let p99_bounded =
    Array.length fault_s.Serve.Loadgen.accepted_ms = 0
    || p99_fault <= p99_gate
  in
  record ~id:"e28"
    ~pass:
      (all_terminal && base_drained && fault_drained && healed && p99_bounded)
    ~metrics:
      [
        "nominal_rate", json_num nominal;
        "requests", string_of_int requests;
        "p99_base_ms", json_num p99_base;
        "p99_fault_ms", json_num p99_fault;
        "p99_gate_ms", json_num p99_gate;
        "lane_crashes", string_of_int lane_crashes;
        "respawns", string_of_int respawns;
        ( "faults_fired",
          "{"
          ^ String.concat ", "
              (List.map
                 (fun (pt, n) -> Printf.sprintf "%s: %d" (json_str pt) n)
                 fired)
          ^ "}" );
        "unanswered_base", string_of_int base_s.Serve.Loadgen.unanswered;
        "unanswered_fault", string_of_int fault_s.Serve.Loadgen.unanswered;
        "drained_base", (if base_drained then "true" else "false");
        "drained_fault", (if fault_drained then "true" else "false");
      ]
    (Printf.sprintf
       "all terminal: %b; drained: %b/%b; lane crashes %d healed by %d \
        respawns: %b; fault p99 %.2f ms within gate %.2f ms (baseline %.2f \
        ms): %b"
       all_terminal base_drained fault_drained lane_crashes respawns healed
       p99_fault p99_gate p99_base p99_bounded)

(* ------------------------------------------------------------------ *)
(* E29: replica failover — kill one of two daemons under resilient load *)
(* ------------------------------------------------------------------ *)

let e29 () =
  header ~id:"e29" ~title:"resilient client: replica loss under load"
    ~claim:
      "a retrying, failover-capable client driving two serve replicas \
       brings >= 99% of requests to a terminal answer even when one \
       replica is SIGKILLed mid-run, never makes a replica execute the \
       same request_id twice (per-replica request-log audit), and keeps \
       the failover leg's accepted p99 within +500 ms of the \
       two-replica baseline";
  let module Runner = Confcall.Runner in
  let module Instance = Confcall.Instance in
  let module Journal = Confcall.Journal in
  let domains = 2 in
  let capacity = 16 in
  let budget_ms = 20.0 in
  (* Real processes this time: SIGKILL on an in-process server is not a
     thing, so each replica is the actual CLI daemon as a subprocess. *)
  let cli =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/confcall_cli.exe"
  in
  if not (Sys.file_exists cli) then
    failwith ("e29: daemon binary not built: " ^ cli ^ " (run dune build)");
  (* Same calibration recipe as e27/e28, scaled to the pair: nominal is
     what the two replicas sustain together. The legs run at 0.6x of
     that so the survivor of the kill leg lands at ~1.2x of its own
     capacity — stressed into admission control, not collapsed. *)
  let rng = Prob.Rng.create ~seed:2901 in
  let probes = 12 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to probes do
    let inst = Instance.random_zipf rng ~s:1.1 ~m:3 ~c:12 ~d:2 in
    ignore (Runner.run ~budget_ms ~chain:Runner.default_chain inst)
  done;
  let mean_s =
    Float.max ((Unix.gettimeofday () -. t0) /. float_of_int probes) 1e-4
  in
  let nominal = float_of_int (2 * domains) /. mean_s in
  let rate = 0.6 *. nominal in
  let requests =
    int_of_float (Float.min 400.0 (Float.max 100.0 (rate *. 2.5)))
  in
  let expected_s = float_of_int requests /. rate in
  Printf.printf
    "calibration: %.2f ms/request -> pair nominal %.0f req/s; legs at \
     0.6x (%.0f req/s, %d requests, ~%.1f s)\n\n"
    (mean_s *. 1000.0) nominal rate requests expected_s;
  let spawn ~sock ~reqlog =
    (try Sys.remove sock with Sys_error _ -> ());
    (try Sys.remove reqlog with Sys_error _ -> ());
    let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
    let pid =
      Unix.create_process cli
        [|
          cli; "serve"; "--socket"; sock;
          "--domains"; string_of_int domains;
          "--capacity"; string_of_int capacity;
          "--request-log"; reqlog; "--quiet";
        |]
        null null null
    in
    Unix.close null;
    pid
  in
  let wait_ready sock =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec go () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let up =
        try
          Unix.connect fd (Unix.ADDR_UNIX sock);
          true
        with Unix.Unix_error _ -> false
      in
      Unix.close fd;
      if up then ()
      else if Unix.gettimeofday () >= deadline then
        failwith ("e29: daemon not ready: " ^ sock)
      else begin
        Thread.delay 0.05;
        go ()
      end
    in
    go ()
  in
  let reap pid =
    (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. 15.0 in
    let rec go () =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if Unix.gettimeofday () >= deadline then begin
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid)
        end
        else begin
          Thread.delay 0.05;
          go ()
        end
      | _ -> ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    in
    go ()
  in
  (* The audit: [Journal.read_back] raises on a duplicate id, and a
     duplicate id in a replica's request log IS a duplicate execution —
     the very thing idempotency promises away. Re-execution on the
     OTHER replica after a failover is legitimate (at-most-once is per
     replica) and shows up as the same id across the two logs. *)
  let audit reqlog =
    match Journal.read_back reqlog with
    | entries -> (List.length entries, false)
    | exception Invalid_argument _ -> (0, true)
  in
  let run_leg ~label ~kill_after ~hedge =
    let sock_a = Filename.temp_file "confcall_e29a" ".sock" in
    let sock_b = Filename.temp_file "confcall_e29b" ".sock" in
    let log_a = Filename.temp_file "confcall_e29a" ".reqlog" in
    let log_b = Filename.temp_file "confcall_e29b" ".reqlog" in
    let pid_a = spawn ~sock:sock_a ~reqlog:log_a in
    let pid_b = spawn ~sock:sock_b ~reqlog:log_b in
    wait_ready sock_a;
    wait_ready sock_b;
    let killer =
      Option.map
        (fun after_s ->
          Thread.create
            (fun () ->
              Thread.delay after_s;
              try Unix.kill pid_a Sys.sigkill with Unix.Unix_error _ -> ())
            ())
        kill_after
    in
    let o =
      {
        Serve.Loadgen.default_opts with
        rate;
        requests;
        budget_ms = Some budget_ms;
        solver = None;
        chain = Some "default";
        instances = 32;
        seed = 2902;
        timeout_s = 120.0;
        retries = 3;
        hedge_after_ms = hedge;
      }
    in
    let s =
      Serve.Loadgen.run_multi
        [ Serve.Loadgen.Unix_path sock_a; Serve.Loadgen.Unix_path sock_b ]
        o
    in
    Option.iter Thread.join killer;
    reap pid_a;
    reap pid_b;
    let exec_a, dup_a = audit log_a in
    let exec_b, dup_b = audit log_b in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ sock_a; sock_b; log_a; log_b ];
    let p q = Serve.Loadgen.percentile s.Serve.Loadgen.accepted_ms q in
    let terminal = s.Serve.Loadgen.sent - s.Serve.Loadgen.unanswered in
    Printf.printf
      "%-9s sent %4d  term %4d  ok %4d  degr %3d  err %3d  retr %3d  \
       failover %3d  hedgewin %3d  p50 %8.2f ms  p99 %8.2f ms  exec \
       %d+%d%s\n"
      label s.Serve.Loadgen.sent terminal s.Serve.Loadgen.ok
      s.Serve.Loadgen.degraded s.Serve.Loadgen.errors
      s.Serve.Loadgen.retried s.Serve.Loadgen.failed_over
      s.Serve.Loadgen.hedge_wins (p 50.0) (p 99.0) exec_a exec_b
      (if dup_a || dup_b then "  DUPLICATE EXECUTION" else "");
    (s, terminal, p 99.0, exec_a + exec_b, dup_a || dup_b)
  in
  let base_s, base_term, p99_base, _, base_dup =
    run_leg ~label:"baseline" ~kill_after:None ~hedge:None
  in
  let kill_s, kill_term, p99_kill, _, kill_dup =
    run_leg ~label:"killed"
      ~kill_after:(Some (Float.max 0.3 (0.4 *. expected_s)))
      ~hedge:None
  in
  let hedge_s, hedge_term, p99_hedge, _, hedge_dup =
    run_leg ~label:"hedged" ~kill_after:None
      ~hedge:(Some (budget_ms *. 2.0))
  in
  print_newline ();
  let rate_of term s =
    if s.Serve.Loadgen.sent = 0 then 0.0
    else float_of_int term /. float_of_int s.Serve.Loadgen.sent
  in
  let base_rate = rate_of base_term base_s in
  let kill_rate = rate_of kill_term kill_s in
  let hedge_rate = rate_of hedge_term hedge_s in
  let terminal_ok =
    base_rate >= 0.99 && kill_rate >= 0.99 && hedge_rate >= 0.99
  in
  let no_dups = (not base_dup) && (not kill_dup) && not hedge_dup in
  (* The kill must actually have exercised the resilience machinery:
     some request retried or changed replica. *)
  let failover_seen =
    kill_s.Serve.Loadgen.failed_over >= 1 || kill_s.Serve.Loadgen.retried >= 1
  in
  let p99_gate = p99_base +. 500.0 in
  let p99_bounded =
    Array.length kill_s.Serve.Loadgen.accepted_ms = 0 || p99_kill <= p99_gate
  in
  record ~id:"e29"
    ~pass:(terminal_ok && no_dups && failover_seen && p99_bounded)
    ~metrics:
      [
        "pair_nominal_rate", json_num nominal;
        "rate", json_num rate;
        "requests", string_of_int requests;
        "terminal_rate_base", json_num base_rate;
        "terminal_rate_kill", json_num kill_rate;
        "terminal_rate_hedge", json_num hedge_rate;
        "p99_base_ms", json_num p99_base;
        "p99_kill_ms", json_num p99_kill;
        "p99_hedge_ms", json_num p99_hedge;
        "p99_gate_ms", json_num p99_gate;
        "kill_retried", string_of_int kill_s.Serve.Loadgen.retried;
        "kill_failed_over", string_of_int kill_s.Serve.Loadgen.failed_over;
        "hedge_wins", string_of_int hedge_s.Serve.Loadgen.hedge_wins;
        "duplicate_executions", (if no_dups then "0" else "1");
      ]
    (Printf.sprintf
       "terminal >= 99%%: %b (%.3f/%.3f/%.3f); duplicate executions: %s; \
        kill leg exercised failover: %b (retried %d, failed over %d); \
        kill p99 %.2f ms within baseline %.2f + 500 ms: %b"
       terminal_ok base_rate kill_rate hedge_rate
       (if no_dups then "none" else "FOUND")
       failover_seen kill_s.Serve.Loadgen.retried
       kill_s.Serve.Loadgen.failed_over p99_kill p99_base p99_bounded)

(* ------------------------------------------------------------------ *)
(* E30: flat hot path — allocation-free metro-scale coarse solving     *)
(* ------------------------------------------------------------------ *)

let e30 () =
  header ~id:"e30" ~title:"flat hot path: allocation-free metro-scale solving"
    ~claim:
      "the flat arena solves a metropolitan instance (m = 1000 devices, \
       c = 100000 cells, d = 8, coarse block 256) in well under 100 ms \
       per steady-state solve with zero minor-heap words allocated, \
       bit-identical to the legacy coarse DP on the same order; the \
       small-instance flat mirrors (greedy, within-order, hill climb) \
       are bit-identical to their legacy solvers too";
  let module Flat = Confcall.Flat in
  let module Local_search = Confcall.Local_search in
  (* --- small/mid differential leg: flat mirrors vs legacy, bitwise --- *)
  let rng = Prob.Rng.create ~seed:0xE30 in
  let small_equal = ref true in
  let fast_ok = ref true in
  let arena = Flat.create () in
  for trial = 1 to 30 do
    let m = 1 + Prob.Rng.int rng 6 in
    let c = 2 + Prob.Rng.int rng 40 in
    let d = 1 + Prob.Rng.int rng (min c 8) in
    let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
    let objective =
      match trial mod 3 with
      | 0 -> Objective.Find_all
      | 1 -> Objective.Find_any
      | _ -> Objective.Find_at_least (1 + Prob.Rng.int rng m)
    in
    let gl = Greedy.solve ~objective inst in
    let gf = Flat.greedy ~objective arena inst in
    if
      gl.Order_dp.expected_paging <> gf.Order_dp.expected_paging
      || not (Strategy.equal gl.Order_dp.strategy gf.Order_dp.strategy)
    then small_equal := false;
    let hl = Local_search.hill_climb ~objective inst in
    let hf = Flat.hill_climb ~objective arena inst in
    if
      hl.Local_search.expected_paging <> hf.Local_search.expected_paging
      || hl.Local_search.iterations <> hf.Local_search.iterations
    then small_equal := false;
    let hfast = Flat.hill_climb_fast ~objective arena inst in
    if
      abs_float
        (hfast.Local_search.expected_paging
        -. hl.Local_search.expected_paging)
      > 1e-9 *. float_of_int c
    then fast_ok := false
  done;
  Printf.printf
    "small/mid differential (30 instances): flat == legacy bitwise: %b; \
     fast climb within 1e-9*c: %b\n"
    !small_equal !fast_ok;
  (* --- metro leg --- *)
  let m = 1000 and c = 100_000 and d = 8 and block = 256 in
  Printf.printf "building metro instance m=%d c=%d d=%d...\n%!" m c d;
  let rows =
    Array.init m (fun _ -> Prob.Dist.shuffled rng (Prob.Dist.zipf ~s:1.2 c))
  in
  let inst = Instance.create ~d rows in
  let t0 = Unix.gettimeofday () in
  Flat.prepare_coarse ~block arena inst;
  let prepare_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  (* steady state: repeated solves on the prepared arena *)
  let solves = 20 in
  Flat.run_coarse arena;
  let flat_ep = Flat.ep arena in
  let words_before = Gc.minor_words () in
  let t1 = Unix.gettimeofday () in
  for _ = 1 to solves do
    Flat.run_coarse arena
  done;
  let steady_ms = (Unix.gettimeofday () -. t1) *. 1000.0 /. float_of_int solves in
  let minor_words =
    int_of_float ((Gc.minor_words () -. words_before) /. float_of_int solves)
  in
  (* legacy oracle on the same order (the legacy weight-order comparator
     recomputes cell weights per comparison — quadratic in m·c·log c —
     so the oracle gets the arena's already-sorted order) *)
  let order = Flat.current_order arena in
  let t2 = Unix.gettimeofday () in
  let legacy = Order_dp.solve_coarse ~block inst ~order in
  let legacy_ms = (Unix.gettimeofday () -. t2) *. 1000.0 in
  let equal =
    legacy.Order_dp.expected_paging = flat_ep
    && Strategy.equal legacy.Order_dp.strategy
         (Flat.coarse ~block arena inst).Order_dp.strategy
  in
  let cells_per_sec =
    float_of_int (m * c) /. ((prepare_ms +. steady_ms) /. 1000.0)
  in
  Printf.printf
    "metro: prepare %.0f ms (one-time), steady %.3f ms/solve, %d minor \
     words/solve, legacy %.0f ms, EP %.6f, flat == legacy: %b\n"
    prepare_ms steady_ms minor_words legacy_ms flat_ep equal;
  let solve_fast = steady_ms < 100.0 in
  record ~id:"e30"
    ~pass:(!small_equal && !fast_ok && solve_fast && minor_words = 0 && equal)
    ~metrics:
      [
        "cells_per_sec", json_num cells_per_sec;
        "minor_words_per_solve", string_of_int minor_words;
        "metro_solve_ms", json_num steady_ms;
        "prepare_ms", json_num prepare_ms;
        "legacy_solve_ms", json_num legacy_ms;
        "metro_ep", json_num flat_ep;
        "flat_equal_legacy", (if equal then "true" else "false");
        "small_diff_equal", (if !small_equal then "true" else "false");
        "fast_climb_ok", (if !fast_ok then "true" else "false");
      ]
    (Printf.sprintf
       "metro solve %.3f ms < 100 ms: %b; minor words/solve = %d (want 0); \
        flat == legacy on metro: %b; small differential bitwise: %b; fast \
        climb within tolerance: %b"
       steady_ms solve_fast minor_words equal !small_equal !fast_ok)

(* ------------------------------------------------------------------ *)
(* E31: profile age vs realized EP across residence-time variance      *)
(* ------------------------------------------------------------------ *)

let e31 () =
  header ~id:"e31" ~title:"residence-time aging: realized EP vs profile age"
    ~claim:
      "sequential-paging gains hinge on residence-time variance: at a \
       matched mean dwell, heavy-tailed (Pareto) residence churns more \
       at moderate profile ages than exponential, so even correctly \
       aged location distributions are flatter and the best achievable \
       paging cost degrades faster; aging the rows and inflating the \
       uncertainty ball mitigate the age-blind gap, and age-triggered \
       re-profiling recovers the fresh-profile cost";
  let module Sim = Cellsim.Sim in
  let module Mobility = Cellsim.Mobility in
  let mean_dwell = 6.0 in
  let laws =
    [
      "exp", Mobility.Exponential { mean = mean_dwell };
      "pareto", Mobility.pareto_with_mean ~alpha:1.6 ~mean:mean_dwell;
    ]
  in
  let seeds = [ 2002; 2003; 2004 ] in
  let ks = [ 1; 4; 8; 16 ] in
  let mk ~law ~report_every ~reprofile ~seed =
    let base = Cellsim.Scenario.residence_lab ~seed ~residence:law () in
    {
      base with
      Sim.reporting = Cellsim.Reporting.Time report_every;
      aging =
        Option.map
          (fun a -> { a with Sim.reprofile_age = reprofile })
          base.Sim.aging;
    }
  in
  (* Realized paging cost (ground-truth cells/call) and the planner's
     nominal EP/call for one scheme of one run. *)
  let per_call (r : Sim.result) scheme =
    let s =
      List.find (fun s -> s.Sim.scheme = scheme) r.Sim.per_scheme
    in
    let calls = float_of_int (max 1 s.Sim.calls) in
    ( float_of_int s.Sim.cells_paged /. calls,
      s.Sim.expected_paging /. calls )
  in
  (* Seed-averaged realized cells/call per scheme, plus polls. *)
  let measure ~law ~report_every ~reprofile =
    let n = float_of_int (List.length seeds) in
    let acc = Hashtbl.create 8 in
    let polls = ref 0 in
    List.iter
      (fun seed ->
        let r = Sim.run (mk ~law ~report_every ~reprofile ~seed) in
        polls := !polls + r.Sim.polls;
        List.iter
          (fun s ->
            let realized, nominal = per_call r s.Sim.scheme in
            let r0, n0 =
              Option.value
                (Hashtbl.find_opt acc s.Sim.scheme)
                ~default:(0.0, 0.0)
            in
            Hashtbl.replace acc s.Sim.scheme
              (r0 +. (realized /. n), n0 +. (nominal /. n)))
          r.Sim.per_scheme)
      seeds;
    (acc, !polls)
  in
  let sel = Sim.Selective 3
  and aged = Sim.Selective_aged 3
  and robust = Sim.Selective_robust 3
  and blanket = Sim.Blanket in
  let realized acc s = fst (Hashtbl.find acc s) in
  let nominal acc s = snd (Hashtbl.find acc s) in
  Printf.printf
    "%-7s %3s | %9s %9s %9s %9s | %9s\n" "law" "k" "blanket" "stale"
    "aged" "robust" "aged-nom";
  let table = Hashtbl.create 16 in
  List.iter
    (fun (name, law) ->
      List.iter
        (fun k ->
          let acc, _ = measure ~law ~report_every:k ~reprofile:None in
          Hashtbl.replace table (name, k) acc;
          Printf.printf
            "%-7s %3d | %9.2f %9.2f %9.2f %9.2f | %9.2f\n" name k
            (realized acc blanket) (realized acc sel) (realized acc aged)
            (realized acc robust) (nominal acc aged))
        ks)
    laws;
  let at name k = Hashtbl.find table (name, k) in
  (* Fresh-profile reference: everyone reports every tick, so ages are
     all zero and every selective variant coincides. *)
  let fresh name = realized (at name 1) sel in
  let deg name k = realized (at name k) sel /. fresh name in
  Printf.printf "\nstale-selective degradation vs fresh (cells/call ratio):\n";
  List.iter
    (fun (name, _) ->
      List.iter
        (fun k -> Printf.printf "  %s k=%d: %.3f\n" name k (deg name k))
        (List.tl ks))
    laws;
  (* Re-profiling leg: at the most stale setting, poll any participant
     not sighted this very tick before planning, so the planner works
     from exact knowledge — the "query on demand" end of the
     reporting/paging trade-off. *)
  let kmax = List.fold_left max 1 ks in
  Printf.printf "\nre-profiling leg (k=%d, reprofile-age 0):\n" kmax;
  let recover =
    List.map
      (fun (name, law) ->
        let acc, polls =
          measure ~law ~report_every:kmax ~reprofile:(Some 0)
        in
        let rec_sel = realized acc sel in
        Printf.printf
          "  %s: stale %.2f -> reprofiled %.2f (fresh %.2f), %d polls\n"
          name
          (realized (at name kmax) sel)
          rec_sel (fresh name) polls;
        (name, rec_sel, polls))
      laws
  in
  (* --- gates --- *)
  (* 1. Staleness hurts: the age-blind scheme's realized cost rises
     monotonically in the reporting interval, for both laws. *)
  let monotone name =
    let rec go = function
      | a :: (b :: _ as rest) ->
        realized (at name a) sel <= realized (at name b) sel && go rest
      | _ -> true
    in
    go ks
  in
  let degrades =
    List.for_all (fun (name, _) -> monotone name) laws
    && List.for_all (fun (name, _) -> deg name kmax > 1.5) laws
  in
  (* 2. Variance matters. The age-blind scheme's realized cost is
     dominated by uncertainty-set growth (identical across laws), and
     the heavy tail's long dwells even flatter the stale profile less
     — so the variance penalty is read off the *age-aware* cost: with
     correctly aged rows, both the realized cells/call (summed over
     the stale settings) and the planner's nominal EP at every stale
     setting are strictly worse under Pareto than under the
     exponential law at the same mean dwell. The sequential-paging
     advantage that remains once staleness is modelled honestly is
     what the heavy tail erodes. *)
  let stale_ks = List.tl ks in
  let aged_sum name =
    List.fold_left (fun s k -> s +. realized (at name k) aged) 0.0 stale_ks
  in
  let exp_aged_sum = aged_sum "exp" and pareto_aged_sum = aged_sum "pareto" in
  let pareto_faster =
    pareto_aged_sum > exp_aged_sum
    && List.for_all
         (fun k -> nominal (at "pareto" k) aged > nominal (at "exp" k) aged)
         stale_ks
  in
  (* 3. Mitigation: on the stalest setting, aged rows and the
     staleness-inflated robust re-rank both beat the age-blind
     scheme, under both laws. *)
  let mitigates =
    List.for_all
      (fun (name, _) ->
        let acc = at name kmax in
        realized acc aged <= realized acc sel
        && realized acc robust <= realized acc sel)
      laws
  in
  (* 4. Recovery: age-triggered re-profiling brings realized cost back
     to within 10% of the fresh-profile cost. *)
  let recovers =
    List.for_all
      (fun (name, r, polls) -> r <= 1.10 *. fresh name && polls > 0)
      recover
  in
  let exp_fresh = fresh "exp" and pareto_fresh = fresh "pareto" in
  let rec_exp =
    match recover with (_, r, _) :: _ -> r | [] -> nan
  in
  let rec_pareto =
    match recover with _ :: (_, r, _) :: _ -> r | _ -> nan
  in
  record ~id:"e31"
    ~pass:(degrades && pareto_faster && mitigates && recovers)
    ~metrics:
      [
        "exp_fresh", json_num exp_fresh;
        "pareto_fresh", json_num pareto_fresh;
        "exp_aged_sum", json_num exp_aged_sum;
        "pareto_aged_sum", json_num pareto_aged_sum;
        "exp_aged_nom_max", json_num (nominal (at "exp" kmax) aged);
        "pareto_aged_nom_max", json_num (nominal (at "pareto" kmax) aged);
        "exp_deg_max", json_num (deg "exp" kmax);
        "pareto_deg_max", json_num (deg "pareto" kmax);
        "exp_stale_max", json_num (realized (at "exp" kmax) sel);
        "exp_aged_max", json_num (realized (at "exp" kmax) aged);
        "exp_robust_max", json_num (realized (at "exp" kmax) robust);
        "pareto_stale_max", json_num (realized (at "pareto" kmax) sel);
        "pareto_aged_max", json_num (realized (at "pareto" kmax) aged);
        "pareto_robust_max", json_num (realized (at "pareto" kmax) robust);
        "exp_reprofiled", json_num rec_exp;
        "pareto_reprofiled", json_num rec_pareto;
        "degrades", (if degrades then "true" else "false");
        "pareto_faster", (if pareto_faster then "true" else "false");
        "mitigates", (if mitigates then "true" else "false");
        "recovers", (if recovers then "true" else "false");
      ]
    (Printf.sprintf
       "staleness degrades realized cost monotonically: %b; heavy tail \
        degrades the age-aware cost faster (aged cells/call summed over \
        stale settings: pareto %.2f vs exp %.2f; nominal EP worse at \
        every stale k): %b; aged rows and inflated ball mitigate at \
        k=%d: %b; re-profiling recovers to within 10%% of fresh: %b"
       degrades pareto_aged_sum exp_aged_sum pareto_faster kmax mitigates
       recovers)

let experiments =
  [
    "e1", e1;
    "e2", e2;
    "e3", e3;
    "e4", e4;
    "e5", e5;
    "e6", e6;
    "e7", e7;
    "e8", e8;
    "e9", e9;
    "e10", e10;
    "e11", e11;
    "e12", e12;
    "e13", e13;
    "e14", e14;
    "e15", e15;
    "e16", e16;
    "e17", e17;
    "e18", e18;
    "e19", e19;
    "e20", e20;
    "e21", e21;
    "e22", e22;
    "e23", e23;
    "e24", e24;
    "e25", e25;
    "e26", e26;
    "e27", e27;
    "e28", e28;
    "e29", e29;
    "e30", e30;
    "e31", e31;
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip_json_out acc = function
    | "--json-out" :: dir :: rest ->
      json_out := Some dir;
      strip_json_out acc rest
    | "--json-out" :: [] ->
      prerr_endline "--json-out requires a directory argument";
      exit 1
    | a :: rest -> strip_json_out (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_json_out [] args in
  (* The output directory is created up front (parents included) and an
     unusable path is reported as one line + exit 2 before any
     experiment runs — not as a raw [Sys_error] after a long run. *)
  let rec mkdir_p dir =
    if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
    else begin
      mkdir_p (Filename.dirname dir);
      try Sys.mkdir dir 0o755
      with Sys_error _ when Sys.file_exists dir -> ()
    end
  in
  (match !json_out with
   | Some dir ->
     (try
        mkdir_p dir;
        if not (Sys.is_directory dir) then
          failwith (dir ^ ": exists and is not a directory")
      with Sys_error msg | Failure msg ->
        Printf.eprintf "bench: error: --json-out %s\n" msg;
        exit 2)
   | None -> ());
  let no_bechamel = List.mem "--no-bechamel" args in
  let selected =
    List.filter (fun a -> a <> "--no-bechamel") args
    |> List.map String.lowercase_ascii
  in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _) -> List.mem id selected) experiments
  in
  if to_run = [] then begin
    Printf.eprintf "unknown experiment; available: %s\n"
      (String.concat " " (List.map fst experiments));
    exit 1
  end;
  print_endline
    "Conference-call paging under delay constraints — experiment harness";
  print_endline
    "(Bar-Noy & Malewicz, PODC'02 / J. Algorithms 51(2004) 145-169)";
  print_newline ();
  List.iter (fun (id, f) -> if not (no_bechamel && id = "e11") then f ()) to_run;
  print_endline "==================== summary ====================";
  let all_pass = ref true in
  List.iter
    (fun (id, pass, detail, _) ->
      if not pass then all_pass := false;
      Printf.printf "%-5s %-5s %s\n" id
        (if pass then "PASS" else "FAIL")
        detail)
    (List.rev !results);
  (match !json_out with
   | Some dir ->
     (try List.iter (json_out_result dir) (List.rev !results)
      with Sys_error msg ->
        Printf.eprintf "bench: error: --json-out %s\n" msg;
        exit 2)
   | None -> ());
  print_newline ();
  if !all_pass then print_endline "all shape checks passed"
  else begin
    print_endline "SOME SHAPE CHECKS FAILED";
    exit 1
  end
