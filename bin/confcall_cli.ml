(* Command-line front end for the conference-call paging library.

   Subcommands:
     generate   write a random instance to stdout
     solve      solve an instance file with a chosen solver
     sweep      journaled multi-instance runner sweep (resumable)
     compare    run several solvers on one instance
     evaluate   expected paging of an explicit strategy
     simulate   run the end-to-end cellular simulation
     hardness   demonstrate the Partition -> Conference Call reduction
     serve      run the JSONL paging daemon (admission control, deadlines)
     loadgen    drive open-loop Poisson load at a serve daemon *)

open Cmdliner
open Confcall

(* Every command body runs under [guard]: user-level failures (bad
   instance file, inapplicable solver, missing file) go to stderr as one
   message and exit 2 — never a backtrace, never exit 0. *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg ->
    Printf.eprintf "confcall: error: %s\n" msg;
    exit 2

let read_instance path =
  let content =
    if path = "-" then In_channel.input_all stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  Instance.of_string content

(* ---------------- JSON emission ----------------

   Machine-readable output for bench trajectories and CI. Hand-rolled:
   the values are numbers, booleans and fixed keys, so no library is
   needed. *)

module Json = struct
  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let str s = Printf.sprintf "\"%s\"" (escape s)
  let num x =
    if Float.is_finite x then Printf.sprintf "%.12g" x
    else str (Printf.sprintf "%h" x)
  let obj fields =
    "{"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%s: %s" (str k) v) fields)
    ^ "}"
  let arr items = "[" ^ String.concat ", " items ^ "]"

  let strategy (s : Strategy.t) =
    arr
      (Array.to_list
         (Array.map
            (fun g -> arr (Array.to_list (Array.map string_of_int g)))
            (Strategy.groups s)))

  let summary (s : Prob.Stats.summary) =
    obj
      [
        "n", string_of_int s.Prob.Stats.n;
        "mean", num s.Prob.Stats.mean;
        "stddev", num s.Prob.Stats.stddev;
        "min", num s.Prob.Stats.min;
        "max", num s.Prob.Stats.max;
      ]

  let sim_result (r : Cellsim.Sim.result) =
    let robustness (f : Cellsim.Sim.fault_metrics) =
      obj
        [
          "retries", string_of_int f.Cellsim.Sim.retries;
          "retry_cells", string_of_int f.Cellsim.Sim.retry_cells;
          "retry_rounds", string_of_int f.Cellsim.Sim.retry_rounds;
          "escalations", string_of_int f.Cellsim.Sim.escalations;
          "escalate_cells", string_of_int f.Cellsim.Sim.escalate_cells;
          "residual_misses", string_of_int f.Cellsim.Sim.residual_misses;
          "pages_lost", string_of_int f.Cellsim.Sim.pages_lost;
          "pages_blocked", string_of_int f.Cellsim.Sim.pages_blocked;
        ]
    in
    let scheme (s : Cellsim.Sim.scheme_metrics) =
      obj
        [
          "scheme", str (Cellsim.Sim.scheme_to_string s.Cellsim.Sim.scheme);
          "calls", string_of_int s.Cellsim.Sim.calls;
          "devices_sought", string_of_int s.Cellsim.Sim.devices_sought;
          "cells_paged", string_of_int s.Cellsim.Sim.cells_paged;
          "expected_paging", num s.Cellsim.Sim.expected_paging;
          "rounds_used", string_of_int s.Cellsim.Sim.rounds_used;
          "per_call", summary s.Cellsim.Sim.per_call;
          "robustness", robustness s.Cellsim.Sim.robustness;
        ]
    in
    obj
      ([
        "duration", num r.Cellsim.Sim.duration;
        "moves", string_of_int r.Cellsim.Sim.moves;
        "updates", string_of_int r.Cellsim.Sim.updates;
        "total_calls", string_of_int r.Cellsim.Sim.total_calls;
        "skipped_calls", string_of_int r.Cellsim.Sim.skipped_calls;
        "reports_lost", string_of_int r.Cellsim.Sim.reports_lost;
        "reports_delayed", string_of_int r.Cellsim.Sim.reports_delayed;
        "outages", string_of_int r.Cellsim.Sim.outages;
        "polls", string_of_int r.Cellsim.Sim.polls;
        "per_scheme",
        arr (List.map scheme r.Cellsim.Sim.per_scheme);
      ]
      @
      (match r.Cellsim.Sim.drift with
      | Some d ->
        [
          ( "drift",
            obj
              [
                "checks", string_of_int d.Cellsim.Sim.checks;
                "evaluated", string_of_int d.Cellsim.Sim.evaluated;
                "resolves", string_of_int d.Cellsim.Sim.resolves;
                ( "last_resolve",
                  match d.Cellsim.Sim.last_resolve with
                  | Some t -> num t
                  | None -> "null" );
                "max_mean_tv", num d.Cellsim.Sim.max_mean_tv;
              ] );
        ]
      | None -> []))

  let replicate_summary (s : Cellsim.Replicate.summary) =
    let scheme (a : Cellsim.Replicate.scheme_agg) =
      obj
        [
          "scheme", str (Cellsim.Sim.scheme_to_string a.Cellsim.Replicate.scheme);
          "calls", string_of_int a.Cellsim.Replicate.calls;
          "devices_sought", string_of_int a.Cellsim.Replicate.devices_sought;
          "cells_paged", string_of_int a.Cellsim.Replicate.cells_paged;
          "expected_paging", num a.Cellsim.Replicate.expected_paging;
          "rounds_used", string_of_int a.Cellsim.Replicate.rounds_used;
          "mean_cells_per_call", num a.Cellsim.Replicate.mean_cells_per_call;
          "retries", string_of_int a.Cellsim.Replicate.retries;
          "escalations", string_of_int a.Cellsim.Replicate.escalations;
          "residual_misses",
          string_of_int a.Cellsim.Replicate.residual_misses;
        ]
    in
    obj
      [
        "replicas", string_of_int s.Cellsim.Replicate.replicas;
        "total_calls", string_of_int s.Cellsim.Replicate.total_calls;
        "skipped_calls", string_of_int s.Cellsim.Replicate.skipped_calls;
        "moves", string_of_int s.Cellsim.Replicate.moves;
        "updates", string_of_int s.Cellsim.Replicate.updates;
        "per_scheme", arr (List.map scheme s.Cellsim.Replicate.per_scheme);
      ]
end

(* Parallelism degree: the flag wins, else CONFCALL_DOMAINS, else 1
   (the sequential code path). Both sources are validated here, at the
   CLI boundary: 0, negative, oversized and non-numeric values exit 2
   with a message naming the flag or the environment variable, instead
   of raising inside [Exec.Pool] (or, worse, being silently ignored, as
   a malformed CONFCALL_DOMAINS used to be). *)
let effective_domains = function
  | Some n when n >= 1 && n <= Exec.Pool.max_domains -> n
  | Some n ->
    invalid_arg
      (Printf.sprintf "--domains must be an integer in [1, %d], got %d"
         Exec.Pool.max_domains n)
  | None ->
    (match Sys.getenv_opt Exec.Pool.env_var with
     | None -> 1
     | Some raw ->
       (match int_of_string_opt (String.trim raw) with
        | Some n when n >= 1 && n <= Exec.Pool.max_domains -> n
        | Some n ->
          invalid_arg
            (Printf.sprintf "%s must be in [1, %d], got %d" Exec.Pool.env_var
               Exec.Pool.max_domains n)
        | None ->
          invalid_arg
            (Printf.sprintf "%s must be a positive integer, got %S"
               Exec.Pool.env_var raw)))

(* Run [f] with a pool when more than one domain is asked for; [None]
   keeps every call site on the exact sequential path of old. *)
let with_domains domains f =
  if domains > 1 then Exec.Pool.with_pool ~domains (fun p -> f (Some p))
  else f None

(* ---------------- observability ----------------

   [--metrics-out FILE] / [--trace-out FILE] enable the default
   registry/tracer for the duration of the command and write the
   exposition on the way out. Extension selects the metrics format:
   .prom / .txt mean Prometheus text, anything else JSON. A write
   failure is a usage error naming the flag, under the usual exit-2
   contract. *)

let obs_write ~flag path content =
  try
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc content)
  with Sys_error msg ->
    (* [msg] already names the path. *)
    invalid_arg (Printf.sprintf "%s: %s" flag msg)

let with_obs ~metrics_out ~trace_out f =
  if metrics_out <> None then Obs.Metrics.set_enabled Obs.Metrics.default true;
  if trace_out <> None then Obs.Trace.set_enabled Obs.Trace.default true;
  let result = f () in
  Option.iter
    (fun path ->
      let body =
        if
          Filename.check_suffix path ".prom"
          || Filename.check_suffix path ".txt"
        then Obs.Metrics.to_prometheus Obs.Metrics.default
        else Obs.Metrics.to_json Obs.Metrics.default ^ "\n"
      in
      obs_write ~flag:"--metrics-out" path body)
    metrics_out;
  Option.iter
    (fun path ->
      obs_write ~flag:"--trace-out" path
        (Obs.Trace.to_json Obs.Trace.default ^ "\n"))
    trace_out;
  result

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Enable the metrics registry and write its exposition to \
              $(docv) on exit: Prometheus text when $(docv) ends in \
              .prom or .txt, JSON otherwise.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Enable the span tracer and write the collected spans as \
              JSON to $(docv) on exit.")

(* ---------------- generate ---------------- *)

let dist_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "uniform" | "zipf" | "simplex" | "geometric" -> Ok s
    | _ -> Error (`Msg "distribution must be uniform|zipf|simplex|geometric")
  in
  Arg.conv (parse, Format.pp_print_string)

let make_instance ~dist ~skew rng ~m ~c ~d =
  match dist with
  | "uniform" -> Instance.all_uniform ~m ~c ~d
  | "zipf" -> Instance.random_zipf rng ~s:skew ~m ~c ~d
  | "geometric" ->
    Instance.random rng ~m ~c ~d ~gen:(fun rng c ->
        Prob.Dist.shuffled rng (Prob.Dist.geometric ~ratio:(1.0 /. skew) c))
  | _ -> Instance.random_uniform_simplex rng ~m ~c ~d

let generate m c d dist seed skew =
  guard @@ fun () ->
  let rng = Prob.Rng.create ~seed in
  let inst = make_instance ~dist ~skew rng ~m ~c ~d in
  print_string (Instance.to_string inst)

let generate_cmd =
  let m =
    Arg.(value & opt int 2 & info [ "m"; "devices" ] ~doc:"Number of devices.")
  in
  let c =
    Arg.(value & opt int 16 & info [ "c"; "cells" ] ~doc:"Number of cells.")
  in
  let d =
    Arg.(value & opt int 3 & info [ "d"; "delay" ] ~doc:"Delay budget (rounds).")
  in
  let dist =
    Arg.(
      value
      & opt dist_conv "simplex"
      & info [ "dist" ] ~doc:"Row distribution: uniform|zipf|simplex|geometric.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let skew =
    Arg.(value & opt float 1.1 & info [ "skew" ] ~doc:"Zipf exponent / geometric slope.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random instance on stdout")
    Term.(const generate $ m $ c $ d $ dist $ seed $ skew)

(* ---------------- solve ---------------- *)

let objective_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "all" | "find-all" -> Ok Objective.Find_all
    | "any" | "find-any" -> Ok Objective.Find_any
    | other ->
      (match int_of_string_opt other with
       | Some k when k >= 1 -> Ok (Objective.Find_at_least k)
       | _ -> Error (`Msg "objective must be all|any|<k>"))
  in
  Arg.conv (parse, fun ppf o -> Objective.pp ppf o)

let solver_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Solver.spec_of_string s) in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Solver.spec_to_string s))

let bounds_json (b : Uncertainty.bounds) =
  Json.obj [ "lo", Json.num b.Uncertainty.lo; "hi", Json.num b.Uncertainty.hi ]

let runner_report_json (r : Runner.run_report) =
  let stage (s : Runner.stage_report) =
    Json.obj
      ([
         "spec", Json.str (Solver.spec_to_string s.Runner.spec);
         "status", Json.str (Runner.stage_status_to_string s.Runner.status);
         "elapsed_ms", Json.num s.Runner.elapsed_ms;
       ]
       @ (match s.Runner.expected_paging with
          | Some ep -> [ ("expected_paging", Json.num ep) ]
          | None -> [])
       @
       match s.Runner.robust_ep with
       | Some rep -> [ ("robust_ep", Json.num rep) ]
       | None -> [])
  in
  let winner_fields =
    match r.Runner.winner with
    | Some (spec, o) ->
      [
        "winner", Json.str (Solver.spec_to_string spec);
        "strategy", Json.strategy o.Solver.strategy;
        "expected_paging", Json.num o.Solver.expected_paging;
        "exact", (if o.Solver.exact then "true" else "false");
      ]
    | None -> []
  in
  let quality_fields =
    match r.Runner.quality with
    | Some q ->
      [
        ( "quality",
          Json.obj
            [
              "lower_bound", Json.num q.Runner.lower_bound;
              "ratio_to_lower_bound", Json.num q.Runner.ratio_to_lower_bound;
              "guarantee", Json.num q.Runner.guarantee;
              ( "within_guarantee",
                if q.Runner.within_guarantee then "true" else "false" );
            ] );
      ]
    | None -> []
  in
  let robust_fields =
    match r.Runner.robust with
    | Some rb ->
      [
        ( "robust",
          Json.obj
            [
              "uncertainty", Json.str (Uncertainty.to_string rb.Runner.uncertainty);
              "winner_robust_ep", Json.num rb.Runner.winner_robust_ep;
              "ep_bounds", bounds_json rb.Runner.winner_bounds;
            ] );
      ]
    | None -> []
  in
  let failure_fields =
    match r.Runner.failure with
    | Some e -> [ ("failure", Json.str (Runner.error_to_string e)) ]
    | None -> []
  in
  Json.obj
    ([
       "chain", Json.str (Runner.chain_to_string r.Runner.chain);
       "objective", Json.str (Objective.to_string r.Runner.objective);
       ( "budget_ms",
         match r.Runner.budget_ms with Some b -> Json.num b | None -> "null" );
       "stages", Json.arr (List.map stage r.Runner.stages);
       "total_ms", Json.num r.Runner.total_ms;
     ]
     @ winner_fields @ quality_fields @ robust_fields @ failure_fields)

let solve_budgeted inst objective json budget_ms chain uncertainty domains =
  let report =
    with_domains domains (fun pool ->
        Runner.run ~objective ?budget_ms ?uncertainty ~chain ?pool
          ~arena:(Flat.domain_arena ()) inst)
  in
  if json then print_endline (runner_report_json report)
  else begin
    Format.printf "@[<v>%a@]@." Runner.pp_report report;
    match report.Runner.winner with
    | Some (_, o) ->
      Printf.printf "strategy: %s\n" (Strategy.to_string o.Solver.strategy)
    | None -> ()
  end;
  match report.Runner.winner with
  | Some _ -> ()
  | None ->
    Printf.eprintf "confcall: error: %s\n"
      (match report.Runner.failure with
       | Some e -> Runner.error_to_string e
       | None -> "no result");
    exit 2

let solve path spec objective verbose json budget_ms chain eps tv samples
    confidence robust domains metrics_out trace_out =
  guard @@ fun () ->
  with_obs ~metrics_out ~trace_out @@ fun () ->
  let domains = effective_domains domains in
  let inst = read_instance path in
  (* The perturbation ball: an explicit --eps wins; --samples derives a
     DKW-style per-entry radius at --confidence; --robust alone uses
     the same default radius as the "robust" solver spec. *)
  let eff_eps =
    match (eps, samples) with
    | Some e, _ -> Some e
    | None, Some n -> Some (Prob.Estimate.dkw_eps ~n ~confidence)
    | None, None -> if robust || tv <> None then Some 0.05 else None
  in
  let uncertainty = Option.map (fun e -> Uncertainty.uniform ?tv e) eff_eps in
  (match uncertainty with
   | Some u ->
     (match Uncertainty.validate u ~m:inst.Instance.m with
      | Ok () -> ()
      | Error e -> invalid_arg e)
   | None -> ());
  (* Text-mode certification printed for the direct (non-runner) path;
     the runner prints its own robust report. *)
  let certification strategy =
    match uncertainty with
    | None -> None
    | Some u ->
      let b = Uncertainty.ep_bounds ~objective u inst strategy in
      let worst = Uncertainty.robust_ep ~objective u inst strategy in
      Some (u, b, worst)
  in
  match (budget_ms, chain) with
  | (Some _, _ | None, Some _) ->
    (* Runner path: a budget or an explicit chain was requested. With a
       budget but no chain, an explicit --solver becomes a one-stage
       chain (plus the Page_all baseline); otherwise the default chain.
       With --robust the uncertainty flows into the runner, which
       re-ranks the chain by worst-case EP and certifies the winner;
       without it the certification is computed for the winner only. *)
    let chain =
      match (chain, spec) with
      | Some chain, _ -> chain
      | None, Some spec -> [ spec ]
      | None, None -> Runner.default_chain
    in
    if robust then
      solve_budgeted inst objective json budget_ms chain uncertainty domains
    else begin
      solve_budgeted inst objective json budget_ms chain None domains;
      match uncertainty with
      | Some u when not json ->
        Printf.printf "uncertainty (%s): see `solve --robust` for \
                       worst-case ranking\n"
          (Uncertainty.to_string u)
      | _ -> ()
    end
  | None, None ->
    let spec =
      match (robust, spec) with
      | true, _ ->
        let u = Option.get uncertainty in
        Solver.Robust { eps = u.Uncertainty.eps; tv = u.Uncertainty.tv }
      | false, Some spec -> spec
      | false, None -> Solver.Greedy
    in
    (* Direct path: run on this domain's flat arena and report the
       minor-heap words the solve itself allocated. alloc_words covers
       the solve only (arena binding included, result boxing excluded
       by nothing — it is the honest per-call figure); the steady-state
       zero-allocation guarantee on the run_* cores is gated by the
       test suite and bench e30. *)
    let arena = Flat.domain_arena () in
    let words_before = Gc.minor_words () in
    let outcome = Solver.solve ~objective ~arena spec inst in
    let alloc_words = int_of_float (Gc.minor_words () -. words_before) in
    let cert = certification outcome.Solver.strategy in
    if json then
      print_endline
        (Json.obj
           ([
              "solver", Json.str (Solver.spec_to_string spec);
              "strategy", Json.strategy outcome.Solver.strategy;
              "expected_paging", Json.num outcome.Solver.expected_paging;
              "exact", (if outcome.Solver.exact then "true" else "false");
              "expected_rounds",
              Json.num
                (Strategy.expected_rounds ~objective inst
                   outcome.Solver.strategy);
              "lower_bound", Json.num (Bounds.lower_bound ~objective inst);
              "page_all_cost", string_of_int inst.Instance.c;
              "alloc_words", string_of_int alloc_words;
            ]
           @
           match cert with
           | Some (u, b, worst) ->
             [
               "uncertainty", Json.str (Uncertainty.to_string u);
               "ep_bounds", bounds_json b;
               "robust_ep", Json.num worst;
             ]
           | None -> []))
    else begin
      Printf.printf "strategy: %s\n" (Strategy.to_string outcome.Solver.strategy);
      Printf.printf "expected paging: %.6f%s\n" outcome.Solver.expected_paging
        (if outcome.Solver.exact then " (optimal)" else "");
      (match cert with
       | Some (u, b, worst) ->
         Printf.printf "uncertainty (%s): certified EP in [%.6f, %.6f], \
                        worst-case EP %.6f\n"
           (Uncertainty.to_string u) b.Uncertainty.lo b.Uncertainty.hi worst
       | None -> ());
      if verbose then begin
        Printf.printf "expected rounds: %.6f\n"
          (Strategy.expected_rounds ~objective inst outcome.Solver.strategy);
        Printf.printf "lower bound: %.6f\n" (Bounds.lower_bound ~objective inst);
        Printf.printf "page-all cost: %d\n" inst.Instance.c
      end
    end

let file_arg =
  Arg.(
    value
    & pos 0 string "-"
    & info [] ~docv:"FILE" ~doc:"Instance file (\"-\" for stdin).")

let chain_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (Runner.chain_of_string s) in
  Arg.conv
    (parse, fun ppf c -> Format.pp_print_string ppf (Runner.chain_to_string c))

let budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "budget-ms" ]
        ~doc:"Wall-clock budget in milliseconds; enables the deadline \
              runner with fallback chains.")

let chain_arg =
  Arg.(
    value
    & opt (some chain_conv) None
    & info [ "chain" ]
        ~doc:"Fallback chain: default|fast|heuristic|exact or a \
              comma-separated solver list, e.g. bnb,local-search,greedy.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Parallelism degree: race chain stages / shard sweeps / \
              replicate simulations across N domains. Defaults to \
              $(b,CONFCALL_DOMAINS), else 1 (sequential, bit-identical \
              to previous releases). Results are independent of N.")

let solve_cmd =
  let spec =
    Arg.(
      value
      & opt (some solver_conv) None
      & info [ "solver" ]
          ~doc:"greedy|page-all|exhaustive|bnb|exact|local-search|class|\
                bandwidth-<b> (default greedy).")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv Objective.Find_all
      & info [ "objective" ] ~doc:"all (conference) | any (yellow pages) | k.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"More output.") in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let eps =
    Arg.(
      value
      & opt (some float) None
      & info [ "eps" ]
          ~doc:"Per-entry perturbation radius of the uncertainty ball; \
                prints certified EP bounds for the returned strategy.")
  in
  let tv =
    Arg.(
      value
      & opt (some float) None
      & info [ "tv" ]
          ~doc:"Total-variation budget per device row (default unlimited).")
  in
  let samples =
    Arg.(
      value
      & opt (some int) None
      & info [ "samples" ]
          ~doc:"Sample count behind the instance's rows; derives $(b,--eps) \
                from the DKW bound when no explicit radius is given.")
  in
  let confidence =
    Arg.(
      value
      & opt float 0.95
      & info [ "confidence" ]
          ~doc:"Confidence level for the $(b,--samples)-derived radius.")
  in
  let robust =
    Arg.(
      value & flag
      & info [ "robust" ]
          ~doc:"Rank candidates by worst-case expected paging over the \
                uncertainty ball instead of nominal EP (chains re-rank in \
                the runner; otherwise the robust solver runs its \
                candidate list).")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Solve an instance")
    Term.(
      const solve $ file_arg $ spec $ objective $ verbose $ json $ budget_arg
      $ chain_arg $ eps $ tv $ samples $ confidence $ robust $ domains_arg
      $ metrics_out_arg $ trace_out_arg)

(* ---------------- sweep ---------------- *)

(* A journaled, resumable runner sweep over generated instances. Each
   work item's id and payload are deterministic functions of the flags
   (timings never enter the journal), so a killed sweep restarted with
   --resume appends exactly the lines the uninterrupted run would have
   written: the journal is byte-identical. *)
let sweep m c d dist skew seeds objective budget_ms chain journal_path resume
    domains metrics_out trace_out =
  guard @@ fun () ->
  with_obs ~metrics_out ~trace_out @@ fun () ->
  let chain = Option.value chain ~default:Runner.default_chain in
  let domains = effective_domains domains in
  if Sys.file_exists journal_path && not resume then
    invalid_arg
      (Printf.sprintf
         "journal %s already exists; pass --resume to continue it" journal_path);
  let journal = Journal.load_or_create journal_path in
  Fun.protect
    ~finally:(fun () -> Journal.close journal)
    (fun () ->
      let items =
        List.map
          (fun seed ->
            let id =
              Printf.sprintf "%s/m%d/c%d/d%d/%s/seed%d"
                (Objective.to_string objective)
                m c d dist seed
            in
            let compute () =
              let rng = Prob.Rng.create ~seed in
              let inst = make_instance ~dist ~skew rng ~m ~c ~d in
              (* Shards run on pool domains; each reuses its own arena
                 across the seeds it processes. *)
              let report =
                Runner.run ~objective ?budget_ms ~chain
                  ~arena:(Flat.domain_arena ()) inst
              in
              match report.Runner.winner with
              | Some (spec, o) ->
                Printf.sprintf "winner=%s ep=%.9f exact=%b"
                  (Solver.spec_to_string spec)
                  o.Solver.expected_paging o.Solver.exact
              | None ->
                Printf.sprintf "failed=%s"
                  (match report.Runner.failure with
                   | Some e -> Runner.error_to_string e
                   | None -> "unknown")
            in
            { Sweep.id; compute })
          seeds
      in
      let outcomes =
        with_domains domains (fun pool -> Sweep.run ?pool ~journal items)
      in
      List.iter
        (fun { Sweep.id; payload; status } ->
          Printf.printf "%-4s %s\t%s\n"
            (match status with
             | `Ran -> "ran"
             | `Replayed -> "skip"
             | `Recovered -> "rec")
            id payload)
        outcomes;
      Printf.printf "journal %s: %d items\n" journal_path (Journal.count journal))

let sweep_cmd =
  let m =
    Arg.(value & opt int 3 & info [ "m"; "devices" ] ~doc:"Number of devices.")
  in
  let c =
    Arg.(value & opt int 20 & info [ "c"; "cells" ] ~doc:"Number of cells.")
  in
  let d =
    Arg.(value & opt int 3 & info [ "d"; "delay" ] ~doc:"Delay budget (rounds).")
  in
  let dist =
    Arg.(
      value
      & opt dist_conv "simplex"
      & info [ "dist" ] ~doc:"Row distribution: uniform|zipf|simplex|geometric.")
  in
  let skew =
    Arg.(
      value & opt float 1.1
      & info [ "skew" ] ~doc:"Zipf exponent / geometric slope.")
  in
  let seeds =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4; 5 ]
      & info [ "seeds" ] ~doc:"PRNG seeds, one work item each.")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv Objective.Find_all
      & info [ "objective" ] ~doc:"all|any|k.")
  in
  let journal =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:"Append-only journal file recording completed items.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Continue an existing journal, skipping completed items.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Journaled runner sweep over generated instances (resumable)")
    Term.(
      const sweep $ m $ c $ d $ dist $ skew $ seeds $ objective $ budget_arg
      $ chain_arg $ journal $ resume $ domains_arg $ metrics_out_arg
      $ trace_out_arg)

(* ---------------- compare ---------------- *)

let compare_solvers path =
  guard @@ fun () ->
  let inst = read_instance path in
  Printf.printf "m=%d c=%d d=%d\n" inst.Instance.m inst.Instance.c
    inst.Instance.d;
  Printf.printf "%-12s %12s %8s\n" "solver" "EP" "exact";
  List.iter
    (fun spec ->
      match Solver.solve ~arena:(Flat.domain_arena ()) spec inst with
      | outcome ->
        Printf.printf "%-12s %12.6f %8s\n"
          (Solver.spec_to_string spec)
          outcome.Solver.expected_paging
          (if outcome.Solver.exact then "yes" else "no")
      | exception Invalid_argument reason ->
        Printf.printf "%-12s %12s %8s  (%s)\n"
          (Solver.spec_to_string spec)
          "-" "-" reason)
    [ Solver.Page_all; Solver.Greedy; Solver.Best_exact ];
  Printf.printf "%-12s %12.6f\n" "lower-bound" (Bounds.lower_bound inst)

let compare_cmd =
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare solvers on one instance")
    Term.(const compare_solvers $ file_arg)

(* ---------------- evaluate ---------------- *)

let parse_strategy s =
  let groups =
    String.split_on_char '|' s
    |> List.map (fun g ->
           String.split_on_char ' ' (String.trim g)
           |> List.filter (fun tok -> tok <> "")
           |> List.map (fun tok ->
                  (* [int_of_string] would raise bare [Failure
                     "int_of_string"], which [guard] prints verbatim —
                     useless. Name the flag and the offending token. *)
                  match int_of_string_opt tok with
                  | Some cell -> cell
                  | None ->
                    invalid_arg
                      (Printf.sprintf
                         "--strategy: bad cell index %S (expected \
                          space-separated integers in '|'-separated \
                          groups, e.g. \"0 1 2|3 4|5\")"
                         tok))
           |> Array.of_list)
    |> Array.of_list
  in
  Strategy.create groups

let evaluate path strategy_s objective =
  guard @@ fun () ->
  let inst = read_instance path in
  let strategy = parse_strategy strategy_s in
  Printf.printf "expected paging: %.6f\n"
    (Strategy.expected_paging ~objective inst strategy);
  Printf.printf "expected rounds: %.6f\n"
    (Strategy.expected_rounds ~objective inst strategy)

let evaluate_cmd =
  let strategy =
    Arg.(
      required
      & opt (some string) None
      & info [ "strategy" ] ~docv:"GROUPS"
          ~doc:"Strategy as cell groups, e.g. \"0 1 2|3 4|5\".")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv Objective.Find_all
      & info [ "objective" ] ~doc:"all|any|k.")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Expected paging of an explicit strategy")
    Term.(const evaluate $ file_arg $ strategy $ objective)

(* ---------------- simulate ---------------- *)

let reporting_conv =
  let parse s =
    let fail () =
      Error
        (`Msg "reporting must be area | movement-<k> | distance-<k> | time-<k>")
    in
    match String.lowercase_ascii s with
    | "area" -> Ok Cellsim.Reporting.Area
    | other ->
      (match String.split_on_char '-' other with
       | [ "movement"; k ] | [ "move"; k ] ->
         (match int_of_string_opt k with
          | Some k when k >= 1 -> Ok (Cellsim.Reporting.Movement k)
          | _ -> fail ())
       | [ "distance"; k ] | [ "dist"; k ] ->
         (match int_of_string_opt k with
          | Some k when k >= 1 -> Ok (Cellsim.Reporting.Distance k)
          | _ -> fail ())
       | [ "time"; k ] ->
         (match int_of_string_opt k with
          | Some k when k >= 1 -> Ok (Cellsim.Reporting.Time k)
          | _ -> fail ())
       | _ -> fail ())
  in
  Arg.conv
    ( parse,
      fun ppf p -> Format.pp_print_string ppf (Cellsim.Reporting.to_string p) )

let scenario_conv =
  let parse s =
    match List.assoc_opt (String.lowercase_ascii s) Cellsim.Scenario.all with
    | Some build -> Ok (Some build)
    | None ->
      Error
        (`Msg
           (Printf.sprintf "scenario must be one of: %s"
              (String.concat " | " (List.map fst Cellsim.Scenario.all))))
  in
  Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<scenario>")

let retry_conv =
  let parse s =
    Result.map_error (fun e -> `Msg e) (Cellsim.Faults.retry_of_string s)
  in
  Arg.conv
    ( parse,
      fun ppf r -> Format.pp_print_string ppf (Cellsim.Faults.retry_to_string r)
    )

(* Combine the fault flags into a [Faults.t option]. [None] when every
   knob is at its clean default so a scenario preset's own fault model
   (e.g. degraded-downtown) is not clobbered; any explicit fault flag
   replaces the whole model. *)
let build_faults page_loss detect_q outage_rate outage_repair report_loss
    report_delay retry =
  let f =
    {
      Cellsim.Faults.page_loss;
      detect_q;
      outage_rate;
      outage_repair;
      report_loss;
      report_delay;
      retry;
    }
  in
  (* Exact comparison with the flag defaults, not [Faults.is_clean]:
     an out-of-range value like a negative rate must reach [Sim.run]'s
     validation rather than silently fold back to the clean run. *)
  if
    page_loss = 0.0 && detect_q = 1.0 && outage_rate = 0.0
    && report_loss = 0.0 && report_delay = 0.0
    && retry = Cellsim.Faults.No_retry
  then None
  else Some f

let residence_conv =
  let parse s =
    Result.map_error
      (fun e -> `Msg e)
      (Cellsim.Mobility.residence_of_string s)
  in
  Arg.conv
    ( parse,
      fun ppf r ->
        Format.pp_print_string ppf (Cellsim.Mobility.residence_to_string r) )

(* Combine the aging flags into a [Sim.aging_config option]. The aged
   schemes and re-profiling only make sense against a dwell law, so the
   dependent flags demand [--residence]. *)
let build_aging residence age_cap reprofile_age age_robust aged =
  match residence with
  | Some law ->
    Some
      {
        Cellsim.Sim.default_aging with
        residence = law;
        age_cap;
        drive_motion = true;
        reprofile_age;
        confidence =
          Option.value age_robust
            ~default:Cellsim.Sim.default_aging.Cellsim.Sim.confidence;
      }
  | None ->
    if aged || age_robust <> None || reprofile_age <> None then
      invalid_arg
        "--aged, --age-robust and --reprofile-age require --residence";
    None

let print_sim_result json result =
  if json then print_endline (Json.sim_result result)
  else Format.printf "%a@." Cellsim.Sim.pp_result result

(* One run prints the plain result; [--replicas n] runs n independent
   seeded copies (in parallel when [--domains] allows) and prints the
   deterministic aggregate. *)
let run_sim_config ~replicas ~domains json config =
  if replicas <= 1 then print_sim_result json (Cellsim.Sim.run config)
  else begin
    let summary =
      with_domains domains (fun pool ->
          Cellsim.Replicate.run_summary ?pool ~replicas config)
    in
    if json then print_endline (Json.replicate_summary summary)
    else Format.printf "@[<v>%a@]@." Cellsim.Replicate.pp_summary summary
  end

let simulate_custom rows cols users rate duration seed block d_list reporting
    diffuse call_duration faults aging ~aged ~age_robust =
  let hex = Cellsim.Hex.create ~rows ~cols in
  let selective d =
    if age_robust then Cellsim.Sim.Selective_robust d
    else if aged then Cellsim.Sim.Selective_aged d
    else if diffuse then Cellsim.Sim.Selective_diffuse d
    else Cellsim.Sim.Selective d
  in
  let schemes = Cellsim.Sim.Blanket :: List.map selective d_list in
  let config =
    {
      Cellsim.Sim.hex;
      mobility = Cellsim.Mobility.random_walk hex ~stay:0.4;
      areas = Cellsim.Location_area.grid hex ~block_rows:block ~block_cols:block;
      users;
      traffic =
        Cellsim.Traffic.create ~rate
          ~group_size:(Cellsim.Traffic.Uniform_range (2, 4))
          ~users;
      schemes;
      reporting;
      mobility_schedule = [];
      call_duration;
      track_ongoing = true;
      faults;
      estimator = Cellsim.Sim.Live;
      aging;
      profile_decay = 0.9;
      profile_smoothing = 0.05;
      duration;
      seed;
    }
  in
  config

let simulate rows cols users rate duration seed block d_list reporting diffuse
    call_duration scenario page_loss detect_q outage_rate outage_repair
    report_loss report_delay retry residence age_cap reprofile_age age_robust
    aged json replicas domains metrics_out trace_out =
  guard @@ fun () ->
  with_obs ~metrics_out ~trace_out @@ fun () ->
  if replicas < 1 then invalid_arg "--replicas must be >= 1";
  let domains = effective_domains domains in
  let faults =
    build_faults page_loss detect_q outage_rate outage_repair report_loss
      report_delay retry
  in
  let aging =
    build_aging residence age_cap reprofile_age age_robust aged
  in
  let config =
    match scenario with
    | Some build ->
      let config = build ?seed:(Some seed) () in
      let config =
        match faults with
        | None -> config
        | Some _ -> { config with Cellsim.Sim.faults }
      in
      (* An explicit residence law overrides the preset's aging layer
         (the preset keeps its schemes). *)
      (match aging with
       | None -> config
       | Some _ -> { config with Cellsim.Sim.aging })
    | None ->
      simulate_custom rows cols users rate duration seed block d_list reporting
        diffuse call_duration faults aging ~aged
        ~age_robust:(age_robust <> None)
  in
  run_sim_config ~replicas ~domains json config

let simulate_cmd =
  let rows = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Hex field rows.") in
  let cols = Arg.(value & opt int 8 & info [ "cols" ] ~doc:"Hex field cols.") in
  let users = Arg.(value & opt int 64 & info [ "users" ] ~doc:"User count.") in
  let rate = Arg.(value & opt float 0.5 & info [ "rate" ] ~doc:"Calls per time unit.") in
  let duration =
    Arg.(value & opt float 400.0 & info [ "duration" ] ~doc:"Simulated time units.")
  in
  let seed = Arg.(value & opt int 2002 & info [ "seed" ] ~doc:"PRNG seed.") in
  let block =
    Arg.(value & opt int 3 & info [ "block" ] ~doc:"Location-area block size.")
  in
  let ds =
    Arg.(
      value
      & opt (list int) [ 2; 3 ]
      & info [ "delays" ] ~doc:"Selective-scheme delay budgets, e.g. 2,3,5.")
  in
  let reporting =
    Arg.(
      value
      & opt reporting_conv Cellsim.Reporting.Area
      & info [ "reporting" ]
          ~doc:"Reporting policy: area | movement-<k> | distance-<k> | time-<k>.")
  in
  let diffuse =
    Arg.(
      value & flag
      & info [ "diffuse" ]
          ~doc:"Estimate locations by mobility-model diffusion instead of \
                decayed visit counts.")
  in
  let call_duration =
    Arg.(
      value & opt float 0.0
      & info [ "call-duration" ]
          ~doc:"Mean call length (0 = instantaneous calls).")
  in
  let scenario =
    Arg.(
      value
      & opt scenario_conv None
      & info [ "scenario" ]
          ~doc:"Preset: suburb | commuter-day | drifting-commuter | busy-campus | \
                degraded-downtown | residence-exp | residence-pareto \
                (overrides the other simulation options; explicit fault \
                and residence flags still apply on top).")
  in
  let page_loss =
    Arg.(
      value & opt float 0.0
      & info [ "page-loss" ]
          ~doc:"Probability a transmitted page is lost in the channel.")
  in
  let detect_q =
    Arg.(
      value & opt float 1.0
      & info [ "detect-q" ]
          ~doc:"Per-round probability a paged, present device responds \
                (Section 5's q).")
  in
  let outage_rate =
    Arg.(
      value & opt float 0.0
      & info [ "outage-rate" ]
          ~doc:"Per-tick hazard of a cell going down.")
  in
  let outage_repair =
    Arg.(
      value & opt float 1.0
      & info [ "outage-repair" ]
          ~doc:"Mean ticks until a downed cell is repaired.")
  in
  let report_loss =
    Arg.(
      value & opt float 0.0
      & info [ "report-loss" ]
          ~doc:"Probability a location report is lost.")
  in
  let report_delay =
    Arg.(
      value & opt float 0.0
      & info [ "report-delay" ]
          ~doc:"Mean delivery delay (ticks) of surviving location reports \
                (0 = instantaneous).")
  in
  let retry =
    Arg.(
      value
      & opt retry_conv Cellsim.Faults.No_retry
      & info [ "retry" ]
          ~doc:"Re-paging policy: none | repeat:<cycles>[:<backoff>] | \
                escalate:<after>[:blanket|universe].")
  in
  let residence =
    Arg.(
      value
      & opt (some residence_conv) None
      & info [ "residence" ] ~docv:"LAW"
          ~doc:"Cell residence-time law: exp:<mean> | \
                pareto:<alpha>:<scale> | zipf:<s>:<cutoff>. Enables the \
                aging layer: ground truth moves by the semi-Markov walk \
                under this law and profile rows age accordingly.")
  in
  let age_cap =
    Arg.(
      value & opt int 30
      & info [ "profile-age-cap" ] ~docv:"N"
          ~doc:"Clamp profile ages to N ticks before belief evolution \
                (0 freezes snapshots). Requires --residence.")
  in
  let reprofile_age =
    Arg.(
      value
      & opt (some int) None
      & info [ "reprofile-age" ] ~docv:"K"
          ~doc:"Poll call participants whose profile is older than K \
                ticks before planning (age-triggered re-profiling). \
                Requires --residence.")
  in
  let age_robust =
    Arg.(
      value
      & opt (some float) None
      & info [ "age-robust" ] ~docv:"CONF"
          ~doc:"Plan selective schemes by worst-case EP over a \
                staleness-inflated uncertainty ball (DKW radius at \
                confidence CONF + residence-model churn). Requires \
                --residence.")
  in
  let aged =
    Arg.(
      value & flag
      & info [ "aged" ]
          ~doc:"Age profile rows through the residence-time kernel \
                before planning (selective schemes become aged-d<k>). \
                Requires --residence.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"N"
          ~doc:"Run N independent replicas (seeds seed..seed+N-1) and \
                print the aggregated metrics; with --domains they run \
                in parallel, with identical results either way.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run the end-to-end cellular simulation")
    Term.(
      const simulate $ rows $ cols $ users $ rate $ duration $ seed $ block
      $ ds $ reporting $ diffuse $ call_duration $ scenario $ page_loss
      $ detect_q $ outage_rate $ outage_repair $ report_loss $ report_delay
      $ retry $ residence $ age_cap $ reprofile_age $ age_robust $ aged
      $ json $ replicas $ domains_arg $ metrics_out_arg $ trace_out_arg)

(* ---------------- analyze ---------------- *)

let analyze path max_d =
  guard @@ fun () ->
  let inst = read_instance path in
  let r = Greedy.solve inst in
  let dist = Analysis.cost_distribution inst r.Order_dp.strategy in
  Printf.printf "strategy: %s\n" (Strategy.to_string r.Order_dp.strategy);
  Printf.printf "cost distribution: mean %.3f sd %.3f p50 %.0f p90 %.0f p99 %.0f\n"
    dist.Analysis.mean dist.Analysis.stddev
    (Analysis.quantile dist 0.5)
    (Analysis.quantile dist 0.9)
    (Analysis.quantile dist 0.99);
  Array.iteri
    (fun i p ->
      Printf.printf "  P[cost = %3.0f] = %.4f\n" dist.Analysis.support.(i) p)
    dist.Analysis.probabilities;
  let max_d = Stdlib.min max_d inst.Instance.c in
  Printf.printf "delay/paging frontier (d = 1..%d):\n" max_d;
  Array.iteri
    (fun i (rounds, ep) ->
      Printf.printf "  d=%-2d  E[rounds] %6.3f  EP %8.3f\n" (i + 1) rounds ep)
    (Analysis.delay_paging_frontier inst ~max_d)

let analyze_cmd =
  let max_d =
    Arg.(value & opt int 8 & info [ "max-d" ] ~doc:"Frontier sweep upper bound.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Cost distribution and delay/paging frontier of an instance")
    Term.(const analyze $ file_arg $ max_d)

(* ---------------- hardness ---------------- *)

let hardness sizes =
  guard @@ fun () ->
  let sizes = Array.of_list sizes in
  Printf.printf "Partition instance: [%s]\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int sizes)));
  (match Hardness.partition_brute sizes with
   | Some p ->
     Printf.printf "brute force: positive (subset indices %s)\n"
       (String.concat " " (List.map string_of_int p))
   | None -> print_endline "brute force: negative");
  let qp1 = Hardness.partition_to_qp1 sizes in
  Printf.printf "reduced Quasipartition1 instance: %d sizes\n"
    (Array.length qp1);
  if Array.length qp1 <= 12 then begin
    let via = Hardness.partition_answer_via_chain sizes in
    Printf.printf
      "decided via Conference Call oracle (m=2, d=2, c=%d): %s\n"
      (Array.length qp1)
      (if via then "positive" else "negative");
    let lb = Hardness.qp1_lower_bound ~c:(Array.length qp1) in
    Printf.printf "Lemma 3.2 target LB = %s = %.6f\n"
      (Numeric.Rational.to_string lb)
      (Numeric.Rational.to_float lb)
  end
  else
    print_endline
      "(reduced instance too large for the exact Conference Call oracle)"

let hardness_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 1; 2; 3; 4 ]
      & info [ "sizes" ] ~doc:"Partition sizes, e.g. 1,2,3,4.")
  in
  Cmd.v
    (Cmd.info "hardness"
       ~doc:"Demonstrate the NP-hardness reduction of Section 3")
    Term.(const hardness $ sizes)

(* ---------------- serve ---------------- *)

let listen_of_flags port socket =
  match (port, socket) with
  | Some p, None when p >= 0 && p <= 65535 -> Serve.Server.Tcp p
  | Some p, None ->
    invalid_arg (Printf.sprintf "--port must be in [0, 65535], got %d" p)
  | None, Some path -> Serve.Server.Unix_path path
  | Some _, Some _ -> invalid_arg "pass exactly one of --port or --socket"
  | None, None -> invalid_arg "pass one of --port or --socket"

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"Listen on 127.0.0.1:$(docv) (0 picks an ephemeral port).")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on (or connect to) a Unix-domain socket at $(docv).")

let serve port socket domains capacity max_connections cache cache_fsync
    cache_max grace_ms write_timeout_ms request_log dedup_max chaos chaos_seed
    quiet =
  guard @@ fun () ->
  let listen = listen_of_flags port socket in
  let domains = effective_domains domains in
  (* Arm the chaos seam before any subsystem starts: --chaos wins over
     CONFCALL_CHAOS; a malformed spec dies here, at the boundary. *)
  (match chaos with
   | Some spec -> (
     match Faultpoint.configure ~seed:chaos_seed spec with
     | Ok () -> ()
     | Error msg -> invalid_arg msg)
   | None -> Faultpoint.arm_from_env ());
  let cfg =
    {
      (Serve.Server.default_config listen) with
      domains;
      capacity;
      max_connections;
      cache_path = cache;
      cache_fsync;
      cache_max;
      drain_grace_ms = grace_ms;
      write_timeout_ms;
      request_log;
      dedup_max;
      quiet;
    }
  in
  let clean = Serve.Server.run cfg in
  (if Faultpoint.on () && not cfg.Serve.Server.quiet then
     match Faultpoint.fired_all () with
     | [] -> ()
     | fired ->
       Printf.eprintf "confcall serve: chaos fired %s\n%!"
         (String.concat " "
            (List.map (fun (p, n) -> Printf.sprintf "%s=%d" p n) fired)));
  if not clean then exit 1

let serve_cmd =
  let capacity =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Admission-queue bound: requests beyond $(docv) queued are \
                shed with rejected:overload.")
  in
  let max_connections =
    Arg.(
      value & opt int 256
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent connection cap.")
  in
  let cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:"Journal the solver-result cache to $(docv); a restarted \
                daemon reloads it and serves hits.")
  in
  let cache_fsync =
    Arg.(
      value & flag
      & info [ "cache-fsync" ]
          ~doc:"fsync the cache journal after every store (power-loss \
                durability).")
  in
  let cache_max =
    Arg.(
      value
      & opt int Serve.Cache.default_max_entries
      & info [ "cache-max" ] ~docv:"N"
          ~doc:"Result-cache LRU bound: beyond $(docv) resident entries the \
                least-recently-used is evicted (journal lines are kept).")
  in
  let grace_ms =
    Arg.(
      value & opt float 10_000.0
      & info [ "grace-ms" ] ~docv:"MS"
          ~doc:"Drain grace: on SIGTERM, in-flight requests get $(docv) ms \
                to finish.")
  in
  let write_timeout_ms =
    Arg.(
      value & opt float 5_000.0
      & info [ "write-timeout-ms" ] ~docv:"MS"
          ~doc:"Per-chunk socket-write deadline: a client that stalls its \
                reads longer than $(docv) ms is disconnected.")
  in
  let request_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "request-log" ] ~docv:"FILE"
          ~doc:"Append-only journal of executed request_ids (id TAB \
                status): the exactly-once audit trail for retried or \
                hedged requests.")
  in
  let dedup_max =
    Arg.(
      value & opt int 4096
      & info [ "dedup-max" ] ~docv:"N"
          ~doc:"Completed idempotency entries kept for replay (LRU).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:"Arm runtime fault injection: comma-separated \
                point=prob[@param] entries, or *=prob for every point \
                (e.g. 'serve.lane.crash=0.05,journal.fsync=0.1'). \
                Overrides CONFCALL_CHAOS. For chaos testing only.")
  in
  let chaos_seed =
    Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:"PRNG seed for --chaos draws (reproducible chaos).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"No startup/shutdown banner.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the paging daemon (JSONL over TCP or Unix socket)"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "One JSON request per line, one JSON response per request \
              (pipelining allowed; responses may arrive out of order). Ops: \
              solve, simulate, health, metrics, drain. Under load the \
              daemon first downgrades fallback chains (heuristic, then \
              always-fast rungs), then sheds with rejected:overload; \
              per-request budget_ms deadlines are armed at admission and \
              over-budget requests return the anytime best-so-far as \
              degraded. SIGTERM drains gracefully.";
         ])
    Term.(
      const serve $ port_arg $ socket_arg $ domains_arg $ capacity
      $ max_connections $ cache $ cache_fsync $ cache_max $ grace_ms
      $ write_timeout_ms $ request_log $ dedup_max $ chaos $ chaos_seed
      $ quiet)

(* ---------------- loadgen ---------------- *)

(* --endpoints wins over --port/--socket; each entry is PORT, tcp:PORT,
   unix:PATH or a bare socket path (see {!Client.endpoint_of_string}). *)
let loadgen_targets endpoints port socket =
  match endpoints with
  | Some s -> (
    match Client.endpoints_of_string s with
    | Error msg -> invalid_arg ("loadgen: " ^ msg)
    | Ok eps ->
      List.map
        (function
          | Client.Tcp p -> Serve.Loadgen.Tcp p
          | Client.Unix_path p -> Serve.Loadgen.Unix_path p)
        eps)
  | None -> (
    match listen_of_flags port socket with
    | Serve.Server.Tcp p -> [ Serve.Loadgen.Tcp p ]
    | Serve.Server.Unix_path p -> [ Serve.Loadgen.Unix_path p ])

let loadgen port socket endpoints rate requests budget_ms solver chain m c d
    instances connections seed cache timeout retries hedge_after_ms json =
  guard @@ fun () ->
  let targets = loadgen_targets endpoints port socket in
  let opts =
    {
      Serve.Loadgen.rate;
      requests;
      budget_ms;
      solver;
      chain;
      m;
      c;
      d;
      instances;
      connections;
      seed;
      cache;
      timeout_s = timeout;
      retries;
      hedge_after_ms;
    }
  in
  let s = try Serve.Loadgen.run_multi targets opts with
    | Unix.Unix_error (e, _, _) ->
      invalid_arg
        (Printf.sprintf "loadgen: cannot reach the daemon (%s)"
           (Unix.error_message e))
  in
  let pct a p =
    let v = Serve.Loadgen.percentile a p in
    if Float.is_nan v then "null" else Json.num v
  in
  if json then
    print_endline
      (Json.obj
         [
           "sent", string_of_int s.Serve.Loadgen.sent;
           "ok", string_of_int s.Serve.Loadgen.ok;
           "degraded", string_of_int s.Serve.Loadgen.degraded;
           "rejected", string_of_int s.Serve.Loadgen.rejected;
           "errors", string_of_int s.Serve.Loadgen.errors;
           "unanswered", string_of_int s.Serve.Loadgen.unanswered;
           "conn_lost", string_of_int s.Serve.Loadgen.conn_lost;
           "retried", string_of_int s.Serve.Loadgen.retried;
           "failed_over", string_of_int s.Serve.Loadgen.failed_over;
           "hedge_wins", string_of_int s.Serve.Loadgen.hedge_wins;
           "duration_s", Json.num s.Serve.Loadgen.duration_s;
           "throughput", Json.num s.Serve.Loadgen.throughput;
           ( "accepted_ms",
             Json.obj
               [
                 "p50", pct s.Serve.Loadgen.accepted_ms 50.0;
                 "p99", pct s.Serve.Loadgen.accepted_ms 99.0;
                 "p999", pct s.Serve.Loadgen.accepted_ms 99.9;
               ] );
           ( "rejected_ms",
             Json.obj
               [
                 "p50", pct s.Serve.Loadgen.rejected_ms 50.0;
                 "p99", pct s.Serve.Loadgen.rejected_ms 99.0;
               ] );
           ( "ladder",
             Json.obj
               (List.map
                  (fun (k, v) -> (k, string_of_int v))
                  s.Serve.Loadgen.ladder) );
         ])
  else begin
    Printf.printf
      "sent %d: %d ok, %d degraded, %d rejected, %d errors, %d unanswered, \
       %d conn-lost\n"
      s.Serve.Loadgen.sent s.Serve.Loadgen.ok s.Serve.Loadgen.degraded
      s.Serve.Loadgen.rejected s.Serve.Loadgen.errors
      s.Serve.Loadgen.unanswered s.Serve.Loadgen.conn_lost;
    if
      s.Serve.Loadgen.retried > 0
      || s.Serve.Loadgen.failed_over > 0
      || s.Serve.Loadgen.hedge_wins > 0
    then
      Printf.printf "resilience: %d retried, %d failed over, %d hedge wins\n"
        s.Serve.Loadgen.retried s.Serve.Loadgen.failed_over
        s.Serve.Loadgen.hedge_wins;
    Printf.printf "throughput: %.1f responses/s over %.2f s\n"
      s.Serve.Loadgen.throughput s.Serve.Loadgen.duration_s;
    let show name a =
      if Array.length a > 0 then
        Printf.printf "%s latency ms: p50 %.2f  p99 %.2f  p99.9 %.2f\n" name
          (Serve.Loadgen.percentile a 50.0)
          (Serve.Loadgen.percentile a 99.0)
          (Serve.Loadgen.percentile a 99.9)
    in
    show "accepted" s.Serve.Loadgen.accepted_ms;
    show "rejected" s.Serve.Loadgen.rejected_ms;
    List.iter
      (fun (k, v) -> Printf.printf "ladder %s: %d\n" k v)
      s.Serve.Loadgen.ladder
  end;
  if
    s.Serve.Loadgen.unanswered > 0
    || s.Serve.Loadgen.conn_lost > 0
    || s.Serve.Loadgen.sent < requests
  then exit 3

let loadgen_cmd =
  let rate =
    Arg.(
      value & opt float 50.0
      & info [ "rate" ] ~docv:"R"
          ~doc:"Offered load: open-loop Poisson arrivals at $(docv) \
                requests/second.")
  in
  let requests =
    Arg.(
      value & opt int 200
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Total requests to send.")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline attached to every solve frame.")
  in
  let solver =
    Arg.(
      value
      & opt (some string) (Some "greedy")
      & info [ "solver" ] ~docv:"SPEC" ~doc:"Solver spec for the frames.")
  in
  let chain =
    Arg.(
      value
      & opt (some string) None
      & info [ "chain" ] ~docv:"CHAIN"
          ~doc:"Fallback chain for the frames (overrides the direct-solver \
                path).")
  in
  let m = Arg.(value & opt int 3 & info [ "m" ] ~doc:"Devices per instance.") in
  let c = Arg.(value & opt int 12 & info [ "c" ] ~doc:"Cells per instance.") in
  let d = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Delay budget.") in
  let instances =
    Arg.(
      value & opt int 32
      & info [ "instances" ] ~docv:"N"
          ~doc:"Distinct instances in the generated pool.")
  in
  let connections =
    Arg.(
      value & opt int 4
      & info [ "connections" ] ~docv:"N"
          ~doc:"Pipelined connections the load is spread over.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let cache =
    Arg.(
      value & flag
      & info [ "use-cache" ]
          ~doc:"Let the daemon answer from its result cache (default: \
                bypass, to measure solves).")
  in
  let timeout =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"S"
          ~doc:"Straggler window after the last send.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let endpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"LIST"
          ~doc:"Comma-separated daemon endpoints (PORT, tcp:PORT, \
                unix:PATH or a socket path). More than one endpoint \
                switches to the resilient client with health-scored \
                failover. Wins over --port/--socket.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Per-request retry budget (capped exponential backoff with \
                decorrelated jitter, honoring server retry_after_ms \
                hints). Any value > 0 switches to the resilient client, \
                and requests carry an idempotency request_id.")
  in
  let hedge_after_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-after-ms" ] ~docv:"MS"
          ~doc:"Tail-latency hedging: when no answer arrived within \
                $(docv) ms, fire the request again at the next-best \
                endpoint; first terminal answer wins. Implies the \
                resilient client.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive Poisson load at a running serve daemon")
    Term.(
      const loadgen $ port_arg $ socket_arg $ endpoints $ rate $ requests
      $ budget_ms $ solver $ chain $ m $ c $ d $ instances $ connections
      $ seed $ cache $ timeout $ retries $ hedge_after_ms $ json)

(* ---------------- call ---------------- *)

let call path endpoints port socket retries hedge_after_ms deadline_ms
    budget_ms solver chain objective no_cache request_id json =
  guard @@ fun () ->
  let inst = read_instance path in
  let eps =
    match endpoints with
    | Some s -> (
      match Client.endpoints_of_string s with
      | Error msg -> invalid_arg ("call: " ^ msg)
      | Ok eps -> eps)
    | None -> (
      match listen_of_flags port socket with
      | Serve.Server.Tcp p -> [ Client.Tcp p ]
      | Serve.Server.Unix_path p -> [ Client.Unix_path p ])
  in
  if not (Float.is_finite deadline_ms) || deadline_ms <= 0.0 then
    invalid_arg "call: --deadline-ms must be positive";
  let cl =
    Client.create
      {
        endpoints = eps;
        retry = { Client.Retry.default with max_retries = retries };
        budget_ms = Some deadline_ms;
        hedge_after_ms;
        seed = Unix.getpid ();
      }
  in
  let request_id =
    match request_id with
    | Some r -> r
    | None ->
      (* fresh per invocation: a re-run of the command is a new request,
         only in-process retries/hedges share the key *)
      Printf.sprintf "cli-%d-%.0f" (Unix.getpid ())
        (Unix.gettimeofday () *. 1e6)
  in
  let fields =
    [
      ("op", Wire.Json.Str "solve");
      ("instance", Wire.Json.Str (Instance.to_string inst));
    ]
    @ (match solver with Some s -> [ ("solver", Wire.Json.Str s) ] | None -> [])
    @ (match chain with Some c -> [ ("chain", Wire.Json.Str c) ] | None -> [])
    @ (match budget_ms with
       | Some b -> [ ("budget_ms", Wire.Json.Num b) ]
       | None -> [])
    @ (match objective with
       | Some o -> [ ("objective", Wire.Json.Str o) ]
       | None -> [])
    @ if no_cache then [ ("cache", Wire.Json.Bool false) ] else []
  in
  let result = Client.call cl ~request_id fields in
  Client.close cl;
  match result with
  | Ok (out : Client.call_outcome) ->
    if json then
      print_endline
        (Json.obj
           [
             (* the winning response line, embedded verbatim *)
             "response", out.Client.raw;
             "endpoint", Json.str (Client.endpoint_to_string out.Client.endpoint);
             "attempts", string_of_int out.Client.attempts;
             "retries", string_of_int out.Client.retries;
             "failovers", string_of_int out.Client.failovers;
             "hedges", string_of_int out.Client.hedges;
             "hedge_won", (if out.Client.hedge_won then "true" else "false");
             "elapsed_ms", Json.num out.Client.elapsed_ms;
           ])
    else begin
      print_endline out.Client.raw;
      Printf.eprintf
        "confcall call: %s from %s in %.1f ms (attempts=%d retries=%d \
         failovers=%d hedges=%d%s)\n\
         %!"
        out.Client.response.Wire.Proto.status
        (Client.endpoint_to_string out.Client.endpoint)
        out.Client.elapsed_ms out.Client.attempts out.Client.retries
        out.Client.failovers out.Client.hedges
        (if out.Client.hedge_won then ", hedge won" else "")
    end
  | Error (e : Client.call_error) ->
    Printf.eprintf
      "confcall call: %s: %s (attempts=%d retries=%d failovers=%d hedges=%d \
       elapsed=%.1f ms)\n\
       %!"
      (Client.failure_kind_to_string e.Client.kind)
      e.Client.message e.Client.err_attempts e.Client.err_retries
      e.Client.err_failovers e.Client.err_hedges e.Client.err_elapsed_ms;
    exit 1

let call_cmd =
  let endpoints =
    Arg.(
      value
      & opt (some string) None
      & info [ "endpoints" ] ~docv:"LIST"
          ~doc:"Comma-separated daemon endpoints (PORT, tcp:PORT, \
                unix:PATH or a socket path), ranked by observed health; \
                wins over --port/--socket.")
  in
  let retries =
    Arg.(
      value & opt int 3
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget: overload/draining rejects and connection \
                losses retry with capped exponential backoff and \
                decorrelated jitter, honoring server retry_after_ms \
                hints.")
  in
  let hedge_after_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "hedge-after-ms" ] ~docv:"MS"
          ~doc:"Fire a second attempt at the next-best endpoint when no \
                answer arrived within $(docv) ms; first terminal answer \
                wins (server-side idempotency keeps it exactly-once).")
  in
  let deadline_ms =
    Arg.(
      value & opt float 30_000.0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"End-to-end budget across all retries and hedges; on \
                exhaustion the best-so-far error is reported.")
  in
  let solver =
    Arg.(
      value
      & opt (some string) None
      & info [ "solver" ] ~docv:"SPEC" ~doc:"Solver spec for the request.")
  in
  let chain =
    Arg.(
      value
      & opt (some string) None
      & info [ "chain" ] ~docv:"CHAIN" ~doc:"Fallback chain for the request.")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Server-side per-request deadline (budget_ms frame field).")
  in
  let objective =
    Arg.(
      value
      & opt (some string) None
      & info [ "objective" ] ~docv:"OBJ" ~doc:"all | any | <k>.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Bypass the daemon's result cache.")
  in
  let request_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "request-id" ] ~docv:"ID"
          ~doc:"Idempotency key (default: fresh per invocation). Reusing \
                one replays the daemon's memoized terminal response.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:"One-shot resilient solve against one or more daemons"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Sends a single solve request through the resilient client \
              runtime: deadline-aware retries with capped, jittered \
              backoff; health-scored failover across --endpoints; and \
              optional tail-latency hedging. The request carries an \
              idempotency request_id, so retries and hedges never execute \
              twice on the same daemon. Exits 0 on an ok or degraded \
              answer, 1 when no terminal success was obtained, 2 on bad \
              arguments.";
         ])
    Term.(
      const call $ file_arg $ endpoints $ port_arg $ socket_arg $ retries
      $ hedge_after_ms $ deadline_ms $ budget_ms $ solver $ chain $ objective
      $ no_cache $ request_id $ json)

let () =
  let info =
    Cmd.info "confcall" ~version:"1.0.0"
      ~doc:"Wireless conference-call paging under delay constraints"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            solve_cmd;
            sweep_cmd;
            compare_cmd;
            evaluate_cmd;
            analyze_cmd;
            simulate_cmd;
            hardness_cmd;
            serve_cmd;
            loadgen_cmd;
            call_cmd;
          ]))
