(* Quickstart: set up a conference-call paging problem and solve it.

   Three mobile users roam a 12-cell location area. The system's location
   profiles say each user is concentrated around a few home cells. We
   have d = 3 paging rounds; find a strategy that pages few cells in
   expectation, and compare it against blanket paging.

   Run with: dune exec examples/quickstart.exe *)

open Confcall

let () =
  (* Location probabilities: one row per user, one column per cell.
     Rows must sum to 1. *)
  let alice =
    [| 0.30; 0.25; 0.15; 0.10; 0.05; 0.04; 0.03; 0.03; 0.02; 0.01; 0.01; 0.01 |]
  in
  let bob =
    [| 0.02; 0.03; 0.05; 0.30; 0.25; 0.15; 0.08; 0.04; 0.03; 0.02; 0.02; 0.01 |]
  in
  let carol =
    [| 0.01; 0.01; 0.02; 0.02; 0.04; 0.10; 0.30; 0.25; 0.15; 0.05; 0.03; 0.02 |]
  in
  let inst = Instance.create ~d:3 [| alice; bob; carol |] in
  Printf.printf "Instance: m=%d devices, c=%d cells, delay budget d=%d\n\n"
    inst.Instance.m inst.Instance.c inst.Instance.d;

  (* The paper's heuristic: order cells by expected number of devices,
     cut the order with dynamic programming (Theorem 4.8: within
     e/(e-1) ~ 1.582 of optimal). *)
  let result = Greedy.solve inst in
  Printf.printf "Greedy strategy : %s\n"
    (Strategy.to_string result.Order_dp.strategy);
  Printf.printf "Expected paging : %.3f cells\n" result.Order_dp.expected_paging;
  Printf.printf "Expected rounds : %.3f\n\n"
    (Strategy.expected_rounds inst result.Order_dp.strategy);

  (* Baseline: page every cell at once (the GSM/IS-41 behaviour). *)
  let blanket = Strategy.page_all inst.Instance.c in
  Printf.printf "Blanket paging  : %.3f cells (1 round)\n"
    (Strategy.expected_paging inst blanket);

  (* A certified lower bound on what ANY strategy could achieve. *)
  Printf.printf "Lower bound     : %.3f cells\n\n" (Bounds.lower_bound inst);

  (* This instance is small enough to solve exactly. *)
  (match Optimal.best inst with
   | Some opt ->
     Printf.printf "Exact optimum   : %.3f cells (strategy %s)\n"
       opt.Optimal.expected_paging
       (Strategy.to_string opt.Optimal.strategy);
     Printf.printf "Greedy/OPT      : %.4f (Theorem 4.8 guarantees <= %.4f)\n"
       (result.Order_dp.expected_paging /. opt.Optimal.expected_paging)
       Greedy.approximation_factor
   | None -> print_endline "Instance too large for exact solving.");

  (* Sanity: Monte Carlo agreement with the Lemma 2.1 formula. *)
  let rng = Prob.Rng.create ~seed:1 in
  let mc =
    Strategy.monte_carlo_ep inst result.Order_dp.strategy rng ~trials:200_000
  in
  Printf.printf "\nMonte Carlo     : %.3f +/- %.3f cells (200k trials)\n"
    mc.Prob.Stats.mean
    (Prob.Stats.ci95_halfwidth mc)
