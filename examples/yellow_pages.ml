(* The dual problems of §5: Yellow Pages (find any one of m devices) and
   the Signature problem (find any k of m), plus the family showing that
   the conference-call heuristic has no constant factor for find-any.

   Run with: dune exec examples/yellow_pages.exe *)

open Confcall

let () =
  let rng = Prob.Rng.create ~seed:11 in
  let m = 6 and c = 24 and d = 4 in
  let inst = Instance.random_zipf rng ~s:1.0 ~m ~c ~d in
  Printf.printf "Instance: m=%d, c=%d, d=%d (Zipf location profiles)\n\n" m c d;

  (* Signature sweep: finding k of m signers. *)
  print_endline "Expected cells paged to find k of the m devices (heuristic):";
  let sweep = Signature.sweep inst in
  Array.iteri
    (fun i ep ->
      let label =
        if i = 0 then "  (Yellow Pages)"
        else if i = m - 1 then "  (Conference Call)"
        else ""
      in
      Printf.printf "  k=%d  EP = %6.2f%s\n" (i + 1) ep label)
    sweep;
  print_newline ();

  (* Yellow Pages heuristics compared. *)
  let natural = Yellow_pages.natural_heuristic inst in
  let single = Yellow_pages.best_single_device inst in
  Printf.printf "Yellow Pages, cell-weight heuristic   : %.3f\n"
    natural.Order_dp.expected_paging;
  Printf.printf "Yellow Pages, best-single-device      : %.3f\n"
    single.Order_dp.expected_paging;
  Printf.printf "Combined (library default)            : %.3f\n\n"
    (Yellow_pages.solve inst).Order_dp.expected_paging;

  (* The adversarial family: the conference-call heuristic's cell-weight
     order is misled by cells whose weight is split among many devices.
     The ratio to the single-device heuristic grows ~ logarithmically. *)
  print_endline
    "Adversarial family (natural heuristic vs best-single-device, d = 2):";
  Printf.printf "%8s %6s %12s %12s %8s\n" "blocks" "c" "natural" "single" "ratio";
  List.iter
    (fun blocks ->
      let adv = Yellow_pages.adversarial_instance ~blocks ~d:2 in
      let nat = (Yellow_pages.natural_heuristic adv).Order_dp.expected_paging in
      let bsd = (Yellow_pages.best_single_device adv).Order_dp.expected_paging in
      Printf.printf "%8d %6d %12.3f %12.3f %8.3f\n" blocks adv.Instance.c nat
        bsd (nat /. bsd))
    [ 1; 2; 4; 8; 16; 32 ];
  print_newline ();
  print_endline "The growing ratio illustrates the paper's §5 remark that the";
  print_endline "conference-call heuristic offers no constant factor for the";
  print_endline "Yellow Pages objective; the best-single-device policy is the";
  print_endline "paper's m-approximation candidate."
