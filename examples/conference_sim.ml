(* End-to-end system simulation: users roam a hexagonal cell field,
   report on location-area crossings (GSM MAP / IS-41 style), and the
   system establishes conference calls, paging with either the standard
   blanket scheme or the paper's selective multi-round strategies.

   Run with: dune exec examples/conference_sim.exe *)

let () =
  let hex = Cellsim.Hex.create ~rows:10 ~cols:10 in
  let users = 120 in
  let config =
    {
      Cellsim.Sim.hex;
      mobility = Cellsim.Mobility.drift_walk hex ~stay:0.35 ~east_bias:1.5;
      areas = Cellsim.Location_area.grid hex ~block_rows:5 ~block_cols:5;
      users;
      traffic =
        Cellsim.Traffic.create ~rate:0.8
          ~group_size:(Cellsim.Traffic.Uniform_range (2, 4))
          ~users;
      schemes =
        [
          Cellsim.Sim.Blanket;
          Cellsim.Sim.Selective 2;
          Cellsim.Sim.Selective 3;
          Cellsim.Sim.Selective 5;
        ];
      reporting = Cellsim.Reporting.Area;
      mobility_schedule = [];
      call_duration = 0.0;
      track_ongoing = true;
      faults = None;
      estimator = Cellsim.Sim.Live;
      aging = None;
      profile_decay = 0.9;
      profile_smoothing = 0.05;
      duration = 600.0;
      seed = 42;
    }
  in
  Printf.printf
    "Simulating %.0f time units: %d users on a %dx%d hex field,\n\
     %d location areas, conference calls of 2-4 users at rate %.1f/unit.\n\n"
    config.Cellsim.Sim.duration users 10 10
    (Cellsim.Location_area.areas config.Cellsim.Sim.areas)
    (Cellsim.Traffic.rate config.Cellsim.Sim.traffic);

  let result = Cellsim.Sim.run config in
  Printf.printf "Mobility: %d cell moves, %d boundary reports.\n"
    result.Cellsim.Sim.moves result.Cellsim.Sim.updates;
  Printf.printf "Calls established: %d\n\n" result.Cellsim.Sim.total_calls;

  Printf.printf "%-14s %14s %14s %14s %12s\n" "scheme" "cells/call"
    "expected/call" "rounds/call" "vs blanket";
  let blanket_cells =
    match result.Cellsim.Sim.per_scheme with
    | first :: _ -> float_of_int first.Cellsim.Sim.cells_paged
    | [] -> nan
  in
  List.iter
    (fun s ->
      let calls = float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls) in
      Printf.printf "%-14s %14.2f %14.2f %14.2f %11.1f%%\n"
        (Cellsim.Sim.scheme_to_string s.Cellsim.Sim.scheme)
        (float_of_int s.Cellsim.Sim.cells_paged /. calls)
        (s.Cellsim.Sim.expected_paging /. calls)
        (float_of_int s.Cellsim.Sim.rounds_used /. calls)
        (100.0 *. float_of_int s.Cellsim.Sim.cells_paged /. blanket_cells))
    result.Cellsim.Sim.per_scheme;

  print_newline ();
  print_endline "Notes:";
  print_endline "- blanket = page each participant's whole location area at";
  print_endline "  once (the deployed GSM MAP / IS-41 behaviour);";
  print_endline "- selective-dK = the paper's heuristic with K rounds, fed by";
  print_endline "  decayed-count location profiles learned from reports and";
  print_endline "  previous successful pages;";
  print_endline "- all schemes see identical mobility, traffic and observation";
  print_endline "  history, so columns are directly comparable."
