(* Walk-through of the §4.3 lower-bound instance in exact arithmetic.

   The instance: m = 2 devices, c = 8 cells, d = 2 rounds.
     p(1,1) = 2/7, p(2,1) = p(1,7) = p(1,8) = 0, all else 1/7.
   The paper: the optimal strategy pages cells 2..6 first and achieves
   expected paging 317/49, while the cell-weight heuristic pages cells
   1..5 first and achieves 320/49 — a 320/317 performance gap.

   Run with: dune exec examples/lower_bound.exe *)

module Q = Numeric.Rational

open Confcall

let () =
  let s = Q.of_ints 1 7 and z = Q.zero in
  let p1 = [| Q.of_ints 2 7; s; s; s; s; s; z; z |] in
  let p2 = [| z; s; s; s; s; s; s; s |] in
  let exact = Instance.Exact.create ~d:2 [| p1; p2 |] in
  print_endline "The Section 4.3 instance (m = 2, c = 8, d = 2):";
  Array.iteri
    (fun i row ->
      Printf.printf "  device %d: %s\n" (i + 1)
        (String.concat " " (Array.to_list (Array.map Q.to_string row))))
    exact.Instance.Exact.p;
  print_newline ();

  (* Exact optimum by exhaustive search over all two-round strategies. *)
  let opt_strategy, opt_ep = Optimal.exhaustive_exact exact in
  Printf.printf "Optimal strategy   : %s\n" (Strategy.to_string opt_strategy);
  Printf.printf "Optimal EP         : %s = %.6f\n" (Q.to_string opt_ep)
    (Q.to_float opt_ep);

  (* The heuristic on the float version of the same instance. *)
  let inst = Instance.Exact.to_float exact in
  let heur = Greedy.solve inst in
  let heur_ep = Strategy.expected_paging_exact exact heur.Order_dp.strategy in
  Printf.printf "Heuristic strategy : %s\n"
    (Strategy.to_string heur.Order_dp.strategy);
  Printf.printf "Heuristic EP       : %s = %.6f\n" (Q.to_string heur_ep)
    (Q.to_float heur_ep);

  let ratio = Q.div heur_ep opt_ep in
  Printf.printf "Performance ratio  : %s = %.6f\n" (Q.to_string ratio)
    (Q.to_float ratio);
  print_newline ();
  assert (Q.equal opt_ep (Q.of_ints 317 49));
  assert (Q.equal heur_ep (Q.of_ints 320 49));
  assert (Q.equal ratio (Q.of_ints 320 317));
  print_endline "Verified exactly: OPT = 317/49, heuristic = 320/49,";
  print_endline "ratio = 320/317 — the paper's lower bound on the heuristic's";
  Printf.printf "performance ratio (vs the e/(e-1) = %.6f upper bound).\n"
    Greedy.approximation_factor;
  print_newline ();

  (* Why the heuristic misses the optimum: cell weights. *)
  print_endline "Cell weights (expected number of devices per cell):";
  for j = 0 to 7 do
    Printf.printf "  cell %d: %s\n" (j + 1)
      (Q.to_string (Instance.Exact.cell_weight exact j))
  done;
  print_endline "Cells 1..6 tie at 2/7; the heuristic breaks ties by index";
  print_endline "and pages {1..5} first, but {2..6} is strictly better:";
  print_endline "cell 1 is worthless for device 2 (probability 0 there).";
  print_newline ();
  (* The paper's remark: a tiny perturbation forces the same choice
     without relying on tie-breaking. *)
  let rng = Prob.Rng.create ~seed:3 in
  let perturbed =
    Instance.create ~d:2
      (Array.map
         (fun row ->
           Prob.Dist.perturb rng ~eps:1e-9 (Prob.Dist.clamp_positive row))
         inst.Instance.p)
  in
  let h2 = Greedy.solve perturbed in
  Printf.printf
    "Perturbed by 1e-9 (positive probabilities): heuristic EP = %.6f\n"
    h2.Order_dp.expected_paging
