(* A guided tour of the Section 3 NP-hardness machinery.

   The paper's chain:  Partition -> Quasipartition1 -> Conference Call.
   This example runs the chain on concrete instances and prints the
   exact rational quantities involved, plus the Section 3.2 parameters
   (alpha_k, group fractions r_j, mass fractions x_j, modulus M) for
   several (m, d).

   Run with: dune exec examples/hardness_tour.exe *)

module Q = Numeric.Rational
module B = Numeric.Bigint

open Confcall

let show_chain sizes =
  Printf.printf "Partition instance [%s]:\n"
    (String.concat "; " (Array.to_list (Array.map string_of_int sizes)));
  (match Hardness.partition_brute sizes with
   | Some p ->
     Printf.printf "  brute force: positive, subset indices {%s}\n"
       (String.concat " " (List.map string_of_int p))
   | None -> print_endline "  brute force: negative");
  let qp1 = Hardness.partition_to_qp1 sizes in
  let c = Array.length qp1 in
  Printf.printf "  reduced to Quasipartition1 with %d rational sizes\n" c;
  Printf.printf "  reduced to Conference Call with m=2, d=2, c=%d\n" c;
  let lb = Hardness.qp1_lower_bound ~c in
  Printf.printf "  Lemma 3.2 target LB = %s = %.6f\n" (Q.to_string lb)
    (Q.to_float lb);
  let inst = Hardness.qp1_to_conference qp1 in
  let strategy, ep = Optimal.exhaustive_exact inst in
  Printf.printf "  optimal strategy %s with EP = %s\n"
    (Strategy.to_string strategy) (Q.to_string ep);
  let answer = Q.equal ep lb in
  Printf.printf "  EP %s LB  =>  Partition is %s\n\n"
    (if answer then "=" else ">")
    (if answer then "POSITIVE" else "NEGATIVE")

let () =
  print_endline "== The reduction chain on two Partition instances ==\n";
  show_chain [| 1; 2; 3; 4 |];
  show_chain [| 1; 1; 1; 100 |];

  print_endline "== Section 3.2 parameters (exact rationals) ==";
  print_endline
    "alpha_1 = m/(m+1), alpha_k = m/(m+1-alpha_{k-1}^m);\n\
     r_j = optimal group-size fractions, x_j = per-group mass fractions,\n\
     M = lcm of the r_j denominators (the Multipartition modulus).\n";
  List.iter
    (fun (m, d) ->
      let p = Hardness.multipartition_params ~m ~d in
      Printf.printf "m=%d d=%d:\n" m d;
      Printf.printf "  alphas: %s\n"
        (String.concat ", "
           (Array.to_list (Array.map Q.to_string p.Hardness.alphas)));
      Printf.printf "  r:      %s\n"
        (String.concat ", "
           (Array.to_list (Array.map Q.to_string p.Hardness.rs)));
      Printf.printf "  x:      %s\n"
        (String.concat ", "
           (Array.to_list (Array.map Q.to_string p.Hardness.xs)));
      Printf.printf "  M = %s\n\n" (B.to_string p.Hardness.modulus))
    [ 2, 2; 2, 3; 3, 2; 3, 3; 2, 4 ];

  print_endline "== Lemma 3.1: the function behind the reduction ==";
  let c = 9 in
  Printf.printf
    "f(x, y) = (c - y)((1 - 3/(2c))y + x)(y - x) for c = %d peaks at\n\
     (x, y) = (1/2, 2c/3) with value %s (= 4c^3/27 - 2c^2/9 + c/12):\n"
    c
    (Q.to_string (Numeric.Lemma_bounds.f_lemma31_max ~c));
  List.iter
    (fun (x, y) ->
      Printf.printf "  f(%.2f, %.2f) = %10.4f\n" x y
        (Numeric.Lemma_bounds.f_lemma31 ~c x y))
    [ 0.5, 6.0; 0.5, 5.0; 0.5, 7.0; 0.3, 6.0; 0.7, 6.0; 0.0, 4.5 ]
