(* Solving at metropolitan scale.

   The O(d·c²) dynamic program (Theorem 4.8) handles thousands of cells
   directly; for location areas with tens of thousands of cells we
   restrict cut points to block boundaries (the reported expectation
   stays exact for the returned strategy). This example sizes both, and
   shows the alternative solvers on a mid-size instance.

   Run with: dune exec examples/large_scale.exe *)

open Confcall

let time f =
  let t0 = Sys.time () in
  let result = f () in
  result, Sys.time () -. t0

let () =
  let rng = Prob.Rng.create ~seed:23 in

  print_endline "== Full DP vs coarse DP ==";
  Printf.printf "%10s %8s %14s %10s\n" "cells" "block" "EP" "time(s)";
  List.iter
    (fun (c, block) ->
      let inst = Instance.random_zipf rng ~s:1.05 ~m:2 ~c ~d:4 in
      let order = Instance.weight_order inst in
      (if c <= 4096 then begin
         let full, t = time (fun () -> Order_dp.solve inst ~order) in
         Printf.printf "%10d %8s %14.1f %10.3f\n" c "full"
           full.Order_dp.expected_paging t
       end);
      let coarse, t =
        time (fun () -> Order_dp.solve_coarse ~block inst ~order)
      in
      Printf.printf "%10d %8d %14.1f %10.3f\n" c block
        coarse.Order_dp.expected_paging t)
    [ 1024, 16; 8192, 64; 65536, 256 ];

  print_endline "\n== Solver comparison at c = 30 (m = 2, d = 3) ==";
  let inst = Instance.random_zipf rng ~s:1.0 ~m:2 ~c:30 ~d:3 in
  let lb = Bounds.lower_bound inst in
  let entries =
    [
      "page-all (blanket)", (fun () -> 30.0);
      ( "greedy (Thm 4.8)",
        fun () -> (Greedy.solve inst).Order_dp.expected_paging );
      ( "local search",
        fun () -> (Local_search.hill_climb inst).Local_search.expected_paging );
      ( "annealing",
        fun () ->
          (Local_search.solve inst (Prob.Rng.create ~seed:7))
            .Local_search.expected_paging );
      "QAP route (Sec 5.1)", (fun () -> snd (Qap.solve_conference_m2 inst));
    ]
  in
  Printf.printf "%-22s %12s %10s %16s\n" "solver" "EP" "time(s)"
    "above lower bound";
  List.iter
    (fun (name, f) ->
      let ep, t = time f in
      Printf.printf "%-22s %12.3f %10.3f %15.2f%%\n" name ep t
        (100.0 *. (ep -. lb) /. lb))
    entries;
  Printf.printf "%-22s %12.3f\n" "certified lower bound" lb;
  print_endline
    "\nThe certified bound shows how much optimality headroom remains\n\
     even where exhaustive search is out of reach (2^30 strategies)."
