(* Beyond the expectation: the paging-cost distribution.

   The Conference Call objective is E[cells paged], but the full cost
   distribution is closed-form: the search stops after round r with
   probability F_r − F_{r−1}, having paged b_r cells. Two strategies
   with similar means can have very different tails — which matters when
   the paging channel is the bottleneck.

   Run with: dune exec examples/distribution_view.exe *)

open Confcall

let bar p = String.concat "" (List.init (int_of_float (60.0 *. p)) (fun _ -> "#"))

let show name inst strategy =
  let dist = Analysis.cost_distribution inst strategy in
  Printf.printf "%s\n  mean %.2f  sd %.2f  p50 %.0f  p90 %.0f  p99 %.0f\n" name
    dist.Analysis.mean dist.Analysis.stddev
    (Analysis.quantile dist 0.5)
    (Analysis.quantile dist 0.9)
    (Analysis.quantile dist 0.99);
  Array.iteri
    (fun i p ->
      Printf.printf "  cost %3.0f  %.4f %s\n" dist.Analysis.support.(i) p
        (bar p))
    dist.Analysis.probabilities;
  print_newline ()

let () =
  let rng = Prob.Rng.create ~seed:9 in
  let inst = Instance.random_zipf rng ~s:1.2 ~m:2 ~c:24 ~d:4 in

  let greedy = (Greedy.solve inst).Order_dp.strategy in
  show "greedy (4 rounds)" inst greedy;

  (* A cautious alternative: front-load more cells. Lower tail spread,
     higher mean — the distribution view makes the trade visible. *)
  let sizes = Strategy.sizes greedy in
  let order = Greedy.order inst in
  let cautious =
    let total = Array.fold_left ( + ) 0 sizes in
    let first = Stdlib.min (total - 3) (sizes.(0) * 2) in
    let rest = total - first in
    let spread = Array.make 3 (rest / 3) in
    spread.(0) <- spread.(0) + (rest mod 3);
    Strategy.of_sizes ~order ~sizes:(Array.append [| first |] spread)
  in
  show "front-loaded (4 rounds)" inst cautious;

  let blanket = Strategy.page_all inst.Instance.c in
  show "blanket (1 round)" inst blanket;

  print_endline "The delay/paging frontier for this instance:";
  Printf.printf "%6s %12s %12s\n" "d" "E[rounds]" "EP";
  Array.iteri
    (fun i (rounds, ep) ->
      Printf.printf "%6d %12.3f %12.2f\n" (i + 1) rounds ep)
    (Analysis.delay_paging_frontier inst ~max_d:8)
