(* The delay/paging tradeoff that motivates the whole problem (§1.1):
   more paging rounds allow fewer cells paged in expectation. This
   example sweeps the delay budget d for conferences of different sizes
   over a Zipf-profiled 64-cell location area and prints the curve.

   Run with: dune exec examples/delay_tradeoff.exe *)

open Confcall

let () =
  let c = 64 in
  let rng = Prob.Rng.create ~seed:7 in
  print_endline "Expected cells paged vs delay budget (c = 64, Zipf profiles)";
  print_endline "";
  Printf.printf "%4s" "d";
  List.iter (fun m -> Printf.printf "%12s" (Printf.sprintf "m=%d" m)) [ 1; 2; 4; 8 ];
  print_newline ();
  let instances =
    List.map
      (fun m -> m, Instance.random_zipf rng ~s:1.1 ~m ~c ~d:1)
      [ 1; 2; 4; 8 ]
  in
  List.iter
    (fun d ->
      Printf.printf "%4d" d;
      List.iter
        (fun (_, base) ->
          let inst = Instance.with_d base d in
          let ep = (Greedy.solve inst).Order_dp.expected_paging in
          Printf.printf "%12.2f" ep)
        instances;
      print_newline ())
    [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 16 ];
  print_newline ();
  print_endline "Reading the table:";
  print_endline "- d = 1 is blanket paging: all 64 cells, whatever m is.";
  print_endline "- each extra round buys a large saving at first, then less;";
  print_endline "- bigger conferences (m) are intrinsically harder: all m";
  print_endline "  devices must fall in the paged prefix for the search to stop.";
  print_newline ();

  (* The uniform single-device closed form from §1.1 for comparison. *)
  print_endline "Uniform single device (closed form, c = 64):";
  List.iter
    (fun d ->
      Printf.printf "  d=%-2d  EP = %.1f%s\n" d
        (Single.uniform_ep ~c ~d)
        (if d = 2 then "   <- the paper's 3c/4 example" else ""))
    [ 1; 2; 4; 8 ]
