(* Tests for reporting policies and the extended simulator features
   (diffusion estimator, busy users). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let hex () = Cellsim.Hex.create ~rows:6 ~cols:6
let areas h = Cellsim.Location_area.grid h ~block_rows:3 ~block_cols:3

(* -------------------- Reporting policies -------------------- *)

let test_area_policy_reports_on_crossing () =
  let h = hex () in
  let a = areas h in
  let c00 = Cellsim.Hex.index h ~row:0 ~col:0 in
  let c01 = Cellsim.Hex.index h ~row:0 ~col:1 in
  let c03 = Cellsim.Hex.index h ~row:0 ~col:3 in
  let st = Cellsim.Reporting.init Cellsim.Reporting.Area ~cell:c00 ~now:0.0 in
  check bool_t "within area" false
    (Cellsim.Reporting.on_move Cellsim.Reporting.Area ~areas:a ~hex:h st
       ~from_cell:c00 ~to_cell:c01 ~now:1.0);
  check bool_t "crossing" true
    (Cellsim.Reporting.on_move Cellsim.Reporting.Area ~areas:a ~hex:h st
       ~from_cell:c01 ~to_cell:c03 ~now:2.0);
  check int_t "reset to new cell" c03 (Cellsim.Reporting.last_reported_cell st)

let test_movement_policy_counts_moves () =
  let h = hex () in
  let a = areas h in
  let policy = Cellsim.Reporting.Movement 3 in
  let st = Cellsim.Reporting.init policy ~cell:0 ~now:0.0 in
  let step from_cell to_cell now =
    Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell ~to_cell ~now
  in
  check bool_t "move 1" false (step 0 1 1.0);
  check bool_t "stay doesn't count" false (step 1 1 2.0);
  check bool_t "move 2" false (step 1 2 3.0);
  check bool_t "move 3 reports" true (step 2 3 4.0);
  check int_t "reset" 3 (Cellsim.Reporting.last_reported_cell st)

let test_distance_policy_reports_at_distance () =
  let h = hex () in
  let a = areas h in
  let policy = Cellsim.Reporting.Distance 2 in
  let start = Cellsim.Hex.index h ~row:2 ~col:2 in
  let st = Cellsim.Reporting.init policy ~cell:start ~now:0.0 in
  (* Walk east: distance 1 then 2. *)
  let c1 = Cellsim.Hex.index h ~row:2 ~col:3 in
  let c2 = Cellsim.Hex.index h ~row:2 ~col:4 in
  check bool_t "distance 1" false
    (Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell:start
       ~to_cell:c1 ~now:1.0);
  check bool_t "distance 2 reports" true
    (Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell:c1
       ~to_cell:c2 ~now:2.0)

let test_time_policy_reports_periodically () =
  let h = hex () in
  let a = areas h in
  let policy = Cellsim.Reporting.Time 2 in
  let st = Cellsim.Reporting.init policy ~cell:5 ~now:0.0 in
  check bool_t "tick 1" false
    (Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell:5
       ~to_cell:5 ~now:1.0);
  check bool_t "tick 2 reports even when parked" true
    (Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell:5
       ~to_cell:5 ~now:2.0)

let test_uncertainty_contains_truth_random_walks () =
  (* The key invariant, fuzzed: walk randomly under each policy; the
     true cell must always be inside the uncertainty set. *)
  let h = hex () in
  let a = areas h in
  let rng = Prob.Rng.create ~seed:301 in
  List.iter
    (fun policy ->
      for _ = 1 to 20 do
        let cell = ref (Prob.Rng.int rng (Cellsim.Hex.cells h)) in
        let st = Cellsim.Reporting.init policy ~cell:!cell ~now:0.0 in
        for t = 1 to 50 do
          let from_cell = !cell in
          let neighbors =
            Array.of_list (from_cell :: Cellsim.Hex.neighbors h from_cell)
          in
          let to_cell = Prob.Rng.choose rng neighbors in
          cell := to_cell;
          ignore
            (Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell
               ~to_cell ~now:(float_of_int t));
          let u =
            Cellsim.Reporting.uncertainty policy ~areas:a ~hex:h st
              ~now:(float_of_int t)
          in
          if not (Array.mem to_cell u) then
            Alcotest.failf "%s: true cell escaped the uncertainty set"
              (Cellsim.Reporting.to_string policy)
        done
      done)
    [
      Cellsim.Reporting.Area;
      Cellsim.Reporting.Movement 2;
      Cellsim.Reporting.Movement 5;
      Cellsim.Reporting.Distance 2;
      Cellsim.Reporting.Distance 4;
      Cellsim.Reporting.Time 3;
    ]

let test_observe_page_shrinks_uncertainty () =
  let h = hex () in
  let a = areas h in
  let policy = Cellsim.Reporting.Time 10 in
  let st = Cellsim.Reporting.init policy ~cell:0 ~now:0.0 in
  for t = 1 to 5 do
    ignore
      (Cellsim.Reporting.on_move policy ~areas:a ~hex:h st ~from_cell:0
         ~to_cell:0 ~now:(float_of_int t))
  done;
  let before =
    Array.length (Cellsim.Reporting.uncertainty policy ~areas:a ~hex:h st ~now:5.0)
  in
  Cellsim.Reporting.observe_page st ~cell:0 ~now:5.0;
  let after =
    Array.length (Cellsim.Reporting.uncertainty policy ~areas:a ~hex:h st ~now:5.0)
  in
  check bool_t "page collapses uncertainty" true (after < before);
  check int_t "down to one cell" 1 after

let test_policy_validation () =
  check bool_t "bad movement" true
    (Result.is_error (Cellsim.Reporting.validate (Cellsim.Reporting.Movement 0)));
  check bool_t "area fine" true
    (Cellsim.Reporting.validate Cellsim.Reporting.Area = Ok ())

(* -------------------- Simulator with new features -------------------- *)

let base_config schemes reporting call_duration =
  let h = Cellsim.Hex.create ~rows:6 ~cols:6 in
  {
    Cellsim.Sim.hex = h;
    mobility = Cellsim.Mobility.random_walk h ~stay:0.4;
    areas = Cellsim.Location_area.grid h ~block_rows:3 ~block_cols:3;
    users = 20;
    traffic =
      Cellsim.Traffic.create ~rate:0.4 ~group_size:(Cellsim.Traffic.Fixed 2)
        ~users:20;
    schemes;
    reporting;
    profile_decay = 0.9;
    profile_smoothing = 0.05;
    mobility_schedule = [];
    call_duration;
    track_ongoing = true;
    faults = None;
    estimator = Cellsim.Sim.Live;
    aging = None;
    duration = 150.0;
    seed = 99;
  }

let test_sim_runs_under_each_policy () =
  List.iter
    (fun reporting ->
      let config =
        base_config
          [ Cellsim.Sim.Blanket; Cellsim.Sim.Selective 2 ]
          reporting 0.0
      in
      let r = Cellsim.Sim.run config in
      check bool_t
        (Cellsim.Reporting.to_string reporting ^ " calls")
        true
        (r.Cellsim.Sim.total_calls > 5);
      (* Blanket pages at least as much as selective under any policy. *)
      match r.Cellsim.Sim.per_scheme with
      | [ blanket; selective ] ->
        check bool_t "selective <= blanket" true
          (selective.Cellsim.Sim.cells_paged
          <= blanket.Cellsim.Sim.cells_paged)
      | _ -> Alcotest.fail "two schemes expected")
    [
      Cellsim.Reporting.Area;
      Cellsim.Reporting.Movement 3;
      Cellsim.Reporting.Distance 3;
      Cellsim.Reporting.Time 4;
    ]

let test_tighter_reporting_means_more_updates_less_paging () =
  let run k =
    let r =
      Cellsim.Sim.run
        (base_config [ Cellsim.Sim.Blanket ] (Cellsim.Reporting.Movement k) 0.0)
    in
    let b = List.hd r.Cellsim.Sim.per_scheme in
    ( r.Cellsim.Sim.updates,
      float_of_int b.Cellsim.Sim.cells_paged
      /. float_of_int (Stdlib.max 1 b.Cellsim.Sim.calls) )
  in
  let updates1, paging1 = run 1 in
  let updates6, paging6 = run 6 in
  check bool_t "k=1 reports more" true (updates1 > updates6);
  check bool_t "k=1 pages fewer cells" true (paging1 < paging6)

let test_diffuse_scheme_beats_counts_under_time_policy () =
  (* Under a slack reporting policy the decayed-count profile is badly
     stale; diffusing the last known cell through the mobility model is
     the better belief. Compare expected paging per call. *)
  let config =
    base_config
      [ Cellsim.Sim.Selective 3; Cellsim.Sim.Selective_diffuse 3 ]
      (Cellsim.Reporting.Time 6) 0.0
  in
  let r = Cellsim.Sim.run config in
  match r.Cellsim.Sim.per_scheme with
  | [ counts; diffuse ] ->
    let per_call s =
      float_of_int s.Cellsim.Sim.cells_paged
      /. float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls)
    in
    check bool_t "diffusion estimator pages fewer true cells" true
      (per_call diffuse <= per_call counts +. 0.5)
  | _ -> Alcotest.fail "two schemes expected"

let test_busy_users_reduce_paging () =
  (* With call durations, participants are tracked during calls and
     conferences among recently-seen users are cheap. *)
  let off = Cellsim.Sim.run (base_config [ Cellsim.Sim.Selective 2 ] Cellsim.Reporting.Area 0.0) in
  let on = Cellsim.Sim.run (base_config [ Cellsim.Sim.Selective 2 ] Cellsim.Reporting.Area 6.0) in
  check bool_t "some calls skipped when lines are busy" true
    (on.Cellsim.Sim.skipped_calls > 0);
  check bool_t "no skips without durations" true
    (off.Cellsim.Sim.skipped_calls = 0);
  let per_call r =
    let s = List.hd r.Cellsim.Sim.per_scheme in
    s.Cellsim.Sim.expected_paging /. float_of_int (Stdlib.max 1 s.Cellsim.Sim.calls)
  in
  check bool_t "ongoing-call tracking lowers expected paging" true
    (per_call on < per_call off)

let test_sim_determinism_with_new_features () =
  let config =
    base_config
      [ Cellsim.Sim.Blanket; Cellsim.Sim.Selective_diffuse 2 ]
      (Cellsim.Reporting.Distance 3) 4.0
  in
  let a = Cellsim.Sim.run config and b = Cellsim.Sim.run config in
  check int_t "same calls" a.Cellsim.Sim.total_calls b.Cellsim.Sim.total_calls;
  check int_t "same skips" a.Cellsim.Sim.skipped_calls b.Cellsim.Sim.skipped_calls;
  List.iter2
    (fun x y ->
      check int_t "same cells" x.Cellsim.Sim.cells_paged y.Cellsim.Sim.cells_paged)
    a.Cellsim.Sim.per_scheme b.Cellsim.Sim.per_scheme

(* -------------------- Scenarios -------------------- *)

let test_scenarios_run_and_are_deterministic () =
  List.iter
    (fun (name, build) ->
      let a = Cellsim.Sim.run (build ?seed:(Some 7) ()) in
      let b = Cellsim.Sim.run (build ?seed:(Some 7) ()) in
      check bool_t (name ^ " produces calls") true (a.Cellsim.Sim.total_calls > 10);
      check int_t (name ^ " deterministic") a.Cellsim.Sim.total_calls
        b.Cellsim.Sim.total_calls;
      List.iter2
        (fun x y ->
          check int_t (name ^ " cells stable") x.Cellsim.Sim.cells_paged
            y.Cellsim.Sim.cells_paged)
        a.Cellsim.Sim.per_scheme b.Cellsim.Sim.per_scheme)
    Cellsim.Scenario.all

let test_mobility_schedule_changes_behaviour () =
  (* The same seed with and without a drift schedule must diverge. *)
  let base = Cellsim.Scenario.suburb ?seed:(Some 11) () in
  let hex = base.Cellsim.Sim.hex in
  let drift = Cellsim.Mobility.drift_walk hex ~stay:0.1 ~east_bias:6.0 in
  let scheduled =
    { base with Cellsim.Sim.mobility_schedule = [ 0.0, drift ] }
  in
  let a = Cellsim.Sim.run base and b = Cellsim.Sim.run scheduled in
  check bool_t "schedules diverge" true
    (a.Cellsim.Sim.updates <> b.Cellsim.Sim.updates
    || a.Cellsim.Sim.moves <> b.Cellsim.Sim.moves)

let test_commuter_day_has_three_phases () =
  let config = Cellsim.Scenario.commuter_day () in
  check int_t "three regimes" 3
    (List.length config.Cellsim.Sim.mobility_schedule)

let () =
  Alcotest.run "reporting"
    [
      ( "policies",
        [
          Alcotest.test_case "area crossing" `Quick
            test_area_policy_reports_on_crossing;
          Alcotest.test_case "movement counting" `Quick
            test_movement_policy_counts_moves;
          Alcotest.test_case "distance threshold" `Quick
            test_distance_policy_reports_at_distance;
          Alcotest.test_case "time periodic" `Quick
            test_time_policy_reports_periodically;
          Alcotest.test_case "uncertainty invariant (fuzzed)" `Slow
            test_uncertainty_contains_truth_random_walks;
          Alcotest.test_case "page shrinks uncertainty" `Quick
            test_observe_page_shrinks_uncertainty;
          Alcotest.test_case "validation" `Quick test_policy_validation;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "runs under each policy" `Slow
            test_sim_runs_under_each_policy;
          Alcotest.test_case "reporting/paging tradeoff" `Slow
            test_tighter_reporting_means_more_updates_less_paging;
          Alcotest.test_case "diffusion estimator" `Slow
            test_diffuse_scheme_beats_counts_under_time_policy;
          Alcotest.test_case "busy users" `Slow test_busy_users_reduce_paging;
          Alcotest.test_case "determinism" `Slow
            test_sim_determinism_with_new_features;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "run + deterministic" `Slow
            test_scenarios_run_and_are_deterministic;
          Alcotest.test_case "schedule changes behaviour" `Slow
            test_mobility_schedule_changes_behaviour;
          Alcotest.test_case "commuter phases" `Quick
            test_commuter_day_has_three_phases;
        ] );
    ]
