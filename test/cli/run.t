The CLI built by this repository is exercised end to end. The exe path
is stable relative to the build tree.

  $ CLI=../../bin/confcall_cli.exe

Generating an instance produces a parseable header and c probabilities
per device:

  $ $CLI generate -m 2 -c 6 -d 2 --dist uniform | head -1
  2 6 2

Solving the uniform instance with the greedy heuristic finds the
half/half split of the 3c/4 example:

  $ $CLI generate -m 1 -c 8 -d 2 --dist uniform | $CLI solve - --solver greedy
  strategy: {0 1 2 3}|{4 5 6 7}
  expected paging: 6.000000 (optimal)

The exact solver agrees on small instances:

  $ $CLI generate -m 2 -c 6 -d 2 --seed 3 > inst.txt
  $ $CLI solve inst.txt --solver exhaustive | tail -1
  expected paging: 3.833664 (optimal)

Comparing solvers prints one row per method plus the certified bound:

  $ $CLI compare inst.txt | head -2
  m=2 c=6 d=2
  solver                 EP    exact

Evaluating an explicit strategy works and rejects malformed input:

  $ $CLI evaluate inst.txt --strategy "0 1 2|3 4 5" | head -1
  expected paging: 5.936779

The find-any objective never costs more than find-all:

  $ ALL=$($CLI solve inst.txt --objective all | sed -n 's/expected paging: \([0-9.]*\).*/\1/p')
  $ ANY=$($CLI solve inst.txt --objective any | sed -n 's/expected paging: \([0-9.]*\).*/\1/p')
  $ awk -v a="$ALL" -v b="$ANY" 'BEGIN { exit !(b <= a) }'

The hardness demo decides a classic Partition instance through the
Conference Call oracle:

  $ $CLI hardness --sizes 1,2,3,4 | grep 'decided via'
  decided via Conference Call oracle (m=2, d=2, c=12): positive

The simulator runs deterministically:

  $ $CLI simulate --users 16 --duration 50 --seed 5 | head -1 > a.txt
  $ $CLI simulate --users 16 --duration 50 --seed 5 | head -1 > b.txt
  $ cmp a.txt b.txt

The distribution analyzer prints a closed-form cost distribution:

  $ $CLI analyze inst.txt --max-d 3 | head -2
  strategy: {3 4 5}|{0 1 2}
  cost distribution: mean 3.834 sd 1.344 p50 3 p90 6 p99 6

Scenario presets run end to end:

  $ $CLI simulate --scenario busy-campus --seed 9 | head -1
  duration 300, 7186 moves, 2529 reports, 247 calls (222 skipped)

Fault flags leave the headline counters alone (faults touch paging, not
the traffic or mobility streams) and surface robustness counters:

  $ $CLI simulate --users 16 --duration 50 --seed 5 | head -1 > clean.txt
  $ $CLI simulate --users 16 --duration 50 --seed 5 --detect-q 0.8 \
  >   --retry escalate:1:blanket | head -1 > faulty.txt
  $ cmp clean.txt faulty.txt
  $ $CLI simulate --users 16 --duration 50 --seed 5 --detect-q 0.8 \
  >   --retry escalate:1:blanket | grep -c 'retries'
  3

A malformed retry spec is rejected with a parse error:

  $ $CLI simulate --retry sometimes 2>&1 | head -1
  confcall: option '--retry': retry must be none | repeat:<cycles>[:<backoff>]

A residence law turns on the semi-Markov aging layer: ground truth
moves by the dwell-law walk, aged schemes join the lineup, and the
re-profiling trigger reports its polls:

  $ $CLI simulate --users 16 --duration 50 --seed 5 --residence exp:6 \
  >   --aged --reprofile-age 4 | head -2
  duration 50, 142 moves, 45 reports, 18 calls (0 skipped)
  aging: 24 re-profiling polls

  $ $CLI simulate --users 16 --duration 50 --seed 5 --residence exp:6 \
  >   --aged --json | grep -c '"polls"'
  1

A malformed residence law is rejected with a parse error, and the
age-dependent flags refuse to run without one:

  $ $CLI simulate --residence weibull:2 2>&1 | head -2
  confcall: option '--residence': residence must be exp:<mean> |
            pareto:<alpha>:<scale> | zipf:<s>:<cutoff>

  $ $CLI simulate --aged 2> err.txt; echo "exit=$?"; cat err.txt
  exit=2
  confcall: error: --aged, --age-robust and --reprofile-age require --residence

JSON output is valid and carries the robustness block:

  $ $CLI simulate --users 16 --duration 50 --seed 5 --json | head -c 16
  {"duration": 50,
The solve JSON carries the per-call minor-heap allocation figure from
the flat hot path (alloc_words varies with arena warmup, so only its
presence and integer-ness are locked here; the zero-allocation
steady-state guarantee itself is gated by test_flat and bench e30):

  $ $CLI generate -m 1 -c 8 -d 2 --dist uniform | $CLI solve - --json \
  >   | sed 's/"alloc_words": [0-9][0-9]*/"alloc_words": N/'
  {"solver": "greedy", "strategy": [[0, 1, 2, 3], [4, 5, 6, 7]], "expected_paging": 6, "exact": true, "expected_rounds": 1.5, "lower_bound": 6, "page_all_cost": 8, "alloc_words": N}

Errors leave stdout, land on stderr and exit non-zero: a malformed
instance file, an inapplicable method, and an unknown solver name.

  $ echo garbage > bad.txt
  $ $CLI solve bad.txt 2> err.txt; echo "exit=$?"; cat err.txt
  exit=2
  confcall: error: Instance.of_string: missing header

A degenerate device (or cell) count is rejected at the parse boundary
with an error naming the axis — solver preconditions assume m >= 1 and
c >= 1:

  $ printf '0 4 2\n' > nodev.txt
  $ $CLI solve nodev.txt 2> err.txt; echo "exit=$?"; cat err.txt
  exit=2
  confcall: error: Instance.of_string: no devices (m = 0, need m >= 1)
  $ printf '2 0 1\n' > nocell.txt
  $ $CLI solve nocell.txt 2> err.txt; echo "exit=$?"; cat err.txt
  exit=2
  confcall: error: Instance.of_string: no cells (c = 0, need c >= 1)
  $ $CLI generate -m 2 -c 6 -d 3 --seed 3 > inst3.txt
  $ $CLI solve inst3.txt --solver bnb 2> err.txt; echo "exit=$?"; cat err.txt
  exit=2
  confcall: error: Optimal.branch_and_bound_d2: requires d = 2
  $ $CLI solve inst.txt --solver nonsense > /dev/null 2> err.txt; echo "exit=$?"
  exit=124
  $ head -1 err.txt
  confcall: option '--solver': unknown solver "nonsense"

A budget enables the runner: the report names every stage, the winner
line is present, and a strategy is always returned even when the exact
stage times out.

  $ $CLI solve inst.txt --budget-ms 500 --chain fast | grep -c 'winner:'
  1
  $ $CLI generate -m 3 -c 60 -d 4 --seed 7 > big.txt
  $ $CLI solve big.txt --budget-ms 50 --chain default | grep 'exact' | grep -c 'timeout'
  1
  $ $CLI solve big.txt --budget-ms 50 --chain default | grep -c 'strategy:'
  1
  $ $CLI solve big.txt --budget-ms 50 --json | grep -c '"winner"'
  1

An invalid chain is a usage error:

  $ $CLI solve inst.txt --chain greedy,bogus 2>&1 | head -1 | grep -c bogus
  1

The journaled sweep is resumable: a second run with --resume skips the
completed items and appends only the new ones, and the journal ends up
byte-identical to an uninterrupted run.

  $ $CLI sweep --seeds 1,2 -c 10 --journal j.tsv | sed 's/\t.*//'
  ran  find-all/m3/c10/d3/simplex/seed1
  ran  find-all/m3/c10/d3/simplex/seed2
  journal j.tsv: 2 items
  $ $CLI sweep --seeds 1,2 -c 10 --journal j.tsv 2>&1; echo "exit=$?"
  confcall: error: journal j.tsv already exists; pass --resume to continue it
  exit=2
  $ $CLI sweep --seeds 1,2,3 -c 10 --journal j.tsv --resume | sed 's/\t.*//'
  skip find-all/m3/c10/d3/simplex/seed1
  skip find-all/m3/c10/d3/simplex/seed2
  ran  find-all/m3/c10/d3/simplex/seed3
  journal j.tsv: 3 items
  $ $CLI sweep --seeds 1,2,3 -c 10 --journal j2.tsv > /dev/null
  $ cmp j.tsv j2.tsv

A malformed cell index in an explicit strategy is a usage error with a
named flag, not a backtrace:

  $ $CLI evaluate inst.txt --strategy "0 1 x|3 4 5" 2>&1; echo "exit=$?"
  confcall: error: --strategy: bad cell index "x" (expected space-separated integers in '|'-separated groups, e.g. "0 1 2|3 4|5")
  exit=2

The parallelism degree is validated at the CLI boundary, whether it
comes from the flag or from the environment:

  $ $CLI solve inst.txt --domains 0 2>&1; echo "exit=$?"
  confcall: error: --domains must be an integer in [1, 256], got 0
  exit=2
  $ CONFCALL_DOMAINS=banana $CLI solve inst.txt 2>&1; echo "exit=$?"
  confcall: error: CONFCALL_DOMAINS must be a positive integer, got "banana"
  exit=2
  $ CONFCALL_DOMAINS=0 $CLI solve inst.txt 2>&1; echo "exit=$?"
  confcall: error: CONFCALL_DOMAINS must be in [1, 256], got 0
  exit=2

Observability: --metrics-out / --trace-out emit the run's counters and
spans, JSON by default and Prometheus text for .prom files, and an
unwritable path is a clean usage error:

  $ $CLI solve inst.txt --chain fast --metrics-out m.json --trace-out t.json > /dev/null
  $ grep -c '"runner_runs":1' m.json
  1
  $ grep -c '"solver_solve_greedy":1' m.json
  1
  $ grep -c '"spans":\[{"id":1,"parent":null,"name":"runner.run"' t.json
  1
  $ $CLI solve inst.txt --chain fast --metrics-out m.prom > /dev/null
  $ grep '# TYPE runner_runs' m.prom
  # TYPE runner_runs counter
  $ $CLI solve inst.txt --metrics-out /dev/null/x.json 2>&1 >/dev/null; echo "exit=$?"
  confcall: error: --metrics-out: /dev/null/x.json: Not a directory
  exit=2

Without the flags nothing is written and the output is unchanged:

  $ $CLI solve inst.txt --solver greedy > plain.txt
  $ $CLI solve inst.txt --solver greedy --metrics-out m2.json > obs.txt
  $ cmp plain.txt obs.txt

The bench harness creates missing --json-out directories and reports
unwritable ones as usage errors:

  $ BENCH=../../bench/main.exe
  $ $BENCH e1 --json-out nested/dir/out > /dev/null
  $ ls nested/dir/out
  BENCH_e1.json
  $ $BENCH e1 --json-out /dev/null/x 2>&1 >/dev/null; echo "exit=$?"
  bench: error: --json-out /dev/null/x: Not a directory
  exit=2

The paging service: a daemon over a Unix socket, the open-loop load
generator driving it, and a SIGTERM that drains rather than kills.
At this gentle load every request is answered and none are shed:

  $ $CLI serve --socket srv.sock --capacity 64 2>serve.log &
  $ SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S srv.sock ] && break; sleep 0.1; done
  $ $CLI loadgen --socket srv.sock -n 40 --rate 200 --json > load.json
  $ grep -c '"sent": 40' load.json
  1
  $ grep -c '"unanswered": 0' load.json
  1
  $ grep -c '"errors": 0' load.json
  1
  $ grep -c '"rejected": 0' load.json
  1
  $ kill -TERM $SERVE_PID
  $ wait $SERVE_PID; echo "exit=$?"
  exit=0
  $ grep -c 'confcall serve: drained (' serve.log
  1

A loadgen pointed at nothing is a clean usage error, not a backtrace:

  $ $CLI loadgen --socket srv.sock -n 1 2>&1; echo "exit=$?"
  confcall: error: loadgen: cannot reach the daemon (No such file or directory)
  exit=2
