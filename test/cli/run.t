The CLI built by this repository is exercised end to end. The exe path
is stable relative to the build tree.

  $ CLI=../../bin/confcall_cli.exe

Generating an instance produces a parseable header and c probabilities
per device:

  $ $CLI generate -m 2 -c 6 -d 2 --dist uniform | head -1
  2 6 2

Solving the uniform instance with the greedy heuristic finds the
half/half split of the 3c/4 example:

  $ $CLI generate -m 1 -c 8 -d 2 --dist uniform | $CLI solve - --solver greedy
  strategy: {0 1 2 3}|{4 5 6 7}
  expected paging: 6.000000 (optimal)

The exact solver agrees on small instances:

  $ $CLI generate -m 2 -c 6 -d 2 --seed 3 > inst.txt
  $ $CLI solve inst.txt --solver exhaustive | tail -1
  expected paging: 3.833664 (optimal)

Comparing solvers prints one row per method plus the certified bound:

  $ $CLI compare inst.txt | head -2
  m=2 c=6 d=2
  solver                 EP    exact

Evaluating an explicit strategy works and rejects malformed input:

  $ $CLI evaluate inst.txt --strategy "0 1 2|3 4 5" | head -1
  expected paging: 5.936779

The find-any objective never costs more than find-all:

  $ ALL=$($CLI solve inst.txt --objective all | sed -n 's/expected paging: \([0-9.]*\).*/\1/p')
  $ ANY=$($CLI solve inst.txt --objective any | sed -n 's/expected paging: \([0-9.]*\).*/\1/p')
  $ awk -v a="$ALL" -v b="$ANY" 'BEGIN { exit !(b <= a) }'

The hardness demo decides a classic Partition instance through the
Conference Call oracle:

  $ $CLI hardness --sizes 1,2,3,4 | grep 'decided via'
  decided via Conference Call oracle (m=2, d=2, c=12): positive

The simulator runs deterministically:

  $ $CLI simulate --users 16 --duration 50 --seed 5 | head -1 > a.txt
  $ $CLI simulate --users 16 --duration 50 --seed 5 | head -1 > b.txt
  $ cmp a.txt b.txt

The distribution analyzer prints a closed-form cost distribution:

  $ $CLI analyze inst.txt --max-d 3 | head -2
  strategy: {3 4 5}|{0 1 2}
  cost distribution: mean 3.834 sd 1.344 p50 3 p90 6 p99 6

Scenario presets run end to end:

  $ $CLI simulate --scenario busy-campus --seed 9 | head -1
  duration 300, 7186 moves, 2529 reports, 247 calls (222 skipped)

Fault flags leave the headline counters alone (faults touch paging, not
the traffic or mobility streams) and surface robustness counters:

  $ $CLI simulate --users 16 --duration 50 --seed 5 | head -1 > clean.txt
  $ $CLI simulate --users 16 --duration 50 --seed 5 --detect-q 0.8 \
  >   --retry escalate:1:blanket | head -1 > faulty.txt
  $ cmp clean.txt faulty.txt
  $ $CLI simulate --users 16 --duration 50 --seed 5 --detect-q 0.8 \
  >   --retry escalate:1:blanket | grep -c 'retries'
  3

A malformed retry spec is rejected with a parse error:

  $ $CLI simulate --retry sometimes 2>&1 | head -1
  confcall: option '--retry': retry must be none | repeat:<cycles>[:<backoff>]

JSON output is valid and carries the robustness block:

  $ $CLI simulate --users 16 --duration 50 --seed 5 --json | head -c 16
  {"duration": 50,
  $ $CLI generate -m 1 -c 8 -d 2 --dist uniform | $CLI solve - --json
  {"solver": "greedy", "strategy": [[0, 1, 2, 3], [4, 5, 6, 7]], "expected_paging": 6, "exact": true, "expected_rounds": 1.5, "lower_bound": 6, "page_all_cost": 8}
