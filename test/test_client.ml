(* The resilient client, in pieces and end to end.

   The pure retry core is pinned directly: decorrelated-jitter bounds
   at the [u] extremes, clamping of out-of-range inputs, and the
   dominance of a server [retry_after_ms] hint over the computed
   curve. Response classification and the forward-compatibility
   contract (unknown fields in any frame type are ignored) are pinned
   against hand-built frames.

   The call state machine is exercised against tiny in-test JSONL
   servers whose handlers script the failure: a dead endpoint forces
   fast failover, an always-rejecting endpoint forces budget/retry
   exhaustion with the best-so-far error surfaced, and a slow-vs-fast
   pair makes the hedge win — with both servers' frame logs proving
   exactly one request went to each and both carried the same
   request_id. *)

module C = Client
module J = Client.Json
module P = Client.Proto
module R = Client.Retry

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- retry: delay bounds ---------------- *)

let test_delay_bounds () =
  let p = { R.max_retries = 3; base_ms = 10.0; cap_ms = 2000.0 } in
  let eps = 1e-9 in
  List.iter
    (fun prev ->
      (* the clamped recurrence the implementation promises *)
      let prev' = Float.max p.R.base_ms (Float.min p.R.cap_ms prev) in
      let hi = Float.min p.R.cap_ms (3.0 *. prev') in
      let lo = Float.min p.R.base_ms hi in
      List.iter
        (fun u ->
          let d = R.next_delay_ms p ~u ~prev_ms:prev ~hint_ms:None in
          check bool_t
            (Printf.sprintf "delay in [lo, hi] (prev %.1f, u %.2f)" prev u)
            true
            (d >= lo -. eps && d <= hi +. eps);
          check bool_t "delay never exceeds cap" true (d <= p.R.cap_ms +. eps))
        [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
      (* the extremes are exact *)
      check (Alcotest.float eps) "u=0 is the floor" lo
        (R.next_delay_ms p ~u:0.0 ~prev_ms:prev ~hint_ms:None);
      check (Alcotest.float eps) "u=1 is the ceiling" hi
        (R.next_delay_ms p ~u:1.0 ~prev_ms:prev ~hint_ms:None))
    [ 0.5; 10.0; 100.0; 2000.0; 5000.0 ];
  (* out-of-range u is clamped, not propagated *)
  check (Alcotest.float eps) "u below 0 clamps to the floor"
    (R.next_delay_ms p ~u:0.0 ~prev_ms:10.0 ~hint_ms:None)
    (R.next_delay_ms p ~u:(-3.0) ~prev_ms:10.0 ~hint_ms:None);
  check (Alcotest.float eps) "u above 1 clamps to the ceiling"
    (R.next_delay_ms p ~u:1.0 ~prev_ms:10.0 ~hint_ms:None)
    (R.next_delay_ms p ~u:7.0 ~prev_ms:10.0 ~hint_ms:None)

let test_hint_dominates () =
  let p = { R.max_retries = 3; base_ms = 10.0; cap_ms = 2000.0 } in
  let eps = 1e-9 in
  (* a hint above the computed range wins outright — even above the
     cap: the daemon's drain estimate beats the client-side curve *)
  check (Alcotest.float eps) "large hint is the delay" 5000.0
    (R.next_delay_ms p ~u:1.0 ~prev_ms:2000.0 ~hint_ms:(Some 5000.0));
  (* a hint below the computed delay leaves the jittered value alone *)
  let computed = R.next_delay_ms p ~u:0.5 ~prev_ms:100.0 ~hint_ms:None in
  check (Alcotest.float eps) "small hint does not lower the delay" computed
    (R.next_delay_ms p ~u:0.5 ~prev_ms:100.0 ~hint_ms:(Some 1.0));
  (* degenerate hints are ignored *)
  List.iter
    (fun h ->
      check (Alcotest.float eps) "degenerate hint ignored" computed
        (R.next_delay_ms p ~u:0.5 ~prev_ms:100.0 ~hint_ms:(Some h)))
    [ 0.0; -5.0; Float.nan; Float.infinity ]

(* ---------------- retry: classification ---------------- *)

let decode_exn line =
  match P.decode_response line with
  | Ok r -> r
  | Error e -> Alcotest.failf "decode %S failed: %s" line e

let test_classify () =
  let verdict line = R.classify (decode_exn line) in
  (match verdict "{\"id\": \"x\", \"status\": \"ok\"}" with
   | R.Success -> ()
   | _ -> Alcotest.fail "ok must classify Success");
  (match verdict "{\"id\": \"x\", \"status\": \"degraded\"}" with
   | R.Success -> ()
   | _ -> Alcotest.fail "degraded must classify Success");
  (match
     verdict
       "{\"id\": \"x\", \"status\": \"rejected\", \"reason\": \
        \"overload\", \"retry_after_ms\": 40}"
   with
   | R.Retryable { hint_ms = Some h; draining = false } ->
     check (Alcotest.float 1e-9) "hint carried" 40.0 h
   | _ -> Alcotest.fail "overload reject must be Retryable with hint");
  (match
     verdict "{\"id\": \"x\", \"status\": \"rejected\", \"reason\": \
              \"draining\"}"
   with
   | R.Retryable { hint_ms = None; draining = true } -> ()
   | _ -> Alcotest.fail "draining reject must be Retryable draining");
  (match verdict "{\"id\": \"x\", \"status\": \"error\", \"error\": \"boom\"}"
   with
   | R.Fatal m -> check string_t "error message surfaced" "boom" m
   | _ -> Alcotest.fail "error must classify Fatal");
  (match verdict "{\"id\": \"x\", \"status\": \"quantum\"}" with
   | R.Fatal _ -> ()
   | _ -> Alcotest.fail "unknown status must classify Fatal, not retry")

(* ---------------- proto: unknown fields are ignored ---------------- *)

(* Forward compatibility regression (a newer daemon may add fields to
   any frame): every known frame shape still decodes with extra
   members of every JSON type spliced in. *)
let test_decode_ignores_unknown_fields () =
  let extras =
    ", \"x_future\": {\"a\": [1, 2]}, \"shard\": 7, \"trace\": \"t-9\", \
     \"flag\": true, \"hole\": null"
  in
  let inject line =
    (* line is "{...}": splice the extras before the closing brace *)
    String.sub line 0 (String.length line - 1) ^ extras ^ "}"
  in
  let ok =
    inject
      "{\"id\": \"r1\", \"status\": \"ok\", \"objective\": 3.5, \
       \"cache\": \"hit\"}"
  in
  let r = decode_exn ok in
  check string_t "ok status survives extras" "ok" r.P.status;
  check bool_t "rid survives extras" true (r.P.rid = Some "r1");
  check bool_t "cache hit survives extras" true r.P.cache_hit;
  let degraded = inject "{\"id\": \"r2\", \"status\": \"degraded\"}" in
  check string_t "degraded survives extras" "degraded"
    (decode_exn degraded).P.status;
  let rejected =
    inject
      "{\"id\": \"r3\", \"status\": \"rejected\", \"reason\": \
       \"overload\", \"retry_after_ms\": 25}"
  in
  let r = decode_exn rejected in
  check bool_t "reason survives extras" true (r.P.reason = Some "overload");
  check bool_t "retry_after survives extras" true
    (r.P.retry_after_ms = Some 25);
  let error =
    inject "{\"id\": \"r4\", \"status\": \"error\", \"error\": \"bad\"}"
  in
  let r = decode_exn error in
  check bool_t "error cause survives extras" true (r.P.error = Some "bad");
  (* dedup marker, and a numeric frame id, both decode *)
  let dedup =
    inject "{\"id\": 7, \"status\": \"ok\", \"dedup\": \"hit\"}"
  in
  let r = decode_exn dedup in
  check bool_t "dedup hit survives extras" true r.P.dedup_hit;
  check bool_t "numeric id accepted" true (r.P.rid = Some "7")

(* ---------------- in-test JSONL servers ---------------- *)

(* A scripted endpoint: [handler frame] returns the response line
   (None = swallow the request). Every received frame is logged so
   tests can assert exactly what reached the wire. *)
type fake = {
  port : int;
  lfd : Unix.file_descr;
  fstop : bool Atomic.t;
  flog : J.t list ref;
  fmutex : Mutex.t;
}

let fake_frames f =
  Mutex.lock f.fmutex;
  let l = List.rev !(f.flog) in
  Mutex.unlock f.fmutex;
  l

let start_fake handler =
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 16;
  let port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let f =
    { port; lfd; fstop = Atomic.make false; flog = ref []; fmutex = Mutex.create () }
  in
  let serve_conn cfd =
    let buf = Buffer.create 1024 in
    let chunk = Bytes.create 4096 in
    let rec loop () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | Some i ->
        Buffer.clear buf;
        Buffer.add_string buf
          (String.sub s (i + 1) (String.length s - i - 1));
        let line = String.sub s 0 i in
        (match J.parse line with
         | Ok frame -> (
           Mutex.lock f.fmutex;
           f.flog := frame :: !(f.flog);
           Mutex.unlock f.fmutex;
           match handler frame with
           | Some resp -> (
             let out = resp ^ "\n" in
             let n = String.length out in
             let rec wr off =
               if off < n then
                 wr (off + Unix.write_substring cfd out off (n - off))
             in
             try wr 0 with Unix.Unix_error _ -> ())
           | None -> ())
         | Error _ -> ());
        loop ()
      | None -> (
        match Unix.select [ cfd ] [] [] 0.1 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | [], _, _ -> if Atomic.get f.fstop then () else loop ()
        | _ -> (
          match Unix.read cfd chunk 0 4096 with
          | 0 -> ()
          | r ->
            Buffer.add_subbytes buf chunk 0 r;
            loop ()
          | exception Unix.Unix_error _ -> ()))
    in
    loop ();
    try Unix.close cfd with Unix.Unix_error _ -> ()
  in
  let _accept : Thread.t =
    Thread.create
      (fun () ->
        let rec loop () =
          if not (Atomic.get f.fstop) then (
            match Unix.select [ lfd ] [] [] 0.1 with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            | [], _, _ -> loop ()
            | _ -> (
              match Unix.accept ~cloexec:true lfd with
              | cfd, _ ->
                ignore (Thread.create serve_conn cfd);
                loop ()
              | exception Unix.Unix_error _ -> loop ()))
        in
        loop ())
      ()
  in
  f

let stop_fake f =
  Atomic.set f.fstop true;
  try Unix.close f.lfd with Unix.Unix_error _ -> ()

let frame_id frame =
  match Option.bind (J.member "id" frame) J.to_str with
  | Some id -> id
  | None -> Alcotest.fail "fake server: frame without id"

let frame_request_id frame = Option.bind (J.member "request_id" frame) J.to_str

let respond_with frame fields =
  Some
    (J.to_string (J.Obj (("id", J.Str (frame_id frame)) :: fields)))

let ok_response ?(delay = 0.0) frame =
  if delay > 0.0 then Thread.delay delay;
  respond_with frame [ ("status", J.Str "ok"); ("objective", J.Num 1.0) ]

let reject_response ?retry_after_ms frame =
  respond_with frame
    ([ ("status", J.Str "rejected"); ("reason", J.Str "overload") ]
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", J.Num (float_of_int ms)) ]
    | None -> [])

(* a TCP port that refuses connections: bound, then closed *)
let dead_port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let with_client cfg f =
  let t = C.create cfg in
  Fun.protect ~finally:(fun () -> C.close t) (fun () -> f t)

let ping_fields = [ ("op", J.Str "health") ]

(* ---------------- call: failover ---------------- *)

let test_failover_dead_endpoint () =
  let live = start_fake (fun frame -> ok_response frame) in
  Fun.protect ~finally:(fun () -> stop_fake live) @@ fun () ->
  let cfg =
    {
      (C.default_config [ C.Tcp (dead_port ()); C.Tcp live.port ]) with
      budget_ms = Some 5000.0;
      seed = 7;
    }
  in
  with_client cfg @@ fun t ->
  match C.call t ~request_id:"f1" ping_fields with
  | Error e -> Alcotest.failf "call failed: %s" e.C.message
  | Ok o ->
    check string_t "answered ok" "ok" o.C.response.P.status;
    check bool_t "answered by the live endpoint" true
      (o.C.endpoint = C.Tcp live.port);
    check bool_t "recorded a failover" true (o.C.failovers >= 1);
    check bool_t "recorded a retry" true (o.C.retries >= 1);
    (* the dead endpoint is now scored down: a second call goes
       straight to the live one, no retry *)
    (match C.call t ~request_id:"f2" ping_fields with
     | Ok o2 -> check int_t "second call needs no retry" 0 o2.C.retries
     | Error e -> Alcotest.failf "second call failed: %s" e.C.message)

(* ---------------- call: budget exhaustion ---------------- *)

let test_budget_exhaustion_best_so_far () =
  (* every attempt is rejected with a 200 ms hint; an 80 ms budget
     cannot honor that sleep, so the call must fail fast with
     Budget_exhausted and surface the reject as the best-so-far *)
  let f = start_fake (fun frame -> reject_response ~retry_after_ms:200 frame) in
  Fun.protect ~finally:(fun () -> stop_fake f) @@ fun () ->
  let cfg =
    {
      (C.default_config [ C.Tcp f.port ]) with
      budget_ms = Some 80.0;
      seed = 7;
    }
  in
  with_client cfg @@ fun t ->
  let t0 = Unix.gettimeofday () in
  match C.call t ~request_id:"b1" ping_fields with
  | Ok _ -> Alcotest.fail "call against an always-rejecting server succeeded"
  | Error e ->
    let took_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
    check string_t "kind is budget_exhausted" "budget_exhausted"
      (C.failure_kind_to_string e.C.kind);
    check bool_t "best-so-far error names the reject" true
      (let m = e.C.message in
       let has needle =
         let nl = String.length needle and ml = String.length m in
         let rec go i =
           i + nl <= ml && (String.sub m i nl = needle || go (i + 1))
         in
         go 0
       in
       has "rejected");
    check bool_t "failed without sleeping through the hint" true
      (took_ms < 1000.0)

(* ---------------- call: retries exhausted ---------------- *)

let test_retries_exhausted () =
  let f = start_fake (fun frame -> reject_response frame) in
  Fun.protect ~finally:(fun () -> stop_fake f) @@ fun () ->
  let cfg =
    {
      (C.default_config [ C.Tcp f.port ]) with
      retry = { R.max_retries = 2; base_ms = 1.0; cap_ms = 5.0 };
      budget_ms = Some 5000.0;
      seed = 7;
    }
  in
  with_client cfg @@ fun t ->
  match C.call t ~request_id:"r1" ping_fields with
  | Ok _ -> Alcotest.fail "call against an always-rejecting server succeeded"
  | Error e ->
    check string_t "kind is retries_exhausted" "retries_exhausted"
      (C.failure_kind_to_string e.C.kind);
    check int_t "retried exactly max_retries times" 2 e.C.err_retries;
    check int_t "one attempt per round" 3 e.C.err_attempts;
    check int_t "server saw every attempt" 3 (List.length (fake_frames f))

(* ---------------- call: hedging ---------------- *)

let test_hedge_exactly_one_answer () =
  (* endpoint A answers after 300 ms, endpoint B immediately; with a
     40 ms hedge delay the hedge must win, and each server must have
     seen exactly one frame — same request_id, distinct frame ids *)
  let slow = start_fake (fun frame -> ok_response ~delay:0.3 frame) in
  let fast = start_fake (fun frame -> ok_response frame) in
  Fun.protect
    ~finally:(fun () ->
      stop_fake slow;
      stop_fake fast)
  @@ fun () ->
  let cfg =
    {
      (C.default_config [ C.Tcp slow.port; C.Tcp fast.port ]) with
      budget_ms = Some 5000.0;
      hedge_after_ms = Some 40.0;
      seed = 7;
    }
  in
  with_client cfg @@ fun t ->
  match C.call t ~request_id:"h1" ping_fields with
  | Error e -> Alcotest.failf "hedged call failed: %s" e.C.message
  | Ok o ->
    check bool_t "hedge won" true o.C.hedge_won;
    check int_t "one hedge fired" 1 o.C.hedges;
    check bool_t "winner is the fast endpoint" true
      (o.C.endpoint = C.Tcp fast.port);
    check bool_t "the hedge beat the slow primary" true
      (o.C.elapsed_ms < 290.0);
    (* let the loser's late answer drain: it must be discarded, not
       crash or double-resolve *)
    Thread.delay 0.4;
    let sf = fake_frames slow and ff = fake_frames fast in
    check int_t "slow endpoint saw exactly one frame" 1 (List.length sf);
    check int_t "fast endpoint saw exactly one frame" 1 (List.length ff);
    let rid frames = List.filter_map frame_request_id frames in
    check bool_t "both frames carried the request_id" true
      (rid sf = [ "h1" ] && rid ff = [ "h1" ]);
    check bool_t "frame ids are distinct" true
      (frame_id (List.hd sf) <> frame_id (List.hd ff))

(* ---------------- endpoint parsing ---------------- *)

let test_endpoint_parsing () =
  check bool_t "bare port" true (C.endpoint_of_string "8080" = Ok (C.Tcp 8080));
  check bool_t "tcp prefix" true
    (C.endpoint_of_string "tcp:9090" = Ok (C.Tcp 9090));
  check bool_t "unix prefix" true
    (C.endpoint_of_string "unix:/tmp/s.sock" = Ok (C.Unix_path "/tmp/s.sock"));
  check bool_t "bare path" true
    (C.endpoint_of_string "/tmp/s.sock" = Ok (C.Unix_path "/tmp/s.sock"));
  check bool_t "comma list" true
    (C.endpoints_of_string "8080, unix:/a, /b"
    = Ok [ C.Tcp 8080; C.Unix_path "/a"; C.Unix_path "/b" ]);
  check bool_t "out-of-range port rejected" true
    (match C.endpoint_of_string "70000" with Error _ -> true | Ok _ -> false);
  check bool_t "empty list rejected" true
    (match C.endpoints_of_string " , " with Error _ -> true | Ok _ -> false)

(* ---------------- registration ---------------- *)

let () =
  Alcotest.run "client"
    [
      ( "retry",
        [
          Alcotest.test_case "decorrelated jitter bounds" `Quick
            test_delay_bounds;
          Alcotest.test_case "retry_after hint dominates" `Quick
            test_hint_dominates;
          Alcotest.test_case "response classification" `Quick test_classify;
        ] );
      ( "proto",
        [
          Alcotest.test_case "unknown fields ignored in every frame type"
            `Quick test_decode_ignores_unknown_fields;
        ] );
      ( "call",
        [
          Alcotest.test_case "failover from a dead endpoint" `Quick
            test_failover_dead_endpoint;
          Alcotest.test_case "budget exhaustion surfaces best-so-far" `Quick
            test_budget_exhaustion_best_so_far;
          Alcotest.test_case "retries exhausted after max_retries" `Quick
            test_retries_exhausted;
          Alcotest.test_case "hedge cancellation: exactly one answer" `Quick
            test_hedge_exactly_one_answer;
        ] );
      ( "endpoints",
        [ Alcotest.test_case "endpoint grammar" `Quick test_endpoint_parsing ] );
    ]
