(* Drift-monitor tests: unit tests for the Drift verdict machinery, and
   end-to-end soak tests on the drifting-commuter scenario — the drift
   monitor must stay silent under stationary mobility, react promptly
   to the relocation burst, and the refreshed estimate must bring
   realized paging cost back in line with the re-solved nominal EP
   while the stale-matrix baseline stays miscalibrated. *)

open Cellsim

let check = Alcotest.check
let int_t = Alcotest.int
let float_t eps = Alcotest.float eps

(* -------------------- Drift unit tests -------------------- *)

let cfg =
  { Drift.window = 20.0; min_obs = 2; min_users = 3; threshold = 0.3;
    cooldown = 5.0 }

let cells = 4

(* reference row: point mass at the user's home cell *)
let point_reference u =
  let row = Array.make cells 0.0 in
  row.(u mod cells) <- 1.0;
  row

let feed d ~users ~offset ~times =
  for u = 0 to users - 1 do
    List.iter
      (fun now -> Drift.observe d ~user:u ~cell:((u + offset) mod cells) ~now)
      times
  done

let test_stationary_stays_stable () =
  let d = Drift.create cfg ~users:5 ~cells in
  feed d ~users:5 ~offset:0 ~times:[ 1.0; 2.0; 3.0 ];
  (match Drift.check d ~now:4.0 ~reference:point_reference with
   | Drift.Stable tv -> check (float_t 1e-9) "mean tv" 0.0 tv
   | Drift.Drifted tv -> Alcotest.failf "drifted on stationary obs (tv %g)" tv
   | Drift.Insufficient n -> Alcotest.failf "insufficient (%d eligible)" n
   | Drift.Cooling r -> Alcotest.failf "cooling (%g left) with no trigger" r);
  (* more stationary evidence never flips the verdict *)
  for t = 5 to 30 do
    feed d ~users:5 ~offset:0 ~times:[ float_of_int t ];
    match Drift.check d ~now:(float_of_int t) ~reference:point_reference with
    | Drift.Drifted tv ->
      Alcotest.failf "drifted at t=%d on stationary obs (tv %g)" t tv
    | _ -> ()
  done

let test_shifted_observations_drift () =
  let d = Drift.create cfg ~users:5 ~cells in
  feed d ~users:5 ~offset:1 ~times:[ 1.0; 2.0; 3.0 ];
  match Drift.check d ~now:4.0 ~reference:point_reference with
  | Drift.Drifted tv -> check (float_t 1e-9) "mean tv" 1.0 tv
  | Drift.Stable tv -> Alcotest.failf "stable despite relocation (tv %g)" tv
  | Drift.Insufficient n -> Alcotest.failf "insufficient (%d eligible)" n
  | Drift.Cooling r -> Alcotest.failf "cooling (%g left) with no trigger" r

let test_insufficient_evidence () =
  let d = Drift.create cfg ~users:5 ~cells in
  (* only 2 of the required 3 users have enough recent observations *)
  feed d ~users:2 ~offset:1 ~times:[ 1.0; 2.0 ];
  Drift.observe d ~user:2 ~cell:0 ~now:2.0;
  (match Drift.check d ~now:3.0 ~reference:point_reference with
   | Drift.Insufficient n -> check int_t "eligible users" 2 n
   | v ->
     Alcotest.failf "expected Insufficient, got %s"
       (match v with
        | Drift.Stable _ -> "Stable"
        | Drift.Drifted _ -> "Drifted"
        | Drift.Cooling _ -> "Cooling"
        | Drift.Insufficient _ -> assert false));
  (* stale evidence expires out of the window *)
  let d2 = Drift.create cfg ~users:5 ~cells in
  feed d2 ~users:5 ~offset:1 ~times:[ 1.0; 2.0 ];
  match Drift.check d2 ~now:50.0 ~reference:point_reference with
  | Drift.Insufficient _ -> ()
  | _ -> Alcotest.fail "expired observations still produced a verdict"

let test_cooldown_and_rearm () =
  let d = Drift.create cfg ~users:5 ~cells in
  feed d ~users:5 ~offset:1 ~times:[ 1.0; 2.0; 3.0 ];
  (match Drift.check d ~now:4.0 ~reference:point_reference with
   | Drift.Drifted _ -> ()
   | _ -> Alcotest.fail "setup: expected Drifted");
  Drift.rearm d ~now:4.0;
  (* within the cooldown the monitor says so, with the time remaining —
     distinguishable from a lack of evidence *)
  (match Drift.check d ~now:6.0 ~reference:point_reference with
   | Drift.Cooling remaining ->
     check (float_t 1e-9) "cooldown remaining" 3.0 remaining
   | Drift.Insufficient _ ->
     Alcotest.fail "cooldown reported as Insufficient"
   | _ -> Alcotest.fail "verdict rendered during cooldown");
  (* after the cooldown the kept windows still contradict the
     reference, so the monitor fires again *)
  feed d ~users:5 ~offset:1 ~times:[ 10.0 ];
  (match Drift.check d ~now:10.0 ~reference:point_reference with
   | Drift.Drifted _ -> ()
   | _ -> Alcotest.fail "no verdict after cooldown elapsed");
  let r = Drift.report d in
  check int_t "checks" 3 r.Drift.checks;
  check int_t "triggers" 2 r.Drift.triggers;
  (match r.Drift.last_trigger with
   | Some t -> check (float_t 1e-9) "last trigger" 10.0 t
   | None -> Alcotest.fail "no last trigger recorded");
  if r.Drift.max_mean_tv < 0.99 then
    Alcotest.failf "max_mean_tv %g too small" r.Drift.max_mean_tv

let test_window_expiry () =
  let d = Drift.create cfg ~users:1 ~cells in
  Drift.observe d ~user:0 ~cell:1 ~now:5.0;
  Drift.observe d ~user:0 ~cell:2 ~now:15.0;
  Drift.observe d ~user:0 ~cell:3 ~now:18.0;
  check (Alcotest.list int_t) "full window, oldest first" [ 1; 2; 3 ]
    (Drift.window d ~user:0 ~now:24.0);
  check (Alcotest.list int_t) "expired head" [ 2; 3 ]
    (Drift.window d ~user:0 ~now:26.5)

let test_tv_and_validate () =
  check (float_t 1e-12) "tv" 0.5 (Drift.tv [| 0.5; 0.5 |] [| 1.0; 0.0 |]);
  check (float_t 1e-12) "tv identical" 0.0
    (Drift.tv [| 0.25; 0.75 |] [| 0.25; 0.75 |]);
  (match Drift.tv [| 1.0 |] [| 0.5; 0.5 |] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "length mismatch accepted");
  (match Drift.validate { cfg with Drift.window = -1.0 } with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "negative window accepted");
  match Drift.validate cfg with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid config rejected: %s" e

(* -------------------- end-to-end soak -------------------- *)

let drift_metrics r =
  match r.Sim.drift with
  | Some dm -> dm
  | None -> Alcotest.fail "run produced no drift metrics"

let selective_metrics r =
  List.find
    (fun sm ->
       match sm.Sim.scheme with Sim.Selective _ -> true | _ -> false)
    r.Sim.per_scheme

(* Under stationary mobility (no commute, users parked for the whole
   run) the monitor must never re-solve: sparse call sightings agree
   with the snapshot, so evidence never clears the bar. *)
let test_stationary_never_resolves () =
  let cfg = Scenario.drifting_commuter () in
  let r = Sim.run { cfg with Sim.mobility_schedule = [] } in
  let dm = drift_metrics r in
  check int_t "resolves" 0 dm.Sim.resolves;
  if dm.Sim.checks = 0 then Alcotest.fail "monitor never checked";
  if dm.Sim.max_mean_tv > 0.15 then
    Alcotest.failf "stationary max mean TV %g at threshold" dm.Sim.max_mean_tv

(* The commute starts at t = 180; truncating the run at t = 230 proves
   the first re-solve lands within 50 ticks of the regime change. *)
let test_swap_resolves_promptly () =
  let cfg = Scenario.drifting_commuter () in
  let r = Sim.run { cfg with Sim.duration = 230.0 } in
  let dm = drift_metrics r in
  if dm.Sim.resolves < 1 then
    Alcotest.fail "no re-solve within 50 ticks of the commute";
  match dm.Sim.last_resolve with
  | Some t when t > 180.0 && t <= 230.0 -> ()
  | Some t -> Alcotest.failf "re-solve at t=%g, outside (180, 230]" t
  | None -> Alcotest.fail "resolves > 0 but no last_resolve time"

(* Recovered-phase calibration at the scenario's pinned seed: metrics
   for the (280, 360] window — after the refreshed rows have had time
   to sharpen — come from differencing cumulative runs at the two
   durations (same seed + shorter duration = exact prefix).
   Drift-triggered re-estimation must keep realized selective cost
   within 10% of the re-solved nominal EP; the stale baseline must
   degrade (miscalibrated and clearly costlier than drift-on). *)
let test_recovery_beats_stale_baseline () =
  let cfg = Scenario.drifting_commuter () in
  let stale_cfg =
    match cfg.Sim.estimator with
    | Sim.Snapshot s ->
      { cfg with Sim.estimator = Sim.Snapshot { s with drift = None } }
    | _ -> Alcotest.fail "scenario lost its Snapshot estimator"
  in
  let window c =
    let at d = selective_metrics (Sim.run { c with Sim.duration = d }) in
    let early = at 280.0 and late = at 360.0 in
    ( float_of_int (late.Sim.cells_paged - early.Sim.cells_paged),
      late.Sim.expected_paging -. early.Sim.expected_paging )
  in
  let drift_realized, drift_nominal = window cfg in
  let stale_realized, stale_nominal = window stale_cfg in
  if drift_realized > 1.10 *. drift_nominal then
    Alcotest.failf
      "drift-on realized %g not within 10%% of nominal %g"
      drift_realized drift_nominal;
  if stale_realized <= 1.10 *. stale_nominal then
    Alcotest.failf
      "stale baseline unexpectedly calibrated: realized %g, nominal %g"
      stale_realized stale_nominal;
  if stale_realized <= 1.5 *. drift_realized then
    Alcotest.failf
      "stale realized %g not clearly worse than drift-on realized %g"
      stale_realized drift_realized

let () =
  Alcotest.run "drift"
    [ ( "monitor",
        [ Alcotest.test_case "stationary stays stable" `Quick
            test_stationary_stays_stable;
          Alcotest.test_case "shifted observations drift" `Quick
            test_shifted_observations_drift;
          Alcotest.test_case "insufficient evidence" `Quick
            test_insufficient_evidence;
          Alcotest.test_case "cooldown and rearm" `Quick
            test_cooldown_and_rearm;
          Alcotest.test_case "window expiry" `Quick test_window_expiry;
          Alcotest.test_case "tv and validate" `Quick test_tv_and_validate;
        ] );
      ( "soak",
        [ Alcotest.test_case "stationary never re-solves" `Slow
            test_stationary_never_resolves;
          Alcotest.test_case "commute re-solves within 50 ticks" `Slow
            test_swap_resolves_promptly;
          Alcotest.test_case "recovery beats stale baseline" `Slow
            test_recovery_beats_stale_baseline;
        ] );
    ]
