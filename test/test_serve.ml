(* The serve daemon, end to end and in pieces.

   In-process servers on ephemeral loopback ports: the JSONL protocol
   (parser totality, out-of-order pipelined responses, per-connection
   error isolation), admission control and the shedding ladder, deadline
   propagation into degraded anytime answers, the canonical-key result
   cache (including journal persistence across a daemon restart), and
   lifecycle (drain rejects new work, finishes admitted work, leaks no
   domains).

   The centerpiece is the differential: 50 seeded instances solved
   through the daemon must answer with strategy/EP fields byte-identical
   to what `confcall solve --json` prints — the fragment is rebuilt here
   with a local replica of the CLI's emitter and compared as strings. *)

open Confcall
module Sv = Serve.Server
module J = Serve.Json

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ---------------- tiny JSONL client ---------------- *)

type client = { fd : Unix.file_descr; buf : Buffer.t; mutable eof : bool }

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; buf = Buffer.create 4096; eof = false }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c line =
  let s = line ^ "\n" in
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring c.fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Pull [n] complete response lines, in arrival order, within a bounded
   window. Responses may belong to any in-flight request. *)
let recv_n ?(timeout = 30.0) c n =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let lines = ref [] in
  let got = ref 0 in
  let split_off () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear c.buf;
      Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
  in
  while !got < n && Unix.gettimeofday () < deadline && not c.eof do
    match split_off () with
    | Some line ->
      lines := line :: !lines;
      incr got
    | None ->
      (match Unix.select [ c.fd ] [] [] 0.1 with
       | [], _, _ -> ()
       | _ ->
         (match Unix.read c.fd chunk 0 4096 with
          | 0 -> c.eof <- true
          | r -> Buffer.add_subbytes c.buf chunk 0 r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
  done;
  (* drain whole lines already buffered *)
  let rec flush () =
    if !got < n then
      match split_off () with
      | Some line ->
        lines := line :: !lines;
        incr got;
        flush ()
      | None -> ()
  in
  flush ();
  if !got < n then
    Alcotest.failf "timed out after %d/%d responses" !got n;
  List.rev !lines

let parse_response line =
  match J.parse line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparseable response %S: %s" line e

let jstr_field k j =
  match Option.bind (J.member k j) J.to_str with
  | Some s -> s
  | None -> Alcotest.failf "response missing string field %S" k

let jnum_field k j =
  match Option.bind (J.member k j) J.to_num with
  | Some x -> x
  | None -> Alcotest.failf "response missing numeric field %S" k

let by_id lines =
  List.map
    (fun l ->
      let j = parse_response l in
      ((try jstr_field "id" j with _ -> "?"), (j, l)))
    lines

let solve_frame ?(id = "r") ?request_id ?solver ?chain ?budget_ms
    ?(cache = false) inst =
  let fields =
    [ ("id", J.Str id); ("op", J.Str "solve");
      ("instance", J.Str (Instance.to_string inst)) ]
    @ (match request_id with
       | Some r -> [ ("request_id", J.Str r) ]
       | None -> [])
    @ (match solver with Some s -> [ ("solver", J.Str s) ] | None -> [])
    @ (match chain with Some s -> [ ("chain", J.Str s) ] | None -> [])
    @ (match budget_ms with
       | Some b -> [ ("budget_ms", J.Num b) ]
       | None -> [])
    @ if cache then [] else [ ("cache", J.Bool false) ]
  in
  J.to_string (J.Obj fields)

(* ---------------- server harness ---------------- *)

let with_server ?(domains = 2) ?(capacity = 16) ?cache_path
    ?(max_frame_bytes = 1024 * 1024) f =
  let before = Exec.Pool.active_domains () in
  let cfg =
    {
      (Sv.default_config (Sv.Tcp 0)) with
      domains;
      capacity;
      cache_path;
      max_frame_bytes;
      drain_grace_ms = 30_000.0;
      quiet = true;
    }
  in
  let h = Sv.start cfg in
  let port = Option.get (Sv.bound_port h) in
  let r =
    Fun.protect
      ~finally:(fun () ->
        if not (Sv.stop h) then Alcotest.fail "server did not drain in grace")
      (fun () -> f h port)
  in
  check int_t "no leaked domains after server stop" before
    (Exec.Pool.active_domains ());
  r

(* ---------------- Json unit tests ---------------- *)

let test_json_roundtrip () =
  let cases =
    [
      "null"; "true"; "false"; "0"; "3.25"; "-1.5e-09"; "\"\"";
      "\"a b\""; "[]"; "[1, 2, 3]"; "{}";
      "{\"k\": 1, \"s\": \"v\", \"a\": [true, null]}";
      "{\"nested\": {\"deep\": [{\"x\": 0.5}]}}";
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok j -> check string_t ("roundtrip " ^ s) s (J.to_string j)
      | Error e -> Alcotest.failf "parse %S failed: %s" s e)
    cases;
  (* escapes normalize to the CLI emitter's form *)
  (match J.parse "\"a\\tb\\u0041\\n\"" with
   | Ok j -> check string_t "escape normalization" "\"a\\u0009bA\\n\"" (J.to_string j)
   | Error e -> Alcotest.failf "escape parse failed: %s" e);
  (* surrogate pair decodes to UTF-8 *)
  (match J.parse "\"\\ud83d\\ude00\"" with
   | Ok (J.Str s) -> check string_t "surrogate pair" "\xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "surrogate pair did not parse")

let test_json_rejects () =
  let bad =
    [
      ""; "   "; "{"; "[1,"; "{\"a\" 1}"; "nul"; "tru"; "01x"; "+5"; "--1";
      "1e999"; "nan"; "inf"; "[1] trailing"; "\"unterminated";
      "{\"a\": 1,}"; "[,]"; "{1: 2}";
    ]
  in
  List.iter
    (fun s ->
      match J.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON %S" s
      | Error _ -> ())
    bad;
  (* depth bound is enforced, not stack-overflowed *)
  let deep = String.make 500 '[' ^ String.make 500 ']' in
  (match J.parse deep with
   | Ok _ -> Alcotest.fail "accepted depth-500 nesting"
   | Error _ -> ());
  match J.parse ~max_depth:600 deep with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected depth-500 with max_depth 600: %s" e

(* ---------------- canonical key ---------------- *)

let test_canonical_key () =
  let key = Signature.canonical_key ~objective:Objective.Find_all in
  let i1 =
    Instance.of_string "2 4 2\n0.1 0.2 0.3 0.4\n0.25 0.25 0.25 0.25\n"
  in
  let i2 =
    Instance.of_string "2 4 2\n0.25 0.25 0.25 0.25\n0.1 0.2 0.3 0.4\n"
  in
  check string_t "row order canonicalized" (key i1) (key i2);
  let i3 =
    Instance.of_string "2 4 2\n0.1 0.2 0.3 0.4\n0.25 0.25 0.2 0.3\n"
  in
  check bool_t "different rows, different key" true (key i1 <> key i3);
  check bool_t "objective separates keys" true
    (key i1 <> Signature.canonical_key ~objective:Objective.Find_any i1);
  (* sub-quantum jitter collapses to the same key *)
  let j1 =
    Instance.of_string "1 2 1\n0.5 0.5\n"
  and j2 =
    Instance.of_string "1 2 1\n0.5000000001 0.4999999999\n"
  in
  check string_t "coarse quantum collapses jitter"
    (Signature.canonical_key ~quantum:1e-6 ~objective:Objective.Find_all j1)
    (Signature.canonical_key ~quantum:1e-6 ~objective:Objective.Find_all j2);
  check bool_t "fine quantum distinguishes jitter" true
    (Signature.canonical_key ~quantum:1e-12 ~objective:Objective.Find_all j1
    <> Signature.canonical_key ~quantum:1e-12 ~objective:Objective.Find_all j2);
  (match Signature.canonical_key ~quantum:0.0 ~objective:Objective.Find_all i1 with
   | _ -> Alcotest.fail "quantum 0 accepted"
   | exception Invalid_argument _ -> ())

(* ---------------- ladder ---------------- *)

let test_ladder () =
  let l = Sv.ladder_of_depth ~capacity:8 in
  check bool_t "empty queue full service" true (l 0 = Sv.Full);
  check bool_t "below 50%" true (l 3 = Sv.Full);
  check bool_t "at 50%" true (l 4 = Sv.Heuristic);
  check bool_t "below 75%" true (l 5 = Sv.Heuristic);
  check bool_t "at 75%" true (l 6 = Sv.Fast);
  check bool_t "at capacity" true (l 8 = Sv.Fast);
  let chain = Runner.default_chain in
  check bool_t "full ladder is identity" true
    (Sv.apply_ladder Sv.Full chain = (chain, false));
  let heuristic, changed = Sv.apply_ladder Sv.Heuristic chain in
  check bool_t "heuristic drops exact stages" true changed;
  check bool_t "heuristic keeps anytime + fast" true
    (heuristic = Solver.[ Local_search; Greedy; Page_all ]);
  let fast, changed = Sv.apply_ladder Sv.Fast chain in
  check bool_t "fast drops local search" true changed;
  check bool_t "fast keeps always-fast" true
    (fast = Solver.[ Greedy; Page_all ]);
  check bool_t "fast chain unchanged by fast rung" true
    (Sv.apply_ladder Sv.Fast Solver.[ Greedy; Page_all ]
    = (Solver.[ Greedy; Page_all ], false));
  check bool_t "never empty" true
    (Sv.apply_ladder Sv.Fast [ Solver.Exhaustive ] = ([ Solver.Greedy ], true))

(* ---------------- protocol decoding ---------------- *)

let test_proto_decode () =
  let ok s =
    match Serve.Proto.decode s with
    | Ok f -> f
    | Error (_, e) -> Alcotest.failf "decode %S failed: %s" s e
  in
  let err s =
    match Serve.Proto.decode s with
    | Ok _ -> Alcotest.failf "decode %S unexpectedly succeeded" s
    | Error (id, _) -> id
  in
  let f = ok "{\"id\": \"a\", \"op\": \"health\"}" in
  check bool_t "health" true (f.Serve.Proto.req = Serve.Proto.Health);
  let f =
    ok
      "{\"id\": \"s\", \"op\": \"solve\", \"instance\": \"1 1 1\\n1\\n\", \
       \"budget_ms\": 5}"
  in
  (match f.Serve.Proto.req with
   | Serve.Proto.Solve sr ->
     check bool_t "budget decoded" true (sr.Serve.Proto.budget_ms = Some 5.0);
     check bool_t "cache defaults on" true sr.Serve.Proto.cache
   | _ -> Alcotest.fail "not a solve");
  check bool_t "id recovered from bad frame" true
    (err "{\"id\": \"x\", \"op\": \"nope\"}" = Some "x");
  check bool_t "no id on garbage" true (err "]junk[" = None);
  check bool_t "missing op" true (err "{\"id\": \"y\"}" = Some "y");
  check bool_t "missing id" true (err "{\"op\": \"health\"}" = None);
  check bool_t "zero budget rejected" true
    (err
       "{\"id\": \"z\", \"op\": \"solve\", \"instance\": \"i\", \
        \"budget_ms\": 0}"
    = Some "z");
  check bool_t "oversized id rejected" true
    (err
       (Printf.sprintf "{\"id\": \"%s\", \"op\": \"health\"}"
          (String.make 300 'i'))
    <> None)

(* ---------------- cache ---------------- *)

let test_cache_persistence () =
  let path = Filename.temp_file "confcall_serve" ".cache" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let c = Serve.Cache.create ~path ~fsync:true () in
      Serve.Cache.store c ~key:"k1" ~payload:"\"solver\": \"greedy\"";
      Serve.Cache.store c ~key:"k1" ~payload:"SHOULD NOT REPLACE";
      Serve.Cache.store c ~key:"k2" ~payload:"p2";
      check bool_t "find hit" true
        (Serve.Cache.find c ~key:"k1" = Some "\"solver\": \"greedy\"");
      check bool_t "find miss" true (Serve.Cache.find c ~key:"nope" = None);
      check int_t "hits" 1 (Serve.Cache.hits c);
      check int_t "misses" 1 (Serve.Cache.misses c);
      Serve.Cache.close c;
      (* torn final line: the crash dropped half a store — reload keeps
         the complete entries and simply forgets the torn one *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "k3\thalf a payload with no newline";
      close_out oc;
      let c2 = Serve.Cache.create ~path () in
      check int_t "complete entries survive" 2 (Serve.Cache.entries c2);
      check bool_t "first writer won across restart" true
        (Serve.Cache.find c2 ~key:"k1" = Some "\"solver\": \"greedy\"");
      check bool_t "torn entry forgotten" true
        (Serve.Cache.find c2 ~key:"k3" = None);
      Serve.Cache.close c2)

(* ---------------- differential: daemon vs CLI emitter ---------------- *)

(* Local replica of the CLI's JSON emitter (bin/confcall_cli.ml) for the
   fields a solve response shares with `confcall solve --json`. *)
let cli_num x =
  if Float.is_finite x then Printf.sprintf "%.12g" x
  else Printf.sprintf "\"%h\"" x

let cli_strategy s =
  let arr items = "[" ^ String.concat ", " items ^ "]" in
  arr
    (Array.to_list
       (Array.map
          (fun g -> arr (Array.to_list (Array.map string_of_int g)))
          (Strategy.groups s)))

let cli_fragment spec (o : Solver.outcome) =
  Printf.sprintf
    "\"solver\": \"%s\", \"strategy\": %s, \"expected_paging\": %s, \
     \"exact\": %b"
    (Solver.spec_to_string spec)
    (cli_strategy o.Solver.strategy)
    (cli_num o.Solver.expected_paging)
    o.Solver.exact

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let test_differential_50_instances () =
  with_server ~domains:2 ~capacity:64 (fun _h port ->
      let rng = Prob.Rng.create ~seed:0x5E21 in
      let insts =
        List.init 50 (fun i ->
            let m = 1 + Prob.Rng.int rng 3
            and c = 2 + Prob.Rng.int rng 10 in
            let d = 1 + Prob.Rng.int rng (min c 3) in
            (Printf.sprintf "i%d" i,
             Instance.random_uniform_simplex rng ~m ~c ~d))
      in
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      List.iter
        (fun (id, inst) -> send c (solve_frame ~id ~solver:"greedy" inst))
        insts;
      let responses = by_id (recv_n c (List.length insts)) in
      check int_t "every instance answered" (List.length insts)
        (List.length responses);
      List.iter
        (fun (id, inst) ->
          let j, raw = List.assoc id responses in
          check string_t (id ^ " status") "ok" (jstr_field "status" j);
          let expected =
            cli_fragment Solver.Greedy (Solver.solve Solver.Greedy inst)
          in
          let start =
            match find_sub raw "\"solver\"" with
            | Some i -> i
            | None -> Alcotest.failf "%s: no solver field in %s" id raw
          in
          let stop =
            match find_sub raw ", \"ladder\"" with
            | Some i -> i
            | None -> Alcotest.failf "%s: no ladder field in %s" id raw
          in
          check string_t (id ^ " byte-identical strategy/EP fields") expected
            (String.sub raw start (stop - start)))
        insts)

(* ---------------- pipelining and error isolation ---------------- *)

let test_pipelining_and_isolation () =
  with_server ~domains:2 ~capacity:64 ~max_frame_bytes:2048
    (fun _h port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let rng = Prob.Rng.create ~seed:7 in
      let slow = Instance.random_uniform_simplex rng ~m:3 ~c:14 ~d:3 in
      let fast = Instance.random_uniform_simplex rng ~m:2 ~c:6 ~d:2 in
      (* a slow budgeted chain first, then quick ones: all must answer *)
      send c (solve_frame ~id:"slow" ~chain:"exact" ~budget_ms:300.0 slow);
      for i = 1 to 8 do
        send c (solve_frame ~id:(Printf.sprintf "f%d" i) ~solver:"greedy" fast)
      done;
      (* malformed frames interleaved: each answers, none kills the pipe *)
      send c "this is not json";
      send c "{\"id\": \"noop\", \"op\": \"warp\"}";
      send c (String.make 4000 'x');
      send c "{\"id\": \"after\", \"op\": \"health\"}";
      let responses = by_id (recv_n c 13) in
      check int_t "13 terminal responses" 13 (List.length responses);
      let status id = jstr_field "status" (fst (List.assoc id responses)) in
      List.iter
        (fun i ->
          check string_t (Printf.sprintf "f%d ok" i) "ok"
            (status (Printf.sprintf "f%d" i)))
        [ 1; 2; 3; 4; 5; 6; 7; 8 ];
      check bool_t "slow answered" true
        (List.mem (status "slow") [ "ok"; "degraded" ]);
      check string_t "bad op answered" "error" (status "noop");
      check string_t "connection survives garbage" "ok" (status "after");
      let errors =
        List.filter (fun (_, (j, _)) -> jstr_field "status" j = "error")
          responses
      in
      check int_t "three error frames" 3 (List.length errors))

(* ---------------- deadline propagation ---------------- *)

let test_deadline_degrades () =
  with_server ~domains:1 ~capacity:8 (fun _h port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let rng = Prob.Rng.create ~seed:11 in
      let inst = Instance.random_uniform_simplex rng ~m:3 ~c:16 ~d:3 in
      send c (solve_frame ~id:"tight" ~chain:"exact" ~budget_ms:1.0 inst);
      let j = parse_response (List.hd (recv_n c 1)) in
      check string_t "over-budget returns degraded" "degraded"
        (jstr_field "status" j);
      let reason = jstr_field "degraded_reason" j in
      check bool_t "reason names the budget" true
        (find_sub reason "budget" <> None);
      (* still a real answer: a strategy and a finite EP *)
      check bool_t "anytime strategy present" true
        (J.member "strategy" j <> None);
      check bool_t "EP finite" true
        (Float.is_finite (jnum_field "expected_paging" j)))

(* ---------------- overload and shedding ---------------- *)

let test_overload_sheds () =
  with_server ~domains:1 ~capacity:2 (fun _h port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let rng = Prob.Rng.create ~seed:13 in
      let slow = Instance.random_uniform_simplex rng ~m:3 ~c:14 ~d:3 in
      let n = 12 in
      for i = 1 to n do
        send c
          (solve_frame ~id:(Printf.sprintf "o%d" i) ~chain:"exact"
             ~budget_ms:150.0 slow)
      done;
      let responses = by_id (recv_n c n) in
      check int_t "every request got a terminal response" n
        (List.length responses);
      let count st =
        List.length
          (List.filter (fun (_, (j, _)) -> jstr_field "status" j = st)
             responses)
      in
      let ok = count "ok" and degraded = count "degraded" in
      let rejected = count "rejected" in
      check int_t "no errors" 0 (count "error");
      check bool_t "some requests shed" true (rejected > 0);
      check int_t "accepted + shed = sent" n (ok + degraded + rejected);
      List.iter
        (fun (_, (j, _)) ->
          if jstr_field "status" j = "rejected" then
            check string_t "shed reason" "overload" (jstr_field "reason" j))
        responses)

(* ---------------- cache through the daemon, across restart ------------- *)

let test_cache_hit_and_restart () =
  let path = Filename.temp_file "confcall_serve" ".cachej" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let rng = Prob.Rng.create ~seed:17 in
      let inst = Instance.random_uniform_simplex rng ~m:2 ~c:8 ~d:2 in
      let ep =
        with_server ~domains:1 ~cache_path:path (fun _h port ->
            let c = connect port in
            Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
            send c (solve_frame ~id:"a" ~solver:"greedy" ~cache:true inst);
            let j1 = parse_response (List.hd (recv_n c 1)) in
            check string_t "first solve is a miss" "miss"
              (jstr_field "cache" j1);
            send c (solve_frame ~id:"b" ~solver:"greedy" ~cache:true inst);
            let j2 = parse_response (List.hd (recv_n c 1)) in
            check string_t "second solve hits" "hit" (jstr_field "cache" j2);
            check bool_t "hit EP matches miss EP" true
              (jnum_field "expected_paging" j1
              = jnum_field "expected_paging" j2);
            jnum_field "expected_paging" j1)
      in
      (* restarted daemon, same journal: first request already hits *)
      with_server ~domains:1 ~cache_path:path (fun _h port ->
          let c = connect port in
          Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
          send c (solve_frame ~id:"c" ~solver:"greedy" ~cache:true inst);
          let j = parse_response (List.hd (recv_n c 1)) in
          check string_t "restart serves the journal" "hit"
            (jstr_field "cache" j);
          check bool_t "EP survives the restart byte-exactly" true
            (ep = jnum_field "expected_paging" j)))

(* ---------------- health, metrics, simulate, drain ---------------- *)

let test_ops_and_drain () =
  with_server ~domains:1 ~capacity:8 (fun h port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      send c "{\"id\": \"h\", \"op\": \"health\"}";
      let j = parse_response (List.hd (recv_n c 1)) in
      check bool_t "health not draining" true
        (J.member "draining" j = Some (J.Bool false));
      check bool_t "health capacity" true
        (jnum_field "capacity" j = 8.0);
      send c "{\"id\": \"m\", \"op\": \"metrics\"}";
      let j = parse_response (List.hd (recv_n c 1)) in
      let prom = jstr_field "prometheus" j in
      check bool_t "prometheus exposition has serve counters" true
        (find_sub prom "serve_responses_ok" <> None);
      send c
        "{\"id\": \"sim\", \"op\": \"simulate\", \"scenario\": \"suburb\", \
         \"seed\": 3}";
      let j = parse_response (List.hd (recv_n c 1)) in
      check string_t "simulate ok" "ok" (jstr_field "status" j);
      check bool_t "simulate reports schemes" true
        (match J.member "per_scheme" j with
         | Some (J.Arr (_ :: _)) -> true
         | _ -> false);
      send c
        "{\"id\": \"bad\", \"op\": \"simulate\", \"scenario\": \"atlantis\"}";
      let j = parse_response (List.hd (recv_n c 1)) in
      check string_t "unknown scenario is an error" "error"
        (jstr_field "status" j);
      (* drain: new work is rejected, the daemon stops cleanly *)
      Sv.request_drain h;
      let rng = Prob.Rng.create ~seed:23 in
      let inst = Instance.random_uniform_simplex rng ~m:2 ~c:6 ~d:2 in
      send c (solve_frame ~id:"late" ~solver:"greedy" inst);
      let j = parse_response (List.hd (recv_n c 1)) in
      check string_t "submission during drain rejected" "rejected"
        (jstr_field "status" j);
      check string_t "drain reason" "draining" (jstr_field "reason" j))

let test_drain_finishes_inflight () =
  with_server ~domains:1 ~capacity:16 (fun h port ->
      let c = connect port in
      Fun.protect ~finally:(fun () -> close_client c) @@ fun () ->
      let rng = Prob.Rng.create ~seed:29 in
      let slow = Instance.random_uniform_simplex rng ~m:3 ~c:14 ~d:3 in
      (* several admitted requests, then an immediate drain: each one
         must still get its terminal response *)
      let n = 5 in
      for i = 1 to n do
        send c
          (solve_frame ~id:(Printf.sprintf "w%d" i) ~chain:"exact"
             ~budget_ms:100.0 slow)
      done;
      Thread.delay 0.05 (* let admission happen before the drain *);
      Sv.request_drain h;
      let responses = by_id (recv_n c n) in
      check int_t "all in-flight answered across drain" n
        (List.length responses);
      List.iter
        (fun (id, (j, _)) ->
          check bool_t (id ^ " terminal") true
            (List.mem (jstr_field "status" j)
               [ "ok"; "degraded"; "rejected" ]))
        responses;
      check bool_t "drain completes within grace" true (Sv.stop h))

(* ---------------- idempotency ---------------- *)

(* The server-side half of the resilient-client contract: frames
   sharing a [request_id] execute (and journal) once per daemon,
   whether the duplicate arrives mid-execution (parked waiter) or
   after completion (LRU replay); duplicates are answered with the
   owner's terminal payload plus a ["dedup": "hit"] marker. *)
let test_idempotency_dedup () =
  let reqlog = Filename.temp_file "confcall_dedup" ".reqlog" in
  Sys.remove reqlog;
  let cfg =
    {
      (Sv.default_config (Sv.Tcp 0)) with
      domains = 1;
      capacity = 16;
      request_log = Some reqlog;
      drain_grace_ms = 30_000.0;
      quiet = true;
    }
  in
  let h = Sv.start cfg in
  let port = Option.get (Sv.bound_port h) in
  let c = connect port in
  let rng = Prob.Rng.create ~seed:41 in
  let slow = Instance.random_uniform_simplex rng ~m:3 ~c:14 ~d:3 in
  let dedup_hit j =
    match Option.bind (J.member "dedup" j) J.to_str with
    | Some "hit" -> true
    | _ -> false
  in
  (* two frames, same request_id, pipelined while the first still
     executes: one execution, two answers, the duplicate marked *)
  send c
    (solve_frame ~id:"a1" ~request_id:"rid-1" ~chain:"exact"
       ~budget_ms:200.0 slow);
  send c
    (solve_frame ~id:"a2" ~request_id:"rid-1" ~chain:"exact"
       ~budget_ms:200.0 slow);
  let rs = by_id (recv_n c 2) in
  let j1, _ = List.assoc "a1" rs and j2, _ = List.assoc "a2" rs in
  check string_t "duplicate gets the owner's status" (jstr_field "status" j1)
    (jstr_field "status" j2);
  check bool_t "owner is not dedup-marked" false (dedup_hit j1);
  check bool_t "duplicate is dedup-marked" true (dedup_hit j2);
  (* a third frame after the terminal answer: completed-LRU replay *)
  send c
    (solve_frame ~id:"a3" ~request_id:"rid-1" ~chain:"exact"
       ~budget_ms:200.0 slow);
  let j3, _ = List.assoc "a3" (by_id (recv_n c 1)) in
  check bool_t "replay is dedup-marked" true (dedup_hit j3);
  check string_t "replay matches the original status"
    (jstr_field "status" j1) (jstr_field "status" j3);
  (* a distinct request_id still executes *)
  send c (solve_frame ~id:"b1" ~request_id:"rid-2" ~budget_ms:200.0 slow);
  let jb, _ = List.assoc "b1" (by_id (recv_n c 1)) in
  check bool_t "fresh request_id executes" false (dedup_hit jb);
  (* the health op reports the table; the owner's response is written
     before the table memoizes, so only rid-1 — proven Done by a3's
     replay — is guaranteed visible here *)
  send c "{\"id\": \"h\", \"op\": \"health\"}";
  let jh, _ = List.assoc "h" (by_id (recv_n c 1)) in
  check bool_t "health reports completed dedup entries" true
    (jnum_field "dedup_completed" jh >= 1.0);
  check bool_t "health reports dedup hits" true
    (jnum_field "dedup_hits" jh >= 2.0);
  close_client c;
  check bool_t "drain completes" true (Sv.stop h);
  (* the audit trail: exactly one journal line per distinct request_id,
     in execution order — [read_back] would raise on a duplicate *)
  let entries = Journal.read_back reqlog in
  (try Sys.remove reqlog with Sys_error _ -> ());
  check int_t "one journal line per executed request_id" 2
    (List.length entries);
  check bool_t "journalled ids are the executed ids" true
    (List.map fst entries = [ "rid-1"; "rid-2" ])

(* ---------------- registration ---------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects invalid" `Quick test_json_rejects;
        ] );
      ( "keys-and-ladder",
        [
          Alcotest.test_case "canonical instance key" `Quick
            test_canonical_key;
          Alcotest.test_case "shedding ladder" `Quick test_ladder;
        ] );
      ( "protocol",
        [ Alcotest.test_case "frame decoding" `Quick test_proto_decode ] );
      ( "cache",
        [
          Alcotest.test_case "persistence, torn tail, fsync" `Quick
            test_cache_persistence;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "differential: 50 instances vs CLI emitter"
            `Quick test_differential_50_instances;
          Alcotest.test_case "pipelining + error isolation" `Quick
            test_pipelining_and_isolation;
          Alcotest.test_case "deadline propagation degrades" `Quick
            test_deadline_degrades;
          Alcotest.test_case "overload sheds with backpressure" `Quick
            test_overload_sheds;
          Alcotest.test_case "cache hit and restart" `Quick
            test_cache_hit_and_restart;
          Alcotest.test_case "health/metrics/simulate/drain" `Quick
            test_ops_and_drain;
          Alcotest.test_case "drain finishes in-flight work" `Quick
            test_drain_finishes_inflight;
        ] );
      ( "idempotency",
        [
          Alcotest.test_case "request_id dedup: in-flight, replay, audit"
            `Quick test_idempotency_dedup;
        ] );
    ]
