(* Tests for the deadline-budgeted runtime: Cancel tokens, the Runner's
   fallback chains and error taxonomy, and the crash-safe Journal. *)

open Confcall

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let qt = QCheck_alcotest.to_alcotest

(* A deterministic clock: returns the current reading, then advances by
   [step] seconds. Makes timeout paths reproducible. *)
let stepping_clock ~step =
  let t = ref 0.0 in
  fun () ->
    let v = !t in
    t := !t +. step;
    v

(* -------------------- Cancel -------------------- *)

let test_cancel_never () =
  for _ = 1 to 1000 do
    check bool_t "never fires" false (Cancel.poll Cancel.never)
  done;
  check bool_t "not cancelled" false (Cancel.cancelled Cancel.never)

let test_cancel_every_validation () =
  (match Cancel.of_probe ~every:0 (fun () -> true) with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "every=0 accepted");
  match Cancel.of_probe ~every:(-3) (fun () -> true) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative every accepted"

let test_cancel_probe_amortized () =
  let probes = ref 0 in
  let t =
    Cancel.of_probe ~every:4 (fun () ->
        incr probes;
        false)
  in
  for _ = 1 to 12 do
    ignore (Cancel.poll t)
  done;
  check int_t "probe every 4th poll" 3 !probes

let test_cancel_fires_and_latches () =
  let armed = ref false in
  let t = Cancel.of_probe ~every:1 (fun () -> !armed) in
  check bool_t "not fired yet" false (Cancel.poll t);
  armed := true;
  check bool_t "fires" true (Cancel.poll t);
  (* latched: stays fired even if the probe would now say no *)
  armed := false;
  check bool_t "latched" true (Cancel.poll t);
  check bool_t "cancelled" true (Cancel.cancelled t);
  match Cancel.check t with
  | exception Cancel.Cancelled -> ()
  | () -> Alcotest.fail "check did not raise after firing"

let test_cancel_deadline_with_clock () =
  let clock = stepping_clock ~step:0.010 in
  (* deadline at t = 0.015: polls observe 0.000, 0.010, 0.020... *)
  let t = Cancel.deadline ~every:1 ~clock 0.015 in
  check bool_t "before deadline" false (Cancel.poll t);
  check bool_t "still before" false (Cancel.poll t);
  check bool_t "past deadline" true (Cancel.poll t)

let test_cancel_now_monotone () =
  let a = Cancel.now () in
  let b = Cancel.now () in
  check bool_t "clock never runs backwards" true (b >= a)

(* -------------------- Runner -------------------- *)

let big_instance () =
  let rng = Prob.Rng.create ~seed:60 in
  Instance.random_uniform_simplex rng ~m:3 ~c:60 ~d:4

let small_instance () =
  Instance.create ~d:2 [| [| 0.5; 0.3; 0.2 |]; [| 0.1; 0.1; 0.8 |] |]

(* The acceptance scenario: c = 60 under a 50 ms budget. The exact stage
   must be recorded as the timed-out stage by name, a heuristic must win,
   and the whole run must finish within budget + grace (plus scheduling
   slack for loaded CI machines). *)
let test_runner_timeout_names_stage () =
  let inst = big_instance () in
  let t0 = Cancel.now () in
  let report = Runner.run ~budget_ms:50.0 inst in
  let wall_ms = (Cancel.now () -. t0) *. 1000.0 in
  let timed_out =
    List.filter_map
      (fun (s : Runner.stage_report) ->
        match s.Runner.status with
        | Runner.Failed Runner.Timeout ->
          Some (Solver.spec_to_string s.Runner.spec)
        | _ -> None)
      report.Runner.stages
  in
  check bool_t "exact stage named as timed out" true
    (List.mem "exact" timed_out);
  (match report.Runner.winner with
   | Some ((Solver.Greedy | Solver.Local_search), _) -> ()
   | Some (spec, _) ->
     Alcotest.failf "expected a heuristic winner, got %s"
       (Solver.spec_to_string spec)
   | None -> Alcotest.fail "no winner");
  check bool_t
    (Printf.sprintf "within budget+grace (wall %.1f ms)" wall_ms)
    true
    (wall_ms <= 50.0 +. 100.0 +. 250.0)

(* Deterministic timeout path on a stepping clock: every clock reading
   advances 2 ms, so the 10 ms budget dies during the exact stage's
   enumeration, the other expensive stages are skipped, and greedy (an
   always-fast stage) wins inside the grace window. *)
let test_runner_fallback_deterministic () =
  let clock = stepping_clock ~step:0.002 in
  let inst =
    let rng = Prob.Rng.create ~seed:7 in
    Instance.random_uniform_simplex rng ~m:2 ~c:20 ~d:3
  in
  let report = Runner.run ~budget_ms:10.0 ~clock inst in
  let statuses =
    List.map
      (fun (s : Runner.stage_report) ->
        (Solver.spec_to_string s.Runner.spec, s.Runner.status))
      report.Runner.stages
  in
  check bool_t "exact timed out" true
    (List.assoc "exact" statuses = Runner.Failed Runner.Timeout);
  check bool_t "bnb skipped after deadline" true
    (List.assoc "bnb" statuses = Runner.Failed Runner.Timeout);
  check bool_t "local-search skipped after deadline" true
    (List.assoc "local-search" statuses = Runner.Failed Runner.Timeout);
  (match report.Runner.winner with
   | Some (Solver.Greedy, o) ->
     check (Alcotest.float 1e-9) "winner EP consistent" o.Solver.expected_paging
       (Strategy.expected_paging inst o.Solver.strategy)
   | _ -> Alcotest.fail "greedy should win on the stepping clock")

let test_runner_no_budget_keeps_guards () =
  let inst = big_instance () in
  let report = Runner.run inst in
  (* without a deadline the exact methods stay guarded: Inapplicable,
     not a multi-hour enumeration *)
  (match (List.hd report.Runner.stages).Runner.status with
   | Runner.Failed (Runner.Inapplicable _) -> ()
   | s ->
     Alcotest.failf "expected Inapplicable, got %s"
       (Runner.stage_status_to_string s));
  check bool_t "has winner" true (report.Runner.winner <> None)

let test_runner_invalid_objective () =
  let inst = small_instance () in
  let report = Runner.run ~objective:(Objective.Find_at_least 5) inst in
  check bool_t "no winner" true (report.Runner.winner = None);
  match report.Runner.failure with
  | Some (Runner.Invalid_input _) -> ()
  | f ->
    Alcotest.failf "expected Invalid_input, got %s"
      (match f with
       | Some e -> Runner.error_to_string e
       | None -> "none")

let test_runner_exact_wins_small () =
  let inst = small_instance () in
  let report = Runner.run ~budget_ms:5000.0 inst in
  match report.Runner.winner with
  | Some (spec, o) ->
    check bool_t "winner is exact" true o.Solver.exact;
    check bool_t "first stage won" true (spec = List.hd report.Runner.chain);
    (match report.Runner.quality with
     | Some q ->
       check bool_t "within e/(e-1) of the lower bound" true
         q.Runner.within_guarantee
     | None -> Alcotest.fail "no quality block")
  | None -> Alcotest.fail "no winner"

let test_runner_baseline_appended () =
  let inst = small_instance () in
  let report = Runner.run ~chain:[ Solver.Branch_and_bound ] inst in
  check bool_t "page-all appended" true
    (List.mem Solver.Page_all report.Runner.chain);
  check bool_t "winner exists" true (report.Runner.winner <> None)

let test_chain_of_string () =
  (match Runner.chain_of_string "default" with
   | Ok chain ->
     check string_t "default chain" "exact,bnb,local-search,greedy,page-all"
       (Runner.chain_to_string chain)
   | Error e -> Alcotest.fail e);
  (match Runner.chain_of_string "bnb, local-search ,page-all" with
   | Ok chain -> check int_t "three stages" 3 (List.length chain)
   | Error e -> Alcotest.fail e);
  (match Runner.chain_of_string "greedy,bogus" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bogus chain accepted");
  match Runner.chain_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty chain accepted"

let test_runner_solve_result () =
  let inst = small_instance () in
  (match Runner.solve inst with
   | Ok o ->
     check bool_t "valid strategy" true
       (Strategy.validate ~c:inst.Instance.c o.Solver.strategy = Ok ())
   | Error e -> Alcotest.fail (Runner.error_to_string e));
  match Runner.solve ~objective:(Objective.Find_at_least 9) inst with
  | Error (Runner.Invalid_input _) -> ()
  | _ -> Alcotest.fail "expected Invalid_input"

(* Satellite: every fallback chain built from basic_specs returns a
   strategy that partitions the cells, respects d, and never pages more
   than the Page_all baseline in expectation — under Find_all and
   Find_at_least, with and without a tight budget. *)
let prop_chains_never_regress_below_page_all =
  QCheck.Test.make ~name:"fallback chains: valid strategy, EP <= page-all"
    ~count:120
    (QCheck.quad (QCheck.int_range 1 3) (QCheck.int_range 2 10)
       (QCheck.int_range 1 4) (QCheck.int_range 0 1_000_000))
    (fun (m, c, d, seed) ->
      QCheck.assume (d <= c);
      let rng = Prob.Rng.create ~seed in
      let inst = Instance.random_uniform_simplex rng ~m ~c ~d in
      let k = 1 + Prob.Rng.int rng m in
      let objectives = [ Objective.Find_all; Objective.Find_at_least k ] in
      (* a random non-empty chain over the basic specs *)
      let specs = Array.of_list Solver.basic_specs in
      let len = 1 + Prob.Rng.int rng (Array.length specs) in
      let chain =
        List.init len (fun _ -> specs.(Prob.Rng.int rng (Array.length specs)))
      in
      let budget_ms =
        if Prob.Rng.int rng 2 = 0 then None else Some 5.0
      in
      List.for_all
        (fun objective ->
          let report = Runner.run ~objective ?budget_ms ~chain inst in
          match report.Runner.winner with
          | None -> false
          | Some (_, o) ->
            let page_all_ep =
              (Solver.solve ~objective Solver.Page_all inst)
                .Solver.expected_paging
            in
            Strategy.validate ~c o.Solver.strategy = Ok ()
            && Array.length (Strategy.groups o.Solver.strategy) <= d
            && o.Solver.expected_paging <= page_all_ep +. 1e-9)
        objectives)

(* -------------------- uncertainty-aware runs -------------------- *)

let test_runner_uncertainty_reranks () =
  let inst = Instance.all_uniform ~m:2 ~c:12 ~d:3 in
  let u = Uncertainty.uniform 0.02 in
  let report = Runner.run ~uncertainty:u inst in
  (* Every scored stage carries its worst-case EP, at or above nominal. *)
  List.iter
    (fun (s : Runner.stage_report) ->
      match (s.Runner.expected_paging, s.Runner.robust_ep) with
      | Some ep, Some rep ->
        check bool_t "worst-case >= nominal" true (rep >= ep -. 1e-9)
      | Some _, None -> Alcotest.fail "scored stage missing robust_ep"
      | None, _ -> ())
    report.Runner.stages;
  match (report.Runner.winner, report.Runner.robust) with
  | Some (_, o), Some rb ->
    (* The winner is the stage with the least worst-case EP, and its
       certificate brackets its nominal EP. *)
    List.iter
      (fun (s : Runner.stage_report) ->
        match s.Runner.robust_ep with
        | Some rep ->
          check bool_t "winner minimizes robust EP" true
            (rb.Runner.winner_robust_ep <= rep +. 1e-9)
        | None -> ())
      report.Runner.stages;
    check bool_t "bounds bracket nominal" true
      (rb.Runner.winner_bounds.Uncertainty.lo
         <= o.Solver.expected_paging +. 1e-9
      && o.Solver.expected_paging
         <= rb.Runner.winner_bounds.Uncertainty.hi +. 1e-9);
    check bool_t "worst case within upper bound" true
      (rb.Runner.winner_robust_ep
       <= rb.Runner.winner_bounds.Uncertainty.hi +. 1e-9)
  | _ -> Alcotest.fail "uncertainty-aware run produced no certified winner"

let test_solver_robust_spec () =
  let inst = Instance.all_uniform ~m:2 ~c:10 ~d:2 in
  let o = Solver.solve (Solver.Robust { eps = 0.05; tv = infinity }) inst in
  check bool_t "robust outcome is not marked exact" false o.Solver.exact;
  (* The robust pick minimizes worst-case EP among its candidates. *)
  let u = Uncertainty.uniform 0.05 in
  let worst = Uncertainty.robust_ep u inst o.Solver.strategy in
  List.iter
    (fun spec ->
      match Solver.solve spec inst with
      | cand ->
        check bool_t "beats candidate on worst case" true
          (worst <= Uncertainty.robust_ep u inst cand.Solver.strategy +. 1e-9)
      | exception Invalid_argument _ -> ())
    Solver.robust_candidates;
  (* Spec parsing roundtrips and validates. *)
  (match Solver.spec_of_string "robust-0.05" with
   | Ok (Solver.Robust { eps; tv }) ->
     check (Alcotest.float 1e-12) "eps parsed" 0.05 eps;
     check bool_t "tv defaults to unlimited" true (tv = infinity)
   | _ -> Alcotest.fail "robust-0.05 did not parse");
  (match Solver.spec_of_string "robust-0.1:0.2" with
   | Ok (Solver.Robust { eps; tv }) ->
     check (Alcotest.float 1e-12) "eps parsed" 0.1 eps;
     check (Alcotest.float 1e-12) "tv parsed" 0.2 tv
   | _ -> Alcotest.fail "robust-0.1:0.2 did not parse");
  (match Solver.spec_of_string "robust-1.5" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "eps > 1 accepted");
  match Solver.spec_of_string (Solver.spec_to_string (Solver.Robust { eps = 0.07; tv = 0.3 })) with
  | Ok (Solver.Robust { eps; tv }) ->
    check (Alcotest.float 1e-12) "roundtrip eps" 0.07 eps;
    check (Alcotest.float 1e-12) "roundtrip tv" 0.3 tv
  | _ -> Alcotest.fail "robust spec did not roundtrip"

(* -------------------- Journal -------------------- *)

let temp_journal () =
  let path = Filename.temp_file "confcall_test" ".journal" in
  Sys.remove path;
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_journal_roundtrip () =
  let path = temp_journal () in
  let j = Journal.load_or_create path in
  check int_t "fresh journal empty" 0 (Journal.count j);
  Journal.record j ~id:"a" ~payload:"1";
  Journal.record j ~id:"b" ~payload:"2";
  check bool_t "a completed" true (Journal.completed j "a");
  check bool_t "c not completed" false (Journal.completed j "c");
  Journal.close j;
  let j2 = Journal.load_or_create path in
  check int_t "reloaded" 2 (Journal.count j2);
  check bool_t "entries in file order" true
    (Journal.entries j2 = [ ("a", "1"); ("b", "2") ]);
  Journal.close j2;
  Sys.remove path

let test_journal_truncates_partial_line () =
  let path = temp_journal () in
  (* simulate a crash mid-write: last line has no newline *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "a\t1\nb\t2\nc\tpartial-garbag");
  let j = Journal.load_or_create path in
  check int_t "partial line dropped" 2 (Journal.count j);
  check bool_t "c must be redone" false (Journal.completed j "c");
  Journal.record j ~id:"c" ~payload:"3";
  Journal.close j;
  (* Legacy lines survive verbatim; the repair appends in the
     checksummed format. *)
  check string_t "file repaired byte-exactly"
    "a\t1\nb\t2\nc\t3\tcrc:dbc27634\n"
    (read_file path);
  Sys.remove path

let test_journal_fsync_torn_tail () =
  (* fsync mode changes durability, not the format: records written
     with ~fsync:true read back identically, and a torn final line is
     still repaired on reload (the fsync covers whole appends, so a
     tear can only be the unflushed last write of a crash). *)
  let path = temp_journal () in
  let j = Journal.load_or_create ~fsync:true path in
  Journal.record j ~id:"a" ~payload:"1";
  Journal.record j ~id:"b" ~payload:"2";
  Journal.close j;
  check string_t "fsync writes the checksummed format"
    "a\t1\tcrc:3648c376\nb\t2\tcrc:ad072c95\n"
    (read_file path);
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "c\ttorn-by-pow";
  close_out oc;
  let j2 = Journal.load_or_create ~fsync:true path in
  check int_t "torn tail dropped under fsync" 2 (Journal.count j2);
  check bool_t "synced records intact" true
    (Journal.entries j2 = [ ("a", "1"); ("b", "2") ]);
  Journal.record j2 ~id:"c" ~payload:"3";
  Journal.close j2;
  check string_t "repaired byte-exactly"
    "a\t1\tcrc:3648c376\nb\t2\tcrc:ad072c95\nc\t3\tcrc:dbc27634\n"
    (read_file path);
  Sys.remove path

let test_journal_rejects_bad_input () =
  let path = temp_journal () in
  let j = Journal.load_or_create path in
  Journal.record j ~id:"x" ~payload:"1";
  let expect name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.failf "%s accepted" name
  in
  expect "duplicate id" (fun () -> Journal.record j ~id:"x" ~payload:"2");
  expect "empty id" (fun () -> Journal.record j ~id:"" ~payload:"2");
  expect "tab in id" (fun () -> Journal.record j ~id:"a\tb" ~payload:"2");
  expect "newline in payload" (fun () ->
      Journal.record j ~id:"y" ~payload:"2\n3");
  Journal.close j;
  Sys.remove path

let test_journal_duplicate_ids () =
  (* A duplicate id among intact records is corruption, not a crash
     artifact: load must refuse and name the offender. *)
  let path = temp_journal () in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "a\t1\nb\t2\na\t3\n");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match Journal.load_or_create path with
   | exception Invalid_argument msg ->
     check bool_t "names the duplicate id" true (contains msg {|duplicate id "a"|})
   | j ->
     Journal.close j;
     Alcotest.fail "duplicate id accepted");
  Sys.remove path;
  (* Interaction with crash repair: a duplicate only inside the torn
     final line is dropped with the torn line, not reported. *)
  let path = temp_journal () in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "a\t1\nb\t2\na\tpartial-garbag");
  let j = Journal.load_or_create path in
  check int_t "torn duplicate dropped" 2 (Journal.count j);
  Journal.close j;
  Sys.remove path;
  (* ... but a duplicate among intact records still trips even when the
     tail is torn. *)
  let path = temp_journal () in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "a\t1\na\t2\nc\tpartial-garbag");
  (match Journal.load_or_create path with
   | exception Invalid_argument _ -> ()
   | j ->
     Journal.close j;
     Alcotest.fail "intact duplicate accepted behind torn tail");
  Sys.remove path

let test_journal_run_replays () =
  let path = temp_journal () in
  let j = Journal.load_or_create path in
  let calls = ref 0 in
  let work () =
    incr calls;
    "computed"
  in
  (match Journal.run j ~id:"item" work with
   | `Ran, "computed" -> ()
   | _ -> Alcotest.fail "first run should compute");
  (match Journal.run j ~id:"item" work with
   | `Replayed, "computed" -> ()
   | _ -> Alcotest.fail "second run should replay");
  check int_t "work ran once" 1 !calls;
  Journal.close j;
  (* and across a reload, byte-identically *)
  let before = read_file path in
  let j2 = Journal.load_or_create path in
  (match Journal.run j2 ~id:"item" work with
   | `Replayed, "computed" -> ()
   | _ -> Alcotest.fail "replay after reload");
  Journal.close j2;
  check string_t "reload appends nothing" before (read_file path);
  check int_t "still ran once" 1 !calls;
  Sys.remove path

let () =
  Alcotest.run "runner"
    [
      ( "cancel",
        [
          Alcotest.test_case "never" `Quick test_cancel_never;
          Alcotest.test_case "every validation" `Quick
            test_cancel_every_validation;
          Alcotest.test_case "probe amortized" `Quick
            test_cancel_probe_amortized;
          Alcotest.test_case "fires and latches" `Quick
            test_cancel_fires_and_latches;
          Alcotest.test_case "deadline clock" `Quick
            test_cancel_deadline_with_clock;
          Alcotest.test_case "now monotone" `Quick test_cancel_now_monotone;
        ] );
      ( "runner",
        [
          Alcotest.test_case "timeout names stage (c=60, 50ms)" `Quick
            test_runner_timeout_names_stage;
          Alcotest.test_case "deterministic fallback" `Quick
            test_runner_fallback_deterministic;
          Alcotest.test_case "no budget keeps guards" `Quick
            test_runner_no_budget_keeps_guards;
          Alcotest.test_case "invalid objective" `Quick
            test_runner_invalid_objective;
          Alcotest.test_case "exact wins small" `Quick
            test_runner_exact_wins_small;
          Alcotest.test_case "baseline appended" `Quick
            test_runner_baseline_appended;
          Alcotest.test_case "chain_of_string" `Quick test_chain_of_string;
          Alcotest.test_case "solve result" `Quick test_runner_solve_result;
          qt prop_chains_never_regress_below_page_all;
          Alcotest.test_case "uncertainty re-ranks and certifies" `Quick
            test_runner_uncertainty_reranks;
          Alcotest.test_case "robust solver spec" `Quick
            test_solver_robust_spec;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "truncates partial line" `Quick
            test_journal_truncates_partial_line;
          Alcotest.test_case "fsync mode, torn tail" `Quick
            test_journal_fsync_torn_tail;
          Alcotest.test_case "rejects bad input" `Quick
            test_journal_rejects_bad_input;
          Alcotest.test_case "duplicate ids" `Quick test_journal_duplicate_ids;
          Alcotest.test_case "run replays" `Quick test_journal_run_replays;
        ] );
    ]
